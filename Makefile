# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-short race lint lint-sarif lint-ignores \
	lint-prune lint-fix allocreport bench bench-all eval eval-quick \
	fuzz fuzz-trajectory fuzz-trace fuzz-v2v maps serve soak clean

all: build test

build:
	go build ./...

test:
	go test ./...

test-short:
	go test -short ./...

# Race coverage is repo-wide; -short keeps the heavyweight eval scenarios
# out so the run stays in CI-friendly territory.
race:
	go test -race -short ./...

# Static analysis: go vet plus the fifteen domain-aware analyzers in
# cmd/rups-lint (see docs/STATIC_ANALYSIS.md). Accepted findings live in
# the committed lint-baseline.json, each entry carrying a "why"
# justification; anything not in the baseline fails the build.
lint:
	go vet ./...
	go run ./cmd/rups-lint -baseline lint-baseline.json ./...

# SARIF 2.1.0 report for CI annotation (same findings as `make lint`).
lint-sarif:
	go run ./cmd/rups-lint -baseline lint-baseline.json -json ./... > rups-lint.sarif

# Audit every lint:ignore suppression; fails if one lacks a justification.
lint-ignores:
	go run ./cmd/rups-lint -list-ignores ./...

# Baseline freshness: fail if a committed baseline entry no longer fires —
# the finding was fixed, so the stale suppression must be dropped
# (go run ./cmd/rups-lint -baseline lint-baseline.json -prune-baseline rewrite ./...).
lint-prune:
	go run ./cmd/rups-lint -baseline lint-baseline.json -prune-baseline check ./...

# Apply every suggested fix carried by surviving diagnostics: edits are
# spliced atomically and the result is gofmt-clean. Running it twice is a
# no-op (CI asserts this), because a fixed finding no longer fires.
lint-fix:
	go run ./cmd/rups-lint -baseline lint-baseline.json -fix ./...

# The interval-ranked allocation worklist: the hottest sites by loop
# multiplicity × interval-derived size, the input to the next perf PR.
allocreport:
	go run ./cmd/rups-lint -allocreport 7 ./...

# The perf trajectory: run the search, engine, warm-start, and
# telemetry-overhead benchmarks, then merge the current record with the
# committed previous-PR record (raw lines inside are benchstat-compatible).
# Override the triple to regenerate an older record:
#   make bench BENCH_BASELINE=results/bench_pr3_current.txt \
#              BENCH_CURRENT=results/bench_pr4_current.txt BENCH_OUT=BENCH_4.json
# BenchmarkSearcherInstrumented vs the baseline BenchmarkFindSYNs is the
# disabled-telemetry overhead check: it must stay within ~2% ns/op and at
# identical allocs/op. BenchmarkEngineSteadyState Warm vs Cold is the
# warm-start check: repeat-contact resolves must beat cold scans ≥ 3×.
BENCH_BASELINE ?= results/bench_pr4_current.txt
BENCH_CURRENT  ?= results/bench_pr5_current.txt
BENCH_OUT      ?= BENCH_5.json

bench:
	go test -run XXXNONE \
		-bench 'BenchmarkFindSYNs$$|BenchmarkSearcherInstrumented|BenchmarkEngineResolve|BenchmarkEngineSteadyState' \
		-benchmem -count 3 . | tee $(BENCH_CURRENT)
	go run ./cmd/rups-bench -baseline $(BENCH_BASELINE) \
		-current $(BENCH_CURRENT) -out $(BENCH_OUT)

# The full suite (one benchmark per paper table/figure plus cost models).
bench-all:
	go test -run XXXNONE -bench=. -benchmem ./...

eval:
	go run ./cmd/rups-eval -csv results

eval-quick:
	go run ./cmd/rups-eval -quick

# All fuzzers always run, even when an earlier one finds a crasher; the
# exit status still reflects any failure. Seed corpus entries live in each
# package's testdata/fuzz/ directory.
fuzz:
	@rc=0; \
	$(MAKE) fuzz-trajectory || rc=1; \
	$(MAKE) fuzz-trace || rc=1; \
	$(MAKE) fuzz-v2v || rc=1; \
	exit $$rc

fuzz-trajectory:
	go test -run FuzzUnmarshalBinary -fuzz FuzzUnmarshalBinary -fuzztime 30s ./internal/trajectory/

fuzz-trace:
	go test -run FuzzReadFrom -fuzz FuzzReadFrom -fuzztime 30s ./internal/trace/

fuzz-v2v:
	go test -run FuzzV2VDecode -fuzz FuzzV2VDecode -fuzztime 30s ./internal/v2v/

maps:
	go run ./cmd/rups-map -out docs/city.svg
	go run ./cmd/rups-map -scenario -out docs/scenario.svg

# The resolution service on its default port with the debug endpoint up
# (see docs/SERVICE.md); Ctrl-C drains gracefully.
serve:
	go run ./cmd/rups-serve -debug-addr 127.0.0.1:6060

# Two-phase service soak (scripts/soak.sh): overload + faults + mid-run
# SIGTERM must degrade explicitly (refusals, evictions, one drain); a
# clean restart must keep every failure counter at zero with the
# resolve-latency SLO unbreached. Artifacts land in soak-out/.
soak:
	bash scripts/soak.sh

clean:
	rm -f drive.rupt rups-lint.sarif
	rm -rf soak-out
