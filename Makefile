# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-short bench eval eval-quick fuzz clean

all: build test

build:
	go build ./...

test:
	go test ./...

test-short:
	go test -short ./...

race:
	go test -race ./internal/sim/ ./internal/node/ ./internal/core/

bench:
	go test -run XXXNONE -bench=. -benchmem ./...

eval:
	go run ./cmd/rups-eval -csv results

eval-quick:
	go run ./cmd/rups-eval -quick

fuzz:
	go test -run FuzzUnmarshalBinary -fuzz FuzzUnmarshalBinary -fuzztime 30s ./internal/trajectory/
	go test -run FuzzReadFrom -fuzz FuzzReadFrom -fuzztime 30s ./internal/trace/

maps:
	go run ./cmd/rups-map -out docs/city.svg
	go run ./cmd/rups-map -scenario -out docs/scenario.svg

clean:
	rm -f drive.rupt
