#!/usr/bin/env bash
# Two-phase soak of the resolution service (see docs/SERVICE.md).
#
# Phase 1 — overload: a 500-vehicle fleet streams through a lossy,
# corrupting link at roughly twice what the deliberately tight server
# bounds can absorb, with stalled clients, malformed injection, and
# mid-run epoch resets; partway through, the server takes SIGTERM and
# must drain gracefully. The snapshot must prove the degradation was
# explicit: refusals counted, vehicles evicted under the memory budget,
# malformed input survived, exactly one drain.
#
# Phase 2 — clean restart: a fresh server under the same binary takes a
# paced, fault-free fleet. The snapshot must prove the failure paths
# stayed quiet — zero refusals, evictions, malformed, sheds — while
# queries resolved and the resolve-latency SLO never breached.
#
# Usage: scripts/soak.sh [outdir]   (default: soak-out)
set -euo pipefail

out=${1:-soak-out}
mkdir -p "$out"
addr=127.0.0.1:7841

go build -o "$out/rups-serve" ./cmd/rups-serve
go build -o "$out/rups-load" ./cmd/rups-load
go build -o "$out/rups-promcheck" ./cmd/rups-promcheck

wait_ready() {
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/${addr%:*}/${addr#*:}") 2>/dev/null; then
      exec 3>&- 3<&- || true
      return 0
    fi
    sleep 0.1
  done
  echo "soak: server never came up on $addr" >&2
  return 1
}

echo "=== phase 1: overload + faults + mid-run SIGTERM ==="
"$out/rups-serve" -addr "$addr" -workers 4 \
  -queue-cap 64 -per-conn 8 -mem-budget 262144 \
  -metrics-snapshot "$out/soak-overload.prom" 2>"$out/server-overload.log" &
srv=$!
wait_ready

timeout 180 "$out/rups-load" -addr "$addr" \
  -vehicles 500 -rounds 30 -marks 6 -queries 2 -pace 0.05 \
  -loss 0.1 -burst 0.02 -reorder 0.1 -dup 0.05 -corrupt 0.05 \
  -malformed-every 9 -stall-every 25 -reset-every 11 \
  -require-progress >"$out/load-overload.txt" &
load=$!

sleep 6
kill -TERM "$srv"
wait "$srv"
wait "$load"
cat "$out/load-overload.txt"

# Graceful degradation, proven from the server's own counters: traffic
# flowed, overload was refused (not dropped), the memory budget evicted,
# garbage was counted and survived, and the drain ran exactly once.
"$out/rups-promcheck" \
  -present rups_serve_drained_queries_total,rups_serve_queue_depth,rups_serve_resident_bytes,rups_serve_slow_disconnects_total \
  "$out/soak-overload.prom" \
  rups_serve_connections_total \
  rups_serve_queries_total \
  rups_serve_results_total \
  rups_serve_refused_total \
  rups_serve_evictions_total \
  rups_serve_malformed_total \
  rups_serve_resolve_seconds \
  rups_serve_drains_total

echo "=== phase 2: clean restart ==="
"$out/rups-serve" -addr "$addr" -workers 4 \
  -metrics-snapshot "$out/soak-clean.prom" 2>"$out/server-clean.log" &
srv=$!
wait_ready

timeout 180 "$out/rups-load" -addr "$addr" \
  -vehicles 150 -rounds 12 -marks 4 -queries 1 -pace 0.1 \
  -require-progress >"$out/load-clean.txt"
cat "$out/load-clean.txt"

kill -TERM "$srv"
wait "$srv"

# The clean phase is the control: the failure paths must stay at zero
# (instrumented but silent), queries must resolve, and the resolve-latency
# SLO must carry traffic without a single breach.
"$out/rups-promcheck" \
  -zero rups_serve_refused_total,rups_serve_evictions_total,rups_serve_malformed_total,rups_serve_queries_shed_total,rups_serve_slow_disconnects_total,rups_slo_resolve_latency_breaches_total \
  -slo resolve_latency \
  "$out/soak-clean.prom" \
  rups_serve_connections_total \
  rups_serve_queries_total \
  rups_serve_results_total \
  rups_serve_resolve_seconds \
  rups_serve_drains_total

echo "soak: both phases held"
