// End-to-end integration tests: the full story of the paper exercised
// through the public seams — drive, sense, scan, bind, exchange over the
// wire, search, resolve — with ground truth checked at the end.
package rups_test

import (
	"bytes"
	"math"
	"testing"

	"rups/internal/city"
	"rups/internal/core"
	"rups/internal/mobility"
	"rups/internal/sim"
	"rups/internal/trace"
	"rups/internal/trajectory"
	"rups/internal/v2v"
)

// TestEndToEndOverTheWire runs the complete pipeline including the V2V
// serialization: the follower resolves against the leader's trajectory as
// received over the (quantizing) wire format, not the in-memory original.
func TestEndToEndOverTheWire(t *testing.T) {
	sc := sim.DefaultScenario(62, city.FourLaneUrban)
	sc.DistanceM = 900
	r := sim.Execute(sc)

	tm := r.Follower.Truth.States[0].T + 55
	pf := r.Follower.Aware.PrefixUntil(tm)
	pl := r.Leader.Aware.PrefixUntil(tm)

	link := &v2v.Link{Seed: 9, LossProb: 0.03}
	received, cost, err := v2v.ExchangeTrajectory(link, pl)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Elapsed <= 0 || cost.Packets == 0 {
		t.Fatalf("exchange cost implausible: %+v", cost)
	}

	est, ok := core.Resolve(pf, received, core.DefaultParams())
	if !ok {
		t.Fatal("no estimate over the wire")
	}
	truth := mobility.TrueGap(r.Leader.Truth, r.Follower.Truth, tm)
	if rde := math.Abs(est.Distance - truth); rde > 10 {
		t.Errorf("over-the-wire RDE %v m (truth %v, est %v)", rde, truth, est.Distance)
	}
}

// TestEndToEndTraceArchive drives, archives to the binary trace format, and
// replays a query from the archive bytes alone.
func TestEndToEndTraceArchive(t *testing.T) {
	sc := sim.DefaultScenario(62, city.FourLaneUrban)
	sc.DistanceM = 700
	rec := trace.FromRun(sim.Execute(sc), "integration")

	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var back trace.Record
	if _, err := back.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	tm := back.Follower.T0 + 50
	q := back.Query(tm, core.DefaultParams())
	if q.TruthGap <= 0 {
		t.Fatalf("archived truth gap %v", q.TruthGap)
	}
	if q.OK && q.RDE > 15 {
		t.Errorf("archived replay RDE %v", q.RDE)
	}
}

// TestEndToEndMultiband runs a full scenario with the FM band enabled and
// checks the wider trajectories still flow through every stage, including
// the wire format.
func TestEndToEndMultiband(t *testing.T) {
	sc := sim.DefaultScenario(63, city.EightLaneUrban)
	sc.DistanceM = 600
	sc.WithFM = true
	r := sim.Execute(sc)

	if w := r.Follower.Aware.Width(); w <= 194 {
		t.Fatalf("multiband width %d, want > 194", w)
	}
	data, err := r.Follower.Aware.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back trajectory.Aware
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Width() != r.Follower.Aware.Width() {
		t.Fatal("multiband width lost on the wire")
	}

	tm := r.Follower.Truth.States[0].T + 35
	q := r.Query(tm, core.DefaultParams())
	if q.OK && q.RDE > 15 {
		t.Errorf("multiband RDE %v", q.RDE)
	}
}

// TestEndToEndOdometryVariants runs the full pipeline under each distance
// source and checks the scenario still resolves.
func TestEndToEndOdometryVariants(t *testing.T) {
	for _, src := range []sim.OdometrySource{sim.WheelOBD, sim.OBDOnly, sim.IMUOnly} {
		sc := sim.DefaultScenario(64, city.EightLaneUrban)
		sc.DistanceM = 700
		sc.StopEveryM = 350 // give the IMU estimator its ZUPTs
		sc.Odometry = src
		r := sim.Execute(sc)
		ok := 0
		times := r.QueryTimes(10, 3)
		for _, q := range r.QueryMany(times, core.DefaultParams()) {
			if q.OK {
				ok++
			}
		}
		if ok == 0 {
			t.Errorf("%v: nothing resolved", src)
		}
	}
}

// TestOdometrySourceString covers the enum labels.
func TestOdometrySourceString(t *testing.T) {
	for src, want := range map[sim.OdometrySource]string{
		sim.WheelOBD: "wheel + OBD", sim.OBDOnly: "OBD only",
		sim.IMUOnly: "IMU only", sim.OdometrySource(9): "unknown",
	} {
		if got := src.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", src, got, want)
		}
	}
}
