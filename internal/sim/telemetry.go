package sim

import "rups/internal/obs"

// simTelemetry is the simulation harness's metric roster (see
// docs/OBSERVABILITY.md): per-pair resolution outcomes and the d_r error
// against the mobility ground truth — the live counterpart of the offline
// experiment tables.
type simTelemetry struct {
	resolved   *obs.Counter
	unresolved *obs.Counter
	pairError  *obs.Histogram
}

var simTel = obs.NewView(func(r *obs.Registry) *simTelemetry {
	return &simTelemetry{
		resolved: r.Counter("rups_sim_pairs_resolved_total",
			"pairwise queries that produced an estimate"),
		unresolved: r.Counter("rups_sim_pairs_unresolved_total",
			"pairwise queries with no SYN point above the coherency threshold"),
		// |estimate − truth| in metres: 2^-4 = 0.0625 m up to 2^9 = 512 m.
		pairError: r.Histogram("rups_sim_pair_error_metres",
			"absolute relative-distance error of a resolved pair against ground truth", -4, 9),
	}
})
