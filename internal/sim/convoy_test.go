package sim

import (
	"math"
	"reflect"
	"testing"

	"rups/internal/city"
	"rups/internal/core"
	"rups/internal/engine"
)

var sharedConvoy *ConvoyRun

func getConvoy(t *testing.T) *ConvoyRun {
	t.Helper()
	if sharedConvoy == nil {
		sc := DefaultScenario(17, city.FourLaneUrban)
		sc.DistanceM = 600
		sc.InitGapM = 20
		sharedConvoy = ExecuteConvoy(sc, 3)
	}
	return sharedConvoy
}

func TestConvoyPipelineSanity(t *testing.T) {
	r := getConvoy(t)
	if len(r.Vehicles) != 3 {
		t.Fatalf("convoy has %d vehicles", len(r.Vehicles))
	}
	for vi, v := range r.Vehicles {
		if v.Aware.Len() < 450 {
			t.Errorf("vehicle %d: only %d marks for a 600 m drive", vi, v.Aware.Len())
		}
	}
	// The chain is ordered: at the end of the drive each follower is behind
	// its predecessor.
	_, t1 := r.TimeSpan()
	for vi := 1; vi < len(r.Vehicles); vi++ {
		if gap := r.TruthGapAt(vi, vi-1, t1); gap <= 0 {
			t.Errorf("vehicle %d not behind %d at end: gap %v", vi, vi-1, gap)
		}
	}
}

// TestConvoyEngineMatchesSequential: a per-tick batch through the engine is
// bit-identical to resolving every pair sequentially on the same contexts.
func TestConvoyEngineMatchesSequential(t *testing.T) {
	r := getConvoy(t)
	t0, t1 := r.TimeSpan()
	tq := t0 + 0.8*(t1-t0)
	p := core.DefaultParams()

	e := engine.New(0)
	defer e.Close()
	got, err := r.ResolveAllAt(e, tq, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("3-vehicle tick produced %d results, want 3", len(got))
	}
	ctxs := r.ContextsAt(tq)
	resolved := 0
	for _, res := range got {
		wantEst, wantOK := core.Resolve(ctxs[res.A], ctxs[res.B], p)
		if res.OK != wantOK || !reflect.DeepEqual(res.Est, wantEst) {
			t.Fatalf("pair (%d,%d): engine diverged from sequential oracle", res.A, res.B)
		}
		if res.OK {
			resolved++
			truth := r.TruthGapAt(res.A, res.B, tq)
			if err := math.Abs(res.Est.Distance - truth); err > 30 {
				t.Errorf("pair (%d,%d): estimate %.1f vs truth %.1f", res.A, res.B, res.Est.Distance, truth)
			}
		}
	}
	if resolved == 0 {
		t.Fatal("no convoy pair resolved at the query tick")
	}
}
