package sim

import (
	"fmt"
	"math"

	"rups/internal/core"
	"rups/internal/engine"
	"rups/internal/link"
	"rups/internal/obs"
	"rups/internal/obs/slo"
	"rups/internal/trajectory"
	"rups/internal/v2v"
)

// LinkedConvoy overlays a fault-injected DSRC mesh on an executed convoy:
// every unordered vehicle pair (i < j) gets a reliable sync session
// carrying j's trajectory to i over its own data/ack channel pair, all
// under one link.Params fault model. The resolver for pair (i, j) is
// vehicle i, answering from its own live context and its link-delivered
// copy of j — the engine only ever admits what the channel actually
// delivered, which is the whole point: a dropped delta no longer
// teleports.
//
// Advance is tick-driven and synchronous (no goroutines): each wall tick
// of sim time buys elapsed/v2v.PacketRTT protocol rounds, with an early
// exit once every session is quiescent. Runs are deterministic per fault
// seed.
type LinkedConvoy struct {
	Run *ConvoyRun
	// Policy is the staleness policy applied at resolution
	// (zero = disabled).
	Policy core.Staleness
	// SLO, when set, is fed one observation per pair per ResolveAllAt
	// (availability, freshness, resolve latency) and evaluated at each
	// resolve time, so burn rates track sim time, not wall time.
	SLO *slo.Tracker

	links []*pairLink
	round int
	lastT float64
}

// pairLink is one unordered pair's sync state: vehicle peer streams to
// vehicle resolver.
type pairLink struct {
	resolver, peer int
	data, ack      *link.Channel
	sess           *v2v.Session
}

// NewLinkedConvoy builds the mesh. Channel salts derive from the pair
// indexes, so every pair sees independent fault draws from the one seed in
// faults.Seed.
func NewLinkedConvoy(run *ConvoyRun, faults link.Params, sync v2v.SyncConfig, pol core.Staleness) *LinkedConvoy {
	n := len(run.Vehicles)
	lc := &LinkedConvoy{Run: run, Policy: pol}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			salt := uint64(i*n+j) * 2
			data := link.New(faults, salt)
			ack := link.New(faults, salt+1)
			sess := v2v.NewSession(run.Vehicles[j].Aware, data, ack, sync)
			sess.SetPeers(j, i) // peer j streams to resolver i
			lc.links = append(lc.links, &pairLink{
				resolver: i, peer: j,
				data: data, ack: ack,
				sess: sess,
			})
		}
	}
	// Protocol time starts at the convoy's common start, not at zero:
	// nothing can have been exchanged before both vehicles exist.
	lc.lastT, _ = run.TimeSpan()
	return lc
}

// SetFaults swaps the fault model on every channel — the chaos scenarios'
// mid-run outage/heal knob. In-flight frames are kept.
func (lc *LinkedConvoy) SetFaults(p link.Params) {
	for _, pl := range lc.links {
		pl.data.SetParams(p)
		pl.ack.SetParams(p)
	}
}

// Advance runs the sync protocol up to sim time t: the elapsed interval
// buys elapsed/PacketRTT rounds (at least one), shared by all sessions in
// lockstep, stopping early once everything is quiescent. Also records
// every pair's copy staleness at t.
func (lc *LinkedConvoy) Advance(t float64) {
	if t < lc.lastT {
		panic(fmt.Sprintf("sim: linked convoy advanced backwards: %v < %v", t, lc.lastT))
	}
	budget := int((t - lc.lastT) / v2v.PacketRTT)
	if budget < 1 {
		budget = 1
	}
	lc.lastT = t
	for b := 0; b < budget; b++ {
		lc.round++
		quiet := true
		for _, pl := range lc.links {
			pl.sess.Step(lc.round, t)
			if !pl.sess.Quiescent() {
				quiet = false
			}
		}
		if quiet {
			break
		}
	}
	for _, pl := range lc.links {
		pl.sess.ObserveCopyAge(t)
	}
}

// Quiescent reports whether every pair's session has fully delivered the
// trajectory visible at the last Advance.
func (lc *LinkedConvoy) Quiescent() bool {
	for _, pl := range lc.links {
		if !pl.sess.Quiescent() {
			return false
		}
	}
	return true
}

// MaxLag returns the largest per-pair backlog (marks recorded by a peer
// but not yet delivered to its resolver) — a convoy-wide sync-health
// summary for logs and tests.
func (lc *LinkedConvoy) MaxLag() int {
	worst := 0
	for _, pl := range lc.links {
		if l := pl.sess.Lag(); l > worst {
			worst = l
		}
	}
	return worst
}

// ResolveAllAt answers every pairwise query at time t from link-delivered
// context: for each pair (i, j), vehicle i's own prefix and its synced
// copy of j are admitted, and the pair resolves under the convoy's
// staleness policy. Results carry vehicle indexes (A = resolver i,
// B = peer j) in the same (i < j) enumeration order as
// ConvoyRun.ResolveAllAt, so the two paths are directly comparable — with
// a clean link and quiescent sessions they are byte-equivalent.
func (lc *LinkedConvoy) ResolveAllAt(e *engine.Engine, t float64, p core.Params) ([]engine.Result, error) {
	trajs := make([]*trajectory.Aware, 0, 2*len(lc.links))
	pairs := make([][2]int, 0, len(lc.links))
	for _, pl := range lc.links {
		trajs = append(trajs, lc.Run.Vehicles[pl.resolver].Aware.PrefixUntil(t), pl.sess.Copy())
		pairs = append(pairs, [2]int{len(trajs) - 2, len(trajs) - 1})
	}
	b, err := e.Admit(trajs...)
	if err != nil {
		return nil, err
	}
	// Each pair resolves under the trace its last admitted chunk carried,
	// so the resolve spans stitch onto the peer's send→reassemble→admit
	// chain: one causal trace per delivered update, crossing the link.
	refs := make([]obs.TraceRef, len(pairs))
	for k, pl := range lc.links {
		refs[k] = pl.sess.TraceRef()
	}
	res := b.ResolvePairsTracedAt(pairs, refs, p, t, lc.Policy)
	tel := simTel.Get()
	avail := lc.SLO.Index("pair_availability")
	fresh := lc.SLO.Index("context_freshness")
	lat := lc.SLO.Index("resolve_latency")
	for k := range res {
		res[k].A = lc.links[k].resolver
		res[k].B = lc.links[k].peer
		lc.SLO.Observe(avail, res[k].OK, t)
		if res[k].OK {
			lc.SLO.Observe(fresh, !res[k].Stale, t)
			if res[k].LatencySec > 0 {
				lc.SLO.ObserveLatency(lat, res[k].LatencySec, t)
			}
		}
		if tel != nil {
			if !res[k].OK {
				tel.unresolved.Inc()
				continue
			}
			tel.resolved.Inc()
			tel.pairError.Observe(math.Abs(res[k].Est.Distance - lc.Run.TruthGapAt(res[k].A, res[k].B, t)))
		}
	}
	if lc.SLO != nil {
		lc.SLO.Evaluate(t)
	}
	return res, nil
}
