// Package sim orchestrates full two-vehicle scenarios end to end: it builds
// a city and its GSM field, drives a leader and follower (IDM) over a road
// of the requested class, runs both vehicles' complete sensing pipelines
// (IMU → reorientation → odometry → dead reckoning; scanning radios →
// trajectory binding → interpolation), and answers relative-distance
// queries with RUPS and the GPS baseline against ground truth — the
// trace-driven methodology of the paper's §VI.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rups/internal/city"
	"rups/internal/core"
	"rups/internal/fm"
	"rups/internal/geo"
	"rups/internal/gps"
	"rups/internal/gsm"
	"rups/internal/mobility"
	"rups/internal/noise"
	"rups/internal/obs"
	"rups/internal/rangefinder"
	"rups/internal/scanner"
	"rups/internal/sensors"
	"rups/internal/trajectory"
)

// Scenario describes one two-vehicle drive.
type Scenario struct {
	Seed         uint64
	RoadClass    city.RoadClass
	RoadIndex    int // which road of that class in the generated city
	LeaderLane   int
	FollowerLane int
	DistanceM    float64
	InitGapM     float64
	Radios       int
	Placement    scanner.Placement
	// FollowerRadios/FollowerPlacement allow asymmetric configurations
	// (the paper's "4 central radios, 4 front radios" case). Zero values
	// mean "same as leader".
	FollowerRadios    int
	FollowerPlacement scanner.Placement
	Condition         mobility.Condition
	StopEveryM        float64
	// Trucks is the number of passing-truck perturbation events aimed at
	// the follower (the Fig 10 outlier mechanism).
	Trucks int
	// SkipInterpolation leaves missing channels unfilled (ablation of the
	// §IV-C missing-channel interpolation; the SYN search falls back to
	// its missing-tolerant slow path).
	SkipInterpolation bool
	// WithFM adds the FM broadcast band to the scan (the paper's §VII
	// future-work direction): trajectories grow fm.NumStations extra rows.
	WithFM bool
	// Odometry selects the travelled-distance source (§IV-B offers OBD/ECU
	// access or motion-sensor estimation; §VI-A adds the Hall wheel
	// sensor).
	Odometry OdometrySource
}

// OdometrySource selects how a vehicle measures travelled distance.
type OdometrySource int

const (
	// WheelOBD fuses the Hall wheel-revolution counter with OBD speed —
	// the paper's instrumented setup and the default.
	WheelOBD OdometrySource = iota
	// OBDOnly integrates the quantized OBD speed feed.
	OBDOnly
	// IMUOnly integrates IMU forward acceleration with zero-velocity
	// updates (the SenSpeed-style option).
	IMUOnly
)

// String names the odometry source for evaluation output.
func (o OdometrySource) String() string {
	switch o {
	case WheelOBD:
		return "wheel + OBD"
	case OBDOnly:
		return "OBD only"
	case IMUOnly:
		return "IMU only"
	default:
		return "unknown"
	}
}

// DefaultScenario returns a same-lane pair with four front radios on a road
// of the given class.
func DefaultScenario(seed uint64, class city.RoadClass) Scenario {
	return Scenario{
		Seed:         seed,
		RoadClass:    class,
		LeaderLane:   0,
		FollowerLane: 0,
		DistanceM:    1200,
		InitGapM:     25,
		Radios:       4,
		Placement:    scanner.FrontPanel,
		StopEveryM:   600,
	}
}

// VehicleRun is one vehicle's simulated drive plus everything its on-board
// pipeline produced.
type VehicleRun struct {
	Truth *mobility.Trace
	// Aware is the estimated, bound, interpolated GSM-aware trajectory.
	Aware *trajectory.Aware
	// MarkTruePos[i] is the true world position at mark i's timestamp —
	// the ground truth for SYN point errors.
	MarkTruePos []geo.Vec2
	// MissingBeforeInterp records the missing-cell fraction before
	// interpolation (scan coverage diagnostics).
	MissingBeforeInterp float64
}

// Run is an executed scenario.
type Run struct {
	Scenario Scenario
	City     *city.City
	Field    *gsm.Field
	Road     city.Road
	Leader   *VehicleRun
	Follower *VehicleRun

	gpsLeader   gpsSeries
	gpsFollower gpsSeries
	laser       *rangefinder.Rangefinder
}

// gpsSeries is the 1 Hz fix train a receiver produced over the drive — GPS
// updates at its own cadence, not at query times, which matters for outage
// hold-overs.
type gpsSeries struct {
	t0    float64
	fixes []geo.Vec2
	fresh []bool
}

// sampleGPS runs a receiver along a truth trace at 1 Hz.
func sampleGPS(rx *gps.Receiver, truth *mobility.Trace) gpsSeries {
	s := gpsSeries{t0: truth.States[0].T}
	end := s.t0 + truth.Duration()
	for t := s.t0; t <= end; t++ {
		fix, fresh := rx.Fix(truth.At(t).Pos, t)
		s.fixes = append(s.fixes, fix)
		s.fresh = append(s.fresh, fresh)
	}
	return s
}

// at returns the most recent fix not after t.
func (s gpsSeries) at(t float64) (geo.Vec2, bool) {
	if len(s.fixes) == 0 {
		return geo.Vec2{}, false
	}
	i := int(t - s.t0)
	if i < 0 {
		i = 0
	}
	if i >= len(s.fixes) {
		i = len(s.fixes) - 1
	}
	return s.fixes[i], s.fresh[i]
}

// Execute runs the scenario deterministically.
func Execute(sc Scenario) *Run {
	if sc.DistanceM <= 0 || sc.Radios <= 0 {
		panic(fmt.Sprintf("sim: invalid scenario %+v", sc))
	}
	if sc.FollowerRadios == 0 {
		sc.FollowerRadios = sc.Radios
		sc.FollowerPlacement = sc.Placement
	}
	c := city.Generate(city.DefaultConfig(sc.Seed))
	field := gsm.NewField(noise.Hash(sc.Seed, 0xF1E1D), gsm.GenerateTowers(noise.Hash(sc.Seed, 0x703E5), c.Bounds(), c), c)
	var src scanner.Source = field
	if sc.WithFM {
		src = scanner.NewMultiSource(field, fm.NewField(noise.Hash(sc.Seed, 0xF30), c.Bounds(), c))
	}

	roads := c.RoadsOfClass(sc.RoadClass)
	road := roads[sc.RoadIndex%len(roads)]

	leadCfg := mobility.DriveConfig{
		Road: road, Lane: sc.LeaderLane, StartS: 30, Distance: sc.DistanceM,
		StartTime: 0, Seed: noise.Hash(sc.Seed, 1),
		Condition: sc.Condition, StopEveryM: sc.StopEveryM, StopSeed: sc.Seed,
	}
	leader := mobility.Drive(leadCfg)
	folCfg := leadCfg
	folCfg.Lane = sc.FollowerLane
	folCfg.Seed = noise.Hash(sc.Seed, 2)
	follower := mobility.Follow(folCfg, leader, sc.InitGapM)

	// Passing-truck perturbations around the follower.
	for k := 0; k < sc.Trucks; k++ {
		field.AddPerturber(truckFor(sc, road, follower, k))
	}

	r := &Run{
		Scenario:    sc,
		City:        c,
		Field:       field,
		Road:        road,
		gpsLeader:   sampleGPS(gps.NewReceiver(noise.Hash(sc.Seed, 0x6A5, 1), c), leader),
		gpsFollower: sampleGPS(gps.NewReceiver(noise.Hash(sc.Seed, 0x6A5, 2), c), follower),
		laser:       rangefinder.New(noise.Hash(sc.Seed, 0x1A5E)),
	}
	rec := obs.ActiveRecorder()
	r.Leader = runVehicle(rec, leader, src, sc.Radios, sc.Placement, noise.Hash(sc.Seed, 3), sc.SkipInterpolation, sc.Odometry)
	r.Follower = runVehicle(rec, follower, src, sc.FollowerRadios, sc.FollowerPlacement, noise.Hash(sc.Seed, 4), sc.SkipInterpolation, sc.Odometry)
	return r
}

// truckFor builds the k-th passing-truck perturbation: a fast vehicle in
// the adjacent lane that overtakes the follower partway through the drive.
func truckFor(sc Scenario, road city.Road, follower *mobility.Trace, k int) gsm.TrackPerturbation {
	dur := follower.Duration()
	// Pass at a deterministic fraction of the drive.
	frac := 0.25 + 0.5*noise.Uniform(sc.Seed, 0x77C4, uint64(k))
	tc := follower.States[0].T + frac*dur
	sAtPass := follower.At(tc).S
	lane := sc.FollowerLane + 1
	if lane >= road.Class.Lanes() {
		lane = sc.FollowerLane - 1
		if lane < 0 {
			lane = 0
		}
	}
	off := road.LaneOffset(lane)
	const truckSpeed = 2.5 // m/s faster than the follower in relative terms
	return gsm.TrackPerturbation{
		PosAt: func(t float64) (geo.Vec2, bool) {
			if t < tc-20 || t > tc+20 {
				return geo.Vec2{}, false
			}
			s := sAtPass + truckSpeed*(t-tc) + follower.At(t).S - follower.At(tc).S
			return road.Line.Offset(s, off), true
		},
		RadiusM:     8,
		Loss:        11,
		ChannelFrac: 0.5,
		Seed:        noise.Hash(sc.Seed, 0x77C5, uint64(k)),
	}
}

// runVehicle executes one vehicle's full on-board pipeline. The span
// recorder is threaded in from the run-level entry point — looked up once
// per run, not once per vehicle — so every vehicle of a run traces into
// the same recorder snapshot.
func runVehicle(rec *obs.Recorder, truth *mobility.Trace, field scanner.Source, radios int, placement scanner.Placement, seed uint64, skipInterp bool, odoSrc OdometrySource) *VehicleRun {
	// Mounting attitude: an arbitrary yaw and a slight pitch, unknown to
	// the pipeline.
	yaw := (noise.Uniform(seed, 1) - 0.5) * math.Pi / 2
	pitch := (noise.Uniform(seed, 2) - 0.5) * 10 * math.Pi / 180
	mount := geo.RotZ(yaw).Mul(geo.RotX(pitch))

	const stationaryS = 5.0
	imu := sensors.SimulateIMU(truth, sensors.DefaultIMUConfig(noise.Hash(seed, 3), mount), stationaryS)
	r := sensors.EstimateMount(imu, truth.States[0].T)
	obd := sensors.SimulateOBD(truth, sensors.DefaultOBDConfig(noise.Hash(seed, 4)))
	var odo sensors.DistanceSource
	switch odoSrc {
	case WheelOBD:
		wcfg := sensors.DefaultWheelConfig(noise.Hash(seed, 5))
		// Per-vehicle tyre variation: each car's true circumference differs.
		wcfg.TrueCircumferenceM *= 1 + 0.004*(noise.Uniform(seed, 6)-0.5)
		pulses := sensors.SimulateWheel(truth, wcfg)
		odo = sensors.NewOdometer(pulses, wcfg, obd)
	case OBDOnly:
		odo = sensors.NewOBDOdometer(obd)
	case IMUOnly:
		odo = sensors.NewIMUOdometer(sensors.SpeedFromIMU(imu, r, imu[0].T))
	default:
		panic("sim: unknown odometry source")
	}
	g := sensors.DeadReckon(imu, r, odo, truth.States[0].T)

	// One trace covers this vehicle's scan → bind → interpolate leg of the
	// pipeline; the searcher/engine stages trace their own passes.
	tr := rec.NewTrace()
	sp := rec.Start(tr, "scan")
	samples := scanner.Scan(truth, field, scanner.DefaultConfig(noise.Hash(seed, 7), radios, placement))
	sp.Arg = int64(len(samples))
	sp.End()
	sp = rec.Start(tr, "bind")
	aware := trajectory.BindWidth(g, samples, field.Channels())
	sp.Arg = int64(aware.Len())
	sp.End()
	missing := aware.MissingFrac()
	if !skipInterp {
		sp = rec.Start(tr, "interpolate")
		aware.Interpolate()
		sp.End()
	}

	truePos := make([]geo.Vec2, len(g.Marks))
	for i, mk := range g.Marks {
		truePos[i] = truth.At(mk.T).Pos
	}
	return &VehicleRun{
		Truth:               truth,
		Aware:               aware,
		MarkTruePos:         truePos,
		MissingBeforeInterp: missing,
	}
}

// PipelineVehicle runs the full on-board pipeline (IMU → reorientation →
// odometry → dead reckoning; scan → bind → interpolate) for an arbitrary
// ground-truth drive. It is the building block for multi-vehicle setups
// beyond the two-vehicle Scenario, e.g. convoys.
func PipelineVehicle(truth *mobility.Trace, field scanner.Source, radios int, placement scanner.Placement, seed uint64) *VehicleRun {
	return runVehicle(obs.ActiveRecorder(), truth, field, radios, placement, seed, false, WheelOBD)
}

// ResolveAt answers a rear→front relative-distance query between any two
// pipelined vehicles at time t: the estimate is positive when front is
// ahead of rear.
func ResolveAt(rear, front *VehicleRun, t float64, p core.Params) (core.Estimate, bool) {
	return core.Resolve(rear.Aware.PrefixUntil(t), front.Aware.PrefixUntil(t), p)
}

// QueryResult is one relative-distance query answered by RUPS and GPS.
type QueryResult struct {
	T        float64
	TruthGap float64 // ground truth front-rear distance, metres

	OK       bool // RUPS produced an estimate
	Est      core.Estimate
	RDE      float64 // |estimate − truth| when OK
	SYNErrM  float64 // true distance between the best SYN's matched marks
	GPSEst   float64
	GPSRDE   float64
	GPSFresh bool
	// LaserM/LaserOK: the validation rangefinder on the rear car (§VI-A),
	// which only returns within its 50 m effective range and on straight
	// stretches (line of sight along the lane).
	LaserM  float64
	LaserOK bool
}

// Query answers a relative-distance query at time t. Queries that mutate
// GPS receiver state should be issued in ascending time order; QueryMany
// does this for you.
func (r *Run) Query(t float64, p core.Params) QueryResult {
	res := QueryResult{T: t}
	res.TruthGap = mobility.TrueGap(r.Leader.Truth, r.Follower.Truth, t)

	pf := r.Follower.Aware.PrefixUntil(t)
	pl := r.Leader.Aware.PrefixUntil(t)
	if est, ok := core.Resolve(pf, pl, p); ok {
		res.OK = true
		res.Est = est
		res.RDE = math.Abs(est.Distance - res.TruthGap)
		res.SYNErrM = r.synError(est)
	}
	if tel := simTel.Get(); tel != nil {
		if res.OK {
			tel.resolved.Inc()
			tel.pairError.Observe(res.RDE)
		} else {
			tel.unresolved.Inc()
		}
	}

	truthF := r.Follower.Truth.At(t).Pos
	truthL := r.Leader.Truth.At(t).Pos
	// The rangefinder sees the leader when it is near the boresight of the
	// follower's heading and in range.
	if r.Scenario.LeaderLane == r.Scenario.FollowerLane {
		if d, ok := r.laser.Measure(truthF.Dist(truthL)); ok {
			res.LaserM, res.LaserOK = d, true
		}
	}
	fixF, freshF := r.gpsFollower.at(t)
	fixL, freshL := r.gpsLeader.at(t)
	res.GPSEst = gps.RelativeDistance(fixF, fixL)
	res.GPSRDE = math.Abs(res.GPSEst - truthF.Dist(truthL))
	res.GPSFresh = freshF && freshL
	return res
}

// synError returns the true separation of the best SYN point's matched
// marks.
func (r *Run) synError(est core.Estimate) float64 {
	best := est.SYNs[0]
	for _, s := range est.SYNs[1:] {
		if s.Score > best.Score {
			best = s
		}
	}
	if best.IdxA >= len(r.Follower.MarkTruePos) || best.IdxB >= len(r.Leader.MarkTruePos) {
		return math.NaN()
	}
	return r.Follower.MarkTruePos[best.IdxA].Dist(r.Leader.MarkTruePos[best.IdxB])
}

// GPSFixFor exposes the run's 1 Hz GPS fix series, letting the trace
// recorder materialize it. The position argument is ignored — fixes were
// produced along the truth trace when the scenario executed.
func (r *Run) GPSFixFor(leader bool, _ geo.Vec2, t float64) (geo.Vec2, bool) {
	if leader {
		return r.gpsLeader.at(t)
	}
	return r.gpsFollower.at(t)
}

// QueryTimes picks n deterministic query times spread over the drive,
// skipping a warm-up so both vehicles have context, returned sorted.
func (r *Run) QueryTimes(n int, seed uint64) []float64 {
	t0 := r.Follower.Truth.States[0].T
	t1 := t0 + r.Follower.Truth.Duration()
	warm := t0 + 60 // both vehicles need some trajectory first
	if warm > t1 {
		warm = (t0 + t1) / 2
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = warm + (t1-warm)*noise.Uniform(seed, uint64(i), 0x91)
	}
	sort.Float64s(out)
	return out
}

// QueryMany runs queries at the given times in order.
func (r *Run) QueryMany(times []float64, p core.Params) []QueryResult {
	return r.QueryManyParallel(times, p, runtime.GOMAXPROCS(0))
}

// QueryManyParallel evaluates the queries concurrently over a worker pool
// and returns the results in input order. Query is read-only with respect
// to the run (GPS fixes are precomputed; the rangefinder counter is
// atomic), so the fan-out is safe; determinism of each individual result is
// preserved because nothing depends on evaluation order except the
// rangefinder's noise stream, whose amplitude is centimetres.
func (r *Run) QueryManyParallel(times []float64, p core.Params, workers int) []QueryResult {
	if workers < 1 {
		workers = 1
	}
	if workers > len(times) {
		workers = len(times)
	}
	out := make([]QueryResult, len(times))
	if workers <= 1 {
		for i, t := range times {
			out[i] = r.Query(t, p)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(times) {
					return
				}
				out[i] = r.Query(times[i], p)
			}
		}()
	}
	wg.Wait()
	return out
}
