package sim

import (
	"math"
	"reflect"
	"testing"

	"rups/internal/city"
	"rups/internal/core"
	"rups/internal/engine"
	"rups/internal/link"
	"rups/internal/v2v"
)

// settle drives the mesh to quiescence at time t, bounded.
func settle(t *testing.T, lc *LinkedConvoy, at float64) {
	t.Helper()
	for i := 0; i < 50000 && !lc.Quiescent(); i++ {
		lc.Advance(at)
	}
	if !lc.Quiescent() {
		t.Fatalf("mesh not quiescent at t=%.1f (max lag %d marks)", at, lc.MaxLag())
	}
}

// TestLinkedCleanMatchesDirectAdmit is the acceptance oracle: with loss=0
// the reliable path — chunked, fragmented, CRC-framed, acked, reassembled —
// must produce byte-equivalent pair resolutions to handing the engine the
// trajectories directly.
func TestLinkedCleanMatchesDirectAdmit(t *testing.T) {
	r := getConvoy(t)
	t0, t1 := r.TimeSpan()
	tq := t0 + 0.8*(t1-t0)
	lc := NewLinkedConvoy(r, link.Params{Seed: 1}, v2v.SyncConfig{}, core.Staleness{})
	for ts := t0 + 0.5; ts < tq; ts += 0.5 {
		lc.Advance(ts)
	}
	lc.Advance(tq)
	settle(t, lc, tq)

	e := engine.New(0)
	defer e.Close()
	p := core.DefaultParams()
	got, err := lc.ResolveAllAt(e, tq, p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.ResolveAllAt(e, tq, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("clean reliable path diverged from direct Admit:\n%+v\nvs\n%+v", got, want)
	}
}

// chaosFaults is the lossy regime of the chaos scenarios: 20% i.i.d. loss
// with occasional multi-frame burst outages, light reordering, duplication
// and corruption.
func chaosFaults(seed uint64) link.Params {
	return link.Params{
		Seed: seed, Loss: 0.2,
		BurstEnter: 0.01, BurstExit: 0.1,
		Reorder: 0.05, Duplicate: 0.02, Corrupt: 0.02, Jitter: 2,
	}
}

// runChaosConvoy executes the 6-vehicle lossy-then-healed scenario and
// returns the final pair resolutions with the query time.
func runChaosConvoy(t *testing.T, run *ConvoyRun, linkSeed uint64) ([]engine.Result, float64) {
	t.Helper()
	t0, t1 := run.TimeSpan()
	lc := NewLinkedConvoy(run, chaosFaults(linkSeed), v2v.SyncConfig{Seed: linkSeed}, core.DefaultStaleness())
	healAt := t0 + 0.6*(t1-t0)
	tq := t0 + 0.9*(t1-t0)
	healed := false
	for ts := t0 + 0.5; ts < tq; ts += 0.5 {
		if !healed && ts >= healAt {
			lc.SetFaults(link.Params{Seed: linkSeed})
			healed = true
		}
		lc.Advance(ts)
	}
	lc.Advance(tq)
	settle(t, lc, tq)

	e := engine.New(0)
	defer e.Close()
	res, err := lc.ResolveAllAt(e, tq, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return res, tq
}

// TestChaosConvoyConvergesAfterHeal: a 6-vehicle convoy syncs under 20%
// i.i.d. loss plus burst outages for most of the drive; once the link
// heals, every one of the 15 pairs must resolve within tolerance —
// deterministically for the link seed. Run in CI under -race across three
// fixed seeds.
func TestChaosConvoyConvergesAfterHeal(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos convoy sim skipped in -short mode")
	}
	// A scenario where the direct (perfect-channel) path resolves all 15
	// pairs, so any failure here is the link layer's fault.
	sc := DefaultScenario(29, city.FourLaneUrban)
	sc.DistanceM = 900
	sc.Radios = 8
	sc.InitGapM = 10
	run := ExecuteConvoy(sc, 6)

	res, tq := runChaosConvoy(t, run, 1701)
	if len(res) != 15 {
		t.Fatalf("6-vehicle convoy produced %d pair results, want 15", len(res))
	}
	for _, pr := range res {
		if !pr.OK {
			t.Errorf("pair (%d,%d) unresolved after the link healed", pr.A, pr.B)
			continue
		}
		if pr.Stale {
			t.Errorf("pair (%d,%d) still stale after full recovery", pr.A, pr.B)
		}
		truth := run.TruthGapAt(pr.A, pr.B, tq)
		if err := math.Abs(pr.Est.Distance - truth); err > 30 {
			t.Errorf("pair (%d,%d): estimate %.1f vs truth %.1f (err %.1f m)",
				pr.A, pr.B, pr.Est.Distance, truth, err)
		}
	}

	// Determinism: the same link seed replays the identical lossy run.
	again, _ := runChaosConvoy(t, run, 1701)
	if !reflect.DeepEqual(res, again) {
		t.Fatal("same link seed produced different chaos results")
	}
}

// TestLinkedOutageDegradesGracefully: under a permanent total outage the
// mesh keeps stepping (backing off, not spinning), copies stay empty, and
// resolution refuses every pair via the staleness policy instead of
// panicking or fabricating distances.
func TestLinkedOutageDegradesGracefully(t *testing.T) {
	r := getConvoy(t)
	t0, t1 := r.TimeSpan()
	dead := link.Params{Seed: 3, BurstEnter: 1, BurstExit: 0}
	lc := NewLinkedConvoy(r, dead, v2v.SyncConfig{Seed: 3}, core.DefaultStaleness())
	tq := t0 + 0.5*(t1-t0)
	for ts := t0 + 0.5; ts <= tq; ts += 0.5 {
		lc.Advance(ts)
	}
	if lag := lc.MaxLag(); lag == 0 {
		t.Fatal("total outage but no sync lag — frames got through a dead link")
	}
	e := engine.New(0)
	defer e.Close()
	res, err := lc.ResolveAllAt(e, tq, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range res {
		if pr.OK {
			t.Errorf("pair (%d,%d) resolved from an empty link-delivered copy", pr.A, pr.B)
		}
	}
}
