package sim

import (
	"fmt"
	"math"

	"rups/internal/city"
	"rups/internal/core"
	"rups/internal/engine"
	"rups/internal/fm"
	"rups/internal/gsm"
	"rups/internal/mobility"
	"rups/internal/noise"
	"rups/internal/obs"
	"rups/internal/scanner"
	"rups/internal/trajectory"
)

// ConvoyRun is an executed N-vehicle scenario: vehicle 0 leads, vehicle i
// follows vehicle i−1 with the scenario's initial gap. It is the
// multi-vehicle counterpart of Run, built for batch resolution through the
// engine.
type ConvoyRun struct {
	Scenario Scenario
	Vehicles []*VehicleRun // index 0 = leader, increasing = further back
}

// ExecuteConvoy runs an n-vehicle follow chain deterministically: same
// city, field, and road selection as Execute, with each vehicle's full
// on-board pipeline.
func ExecuteConvoy(sc Scenario, n int) *ConvoyRun {
	if sc.DistanceM <= 0 || sc.Radios <= 0 || n < 2 {
		panic(fmt.Sprintf("sim: invalid convoy scenario %+v (n=%d)", sc, n))
	}
	c := city.Generate(city.DefaultConfig(sc.Seed))
	field := gsm.NewField(noise.Hash(sc.Seed, 0xF1E1D),
		gsm.GenerateTowers(noise.Hash(sc.Seed, 0x703E5), c.Bounds(), c), c)
	var src scanner.Source = field
	if sc.WithFM {
		src = scanner.NewMultiSource(field, fm.NewField(noise.Hash(sc.Seed, 0xF30), c.Bounds(), c))
	}
	roads := c.RoadsOfClass(sc.RoadClass)
	road := roads[sc.RoadIndex%len(roads)]

	cfg := mobility.DriveConfig{
		Road: road, Lane: sc.LeaderLane, StartS: 30, Distance: sc.DistanceM,
		StartTime: 0, Seed: noise.Hash(sc.Seed, 1),
		Condition: sc.Condition, StopEveryM: sc.StopEveryM, StopSeed: sc.Seed,
	}
	traces := make([]*mobility.Trace, n)
	traces[0] = mobility.Drive(cfg)
	for vi := 1; vi < n; vi++ {
		fc := cfg
		fc.Lane = sc.FollowerLane
		fc.Seed = noise.Hash(sc.Seed, uint64(vi+1))
		traces[vi] = mobility.Follow(fc, traces[vi-1], sc.InitGapM)
	}

	run := &ConvoyRun{Scenario: sc, Vehicles: make([]*VehicleRun, n)}
	// One recorder lookup for the whole convoy, outside the vehicle loop.
	rec := obs.ActiveRecorder()
	for vi, tr := range traces {
		run.Vehicles[vi] = runVehicle(rec, tr, src, sc.Radios, sc.Placement,
			noise.Hash(sc.Seed, 0xC0, uint64(vi)), sc.SkipInterpolation, sc.Odometry)
	}
	return run
}

// TruthGapAt returns the ground-truth front-rear distance between vehicles
// i (rear) and j (front) at time t. Positive when j is ahead.
func (r *ConvoyRun) TruthGapAt(i, j int, t float64) float64 {
	return mobility.TrueGap(r.Vehicles[j].Truth, r.Vehicles[i].Truth, t)
}

// TimeSpan returns the convoy's common simulated interval: from the last
// vehicle's start to the earliest end.
func (r *ConvoyRun) TimeSpan() (t0, t1 float64) {
	t0 = r.Vehicles[0].Truth.States[0].T
	t1 = t0 + r.Vehicles[0].Truth.Duration()
	for _, v := range r.Vehicles[1:] {
		s0 := v.Truth.States[0].T
		s1 := s0 + v.Truth.Duration()
		if s0 > t0 {
			t0 = s0
		}
		if s1 < t1 {
			t1 = s1
		}
	}
	return t0, t1
}

// ContextsAt returns every vehicle's trajectory as known at time t — the
// per-tick admission input for the engine.
func (r *ConvoyRun) ContextsAt(t float64) []*trajectory.Aware {
	ctxs := make([]*trajectory.Aware, len(r.Vehicles))
	for i, v := range r.Vehicles {
		ctxs[i] = v.Aware.PrefixUntil(t)
	}
	return ctxs
}

// ResolveAllAt answers every pairwise relative-distance query at time t
// through the engine: contexts are admitted once, then all pairs resolve
// concurrently over the pool. Result (i, j) estimates how far vehicle j is
// ahead of vehicle i; each is bit-identical to the sequential
// core.Resolve on the same contexts. Returns engine.ErrClosed if the
// engine was closed. When telemetry is enabled, each resolved pair's
// |d_r error| against the mobility ground truth lands in the
// rups_sim_pair_error_metres histogram.
func (r *ConvoyRun) ResolveAllAt(e *engine.Engine, t float64, p core.Params) ([]engine.Result, error) {
	res, err := e.ResolveAll(r.ContextsAt(t), p)
	if err != nil {
		return nil, err
	}
	if tel := simTel.Get(); tel != nil {
		for _, pr := range res {
			if !pr.OK {
				tel.unresolved.Inc()
				continue
			}
			tel.resolved.Inc()
			tel.pairError.Observe(math.Abs(pr.Est.Distance - r.TruthGapAt(pr.A, pr.B, t)))
		}
	}
	return res, nil
}
