package sim

import (
	"math"
	"testing"

	"rups/internal/city"
	"rups/internal/core"
	"rups/internal/stats"
)

// One shared run for the expensive fixture.
var sharedRun *Run

func getRun(t *testing.T) *Run {
	t.Helper()
	if sharedRun == nil {
		sc := DefaultScenario(62, city.FourLaneUrban)
		sc.DistanceM = 900
		sharedRun = Execute(sc)
	}
	return sharedRun
}

func TestExecutePipelineSanity(t *testing.T) {
	r := getRun(t)
	for name, v := range map[string]*VehicleRun{"leader": r.Leader, "follower": r.Follower} {
		if v.Aware.Len() < 700 {
			t.Errorf("%s: only %d marks for a 900 m drive", name, v.Aware.Len())
		}
		if len(v.MarkTruePos) != v.Aware.Len() {
			t.Errorf("%s: truth positions misaligned", name)
		}
		if v.MissingBeforeInterp <= 0 || v.MissingBeforeInterp >= 1 {
			t.Errorf("%s: missing fraction %v implausible", name, v.MissingBeforeInterp)
		}
	}
}

func TestMarkPositionsFollowRoad(t *testing.T) {
	r := getRun(t)
	// Consecutive mark true positions are about a metre apart (odometer
	// scale error aside).
	v := r.Follower
	var acc stats.Online
	for i := 1; i < len(v.MarkTruePos); i++ {
		acc.Add(v.MarkTruePos[i].Dist(v.MarkTruePos[i-1]))
	}
	if acc.Mean() < 0.9 || acc.Mean() > 1.1 {
		t.Errorf("mean inter-mark spacing %v, want ~1 m", acc.Mean())
	}
}

func TestQueryResolvesDistance(t *testing.T) {
	r := getRun(t)
	p := core.DefaultParams()
	times := r.QueryTimes(25, 99)
	results := r.QueryMany(times, p)
	okCount := 0
	var rde stats.Online
	for _, q := range results {
		if !q.OK {
			continue
		}
		okCount++
		rde.Add(q.RDE)
		if q.TruthGap <= 0 {
			t.Errorf("truth gap %v not positive", q.TruthGap)
		}
	}
	if okCount < len(results)*5/10 {
		t.Fatalf("only %d/%d queries resolved", okCount, len(results))
	}
	if rde.Mean() > 8 {
		t.Errorf("mean RDE %v m, want single digits (paper: ~2-5 m)", rde.Mean())
	}
}

func TestQuerySYNError(t *testing.T) {
	r := getRun(t)
	p := core.DefaultParams()
	var syn stats.Online
	for _, q := range r.QueryMany(r.QueryTimes(15, 123), p) {
		if q.OK && !math.IsNaN(q.SYNErrM) {
			syn.Add(q.SYNErrM)
		}
	}
	if syn.N() == 0 {
		t.Fatal("no SYN errors recorded")
	}
	if syn.Mean() > 10 {
		t.Errorf("mean SYN error %v m", syn.Mean())
	}
}

func TestQueryGPSBaseline(t *testing.T) {
	r := getRun(t)
	p := core.DefaultParams()
	var gpsErr stats.Online
	for _, q := range r.QueryMany(r.QueryTimes(25, 7), p) {
		gpsErr.Add(q.GPSRDE)
	}
	// 4-lane urban: paper reports ~9.9 m for GPS.
	if gpsErr.Mean() < 3 || gpsErr.Mean() > 20 {
		t.Errorf("GPS mean RDE %v m, want urban-grade error", gpsErr.Mean())
	}
}

func TestExecuteDeterministic(t *testing.T) {
	sc := DefaultScenario(77, city.TwoLaneSuburb)
	sc.DistanceM = 400
	a := Execute(sc)
	b := Execute(sc)
	if a.Follower.Aware.Len() != b.Follower.Aware.Len() {
		t.Fatal("non-deterministic mark count")
	}
	for i := 0; i < a.Follower.Aware.Len(); i += 37 {
		if a.Follower.Aware.At(10, i) != b.Follower.Aware.At(10, i) {
			t.Fatal("non-deterministic power matrix")
		}
	}
}

func TestExecutePanicsOnBadScenario(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Execute(Scenario{})
}

func TestTruckPerturbationAffectsField(t *testing.T) {
	sc := DefaultScenario(88, city.EightLaneUrban)
	sc.DistanceM = 400
	sc.Trucks = 2
	r := Execute(sc)
	if r.Follower.Aware.Len() == 0 {
		t.Fatal("no trajectory")
	}
	// The perturbed run must still resolve most queries (robustness).
	p := core.DefaultParams()
	ok := 0
	results := r.QueryMany(r.QueryTimes(10, 5), p)
	for _, q := range results {
		if q.OK {
			ok++
		}
	}
	if ok < len(results)/2 {
		t.Errorf("only %d/%d queries resolved under perturbation", ok, len(results))
	}
}
