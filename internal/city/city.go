// Package city builds the synthetic urban road network the evaluation
// drives on. It substitutes for the paper's 97 km Shanghai experiment route
// (§VI-A): roads of the same four classes the paper evaluates — 2-lane
// suburban, 4-lane urban, 8-lane urban, and roads running under elevated
// decks — laid out over a ringed zoning (downtown core, urban ring,
// suburban outskirts) that doubles as the gsm.Zoning for radio propagation.
package city

import (
	"fmt"
	"math"

	"rups/internal/geo"
	"rups/internal/gsm"
	"rups/internal/noise"
)

// RoadClass is the paper's road taxonomy (§VI-A: open, semi-open, close).
type RoadClass int

const (
	// TwoLaneSuburb is an open 2-lane suburban surface road.
	TwoLaneSuburb RoadClass = iota
	// FourLaneUrban is a semi-open 4-lane urban surface road with
	// surrounding buildings and trees.
	FourLaneUrban
	// EightLaneUrban is an 8-lane urban major road flanked by tall
	// buildings.
	EightLaneUrban
	// UnderElevated is a surface road running beneath an elevated road
	// deck — the paper's "close" environment.
	UnderElevated
)

// NumRoadClasses is the count of road classes.
const NumRoadClasses = 4

// String returns the class name used in evaluation output.
func (rc RoadClass) String() string {
	switch rc {
	case TwoLaneSuburb:
		return "2-lane suburb"
	case FourLaneUrban:
		return "4-lane urban"
	case EightLaneUrban:
		return "8-lane urban"
	case UnderElevated:
		return "under elevated"
	default:
		return "unknown"
	}
}

// Lanes returns the number of lanes (both directions combined).
func (rc RoadClass) Lanes() int {
	switch rc {
	case TwoLaneSuburb:
		return 2
	case FourLaneUrban:
		return 4
	case EightLaneUrban, UnderElevated:
		return 8
	default:
		panic(fmt.Sprintf("city: unknown road class %d", rc))
	}
}

// LaneWidthM is the standard lane width used for lateral offsets.
const LaneWidthM = 3.5

// Env returns the radio environment class a receiver on this road class
// experiences.
func (rc RoadClass) Env() gsm.EnvClass {
	switch rc {
	case TwoLaneSuburb:
		return gsm.Suburban
	case FourLaneUrban:
		return gsm.Urban
	case EightLaneUrban:
		return gsm.Downtown
	case UnderElevated:
		return gsm.UnderElevated
	default:
		panic(fmt.Sprintf("city: unknown road class %d", rc))
	}
}

// SpeedLimitMS returns a typical free-flow speed for the class, m/s.
func (rc RoadClass) SpeedLimitMS() float64 {
	switch rc {
	case TwoLaneSuburb:
		return 16.7 // 60 km/h
	case FourLaneUrban:
		return 13.9 // 50 km/h
	case EightLaneUrban:
		return 16.7 // 60 km/h
	case UnderElevated:
		return 11.1 // 40 km/h
	default:
		panic(fmt.Sprintf("city: unknown road class %d", rc))
	}
}

// Road is one drivable road: a centreline polyline plus its class. Lane i
// (0-based, counting from the centre to the right of travel) is the offset
// (i + 0.5)·LaneWidthM from the centreline.
type Road struct {
	ID    int
	Class RoadClass
	Line  *geo.Polyline
}

// LaneOffset returns the lateral centreline offset of lane i.
func (r Road) LaneOffset(lane int) float64 {
	if lane < 0 || lane >= r.Class.Lanes() {
		panic(fmt.Sprintf("city: lane %d out of range for %s", lane, r.Class))
	}
	return (float64(lane) + 0.5) * LaneWidthM
}

// Config parametrizes city generation.
type Config struct {
	Seed uint64
	// HalfSizeM is the half-extent of the square world; the city spans
	// [-HalfSizeM, HalfSizeM]².
	HalfSizeM float64
	// DowntownRadiusM and UrbanRadiusM bound the downtown core and the
	// urban ring; beyond UrbanRadiusM is suburban.
	DowntownRadiusM float64
	UrbanRadiusM    float64
	// RoadsPerClass is how many roads of each class to lay out.
	RoadsPerClass int
	// RoadLenM is the target road length.
	RoadLenM float64
}

// DefaultConfig returns a city comparable in diversity to the paper's
// experiment route: a 6×6 km world with a 1.2 km downtown core.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:            seed,
		HalfSizeM:       3000,
		DowntownRadiusM: 1200,
		UrbanRadiusM:    2200,
		RoadsPerClass:   8,
		RoadLenM:        2000,
	}
}

// City is the generated road network plus zoning. It implements gsm.Zoning.
type City struct {
	Cfg   Config
	Roads []Road

	// coverCells marks 25 m grid cells lying under an elevated deck.
	coverCells map[[2]int32]bool
}

const coverCellM = 25.0

// Generate lays out the road network deterministically from cfg.Seed.
func Generate(cfg Config) *City {
	if cfg.RoadsPerClass <= 0 || cfg.RoadLenM <= 0 || cfg.HalfSizeM <= 0 {
		panic("city: invalid config")
	}
	c := &City{Cfg: cfg, coverCells: map[[2]int32]bool{}}
	id := 0
	for class := RoadClass(0); class < NumRoadClasses; class++ {
		for i := 0; i < cfg.RoadsPerClass; i++ {
			line := c.layoutRoad(class, uint64(i))
			c.Roads = append(c.Roads, Road{ID: id, Class: class, Line: line})
			if class == UnderElevated {
				c.markCover(line)
			}
			id++
		}
	}
	return c
}

// ringFor returns the radial band [rMin, rMax] a road class belongs to.
func (c *City) ringFor(class RoadClass) (rMin, rMax float64) {
	switch class {
	case TwoLaneSuburb:
		return c.Cfg.UrbanRadiusM, c.Cfg.HalfSizeM * 0.95
	case FourLaneUrban:
		return c.Cfg.DowntownRadiusM, c.Cfg.UrbanRadiusM
	case EightLaneUrban, UnderElevated:
		return 0, c.Cfg.DowntownRadiusM
	default:
		panic("city: unknown road class")
	}
}

// layoutRoad walks a gently meandering polyline of roughly RoadLenM within
// the class's radial band, re-aiming toward the band when it drifts out so
// the road's environment stays representative of its class.
func (c *City) layoutRoad(class RoadClass, key uint64) *geo.Polyline {
	rMin, rMax := c.ringFor(class)
	seed := noise.Hash(c.Cfg.Seed, uint64(class), key, 0x40AD)

	// Start at a deterministic point inside the band.
	ang := 2 * math.Pi * noise.Uniform(seed, 1)
	rad := rMin + (rMax-rMin)*noise.Uniform(seed, 2)
	if rMin <= 0 {
		// Keep downtown starts away from the exact centre so headings
		// distribute evenly.
		rad = rMax * (0.2 + 0.7*noise.Uniform(seed, 2))
	}
	pos := geo.Vec2{X: rad * math.Cos(ang), Y: rad * math.Sin(ang)}
	heading := 2 * math.Pi * noise.Uniform(seed, 3)

	const step = 100.0
	pts := []geo.Vec2{pos}
	var length float64
	for i := uint64(0); length < c.Cfg.RoadLenM; i++ {
		// Gentle meander: ±4° per 100 m.
		heading += (noise.Uniform(seed, 4, i) - 0.5) * (8 * math.Pi / 180)
		next := pos.Add(geo.HeadingVec(heading).Scale(step))
		// Steer back toward the band if the walk leaves it.
		r := next.Norm()
		if r > rMax || r < rMin {
			toBand := next.Scale(-1).Heading() // toward the centre
			if r < rMin {
				toBand = next.Heading() // away from the centre
			}
			heading += geo.HeadingDiff(heading, toBand) * 0.5
			next = pos.Add(geo.HeadingVec(heading).Scale(step))
		}
		pts = append(pts, next)
		pos = next
		length += step
	}
	return geo.NewPolyline(pts...)
}

// markCover flags the grid cells within two lane-widths of an under-elevated
// road centreline as covered.
func (c *City) markCover(line *geo.Polyline) {
	halfWidth := float64(UnderElevated.Lanes()) / 2 * LaneWidthM
	for s := 0.0; s <= line.Length(); s += coverCellM / 2 {
		p := line.At(s)
		for dx := -halfWidth; dx <= halfWidth; dx += coverCellM / 2 {
			for dy := -halfWidth; dy <= halfWidth; dy += coverCellM / 2 {
				q := p.Add(geo.Vec2{X: dx, Y: dy})
				c.coverCells[cellOf(q)] = true
			}
		}
	}
}

func cellOf(p geo.Vec2) [2]int32 {
	return [2]int32{
		int32(math.Floor(p.X / coverCellM)),
		int32(math.Floor(p.Y / coverCellM)),
	}
}

// EnvAt implements gsm.Zoning: covered cells are UnderElevated; otherwise
// the radial rings decide.
func (c *City) EnvAt(pos geo.Vec2) gsm.EnvClass {
	if c.coverCells[cellOf(pos)] {
		return gsm.UnderElevated
	}
	r := pos.Norm()
	switch {
	case r < c.Cfg.DowntownRadiusM:
		return gsm.Downtown
	case r < c.Cfg.UrbanRadiusM:
		return gsm.Urban
	default:
		return gsm.Suburban
	}
}

// Bounds returns the world extent, for tower generation.
func (c *City) Bounds() gsm.Bounds {
	h := c.Cfg.HalfSizeM
	return gsm.Bounds{MinX: -h, MinY: -h, MaxX: h, MaxY: h}
}

// RoadsOfClass returns the roads of one class.
func (c *City) RoadsOfClass(class RoadClass) []Road {
	var out []Road
	for _, r := range c.Roads {
		if r.Class == class {
			out = append(out, r)
		}
	}
	return out
}

// LRoad builds a standalone road with a sharp 90° turn after legLen metres —
// the short-context-after-a-turn scenario of §V-C. It is placed in the band
// of the given class.
func (c *City) LRoad(class RoadClass, key uint64, legLen float64) Road {
	seed := noise.Hash(c.Cfg.Seed, uint64(class), key, 0x17AD)
	rMin, rMax := c.ringFor(class)
	ang := 2 * math.Pi * noise.Uniform(seed, 1)
	rad := (rMin + rMax) / 2
	start := geo.Vec2{X: rad * math.Cos(ang), Y: rad * math.Sin(ang)}
	h := 2 * math.Pi * noise.Uniform(seed, 2)
	corner := start.Add(geo.HeadingVec(h).Scale(legLen))
	end := corner.Add(geo.HeadingVec(geo.NormalizeHeading(h + math.Pi/2)).Scale(legLen))
	return Road{
		ID:    -1,
		Class: class,
		Line:  geo.NewPolyline(start, corner, end),
	}
}
