package city

import (
	"math"
	"testing"

	"rups/internal/geo"
	"rups/internal/gsm"
)

func testCity() *City { return Generate(DefaultConfig(1)) }

func TestGenerateCounts(t *testing.T) {
	c := testCity()
	if got := len(c.Roads); got != 4*c.Cfg.RoadsPerClass {
		t.Fatalf("road count = %d, want %d", got, 4*c.Cfg.RoadsPerClass)
	}
	for class := RoadClass(0); class < NumRoadClasses; class++ {
		if got := len(c.RoadsOfClass(class)); got != c.Cfg.RoadsPerClass {
			t.Errorf("%s: %d roads, want %d", class, got, c.Cfg.RoadsPerClass)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(5))
	b := Generate(DefaultConfig(5))
	for i := range a.Roads {
		pa, pb := a.Roads[i].Line.Points(), b.Roads[i].Line.Points()
		if len(pa) != len(pb) {
			t.Fatalf("road %d point counts differ", i)
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("road %d point %d differs", i, j)
			}
		}
	}
}

func TestRoadLengths(t *testing.T) {
	c := testCity()
	for _, r := range c.Roads {
		if r.Line.Length() < c.Cfg.RoadLenM-1e-6 {
			t.Errorf("road %d (%s) length %v < %v", r.ID, r.Class, r.Line.Length(), c.Cfg.RoadLenM)
		}
	}
}

func TestRoadsStayNearTheirRing(t *testing.T) {
	c := testCity()
	for _, r := range c.Roads {
		rMin, rMax := c.ringFor(r.Class)
		// Allow a tolerance: the meander may briefly overshoot before being
		// steered back.
		const slack = 300.0
		for s := 0.0; s < r.Line.Length(); s += 50 {
			rad := r.Line.At(s).Norm()
			if rad > rMax+slack || rad < rMin-slack {
				t.Errorf("road %d (%s) at s=%v has radius %v outside [%v,%v]±%v",
					r.ID, r.Class, s, rad, rMin, rMax, slack)
				break
			}
		}
	}
}

func TestEnvAtRings(t *testing.T) {
	c := testCity()
	cases := []struct {
		pos  geo.Vec2
		want gsm.EnvClass
	}{
		{geo.Vec2{X: 100, Y: 0}, gsm.Downtown},
		{geo.Vec2{X: 1800, Y: 0}, gsm.Urban},
		{geo.Vec2{X: 2800, Y: 0}, gsm.Suburban},
	}
	for _, cse := range cases {
		got := c.EnvAt(cse.pos)
		// Position may coincidentally sit under an elevated deck; accept
		// that too.
		if got != cse.want && got != gsm.UnderElevated {
			t.Errorf("EnvAt(%v) = %v, want %v", cse.pos, got, cse.want)
		}
	}
}

func TestEnvAtUnderElevated(t *testing.T) {
	c := testCity()
	roads := c.RoadsOfClass(UnderElevated)
	r := roads[0]
	// On the centreline of an under-elevated road, the env must be
	// UnderElevated.
	for s := 0.0; s < r.Line.Length(); s += 100 {
		if got := c.EnvAt(r.Line.At(s)); got != gsm.UnderElevated {
			t.Fatalf("EnvAt on elevated road at s=%v = %v", s, got)
		}
	}
	// Lane offsets are still under the deck.
	if got := c.EnvAt(r.Line.Offset(500, r.LaneOffset(0))); got != gsm.UnderElevated {
		t.Errorf("EnvAt in lane 0 = %v", got)
	}
}

func TestRoadClassProperties(t *testing.T) {
	if TwoLaneSuburb.Lanes() != 2 || EightLaneUrban.Lanes() != 8 {
		t.Error("lane counts wrong")
	}
	if TwoLaneSuburb.Env() != gsm.Suburban || UnderElevated.Env() != gsm.UnderElevated {
		t.Error("env mapping wrong")
	}
	for class := RoadClass(0); class < NumRoadClasses; class++ {
		if class.SpeedLimitMS() <= 0 {
			t.Errorf("%s speed limit not positive", class)
		}
		if class.String() == "unknown" {
			t.Errorf("class %d has no name", class)
		}
	}
}

func TestLaneOffset(t *testing.T) {
	r := Road{Class: FourLaneUrban, Line: geo.NewPolyline(geo.Vec2{}, geo.Vec2{X: 0, Y: 100})}
	if got := r.LaneOffset(0); got != 0.5*LaneWidthM {
		t.Errorf("lane 0 offset = %v", got)
	}
	if got := r.LaneOffset(3); got != 3.5*LaneWidthM {
		t.Errorf("lane 3 offset = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range lane")
		}
	}()
	r.LaneOffset(4)
}

func TestLRoad(t *testing.T) {
	c := testCity()
	r := c.LRoad(FourLaneUrban, 3, 500)
	if math.Abs(r.Line.Length()-1000) > 1e-9 {
		t.Errorf("LRoad length = %v, want 1000", r.Line.Length())
	}
	// The headings before and after the corner differ by 90°.
	h1 := r.Line.HeadingAt(100)
	h2 := r.Line.HeadingAt(900)
	if d := math.Abs(geo.HeadingDiff(h1, h2)); math.Abs(d-math.Pi/2) > 1e-9 {
		t.Errorf("turn angle = %v rad, want π/2", d)
	}
}

func TestBounds(t *testing.T) {
	c := testCity()
	b := c.Bounds()
	if b.MinX != -3000 || b.MaxY != 3000 {
		t.Errorf("Bounds = %+v", b)
	}
}

func TestGenerateInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Generate(Config{})
}
