package v2v

import (
	"testing"

	"rups/internal/link"
	"rups/internal/obs"
)

// TestPeerRestartResync is the epoch handshake's regression test. A sender
// streams part of its trajectory, then "crashes" and restarts with fresh
// sequence state and different content under a new epoch. Without the
// handshake the surviving receiver's cumulative ack points past marks the
// new sender never transmitted and the transfer wedges (see the companion
// test below); with it, the receiver discards the dead incarnation's
// reconstruction and converges bit-exact on the new trajectory.
func TestPeerRestartResync(t *testing.T) {
	srcA := mkAware(31, 80)
	srcB := mkAware(32, 60) // the restarted sender's (different) trajectory
	data := link.New(link.Params{Seed: 3}, 0)
	ack := link.New(link.Params{Seed: 3}, 1)

	a := NewSession(srcA, data, ack, SyncConfig{Epoch: 1})
	rounds := runSync(a, 1e9, 5000)
	if !a.Quiescent() {
		t.Fatalf("pre-restart sync never settled after %d rounds", rounds)
	}
	assertBitExact(t, a.Copy(), srcA, srcA.Len())

	// Restart: fresh Session (sequence state zeroed), same channels, same
	// surviving receiver, next epoch.
	b := NewSession(srcB, data, ack, SyncConfig{Epoch: 2})
	b.rx = a.rx
	rounds = runSync(b, 1e9, 5000)
	if !b.Quiescent() {
		t.Fatalf("post-restart sync wedged after %d rounds (copy %d/%d)",
			rounds, b.Copy().Len(), srcB.Len())
	}
	assertBitExact(t, b.Copy(), srcB, srcB.Len())
	if got := b.rx.Resets(); got != 1 {
		t.Fatalf("receiver performed %d epoch resets, want exactly 1", got)
	}
	if got := b.rx.Epoch(); got != 2 {
		t.Fatalf("receiver tracks epoch %d, want 2", got)
	}
}

// TestPeerRestartSameEpochWedges documents the failure mode the handshake
// exists for: a restarted sender that does NOT bump its epoch (here both
// incarnations use the legacy epoch-0 wire format) never delivers its new
// trajectory — the receiver's stale cumulative ack teleports the fresh
// sender's window past marks it never sent, the session reports quiescence,
// and the copy silently remains the dead incarnation's data.
func TestPeerRestartSameEpochWedges(t *testing.T) {
	srcA := mkAware(31, 80)
	srcB := mkAware(32, 60)
	data := link.New(link.Params{Seed: 3}, 0)
	ack := link.New(link.Params{Seed: 3}, 1)

	a := NewSession(srcA, data, ack, SyncConfig{})
	runSync(a, 1e9, 5000)
	assertBitExact(t, a.Copy(), srcA, srcA.Len())

	b := NewSession(srcB, data, ack, SyncConfig{})
	b.rx = a.rx
	rounds := runSync(b, 1e9, 5000)
	if !b.Quiescent() {
		t.Fatalf("expected the wedged session to (falsely) quiesce, still busy at round %d", rounds)
	}
	// The copy still holds srcA's 80 marks; srcB's 60 were never applied.
	if b.Copy().Len() != srcA.Len() {
		t.Fatalf("copy holds %d marks, want the stale %d", b.Copy().Len(), srcA.Len())
	}
	if b.Copy().Geo.Marks[0] == srcB.Geo.Marks[0] {
		t.Fatal("copy unexpectedly matches the restarted sender; wedge no longer reproduces")
	}
	if b.rx.Resets() != 0 {
		t.Fatalf("same-epoch restart performed %d resets, want 0", b.rx.Resets())
	}
}

// TestReceiverDropsDeadEpochStragglers pins the anti-flap rule: once the
// receiver adopts epoch N, frames from epoch < N (reordered in flight
// across the restart) are rejected rather than resetting the
// reconstruction back to the dead incarnation.
func TestReceiverDropsDeadEpochStragglers(t *testing.T) {
	src := mkAware(33, 8)
	d := Delta{FromMark: 0, Marks: src.Geo.Marks[:8]}
	d.Power = make([][]float64, src.Width())
	for ch := range d.Power {
		d.Power[ch] = src.RowCopy(ch, 0, 8)
	}
	oldFrames := dataFrames(d, obs.TraceRef{}, 1)
	newFrames := dataFrames(d, obs.TraceRef{}, 2)

	rx := NewReceiver(src.Width())
	for _, f := range newFrames {
		if !rx.Offer(f) {
			t.Fatal("intact epoch-2 frame rejected")
		}
	}
	if rx.Copy().Len() != 8 || rx.Epoch() != 2 {
		t.Fatalf("epoch-2 sync: len %d epoch %d", rx.Copy().Len(), rx.Epoch())
	}
	for _, f := range oldFrames {
		if rx.Offer(f) {
			t.Fatal("dead-epoch straggler accepted")
		}
	}
	if rx.Resets() != 0 || rx.Copy().Len() != 8 || rx.Epoch() != 2 {
		t.Fatalf("straggler disturbed state: resets %d len %d epoch %d",
			rx.Resets(), rx.Copy().Len(), rx.Epoch())
	}
}

// TestAckEpochFiltering pins the sender side of the handshake: beacons
// stamped with another incarnation's epoch never advance this sender's
// window, and the exported codec round-trips the epoch.
func TestAckEpochFiltering(t *testing.T) {
	cum, epoch, ok := ParseAck(AckFrame(17, 4))
	if !ok || cum != 17 || epoch != 4 {
		t.Fatalf("ParseAck(AckFrame(17,4)) = %d,%d,%v", cum, epoch, ok)
	}
	cum, epoch, ok = ParseAck(AckFrame(9, 0)) // legacy extension-free beacon
	if !ok || cum != 9 || epoch != 0 {
		t.Fatalf("ParseAck legacy = %d,%d,%v", cum, epoch, ok)
	}
	if _, _, ok := ParseAck([]byte{1, 2, 3}); ok {
		t.Fatal("garbage parsed as ACK")
	}

	src := mkAware(34, 40)
	data := link.New(link.Params{Seed: 5}, 0)
	ack := link.New(link.Params{Seed: 5}, 1)
	s := NewSession(src, data, ack, SyncConfig{Epoch: 7})
	// A pre-restart beacon claiming the peer holds everything: must be
	// ignored, and the session must still deliver all 40 marks.
	if err := ack.Send(0, ackFrameBytes(40, 3)); err != nil {
		t.Fatal(err)
	}
	runSync(s, 1e9, 5000)
	assertBitExact(t, s.Copy(), src, src.Len())
}
