package v2v

import (
	"math"
	"testing"

	"rups/internal/gsm"
	"rups/internal/noise"
	"rups/internal/stats"
	"rups/internal/trajectory"
)

func mkAware(seed uint64, m int) *trajectory.Aware {
	g := trajectory.Geo{Marks: make([]trajectory.GeoMark, m)}
	for i := range g.Marks {
		g.Marks[i] = trajectory.GeoMark{
			Theta: noise.Uniform(seed, uint64(i)) * 6,
			T:     float64(i + 1),
		}
	}
	a := trajectory.NewAware(g)
	for ch := 0; ch < gsm.NumChannels; ch++ {
		for i := 0; i < m; i++ {
			a.SetPower(ch, i, gsm.NoiseFloorDBm+60*noise.Uniform(seed, uint64(ch), uint64(i)))
		}
	}
	return a
}

func TestTransferPaperArithmetic(t *testing.T) {
	// §V-B: a 1 km context (~182 KB) needs ~130 WSMs and ~0.52 s.
	l := &Link{Seed: 1}
	size := trajectory.EncodedSize(1000, gsm.NumChannels)
	c := l.Transfer(size)
	if c.Packets < 110 || c.Packets > 160 {
		t.Errorf("packets = %d, paper says ~130", c.Packets)
	}
	if c.Elapsed < 0.4 || c.Elapsed > 0.7 {
		t.Errorf("elapsed = %v s, paper says ~0.52", c.Elapsed)
	}
	if c.Retrans != 0 {
		t.Errorf("retransmissions on a lossless link: %d", c.Retrans)
	}
}

func TestTransferWithLoss(t *testing.T) {
	clean := &Link{Seed: 2}
	lossy := &Link{Seed: 2, LossProb: 0.2}
	n := 100 * WSMPayload
	c0 := clean.Transfer(n)
	c1 := lossy.Transfer(n)
	if c1.Packets <= c0.Packets {
		t.Errorf("lossy link used %d packets vs %d clean", c1.Packets, c0.Packets)
	}
	if c1.Retrans == 0 {
		t.Error("no retransmissions at 20% loss")
	}
	// Expected inflation ≈ 1/(1-p) = 1.25.
	ratio := float64(c1.Packets) / float64(c0.Packets)
	if ratio < 1.1 || ratio > 1.5 {
		t.Errorf("retransmission inflation %v, want ~1.25", ratio)
	}
}

func TestTransferPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	(&Link{}).Transfer(0)
}

func TestExchangeTrajectory(t *testing.T) {
	a := mkAware(3, 200)
	l := &Link{Seed: 4, LossProb: 0.05}
	got, cost, err := ExchangeTrajectory(l, a)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != a.Len() {
		t.Fatalf("received %d marks, want %d", got.Len(), a.Len())
	}
	if cost.Bytes != trajectory.EncodedSize(200, gsm.NumChannels) {
		t.Errorf("cost bytes %d", cost.Bytes)
	}
	// Quantization bounded by 0.5 dB + encoding round trip.
	for ch := 0; ch < gsm.NumChannels; ch += 17 {
		for i := 0; i < a.Len(); i += 13 {
			if d := math.Abs(got.At(ch, i) - a.At(ch, i)); d > 0.51 {
				t.Fatalf("power [%d][%d] off by %v", ch, i, d)
			}
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	full := mkAware(5, 120)
	// Peer holds the first 100 marks.
	peer := full.PrefixUntil(100).Clone()
	d, err := MakeDelta(full, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(peer); err != nil {
		t.Fatal(err)
	}
	if peer.Len() != full.Len() {
		t.Fatalf("after delta: %d marks, want %d", peer.Len(), full.Len())
	}
	for ch := 0; ch < gsm.NumChannels; ch += 23 {
		for i := 0; i < full.Len(); i += 11 {
			if a, b := peer.At(ch, i), full.At(ch, i); a != b && !(stats.IsMissing(a) && stats.IsMissing(b)) {
				t.Fatalf("power [%d][%d]: %v vs %v", ch, i, a, b)
			}
		}
	}
}

func TestDeltaOverlapIdempotent(t *testing.T) {
	full := mkAware(6, 60)
	peer := full.PrefixUntil(50).Clone()
	d, _ := MakeDelta(full, 40) // overlaps 10 already-held marks
	if err := d.Apply(peer); err != nil {
		t.Fatal(err)
	}
	if peer.Len() != 60 {
		t.Fatalf("len after overlapping delta = %d", peer.Len())
	}
	// Applying the exact same delta again adds nothing.
	if err := d.Apply(peer); err != nil {
		t.Fatal(err)
	}
	if peer.Len() != 60 {
		t.Fatalf("len after duplicate delta = %d", peer.Len())
	}
}

func TestDeltaGapRejected(t *testing.T) {
	full := mkAware(7, 60)
	peer := full.PrefixUntil(20).Clone()
	d, _ := MakeDelta(full, 40)
	if err := d.Apply(peer); err == nil {
		t.Error("applied a delta across a gap")
	}
}

func TestDeltaErrors(t *testing.T) {
	full := mkAware(8, 30)
	if _, err := MakeDelta(full, -1); err == nil {
		t.Error("negative from accepted")
	}
	if _, err := MakeDelta(full, 30); err == nil {
		t.Error("out-of-range from accepted")
	}
}

func TestDeltaMuchSmallerThanFull(t *testing.T) {
	// The scalability claim: tracking updates are far cheaper than full
	// context transfers.
	full := mkAware(9, 1000)
	d, _ := MakeDelta(full, 990) // 10 new metres at 10 Hz tracking
	fullSize := trajectory.EncodedSize(1000, gsm.NumChannels)
	if d.WireSize()*20 > fullSize {
		t.Errorf("delta %d bytes not ≪ full %d bytes", d.WireSize(), fullSize)
	}
}

func TestBeaconRoundTrip(t *testing.T) {
	b := Beacon(42, 731)
	id, n, err := ParseBeacon(b)
	if err != nil || id != 42 || n != 731 {
		t.Errorf("beacon round trip: %v %v %v", id, n, err)
	}
	if _, _, err := ParseBeacon(b[:10]); err == nil {
		t.Error("short beacon accepted")
	}
}

func TestDeltaWireRoundTrip(t *testing.T) {
	full := mkAware(11, 80)
	// 5 marks × 194 channels ≈ 1 KB encoded: within the WSM payload bound
	// the codec now enforces.
	d, err := MakeDelta(full, 75)
	if err != nil {
		t.Fatal(err)
	}
	data, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// The arithmetic used for link billing matches the real encoding
	// closely (small fixed-header difference allowed).
	if diff := d.WireSize() - len(data); diff < -8 || diff > 8 {
		t.Errorf("WireSize %d vs encoded %d", d.WireSize(), len(data))
	}
	var back Delta
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.FromMark != d.FromMark || len(back.Marks) != len(d.Marks) {
		t.Fatal("delta header lost")
	}
	for ch := range d.Power {
		for i := range d.Power[ch] {
			if math.Abs(back.Power[ch][i]-d.Power[ch][i]) > 0.51 {
				t.Fatalf("delta power [%d][%d]: %v vs %v", ch, i, back.Power[ch][i], d.Power[ch][i])
			}
		}
	}
	// Applying the decoded delta must extend the peer copy identically in
	// shape.
	peer := full.PrefixUntil(75).Clone()
	if err := back.Apply(peer); err != nil {
		t.Fatal(err)
	}
	if peer.Len() != full.Len() {
		t.Fatalf("after decoded delta: %d marks", peer.Len())
	}
}

func TestDeltaWireRejectsGarbage(t *testing.T) {
	var d Delta
	for name, data := range map[string][]byte{
		"empty": nil, "short": make([]byte, 4), "magic": make([]byte, 30),
	} {
		if err := d.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDeltaWireEnforcesWSMBound(t *testing.T) {
	full := mkAware(12, 80)
	big, err := MakeDelta(full, 60) // 20 marks ≈ 4 KB encoded
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.MarshalBinary(); err == nil {
		t.Error("marshalled a delta over the WSM payload bound")
	}
	// A self-consistent packet over 1400 B: 230 marks × 1 channel claims
	// 1632 bytes, exactly matching its header arithmetic — only the WSM
	// bound can reject it.
	pkt := make([]byte, 22+230*6+230)
	copy(pkt, []byte{0x44, 0x50, 0x55, 0x52})
	pkt[8] = 230 // marks
	pkt[12] = 1  // channels
	var d Delta
	if err := d.UnmarshalBinary(pkt); err == nil {
		t.Error("accepted a packet over the WSM payload bound")
	}
}

func TestChunkDeltaCoversAndFits(t *testing.T) {
	full := mkAware(13, 100)
	d, err := MakeDelta(full, 40) // 60 marks, far over one WSM
	if err != nil {
		t.Fatal(err)
	}
	chunks := ChunkDelta(d)
	if len(chunks) < 2 {
		t.Fatalf("60-mark delta split into %d chunks", len(chunks))
	}
	peer := full.PrefixUntil(40).Clone()
	next := d.FromMark
	for i, c := range chunks {
		if c.FromMark != next {
			t.Fatalf("chunk %d starts at %d, want %d", i, c.FromMark, next)
		}
		next += len(c.Marks)
		data, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("chunk %d does not marshal: %v", i, err)
		}
		if len(data) > WSMPayload {
			t.Fatalf("chunk %d encodes to %d bytes", i, len(data))
		}
		var back Delta
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("chunk %d round trip: %v", i, err)
		}
		if err := back.Apply(peer); err != nil {
			t.Fatalf("chunk %d apply: %v", i, err)
		}
	}
	if next != full.Len() || peer.Len() != full.Len() {
		t.Fatalf("chunks cover to %d, peer at %d, want %d", next, peer.Len(), full.Len())
	}
	// A delta that already fits passes through unsplit.
	small, _ := MakeDelta(full, 97)
	if got := ChunkDelta(small); len(got) != 1 {
		t.Fatalf("3-mark delta split into %d chunks", len(got))
	}
}
