package v2v

import (
	"math"
	"testing"

	"rups/internal/link"
	"rups/internal/stats"
	"rups/internal/trajectory"
)

// runSync steps the session at a fixed sim time until quiescent, returning
// the rounds it took (or maxRounds if it never settled).
func runSync(s *Session, now float64, maxRounds int) int {
	for r := 0; r < maxRounds; r++ {
		s.Step(r, now)
		if s.Quiescent() {
			return r
		}
	}
	return maxRounds
}

// assertBitExact compares the peer copy against the sender's visible
// prefix cell by cell on float bits, so NaN (missing) cells compare equal
// and any quantization would be caught.
func assertBitExact(t *testing.T, cp, src *trajectory.Aware, wantLen int) {
	t.Helper()
	if cp.Len() != wantLen {
		t.Fatalf("copy holds %d marks, want %d", cp.Len(), wantLen)
	}
	for i := 0; i < wantLen; i++ {
		if cp.Geo.Marks[i] != src.Geo.Marks[i] {
			t.Fatalf("mark %d: %+v vs %+v", i, cp.Geo.Marks[i], src.Geo.Marks[i])
		}
	}
	if cp.Width() != src.Width() {
		t.Fatalf("copy has %d channels, want %d", cp.Width(), src.Width())
	}
	for ch := 0; ch < src.Width(); ch++ {
		for i := 0; i < wantLen; i++ {
			a, b := math.Float64bits(cp.At(ch, i)), math.Float64bits(src.At(ch, i))
			if a != b {
				t.Fatalf("power [%d][%d]: %x vs %x", ch, i, a, b)
			}
		}
	}
}

func TestSessionPerfectLinkBitExact(t *testing.T) {
	src := mkAware(21, 300)
	// A few missing cells: the lossless encoding must carry NaN through.
	src.SetPower(3, 7, stats.Missing)
	src.SetPower(100, 250, stats.Missing)
	data := link.New(link.Params{Seed: 1}, 0)
	ack := link.New(link.Params{Seed: 1}, 1)
	s := NewSession(src, data, ack, SyncConfig{})
	rounds := runSync(s, 1e9, 5000)
	if !s.Quiescent() {
		t.Fatalf("no quiescence on a perfect link after %d rounds", rounds)
	}
	assertBitExact(t, s.Copy(), src, src.Len())
	// 300 marks / 8 per chunk = 38 chunks over a window of 8: a clean link
	// finishes in well under one round per chunk pair.
	if rounds > 200 {
		t.Errorf("perfect link took %d rounds for 300 marks", rounds)
	}
}

func TestSessionVisibilityHorizon(t *testing.T) {
	src := mkAware(23, 120) // mark i completes at T = i+1
	data := link.New(link.Params{Seed: 2}, 0)
	ack := link.New(link.Params{Seed: 2}, 1)
	s := NewSession(src, data, ack, SyncConfig{})
	runSync(s, 50.5, 2000)
	if got := s.Copy().Len(); got != 50 {
		t.Fatalf("copy holds %d marks at t=50.5, want 50 (no future leakage)", got)
	}
	runSync(s, 1e9, 2000)
	assertBitExact(t, s.Copy(), src, src.Len())
}

func TestSessionLossyLinkConverges(t *testing.T) {
	src := mkAware(22, 200)
	p := link.Params{
		Seed: 9, Loss: 0.25,
		BurstEnter: 0.01, BurstExit: 0.2,
		Reorder: 0.1, Duplicate: 0.05, Corrupt: 0.05, Jitter: 2,
	}
	data := link.New(p, 0)
	ack := link.New(p, 1)
	s := NewSession(src, data, ack, SyncConfig{Seed: 5})
	rounds := runSync(s, 1e9, 100000)
	if !s.Quiescent() {
		t.Fatalf("no convergence under 25%% loss + bursts after %d rounds (copy %d/%d)",
			rounds, s.Copy().Len(), src.Len())
	}
	assertBitExact(t, s.Copy(), src, src.Len())
}

func TestSessionDeterministicPerSeed(t *testing.T) {
	mk := func() *Session {
		src := mkAware(24, 150)
		p := link.Params{Seed: 11, Loss: 0.3, Reorder: 0.15, Duplicate: 0.1, Corrupt: 0.05}
		return NewSession(src, link.New(p, 0), link.New(p, 1), SyncConfig{Seed: 7})
	}
	a, b := mk(), mk()
	ra := runSync(a, 1e9, 100000)
	rb := runSync(b, 1e9, 100000)
	if ra != rb || a.rx.Applied() != b.rx.Applied() || a.Copy().Len() != b.Copy().Len() {
		t.Fatalf("same seeds diverged: rounds %d vs %d, applied %d vs %d",
			ra, rb, a.rx.Applied(), b.rx.Applied())
	}
}

func TestSessionTotalOutageThenHeal(t *testing.T) {
	src := mkAware(25, 100)
	p := link.Params{Seed: 13}
	data := link.New(p, 0)
	ack := link.New(p, 1)
	s := NewSession(src, data, ack, SyncConfig{Seed: 3})

	// Outage from the first round: nothing must get through, and the
	// sender must back off rather than spin.
	out := p
	out.BurstEnter, out.BurstExit = 1, 0
	data.SetParams(out)
	ack.SetParams(out)
	for r := 0; r < 2000; r++ {
		s.Step(r, 1e9)
	}
	if got := s.Copy().Len(); got != 0 {
		t.Fatalf("copy holds %d marks through a total outage", got)
	}

	// Heal and continue: the protocol must recover with no external help.
	data.SetParams(p)
	ack.SetParams(p)
	for r := 2000; r < 12000; r++ {
		s.Step(r, 1e9)
		if s.Quiescent() {
			break
		}
	}
	if !s.Quiescent() {
		t.Fatal("no recovery after the link healed")
	}
	assertBitExact(t, s.Copy(), src, src.Len())
}
