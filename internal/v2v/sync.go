package v2v

import (
	"rups/internal/link"
	"rups/internal/noise"
	"rups/internal/obs"
	"rups/internal/obs/flight"
	"rups/internal/trajectory"
)

// Reliable trajectory sync over a lossy DSRC channel.
//
// A Session streams one vehicle's GSM-aware trajectory to one peer over a
// pair of link.Channels (data one way, cumulative-ack beacons the other),
// surviving the link's drops, bursts, reordering, duplication, and
// corruption. The design is go-back-N over mark indexes:
//
//   - The sequence space is the mark index itself: a chunk carries marks
//     [FromMark, FromMark+n), and the receiver acks the length of its
//     contiguous prefix. There is no separate packet numbering to keep
//     consistent with trajectory state.
//   - The sender keeps a window of unacked chunks and one retransmission
//     timer. On expiry it goes back to the cumulative ack and resends,
//     doubling the RTO up to a cap with deterministic jitter (Karn's rule:
//     retransmitted chunks never produce RTT samples).
//   - The receiver reassembles fragments per chunk (frames are
//     CRC-checked; corrupt ones are dropped and retransmission covers
//     them), applies chunks that extend its contiguous prefix, buffers
//     out-of-order chunks until the gap before them fills, and suppresses
//     duplicates. The engine therefore only ever sees contiguous,
//     bit-exact prefixes of the sender's trajectory.
//
// Time is the link's round clock (one round ≈ one WSM slot of PacketRTT
// seconds). Step is synchronous and single-threaded: the simulation drives
// both endpoints of a session from one goroutine, which keeps lossy runs
// deterministic per link seed.

// SyncConfig tunes the reliable sync protocol. Zero values take defaults.
type SyncConfig struct {
	// ChunkMarks is the number of marks per chunk (default 8). A
	// 194-channel mark is ~1.6 KB on the wire, so chunks span several
	// WSM fragments regardless; larger chunks amortize headers, smaller
	// ones localize loss.
	ChunkMarks int
	// Window is the maximum number of unacked chunks in flight
	// (default 8).
	Window int
	// RTORounds is the initial retransmission timeout in rounds
	// (default 8 ≈ 32 ms).
	RTORounds int
	// MaxRTORounds caps the exponential backoff (default 128 ≈ 0.5 s).
	MaxRTORounds int
	// Seed drives the deterministic retransmission jitter.
	Seed uint64
	// Epoch identifies this sender incarnation for the restart handshake:
	// a sender that restarts with fresh sequence state MUST announce a new
	// (distinct) epoch, or the peer's cumulative ack — which points past
	// marks the new sender never transmitted — wedges the go-back-N window
	// forever. Nonzero epochs ride a 4-byte frame extension and make the
	// receiver resync from mark 0 on change; epoch 0 emits the legacy
	// extension-free wire format. See Receiver.
	Epoch uint32
}

// DefaultSyncConfig returns the protocol defaults.
func DefaultSyncConfig() SyncConfig {
	return SyncConfig{ChunkMarks: 8, Window: 8, RTORounds: 8, MaxRTORounds: 128}
}

func (c SyncConfig) withDefaults() SyncConfig {
	d := DefaultSyncConfig()
	if c.ChunkMarks <= 0 {
		c.ChunkMarks = d.ChunkMarks
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.RTORounds <= 0 {
		c.RTORounds = d.RTORounds
	}
	if c.MaxRTORounds <= 0 {
		c.MaxRTORounds = d.MaxRTORounds
	}
	if c.MaxRTORounds < c.RTORounds {
		c.MaxRTORounds = c.RTORounds
	}
	return c
}

// sentChunk is one unacked chunk in the sender's window.
type sentChunk struct {
	from, n int
	round   int  // round of this transmission (for RTT sampling)
	resent  bool // Karn's rule: no RTT sample from retransmissions
}

// fragBuf reassembles one chunk from its DATA frames.
type fragBuf struct {
	nMarks, chans, nFrags, total int
	have                         []bool
	got                          int
	buf                          []byte
	// ref is the causal-trace hook carried by this chunk's fragments. A
	// retransmission may re-stamp it (each transmission has its own parent
	// span); the latest nonzero one wins.
	ref obs.TraceRef
}

// heldChunk is an out-of-order chunk buffered until its gap fills,
// together with the trace ref it arrived under.
type heldChunk struct {
	d   Delta
	ref obs.TraceRef
}

// Session is one direction of a reliable trajectory sync: it streams src
// to a peer copy over data (chunks out) and ack (beacons back). Both
// protocol endpoints live in the one value — the sender side reads src and
// the ack channel, the receiver side writes the copy and the data channel —
// because the simulation steps both ends in lockstep. Not safe for
// concurrent use.
type Session struct {
	cfg  SyncConfig
	src  *trajectory.Aware
	data *link.Channel
	ack  *link.Channel

	// Sender state.
	visible     int // marks of src completed by "now" and eligible to send
	base        int // cumulative ack: peer holds marks [0, base)
	next        int // next mark index to transmit
	highWater   int // highest mark index ever transmitted
	window      []sentChunk
	rto         int
	deadline    int    // round the retransmit timer fires; -1 disarmed
	arms        uint64 // timer armings, the jitter address
	timeoutRuns uint64

	// rx is the receive half — reassembly, ordering, epoch resync — shared
	// with transports beyond the simulated link (see Receiver).
	rx *Receiver

	// Telemetry, cached once at session build per the obs handle
	// discipline (a Session steps every round; per-round lookups would be
	// flagged by rups-lint and cost atomics for nothing).
	rec   *obs.Recorder
	trace obs.TraceID // sender-side trace all chunk sends stitch into
	fl    *flight.Ring
	labA  int32 // flight/event labels: src vehicle → copy vehicle
	labB  int32
	nowT  float64 // sim time of the current Step, for flight events
}

// NewSession builds a session streaming src over the given channels. The
// peer copy starts empty with src's channel width.
func NewSession(src *trajectory.Aware, data, ack *link.Channel, cfg SyncConfig) *Session {
	rec := obs.ActiveRecorder()
	return &Session{
		cfg:      cfg.withDefaults(),
		src:      src,
		data:     data,
		ack:      ack,
		rto:      cfg.withDefaults().RTORounds,
		deadline: -1,
		rx:       NewReceiver(src.Width()),
		rec:      rec,
		trace:    rec.NewTrace(), // 0 (untraced wire) when tracing is off
		fl:       flight.Active(),
		labA:     -1,
		labB:     -1,
	}
}

// SetPeers labels the session's flight events with the sender and
// receiver vehicle ids (they default to -1, "unknown").
func (s *Session) SetPeers(src, dst int) {
	s.labA, s.labB = int32(src), int32(dst)
}

// TraceRef returns the causal hook of the newest applied chunk — the
// cross-vehicle trace a resolve consuming this copy should stitch into.
// Zero while no traced chunk has been applied.
func (s *Session) TraceRef() obs.TraceRef { return s.rx.TraceRef() }

// Copy returns the receiver's reconstruction: always a contiguous,
// bit-exact prefix of src. The engine admits this, never src directly.
func (s *Session) Copy() *trajectory.Aware { return s.rx.Copy() }

// Acked returns the sender's cumulative-ack watermark.
func (s *Session) Acked() int { return s.base }

// Lag returns how many sendable marks the peer copy is missing.
func (s *Session) Lag() int { return s.visible - s.rx.Copy().Len() }

// Quiescent reports whether the session has nothing left to do for the
// current visibility horizon: everything sent, acked, applied, and no
// frames in flight. The simulation uses it to stop burning rounds early on
// a clean link.
func (s *Session) Quiescent() bool {
	return s.next >= s.visible && s.base >= s.visible &&
		len(s.window) == 0 && s.rx.Idle() &&
		!s.rx.AckDue() && s.data.Pending() == 0 && s.ack.Pending() == 0
}

// Step runs one protocol round at sim time now: both endpoints receive,
// the receiver acks, the sender times out and (re)fills its window.
func (s *Session) Step(round int, now float64) {
	s.nowT = now
	s.receiveData(round)
	s.receiveAcks(round)
	s.maybeTimeout(round)
	s.fillWindow(round, now)
	s.flushAck(round)
}

// receiveData drains the data channel into the receive half: validation,
// reassembly, ordering, and epoch resync all live in Receiver.Offer.
func (s *Session) receiveData(round int) {
	for _, raw := range s.data.Receive(round) {
		s.rx.Offer(raw)
	}
}

// receiveAcks drains the ack channel and advances the sender's window.
func (s *Session) receiveAcks(round int) {
	tel := syncTel.Get()
	for _, raw := range s.ack.Receive(round) {
		fr, err := parseFrame(raw)
		if err != nil || fr.typ != frameAck {
			if tel != nil {
				tel.rejected.Inc()
			}
			continue
		}
		if fr.epoch != s.cfg.Epoch {
			// A beacon from another sender incarnation: the peer acked
			// marks a pre-restart session transmitted, not ours. Acting on
			// it would confirm marks this sender never sent.
			continue
		}
		if fr.cum <= s.base {
			continue // stale or duplicate beacon
		}
		s.base = fr.cum
		if s.next < s.base {
			// A timeout rolled next back, then a late ack overtook it:
			// never resend what the peer confirmed.
			s.next = s.base
		}
		for len(s.window) > 0 && s.window[0].from+s.window[0].n <= s.base {
			ch := s.window[0]
			s.window = s.window[1:]
			if !ch.resent && tel != nil {
				tel.ackRTT.Observe(float64(round-ch.round) * PacketRTT)
			}
		}
		if len(s.window) == 0 && s.next >= s.highWater {
			// Everything outstanding confirmed: disarm and reset backoff.
			s.deadline = -1
			s.rto = s.cfg.RTORounds
		} else {
			s.arm(round)
		}
	}
}

// maybeTimeout fires the retransmission timer: go back to the cumulative
// ack and back off the RTO.
func (s *Session) maybeTimeout(round int) {
	if s.deadline < 0 || round < s.deadline || len(s.window) == 0 {
		return
	}
	if t := syncTel.Get(); t != nil {
		t.timeouts.Inc()
	}
	s.timeoutRuns++
	s.next = s.base
	s.window = s.window[:0]
	atCap := s.rto >= s.cfg.MaxRTORounds
	s.rto *= 2
	if s.rto > s.cfg.MaxRTORounds {
		s.rto = s.cfg.MaxRTORounds
	}
	if s.fl != nil {
		s.fl.Emit(flight.Event{T: s.nowT, Kind: flight.KindRetransmit,
			A: s.labA, B: s.labB, V1: int64(s.base), V2: int64(s.timeoutRuns)})
		s.fl.Emit(flight.Event{T: s.nowT, Kind: flight.KindRTOBackoff,
			A: s.labA, B: s.labB, V1: int64(s.rto), V2: int64(s.cfg.MaxRTORounds)})
		if !atCap && s.rto >= s.cfg.MaxRTORounds {
			// The backoff just saturated: this is a retransmit burst, one
			// of the black-box anomaly triggers. The dump is best-effort —
			// the protocol must not fail because the disk did.
			//lint:ignore errflow best-effort black-box dump; the capsule is advisory and the cooldown already bounds retries
			_, _ = s.fl.Anomaly("retransmit_burst", flight.Event{T: s.nowT,
				Kind: flight.KindRTOBackoff, A: s.labA, B: s.labB,
				V1: int64(s.rto), V2: int64(s.timeoutRuns)})
		}
	}
	s.deadline = -1 // fillWindow re-arms with the backed-off RTO
}

// arm (re)starts the retransmission timer with deterministic jitter of up
// to a quarter RTO, desynchronizing the convoy's many sessions.
func (s *Session) arm(round int) {
	s.arms++
	j := int(noise.Uniform(s.cfg.Seed, 0xAC4, s.arms) * float64(s.rto) / 4)
	s.deadline = round + s.rto + j
}

// fillWindow advances the visibility horizon to now and transmits chunks
// until the window is full or nothing sendable remains.
func (s *Session) fillWindow(round int, now float64) {
	tel := syncTel.Get()
	for s.visible < s.src.Len() && s.src.Geo.Marks[s.visible].T <= now {
		s.visible++
	}
	for s.next < s.visible && len(s.window) < s.cfg.Window {
		n := s.cfg.ChunkMarks
		if s.next+n > s.visible {
			n = s.visible - s.next
		}
		d := Delta{FromMark: s.next, Marks: s.src.Geo.Marks[s.next : s.next+n]}
		d.Power = make([][]float64, s.src.Width())
		for ch := range d.Power {
			d.Power[ch] = s.src.RowCopy(ch, s.next, s.next+n)
		}
		resent := s.next < s.highWater
		// Each transmission gets its own span on the session's trace; its
		// ID rides in every fragment so the receiver's reassemble/admit
		// spans — in another vehicle's pipeline — hang under it. With
		// tracing off, s.trace is 0, the span is inert, and dataFrames
		// emits the untraced wire format.
		name := "chunk_send"
		if resent {
			name = "chunk_resend"
		}
		sp := s.rec.Start(s.trace, name)
		sp.Arg = int64(s.next)
		for _, f := range dataFrames(d, obs.TraceRef{Trace: s.trace, Parent: sp.ID()}, s.cfg.Epoch) {
			// Send cannot fail: dataFrames fragments to the WSM bound.
			if err := s.data.Send(round, f); err != nil {
				panic(err)
			}
		}
		sp.End()
		if tel != nil {
			if resent {
				tel.chunksResent.Inc()
			} else {
				tel.chunksSent.Inc()
			}
		}
		s.window = append(s.window, sentChunk{from: s.next, n: n, round: round, resent: resent})
		s.next += n
		if s.next > s.highWater {
			s.highWater = s.next
		}
		if s.deadline < 0 {
			s.arm(round)
		}
	}
}

// flushAck emits at most one cumulative-ack beacon per round.
func (s *Session) flushAck(round int) {
	if !s.rx.TakeAckDue() {
		return
	}
	if err := s.ack.Send(round, s.rx.AckBytes()); err != nil {
		panic(err)
	}
	if t := syncTel.Get(); t != nil {
		t.acksSent.Inc()
	}
}

// ObserveCopyAge records how stale the peer copy is at sim time now — the
// degradation signal the engine's staleness policy acts on. Empty copies
// are not observed (they are unresolved, not stale).
func (s *Session) ObserveCopyAge(now float64) {
	cp := s.rx.Copy()
	if cp.Len() == 0 {
		return
	}
	if t := syncTel.Get(); t != nil {
		_, t1 := cp.TimeSpan()
		age := now - t1
		if age < 0 {
			age = 0
		}
		t.copyAge.Observe(age)
	}
}
