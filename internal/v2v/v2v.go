// Package v2v simulates the DSRC (IEEE 802.11p / WAVE) link RUPS exchanges
// trajectories over (paper §V-B): WAVE Short Messages with a 1400-byte
// payload and an average 4 ms round trip, so a one-kilometre journey
// context of ~182 KB takes about 130 WSMs ≈ 0.52 s. The link model covers
// fragmentation/reassembly, per-packet loss with retransmission, and the
// incremental tracking updates of the scalability discussion.
package v2v

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"rups/internal/noise"
	"rups/internal/trajectory"
)

// WSMPayload is the usable payload of one WAVE Short Message, bytes.
const WSMPayload = 1400

// PacketRTT is the average per-packet round-trip time, seconds.
const PacketRTT = 0.004

// fragHeader is the per-fragment overhead: message id (4), fragment index
// (4), fragment count (4).
const fragHeader = 12

// Link is a point-to-point DSRC link with independent per-packet loss.
type Link struct {
	Seed uint64
	// LossProb is the probability that a WSM needs retransmission.
	LossProb float64

	sent uint64
}

// Cost describes what one transfer took.
type Cost struct {
	Bytes    int     // payload bytes carried (before fragmentation overhead)
	Packets  int     // WSMs transmitted, including retransmissions
	Elapsed  float64 // seconds on the air
	Retrans  int     // retransmitted WSMs
	Fragment int     // distinct fragments
}

// Transfer simulates moving n payload bytes across the link and returns the
// accounting. It panics on a non-positive size.
func (l *Link) Transfer(n int) Cost {
	if n <= 0 {
		panic(fmt.Sprintf("v2v: transfer of %d bytes", n))
	}
	perFrag := WSMPayload - fragHeader
	frags := (n + perFrag - 1) / perFrag
	cost := Cost{Bytes: n, Fragment: frags}
	for f := 0; f < frags; f++ {
		for {
			cost.Packets++
			cost.Elapsed += PacketRTT
			l.sent++
			if noise.Uniform(l.Seed, l.sent, 0x105E) >= l.LossProb {
				break
			}
			cost.Retrans++
		}
	}
	return cost
}

// ExchangeTrajectory serializes a trajectory, moves it across the link, and
// decodes it on the far side — the full context exchange of §IV-A. It
// returns the received copy (quantized by the wire format) and the cost.
func ExchangeTrajectory(l *Link, a *trajectory.Aware) (*trajectory.Aware, Cost, error) {
	data, err := a.MarshalBinary()
	if err != nil {
		return nil, Cost{}, err
	}
	cost := l.Transfer(len(data))
	var out trajectory.Aware
	if err := out.UnmarshalBinary(data); err != nil {
		return nil, cost, err
	}
	return &out, cost, nil
}

// Delta is an incremental tracking update (§V-B): after a SYN point has
// been identified, a vehicle only streams its newest metres instead of the
// whole journey context, falling back to a full exchange when the
// accumulated error exceeds a threshold.
type Delta struct {
	// FromMark is the index of the first mark included.
	FromMark int
	Marks    []trajectory.GeoMark
	// Power columns for the included marks, channel-major.
	Power [][]float64
}

// MakeDelta extracts the update covering marks [from, a.Len()).
func MakeDelta(a *trajectory.Aware, from int) (Delta, error) {
	if from < 0 || from >= a.Len() {
		return Delta{}, fmt.Errorf("v2v: delta from %d out of range 0..%d", from, a.Len()-1)
	}
	n := a.Len() - from
	d := Delta{FromMark: from}
	d.Marks = append(d.Marks, a.Geo.Marks[from:]...)
	d.Power = make([][]float64, a.Width())
	for ch := range d.Power {
		d.Power[ch] = a.RowCopy(ch, from, from+n)
	}
	return d, nil
}

// WireSize returns the delta's encoded size in bytes: a small header plus
// 6 bytes per mark and one byte per power cell (same quantization as the
// full wire format).
func (d Delta) WireSize() int {
	return 16 + len(d.Marks)*6 + len(d.Power)*len(d.Marks)
}

// Apply extends the peer's copy of the trajectory with the delta. The
// delta must start exactly where the copy ends (or overlap it).
func (d Delta) Apply(a *trajectory.Aware) error {
	if d.FromMark > a.Len() {
		return fmt.Errorf("v2v: delta gap: have %d marks, delta starts at %d", a.Len(), d.FromMark)
	}
	if len(d.Power) != a.Width() {
		return errors.New("v2v: delta channel count mismatch")
	}
	skip := a.Len() - d.FromMark // overlapping marks already present
	if skip >= len(d.Marks) {
		return nil // nothing new
	}
	rows := make([][]float64, len(d.Power))
	for ch := range d.Power {
		rows[ch] = d.Power[ch][skip:]
	}
	a.AppendColumns(d.Marks[skip:], rows)
	return nil
}

// SendDelta moves a delta across the link.
func SendDelta(l *Link, d Delta) Cost {
	return l.Transfer(d.WireSize())
}

// MaxDeltaMarks returns how many marks of a channels-wide delta fit one
// WSM payload under the quantized wire format (22 B header, 6 B geometry
// and one power byte per channel per mark).
func MaxDeltaMarks(channels int) int {
	n := (WSMPayload - 22) / (6 + channels)
	if n < 1 {
		n = 1
	}
	return n
}

// ChunkDelta splits a delta into consecutive deltas that each marshal
// within the WSM payload bound, preserving coverage and order. Sub-deltas
// share backing storage with d.
func ChunkDelta(d Delta) []Delta {
	per := MaxDeltaMarks(len(d.Power))
	if len(d.Marks) <= per {
		return []Delta{d}
	}
	out := make([]Delta, 0, (len(d.Marks)+per-1)/per)
	for at := 0; at < len(d.Marks); at += per {
		end := at + per
		if end > len(d.Marks) {
			end = len(d.Marks)
		}
		sub := Delta{FromMark: d.FromMark + at, Marks: d.Marks[at:end]}
		sub.Power = make([][]float64, len(d.Power))
		for ch := range d.Power {
			sub.Power[ch] = d.Power[ch][at:end]
		}
		out = append(out, sub)
	}
	return out
}

// BeaconSize is the size of the periodic presence beacon (vehicle id,
// position hint, context freshness) used for neighbour discovery.
const BeaconSize = 64

// Beacon encodes a minimal neighbour-discovery announcement.
func Beacon(vehicleID uint32, contextLen int) []byte {
	b := make([]byte, BeaconSize)
	binary.LittleEndian.PutUint32(b[0:], vehicleID)
	binary.LittleEndian.PutUint32(b[4:], uint32(contextLen))
	return b
}

// ParseBeacon decodes a beacon.
func ParseBeacon(b []byte) (vehicleID uint32, contextLen int, err error) {
	if len(b) != BeaconSize {
		return 0, 0, fmt.Errorf("v2v: beacon size %d, want %d", len(b), BeaconSize)
	}
	return binary.LittleEndian.Uint32(b[0:]), int(binary.LittleEndian.Uint32(b[4:])), nil
}

// Delta wire format (little endian):
//
//	magic    uint32 'RUPD'
//	fromMark uint32
//	marks    uint32
//	channels uint16
//	tBase    float64
//	marks    × { theta uint16, dt float32 }
//	power    channels × marks bytes (1 dB quantization, 0xFF missing)
const deltaMagic = 0x52555044

// MarshalBinary encodes the delta for transmission. Deltas that would not
// fit one WSM payload are refused — split them with ChunkDelta first.
func (d Delta) MarshalBinary() ([]byte, error) {
	if len(d.Power) == 0 || len(d.Power) > 0xFFFF {
		return nil, fmt.Errorf("v2v: %d delta channels not encodable", len(d.Power))
	}
	if size := 22 + len(d.Marks)*6 + len(d.Power)*len(d.Marks); size > WSMPayload {
		return nil, fmt.Errorf("v2v: delta encodes to %d bytes, over the %d WSM bound", size, WSMPayload)
	}
	m := len(d.Marks)
	var tBase float64
	if m > 0 {
		tBase = d.Marks[0].T
	}
	buf := make([]byte, 0, 22+m*6+len(d.Power)*m)
	buf = binary.LittleEndian.AppendUint32(buf, deltaMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.FromMark))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(d.Power)))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(tBase))
	for _, mk := range d.Marks {
		theta := uint16(math.Round(mk.Theta / (2 * math.Pi) * 65535))
		buf = binary.LittleEndian.AppendUint16(buf, theta)
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(mk.T-tBase)))
	}
	for ch := range d.Power {
		if len(d.Power[ch]) != m {
			return nil, fmt.Errorf("v2v: ragged delta row %d", ch)
		}
		for i := 0; i < m; i++ {
			buf = append(buf, quantizeRSSI(d.Power[ch][i]))
		}
	}
	return buf, nil
}

// UnmarshalBinary decodes a delta. Packets over the 1400 B WSM payload
// bound are rejected outright: a conforming sender cannot have produced
// one, and the implied mark/channel counts would otherwise drive huge
// attacker-controlled allocations.
func (d *Delta) UnmarshalBinary(data []byte) error {
	const header = 4 + 4 + 4 + 2 + 8
	if len(data) > WSMPayload {
		return fmt.Errorf("v2v: delta packet %d bytes exceeds the %d WSM bound", len(data), WSMPayload)
	}
	if len(data) < header {
		return errors.New("v2v: short delta")
	}
	if binary.LittleEndian.Uint32(data[0:]) != deltaMagic {
		return errors.New("v2v: bad delta magic")
	}
	from := int(binary.LittleEndian.Uint32(data[4:]))
	m := int(binary.LittleEndian.Uint32(data[8:]))
	n := int(binary.LittleEndian.Uint16(data[12:]))
	if n == 0 {
		return errors.New("v2v: delta with zero channels")
	}
	if len(data) != header+m*6+n*m {
		return fmt.Errorf("v2v: delta size %d, want %d", len(data), header+m*6+n*m)
	}
	tBase := math.Float64frombits(binary.LittleEndian.Uint64(data[14:]))
	off := header
	marks := make([]trajectory.GeoMark, m)
	for i := 0; i < m; i++ {
		theta := binary.LittleEndian.Uint16(data[off:])
		dt := math.Float32frombits(binary.LittleEndian.Uint32(data[off+2:]))
		marks[i] = trajectory.GeoMark{
			Theta: float64(theta) / 65535 * 2 * math.Pi,
			T:     tBase + float64(dt),
		}
		off += 6
	}
	power := make([][]float64, n)
	for ch := 0; ch < n; ch++ {
		row := make([]float64, m)
		for i := 0; i < m; i++ {
			row[i] = dequantizeRSSI(data[off])
			off++
		}
		power[ch] = row
	}
	d.FromMark = from
	d.Marks = marks
	d.Power = power
	return nil
}

// quantizeRSSI mirrors the trajectory wire format's 1 dB cell encoding.
func quantizeRSSI(v float64) byte {
	if math.IsNaN(v) {
		return 0xFF
	}
	q := math.Round(v + 110)
	if q < 0 {
		q = 0
	}
	if q > 254 {
		q = 254
	}
	return byte(q)
}

// dequantizeRSSI inverts quantizeRSSI.
func dequantizeRSSI(b byte) float64 {
	if b == 0xFF {
		return math.NaN()
	}
	return -110 + float64(b)
}
