package v2v

import "rups/internal/obs"

// syncTelemetry is the reliable sync protocol's metric roster (see
// docs/OBSERVABILITY.md): how hard the protocol had to work to keep peer
// copies contiguous, and how stale those copies ran. Paired with the
// rups_link_* counters these answer "what did the channel do, and what did
// it cost us" for any lossy run.
type syncTelemetry struct {
	chunksSent    *obs.Counter
	chunksResent  *obs.Counter
	chunksApplied *obs.Counter
	chunksHeld    *obs.Counter
	dupSuppressed *obs.Counter
	rejected      *obs.Counter
	acksSent      *obs.Counter
	timeouts      *obs.Counter
	epochResets   *obs.Counter
	ackRTT        *obs.Histogram
	copyAge       *obs.Histogram
}

var syncTel = obs.NewView(func(r *obs.Registry) *syncTelemetry {
	return &syncTelemetry{
		chunksSent: r.Counter("rups_v2v_chunks_sent_total",
			"trajectory chunks transmitted for the first time"),
		chunksResent: r.Counter("rups_v2v_chunks_retransmitted_total",
			"trajectory chunks retransmitted after a timeout"),
		chunksApplied: r.Counter("rups_v2v_chunks_applied_total",
			"chunks applied to a peer copy (contiguous delivery)"),
		chunksHeld: r.Counter("rups_v2v_chunks_held_total",
			"out-of-order chunks buffered until the gap before them filled"),
		dupSuppressed: r.Counter("rups_v2v_duplicates_suppressed_total",
			"duplicate frames and already-applied chunks discarded"),
		rejected: r.Counter("rups_v2v_frames_rejected_total",
			"frames discarded as malformed or CRC-corrupt"),
		acksSent: r.Counter("rups_v2v_acks_sent_total",
			"cumulative-ack beacons transmitted"),
		timeouts: r.Counter("rups_v2v_retransmit_timeouts_total",
			"retransmission timer expiries (each backs off the RTO)"),
		epochResets: r.Counter("rups_v2v_epoch_resets_total",
			"receiver resyncs triggered by a peer announcing a new session epoch"),
		// RTT spans one round (~4 ms) up to a fully backed-off timer (~4 s).
		ackRTT: r.Histogram("rups_v2v_ack_rtt_seconds",
			"round-trip from first transmission of a chunk to its cumulative ack", -10, 2),
		copyAge: r.Histogram("rups_v2v_copy_staleness_seconds",
			"age of a peer copy's freshest mark when observed", -4, 10),
	}
})
