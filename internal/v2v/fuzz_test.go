package v2v

import (
	"testing"

	"rups/internal/trajectory"
)

// FuzzV2VDecode hammers the delta packet decoder with arbitrary bytes,
// mirroring trace.FuzzReadFrom: it must never panic, must reject
// everything malformed with an error, and everything it accepts must be
// structurally consistent and re-encodable. The committed corpus under
// testdata/fuzz/FuzzV2VDecode includes an oversized-count packet — the
// trace.ReadFrom bug class this package's length check exists to stop.
func FuzzV2VDecode(f *testing.F) {
	// A well-formed single-mark, single-channel delta.
	valid, err := Delta{
		FromMark: 3,
		Marks:    []trajectory.GeoMark{{Theta: 1.5, T: 12.25}},
		Power:    [][]float64{{-87}},
	}.MarshalBinary()
	if err != nil {
		f.Fatalf("seed marshal: %v", err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("RUPD"))
	// Header claiming 0xFFFFFFFF marks with no payload behind it.
	oversized := append([]byte{0x44, 0x50, 0x55, 0x52}, make([]byte, 18)...)
	oversized[8], oversized[9], oversized[10], oversized[11] = 0xFF, 0xFF, 0xFF, 0xFF
	oversized[12] = 1
	f.Add(oversized)
	// The crasher shape the WSM bound exists for: a packet whose header
	// arithmetic is self-consistent but whose size (1632 B) exceeds the
	// 1400 B payload a real WSM can carry. Also committed to the corpus as
	// oversized-consistent-1632.
	overWSM := make([]byte, 22+230*6+230)
	copy(overWSM, []byte{0x44, 0x50, 0x55, 0x52})
	overWSM[8] = 230
	overWSM[12] = 1
	f.Add(overWSM)

	f.Fuzz(func(t *testing.T, data []byte) {
		var d Delta
		if err := d.UnmarshalBinary(data); err != nil {
			return
		}
		// Accepted: the packet must have fit one WSM — anything larger
		// cannot have crossed the air interface.
		if len(data) > WSMPayload {
			t.Fatalf("accepted a %d-byte packet over the %d WSM bound", len(data), WSMPayload)
		}
		// Accepted: every power row must span exactly the marks.
		if len(d.Power) == 0 {
			t.Fatal("accepted delta with zero channels")
		}
		for ch, row := range d.Power {
			if len(row) != len(d.Marks) {
				t.Fatalf("accepted delta with ragged row %d: %d cells for %d marks", ch, len(row), len(d.Marks))
			}
		}
		if d.FromMark < 0 {
			t.Fatalf("accepted delta with negative FromMark %d", d.FromMark)
		}
		// An accepted delta must survive re-encoding.
		if _, err := d.MarshalBinary(); err != nil {
			t.Fatalf("accepted delta does not re-encode: %v", err)
		}
	})
}

// FuzzParseBeacon covers the other wire entry point: beacons are fixed
// size, so everything else must be rejected without panicking.
func FuzzParseBeacon(f *testing.F) {
	f.Add([]byte{})
	f.Add(Beacon(42, 1024))
	f.Add(make([]byte, BeaconSize-1))

	f.Fuzz(func(t *testing.T, data []byte) {
		id, n, err := ParseBeacon(data)
		if err != nil {
			if len(data) == BeaconSize {
				t.Fatalf("rejected a %d-byte beacon: %v", BeaconSize, err)
			}
			return
		}
		if len(data) != BeaconSize {
			t.Fatalf("accepted a %d-byte beacon (id=%d n=%d)", len(data), id, n)
		}
	})
}
