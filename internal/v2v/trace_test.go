package v2v

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"rups/internal/link"
	"rups/internal/obs"
	"rups/internal/trajectory"
)

// TestBurstRetransmitStitchesToOriginTrace drives a session through a
// Gilbert–Elliott burst link and checks the causal-trace invariant end to
// end: every sender chunk span (first transmission or retransmission) and
// every receiver reassemble/admit span lands on the session's one
// originating TraceID, and each reassemble hangs off an actual sender
// chunk span — the chunk completed under *some* transmission, and that
// transmission is its parent.
func TestBurstRetransmitStitchesToOriginTrace(t *testing.T) {
	rec := obs.NewRecorder(1 << 16)
	obs.SetRecorder(rec)
	defer obs.SetRecorder(nil)

	src := mkAware(27, 200)
	p := link.Params{
		Seed: 17, Loss: 0.2,
		BurstEnter: 0.05, BurstExit: 0.2,
		Reorder: 0.1, Duplicate: 0.05,
	}
	s := NewSession(src, link.New(p, 0), link.New(p, 1), SyncConfig{Seed: 9})
	rounds := runSync(s, 1e9, 200000)
	if !s.Quiescent() {
		t.Fatalf("no convergence under burst loss after %d rounds", rounds)
	}
	assertBitExact(t, s.Copy(), src, src.Len())

	var origin obs.TraceID
	chunkSpans := map[obs.SpanID]bool{}
	resends, reassembles, admits := 0, 0, 0
	for _, ev := range rec.Events() {
		switch ev.Name {
		case "chunk_send", "chunk_resend":
			if origin == 0 {
				origin = ev.Trace
			}
			if ev.Trace != origin {
				t.Fatalf("sender span %s on trace %d, origin is %d", ev.Name, ev.Trace, origin)
			}
			chunkSpans[ev.ID] = true
			if ev.Name == "chunk_resend" {
				resends++
			}
		}
	}
	if origin == 0 {
		t.Fatal("no sender chunk spans recorded")
	}
	if resends == 0 {
		t.Fatal("burst link produced no retransmissions; the test exercises nothing")
	}
	for _, ev := range rec.Events() {
		switch ev.Name {
		case "reassemble":
			reassembles++
			if ev.Trace != origin {
				t.Fatalf("reassemble on trace %d, want origin %d", ev.Trace, origin)
			}
			if !chunkSpans[ev.Parent] {
				t.Fatalf("reassemble parent %d is not a sender chunk span", ev.Parent)
			}
		case "admit_chunk":
			admits++
			if ev.Trace != origin {
				t.Fatalf("admit_chunk on trace %d, want origin %d", ev.Trace, origin)
			}
		}
	}
	if reassembles == 0 || admits == 0 {
		t.Fatalf("receiver spans missing: %d reassembles, %d admits", reassembles, admits)
	}
	if got := s.TraceRef(); got.Trace != origin {
		t.Fatalf("session TraceRef %d, want origin %d", got.Trace, origin)
	}
}

// mkTracedFrame builds one valid traced DATA frame for the corruption
// tests: a single-fragment chunk stamped with a known TraceRef.
func mkTracedFrame(t testing.TB, ref obs.TraceRef) []byte {
	t.Helper()
	d := Delta{
		FromMark: 5,
		Marks:    []trajectory.GeoMark{{Theta: 2.5, T: 10}, {Theta: 2.75, T: 11}},
		Power:    [][]float64{{-80, -81}, {-90, -91}},
	}
	frames := dataFrames(d, ref, 0)
	if len(frames) != 1 {
		t.Fatalf("expected a single-fragment chunk, got %d frames", len(frames))
	}
	return frames[0]
}

// TestCorruptedTraceHeaderDegradesToUnstitched scrambles the 16-byte trace
// extension of a valid frame (and repairs the CRC, as a transparently
// re-framing relay might) and checks the failure mode the wire format
// promises: the frame still parses, the payload is untouched, and only the
// trace ref degrades — to garbage that will never match a live trace, i.e.
// an unstitched span, not a decode error.
func TestCorruptedTraceHeaderDegradesToUnstitched(t *testing.T) {
	ref := obs.TraceRef{Trace: 424242, Parent: 777}
	good := mkTracedFrame(t, ref)
	parsed, err := parseFrame(good)
	if err != nil {
		t.Fatalf("valid traced frame rejected: %v", err)
	}
	if parsed.ref != ref {
		t.Fatalf("parsed ref %+v, want %+v", parsed.ref, ref)
	}

	bad := append([]byte(nil), good...)
	for i := 0; i < traceExtLen; i++ {
		bad[dataHeaderLen+i] ^= 0xA5
	}
	body := bad[:len(bad)-frameCRCLen]
	binary.LittleEndian.PutUint32(bad[len(bad)-frameCRCLen:], crc32.ChecksumIEEE(body))

	got, err := parseFrame(bad)
	if err != nil {
		t.Fatalf("scrambled trace header rejected the frame: %v", err)
	}
	if got.ref == ref {
		t.Fatal("scrambled trace header parsed back to the original ref")
	}
	if string(got.payload) != string(parsed.payload) {
		t.Fatal("payload changed under a trace-header-only scramble")
	}
	if got.from != parsed.from || got.nFrags != parsed.nFrags {
		t.Fatal("chunk header changed under a trace-header-only scramble")
	}
}

// FuzzParseFrame hammers the frame parser. Seeds include a valid traced
// frame and the scrambled-trace-header variant from the test above, which
// pins the degrade-not-reject behavior into the corpus.
func FuzzParseFrame(f *testing.F) {
	ref := obs.TraceRef{Trace: 424242, Parent: 777}
	good := mkTracedFrame(f, ref)
	f.Add(append([]byte(nil), good...))
	// Untraced variant.
	d := Delta{FromMark: 5,
		Marks: []trajectory.GeoMark{{Theta: 2.5, T: 10}},
		Power: [][]float64{{-80}}}
	for _, fr := range dataFrames(d, obs.TraceRef{}, 0) {
		f.Add(fr)
	}
	// Scrambled trace extension with a repaired CRC: must still parse.
	scrambled := append([]byte(nil), good...)
	for i := 0; i < traceExtLen; i++ {
		scrambled[dataHeaderLen+i] ^= 0xA5
	}
	binary.LittleEndian.PutUint32(scrambled[len(scrambled)-frameCRCLen:],
		crc32.ChecksumIEEE(scrambled[:len(scrambled)-frameCRCLen]))
	f.Add(scrambled)
	f.Add(ackFrameBytes(12, 0))
	f.Add([]byte{})
	f.Add([]byte{0x52, 0x4C})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := parseFrame(data)
		if err != nil {
			return
		}
		// Accepted frames must be structurally sound: the payload sits
		// inside the claimed chunk blob and the fragment index inside the
		// fragment count.
		if fr.typ == frameData {
			if fr.offset < 0 || fr.offset+len(fr.payload) > fr.total {
				t.Fatalf("accepted fragment outside its blob: off=%d len=%d total=%d",
					fr.offset, len(fr.payload), fr.total)
			}
			if fr.fragIdx >= fr.nFrags {
				t.Fatalf("accepted fragment %d of %d", fr.fragIdx, fr.nFrags)
			}
		}
	})
}
