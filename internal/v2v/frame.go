package v2v

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"rups/internal/trajectory"
)

// The reliable sync protocol's wire formats.
//
// A *chunk* is the protocol's sequence-numbered unit: a contiguous run of
// trajectory marks starting at mark FromMark, encoded *losslessly* (raw
// float64 bits). Unlike the legacy quantized Delta encoding, a chunk round
// trip is bit-exact, so a fully synced copy is byte-identical to the
// sender's prefix — which is what lets the reliable path degrade to the
// perfect-channel baseline exactly when the link is clean.
//
// One mark spans 16 B of geometry plus 8 B per channel (194 GSM channels
// ≈ 1.6 KB), so chunks exceed the 1400 B WSM payload and are fragmented
// into DATA frames; every frame carries a CRC32 so in-flight corruption is
// detected and the frame dropped rather than applied.
//
// DATA frame (little endian):
//
//	magic    uint16 'RL'
//	type     uint8  1
//	reserved uint8
//	fromMark uint32  chunk sequence number: first mark carried
//	nMarks   uint16
//	channels uint16
//	fragIdx  uint16  fragment index within the chunk
//	nFrags   uint16
//	total    uint32  chunk blob length, bytes
//	offset   uint32  this fragment's byte offset into the blob
//	plen     uint16  payload bytes in this frame
//	payload  plen bytes
//	crc      uint32  IEEE CRC32 over everything above
//
// ACK frame (little endian):
//
//	magic    uint16 'RL'
//	type     uint8  2
//	reserved uint8
//	cum      uint32  cumulative contiguous marks held by the receiver
//	crc      uint32
const (
	frameMagic uint16 = 0x4C52 // "RL"
	frameData  byte   = 1
	frameAck   byte   = 2

	dataHeaderLen = 26
	frameCRCLen   = 4
	ackFrameLen   = 4 + 4 + frameCRCLen

	// maxFragPayload keeps every DATA frame within the WSM payload bound.
	maxFragPayload = WSMPayload - dataHeaderLen - frameCRCLen

	chunkHeaderLen = 8 // fromMark u32, nMarks u16, channels u16
)

var errBadFrame = errors.New("v2v: malformed frame")

// encodeChunk serializes a chunk losslessly: header, per-mark geometry
// (theta, t as float64 bits), then the channel-major power rows.
func encodeChunk(d Delta) []byte {
	n := len(d.Marks)
	chans := len(d.Power)
	buf := make([]byte, 0, chunkHeaderLen+n*16+chans*n*8)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.FromMark))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(n))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(chans))
	for _, mk := range d.Marks {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(mk.Theta))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(mk.T))
	}
	for ch := 0; ch < chans; ch++ {
		row := d.Power[ch]
		for i := 0; i < n; i++ {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(row[i]))
		}
	}
	return buf
}

// decodeChunk inverts encodeChunk, validating the size arithmetic.
func decodeChunk(b []byte) (Delta, error) {
	if len(b) < chunkHeaderLen {
		return Delta{}, errBadFrame
	}
	from := int(binary.LittleEndian.Uint32(b[0:]))
	n := int(binary.LittleEndian.Uint16(b[4:]))
	chans := int(binary.LittleEndian.Uint16(b[6:]))
	if n == 0 || chans == 0 {
		return Delta{}, errBadFrame
	}
	if len(b) != chunkHeaderLen+n*16+chans*n*8 {
		return Delta{}, fmt.Errorf("v2v: chunk size %d, want %d", len(b), chunkHeaderLen+n*16+chans*n*8)
	}
	d := Delta{FromMark: from, Marks: make([]trajectory.GeoMark, n)}
	off := chunkHeaderLen
	for i := 0; i < n; i++ {
		d.Marks[i] = trajectory.GeoMark{
			Theta: math.Float64frombits(binary.LittleEndian.Uint64(b[off:])),
			T:     math.Float64frombits(binary.LittleEndian.Uint64(b[off+8:])),
		}
		off += 16
	}
	d.Power = make([][]float64, chans)
	for ch := 0; ch < chans; ch++ {
		row := make([]float64, n)
		for i := range row {
			row[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		}
		d.Power[ch] = row
	}
	return d, nil
}

// dataFrames encodes the chunk and fragments it into WSM-bounded DATA
// frames.
func dataFrames(d Delta) [][]byte {
	blob := encodeChunk(d)
	nFrags := (len(blob) + maxFragPayload - 1) / maxFragPayload
	out := make([][]byte, 0, nFrags)
	for f := 0; f < nFrags; f++ {
		off := f * maxFragPayload
		end := off + maxFragPayload
		if end > len(blob) {
			end = len(blob)
		}
		payload := blob[off:end]
		fr := make([]byte, 0, dataHeaderLen+len(payload)+frameCRCLen)
		fr = binary.LittleEndian.AppendUint16(fr, frameMagic)
		fr = append(fr, frameData, 0)
		fr = binary.LittleEndian.AppendUint32(fr, uint32(d.FromMark))
		fr = binary.LittleEndian.AppendUint16(fr, uint16(len(d.Marks)))
		fr = binary.LittleEndian.AppendUint16(fr, uint16(len(d.Power)))
		fr = binary.LittleEndian.AppendUint16(fr, uint16(f))
		fr = binary.LittleEndian.AppendUint16(fr, uint16(nFrags))
		fr = binary.LittleEndian.AppendUint32(fr, uint32(len(blob)))
		fr = binary.LittleEndian.AppendUint32(fr, uint32(off))
		fr = binary.LittleEndian.AppendUint16(fr, uint16(len(payload)))
		fr = append(fr, payload...)
		fr = binary.LittleEndian.AppendUint32(fr, crc32.ChecksumIEEE(fr))
		out = append(out, fr)
	}
	return out
}

// ackFrameBytes encodes a cumulative-ack beacon.
func ackFrameBytes(cum int) []byte {
	fr := make([]byte, 0, ackFrameLen)
	fr = binary.LittleEndian.AppendUint16(fr, frameMagic)
	fr = append(fr, frameAck, 0)
	fr = binary.LittleEndian.AppendUint32(fr, uint32(cum))
	return binary.LittleEndian.AppendUint32(fr, crc32.ChecksumIEEE(fr))
}

// frame is a parsed protocol frame.
type frame struct {
	typ byte
	// ACK
	cum int
	// DATA
	from            int
	nMarks, chans   int
	fragIdx, nFrags int
	total, offset   int
	payload         []byte
}

// parseFrame validates the CRC and structure of a received frame. Frames
// the link corrupted (or that never were protocol frames) fail here and
// are dropped by the caller.
func parseFrame(b []byte) (frame, error) {
	if len(b) < 4+frameCRCLen || binary.LittleEndian.Uint16(b[0:]) != frameMagic {
		return frame{}, errBadFrame
	}
	body, tail := b[:len(b)-frameCRCLen], b[len(b)-frameCRCLen:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return frame{}, errors.New("v2v: frame CRC mismatch")
	}
	fr := frame{typ: b[2]}
	switch fr.typ {
	case frameAck:
		if len(b) != ackFrameLen {
			return frame{}, errBadFrame
		}
		fr.cum = int(binary.LittleEndian.Uint32(b[4:]))
		return fr, nil
	case frameData:
		if len(b) < dataHeaderLen+frameCRCLen {
			return frame{}, errBadFrame
		}
		fr.from = int(binary.LittleEndian.Uint32(b[4:]))
		fr.nMarks = int(binary.LittleEndian.Uint16(b[8:]))
		fr.chans = int(binary.LittleEndian.Uint16(b[10:]))
		fr.fragIdx = int(binary.LittleEndian.Uint16(b[12:]))
		fr.nFrags = int(binary.LittleEndian.Uint16(b[14:]))
		fr.total = int(binary.LittleEndian.Uint32(b[16:]))
		fr.offset = int(binary.LittleEndian.Uint32(b[20:]))
		plen := int(binary.LittleEndian.Uint16(b[24:]))
		if len(b) != dataHeaderLen+plen+frameCRCLen {
			return frame{}, errBadFrame
		}
		if fr.nMarks == 0 || fr.chans == 0 || fr.nFrags == 0 || fr.fragIdx >= fr.nFrags {
			return frame{}, errBadFrame
		}
		if fr.total <= 0 || fr.offset < 0 || fr.offset+plen > fr.total {
			return frame{}, errBadFrame
		}
		fr.payload = b[dataHeaderLen : dataHeaderLen+plen]
		return fr, nil
	default:
		return frame{}, errBadFrame
	}
}
