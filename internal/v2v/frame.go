package v2v

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"rups/internal/obs"
	"rups/internal/trajectory"
)

// The reliable sync protocol's wire formats.
//
// A *chunk* is the protocol's sequence-numbered unit: a contiguous run of
// trajectory marks starting at mark FromMark, encoded *losslessly* (raw
// float64 bits). Unlike the legacy quantized Delta encoding, a chunk round
// trip is bit-exact, so a fully synced copy is byte-identical to the
// sender's prefix — which is what lets the reliable path degrade to the
// perfect-channel baseline exactly when the link is clean.
//
// One mark spans 16 B of geometry plus 8 B per channel (194 GSM channels
// ≈ 1.6 KB), so chunks exceed the 1400 B WSM payload and are fragmented
// into DATA frames; every frame carries a CRC32 so in-flight corruption is
// detected and the frame dropped rather than applied.
//
// DATA frame (little endian):
//
//	magic    uint16 'RL'
//	type     uint8  1
//	flags    uint8   bit 0: causal-trace extension present
//	fromMark uint32  chunk sequence number: first mark carried
//	nMarks   uint16
//	channels uint16
//	fragIdx  uint16  fragment index within the chunk
//	nFrags   uint16
//	total    uint32  chunk blob length, bytes
//	offset   uint32  this fragment's byte offset into the blob
//	plen     uint16  payload bytes in this frame
//	[trace   uint64  originating obs.TraceID        ] when flags bit 0
//	[parent  uint64  sender-side parent obs.SpanID  ] is set (16 bytes)
//	[epoch   uint32  sender session epoch           ] when flags bit 1 is set
//	payload  plen bytes
//	crc      uint32  IEEE CRC32 over everything above
//
// The trace extension is how a cross-vehicle trace propagates: the sender
// stamps every fragment with the sync session's TraceID and the chunk-send
// span's ID, and the receiver stitches its reassemble/admit spans (and,
// downstream, the pair's resolve spans) under them. The extension costs 16
// bytes per frame inside the WSM bound — fragmentation budgets for it —
// and is only emitted while span tracing is enabled, so the disabled wire
// format is byte-identical to the PR-5 one. Flags bits other than bit 0
// are reserved and ignored on parse (a frame from a newer sender still
// decodes; its unknown extensions are simply not understood). Trace and
// parent are opaque u64s: any value parses, so a scrambled trace header
// degrades to an unstitched span, never a decode error — only the CRC
// guards integrity.
//
// ACK frame (little endian):
//
//	magic    uint16 'RL'
//	type     uint8  2
//	flags    uint8   bit 1: epoch extension present
//	cum      uint32  cumulative contiguous marks held by the receiver
//	[epoch   uint32  epoch the receiver is synced to] when flags bit 1 is set
//	crc      uint32
const (
	frameMagic uint16 = 0x4C52 // "RL"
	frameData  byte   = 1
	frameAck   byte   = 2

	// flagTraced marks a DATA frame carrying the 16-byte trace extension.
	flagTraced byte = 1 << 0
	// flagEpoch marks a frame (DATA or ACK) carrying the 4-byte session
	// epoch extension — the restart handshake. A sender that restarts
	// with fresh sequence state announces a new epoch on every DATA
	// frame; the receiver discards its prefix and resyncs from mark 0
	// instead of wedging the go-back-N window by acking marks the new
	// sender never transmitted, and its ACK beacons echo the epoch so
	// the sender can discard stale pre-restart acks. Epoch 0 emits the
	// legacy extension-free wire format, byte-identical to PR-5.
	flagEpoch byte = 1 << 1

	dataHeaderLen = 26
	traceExtLen   = 16 // trace u64 + parent span u64
	epochExtLen   = 4  // session epoch u32
	frameCRCLen   = 4
	ackFrameLen   = 4 + 4 + frameCRCLen

	// maxFragPayload keeps every DATA frame within the WSM payload bound;
	// traced frames shave traceExtLen off this budget so the bound holds
	// with the extension in place.
	maxFragPayload = WSMPayload - dataHeaderLen - frameCRCLen

	chunkHeaderLen = 8 // fromMark u32, nMarks u16, channels u16
)

var errBadFrame = errors.New("v2v: malformed frame")

// encodeChunk serializes a chunk losslessly: header, per-mark geometry
// (theta, t as float64 bits), then the channel-major power rows.
func encodeChunk(d Delta) []byte {
	n := len(d.Marks)
	chans := len(d.Power)
	buf := make([]byte, 0, chunkHeaderLen+n*16+chans*n*8)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.FromMark))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(n))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(chans))
	for _, mk := range d.Marks {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(mk.Theta))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(mk.T))
	}
	for ch := 0; ch < chans; ch++ {
		row := d.Power[ch]
		for i := 0; i < n; i++ {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(row[i]))
		}
	}
	return buf
}

// decodeChunk inverts encodeChunk, validating the size arithmetic.
func decodeChunk(b []byte) (Delta, error) {
	if len(b) < chunkHeaderLen {
		return Delta{}, errBadFrame
	}
	from := int(binary.LittleEndian.Uint32(b[0:]))
	n := int(binary.LittleEndian.Uint16(b[4:]))
	chans := int(binary.LittleEndian.Uint16(b[6:]))
	if n == 0 || chans == 0 {
		return Delta{}, errBadFrame
	}
	if len(b) != chunkHeaderLen+n*16+chans*n*8 {
		return Delta{}, fmt.Errorf("v2v: chunk size %d, want %d", len(b), chunkHeaderLen+n*16+chans*n*8)
	}
	d := Delta{FromMark: from, Marks: make([]trajectory.GeoMark, n)}
	off := chunkHeaderLen
	for i := 0; i < n; i++ {
		d.Marks[i] = trajectory.GeoMark{
			Theta: math.Float64frombits(binary.LittleEndian.Uint64(b[off:])),
			T:     math.Float64frombits(binary.LittleEndian.Uint64(b[off+8:])),
		}
		off += 16
	}
	d.Power = make([][]float64, chans)
	for ch := 0; ch < chans; ch++ {
		row := make([]float64, n)
		for i := range row {
			row[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		}
		d.Power[ch] = row
	}
	return d, nil
}

// dataFrames encodes the chunk and fragments it into WSM-bounded DATA
// frames. A nonzero ref.Trace stamps every fragment with the 16-byte
// causal-trace extension, and a nonzero epoch with the 4-byte restart
// epoch (the per-fragment payload budget shrinks to keep the frames
// inside the WSM bound); zero ref and epoch emit the exact untraced
// PR-5 wire format.
func dataFrames(d Delta, ref obs.TraceRef, epoch uint32) [][]byte {
	blob := encodeChunk(d)
	budget := maxFragPayload
	var flags byte
	if ref.Trace != 0 {
		budget -= traceExtLen
		flags = flagTraced
	}
	if epoch != 0 {
		budget -= epochExtLen
		flags |= flagEpoch
	}
	nFrags := (len(blob) + budget - 1) / budget
	out := make([][]byte, 0, nFrags)
	for f := 0; f < nFrags; f++ {
		off := f * budget
		end := off + budget
		if end > len(blob) {
			end = len(blob)
		}
		payload := blob[off:end]
		fr := make([]byte, 0, dataHeaderLen+traceExtLen+epochExtLen+len(payload)+frameCRCLen)
		fr = binary.LittleEndian.AppendUint16(fr, frameMagic)
		fr = append(fr, frameData, flags)
		fr = binary.LittleEndian.AppendUint32(fr, uint32(d.FromMark))
		fr = binary.LittleEndian.AppendUint16(fr, uint16(len(d.Marks)))
		fr = binary.LittleEndian.AppendUint16(fr, uint16(len(d.Power)))
		fr = binary.LittleEndian.AppendUint16(fr, uint16(f))
		fr = binary.LittleEndian.AppendUint16(fr, uint16(nFrags))
		fr = binary.LittleEndian.AppendUint32(fr, uint32(len(blob)))
		fr = binary.LittleEndian.AppendUint32(fr, uint32(off))
		fr = binary.LittleEndian.AppendUint16(fr, uint16(len(payload)))
		if flags&flagTraced != 0 {
			fr = binary.LittleEndian.AppendUint64(fr, uint64(ref.Trace))
			fr = binary.LittleEndian.AppendUint64(fr, uint64(ref.Parent))
		}
		if flags&flagEpoch != 0 {
			fr = binary.LittleEndian.AppendUint32(fr, epoch)
		}
		fr = append(fr, payload...)
		fr = binary.LittleEndian.AppendUint32(fr, crc32.ChecksumIEEE(fr))
		out = append(out, fr)
	}
	return out
}

// DataFrames encodes one chunk into WSM-bounded, CRC-framed DATA frames —
// the exported codec surface for transports beyond the simulated link
// (the TCP resolution service streams these same bytes). See dataFrames.
func DataFrames(d Delta, ref obs.TraceRef, epoch uint32) [][]byte {
	return dataFrames(d, ref, epoch)
}

// ackFrameBytes encodes a cumulative-ack beacon. A nonzero epoch appends
// the restart-epoch extension; epoch 0 is the legacy 12-byte beacon.
func ackFrameBytes(cum int, epoch uint32) []byte {
	fr := make([]byte, 0, ackFrameLen+epochExtLen)
	fr = binary.LittleEndian.AppendUint16(fr, frameMagic)
	if epoch != 0 {
		fr = append(fr, frameAck, flagEpoch)
	} else {
		fr = append(fr, frameAck, 0)
	}
	fr = binary.LittleEndian.AppendUint32(fr, uint32(cum))
	if epoch != 0 {
		fr = binary.LittleEndian.AppendUint32(fr, epoch)
	}
	return binary.LittleEndian.AppendUint32(fr, crc32.ChecksumIEEE(fr))
}

// AckFrame encodes a cumulative-ack beacon for the given epoch — the
// exported counterpart of DataFrames for external transports.
func AckFrame(cum int, epoch uint32) []byte { return ackFrameBytes(cum, epoch) }

// ParseAck decodes an ACK frame, reporting the receiver's cumulative
// contiguous mark count and the epoch it was acked under (0 for legacy
// extension-free beacons). ok is false for anything that is not an intact
// ACK frame.
func ParseAck(b []byte) (cum int, epoch uint32, ok bool) {
	fr, err := parseFrame(b)
	if err != nil || fr.typ != frameAck {
		return 0, 0, false
	}
	return fr.cum, fr.epoch, true
}

// IsFrame reports whether b begins with the v2v frame magic — how a
// transport multiplexing v2v sync frames with its own control frames
// routes an incoming message without attempting a full parse.
func IsFrame(b []byte) bool {
	return len(b) >= 2 && binary.LittleEndian.Uint16(b[0:]) == frameMagic
}

// frame is a parsed protocol frame.
type frame struct {
	typ byte
	// ACK
	cum int
	// DATA
	from            int
	nMarks, chans   int
	fragIdx, nFrags int
	total, offset   int
	payload         []byte
	// ref is the causal-trace extension (zero when the frame is untraced).
	ref obs.TraceRef
	// epoch is the restart-epoch extension (0 when absent — legacy frames
	// and epoch-0 senders are indistinguishable by design).
	epoch uint32
}

// parseFrame validates the CRC and structure of a received frame. Frames
// the link corrupted (or that never were protocol frames) fail here and
// are dropped by the caller.
func parseFrame(b []byte) (frame, error) {
	if len(b) < 4+frameCRCLen || binary.LittleEndian.Uint16(b[0:]) != frameMagic {
		return frame{}, errBadFrame
	}
	body, tail := b[:len(b)-frameCRCLen], b[len(b)-frameCRCLen:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return frame{}, errors.New("v2v: frame CRC mismatch")
	}
	fr := frame{typ: b[2]}
	switch fr.typ {
	case frameAck:
		wantLen := ackFrameLen
		if b[3]&flagEpoch != 0 {
			wantLen += epochExtLen
		}
		if len(b) != wantLen {
			return frame{}, errBadFrame
		}
		fr.cum = int(binary.LittleEndian.Uint32(b[4:]))
		if b[3]&flagEpoch != 0 {
			fr.epoch = binary.LittleEndian.Uint32(b[8:])
		}
		return fr, nil
	case frameData:
		if len(b) < dataHeaderLen+frameCRCLen {
			return frame{}, errBadFrame
		}
		fr.from = int(binary.LittleEndian.Uint32(b[4:]))
		fr.nMarks = int(binary.LittleEndian.Uint16(b[8:]))
		fr.chans = int(binary.LittleEndian.Uint16(b[10:]))
		fr.fragIdx = int(binary.LittleEndian.Uint16(b[12:]))
		fr.nFrags = int(binary.LittleEndian.Uint16(b[14:]))
		fr.total = int(binary.LittleEndian.Uint32(b[16:]))
		fr.offset = int(binary.LittleEndian.Uint32(b[20:]))
		plen := int(binary.LittleEndian.Uint16(b[24:]))
		payloadStart := dataHeaderLen
		if b[3]&flagTraced != 0 {
			if len(b) < dataHeaderLen+traceExtLen+frameCRCLen {
				return frame{}, errBadFrame
			}
			// Any 16 bytes parse: a scrambled extension yields an unknown
			// (unstitchable) trace ref, not a rejected frame.
			fr.ref.Trace = obs.TraceID(binary.LittleEndian.Uint64(b[dataHeaderLen:]))
			fr.ref.Parent = obs.SpanID(binary.LittleEndian.Uint64(b[dataHeaderLen+8:]))
			payloadStart += traceExtLen
		}
		if b[3]&flagEpoch != 0 {
			if len(b) < payloadStart+epochExtLen+frameCRCLen {
				return frame{}, errBadFrame
			}
			fr.epoch = binary.LittleEndian.Uint32(b[payloadStart:])
			payloadStart += epochExtLen
		}
		if len(b) != payloadStart+plen+frameCRCLen {
			return frame{}, errBadFrame
		}
		if fr.nMarks == 0 || fr.chans == 0 || fr.nFrags == 0 || fr.fragIdx >= fr.nFrags {
			return frame{}, errBadFrame
		}
		if fr.total <= 0 || fr.offset < 0 || fr.offset+plen > fr.total {
			return frame{}, errBadFrame
		}
		fr.payload = b[payloadStart : payloadStart+plen]
		return fr, nil
	default:
		return frame{}, errBadFrame
	}
}
