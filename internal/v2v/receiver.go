package v2v

import (
	"sort"

	"rups/internal/obs"
	"rups/internal/trajectory"
)

// Receiver is the receive half of the reliable sync protocol, factored out
// of Session so transports other than the simulated link can reuse it: it
// consumes raw DATA frames (any order, any loss, any duplication) and
// maintains a contiguous, bit-exact copy of the sender's trajectory prefix
// plus the cumulative-ack state the sender's go-back-N window needs.
//
// The receiver also owns the restart handshake. Every sender session has an
// epoch (0 for legacy peers); the receiver locks onto the first epoch it
// sees and, when a frame arrives under a *different* epoch, discards its
// entire reconstruction and resyncs from mark 0. Without this, a sender
// that restarts with fresh sequence state wedges forever: the receiver's
// cumulative ack points past marks the new sender never transmitted, so
// the sender waits for acks that can only move backwards — which the
// protocol (correctly) never allows.
//
// Not safe for concurrent use; callers serialize Offer with reads.
type Receiver struct {
	copy  *trajectory.Aware
	width int
	frags map[int]*fragBuf
	held  map[int]heldChunk

	// epoch is the sender session epoch this reconstruction belongs to;
	// epochSet distinguishes "no frame seen yet" from a legacy epoch-0
	// peer, so the first frame adopts its epoch without counting a reset.
	epoch    uint32
	epochSet bool
	resets   uint64

	ackDue  bool
	applied int // chunks applied across all epochs, exposed for tests

	// Telemetry handle cached once per the obs discipline; View.Get inside
	// Offer would cost an atomic per frame.
	rec *obs.Recorder

	// lastRef is the causal hook of the newest applied chunk (see
	// Session.TraceRef). Cleared on an epoch reset: the old sender's spans
	// are not this reconstruction's ancestry.
	lastRef obs.TraceRef
}

// NewReceiver builds an empty receiver reconstructing a trajectory of the
// given channel width.
func NewReceiver(width int) *Receiver {
	return &Receiver{
		copy:  trajectory.NewAwareWidth(trajectory.Geo{}, width),
		width: width,
		frags: make(map[int]*fragBuf),
		held:  make(map[int]heldChunk),
		rec:   obs.ActiveRecorder(),
	}
}

// Copy returns the reconstruction: always a contiguous, bit-exact prefix
// of the sender's trajectory under the current epoch.
func (r *Receiver) Copy() *trajectory.Aware { return r.copy }

// Applied returns the number of chunks applied over the receiver's
// lifetime (resets do not zero it).
func (r *Receiver) Applied() int { return r.applied }

// Resets returns how many epoch resyncs the receiver has performed.
func (r *Receiver) Resets() uint64 { return r.resets }

// Epoch returns the sender epoch the reconstruction currently tracks
// (0 before any frame arrives, and for legacy extension-free peers).
func (r *Receiver) Epoch() uint32 { return r.epoch }

// TraceRef returns the causal hook of the newest applied chunk; zero while
// no traced chunk has been applied under the current epoch.
func (r *Receiver) TraceRef() obs.TraceRef { return r.lastRef }

// AckDue reports whether an intact DATA frame has arrived since the last
// TakeAckDue — the "emit a beacon this round" signal.
func (r *Receiver) AckDue() bool { return r.ackDue }

// TakeAckDue consumes the ack-due flag, returning its prior value.
func (r *Receiver) TakeAckDue() bool {
	due := r.ackDue
	r.ackDue = false
	return due
}

// AckBytes encodes the cumulative-ack beacon for the current state: the
// contiguous mark count, stamped with the epoch it was reconstructed
// under so a restarted sender can discard pre-restart beacons.
func (r *Receiver) AckBytes() []byte {
	return ackFrameBytes(r.copy.Len(), r.epoch)
}

// Offer consumes one raw frame. Malformed, corrupt, duplicate, and non-DATA
// frames are counted and dropped; intact chunks are reassembled, admitted
// in order, and buffered when ahead of a gap. Returns true when the frame
// was an intact DATA frame (whether or not it advanced the copy).
func (r *Receiver) Offer(raw []byte) bool {
	tel := syncTel.Get()
	fr, err := parseFrame(raw)
	if err != nil || fr.typ != frameData {
		if tel != nil {
			tel.rejected.Inc()
		}
		return false
	}
	if fr.epoch != r.epoch {
		if fr.epoch < r.epoch {
			// A straggler from a dead epoch — late, reordered, or
			// duplicated in flight across the restart. Epochs increase
			// monotonically per restart, so an older one is always stale;
			// acting on it would flap the reconstruction back and forth
			// between incarnations.
			if tel != nil {
				tel.rejected.Inc()
			}
			return false
		}
		if r.epochSet || r.copy.Len() > 0 || !r.Idle() {
			// The peer restarted: everything reconstructed belongs to a
			// dead epoch. Resync from nothing rather than acking marks the
			// new sender never sent.
			r.reset(tel)
		}
		r.epoch = fr.epoch
	}
	r.epochSet = true
	// Any intact data frame triggers an ack: that is what heals lost acks
	// (the sender retransmits, the receiver re-acks).
	r.ackDue = true
	if fr.from+fr.nMarks <= r.copy.Len() {
		if tel != nil {
			tel.dupSuppressed.Inc()
		}
		return true
	}
	fb := r.frags[fr.from]
	if fb == nil || fb.total != fr.total || fb.nFrags != fr.nFrags ||
		fb.nMarks != fr.nMarks || fb.chans != fr.chans {
		// First fragment of this chunk — or a retransmission with a
		// different layout (the sender's go-back may regroup marks), which
		// supersedes any stale partial reassembly.
		fb = &fragBuf{
			nMarks: fr.nMarks, chans: fr.chans, nFrags: fr.nFrags,
			total: fr.total,
			have:  make([]bool, fr.nFrags),
			buf:   make([]byte, fr.total),
		}
		r.frags[fr.from] = fb
	}
	if fr.ref.Trace != 0 {
		// Retransmitted fragments re-stamp the chunk with their own send
		// span; the chunk stitches under whichever transmission completed
		// it last.
		fb.ref = fr.ref
	}
	if fr.offset+len(fr.payload) > fb.total || fb.have[fr.fragIdx] {
		if fb.have[fr.fragIdx] && tel != nil {
			tel.dupSuppressed.Inc()
		}
		return true
	}
	copy(fb.buf[fr.offset:], fr.payload)
	fb.have[fr.fragIdx] = true
	fb.got++
	if fb.got < fb.nFrags {
		return true
	}
	delete(r.frags, fr.from)
	// The reassemble span hangs under the sender's chunk-send span via the
	// wire-carried ref — the first receiver-side stage of the cross-vehicle
	// trace. Inert when untraced or tracing is off.
	rsp := r.rec.StartChild(fb.ref.Trace, fb.ref.Parent, "reassemble")
	rsp.Arg = int64(fr.from)
	d, err := decodeChunk(fb.buf)
	rsp.End()
	if err != nil {
		if tel != nil {
			tel.rejected.Inc()
		}
		return true
	}
	before := r.copy.Len()
	r.admitChunk(d, fb.ref, tel)
	if r.copy.Len() > before {
		// Drop partial reassemblies of chunks another transmission already
		// completed — they will never finish, their remaining fragments
		// were superseded.
		for k, pf := range r.frags {
			if k+pf.nMarks <= r.copy.Len() {
				delete(r.frags, k)
			}
		}
	}
	return true
}

// reset discards the reconstruction for an epoch change.
func (r *Receiver) reset(tel *syncTelemetry) {
	r.copy = trajectory.NewAwareWidth(trajectory.Geo{}, r.width)
	r.frags = make(map[int]*fragBuf)
	r.held = make(map[int]heldChunk)
	r.lastRef = obs.TraceRef{}
	r.resets++
	if tel != nil {
		tel.epochResets.Inc()
	}
}

// admitChunk applies a reassembled chunk if it extends the contiguous
// prefix, holds it if it is ahead of a gap, and then drains any held
// chunks the application unblocked.
func (r *Receiver) admitChunk(d Delta, ref obs.TraceRef, tel *syncTelemetry) {
	if d.FromMark+len(d.Marks) <= r.copy.Len() {
		if tel != nil {
			tel.dupSuppressed.Inc()
		}
		return
	}
	if d.FromMark > r.copy.Len() {
		r.held[d.FromMark] = heldChunk{d: d, ref: ref}
		if tel != nil {
			tel.chunksHeld.Inc()
		}
		return
	}
	if !r.applyChunk(d, ref, tel) {
		return
	}
	r.drainHeld(tel)
}

// applyChunk applies one contiguous chunk to the copy, recording the admit
// span on the chunk's cross-vehicle trace and advancing lastRef so
// downstream resolves stitch under this admission. Reports success.
func (r *Receiver) applyChunk(d Delta, ref obs.TraceRef, tel *syncTelemetry) bool {
	asp := r.rec.StartChild(ref.Trace, ref.Parent, "admit_chunk")
	asp.Arg = int64(d.FromMark)
	err := d.Apply(r.copy)
	asp.End()
	if err != nil {
		if tel != nil {
			tel.rejected.Inc()
		}
		return false
	}
	if ref.Trace != 0 {
		r.lastRef = obs.TraceRef{Trace: ref.Trace, Parent: asp.ID()}
	}
	r.applied++
	if tel != nil {
		tel.chunksApplied.Inc()
	}
	return true
}

// drainHeld applies buffered out-of-order chunks that have become
// contiguous. Keys are scanned in order so metric counts stay
// deterministic.
func (r *Receiver) drainHeld(tel *syncTelemetry) {
	for {
		keys := make([]int, 0, len(r.held))
		for k := range r.held {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		progressed := false
		for _, k := range keys {
			h := r.held[k]
			if h.d.FromMark > r.copy.Len() {
				continue
			}
			delete(r.held, k)
			if h.d.FromMark+len(h.d.Marks) <= r.copy.Len() {
				if tel != nil {
					tel.dupSuppressed.Inc()
				}
				continue
			}
			if r.applyChunk(h.d, h.ref, tel) {
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

// Idle reports whether the receiver has no partial reassemblies or held
// chunks pending — everything offered has either been applied or dropped.
func (r *Receiver) Idle() bool {
	return len(r.frags) == 0 && len(r.held) == 0
}
