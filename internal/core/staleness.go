package core

import (
	"math"

	"rups/internal/trajectory"
)

// Graceful degradation under a lossy exchange (paper §III-B): GSM
// fingerprints are only *temporarily* stable — the paper measures them
// trustworthy for no more than ~25 minutes — so a peer copy that stopped
// receiving deltas does not stay resolvable forever. Rather than silently
// answering from fossil context, resolution degrades in two steps:
//
//	fresh  → the copy's newest mark is recent; answer normally.
//	stale  → past StaleAfterSec; still answer (the freshest contiguous
//	         snapshot is the best available), but flag the result so the
//	         caller can widen its error budget or trigger a resync.
//	expired→ past ExpireAfterSec; refuse to answer. A wrong d_r presented
//	         as valid is worse than no answer.
//
// The defaults scale the paper's 25-minute stability bound by the
// simulation's ~10× compressed timeline: expiry at 150 s, with the stale
// warning at 30 s.

// Freshness classifies a context's age under a Staleness policy.
type Freshness int

const (
	FreshContext Freshness = iota
	StaleContext
	ExpiredContext
)

// String names the freshness class.
func (f Freshness) String() string {
	switch f {
	case FreshContext:
		return "fresh"
	case StaleContext:
		return "stale"
	case ExpiredContext:
		return "expired"
	default:
		return "unknown"
	}
}

// Staleness is the trajectory-age policy. The zero value disables the
// policy entirely (every context classifies fresh) so existing callers
// keep their behaviour.
type Staleness struct {
	// StaleAfterSec marks results degraded past this context age. 0
	// disables the stale tier.
	StaleAfterSec float64
	// ExpireAfterSec refuses resolution past this context age. 0 disables
	// the expired tier.
	ExpireAfterSec float64
}

// DefaultStaleness returns the paper's ≤25 min temporary-stability bound
// scaled to sim time (÷10): stale at 30 s, expired at 150 s.
func DefaultStaleness() Staleness {
	return Staleness{StaleAfterSec: 30, ExpireAfterSec: 150}
}

// Enabled reports whether any tier of the policy is active.
func (s Staleness) Enabled() bool {
	return s.StaleAfterSec > 0 || s.ExpireAfterSec > 0
}

// Classify maps a context age (seconds; +Inf for an empty context) to its
// freshness class.
func (s Staleness) Classify(age float64) Freshness {
	if !s.Enabled() {
		return FreshContext
	}
	if math.IsInf(age, 1) {
		return ExpiredContext
	}
	if s.ExpireAfterSec > 0 && age > s.ExpireAfterSec {
		return ExpiredContext
	}
	if s.StaleAfterSec > 0 && age > s.StaleAfterSec {
		return StaleContext
	}
	return FreshContext
}

// ContextAge returns how old a trajectory's newest mark is at sim time
// now. Empty trajectories age +Inf: no context at all is the extreme of
// staleness, never the freshest case.
func ContextAge(a *trajectory.Aware, now float64) float64 {
	if a.Len() == 0 {
		return math.Inf(1)
	}
	_, t1 := a.TimeSpan()
	age := now - t1
	if age < 0 {
		age = 0
	}
	return age
}
