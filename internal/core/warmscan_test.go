package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestWarmPivotMatchesFullScan is the soundness property of the warm-start
// scan: bestWindowInFrom must return the full range's exact maximum for
// *every* pivot — a warm hint only reorders the branch-and-bound
// evaluation, it must never change the result. The fixtures are crafted to
// break a scan that trusts its pivot: self-similar corridors where an
// above-threshold noisy decoy sits near the pivot while the true maximum
// lies far away, so a bound that stopped at the pivot-local best would
// return the decoy.
func TestWarmPivotMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const k, m, w = 5, 120, 16
	for trial := 0; trial < 40; trial++ {
		ref := randRows(rng, k, w)
		tgt := randRows(rng, k, m)
		if trial%2 == 1 {
			// Plant the reference twice: an exact copy (the true maximum)
			// and a noisy decoy far away, so a pivot near the decoy starts
			// from a strong interior local maximum that is still wrong.
			for i := 0; i < k; i++ {
				copy(tgt[i][80:80+w], ref[i])
				for u := 0; u < w; u++ {
					tgt[i][20+u] = ref[i][u] + 0.7*rng.NormFloat64()
				}
			}
		}
		src := newMatrixIndex(ref)
		dst := newMatrixIndex(tgt)
		dst.ensureWindowStats(w)
		s := newSegScorer(src, dst, 0, w, false)
		if !s.canBound() {
			t.Fatal("fixture should support the dense bound path")
		}
		n := s.positions()
		wantPos, wantScore := s.bestWindowIn(0, n-1)
		for pivot := 0; pivot < n; pivot += 3 {
			pos, score := s.bestWindowInFrom(0, n-1, pivot)
			if pos != wantPos || score != wantScore {
				t.Fatalf("trial %d pivot %d: warm-pivoted scan returned (%d, %v), full scan (%d, %v)",
					trial, pivot, pos, score, wantPos, wantScore)
			}
		}
		s.release()
	}
}

// TestSeededScanCombineEquivalence pins bestWindowSeededIn's contract: the
// returned best must be bitwise exact whenever this direction would win
// combine against the seed (the other direction's score, under the given
// tie rule), and may only undercount — never overcount — when it loses.
// Either way combine's direction choice equals the cold full scan's. The
// seed ladder includes the exact maximum itself, which is the clamped-
// correlation tie case (identical signals score exactly 2 in both
// directions): a ties-win direction must still find it exactly.
func TestSeededScanCombineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const k, m, w = 5, 120, 16
	var exact, undercut int
	for trial := 0; trial < 60; trial++ {
		ref := randRows(rng, k, w)
		tgt := randRows(rng, k, m)
		switch trial % 3 {
		case 1: // strong planted maximum (score near 2)
			for i := 0; i < k; i++ {
				copy(tgt[i][60:60+w], ref[i])
			}
		case 2: // moderate noisy maximum
			for i := 0; i < k; i++ {
				for u := 0; u < w; u++ {
					tgt[i][30+u] = ref[i][u] + 0.5*rng.NormFloat64()
				}
			}
		}
		src := newMatrixIndex(ref)
		dst := newMatrixIndex(tgt)
		dst.ensureWindowStats(w)
		s := newSegScorer(src, dst, 0, w, false)
		if !s.canBound() {
			t.Fatal("fixture should support the dense bound path")
		}
		n := s.positions()
		wantPos, wantScore := s.bestWindowIn(0, n-1)
		for _, seed := range []float64{math.Inf(-1), wantScore - 0.5, wantScore, wantScore + 0.3} {
			for _, tiesWin := range []bool{true, false} {
				pos, sc := s.bestWindowSeededIn(0, n-1, seed, tiesWin)
				wins := wantScore > seed || (tiesWin && wantScore == seed)
				if wins {
					if pos != wantPos || sc != wantScore {
						t.Fatalf("trial %d seed %v tiesWin %v: winning direction returned (%d, %v), full scan (%d, %v)",
							trial, seed, tiesWin, pos, sc, wantPos, wantScore)
					}
					exact++
					continue
				}
				if sc > wantScore {
					t.Fatalf("trial %d seed %v tiesWin %v: seeded scan overcounted: %v > full scan %v",
						trial, seed, tiesWin, sc, wantScore)
				}
				undercut++
			}
		}
		s.release()
	}
	if exact == 0 || undercut == 0 {
		t.Fatalf("fixture never exercised both branches (exact %d, undercut %d)", exact, undercut)
	}
}
