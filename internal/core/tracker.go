package core

// DefaultWarmRadiusM is the drift tolerance for classifying a warm-started
// segment as a hit: how far (in metres) a pair's SYN offset may move
// between consecutive ticks and still count as tracked. At urban speeds
// and second-scale resolve intervals the relative offset moves a few
// metres per tick, so 25 m is generous without masking a lost lock.
const DefaultWarmRadiusM = 25

// Tracker carries one pair's warm-start state across resolves, keyed by
// segment ordinal (the i-th NumSYN segment). Each hint is the previous
// tick's SYN index delta IdxB − IdxA — a quantity stable under appends,
// since both indexes are global marks counted from each trajectory's
// start. The searcher turns a hint into a predicted window placement and
// scans a bounded window around it, accepting the bounded result only when
// the column-term bound proves it dominates the whole locality range — a
// wrong hint costs a demoted full rescan, never correctness (the result is
// always identical to the cold oracle's).
//
// State machine per segment:
//
//	no hint ──(SYN accepted)──▶ tracked ──(SYN accepted)──▶ tracked
//	tracked ──(segment rejected: coherency loss, heading gate)──▶ no hint
//	any ──(Tracker.Reset: staleness expiry, pair re-keyed)──▶ no hint
//
// A Tracker is owned by one engine pair slot and must not be shared across
// goroutines within a batch; the engine serializes all use per pair.
type Tracker struct {
	radius int
	hints  map[int]int
}

// NewTracker builds a tracker with the given hit-classification radius in
// metres (DefaultWarmRadiusM when ≤ 0).
func NewTracker(radiusM int) *Tracker {
	if radiusM <= 0 {
		radiusM = DefaultWarmRadiusM
	}
	return &Tracker{radius: radiusM, hints: make(map[int]int)}
}

// Reset drops every hint: the next resolve cold-scans all segments. The
// engine calls this when core.Staleness expires the pair — contexts old
// enough to be discarded cannot vouch for a warm window either.
func (t *Tracker) Reset() {
	clear(t.hints)
}

// hint returns the previous tick's SYN delta for a segment ordinal.
func (t *Tracker) hint(seg int) (delta int, ok bool) {
	delta, ok = t.hints[seg]
	return delta, ok
}

// forget drops one segment ordinal's hint. The searcher calls it for
// ordinals the current tick could not even plan (context too short): an
// unplanned segment is never scanned or re-observed, so its hint would
// otherwise survive arbitrarily many ticks without refresh.
func (t *Tracker) forget(seg int) {
	delete(t.hints, seg)
}

// observe records a segment's outcome: an accepted SYN refreshes the hint,
// a rejection demotes the segment to cold scanning (coherency loss must
// not keep steering future scans toward a stale lock).
func (t *Tracker) observe(seg int, syn SYNPoint, ok bool) {
	if !ok {
		delete(t.hints, seg)
		return
	}
	t.hints[seg] = syn.IdxB - syn.IdxA
}
