package core

import "sync"

// arena is a bump allocator for the float64 backing arrays a Searcher
// materializes per query: the selected channel rows and the matrixIndex
// prefix tables. One resolve grabs a few megabytes in a handful of slices,
// uses them for exactly the searcher's lifetime, and frees them all at
// once — the textbook arena shape. Pooling the arena turns the per-resolve
// allocation firehose into a steady-state zero.
//
// Arena memory is NOT zeroed between cycles. Every consumer must write all
// cells it will read (the index builders do — the only zero-init they rely
// on, the prefix-table sentinels, is written explicitly).
type arena struct {
	buf  []float64
	used int
	// extra counts cells requested beyond the buffer this cycle, so reset
	// can grow the buffer to the observed peak and later cycles stay
	// allocation-free.
	extra int
}

// grab returns an n-cell slice of uninitialized memory. A nil arena
// degrades to plain allocation, so index builders work without a searcher
// (tests construct them directly).
func (ar *arena) grab(n int) []float64 {
	if ar == nil {
		return make([]float64, n)
	}
	if ar.used+n > len(ar.buf) {
		ar.extra += n
		return make([]float64, n)
	}
	s := ar.buf[ar.used : ar.used+n : ar.used+n]
	ar.used += n
	return s
}

// reset recycles the arena for the next cycle, growing the buffer to this
// cycle's peak demand.
func (ar *arena) reset() {
	if need := ar.used + ar.extra; need > len(ar.buf) {
		ar.buf = make([]float64, need)
	}
	ar.used, ar.extra = 0, 0
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}
