//go:build race

package core

// raceEnabled reports whether the race detector is instrumenting this
// test binary. The detector's shadow-memory bookkeeping makes
// testing.AllocsPerRun jittery, so exact-alloc assertions widen their
// tolerance under it.
const raceEnabled = true
