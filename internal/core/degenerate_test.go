package core

// Degenerate-input guards for the sliding scorer, alongside the
// internal/stats degenerate suite: zero-channel selections, zero-length
// windows, and targets shorter than the window must all answer "no
// evidence" (no positions, score 0) instead of panicking — the
// pre-refactor newSlidingScorer panicked via len(ref[0]) on an empty
// selection, and scoreAt divided by k.

import (
	"math"
	"math/rand"
	"testing"

	"rups/internal/trajectory"
)

func TestMatrixIndexZeroChannels(t *testing.T) {
	idx := newMatrixIndex(nil)
	if idx.k != 0 || idx.m != 0 {
		t.Fatalf("zero-channel index has k=%d m=%d", idx.k, idx.m)
	}
	s := newSegScorer(idx, idx, 0, 10, false)
	defer s.release()
	if s.positions() != 0 {
		t.Fatalf("zero-channel scorer has %d positions", s.positions())
	}
	if got := s.scoreAt(0); got != 0 {
		t.Fatalf("zero-channel scoreAt = %v, want 0", got)
	}
	if pos, score := s.bestWindow(); pos != -1 || !math.IsInf(score, -1) {
		t.Fatalf("zero-channel bestWindow = (%d, %v)", pos, score)
	}
}

func TestMatrixIndexZeroColumns(t *testing.T) {
	rows := [][]float64{{}, {}, {}}
	idx := newMatrixIndex(rows)
	if idx.k != 3 || idx.m != 0 {
		t.Fatalf("zero-column index has k=%d m=%d", idx.k, idx.m)
	}
	s := newSegScorer(idx, idx, 0, 8, false)
	defer s.release()
	if s.positions() != 0 {
		t.Fatalf("zero-column scorer has %d positions", s.positions())
	}
	if got := s.scoreAt(0); got != 0 {
		t.Fatalf("zero-column scoreAt = %v, want 0", got)
	}
}

func TestSegScorerZeroWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	idx := newMatrixIndex(randRows(rng, 4, 30))
	for _, w := range []int{0, -3} {
		s := newSegScorer(idx, idx, 0, w, false)
		if s.positions() != 0 {
			t.Fatalf("w=%d scorer has %d positions", w, s.positions())
		}
		if got := s.scoreAt(0); got != 0 {
			t.Fatalf("w=%d scoreAt = %v, want 0", w, got)
		}
		s.release()
	}
}

func TestSegScorerTargetShorterThanWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	src := newMatrixIndex(randRows(rng, 4, 50))
	tgt := newMatrixIndex(randRows(rng, 4, 10))
	s := newSegScorer(src, tgt, 0, 25, false)
	defer s.release()
	if s.positions() != 0 {
		t.Fatalf("m<w scorer has %d positions", s.positions())
	}
	if pos, score := s.bestWindowIn(0, 100); pos != -1 || !math.IsInf(score, -1) {
		t.Fatalf("m<w bestWindowIn = (%d, %v)", pos, score)
	}
}

func TestSegScorerSegmentOutOfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	idx := newMatrixIndex(randRows(rng, 4, 30))
	for _, c := range []struct{ lo, w int }{{-1, 10}, {25, 10}, {0, 31}} {
		s := newSegScorer(idx, idx, c.lo, c.w, false)
		if s.positions() != 0 {
			t.Fatalf("lo=%d w=%d scorer has %d positions", c.lo, c.w, s.positions())
		}
		s.release()
	}
}

// TestFindSYNEmptyTrajectories: resolution on zero-length trajectories is
// a clean "no SYN", not a panic.
func TestFindSYNEmptyTrajectories(t *testing.T) {
	empty := trajectory.NewAware(trajectory.Geo{})
	if _, ok := FindSYN(empty, empty, DefaultParams()); ok {
		t.Fatal("found SYN on empty trajectories")
	}
	if _, ok := Resolve(empty, awareOfLen(200), DefaultParams()); ok {
		t.Fatal("resolved against an empty trajectory")
	}
}
