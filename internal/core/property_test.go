package core

import (
	"math"
	"math/rand"
	"testing"

	"rups/internal/stats"
	"rups/internal/trajectory"
)

// plantedPair builds two synthetic trajectories sharing a common stretch:
// B is A shifted by `gap` indices plus noise — a pure-algorithm fixture
// independent of the radio simulation.
func plantedPair(seed int64, length, gap int, noiseSigma float64) (*trajectory.Aware, *trajectory.Aware) {
	rng := rand.New(rand.NewSource(seed))
	// Shared "world" signal per channel over an extended road.
	world := make([][]float64, 64)
	for ch := range world {
		world[ch] = make([]float64, length+gap)
		v := -80 + 20*rng.NormFloat64()
		for i := range world[ch] {
			// A bounded random walk gives spatial structure at several
			// scales.
			v += 2 * rng.NormFloat64()
			if v < -110 {
				v = -110
			}
			if v > -45 {
				v = -45
			}
			world[ch][i] = v
		}
	}
	build := func(offset int, t0 float64, rng *rand.Rand) *trajectory.Aware {
		g := trajectory.Geo{Marks: make([]trajectory.GeoMark, length)}
		for i := range g.Marks {
			g.Marks[i] = trajectory.GeoMark{T: t0 + float64(i)}
		}
		a := trajectory.NewAwareWidth(g, 64)
		for ch := 0; ch < 64; ch++ {
			for i := 0; i < length; i++ {
				a.SetPower(ch, i, world[ch][offset+i]+noiseSigma*rng.NormFloat64())
			}
		}
		return a
	}
	a := build(0, 1000, rand.New(rand.NewSource(seed+1)))
	b := build(gap, 998, rand.New(rand.NewSource(seed+2)))
	return a, b
}

// TestFindSYNPropertyRecoversGap: over random planted pairs, the resolved
// relative distance recovers the planted gap.
func TestFindSYNPropertyRecoversGap(t *testing.T) {
	p := DefaultParams()
	p.WindowChannels = 40
	for trial := int64(0); trial < 15; trial++ {
		gap := int(5 + trial*7%80)
		a, b := plantedPair(trial, 300, gap, 1.0)
		s, ok := FindSYN(a, b, p)
		if !ok {
			t.Fatalf("trial %d: no SYN for planted gap %d", trial, gap)
		}
		got := s.RelativeDistance(a, b)
		if math.Abs(got-float64(gap)) > 2 {
			t.Errorf("trial %d: recovered %v, want %d", trial, got, gap)
		}
		// SYN indices must lie inside the trajectories.
		if s.IdxA < 0 || s.IdxA >= a.Len() || s.IdxB < 0 || s.IdxB >= b.Len() {
			t.Fatalf("trial %d: SYN indices out of range: %+v", trial, s)
		}
	}
}

// TestFindSYNPropertyAntisymmetric: swapping the roles negates the
// estimate (within SYN quantization).
func TestFindSYNPropertyAntisymmetric(t *testing.T) {
	p := DefaultParams()
	p.WindowChannels = 40
	for trial := int64(20); trial < 30; trial++ {
		a, b := plantedPair(trial, 250, 30, 1.0)
		s1, ok1 := FindSYN(a, b, p)
		s2, ok2 := FindSYN(b, a, p)
		if !ok1 || !ok2 {
			t.Fatalf("trial %d: SYN missing in a direction", trial)
		}
		d1 := s1.RelativeDistance(a, b)
		d2 := s2.RelativeDistance(b, a)
		if math.Abs(d1+d2) > 3 {
			t.Errorf("trial %d: %v vs %v not antisymmetric", trial, d1, d2)
		}
	}
}

// TestFindSYNRespectsLocalityBound: estimates never exceed MaxRelDistM.
func TestFindSYNRespectsLocalityBound(t *testing.T) {
	p := DefaultParams()
	p.WindowChannels = 40
	p.MaxRelDistM = 40
	for trial := int64(40); trial < 50; trial++ {
		a, b := plantedPair(trial, 300, 25, 1.5)
		syns := FindSYNs(a, b, p, p.NumSYN)
		for _, s := range syns {
			if d := math.Abs(s.RelativeDistance(a, b)); d > float64(p.MaxRelDistM)+1 {
				t.Fatalf("trial %d: estimate %v beyond locality bound", trial, d)
			}
		}
	}
}

// TestFindSYNNoiseDegradesGracefully: raising the per-sample noise must not
// produce wrong confident answers — either the SYN is found near the truth
// or nothing passes the threshold.
func TestFindSYNNoiseDegradesGracefully(t *testing.T) {
	p := DefaultParams()
	p.WindowChannels = 40
	for _, sigma := range []float64{0.5, 2, 6, 12} {
		found, wrong := 0, 0
		for trial := int64(60); trial < 70; trial++ {
			a, b := plantedPair(trial, 250, 20, sigma)
			if s, ok := FindSYN(a, b, p); ok {
				found++
				if math.Abs(s.RelativeDistance(a, b)-20) > 5 {
					wrong++
				}
			}
		}
		if wrong > found/4 {
			t.Errorf("sigma %v: %d/%d found SYNs are wrong", sigma, wrong, found)
		}
	}
}

// TestResolveAggregationBounds: the aggregate always lies within the span
// of the per-SYN estimates.
func TestResolveAggregationBounds(t *testing.T) {
	p := DefaultParams()
	p.WindowChannels = 40
	for trial := int64(80); trial < 90; trial++ {
		a, b := plantedPair(trial, 350, 35, 2.0)
		est, ok := Resolve(a, b, p)
		if !ok {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range est.SYNs {
			d := s.RelativeDistance(a, b)
			lo = math.Min(lo, d)
			hi = math.Max(hi, d)
		}
		if est.Distance < lo-1e-9 || est.Distance > hi+1e-9 {
			t.Fatalf("trial %d: aggregate %v outside [%v, %v]", trial, est.Distance, lo, hi)
		}
	}
}

// TestScorerRangeInvariant: every window score stays within Eq. 2's
// range [-2, 2].
func TestScorerRangeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := randRows(rng, 9, 30)
	tgt := randRows(rng, 9, 90)
	idxRef, idxTgt := newMatrixIndex(ref), newMatrixIndex(tgt)
	s := newSegScorer(idxRef, idxTgt, 0, 30, false)
	for j := 0; j < s.positions(); j++ {
		if sc := s.scoreAt(j); sc < -2-1e-9 || sc > 2+1e-9 {
			t.Fatalf("score %v out of range at %d", sc, j)
		}
	}
	s.release()
	// And within [-1, 1] with the column term ablated.
	s = newSegScorer(idxRef, idxTgt, 0, 30, true)
	for j := 0; j < s.positions(); j++ {
		if sc := s.scoreAt(j); sc < -1-1e-9 || sc > 1+1e-9 {
			t.Fatalf("noCol score %v out of range at %d", sc, j)
		}
	}
	s.release()
}

// TestMissingTolerantSearch: a planted pair with missing cells still
// resolves via the slow path.
func TestMissingTolerantSearch(t *testing.T) {
	a, b := plantedPair(99, 250, 15, 1.0)
	rng := rand.New(rand.NewSource(123))
	for ch := 0; ch < a.Width(); ch++ {
		for i := 0; i < a.Len(); i++ {
			if rng.Float64() < 0.25 {
				a.SetPower(ch, i, stats.Missing)
			}
			if rng.Float64() < 0.25 {
				b.SetPower(ch, i, stats.Missing)
			}
		}
	}
	p := DefaultParams()
	p.WindowChannels = 40
	s, ok := FindSYN(a, b, p)
	if !ok {
		t.Fatal("no SYN with 25% missing cells")
	}
	if d := s.RelativeDistance(a, b); math.Abs(d-15) > 3 {
		t.Errorf("missing-tolerant estimate %v, want ~15", d)
	}
}

// TestHeadingGateRejectsOpposing: a planted pair whose headings disagree
// (an oncoming vehicle on the same road) is rejected by the gate and
// accepted without it.
func TestHeadingGateRejectsOpposing(t *testing.T) {
	a, b := plantedPair(111, 250, 20, 1.0)
	// B drives the opposite direction: headings differ by π.
	for i := range b.Geo.Marks {
		b.Geo.Marks[i].Theta = math.Pi
	}
	p := DefaultParams()
	p.WindowChannels = 40
	if _, ok := FindSYN(a, b, p); ok {
		t.Error("heading gate failed to reject an opposing vehicle")
	}
	p.HeadingGateRad = 0 // gate off: the power match alone accepts it
	if _, ok := FindSYN(a, b, p); !ok {
		t.Error("without the gate the power match should still fire")
	}
}

// TestHeadingGateTolerantToNoise: realistic compass noise (±5°) must not
// trip the gate.
func TestHeadingGateTolerantToNoise(t *testing.T) {
	a, b := plantedPair(112, 250, 20, 1.0)
	rng := rand.New(rand.NewSource(5))
	for i := range a.Geo.Marks {
		a.Geo.Marks[i].Theta = 0.09 * rng.NormFloat64()
	}
	for i := range b.Geo.Marks {
		b.Geo.Marks[i].Theta = 0.09 * rng.NormFloat64()
	}
	p := DefaultParams()
	p.WindowChannels = 40
	if _, ok := FindSYN(a, b, p); !ok {
		t.Error("gate tripped on compass noise")
	}
}
