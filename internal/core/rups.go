package core

import (
	"math"

	"rups/internal/geo"
	"rups/internal/stats"
	"rups/internal/trajectory"
)

// audibleFloorDBm is the minimum mean RSSI for a channel to join the
// checking window; minWindowChannels is the floor on window width.
const (
	audibleFloorDBm   = -107.0
	minWindowChannels = 8
)

// Estimate is a resolved relative distance between two vehicles.
type Estimate struct {
	// Distance is the aggregated front-rear distance in metres; positive
	// means the peer (trajectory B) is ahead.
	Distance float64
	// SYNs are the SYN points that contributed.
	SYNs []SYNPoint
	// Score is the best trajectory correlation among the SYN points.
	Score float64
}

// clip returns the trajectory limited to the most recent MaxContextMeters,
// plus the index offset mapping local indices back to the original.
func clip(a *trajectory.Aware, p Params) (*trajectory.Aware, int) {
	if a.Len() > p.MaxContextMeters {
		return a.Tail(p.MaxContextMeters), a.Len() - p.MaxContextMeters
	}
	return a, 0
}

// FindSYN runs the double-sliding check (paper §IV-D) between the most
// recent segments of a and b and returns the best SYN point. ok is false
// when no window position reaches the coherency threshold — the
// trajectories are considered unrelated.
func FindSYN(a, b *trajectory.Aware, p Params) (SYNPoint, bool) {
	p.validate()
	return findSYNSeg(a, b, p, 0)
}

// findSYNSeg is FindSYN with the reference segments ending endOff metres
// before each trajectory's most recent mark — the mechanism behind multiple
// SYN points (§VI-C). The §V-C flexible window applies when the available
// context is shorter than the configured window: the window shrinks (down
// to the floor) and the relaxed threshold applies. Retrying smaller windows
// on failure was evaluated and rejected: at the relaxed threshold, short
// windows admit wrong matches (see the ablations experiment's history).
func findSYNSeg(a, b *trajectory.Aware, p Params, endOff int) (SYNPoint, bool) {
	aCtx, offA := clip(a, p)
	bCtx, offB := clip(b, p)

	avail := aCtx.Len() - endOff
	if m := bCtx.Len() - endOff; m < avail {
		avail = m
	}
	w := p.WindowMeters
	if avail <= w {
		// A window as long as the whole context leaves no room to slide;
		// take two thirds — the remaining third is the largest detectable
		// misalignment.
		w = avail * 2 / 3
	}
	if w < p.MinWindowMeters {
		return SYNPoint{}, false
	}
	return findSYNWindow(aCtx, bCtx, offA, offB, p, endOff, w)
}

// findSYNWindow runs the double-sliding check at one window length.
func findSYNWindow(aCtx, bCtx *trajectory.Aware, offA, offB int, p Params, endOff, w int) (SYNPoint, bool) {
	threshold := p.Coherency
	if w < p.WindowMeters {
		threshold = p.ShortCoherency
	}

	// Checking-window width: the strongest channels, but never channels
	// idling at the noise floor — sparse suburbs may not have
	// WindowChannels audible carriers, and constant rows only dilute the
	// correlation.
	channels := aCtx.TopAudibleChannels(p.WindowChannels, audibleFloorDBm, minWindowChannels)
	rowsA := aCtx.Select(channels)
	rowsB := bCtx.Select(channels)

	// Locality bound (§IV-A): only window placements implying a plausible
	// relative distance are examined. A placement j on the target implies
	// a relative distance of (targetLen − w − j) − endOff metres, so the
	// admissible placements form an interval around the aligned position.
	bounds := func(targetLen int) (lo, hi int) {
		centre := targetLen - w - endOff
		return centre - p.MaxRelDistM, centre + p.MaxRelDistM
	}

	// Direction 1: A's segment slides over B.
	endA := aCtx.Len() - 1 - endOff
	refA := sliceRows(rowsA, endA-w+1, endA+1)
	lo, hi := bounds(bCtx.Len())
	sc1 := newSlidingScorer(refA, rowsB)
	sc1.noCol = p.NoColumnTerm
	posB, scoreAB := sc1.bestWindowIn(lo, hi)

	// Direction 2: B's segment slides over A (skipped in the single-sided
	// ablation).
	posA := -1
	scoreBA := math.Inf(-1)
	endB := bCtx.Len() - 1 - endOff
	if !p.SingleSided {
		refB := sliceRows(rowsB, endB-w+1, endB+1)
		lo, hi = bounds(aCtx.Len())
		sc2 := newSlidingScorer(refB, rowsA)
		sc2.noCol = p.NoColumnTerm
		posA, scoreBA = sc2.bestWindowIn(lo, hi)
	}
	if posB < 0 && posA < 0 {
		return SYNPoint{}, false
	}

	best := SYNPoint{WindowLen: w}
	if scoreAB >= scoreBA {
		best.Score = scoreAB
		best.IdxA = offA + endA
		best.IdxB = offB + posB + w - 1
	} else {
		best.Score = scoreBA
		best.IdxA = offA + posA + w - 1
		best.IdxB = offB + endB
	}
	if best.Score < threshold {
		return SYNPoint{}, false
	}
	if p.HeadingGateRad > 0 {
		ha := aCtx.Geo.Marks[best.IdxA-offA].Theta
		hb := bCtx.Geo.Marks[best.IdxB-offB].Theta
		if d := geo.HeadingDiff(ha, hb); math.Abs(d) > p.HeadingGateRad {
			return SYNPoint{}, false
		}
	}
	return best, true
}

// sliceRows returns each row restricted to [lo, hi).
func sliceRows(rows [][]float64, lo, hi int) [][]float64 {
	out := make([][]float64, len(rows))
	for i := range rows {
		out[i] = rows[i][lo:hi]
	}
	return out
}

// FindSYNs locates up to n SYN points from segments ending at successive
// strides back from the most recent mark (§VI-C).
func FindSYNs(a, b *trajectory.Aware, p Params, n int) []SYNPoint {
	p.validate()
	var out []SYNPoint
	for i := 0; i < n; i++ {
		if s, ok := findSYNSeg(a, b, p, i*p.SegmentStrideMeters); ok {
			out = append(out, s)
		}
	}
	return out
}

// Resolve is the full RUPS pipeline for one query: find up to NumSYN SYN
// points, turn each into a distance estimate, and aggregate them according
// to p.Aggregation. ok is false when no SYN point was found.
func Resolve(a, b *trajectory.Aware, p Params) (Estimate, bool) {
	p.validate()
	syns := FindSYNs(a, b, p, p.NumSYN)
	if len(syns) == 0 {
		return Estimate{}, false
	}
	est := Estimate{SYNs: syns}
	dists := make([]float64, len(syns))
	bestI := 0
	for i, s := range syns {
		dists[i] = s.RelativeDistance(a, b)
		if s.Score > syns[bestI].Score {
			bestI = i
		}
	}
	est.Score = syns[bestI].Score
	switch p.Aggregation {
	case SingleSYN:
		est.Distance = dists[bestI]
	case MeanAgg:
		est.Distance = stats.Mean(dists)
	case SelectiveAgg:
		est.Distance = stats.SelectiveMean(dists)
	default:
		panic("core: unknown aggregation mode")
	}
	return est, true
}
