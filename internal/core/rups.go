package core

import (
	"math"

	"rups/internal/geo"
	"rups/internal/obs"
	"rups/internal/obs/flight"
	"rups/internal/stats"
	"rups/internal/trajectory"
)

// audibleFloorDBm is the minimum mean RSSI for a channel to join the
// checking window; minWindowChannels is the floor on window width.
const (
	audibleFloorDBm   = -107.0
	minWindowChannels = 8
)

// Estimate is a resolved relative distance between two vehicles.
type Estimate struct {
	// Distance is the aggregated front-rear distance in metres; positive
	// means the peer (trajectory B) is ahead.
	Distance float64
	// SYNs are the SYN points that contributed.
	SYNs []SYNPoint
	// Score is the best trajectory correlation among the SYN points.
	Score float64
}

// Parallel runs a set of independent tasks to completion. The argument
// tasks never depend on each other, so any execution order — or genuine
// concurrency — is valid. Sequential is the in-order default used by the
// plain FindSYNs/Resolve entry points; the batch-resolution engine
// substitutes its bounded worker pool. Every task is internally
// deterministic and writes only its own result slot, so results are
// bit-identical under any Parallel implementation.
type Parallel func(tasks ...func())

// Sequential runs the tasks one after another on the calling goroutine.
var Sequential Parallel = func(tasks ...func()) {
	for _, t := range tasks {
		t()
	}
}

// clip returns the trajectory limited to the most recent MaxContextMeters,
// plus the index offset mapping local indices back to the original.
func clip(a *trajectory.Aware, p Params) (*trajectory.Aware, int) {
	if a.Len() > p.MaxContextMeters {
		return a.Tail(p.MaxContextMeters), a.Len() - p.MaxContextMeters
	}
	return a, 0
}

// Searcher owns the shared precomputation for SYN searches between one
// pair of trajectories: the clipped contexts, the checking-window channel
// selection, and one matrixIndex per side. Building it costs the O(k·m)
// preprocessing once; every segment offset and both sliding directions of
// every subsequent search reuse it, instead of rebuilding it 2·NumSYN
// times per query as the layered FindSYN→findSYNWindow path used to.
//
// A Searcher reads the trajectories it was built on but never writes them.
// It must not be shared across goroutines while trajectory appends are in
// flight — resolve on snapshots (trajectory.Aware.Snapshot); the engine
// does this at query admission.
type Searcher struct {
	a, b       *trajectory.Aware
	aCtx, bCtx *trajectory.Aware
	offA, offB int
	p          Params
	idxA, idxB *matrixIndex

	// ar backs the selected rows and index prefix tables; Release returns
	// it to the pool, after which the Searcher must not be used.
	ar *arena
	// tk is the optional warm-start tracker (SetTracker); nil scans cold.
	tk *Tracker

	// Telemetry, resolved once per searcher: tel is nil while the metrics
	// registry is disabled, rec is nil while span tracing is disabled, and
	// every instrument site guards on that nil — the whole disabled-path
	// cost (proven alloc-free by TestSearcherTelemetryDisabledCostsNothing).
	tel   *searchTelemetry
	rec   *obs.Recorder
	trace obs.TraceID
	// parent/scanParent stitch this search into a caller-supplied causal
	// trace (SetTrace): parent hangs the resolve span under the admitting
	// context's span, scanParent hangs direction scans under the resolve
	// span. Both 0 by default — spans then root their own trace as before.
	parent     obs.SpanID
	scanParent obs.SpanID
	// fl, when set (SetFlight), receives warm-start hit/demote events
	// labeled with the pair ids and the batch's sim time.
	fl       *flight.Ring
	flA, flB int32
	flT      float64
}

// NewSearcher prepares the shared per-pair state for resolving relative
// distances between a and b under p.
func NewSearcher(a, b *trajectory.Aware, p Params) *Searcher {
	p.validate()
	s := &Searcher{a: a, b: b, p: p}
	s.tel = searchTel.Get()
	s.rec = obs.ActiveRecorder()
	s.trace = s.rec.NewTrace()
	s.ar = arenaPool.Get().(*arena)
	s.aCtx, s.offA = clip(a, p)
	s.bCtx, s.offB = clip(b, p)
	// Checking-window width: the strongest channels, but never channels
	// idling at the noise floor — sparse suburbs may not have
	// WindowChannels audible carriers, and constant rows only dilute the
	// correlation.
	channels := s.aCtx.TopAudibleChannels(p.WindowChannels, audibleFloorDBm, minWindowChannels)
	s.idxA = newMatrixIndexArena(s.selectRows(s.aCtx, channels), s.ar)
	s.idxB = newMatrixIndexArena(s.selectRows(s.bCtx, channels), s.ar)
	return s
}

// selectRows materializes the selected channel rows into arena memory
// (every cell written by CopyRowInto, satisfying the arena's no-zeroing
// contract).
func (s *Searcher) selectRows(a *trajectory.Aware, channels []int) [][]float64 {
	rows := make([][]float64, len(channels))
	n := a.Len()
	back := s.ar.grab(len(channels) * n)
	for i, ch := range channels {
		row := back[i*n : (i+1)*n : (i+1)*n]
		a.CopyRowInto(ch, row)
		rows[i] = row
	}
	return rows
}

// SetTracker attaches per-pair warm-start state: FindSYNs will pivot each
// segment's direction scans on the tracker's previous-tick SYN offsets and
// refresh them from this search's outcome. Results are identical to the
// cold path's for any tracker state: a warm pivot only changes the order
// the exact branch-and-bound scan evaluates placements in, and a
// cross-direction seed only prunes placements proven unable to win the
// direction combine (see warmSegment) — never a maximum, never a SYN.
func (s *Searcher) SetTracker(tk *Tracker) { s.tk = tk }

// SetTrace stitches this search into an existing causal trace — in the
// convoy pipeline, the cross-vehicle trace begun by the peer's v2v sync
// session (see obs.TraceRef). The zero ref is ignored: the searcher then
// keeps its own root trace, exactly the pre-stitching behavior.
func (s *Searcher) SetTrace(ref obs.TraceRef) {
	if ref.Trace != 0 {
		s.trace = ref.Trace
		s.parent = ref.Parent
	}
}

// SetFlight labels the searcher's flight-recorder events: warm-start
// hits and demotions are emitted to fl as pair (a, b) at sim time now.
// The handle is cached here, once per searcher, per the flight package's
// hot-loop discipline; a nil fl (recorder disabled) costs one nil check.
func (s *Searcher) SetFlight(fl *flight.Ring, a, b int, now float64) {
	s.fl, s.flA, s.flB, s.flT = fl, int32(a), int32(b), now
}

// Release returns the searcher's arena to the pool. The Searcher (and any
// row data reached through it) must not be used afterwards. Releasing is
// optional — an un-Released arena is simply garbage collected — but the
// engine and the package-level entry points always release, which is what
// keeps steady-state resolves allocation-flat.
func (s *Searcher) Release() {
	if s.ar != nil {
		s.ar.reset()
		arenaPool.Put(s.ar)
		s.ar = nil
		s.idxA, s.idxB = nil, nil
	}
}

// segmentPlan is one planned double-sliding check: the window length and
// threshold findSYNSeg derived from the available context at one segment
// offset.
type segmentPlan struct {
	endOff    int
	w         int
	threshold float64
	// Warm start: pivotB/pivotA are the tracker-predicted window
	// placements for the two directions (-1 = cold, pivot on the range
	// midpoint), hintDelta the hint they were derived from. A direction
	// whose pivot is in range runs the exact branch-and-bound scan from
	// that pivot; the other direction scans seeded with the first's score
	// (see warmSegment). Both are exact, so warm plans combine like cold
	// ones.
	warm           bool
	pivotB, pivotA int
	hintDelta      int
	// Direction results: A's segment over B, and B's segment over A.
	posB, posA       int
	scoreAB, scoreBA float64
}

// planSegment derives the window length for the segment ending endOff
// metres before the most recent mark. ok is false when the remaining
// context cannot support even the §V-C minimum window. The §V-C flexible
// window applies when the available context is shorter than the configured
// window: the window shrinks (down to the floor) and the relaxed threshold
// applies. Retrying smaller windows on failure was evaluated and rejected:
// at the relaxed threshold, short windows admit wrong matches (see the
// ablations experiment's history).
func (s *Searcher) planSegment(endOff int) (segmentPlan, bool) {
	avail := s.aCtx.Len() - endOff
	if m := s.bCtx.Len() - endOff; m < avail {
		avail = m
	}
	w := s.p.WindowMeters
	if avail <= w {
		// A window as long as the whole context leaves no room to slide;
		// take two thirds — the remaining third is the largest detectable
		// misalignment.
		w = avail * 2 / 3
	}
	if w < s.p.MinWindowMeters {
		return segmentPlan{}, false
	}
	pl := segmentPlan{endOff: endOff, w: w, threshold: s.p.Coherency, pivotB: -1, pivotA: -1}
	if w < s.p.WindowMeters {
		pl.threshold = s.p.ShortCoherency
	}
	// Freeze the per-window placement statistics for both scan targets now,
	// on the planning goroutine: the direction scans may run concurrently
	// and only read the indexes.
	s.idxB.ensureWindowStats(w)
	if !s.p.SingleSided {
		s.idxA.ensureWindowStats(w)
	}
	return pl, true
}

// bounds returns the admissible window placements on a target of the given
// length (§IV-A locality): a placement j implies a relative distance of
// (targetLen − w − j) − endOff metres, so plausible placements form an
// interval around the aligned position.
func (s *Searcher) bounds(targetLen, w, endOff int) (lo, hi int) {
	centre := targetLen - w - endOff
	return centre - s.p.MaxRelDistM, centre + s.p.MaxRelDistM
}

// warmSegment runs a warm segment's two direction scans in dependency
// order instead of fanning them out independently. A direction whose
// hint-predicted pivot falls inside its admissible range runs the ordinary
// exact branch-and-bound scan pivoted on the hint instead of the range
// midpoint: on a live lock the first placement visited is the true match,
// whose score prunes every other placement on its cheap column term alone,
// so the scan degrades to one channel term plus a column sweep — and when
// the hint is stale the bound simply admits more channel-term evaluations
// until the true maximum is found, never a wrong answer (same maximum for
// any pivot; only evaluation order changes). The other direction — whose
// pivot typically lands outside its range when the two context lengths
// differ — cannot be skipped (the cold oracle computes a real score there
// that can win combine), but it can be scanned seeded with the first
// direction's exact score: placements that provably cannot win combine
// are pruned on their column term alone (bestWindowSeededIn), so a
// direction holding no real alignment costs one column sweep instead of a
// full channel-term scan. Either way every direction result equals the
// cold scan's, so combine — and the resolved estimate — is oracle-exact
// with no fallback wave.
func (s *Searcher) warmSegment(pl *segmentPlan) {
	endA := s.aCtx.Len() - 1 - pl.endOff
	endB := s.bCtx.Len() - 1 - pl.endOff
	scAB := newSegScorer(s.idxA, s.idxB, endA-pl.w+1, pl.w, s.p.NoColumnTerm)
	loB, hiB := s.bounds(s.bCtx.Len(), pl.w, pl.endOff)
	floB, fhiB := clampRange(loB, hiB, scAB.positions())
	abWarm := floB <= fhiB && pl.pivotB >= floB && pl.pivotB <= fhiB

	var scBA *segScorer
	var loA, hiA int
	baWarm := false
	if !s.p.SingleSided {
		scBA = newSegScorer(s.idxB, s.idxA, endB-pl.w+1, pl.w, s.p.NoColumnTerm)
		loA, hiA = s.bounds(s.aCtx.Len(), pl.w, pl.endOff)
		floA, fhiA := clampRange(loA, hiA, scBA.positions())
		baWarm = floA <= fhiA && pl.pivotA >= floA && pl.pivotA <= fhiA
		if baWarm {
			sp := s.rec.StartChild(s.trace, s.scanParent, "scan_ba")
			sp.Arg = int64(pl.endOff)
			pl.posA, pl.scoreBA = scBA.bestWindowInFrom(loA, hiA, pl.pivotA)
			sp.End()
		}
	}

	sp := s.rec.StartChild(s.trace, s.scanParent, "scan_ab")
	sp.Arg = int64(pl.endOff)
	if !abWarm && baWarm {
		// AB wins combine ties, so the seed prunes only placements that
		// cannot even reach the exact BA score.
		pl.posB, pl.scoreAB = scAB.bestWindowSeededIn(loB, hiB, pl.scoreBA, true)
	} else {
		// Warm-pivoted when the pivot is in range; bestWindowInFrom falls
		// back to the midpoint pivot itself otherwise.
		pl.posB, pl.scoreAB = scAB.bestWindowInFrom(loB, hiB, pl.pivotB)
	}
	sp.End()

	if scBA != nil && !baWarm {
		sp := s.rec.StartChild(s.trace, s.scanParent, "scan_ba")
		sp.Arg = int64(pl.endOff)
		if abWarm {
			// BA loses combine ties: placements that can at best tie the AB
			// score are pruned too.
			pl.posA, pl.scoreBA = scBA.bestWindowSeededIn(loA, hiA, pl.scoreAB, false)
		} else {
			pl.posA, pl.scoreBA = scBA.bestWindowInFrom(loA, hiA, pl.pivotA)
		}
		sp.End()
	}

	s.flushScan(scAB)
	scAB.release()
	if scBA != nil {
		s.flushScan(scBA)
		scBA.release()
	}
}

// scanAB runs direction 1 of the double-sliding check: A's reference
// segment slides over B, over the full locality range. Warm segments go
// through warmSegment instead.
func (s *Searcher) scanAB(pl *segmentPlan) {
	sp := s.rec.StartChild(s.trace, s.scanParent, "scan_ab")
	sp.Arg = int64(pl.endOff)
	endA := s.aCtx.Len() - 1 - pl.endOff
	sc := newSegScorer(s.idxA, s.idxB, endA-pl.w+1, pl.w, s.p.NoColumnTerm)
	lo, hi := s.bounds(s.bCtx.Len(), pl.w, pl.endOff)
	pl.posB, pl.scoreAB = sc.bestWindowInFrom(lo, hi, pl.pivotB)
	s.flushScan(sc)
	sc.release()
	sp.End()
}

// clampRange intersects [lo, hi] with the valid placements [0, n-1].
func clampRange(lo, hi, n int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	return lo, hi
}

// flushScan folds one direction scan's placement counts into the metrics
// registry (two atomic adds; skipped entirely while telemetry is off).
func (s *Searcher) flushScan(sc *segScorer) {
	if t := s.tel; t != nil {
		t.windows.Add(uint64(sc.visited))
		t.pruned.Add(uint64(sc.pruned))
	}
}

// scanBA runs direction 2: B's reference segment slides over A (skipped in
// the single-sided ablation).
func (s *Searcher) scanBA(pl *segmentPlan) {
	sp := s.rec.StartChild(s.trace, s.scanParent, "scan_ba")
	sp.Arg = int64(pl.endOff)
	endB := s.bCtx.Len() - 1 - pl.endOff
	sc := newSegScorer(s.idxB, s.idxA, endB-pl.w+1, pl.w, s.p.NoColumnTerm)
	lo, hi := s.bounds(s.aCtx.Len(), pl.w, pl.endOff)
	pl.posA, pl.scoreBA = sc.bestWindowInFrom(lo, hi, pl.pivotA)
	s.flushScan(sc)
	sc.release()
	sp.End()
}

// combine folds the two direction results into the segment's SYN point
// (paper §IV-D: the better-scoring direction wins), applying the coherency
// threshold and the heading gate.
func (s *Searcher) combine(pl *segmentPlan) (SYNPoint, bool) {
	t := s.tel
	if pl.posB < 0 && pl.posA < 0 {
		if t != nil {
			t.rejected.Inc()
		}
		return SYNPoint{}, false
	}
	best := SYNPoint{WindowLen: pl.w}
	endA := s.aCtx.Len() - 1 - pl.endOff
	endB := s.bCtx.Len() - 1 - pl.endOff
	if pl.scoreAB >= pl.scoreBA {
		best.Score = pl.scoreAB
		best.IdxA = s.offA + endA
		best.IdxB = s.offB + pl.posB + pl.w - 1
	} else {
		best.Score = pl.scoreBA
		best.IdxA = s.offA + pl.posA + pl.w - 1
		best.IdxB = s.offB + endB
	}
	if t != nil {
		t.margin.Observe(best.Score - pl.threshold)
	}
	if best.Score < pl.threshold {
		if t != nil {
			t.rejected.Inc()
		}
		return SYNPoint{}, false
	}
	if s.p.HeadingGateRad > 0 {
		ha := s.aCtx.Geo.Marks[best.IdxA-s.offA].Theta
		hb := s.bCtx.Geo.Marks[best.IdxB-s.offB].Theta
		if d := geo.HeadingDiff(ha, hb); math.Abs(d) > s.p.HeadingGateRad {
			if t != nil {
				t.rejected.Inc()
			}
			return SYNPoint{}, false
		}
	}
	if t != nil {
		t.accepted.Inc()
	}
	return best, true
}

// FindSYNSeg runs the double-sliding check for the segment ending endOff
// metres before the most recent mark and returns the best SYN point. ok is
// false when no window position reaches the coherency threshold.
func (s *Searcher) FindSYNSeg(endOff int) (SYNPoint, bool) {
	pl, ok := s.planSegment(endOff)
	if !ok {
		return SYNPoint{}, false
	}
	pl.posA, pl.scoreBA = -1, math.Inf(-1)
	s.scanAB(&pl)
	if !s.p.SingleSided {
		s.scanBA(&pl)
	}
	return s.combine(&pl)
}

// FindSYNs locates up to n SYN points from segments ending at successive
// strides back from the most recent mark (§VI-C), running the 2·n
// independent direction scans through par. Results are combined in segment
// order, so the output is bit-identical for any Parallel implementation.
func (s *Searcher) FindSYNs(n int, par Parallel) []SYNPoint {
	if t := s.tel; t != nil {
		t.searches.Inc()
	}
	plans := make([]*segmentPlan, 0, n)
	tasks := make([]func(), 0, 2*n)
	for i := 0; i < n; i++ {
		pl, ok := s.planSegment(i * s.p.SegmentStrideMeters)
		if !ok {
			// An unplanned ordinal is never scanned or tracked this tick, so
			// its hint would survive unrefreshed for as long as the segment
			// stays unplannable — drop it rather than let it go stale.
			if s.tk != nil {
				s.tk.forget(i)
			}
			plans = append(plans, nil)
			continue
		}
		if t := s.tel; t != nil {
			t.segments.Inc()
		}
		pl.posA, pl.scoreBA = -1, math.Inf(-1)
		s.warmPlan(&pl, i)
		p := new(segmentPlan)
		*p = pl
		plans = append(plans, p)
		if p.warm {
			// Warm directions depend on each other (the verified one seeds
			// the other's pruning), so the segment runs as one task.
			tasks = append(tasks, func() { s.warmSegment(p) })
			continue
		}
		tasks = append(tasks, func() { s.scanAB(p) })
		if !s.p.SingleSided {
			tasks = append(tasks, func() { s.scanBA(p) })
		}
	}
	par(tasks...)
	// Warm and cold direction results are equally exact (a warm pivot or
	// seed only reorders/prunes evaluation, never changes a maximum), so
	// every plan combines once, in segment order.
	var out []SYNPoint
	for i, pl := range plans {
		if pl == nil {
			continue
		}
		syn, ok := s.combine(pl)
		s.trackSegment(i, pl, syn, ok)
		if ok {
			out = append(out, syn)
		}
	}
	return out
}

// warmPlan pivots the segment's direction scans on the tracker's hint for
// ordinal seg, when one exists. Each direction anchors one trajectory's
// index at the segment end, so the hinted delta predicts the other side's
// window placement directly; indexes are global marks, stable under the
// appends that happened since the hint was recorded.
func (s *Searcher) warmPlan(pl *segmentPlan, seg int) {
	if s.tk == nil {
		return
	}
	delta, ok := s.tk.hint(seg)
	if !ok {
		return
	}
	endA := s.aCtx.Len() - 1 - pl.endOff
	endB := s.bCtx.Len() - 1 - pl.endOff
	pl.warm = true
	pl.hintDelta = delta
	pl.pivotB = (s.offA + endA + delta) - s.offB - (pl.w - 1)
	pl.pivotA = (s.offB + endB - delta) - s.offA - (pl.w - 1)
}

// trackSegment folds one segment's outcome back into the tracker and the
// warm-start counters: a warm-pivoted segment whose accepted SYN stayed
// within the tracker radius of its hint is a hit (the hint paid off — the
// scan's first visit was at or next to the true match); everything else —
// first contact, post-rejection cold scans, a drifted lock, rejection —
// is a fallback (the scan had to hunt for its maximum).
func (s *Searcher) trackSegment(seg int, pl *segmentPlan, syn SYNPoint, ok bool) {
	if s.tk == nil {
		return
	}
	if s.tel != nil || s.fl != nil {
		drift := 0
		if ok {
			drift = syn.IdxB - syn.IdxA - pl.hintDelta
			if drift < 0 {
				drift = -drift
			}
		}
		hit := pl.warm && ok && drift <= s.tk.radius
		if t := s.tel; t != nil {
			if hit {
				t.warmHits.Inc()
			} else {
				t.warmFallbacks.Inc()
			}
		}
		if s.fl != nil && pl.warm {
			// The flight ring only cares about warm-pivoted segments: a
			// hit means the hint paid off, a demote means the scan had to
			// hunt despite the hint. Cold segments are not events.
			kind := flight.KindWarmHit
			if !hit {
				kind = flight.KindWarmDemote
			}
			s.fl.Emit(flight.Event{T: s.flT, Kind: kind,
				A: s.flA, B: s.flB, V1: int64(pl.hintDelta)})
		}
	}
	s.tk.observe(seg, syn, ok)
}

// Resolve is the full RUPS pipeline for this pair: find up to NumSYN SYN
// points (direction scans fanned out through par), turn each into a
// distance estimate, and aggregate them according to p.Aggregation. ok is
// false when no SYN point was found.
func (s *Searcher) Resolve(par Parallel) (Estimate, bool) {
	rsp := s.rec.StartChild(s.trace, s.parent, "resolve")
	defer rsp.End()
	// Direction scans fan out under the resolve span, which itself hangs
	// under any stitched-in cross-vehicle parent (SetTrace).
	s.scanParent = rsp.ID()
	syns := s.FindSYNs(s.p.NumSYN, par)
	if len(syns) == 0 {
		return Estimate{}, false
	}
	asp := s.rec.StartChild(s.trace, rsp.ID(), "aggregate")
	asp.Arg = int64(len(syns))
	defer asp.End()
	est := Estimate{SYNs: syns}
	dists := make([]float64, len(syns))
	bestI := 0
	for i, syn := range syns {
		dists[i] = syn.RelativeDistance(s.a, s.b)
		if syn.Score > syns[bestI].Score {
			bestI = i
		}
	}
	est.Score = syns[bestI].Score
	switch s.p.Aggregation {
	case SingleSYN:
		est.Distance = dists[bestI]
	case MeanAgg:
		est.Distance = stats.Mean(dists)
	case SelectiveAgg:
		est.Distance = stats.SelectiveMean(dists)
	default:
		panic("core: unknown aggregation mode")
	}
	return est, true
}

// FindSYN runs the double-sliding check (paper §IV-D) between the most
// recent segments of a and b and returns the best SYN point. ok is false
// when no window position reaches the coherency threshold — the
// trajectories are considered unrelated.
func FindSYN(a, b *trajectory.Aware, p Params) (SYNPoint, bool) {
	s := NewSearcher(a, b, p)
	defer s.Release()
	return s.FindSYNSeg(0)
}

// FindSYNs locates up to n SYN points from segments ending at successive
// strides back from the most recent mark (§VI-C).
func FindSYNs(a, b *trajectory.Aware, p Params, n int) []SYNPoint {
	s := NewSearcher(a, b, p)
	defer s.Release()
	return s.FindSYNs(n, Sequential)
}

// Resolve is the full RUPS pipeline for one query: find up to NumSYN SYN
// points, turn each into a distance estimate, and aggregate them according
// to p.Aggregation. ok is false when no SYN point was found. This is the
// sequential oracle path; the batch-resolution engine produces
// bit-identical estimates by running the same Searcher over its pool.
func Resolve(a, b *trajectory.Aware, p Params) (Estimate, bool) {
	s := NewSearcher(a, b, p)
	defer s.Release()
	return s.Resolve(Sequential)
}
