package core

import (
	"math"
	"testing"

	"rups/internal/trajectory"
)

func TestStalenessClassify(t *testing.T) {
	pol := Staleness{StaleAfterSec: 30, ExpireAfterSec: 150}
	for _, tc := range []struct {
		age  float64
		want Freshness
	}{
		{0, FreshContext},
		{30, FreshContext}, // boundary is inclusive-fresh
		{30.01, StaleContext},
		{150, StaleContext},
		{150.01, ExpiredContext},
		{math.Inf(1), ExpiredContext},
	} {
		if got := pol.Classify(tc.age); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.age, got, tc.want)
		}
	}
}

func TestStalenessDisabledIsAlwaysFresh(t *testing.T) {
	var pol Staleness
	if pol.Enabled() {
		t.Fatal("zero policy reports enabled")
	}
	for _, age := range []float64{0, 1e6, math.Inf(1)} {
		if got := pol.Classify(age); got != FreshContext {
			t.Errorf("disabled policy classified age %v as %v", age, got)
		}
	}
}

func TestStalenessSingleTier(t *testing.T) {
	// Only an expiry horizon: nothing is ever merely stale.
	pol := Staleness{ExpireAfterSec: 100}
	if got := pol.Classify(50); got != FreshContext {
		t.Errorf("age 50 under expire-only policy = %v", got)
	}
	if got := pol.Classify(101); got != ExpiredContext {
		t.Errorf("age 101 under expire-only policy = %v", got)
	}
	// Only a stale horizon: nothing ever expires.
	pol = Staleness{StaleAfterSec: 10}
	if got := pol.Classify(1e9); got != StaleContext {
		t.Errorf("age 1e9 under stale-only policy = %v", got)
	}
}

func TestContextAge(t *testing.T) {
	g := trajectory.Geo{Marks: []trajectory.GeoMark{{T: 10}, {T: 20}}}
	a := trajectory.NewAwareWidth(g, 4)
	if got := ContextAge(a, 25); got != 5 {
		t.Errorf("age at t=25 = %v, want 5", got)
	}
	// A clock slightly behind the newest mark clamps to zero, not negative.
	if got := ContextAge(a, 15); got != 0 {
		t.Errorf("age at t=15 = %v, want 0", got)
	}
	empty := trajectory.NewAwareWidth(trajectory.Geo{}, 4)
	if got := ContextAge(empty, 100); !math.IsInf(got, 1) {
		t.Errorf("empty context age = %v, want +Inf", got)
	}
}

func TestDefaultStalenessMatchesPaperScaling(t *testing.T) {
	pol := DefaultStaleness()
	// 25 min ÷ 10 = 150 s expiry.
	if pol.ExpireAfterSec != 150 || pol.StaleAfterSec != 30 {
		t.Errorf("default policy %+v", pol)
	}
	if !pol.Enabled() {
		t.Error("default policy disabled")
	}
}
