package core

import (
	"math"
	"math/rand"
	"testing"

	"rups/internal/stats"
)

func randRows(rng *rand.Rand, k, m int) [][]float64 {
	a := make([][]float64, k)
	for i := range a {
		a[i] = make([]float64, m)
		for j := range a[i] {
			a[i][j] = -90 + 40*rng.Float64()
		}
	}
	return a
}

// scorerOver builds a segment scorer whose reference is the whole ref
// matrix — the shape the pre-refactor slidingScorer tests used.
func scorerOver(ref, tgt [][]float64) *segScorer {
	return newSegScorer(newMatrixIndex(ref), newMatrixIndex(tgt), 0, len(ref[0]), false)
}

// TestScorerMatchesTrajCorr verifies the incremental fast path against the
// reference implementation of Eq. 2 at every window position.
func TestScorerMatchesTrajCorr(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := randRows(rng, 7, 20)
	tgt := randRows(rng, 7, 60)
	s := scorerOver(ref, tgt)
	if !s.dense {
		t.Fatal("expected dense fast path")
	}
	for j := 0; j < s.positions(); j++ {
		want := stats.TrajCorr(ref, sliceRows(tgt, j, j+20))
		got := s.scoreAt(j)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("scoreAt(%d) = %v, want %v", j, got, want)
		}
	}
}

// TestScorerSlowPathMatchesTrajCorr does the same with missing entries
// sprinkled in, exercising the fallback.
func TestScorerSlowPathMatchesTrajCorr(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := randRows(rng, 5, 15)
	tgt := randRows(rng, 5, 40)
	ref[2][3] = stats.Missing
	tgt[4][11] = stats.Missing
	tgt[0][0] = stats.Missing
	s := scorerOver(ref, tgt)
	if s.dense {
		t.Fatal("expected slow path with missing entries")
	}
	for j := 0; j < s.positions(); j++ {
		want := stats.TrajCorr(ref, sliceRows(tgt, j, j+15))
		got := s.scoreAt(j)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("scoreAt(%d) = %v, want %v", j, got, want)
		}
	}
}

// TestScorerSegmentDenseFastPath: a ref segment that is dense inside a
// source matrix with missing entries elsewhere still takes the fast path
// against a dense target, and matches the reference.
func TestScorerSegmentDenseFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	src := randRows(rng, 6, 50)
	tgt := randRows(rng, 6, 80)
	src[3][2] = stats.Missing // outside the [20, 35) segment
	idxS, idxT := newMatrixIndex(src), newMatrixIndex(tgt)
	s := newSegScorer(idxS, idxT, 20, 15, false)
	defer s.release()
	if !s.dense {
		t.Fatal("dense segment of a sparse matrix should use the fast path")
	}
	ref := sliceRows(src, 20, 35)
	for j := 0; j < s.positions(); j++ {
		want := stats.TrajCorr(ref, sliceRows(tgt, j, j+15))
		if got := s.scoreAt(j); math.Abs(got-want) > 1e-9 {
			t.Fatalf("scoreAt(%d) = %v, want %v", j, got, want)
		}
	}
	// And a segment covering the hole falls back.
	s2 := newSegScorer(idxS, idxT, 0, 15, false)
	defer s2.release()
	if s2.dense {
		t.Fatal("segment containing a missing entry must not be dense")
	}
}

// TestScorerFindsPlantedAlignment embeds the reference segment inside a
// noise trajectory and checks bestWindow locates it.
func TestScorerFindsPlantedAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const k, w, m, at = 10, 25, 120, 61
	tgt := randRows(rng, k, m)
	ref := make([][]float64, k)
	for i := range ref {
		ref[i] = make([]float64, w)
		for u := 0; u < w; u++ {
			// The planted copy plus small measurement noise.
			ref[i][u] = tgt[i][at+u] + 0.5*rng.NormFloat64()
		}
	}
	s := scorerOver(ref, tgt)
	pos, score := s.bestWindow()
	if pos != at {
		t.Errorf("bestWindow at %d, want %d (score %v)", pos, at, score)
	}
	if score < 1.5 {
		t.Errorf("planted alignment score = %v, want near 2", score)
	}
}

// TestScorerDenseMatchesSlowShifted is the numerical-stability property
// test for the mean-shifted fast path: across randomized dense
// trajectories — including ones offset to RSSI magnitudes (−100 dBm) with
// nearly-constant rows, where the old raw-moment formula sqy − sy²/n
// catastrophically cancelled — the dense scoreAt must agree with the
// two-pass scoreSlow (stats.Pearson) to 1e-9.
func TestScorerDenseMatchesSlowShifted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		k := 3 + rng.Intn(8)
		w := 10 + rng.Intn(40)
		m := w + 20 + rng.Intn(200)
		offset := 0.0
		sigma := 1.0
		switch trial % 4 {
		case 1:
			offset = -100 // the paper's RSSI regime
		case 2:
			offset, sigma = -100, 0.01 // low-variance rows at −100 dBm
		case 3:
			offset, sigma = -100, 1e-4 // nearly constant rows
		}
		ref := make([][]float64, k)
		tgt := make([][]float64, k)
		for i := 0; i < k; i++ {
			ref[i] = make([]float64, w)
			tgt[i] = make([]float64, m)
			for u := range ref[i] {
				ref[i][u] = offset + sigma*rng.NormFloat64()
			}
			for u := range tgt[i] {
				tgt[i][u] = offset + sigma*rng.NormFloat64()
			}
		}
		s := scorerOver(ref, tgt)
		if !s.dense {
			t.Fatalf("trial %d: expected dense path", trial)
		}
		for j := 0; j < s.positions(); j++ {
			fast := s.scoreAt(j)
			slow := s.scoreSlow(j)
			if math.Abs(fast-slow) > 1e-9 {
				t.Fatalf("trial %d (offset %v, sigma %v): scoreAt(%d) = %.15g, scoreSlow = %.15g, diff %g",
					trial, offset, sigma, j, fast, slow, fast-slow)
			}
		}
		s.release()
	}
}

func TestPearsonFromSumsDegenerate(t *testing.T) {
	// Constant rows have zero variance → 0, matching stats.Pearson.
	if got := pearsonFromSums(5, 10, 20, 7, 9.8, 14); got != 0 {
		t.Errorf("degenerate = %v, want 0", got)
	}
}

func TestDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 85, 100} {
		a := make([]float64, n)
		b := make([]float64, n)
		var want float64
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			want += a[i] * b[i]
		}
		if got := dot(a, b); math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Errorf("dot(len %d) = %v, want %v", n, got, want)
		}
	}
}

// sliceRows returns each row restricted to [lo, hi).
func sliceRows(rows [][]float64, lo, hi int) [][]float64 {
	out := make([][]float64, len(rows))
	for i := range rows {
		out[i] = rows[i][lo:hi]
	}
	return out
}

func TestSYNPointRelativeDistance(t *testing.T) {
	// Build two trivial trajectories of lengths 100 and 80.
	a := awareOfLen(100)
	b := awareOfLen(80)
	// Common location: A's metre 90, B's metre 50. A has travelled 9 m
	// since, B has travelled 29 m since → B is 20 m ahead.
	s := SYNPoint{IdxA: 90, IdxB: 50}
	if got := s.RelativeDistance(a, b); got != 20 {
		t.Errorf("RelativeDistance = %v, want 20", got)
	}
	// Swap roles: negative when the peer is behind.
	s = SYNPoint{IdxA: 99, IdxB: 50}
	if got := s.RelativeDistance(a, b); got != 29 {
		t.Errorf("RelativeDistance = %v, want 29", got)
	}
}
