package core

import (
	"math"
	"math/rand"
	"testing"

	"rups/internal/stats"
)

func randRows(rng *rand.Rand, k, m int) [][]float64 {
	a := make([][]float64, k)
	for i := range a {
		a[i] = make([]float64, m)
		for j := range a[i] {
			a[i][j] = -90 + 40*rng.Float64()
		}
	}
	return a
}

// TestScorerMatchesTrajCorr verifies the incremental fast path against the
// reference implementation of Eq. 2 at every window position.
func TestScorerMatchesTrajCorr(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := randRows(rng, 7, 20)
	tgt := randRows(rng, 7, 60)
	s := newSlidingScorer(ref, tgt)
	if !s.dense {
		t.Fatal("expected dense fast path")
	}
	for j := 0; j < s.positions(); j++ {
		want := stats.TrajCorr(ref, sliceRows(tgt, j, j+20))
		got := s.scoreAt(j)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("scoreAt(%d) = %v, want %v", j, got, want)
		}
	}
}

// TestScorerSlowPathMatchesTrajCorr does the same with missing entries
// sprinkled in, exercising the fallback.
func TestScorerSlowPathMatchesTrajCorr(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := randRows(rng, 5, 15)
	tgt := randRows(rng, 5, 40)
	ref[2][3] = stats.Missing
	tgt[4][11] = stats.Missing
	tgt[0][0] = stats.Missing
	s := newSlidingScorer(ref, tgt)
	if s.dense {
		t.Fatal("expected slow path with missing entries")
	}
	for j := 0; j < s.positions(); j++ {
		want := stats.TrajCorr(ref, sliceRows(tgt, j, j+15))
		got := s.scoreAt(j)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("scoreAt(%d) = %v, want %v", j, got, want)
		}
	}
}

// TestScorerFindsPlantedAlignment embeds the reference segment inside a
// noise trajectory and checks bestWindow locates it.
func TestScorerFindsPlantedAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const k, w, m, at = 10, 25, 120, 61
	tgt := randRows(rng, k, m)
	ref := make([][]float64, k)
	for i := range ref {
		ref[i] = make([]float64, w)
		for u := 0; u < w; u++ {
			// The planted copy plus small measurement noise.
			ref[i][u] = tgt[i][at+u] + 0.5*rng.NormFloat64()
		}
	}
	s := newSlidingScorer(ref, tgt)
	pos, score := s.bestWindow()
	if pos != at {
		t.Errorf("bestWindow at %d, want %d (score %v)", pos, at, score)
	}
	if score < 1.5 {
		t.Errorf("planted alignment score = %v, want near 2", score)
	}
}

func TestPearsonFromSumsDegenerate(t *testing.T) {
	// Constant rows have zero variance → 0, matching stats.Pearson.
	if got := pearsonFromSums(5, 10, 20, 7, 9.8, 14); got != 0 {
		t.Errorf("degenerate = %v, want 0", got)
	}
}

func TestSYNPointRelativeDistance(t *testing.T) {
	// Build two trivial trajectories of lengths 100 and 80.
	a := awareOfLen(100)
	b := awareOfLen(80)
	// Common location: A's metre 90, B's metre 50. A has travelled 9 m
	// since, B has travelled 29 m since → B is 20 m ahead.
	s := SYNPoint{IdxA: 90, IdxB: 50}
	if got := s.RelativeDistance(a, b); got != 20 {
		t.Errorf("RelativeDistance = %v, want 20", got)
	}
	// Swap roles: negative when the peer is behind.
	s = SYNPoint{IdxA: 99, IdxB: 50}
	if got := s.RelativeDistance(a, b); got != 29 {
		t.Errorf("RelativeDistance = %v, want 29", got)
	}
}
