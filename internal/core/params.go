// Package core implements the RUPS algorithm itself (paper §IV): seeking
// SYN points between two GSM-aware trajectories with a double-sliding
// cross-correlation check, and resolving the relative front-rear distance
// from the found SYN points, optionally aggregating several of them
// (§VI-C's simple and selective averages) to survive transient
// perturbations.
package core

import "fmt"

// AggMode selects how multiple SYN-point distance estimates are combined.
type AggMode int

const (
	// SingleSYN uses only the best SYN point (the original RUPS of Fig 10).
	SingleSYN AggMode = iota
	// MeanAgg averages the estimates of all SYN points.
	MeanAgg
	// SelectiveAgg discards the minimum and maximum estimates and averages
	// the rest — the paper's most robust variant.
	SelectiveAgg
)

// String names the aggregation mode for evaluation output.
func (m AggMode) String() string {
	switch m {
	case SingleSYN:
		return "one SYN point"
	case MeanAgg:
		return "simple average"
	case SelectiveAgg:
		return "selective average"
	default:
		return "unknown"
	}
}

// Params are the tuning knobs of the RUPS algorithm, defaulting to the
// paper's implementation values.
type Params struct {
	// WindowMeters is the checking-window length (§VI-B uses 85 m; §V-A
	// speaks of ~100 m).
	WindowMeters int
	// WindowChannels is the checking-window width: the top-k channels by
	// mean RSSI (§VI-B: 45).
	WindowChannels int
	// Coherency is the trajectory-correlation threshold a window position
	// must exceed to count as a SYN point (§VI-B: 1.2; range of the
	// coefficient is [-2, 2]).
	Coherency float64
	// MaxContextMeters bounds the journey context kept and searched
	// (§V-A: 1000 m).
	MaxContextMeters int
	// NumSYN is how many SYN points (from distinct recent segments) feed
	// the aggregation (§VI-C uses five).
	NumSYN int
	// SegmentStrideMeters separates the recent segments used for multiple
	// SYN points.
	SegmentStrideMeters int
	// Aggregation combines the per-SYN estimates.
	Aggregation AggMode
	// MinWindowMeters enables the flexible short-context window of §V-C:
	// when a trajectory is shorter than WindowMeters the window shrinks
	// down to this floor instead of refusing to answer.
	MinWindowMeters int
	// ShortCoherency is the relaxed threshold used when the window had to
	// shrink below WindowMeters (§V-C: "combined with a smaller
	// threshold").
	ShortCoherency float64
	// NoColumnTerm drops the second term of Eq. 2 (the correlation of
	// per-location channel means), scoring windows by the mean per-channel
	// correlation alone. Ablation knob — the paper argues the term is
	// "essential"; see the ablations experiment.
	NoColumnTerm bool
	// SingleSided disables the second sweep of the double-sliding check
	// (only A's recent segment slides over B). Ablation knob.
	SingleSided bool
	// HeadingGateRad, when positive, rejects SYN candidates whose matched
	// marks disagree in heading by more than this angle. The geographical
	// trajectory is exchanged anyway (§IV-E resolves distance with it), so
	// the gate is free: two vehicles at the same spot on the same road
	// travel in (nearly) the same direction.
	HeadingGateRad float64
	// MaxRelDistM bounds the plausible relative distance between the
	// vehicles and hence the window positions the sliding check must
	// examine. The RDF problem is local by definition (§IV-A: "a vehicle
	// only cares about other vehicles in its vicinity", within DSRC range),
	// so alignments implying a larger separation are spurious; rejecting
	// them both hardens the search against chance correlations on sparsely
	// scanned contexts and shrinks its cost.
	MaxRelDistM int
}

// DefaultParams returns the paper's implementation parameters.
func DefaultParams() Params {
	return Params{
		WindowMeters:        85,
		WindowChannels:      45,
		Coherency:           1.2,
		MaxContextMeters:    1000,
		NumSYN:              5,
		SegmentStrideMeters: 20,
		Aggregation:         SelectiveAgg,
		MinWindowMeters:     10,
		ShortCoherency:      1.0,
		MaxRelDistM:         200,
		HeadingGateRad:      0.35, // ~20°
	}
}

// validate panics on nonsensical parameters; these are programming errors,
// not runtime conditions.
func (p Params) validate() {
	if p.WindowMeters <= 1 || p.WindowChannels <= 0 || p.MaxContextMeters <= 0 {
		panic(fmt.Sprintf("core: invalid params %+v", p))
	}
	if p.NumSYN <= 0 || p.SegmentStrideMeters <= 0 {
		panic(fmt.Sprintf("core: invalid SYN params %+v", p))
	}
	if p.MinWindowMeters <= 1 || p.MinWindowMeters > p.WindowMeters {
		panic(fmt.Sprintf("core: invalid window floor %+v", p))
	}
	if p.MaxRelDistM <= 0 {
		panic(fmt.Sprintf("core: invalid MaxRelDistM %+v", p))
	}
}
