package core

import (
	"math"
	"sync"

	"rups/internal/stats"
	"rups/internal/trajectory"
)

// SYNPoint is one alignment between two trajectories: metre IdxA on
// trajectory A and metre IdxB on trajectory B are believed to be the same
// physical location. Score is the trajectory correlation coefficient of the
// matched windows; WindowLen records the (possibly shrunken) window used.
type SYNPoint struct {
	IdxA, IdxB int
	Score      float64
	WindowLen  int
}

// RelativeDistance resolves the front-rear distance implied by the SYN
// point (paper §IV-E): how much farther B has travelled since the common
// location than A has. Positive means B is ahead of A.
func (s SYNPoint) RelativeDistance(a, b *trajectory.Aware) float64 {
	// The metre-index → metre-distance unit change is explicit: mark i sits
	// i metres from trajectory start (see trajectory.MetresFromIndex).
	dA := trajectory.MetresFromIndex(a.Len()-1) - trajectory.MetresFromIndex(s.IdxA)
	dB := trajectory.MetresFromIndex(b.Len()-1) - trajectory.MetresFromIndex(s.IdxB)
	return dB - dA
}

// matrixIndex is the per-matrix half of the sliding trajectory-correlation
// scorer (stats.TrajCorr, Eq. 2): everything that depends only on one
// selected power matrix (k channel rows × m metres). A Searcher builds one
// index per trajectory snapshot and shares it across all NumSYN segment
// offsets and both sliding directions — the O(k·m) preprocessing of the
// paper's §V-A complexity argument is paid once per (pair, snapshot)
// instead of 2·NumSYN times per query.
//
// All dense-path moments are accumulated about a per-row shift (the row's
// mean over the whole matrix). Pearson's r is invariant under a constant
// shift of either vector, but the accumulated sums stay at deviation scale:
// the windowed variance Σy² − (Σy)²/w cannot catastrophically cancel the
// way raw moments do at RSSI magnitudes (~−100 dBm).
type matrixIndex struct {
	rows [][]float64 // k rows × m columns (shares storage with the snapshot)
	k, m int
	// dense reports no missing entries anywhere in rows.
	dense bool
	// missPre[i][j] counts missing entries in rows[i][0:j); built only when
	// the matrix is not dense, so segment density checks stay O(k).
	missPre [][]int32

	// Dense fast path (nil when !dense).
	shift   []float64   // per-row shift: the row mean over all m columns
	shifted [][]float64 // shifted[i][j] = rows[i][j] − shift[i]
	preSum  [][]float64 // preSum[i][j] = Σ shifted[i][0:j)
	preSq   [][]float64 // preSq[i][j]  = Σ shifted[i][0:j)²

	// Column means for Eq. 2's second term (missing-skipping, so valid in
	// both paths), plus their shifted prefix sums for the dense path.
	col        []float64
	colShift   float64
	colShifted []float64
	colPre     []float64
	colPreSq   []float64

	// wins caches per-window-length placement statistics (one entry per
	// distinct w the Searcher planned). Built sequentially at planning
	// time via ensureWindowStats, then read immutably by concurrent
	// direction scans.
	wins []winStats

	// ar is the owning Searcher's bump allocator (nil for directly
	// constructed indexes, which then fall back to plain allocation).
	ar *arena
}

// winStats holds, for one window length, the reciprocal √variance of every
// column-mean window placement — colInvSqrt[j] = 1/√vy(j), or 0 when the
// placement is degenerate (vy ≤ 0, the multiplicative identity of "no
// evidence"). The column term is evaluated for every placement of the
// pruned scan's bound sweep, so it pays to precompute; the per-channel
// reciprocals are formed lazily in chanTerm instead — warm-started and
// well-pruned scans visit far fewer placements than a full k×n table
// would cover.
type winStats struct {
	w          int
	colInvSqrt []float64
}

// ensureWindowStats builds the winStats entry for window length w if the
// dense fast path can use one. It must be called from a single goroutine
// before scoring fans out — the Searcher does so while planning segments;
// scans afterwards only read.
func (idx *matrixIndex) ensureWindowStats(w int) {
	if !idx.dense || idx.k == 0 || w <= 0 || w > idx.m || idx.windowStats(w) != nil {
		return
	}
	n := idx.m - w + 1
	wf := float64(w)
	ws := winStats{w: w, colInvSqrt: idx.ar.grab(n)}
	for j := 0; j < n; j++ {
		sy := idx.colPre[j+w] - idx.colPre[j]
		if vy := idx.colPreSq[j+w] - idx.colPreSq[j] - sy*sy/wf; vy > 0 {
			ws.colInvSqrt[j] = 1 / math.Sqrt(vy)
		} else {
			ws.colInvSqrt[j] = 0 // arena memory arrives unzeroed
		}
	}
	idx.wins = append(idx.wins, ws)
}

// windowStats returns the cached entry for w, or nil.
func (idx *matrixIndex) windowStats(w int) *winStats {
	for i := range idx.wins {
		if idx.wins[i].w == w {
			return &idx.wins[i]
		}
	}
	return nil
}

// newMatrixIndex builds the shared precomputation for one selected power
// matrix. A zero-row or zero-column matrix yields a valid index with no
// window positions rather than a panic.
func newMatrixIndex(rows [][]float64) *matrixIndex {
	return newMatrixIndexArena(rows, nil)
}

// newMatrixIndexArena is newMatrixIndex with its float64 backing arrays
// grabbed from a searcher arena (plain allocation when ar is nil). Arena
// memory is unzeroed, so every cell below is written explicitly — in
// particular the prefix-table [0] sentinels that a range-over-append loop
// would otherwise inherit from a previous cycle.
func newMatrixIndexArena(rows [][]float64, ar *arena) *matrixIndex {
	idx := &matrixIndex{rows: rows, k: len(rows), dense: true, ar: ar}
	if idx.k == 0 {
		idx.col = nil
		return idx
	}
	idx.m = len(rows[0])
	for i := 0; i < idx.k; i++ {
		for _, v := range rows[i] {
			if stats.IsMissing(v) {
				idx.dense = false
			}
		}
	}
	idx.col = columnMeansInto(rows, ar.grab(idx.m))
	if !idx.dense {
		idx.missPre = make([][]int32, idx.k)
		mpBack := make([]int32, idx.k*(idx.m+1)) // one backing array for all rows
		for i := 0; i < idx.k; i++ {
			mp := mpBack[i*(idx.m+1) : (i+1)*(idx.m+1) : (i+1)*(idx.m+1)]
			for j, v := range rows[i] {
				mp[j+1] = mp[j]
				if stats.IsMissing(v) {
					mp[j+1]++
				}
			}
			idx.missPre[i] = mp
		}
		return idx
	}

	idx.shift = ar.grab(idx.k)
	idx.shifted = make([][]float64, idx.k)
	idx.preSum = make([][]float64, idx.k)
	idx.preSq = make([][]float64, idx.k)
	// One backing array per matrix, not per row: k rows of identical
	// length subslice flat buffers, cutting the construction from 3k+4
	// allocations to 7 — and the arena pools those flat buffers across
	// resolves, so a steady-state query allocates only the row headers.
	shBack := ar.grab(idx.k * idx.m)
	psBack := ar.grab(idx.k * (idx.m + 1))
	pqBack := ar.grab(idx.k * (idx.m + 1))
	for i := 0; i < idx.k; i++ {
		var sum float64
		for _, v := range rows[i] {
			sum += v
		}
		c := 0.0
		if idx.m > 0 {
			c = sum / float64(idx.m) //lint:ignore indexunit m is the sample count of the row mean here, not a metre distance
		}
		idx.shift[i] = c
		sh := shBack[i*idx.m : (i+1)*idx.m : (i+1)*idx.m]
		ps := psBack[i*(idx.m+1) : (i+1)*(idx.m+1) : (i+1)*(idx.m+1)]
		pq := pqBack[i*(idx.m+1) : (i+1)*(idx.m+1) : (i+1)*(idx.m+1)]
		ps[0], pq[0] = 0, 0 // arena memory arrives unzeroed
		for j, v := range rows[i] {
			d := v - c
			sh[j] = d
			ps[j+1] = ps[j] + d
			pq[j+1] = pq[j] + d*d
		}
		idx.shifted[i] = sh
		idx.preSum[i] = ps
		idx.preSq[i] = pq
	}

	var colSum float64
	for _, v := range idx.col {
		colSum += v
	}
	if idx.m > 0 {
		idx.colShift = colSum / float64(idx.m) //lint:ignore indexunit m is the sample count of the column-mean shift, not a metre distance
	}
	idx.colShifted = ar.grab(idx.m)
	idx.colPre = ar.grab(idx.m + 1)
	idx.colPreSq = ar.grab(idx.m + 1)
	idx.colPre[0], idx.colPreSq[0] = 0, 0
	for j, v := range idx.col {
		d := v - idx.colShift
		idx.colShifted[j] = d
		idx.colPre[j+1] = idx.colPre[j] + d
		idx.colPreSq[j+1] = idx.colPreSq[j] + d*d
	}
	return idx
}

// segmentDense reports whether rows[i][lo:lo+w) holds no missing entry for
// any row — O(k) via the missing-count prefixes.
func (idx *matrixIndex) segmentDense(lo, w int) bool {
	if idx.dense {
		return true
	}
	for i := 0; i < idx.k; i++ {
		if idx.missPre[i][lo+w]-idx.missPre[i][lo] > 0 {
			return false
		}
	}
	return true
}

// columnMeansInto averages each column over rows into out (len(a[0])
// cells, every one written), skipping missing values.
func columnMeansInto(a [][]float64, out []float64) []float64 {
	m := len(a[0])
	for j := 0; j < m; j++ {
		var sum float64
		var n int
		for i := range a {
			if v := a[i][j]; !stats.IsMissing(v) {
				sum += v
				n++
			}
		}
		if n == 0 {
			out[j] = stats.Missing
		} else {
			out[j] = sum / float64(n)
		}
	}
	return out
}

// segScratch holds the per-segment scratch buffers a segScorer materializes
// (reference deviations and their statistics). Pooled: a platoon-scale
// batch runs 2·NumSYN segment scans per pair, and the engine's workers
// churn through them concurrently.
type segScratch struct {
	devBack []float64   // backing array for dev rows (k·w)
	dev     [][]float64 // row headers into devBack
	colDev  []float64
	devSum  []float64
	devVar  []float64
	invVx   []float64 // 1/√devVar, 0 when the reference row is degenerate
	colR    []float64 // per-placement column correlations for the pruned scan
}

var segPool = sync.Pool{New: func() any { return new(segScratch) }}

// grow readies the scratch for k rows × w columns.
func (s *segScratch) grow(k, w int) {
	if cap(s.devBack) < k*w {
		s.devBack = make([]float64, k*w)
	}
	s.devBack = s.devBack[:k*w]
	if cap(s.dev) < k {
		s.dev = make([][]float64, k)
	}
	s.dev = s.dev[:k]
	for i := 0; i < k; i++ {
		s.dev[i] = s.devBack[i*w : (i+1)*w]
	}
	if cap(s.colDev) < w {
		s.colDev = make([]float64, w)
	}
	s.colDev = s.colDev[:w]
	for _, p := range []*[]float64{&s.devSum, &s.devVar, &s.invVx} {
		if cap(*p) < k {
			*p = make([]float64, k)
		}
		*p = (*p)[:k]
	}
}

// growColR readies the column-correlation buffer for n placements.
func (s *segScratch) growColR(n int) []float64 {
	if cap(s.colR) < n {
		s.colR = make([]float64, n)
	}
	s.colR = s.colR[:n]
	return s.colR
}

// segScorer scores the trajectory correlation between one fixed reference
// segment — src.rows[i][lo:lo+w) — and every same-length window of the
// target matrix, in O(k·w) per position after the shared O(k·m)
// preprocessing held by the two indexes.
type segScorer struct {
	src, tgt *matrixIndex
	lo, w    int
	dense    bool // fast path valid: ref segment and whole target dense
	noCol    bool // ablation: drop Eq. 2's column-mean term

	// Dense path, per reference row: deviations from the row's exact
	// segment mean (two-pass, matching stats.Pearson's accumulation), the
	// (tiny) deviation sum, and the deviation sum of squares.
	scratch *segScratch
	// Column term: deviations of the reference column means.
	refColDevSum, refColVar float64
	colInvVx                float64 // 1/√refColVar, 0 when degenerate

	// ws is the target's precomputed placement statistics for this window
	// length (nil when the Searcher did not plan this w — e.g. directly
	// constructed scorers in tests — in which case scoring falls back to
	// pearsonFromSums with per-position variance differences).
	ws *winStats

	// Scan telemetry, accumulated as plain ints during the placement loops
	// and flushed to the searcher's counters once per direction scan:
	// visited placements had their channel term evaluated, pruned ones were
	// rejected on the column-term bound alone.
	visited, pruned int
}

// newSegScorer prepares a reference segment scorer. Degenerate inputs
// (k == 0, w <= 0, segment out of range) yield a scorer with no positions
// instead of a panic.
func newSegScorer(src, tgt *matrixIndex, lo, w int, noCol bool) *segScorer {
	s := &segScorer{src: src, tgt: tgt, lo: lo, w: w, noCol: noCol}
	if src.k == 0 || tgt.k == 0 || w <= 0 || lo < 0 || lo+w > src.m {
		s.w = 0
		return s
	}
	s.dense = tgt.dense && src.segmentDense(lo, w)
	if !s.dense {
		return s
	}
	s.ws = tgt.windowStats(w)
	sc := segPool.Get().(*segScratch)
	sc.grow(src.k, w)
	s.scratch = sc
	for i := 0; i < src.k; i++ {
		row := src.rows[i][lo : lo+w]
		var sum float64
		for _, v := range row {
			sum += v
		}
		mean := sum / float64(w)
		dev := sc.dev[i]
		var dsum, dvar float64
		for u, v := range row {
			d := v - mean
			dev[u] = d
			dsum += d
			dvar += d * d
		}
		sc.devSum[i] = dsum
		sc.devVar[i] = dvar
		sc.invVx[i] = 0
		if dvar > 0 {
			sc.invVx[i] = 1 / math.Sqrt(dvar)
		}
	}
	if !noCol {
		// Reference column means are a slice of the source's column means
		// (the segment's columns are the source's columns).
		refCol := src.col[lo : lo+w]
		var sum float64
		for _, v := range refCol {
			sum += v
		}
		mean := sum / float64(w)
		var dsum, dvar float64
		for u, v := range refCol {
			d := v - mean
			sc.colDev[u] = d
			dsum += d
			dvar += d * d
		}
		s.refColDevSum = dsum
		s.refColVar = dvar
		if dvar > 0 {
			s.colInvVx = 1 / math.Sqrt(dvar)
		}
	}
	return s
}

// release returns the scratch buffers to the pool. The scorer must not be
// used afterwards.
func (s *segScorer) release() {
	if s.scratch != nil {
		segPool.Put(s.scratch)
		s.scratch = nil
	}
}

// positions returns how many window placements exist on the target.
func (s *segScorer) positions() int {
	if s.w <= 0 || s.tgt.k == 0 {
		return 0
	}
	if n := s.tgt.m - s.w + 1; n > 0 {
		return n
	}
	return 0
}

// dot returns Σ a[u]·b[u]. Unrolled four-wide: this product is the inner
// loop of the whole SYN search (k·w multiplies per window position), and
// the independent accumulators let the hardware overlap the chains. The
// loop bound u < len(a)-3 together with the up-front reslice of b lets the
// compiler drop every bounds check in the hot loop (-d=ssa/check_bce).
func dot(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	u := 0
	for ; u < len(a)-3; u += 4 {
		x, y := a[u:u+4:u+4], b[u:u+4:u+4]
		s0 += x[0] * y[0]
		s1 += x[1] * y[1]
		s2 += x[2] * y[2]
		s3 += x[3] * y[3]
	}
	for ; u < len(a); u++ {
		s0 += a[u] * b[u]
	}
	return (s0 + s1) + (s2 + s3)
}

// scoreAt returns the trajectory correlation of the reference segment
// against the target window starting at column j.
func (s *segScorer) scoreAt(j int) float64 {
	if s.positions() == 0 {
		return 0
	}
	if !s.dense {
		return s.scoreSlow(j)
	}
	if s.noCol {
		return s.chanTerm(j)
	}
	return s.chanTerm(j) + s.colTerm(j)
}

// chanTerm is Eq. 2's first term: the mean per-channel Pearson correlation
// of the reference segment against the target window at j (dense path).
// On the planned path each row costs one dot product, one sqrt and two
// multiplies — the target-window reciprocal √variance is formed lazily
// from the prefix tables, because warm-started and well-pruned scans
// visit far fewer placements than precomputing a k×n table would cover;
// otherwise the full variance difference is formed per position.
func (s *segScorer) chanTerm(j int) float64 {
	wf := float64(s.w)
	sc := s.scratch
	var chanSum float64
	if s.ws != nil {
		for i := 0; i < s.src.k; i++ {
			ps := s.tgt.preSum[i]
			pq := s.tgt.preSq[i]
			sy := ps[j+s.w] - ps[j]
			var iy float64
			if vy := pq[j+s.w] - pq[j] - sy*sy/wf; vy > 0 {
				iy = 1 / math.Sqrt(vy)
			}
			sxy := dot(sc.dev[i], s.tgt.shifted[i][j:j+s.w])
			r := (sxy - sc.devSum[i]*sy/wf) * sc.invVx[i] * iy
			if r > 1 {
				r = 1
			} else if r < -1 {
				r = -1
			}
			chanSum += r
		}
		return chanSum / float64(s.src.k)
	}
	for i := 0; i < s.src.k; i++ {
		ps := s.tgt.preSum[i]
		pq := s.tgt.preSq[i]
		sy := ps[j+s.w] - ps[j]
		sqy := pq[j+s.w] - pq[j]
		sxy := dot(sc.dev[i], s.tgt.shifted[i][j:j+s.w])
		chanSum += pearsonFromSums(wf, sc.devSum[i], sc.devVar[i], sy, sqy, sxy)
	}
	return chanSum / float64(s.src.k)
}

// colTerm is Eq. 2's second term: the correlation of the column means
// (dense path).
func (s *segScorer) colTerm(j int) float64 {
	wf := float64(s.w)
	sy := s.tgt.colPre[j+s.w] - s.tgt.colPre[j]
	sxy := dot(s.scratch.colDev[:s.w], s.tgt.colShifted[j:j+s.w])
	if ws := s.ws; ws != nil {
		r := (sxy - s.refColDevSum*sy/wf) * s.colInvVx * ws.colInvSqrt[j]
		if r > 1 {
			return 1
		}
		if r < -1 {
			return -1
		}
		return r
	}
	sqy := s.tgt.colPreSq[j+s.w] - s.tgt.colPreSq[j]
	return pearsonFromSums(wf, s.refColDevSum, s.refColVar, sy, sqy, sxy)
}

// scoreSlow is the missing-tolerant fallback. Pearson documents a 0 return
// for degenerate windows, but a NaN slipping through here would poison the
// best-window scan (NaN compares false with every score), so each term is
// guarded before it joins the sum.
func (s *segScorer) scoreSlow(j int) float64 {
	var chanSum float64
	for i := 0; i < s.src.k; i++ {
		r := stats.Pearson(s.src.rows[i][s.lo:s.lo+s.w], s.tgt.rows[i][j:j+s.w])
		if math.IsNaN(r) {
			continue
		}
		chanSum += r
	}
	chanSum /= float64(s.src.k)
	if s.noCol {
		return chanSum
	}
	colR := stats.Pearson(s.src.col[s.lo:s.lo+s.w], s.tgt.col[j:j+s.w])
	if math.IsNaN(colR) {
		colR = 0
	}
	return chanSum + colR
}

// pearsonFromSums computes Pearson's r from moment sums, matching
// stats.Pearson's conventions (0 for degenerate inputs, clamped to [-1,1]).
//
// Numerical contract: callers accumulate the sums about a per-vector shift
// (the fast path shifts x by the exact segment mean and y by the target
// row's matrix-wide mean), so sx, sqx, sy, sqy arrive at deviation scale
// and the variance differences below cannot catastrophically cancel. With
// raw −100 dBm moments the old sqy − sy²/n form lost up to eight digits on
// low-variance rows and could diverge from the two-pass stats.Pearson.
// Pearson's r is invariant under constant shifts, so the formula is
// unchanged — only its inputs are pre-centred.
func pearsonFromSums(n, sx, sqx, sy, sqy, sxy float64) float64 {
	vx := sqx - sx*sx/n
	vy := sqy - sy*sy/n
	if vx <= 0 || vy <= 0 {
		return 0
	}
	r := (sxy - sx*sy/n) / math.Sqrt(vx*vy)
	if r > 1 {
		return 1
	}
	if r < -1 {
		return -1
	}
	return r
}

// bestWindowIn scans the window placements j ∈ [lo, hi] (clamped to the
// valid range) and returns the best-scoring position and score. A
// position of -1 with score -Inf means the range was empty.
func (s *segScorer) bestWindowIn(lo, hi int) (pos int, score float64) {
	return s.bestWindowInFrom(lo, hi, -1)
}

// bestWindowInFrom is bestWindowIn with an explicit scan pivot: the pruned
// scan starts at pivot and expands outward, so a warm-start hint placing
// the pivot on the true match establishes a strong incumbent immediately
// and the column-term bound prunes the rest of the range. A pivot outside
// [lo, hi] (including the cold sentinel -1) falls back to the range
// midpoint. The pivot only reorders evaluation — the returned maximum is
// identical for every pivot, which is what makes warm-started results
// exactly equal to the cold oracle's.
func (s *segScorer) bestWindowInFrom(lo, hi, pivot int) (pos int, score float64) {
	if lo < 0 {
		lo = 0
	}
	if hi > s.positions()-1 {
		hi = s.positions() - 1
	}
	if hi < lo {
		return -1, math.Inf(-1)
	}
	if s.dense && !s.noCol && s.ws != nil {
		if pivot < lo || pivot > hi {
			pivot = lo + (hi-lo)/2
		}
		return s.bestWindowPrunedFrom(lo, hi, pivot)
	}
	best := math.Inf(-1)
	bestJ := -1
	s.visited += hi - lo + 1
	for j := lo; j <= hi; j++ {
		if sc := s.scoreAt(j); sc > best {
			best = sc
			bestJ = j
		}
	}
	return bestJ, best
}

// bestWindowPrunedFrom is the dense-path scan with a branch-and-bound
// prune: Eq. 2's per-channel mean term is a mean of clamped correlations,
// so it never exceeds 1, and a placement can only beat the incumbent when
// its (cheap, single-dot) column term satisfies colR + 1 > best. Column
// terms are evaluated first for the whole range; placements are then
// visited pivot-outward. A cold scan pivots on the range midpoint (the
// aligned position, where the locality bound expects the match); a
// warm-started scan pivots on the tracker's predicted placement. Either
// way a strong incumbent appears early and prunes most of the k·w channel
// work elsewhere. Same maximum as the plain scan; only evaluation order
// differs.
func (s *segScorer) bestWindowPrunedFrom(lo, hi, pivot int) (pos int, score float64) {
	colR := s.scratch.growColR(hi - lo + 1)
	for j := lo; j <= hi; j++ {
		colR[j-lo] = s.colTerm(j)
	}
	best := math.Inf(-1)
	bestJ := -1
	visit := func(j int) {
		cr := colR[j-lo]
		if cr+1 <= best {
			s.pruned++
			return
		}
		s.visited++
		if sc := s.chanTerm(j) + cr; sc > best {
			best = sc
			bestJ = j
		}
	}
	visit(pivot)
	for d := 1; pivot+d <= hi || pivot-d >= lo; d++ {
		if pivot+d <= hi {
			visit(pivot + d)
		}
		if pivot-d >= lo {
			visit(pivot - d)
		}
	}
	return bestJ, best
}

// bestWindow scans every window placement.
func (s *segScorer) bestWindow() (pos int, score float64) {
	return s.bestWindowIn(0, s.positions()-1)
}

// canBound reports whether the dense pruned path — and with it the
// column-term bound bestWindowSeededIn relies on — is available for this
// scorer.
func (s *segScorer) canBound() bool {
	return s.dense && !s.noCol && s.ws != nil && s.positions() > 0
}

// bestWindowSeededIn scans [lo, hi] like bestWindowIn but prunes against a
// cross-direction seed: the other direction's exact score, which this
// direction must beat for combine to pick it. Placements whose column-term
// bound colR + 1 cannot reach the seed are skipped without the k·w channel
// dot products, so a direction holding no real alignment costs one column
// sweep. tiesWin states combine's tie rule for this direction (AB wins
// exact score ties, BA loses them): a ties-win direction keeps placements
// that can merely *equal* the seed, a ties-lose direction prunes them too.
//
// The returned best is exact whenever it would win combine against the
// seed — a winning placement j has colR(j) + 1 ≥ score(j) ≥ (or >) seed and
// is never pruned. Otherwise the result may undercount, but every skipped
// placement provably loses combine to the seeding direction, so combine's
// outcome equals the cold full scan's either way.
func (s *segScorer) bestWindowSeededIn(lo, hi int, seed float64, tiesWin bool) (pos int, score float64) {
	lo, hi = clampRange(lo, hi, s.positions())
	if hi < lo {
		return -1, math.Inf(-1)
	}
	if !s.canBound() {
		return s.bestWindowInFrom(lo, hi, -1)
	}
	colR := s.scratch.growColR(hi - lo + 1)
	for j := lo; j <= hi; j++ {
		colR[j-lo] = s.colTerm(j)
	}
	best := math.Inf(-1)
	bestJ := -1
	for j := lo; j <= hi; j++ {
		cr := colR[j-lo]
		bound := cr + 1
		//lint:ignore floatcmp combine's tie rule is exact score equality (clamped correlations tie at exactly 2); an epsilon would change which direction wins
		if bound <= best || bound < seed || (!tiesWin && bound == seed) {
			s.pruned++
			continue
		}
		s.visited++
		if sc := s.chanTerm(j) + cr; sc > best {
			best = sc
			bestJ = j
		}
	}
	return bestJ, best
}
