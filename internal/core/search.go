package core

import (
	"math"

	"rups/internal/stats"
	"rups/internal/trajectory"
)

// SYNPoint is one alignment between two trajectories: metre IdxA on
// trajectory A and metre IdxB on trajectory B are believed to be the same
// physical location. Score is the trajectory correlation coefficient of the
// matched windows; WindowLen records the (possibly shrunken) window used.
type SYNPoint struct {
	IdxA, IdxB int
	Score      float64
	WindowLen  int
}

// RelativeDistance resolves the front-rear distance implied by the SYN
// point (paper §IV-E): how much farther B has travelled since the common
// location than A has. Positive means B is ahead of A.
func (s SYNPoint) RelativeDistance(a, b *trajectory.Aware) float64 {
	// The metre-index → metre-distance unit change is explicit: mark i sits
	// i metres from trajectory start (see trajectory.MetresFromIndex).
	dA := trajectory.MetresFromIndex(a.Len()-1) - trajectory.MetresFromIndex(s.IdxA)
	dB := trajectory.MetresFromIndex(b.Len()-1) - trajectory.MetresFromIndex(s.IdxB)
	return dB - dA
}

// slidingScorer scores the trajectory correlation (stats.TrajCorr, Eq. 2)
// between a fixed reference segment and every same-length window of a
// target trajectory, in O(w) per position after O(k·m) preprocessing —
// the O(m·w·k) total the paper quotes (§V-A).
type slidingScorer struct {
	ref   [][]float64 // k rows × w columns, the fixed segment
	tgt   [][]float64 // k rows × m columns
	w, k  int
	m     int
	dense bool // no missing entries anywhere: fast path is valid
	noCol bool // ablation: drop Eq. 2's column-mean term

	// Reference row statistics.
	refSum, refSq []float64
	// Target prefix sums per row: pre[i][j] = Σ tgt[i][0..j).
	preSum, preSq [][]float64
	// Column means for Eq. 2's second term.
	refCol []float64
	tgtCol []float64
	// Prefix sums of tgtCol.
	colSum, colSq []float64
	refColSum     float64
	refColSq      float64
}

func newSlidingScorer(ref, tgt [][]float64) *slidingScorer {
	s := &slidingScorer{
		ref: ref, tgt: tgt,
		k: len(ref), w: len(ref[0]), m: len(tgt[0]),
		dense: true,
	}
	for i := 0; i < s.k; i++ {
		for _, v := range ref[i] {
			if stats.IsMissing(v) {
				s.dense = false
			}
		}
		for _, v := range tgt[i] {
			if stats.IsMissing(v) {
				s.dense = false
			}
		}
	}
	s.refCol = columnMeansDense(ref)
	s.tgtCol = columnMeansDense(tgt)
	if !s.dense {
		return s
	}
	s.refSum = make([]float64, s.k)
	s.refSq = make([]float64, s.k)
	s.preSum = make([][]float64, s.k)
	s.preSq = make([][]float64, s.k)
	for i := 0; i < s.k; i++ {
		for _, v := range ref[i] {
			s.refSum[i] += v
			s.refSq[i] += v * v
		}
		ps := make([]float64, s.m+1)
		pq := make([]float64, s.m+1)
		for j, v := range tgt[i] {
			ps[j+1] = ps[j] + v
			pq[j+1] = pq[j] + v*v
		}
		s.preSum[i] = ps
		s.preSq[i] = pq
	}
	s.colSum = make([]float64, s.m+1)
	s.colSq = make([]float64, s.m+1)
	for j, v := range s.tgtCol {
		s.colSum[j+1] = s.colSum[j] + v
		s.colSq[j+1] = s.colSq[j] + v*v
	}
	for _, v := range s.refCol {
		s.refColSum += v
		s.refColSq += v * v
	}
	return s
}

// columnMeansDense averages each column over rows, skipping missing values.
func columnMeansDense(a [][]float64) []float64 {
	m := len(a[0])
	out := make([]float64, m)
	for j := 0; j < m; j++ {
		var sum float64
		var n int
		for i := range a {
			if v := a[i][j]; !stats.IsMissing(v) {
				sum += v
				n++
			}
		}
		if n == 0 {
			out[j] = stats.Missing
		} else {
			out[j] = sum / float64(n)
		}
	}
	return out
}

// positions returns how many window placements exist on the target.
func (s *slidingScorer) positions() int { return s.m - s.w + 1 }

// scoreAt returns the trajectory correlation of the reference segment
// against the target window starting at column j.
func (s *slidingScorer) scoreAt(j int) float64 {
	if !s.dense {
		return s.scoreSlow(j)
	}
	wf := float64(s.w)
	var chanSum float64
	for i := 0; i < s.k; i++ {
		sy := s.preSum[i][j+s.w] - s.preSum[i][j]
		sqy := s.preSq[i][j+s.w] - s.preSq[i][j]
		var sxy float64
		refRow := s.ref[i]
		tgtRow := s.tgt[i][j : j+s.w]
		for u := 0; u < s.w; u++ {
			sxy += refRow[u] * tgtRow[u]
		}
		chanSum += pearsonFromSums(wf, s.refSum[i], s.refSq[i], sy, sqy, sxy)
	}
	if s.noCol {
		return chanSum / float64(s.k)
	}
	// Second term: correlation of the column means.
	sy := s.colSum[j+s.w] - s.colSum[j]
	sqy := s.colSq[j+s.w] - s.colSq[j]
	var sxy float64
	tgtCol := s.tgtCol[j : j+s.w]
	for u := 0; u < s.w; u++ {
		sxy += s.refCol[u] * tgtCol[u]
	}
	return chanSum/float64(s.k) +
		pearsonFromSums(wf, s.refColSum, s.refColSq, sy, sqy, sxy)
}

// scoreSlow is the missing-tolerant fallback. Pearson documents a 0 return
// for degenerate windows, but a NaN slipping through here would poison the
// best-window scan (NaN compares false with every score), so each term is
// guarded before it joins the sum.
func (s *slidingScorer) scoreSlow(j int) float64 {
	var chanSum float64
	for i := 0; i < s.k; i++ {
		r := stats.Pearson(s.ref[i], s.tgt[i][j:j+s.w])
		if math.IsNaN(r) {
			continue
		}
		chanSum += r
	}
	if s.noCol {
		return chanSum / float64(s.k)
	}
	colR := stats.Pearson(s.refCol, s.tgtCol[j:j+s.w])
	if math.IsNaN(colR) {
		colR = 0
	}
	return chanSum/float64(s.k) + colR
}

// pearsonFromSums computes Pearson's r from moment sums, matching
// stats.Pearson's conventions (0 for degenerate inputs, clamped to [-1,1]).
func pearsonFromSums(n, sx, sqx, sy, sqy, sxy float64) float64 {
	vx := sqx - sx*sx/n
	vy := sqy - sy*sy/n
	if vx <= 0 || vy <= 0 {
		return 0
	}
	r := (sxy - sx*sy/n) / math.Sqrt(vx*vy)
	if r > 1 {
		return 1
	}
	if r < -1 {
		return -1
	}
	return r
}

// bestWindowIn scans the window placements j ∈ [lo, hi] (clamped to the
// valid range) and returns the best-scoring position and score. A
// position of -1 with score -Inf means the range was empty.
func (s *slidingScorer) bestWindowIn(lo, hi int) (pos int, score float64) {
	if lo < 0 {
		lo = 0
	}
	if hi > s.positions()-1 {
		hi = s.positions() - 1
	}
	best := math.Inf(-1)
	bestJ := -1
	for j := lo; j <= hi; j++ {
		if sc := s.scoreAt(j); sc > best {
			best = sc
			bestJ = j
		}
	}
	return bestJ, best
}

// bestWindow scans every window placement.
func (s *slidingScorer) bestWindow() (pos int, score float64) {
	return s.bestWindowIn(0, s.positions()-1)
}
