package core

import "rups/internal/obs"

// searchTelemetry is the searcher's metric roster (see
// docs/OBSERVABILITY.md). Handles are fetched per Searcher through the
// obs.View, so a disabled registry costs one nil check per scan, and the
// scan loops themselves only bump plain ints that are flushed here in one
// atomic add per direction.
type searchTelemetry struct {
	searches *obs.Counter
	segments *obs.Counter
	windows  *obs.Counter
	pruned   *obs.Counter
	accepted *obs.Counter
	rejected *obs.Counter
	margin   *obs.Histogram

	// Warm-start accounting (tracked searches only — see core.Tracker).
	warmHits      *obs.Counter
	warmFallbacks *obs.Counter
}

var searchTel = obs.NewView(func(r *obs.Registry) *searchTelemetry {
	return &searchTelemetry{
		searches: r.Counter("rups_searcher_searches_total",
			"multi-SYN searches run (one per FindSYNs call)"),
		segments: r.Counter("rups_searcher_segments_total",
			"segment offsets planned for double-sliding checks"),
		windows: r.Counter("rups_searcher_windows_scanned_total",
			"window placements fully scored (channel term evaluated)"),
		pruned: r.Counter("rups_searcher_windows_pruned_total",
			"window placements skipped by the branch-and-bound column-term bound"),
		accepted: r.Counter("rups_searcher_syn_accepted_total",
			"segment checks whose best window passed the coherency threshold and heading gate"),
		rejected: r.Counter("rups_searcher_syn_rejected_total",
			"segment checks rejected (no candidate, below threshold, or heading gate)"),
		// Margins are score − threshold: fractions of the [-2, 2] coherency
		// scale, so 2^-8 ≈ 0.004 up to 2^2 = 4 covers them; sub-threshold
		// candidates land in the underflow bucket.
		margin: r.Histogram("rups_searcher_coherency_margin",
			"best-window score minus the segment's coherency threshold", -8, 2),
		warmHits: r.Counter("rups_core_warmstart_hits_total",
			"tracked segments whose accepted SYN stayed within the tracker radius of its warm hint"),
		warmFallbacks: r.Counter("rups_core_warmstart_fallbacks_total",
			"tracked segments scanned without a usable hint (first contact, demotion, drift, or rejection)"),
	}
})
