package core

import (
	"testing"

	"rups/internal/obs"
)

// TestSearcherTelemetryDisabledCostsNothing: with the registry disabled, a
// full search allocates exactly what the uninstrumented searcher did — an
// enable/disable cycle in between must not leave any residue (cached
// handles are keyed on the registry pointer and go nil again). The timing
// side of the ≤2% budget is tracked by BenchmarkSearcherInstrumented in
// BENCH_4.json.
func TestSearcherTelemetryDisabledCostsNothing(t *testing.T) {
	obs.Disable()
	obs.SetRecorder(nil)
	a, b := plantedPair(11, 400, 30, 1.0)
	p := DefaultParams()
	search := func() {
		if syns := NewSearcher(a, b, p).FindSYNs(p.NumSYN, Sequential); len(syns) == 0 {
			t.Fatal("no SYNs on overlapping synthetic pair")
		}
	}

	// Warm the path first: under the race detector the very first searches
	// pay one-time lazy instrumentation allocations that would otherwise
	// inflate the "before" measurement only. The 30-run average then
	// dilutes whatever one-time costs remain.
	testing.AllocsPerRun(10, search)

	before := testing.AllocsPerRun(30, search)

	// Exercise the enabled path, then disable again.
	obs.Enable(obs.NewRegistry())
	obs.SetRecorder(obs.NewRecorder(64))
	search()
	obs.Disable()
	obs.SetRecorder(nil)

	after := testing.AllocsPerRun(30, search)
	// The race detector's bookkeeping makes AllocsPerRun jitter by a few
	// counts in either direction — an absolute amount, independent of how
	// much the search itself allocates, so the pad must be absolute too
	// (a 2% relative pad stopped covering it once the scratch-array
	// flattening cut a search to under 100 allocs). A genuine handle leak
	// would show up as hundreds of extra allocs, not single digits.
	tol := 2.0
	if raceEnabled {
		tol = 8
	}
	if diff := after - before; diff > tol || diff < -tol {
		t.Errorf("disabled-telemetry search allocs drifted: %v before, %v after enable/disable cycle",
			before, after)
	}

	// And the counters really were fed while enabled.
	reg := obs.NewRegistry()
	obs.Enable(reg)
	defer func() {
		obs.Disable()
		obs.SetRecorder(nil)
	}()
	search()
	tel := searchTel.Get()
	if tel == nil {
		t.Fatal("view nil while enabled")
	}
	if tel.searches.Value() == 0 || tel.windows.Value() == 0 || tel.margin.Count() == 0 {
		t.Errorf("enabled search left counters empty: searches=%d windows=%d margins=%d",
			tel.searches.Value(), tel.windows.Value(), tel.margin.Count())
	}
}
