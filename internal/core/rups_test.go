package core

import (
	"math"
	"testing"

	"rups/internal/geo"
	"rups/internal/gsm"
	"rups/internal/noise"
	"rups/internal/trajectory"
)

// awareOfLen builds a minimal trajectory with n marks (1 m/s, all power
// missing) for index arithmetic tests.
func awareOfLen(n int) *trajectory.Aware {
	g := trajectory.Geo{Marks: make([]trajectory.GeoMark, n)}
	for i := range g.Marks {
		g.Marks[i] = trajectory.GeoMark{T: float64(i + 1)}
	}
	return trajectory.NewAware(g)
}

// fieldFixture builds one shared urban field for the integration tests.
var sharedField *gsm.Field

func field(t *testing.T) *gsm.Field {
	t.Helper()
	if sharedField == nil {
		area := gsm.Bounds{MinX: 0, MinY: 0, MaxX: 3000, MaxY: 3000}
		towers := gsm.GenerateTowers(41, area, gsm.ConstZone(gsm.Urban))
		sharedField = gsm.NewField(41, towers, gsm.ConstZone(gsm.Urban))
	}
	return sharedField
}

// awareOnRoad samples a dense GSM-aware trajectory along a straight
// eastbound road: metre i is at x = startX + i, traversed at time
// t0 + i/speed, with light measurement noise.
func awareOnRoad(f *gsm.Field, startX, y float64, n int, t0, speed float64, seed uint64) *trajectory.Aware {
	g := trajectory.Geo{Marks: make([]trajectory.GeoMark, n)}
	for i := range g.Marks {
		g.Marks[i] = trajectory.GeoMark{Theta: math.Pi / 2, T: t0 + float64(i+1)/speed}
	}
	a := trajectory.NewAware(g)
	for i := 0; i < n; i++ {
		pos := geo.Vec2{X: startX + float64(i), Y: y}
		tm := g.Marks[i].T
		for ch := 0; ch < gsm.NumChannels; ch++ {
			v := f.Sample(pos, ch, tm) + noise.Gaussian(seed, uint64(ch), uint64(i))
			if v < gsm.NoiseFloorDBm {
				v = gsm.NoiseFloorDBm
			}
			a.SetPower(ch, i, v)
		}
	}
	return a
}

// pairOnRoad builds a rear (A) and front (B) trajectory with the front
// vehicle gap metres ahead, both having recorded n metres of context. The
// front vehicle passed each location earlier in time.
func pairOnRoad(t *testing.T, gap float64, n int) (a, b *trajectory.Aware) {
	f := field(t)
	const speed = 12.0
	const y = 1500.0
	// Rear vehicle occupies [500, 500+n); front occupies [500+gap, ...).
	t0 := 1000.0
	a = awareOnRoad(f, 500, y, n, t0, speed, 7)
	b = awareOnRoad(f, 500+gap, y, n, t0-gap/speed+0.01, speed, 8)
	return a, b
}

func TestFindSYNRecoversAlignment(t *testing.T) {
	const gap = 25.0
	a, b := pairOnRoad(t, gap, 300)
	p := DefaultParams()
	s, ok := FindSYN(a, b, p)
	if !ok {
		t.Fatal("no SYN point found on overlapping trajectories")
	}
	if s.Score < p.Coherency {
		t.Errorf("score %v below threshold", s.Score)
	}
	got := s.RelativeDistance(a, b)
	if math.Abs(got-gap) > 3 {
		t.Errorf("relative distance = %v, want ~%v", got, gap)
	}
}

func TestFindSYNRejectsUnrelated(t *testing.T) {
	f := field(t)
	// Two far-apart parallel roads.
	a := awareOnRoad(f, 500, 800, 200, 1000, 12, 9)
	b := awareOnRoad(f, 500, 2400, 200, 1000, 12, 10)
	if s, ok := FindSYN(a, b, DefaultParams()); ok {
		t.Errorf("found SYN %+v between unrelated roads", s)
	}
}

func TestFindSYNDirectionSymmetry(t *testing.T) {
	// The double-sliding check must find the overlap regardless of which
	// vehicle is the query: swap roles and the distance negates.
	const gap = 30.0
	a, b := pairOnRoad(t, gap, 250)
	p := DefaultParams()
	s1, ok1 := FindSYN(a, b, p)
	s2, ok2 := FindSYN(b, a, p)
	if !ok1 || !ok2 {
		t.Fatal("SYN not found in both directions")
	}
	d1 := s1.RelativeDistance(a, b)
	d2 := s2.RelativeDistance(b, a)
	if math.Abs(d1+d2) > 4 {
		t.Errorf("asymmetric estimates: %v vs %v", d1, d2)
	}
}

func TestFindSYNShortContext(t *testing.T) {
	// §V-C: after a turn only a short context exists; the flexible window
	// still answers (relaxed threshold), though with lower confidence.
	const gap = 10.0
	a, b := pairOnRoad(t, gap, 40)
	p := DefaultParams()
	s, ok := FindSYN(a, b, p)
	if !ok {
		t.Fatal("short-context SYN not found")
	}
	if s.WindowLen >= p.WindowMeters {
		t.Errorf("window did not shrink: %d", s.WindowLen)
	}
	if got := s.RelativeDistance(a, b); math.Abs(got-gap) > 5 {
		t.Errorf("short-context distance = %v, want ~%v", got, gap)
	}
}

func TestFindSYNTooShort(t *testing.T) {
	a, b := pairOnRoad(t, 5, 6)
	if _, ok := FindSYN(a, b, DefaultParams()); ok {
		t.Error("found SYN below the minimum window")
	}
}

func TestFindSYNsMultipleSegments(t *testing.T) {
	const gap = 20.0
	a, b := pairOnRoad(t, gap, 400)
	p := DefaultParams()
	syns := FindSYNs(a, b, p, p.NumSYN)
	if len(syns) < 3 {
		t.Fatalf("only %d SYN points from 5 segments", len(syns))
	}
	for _, s := range syns {
		if d := s.RelativeDistance(a, b); math.Abs(d-gap) > 5 {
			t.Errorf("segment estimate %v far from %v", d, gap)
		}
	}
}

func TestResolveAggregation(t *testing.T) {
	const gap = 35.0
	a, b := pairOnRoad(t, gap, 400)
	for _, mode := range []AggMode{SingleSYN, MeanAgg, SelectiveAgg} {
		p := DefaultParams()
		p.Aggregation = mode
		est, ok := Resolve(a, b, p)
		if !ok {
			t.Fatalf("%v: no estimate", mode)
		}
		if math.Abs(est.Distance-gap) > 4 {
			t.Errorf("%v: distance %v, want ~%v", mode, est.Distance, gap)
		}
		if est.Score < p.Coherency {
			t.Errorf("%v: score %v", mode, est.Score)
		}
		if len(est.SYNs) == 0 {
			t.Errorf("%v: no SYNs recorded", mode)
		}
	}
}

func TestResolveUnrelated(t *testing.T) {
	f := field(t)
	a := awareOnRoad(f, 500, 700, 150, 1000, 12, 11)
	b := awareOnRoad(f, 500, 2500, 150, 1000, 12, 12)
	if _, ok := Resolve(a, b, DefaultParams()); ok {
		t.Error("resolved a distance between unrelated vehicles")
	}
}

func TestSelectiveAggSuppressesOutlierSegment(t *testing.T) {
	// Corrupt the most recent segment of A (a passing truck shadowing the
	// receiver): the single-SYN estimate may be thrown off, while the
	// selective average over 5 segments stays accurate.
	const gap = 25.0
	a, b := pairOnRoad(t, gap, 400)
	for ch := 0; ch < gsm.NumChannels; ch += 2 {
		for i := a.Len() - 30; i < a.Len(); i++ {
			v := a.At(ch, i) - 25 // deep wideband shadowing
			if v < gsm.NoiseFloorDBm {
				v = gsm.NoiseFloorDBm
			}
			a.SetPower(ch, i, v)
		}
	}
	p := DefaultParams()
	p.Aggregation = SelectiveAgg
	est, ok := Resolve(a, b, p)
	if !ok {
		t.Fatal("no estimate under perturbation")
	}
	if math.Abs(est.Distance-gap) > 6 {
		t.Errorf("selective estimate %v, want ~%v", est.Distance, gap)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{},
		{WindowMeters: 10, WindowChannels: 5, MaxContextMeters: 100},
		func() Params { p := DefaultParams(); p.MinWindowMeters = 0; return p }(),
		func() Params { p := DefaultParams(); p.NumSYN = 0; return p }(),
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			p.validate()
		}()
	}
}

func TestAggModeString(t *testing.T) {
	if SingleSYN.String() == "unknown" || MeanAgg.String() == "unknown" ||
		SelectiveAgg.String() == "unknown" || AggMode(9).String() != "unknown" {
		t.Error("AggMode names wrong")
	}
}
