package trace

import (
	"bytes"
	"math"
	"testing"

	"rups/internal/city"
	"rups/internal/core"
	"rups/internal/sim"
)

var sharedRec *Record

func getRecord(t *testing.T) *Record {
	t.Helper()
	if sharedRec == nil {
		sc := sim.DefaultScenario(91, city.FourLaneUrban)
		sc.DistanceM = 700
		sharedRec = FromRun(sim.Execute(sc), "urban-4lane")
	}
	return sharedRec
}

func TestRecordQueryMatchesTruth(t *testing.T) {
	rec := getRecord(t)
	p := core.DefaultParams()
	ok := 0
	for i := 0; i < 12; i++ {
		tm := rec.Follower.T0 + 45 + float64(i)*2.5
		q := rec.Query(tm, p)
		if q.TruthGap <= 0 {
			t.Errorf("truth gap %v at t=%v", q.TruthGap, tm)
		}
		if q.OK {
			ok++
			if q.RDE > 25 {
				t.Errorf("replayed RDE %v implausible", q.RDE)
			}
		}
	}
	if ok < 6 {
		t.Errorf("only %d/12 replayed queries resolved", ok)
	}
}

func TestRoundTripPreservesQueries(t *testing.T) {
	rec := getRecord(t)
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var back Record
	if _, err := back.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if back.Label != rec.Label || back.Seed != rec.Seed {
		t.Error("metadata lost")
	}
	if back.Leader.Aware.Len() != rec.Leader.Aware.Len() {
		t.Fatal("trajectory length changed")
	}
	p := core.DefaultParams()
	for i := 0; i < 6; i++ {
		tm := rec.Follower.T0 + 50 + float64(i)*4
		q1 := rec.Query(tm, p)
		q2 := back.Query(tm, p)
		if q1.OK != q2.OK {
			t.Fatalf("query %d resolution differs across round trip", i)
		}
		if q1.OK && math.Abs(q1.Est.Distance-q2.Est.Distance) > 8 {
			// Wire quantization (1 dB) can flip which SYN segments win and
			// move the aggregate by a few metres; larger shifts indicate
			// corruption.
			t.Fatalf("query %d distance %v vs %v", i, q1.Est.Distance, q2.Est.Distance)
		}
		if math.Abs(q1.TruthGap-q2.TruthGap) > 0.01 {
			t.Fatalf("truth gap changed: %v vs %v", q1.TruthGap, q2.TruthGap)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	var rec Record
	if _, err := rec.ReadFrom(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	if _, err := getRecord(t).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := rec.ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestTruthInterpolation(t *testing.T) {
	rec := getRecord(t)
	v := &rec.Follower
	// Interpolated S is monotone and spans the drive.
	prev := -math.MaxFloat64
	for i := 0; i < 200; i++ {
		tm := v.T0 + float64(i)*0.37
		s, _ := v.truthAt(tm)
		if s < prev-1e-9 {
			t.Fatalf("interpolated S not monotone at %v", tm)
		}
		prev = s
	}
	// Clamped outside the span.
	sLo, _ := v.truthAt(v.T0 - 100)
	if sLo != v.S[0] {
		t.Error("not clamped at start")
	}
	sHi, _ := v.truthAt(v.T0 + 1e6)
	if sHi != v.S[len(v.S)-1] {
		t.Error("not clamped at end")
	}
}
