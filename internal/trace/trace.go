// Package trace is the drive-trace archive format: everything a two-vehicle
// run produced that the evaluation consumes — both GSM-aware trajectories,
// per-mark ground-truth positions, the odometric truth series, and the GPS
// fixes — in one self-contained binary blob. Recording a run once and
// replaying queries against the record is what makes the evaluation
// trace-driven in the paper's sense (§VI-A): the expensive simulation (the
// "field experiment") is separated from the analysis.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"rups/internal/core"
	"rups/internal/geo"
	"rups/internal/sim"
	"rups/internal/trajectory"
)

const (
	magic   = 0x52555054 // "RUPT"
	version = 1
)

// SampleHz is the rate at which truth and GPS series are stored.
const SampleHz = 10.0

// VehicleRecord is one vehicle's archived data.
type VehicleRecord struct {
	Aware       *trajectory.Aware
	MarkTruePos []geo.Vec2
	// Uniform truth series at SampleHz starting at T0.
	T0     float64
	S      []float64 // odometric position
	Pos    []geo.Vec2
	GPSFix []geo.Vec2
	GPSOK  []bool
}

// truthAt linearly interpolates the stored odometric truth.
func (v *VehicleRecord) truthAt(t float64) (s float64, pos geo.Vec2) {
	if len(v.S) == 0 {
		return 0, geo.Vec2{}
	}
	f := (t - v.T0) * SampleHz
	i := int(f)
	if i < 0 {
		return v.S[0], v.Pos[0]
	}
	if i >= len(v.S)-1 {
		return v.S[len(v.S)-1], v.Pos[len(v.Pos)-1]
	}
	frac := f - float64(i)
	return v.S[i] + (v.S[i+1]-v.S[i])*frac, v.Pos[i].Lerp(v.Pos[i+1], frac)
}

// gpsAt returns the stored GPS fix nearest to (not after) time t.
func (v *VehicleRecord) gpsAt(t float64) (geo.Vec2, bool) {
	if len(v.GPSFix) == 0 {
		return geo.Vec2{}, false
	}
	i := int((t - v.T0) * SampleHz)
	if i < 0 {
		i = 0
	}
	if i >= len(v.GPSFix) {
		i = len(v.GPSFix) - 1
	}
	return v.GPSFix[i], v.GPSOK[i]
}

// Record is an archived two-vehicle run.
type Record struct {
	Seed     uint64
	Label    string
	Leader   VehicleRecord
	Follower VehicleRecord
}

// FromRun samples a simulated run into a record. Query-facing GPS fixes are
// materialized on the uniform grid here, so replays never need the live
// receivers.
func FromRun(r *sim.Run, label string) *Record {
	rec := &Record{Seed: r.Scenario.Seed, Label: label}
	rec.Leader = recordVehicle(r, r.Leader, true)
	rec.Follower = recordVehicle(r, r.Follower, false)
	return rec
}

func recordVehicle(r *sim.Run, v *sim.VehicleRun, leader bool) VehicleRecord {
	rec := VehicleRecord{
		Aware:       v.Aware,
		MarkTruePos: v.MarkTruePos,
		T0:          v.Truth.States[0].T,
	}
	dur := v.Truth.Duration()
	n := int(dur*SampleHz) + 1
	for i := 0; i < n; i++ {
		t := rec.T0 + float64(i)/SampleHz
		st := v.Truth.At(t)
		rec.S = append(rec.S, st.S)
		rec.Pos = append(rec.Pos, st.Pos)
		fix, ok := r.GPSFixFor(leader, st.Pos, t)
		rec.GPSFix = append(rec.GPSFix, fix)
		rec.GPSOK = append(rec.GPSOK, ok)
	}
	return rec
}

// QueryResult mirrors sim.QueryResult for replayed queries.
type QueryResult struct {
	T        float64
	TruthGap float64
	OK       bool
	Est      core.Estimate
	RDE      float64
	SYNErrM  float64
	GPSEst   float64
	GPSRDE   float64
}

// Query replays a relative-distance query at time t against the record.
func (rec *Record) Query(t float64, p core.Params) QueryResult {
	res := QueryResult{T: t}
	sL, posL := rec.Leader.truthAt(t)
	sF, posF := rec.Follower.truthAt(t)
	res.TruthGap = sL - sF

	pf := rec.Follower.Aware.PrefixUntil(t)
	pl := rec.Leader.Aware.PrefixUntil(t)
	if est, ok := core.Resolve(pf, pl, p); ok {
		res.OK = true
		res.Est = est
		res.RDE = math.Abs(est.Distance - res.TruthGap)
		res.SYNErrM = rec.synError(est)
	}

	fixF, _ := rec.Follower.gpsAt(t)
	fixL, _ := rec.Leader.gpsAt(t)
	res.GPSEst = fixF.Dist(fixL)
	res.GPSRDE = math.Abs(res.GPSEst - posF.Dist(posL))
	return res
}

func (rec *Record) synError(est core.Estimate) float64 {
	best := est.SYNs[0]
	for _, s := range est.SYNs[1:] {
		if s.Score > best.Score {
			best = s
		}
	}
	if best.IdxA >= len(rec.Follower.MarkTruePos) || best.IdxB >= len(rec.Leader.MarkTruePos) {
		return math.NaN()
	}
	return rec.Follower.MarkTruePos[best.IdxA].Dist(rec.Leader.MarkTruePos[best.IdxB])
}

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed stream")

// WriteTo serializes the record.
func (rec *Record) WriteTo(w io.Writer) (int64, error) {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, magic)
	buf = binary.LittleEndian.AppendUint16(buf, version)
	buf = binary.LittleEndian.AppendUint64(buf, rec.Seed)
	lbl := []byte(rec.Label)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(lbl)))
	buf = append(buf, lbl...)
	for _, v := range []*VehicleRecord{&rec.Leader, &rec.Follower} {
		vb, err := encodeVehicle(v)
		if err != nil {
			return 0, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(vb)))
		buf = append(buf, vb...)
	}
	n, err := w.Write(buf)
	return int64(n), err
}

func encodeVehicle(v *VehicleRecord) ([]byte, error) {
	aw, err := v.Aware.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(aw)))
	b = append(b, aw...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v.MarkTruePos)))
	for _, p := range v.MarkTruePos {
		b = appendVec(b, p)
	}
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.T0))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v.S)))
	for i := range v.S {
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(float32(v.S[i])))
		b = appendVec(b, v.Pos[i])
		b = appendVec(b, v.GPSFix[i])
		if v.GPSOK[i] {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b, nil
}

func appendVec(b []byte, p geo.Vec2) []byte {
	b = binary.LittleEndian.AppendUint32(b, math.Float32bits(float32(p.X)))
	return binary.LittleEndian.AppendUint32(b, math.Float32bits(float32(p.Y)))
}

// ReadFrom deserializes a record written by WriteTo.
func (rec *Record) ReadFrom(r io.Reader) (int64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	d := &decoder{data: data}
	if d.u32() != magic {
		return int64(len(data)), fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	if v := d.u16(); v != version {
		return int64(len(data)), fmt.Errorf("%w: version %d", ErrBadTrace, v)
	}
	rec.Seed = d.u64()
	rec.Label = string(d.bytes(int(d.u16())))
	for _, v := range []*VehicleRecord{&rec.Leader, &rec.Follower} {
		vb := d.bytes(int(d.u32()))
		if d.err {
			return int64(len(data)), fmt.Errorf("%w: truncated", ErrBadTrace)
		}
		if err := decodeVehicle(v, vb); err != nil {
			return int64(len(data)), err
		}
	}
	if d.err {
		return int64(len(data)), fmt.Errorf("%w: truncated", ErrBadTrace)
	}
	return int64(len(data)), nil
}

func decodeVehicle(v *VehicleRecord, b []byte) error {
	d := &decoder{data: b}
	aw := d.bytes(int(d.u32()))
	if d.err {
		return fmt.Errorf("%w: vehicle header", ErrBadTrace)
	}
	v.Aware = &trajectory.Aware{}
	if err := v.Aware.UnmarshalBinary(aw); err != nil {
		return err
	}
	// Counts come off the wire; bound them by the bytes actually present
	// before allocating, or a corrupt count means gigabytes of allocation
	// and billions of loop iterations on a few hundred KB of input.
	nPos := int(d.u32())
	if nPos < 0 || nPos > d.remaining()/vecWireSize {
		return fmt.Errorf("%w: mark count %d exceeds payload", ErrBadTrace, nPos)
	}
	v.MarkTruePos = make([]geo.Vec2, nPos)
	for i := range v.MarkTruePos {
		v.MarkTruePos[i] = d.vec()
	}
	v.T0 = math.Float64frombits(d.u64())
	n := int(d.u32())
	if n < 0 || n > d.remaining()/sampleWireSize {
		return fmt.Errorf("%w: sample count %d exceeds payload", ErrBadTrace, n)
	}
	v.S = make([]float64, n)
	v.Pos = make([]geo.Vec2, n)
	v.GPSFix = make([]geo.Vec2, n)
	v.GPSOK = make([]bool, n)
	for i := 0; i < n; i++ {
		v.S[i] = float64(math.Float32frombits(d.u32()))
		v.Pos[i] = d.vec()
		v.GPSFix[i] = d.vec()
		v.GPSOK[i] = d.byte() == 1
	}
	if d.err {
		return fmt.Errorf("%w: vehicle body", ErrBadTrace)
	}
	return nil
}

// Wire sizes of the repeated elements in a vehicle body, used to bound
// decoded counts: a Vec2 is two float32s; a truth sample is one float32 S,
// two Vec2s, and one GPSOK byte.
const (
	vecWireSize    = 8
	sampleWireSize = 4 + 2*vecWireSize + 1
)

// decoder is a bounds-checked little-endian reader.
type decoder struct {
	data []byte
	off  int
	err  bool
}

func (d *decoder) remaining() int { return len(d.data) - d.off }

func (d *decoder) bytes(n int) []byte {
	if n < 0 || d.off+n > len(d.data) {
		d.err = true
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) byte() byte {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) vec() geo.Vec2 {
	return geo.Vec2{
		X: float64(math.Float32frombits(d.u32())),
		Y: float64(math.Float32frombits(d.u32())),
	}
}
