package trace

import (
	"bytes"
	"testing"
)

// FuzzReadFrom hammers the trace decoder with arbitrary bytes: it must
// never panic and must reject everything malformed with an error.
func FuzzReadFrom(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("RUPT"))
	f.Add(bytes.Repeat([]byte{0x52}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		var rec Record
		if _, err := rec.ReadFrom(bytes.NewReader(data)); err != nil {
			return
		}
		// Accepted: both vehicles must be structurally consistent.
		for _, v := range []*VehicleRecord{&rec.Leader, &rec.Follower} {
			if v.Aware == nil {
				t.Fatal("accepted record with nil trajectory")
			}
			if len(v.S) != len(v.Pos) || len(v.S) != len(v.GPSFix) || len(v.S) != len(v.GPSOK) {
				t.Fatal("accepted record with ragged series")
			}
		}
	})
}
