package scanner

import "rups/internal/obs"

var scanSamples = obs.NewView(func(r *obs.Registry) *obs.Counter {
	return r.Counter("rups_scanner_samples_total",
		"RSSI samples produced by the scanning radio bank")
})
