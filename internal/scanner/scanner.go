// Package scanner simulates the bank of GSM scanning radios (the paper's
// Motorola C118 + OsmocomBB setup, §III-A and §VI-B). A radio dwells on one
// channel for ~15 ms, so a single radio needs 2.85 s to cover all 194
// R-GSM-900 channels; a moving vehicle therefore misses channels at any
// given metre. Multiple radios partition the channel list and scan in
// parallel, shrinking the gap — the knob behind the paper's Fig 9.
// Placement matters too: radios at the cabin centre sit behind more metal
// and read weaker, noisier signal than radios on the front instrument panel.
package scanner

import (
	"fmt"
	"sort"

	"rups/internal/geo"
	"rups/internal/gsm"
	"rups/internal/mobility"
	"rups/internal/noise"
	"rups/internal/trajectory"
)

// Source is any sampleable ambient RSSI field the radio bank can scan:
// gsm.Field, fm.Field, or a MultiSource concatenating several bands.
type Source interface {
	// Sample returns the RSSI in dBm at (pos, channel, time).
	Sample(pos geo.Vec2, ch int, t float64) float64
	// Channels returns the band's carrier count.
	Channels() int
}

// MultiSource concatenates several bands into one channel space — the
// §VII multi-band extension. Channel indices 0..s₀-1 map to the first
// source, s₀..s₀+s₁-1 to the second, and so on.
type MultiSource struct {
	srcs    []Source
	offsets []int
	total   int
}

// NewMultiSource builds a concatenated source.
func NewMultiSource(srcs ...Source) *MultiSource {
	if len(srcs) == 0 {
		panic("scanner: MultiSource needs at least one source")
	}
	m := &MultiSource{srcs: srcs}
	for _, s := range srcs {
		m.offsets = append(m.offsets, m.total)
		m.total += s.Channels()
	}
	return m
}

// Channels implements Source.
func (m *MultiSource) Channels() int { return m.total }

// Sample implements Source.
func (m *MultiSource) Sample(pos geo.Vec2, ch int, t float64) float64 {
	if ch < 0 || ch >= m.total {
		panic(fmt.Sprintf("scanner: multi-source channel %d out of range", ch))
	}
	for i := len(m.srcs) - 1; i >= 0; i-- {
		if ch >= m.offsets[i] {
			return m.srcs[i].Sample(pos, ch-m.offsets[i], t)
		}
	}
	panic("unreachable")
}

// Placement is where the radio group is installed in the vehicle.
type Placement int

const (
	// FrontPanel: on top of the instrument panel, good sky view through the
	// windshield (the paper's recommended placement).
	FrontPanel Placement = iota
	// CabinCenter: at the centre of the cabin, shielded by the body (the
	// paper's "4 central radios" configuration, which degrades accuracy).
	CabinCenter
)

// String names the placement for evaluation output.
func (p Placement) String() string {
	switch p {
	case FrontPanel:
		return "front"
	case CabinCenter:
		return "central"
	default:
		return "unknown"
	}
}

// placementEffect returns the extra attenuation and the measurement noise
// multiplier of a placement.
func placementEffect(p Placement) (lossDB, noiseMul float64) {
	switch p {
	case FrontPanel:
		return 0, 1
	case CabinCenter:
		return 9, 2.2
	default:
		panic(fmt.Sprintf("scanner: unknown placement %d", p))
	}
}

// DwellS is the per-channel scan dwell (§V-C: "it takes about 15ms to sense
// a channel").
const DwellS = 0.015

// Config parametrizes a radio bank.
type Config struct {
	Seed      uint64
	Radios    int
	Placement Placement
	// Channels to scan; nil means the full band.
	Channels []int
	// NoiseSigmaDB is the per-reading measurement noise (before the
	// placement multiplier).
	NoiseSigmaDB float64
}

// DefaultConfig returns a bank of n radios at the given placement scanning
// the full band.
func DefaultConfig(seed uint64, radios int, placement Placement) Config {
	return Config{
		Seed:         seed,
		Radios:       radios,
		Placement:    placement,
		NoiseSigmaDB: 1.0,
	}
}

// CycleS returns the time one full sweep of the configured band takes —
// 2.85 s for one radio over 194 channels, 135 ms for ten radios over a
// 90-channel subset (the §V-C arithmetic).
func (cfg Config) CycleS() float64 {
	n := len(cfg.Channels)
	if n == 0 {
		n = gsm.NumChannels
	}
	perRadio := (n + cfg.Radios - 1) / cfg.Radios
	return float64(perRadio) * DwellS
}

// Scan runs the radio bank along a drive and returns the time-ordered
// sample stream. Scanning starts with the trace and continues to its end;
// each radio sweeps its channel subset round-robin.
func Scan(tr *mobility.Trace, f Source, cfg Config) []trajectory.Sample {
	if cfg.Radios <= 0 {
		panic("scanner: need at least one radio")
	}
	channels := cfg.Channels
	if channels == nil {
		channels = make([]int, f.Channels())
		for i := range channels {
			channels[i] = i
		}
	}
	for _, ch := range channels {
		if ch < 0 || ch >= f.Channels() {
			panic(fmt.Sprintf("scanner: channel %d out of range", ch))
		}
	}
	loss, noiseMul := placementEffect(cfg.Placement)
	sigma := cfg.NoiseSigmaDB * noiseMul

	t0 := tr.States[0].T
	tEnd := tr.States[len(tr.States)-1].T

	var samples []trajectory.Sample
	for r := 0; r < cfg.Radios; r++ {
		// Radio r owns channels[r], channels[r+Radios], ...
		var mine []int
		for i := r; i < len(channels); i += cfg.Radios {
			mine = append(mine, channels[i])
		}
		if len(mine) == 0 {
			continue
		}
		k := uint64(0)
		for t := t0; t <= tEnd; t += DwellS {
			ch := mine[int(k)%len(mine)]
			pos := tr.At(t).Pos
			v := f.Sample(pos, ch, t) - loss +
				sigma*noise.Gaussian(cfg.Seed, uint64(r), k, 0x5CA9)
			if v < gsm.NoiseFloorDBm {
				v = gsm.NoiseFloorDBm
			}
			samples = append(samples, trajectory.Sample{T: t, Ch: ch, RSSI: v})
			k++
		}
	}
	sort.SliceStable(samples, func(i, j int) bool {
		if samples[i].T < samples[j].T {
			return true
		}
		if samples[i].T > samples[j].T {
			return false
		}
		return samples[i].Ch < samples[j].Ch
	})
	if c := scanSamples.Get(); c != nil {
		c.Add(uint64(len(samples)))
	}
	return samples
}
