package scanner

import (
	"math"
	"testing"

	"rups/internal/city"
	"rups/internal/fm"
	"rups/internal/gsm"
	"rups/internal/mobility"
	"rups/internal/trajectory"
)

type env struct {
	city  *city.City
	field *gsm.Field
	trace *mobility.Trace
}

var cachedEnv *env

func getEnv(t *testing.T) *env {
	t.Helper()
	if cachedEnv != nil {
		return cachedEnv
	}
	c := city.Generate(city.DefaultConfig(31))
	f := gsm.NewField(32, gsm.GenerateTowers(32, c.Bounds(), c), c)
	road := c.RoadsOfClass(city.FourLaneUrban)[0]
	tr := mobility.Drive(mobility.DriveConfig{
		Road: road, Lane: 0, StartS: 10, Distance: 400, Seed: 33,
	})
	cachedEnv = &env{city: c, field: f, trace: tr}
	return cachedEnv
}

func TestCycleTimeArithmetic(t *testing.T) {
	// One radio, full band: 194 × 15 ms = 2.91 s (paper: "all 194 channels
	// ... within 2.85 seconds" — same ballpark by construction).
	c1 := DefaultConfig(1, 1, FrontPanel)
	if got := c1.CycleS(); math.Abs(got-2.91) > 0.1 {
		t.Errorf("1-radio cycle = %v s", got)
	}
	// §V-C: 90 channels over 10 radios = 9 × 15 ms = 135 ms.
	sub := make([]int, 90)
	for i := range sub {
		sub[i] = i
	}
	c10 := DefaultConfig(1, 10, FrontPanel)
	c10.Channels = sub
	if got := c10.CycleS(); math.Abs(got-0.135) > 1e-9 {
		t.Errorf("10-radio 90-channel cycle = %v s, want 0.135", got)
	}
}

func TestScanCoverage(t *testing.T) {
	e := getEnv(t)
	samples := Scan(e.trace, e.field, DefaultConfig(5, 4, FrontPanel))
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	seen := map[int]bool{}
	prevT := -math.MaxFloat64
	for _, s := range samples {
		if s.T < prevT {
			t.Fatal("samples not time ordered")
		}
		prevT = s.T
		if s.RSSI < gsm.NoiseFloorDBm || s.RSSI > gsm.SaturationDBm {
			t.Fatalf("sample RSSI %v out of range", s.RSSI)
		}
		seen[s.Ch] = true
	}
	if len(seen) != gsm.NumChannels {
		t.Errorf("scanned %d distinct channels, want %d", len(seen), gsm.NumChannels)
	}
}

func TestMoreRadiosFewerMissing(t *testing.T) {
	e := getEnv(t)
	frac := func(radios int) float64 {
		samples := Scan(e.trace, e.field, DefaultConfig(6, radios, FrontPanel))
		g := geoFromTruth(e.trace)
		a := trajectory.Bind(g, samples)
		return a.MissingFrac()
	}
	f1, f4 := frac(1), frac(4)
	if f4 >= f1 {
		t.Errorf("missing fraction did not shrink with radios: 1→%v, 4→%v", f1, f4)
	}
	if f1 < 0.3 {
		t.Errorf("single radio misses only %v of cells; expected severe gaps at driving speed", f1)
	}
}

// geoFromTruth builds the per-metre geographical trajectory from ground
// truth (perfect dead reckoning), for isolating scanner behaviour.
func geoFromTruth(tr *mobility.Trace) trajectory.Geo {
	var g trajectory.Geo
	s0 := tr.States[0].S
	next := 1.0
	for _, st := range tr.States {
		for st.S-s0 >= next {
			g.Marks = append(g.Marks, trajectory.GeoMark{Theta: st.Heading, T: st.T})
			next++
		}
	}
	return g
}

func TestCentralPlacementWeaker(t *testing.T) {
	e := getEnv(t)
	front := Scan(e.trace, e.field, DefaultConfig(7, 4, FrontPanel))
	central := Scan(e.trace, e.field, DefaultConfig(7, 4, CabinCenter))
	if len(front) != len(central) {
		t.Fatalf("sample counts differ: %d vs %d", len(front), len(central))
	}
	var fSum, cSum float64
	for i := range front {
		fSum += front[i].RSSI
		cSum += central[i].RSSI
	}
	// Central placement reads several dB weaker on average. (Floor clamping
	// compresses the difference below the nominal 7 dB.)
	if fSum/float64(len(front))-cSum/float64(len(central)) < 2 {
		t.Errorf("central placement not measurably weaker: front mean %v, central mean %v",
			fSum/float64(len(front)), cSum/float64(len(central)))
	}
}

func TestScanDeterministic(t *testing.T) {
	e := getEnv(t)
	a := Scan(e.trace, e.field, DefaultConfig(8, 2, FrontPanel))
	b := Scan(e.trace, e.field, DefaultConfig(8, 2, FrontPanel))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestScanChannelSubset(t *testing.T) {
	e := getEnv(t)
	cfg := DefaultConfig(9, 2, FrontPanel)
	cfg.Channels = []int{5, 10, 15}
	samples := Scan(e.trace, e.field, cfg)
	for _, s := range samples {
		if s.Ch != 5 && s.Ch != 10 && s.Ch != 15 {
			t.Fatalf("unexpected channel %d", s.Ch)
		}
	}
}

func TestScanPanics(t *testing.T) {
	e := getEnv(t)
	for name, cfg := range map[string]Config{
		"no radios":   {Radios: 0},
		"bad channel": {Radios: 1, Channels: []int{999}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			Scan(e.trace, e.field, cfg)
		}()
	}
}

func TestPlacementString(t *testing.T) {
	if FrontPanel.String() != "front" || CabinCenter.String() != "central" {
		t.Error("placement names wrong")
	}
	if Placement(9).String() != "unknown" {
		t.Error("unknown placement name")
	}
}

func TestMultiSourceDispatch(t *testing.T) {
	e := getEnv(t)
	f := fm.NewField(9, gsm.Bounds{MinX: -3000, MinY: -3000, MaxX: 3000, MaxY: 3000}, gsm.ConstZone(gsm.Urban))
	m := NewMultiSource(e.field, f)
	if m.Channels() != gsm.NumChannels+fm.NumStations {
		t.Fatalf("Channels = %d", m.Channels())
	}
	pos := e.trace.States[0].Pos
	// GSM part dispatches to the GSM field.
	if got, want := m.Sample(pos, 7, 3), e.field.Sample(pos, 7, 3); got != want {
		t.Errorf("GSM dispatch: %v vs %v", got, want)
	}
	// FM part dispatches with the offset removed.
	if got, want := m.Sample(pos, gsm.NumChannels+4, 3), f.Sample(pos, 4, 3); got != want {
		t.Errorf("FM dispatch: %v vs %v", got, want)
	}
	for name, fn := range map[string]func(){
		"out of range": func() { m.Sample(pos, m.Channels(), 0) },
		"negative":     func() { m.Sample(pos, -1, 0) },
		"empty":        func() { NewMultiSource() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestScanMultiSourceCoverage(t *testing.T) {
	e := getEnv(t)
	f := fm.NewField(10, gsm.Bounds{MinX: -3000, MinY: -3000, MaxX: 3000, MaxY: 3000}, gsm.ConstZone(gsm.Urban))
	m := NewMultiSource(e.field, f)
	samples := Scan(e.trace, m, DefaultConfig(11, 4, FrontPanel))
	seenFM := false
	for _, s := range samples {
		if s.Ch >= gsm.NumChannels {
			seenFM = true
			if s.Ch >= m.Channels() {
				t.Fatalf("channel %d beyond multi-source width", s.Ch)
			}
		}
	}
	if !seenFM {
		t.Error("multi-source scan never touched the FM band")
	}
}
