package serve

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"rups/internal/obs"
	"rups/internal/v2v"
)

// MsgKind discriminates the server-to-client message union.
type MsgKind int

const (
	// MsgAck is a v2v cumulative-ack beacon for the streamed trajectory.
	MsgAck MsgKind = iota
	// MsgResult answers a QUERY.
	MsgResult
	// MsgRefuse is explicit backpressure: the request was not admitted.
	MsgRefuse
	// MsgDrain announces a server drain: read pending results, reconnect
	// later.
	MsgDrain
)

// Msg is one decoded server-to-client message. Fields are populated per
// Kind: Ack* for MsgAck; QID, Status, Stale, Distance, Latency for
// MsgResult; QID, Reason, RetryAfter for MsgRefuse.
type Msg struct {
	Kind MsgKind

	AckCum   int
	AckEpoch uint32

	QID      uint32
	Status   byte
	Stale    bool
	Distance float64
	Latency  float64

	Reason     byte
	RetryAfter float64
}

// Client is a minimal protocol client for the resolution service, used by
// the load generator and tests. Writes are serialized by a mutex so a
// streaming goroutine and a querying goroutine can share one connection;
// reads are single-consumer (call ReadMsg from one goroutine).
type Client struct {
	nc net.Conn
	br *bufio.Reader
	wm sync.Mutex
}

// Dial connects to a resolution server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection (net.Pipe in tests).
func NewClient(nc net.Conn) *Client {
	return &Client{nc: nc, br: bufio.NewReader(nc)}
}

// Close tears the connection down.
func (c *Client) Close() error { return c.nc.Close() }

func (c *Client) writeMsg(b []byte) error {
	c.wm.Lock()
	defer c.wm.Unlock()
	return writeMsg(c.nc, b)
}

// Hello registers this connection as vehicle vid streaming under the
// given epoch and channel width. Must precede SendDelta; a reconnecting
// vehicle must bump its epoch so the server discards the dead
// incarnation's reconstruction.
func (c *Client) Hello(vid, epoch uint32, width int) error {
	return c.writeMsg(helloFrame(vid, epoch, uint16(width)))
}

// SendDelta streams one trajectory delta as v2v DATA frames (one message
// per frame; large chunks fragment per the WSM payload bound).
func (c *Client) SendDelta(d v2v.Delta, epoch uint32) error {
	for _, fr := range v2v.DataFrames(d, obs.TraceRef{}, epoch) {
		if err := c.writeMsg(fr); err != nil {
			return err
		}
	}
	return nil
}

// SendRaw writes one arbitrary message — the load generator's hook for
// injecting malformed traffic.
func (c *Client) SendRaw(b []byte) error { return c.writeMsg(b) }

// Query asks for the relative distance between vehicles a and b.
// deadlineRel > 0 bounds, in seconds of the server's clock from
// admission, how long the query may wait before the server sheds it;
// 0 means no deadline.
func (c *Client) Query(qid, a, b uint32, deadlineRel float64) error {
	return c.writeMsg(queryFrame(qid, a, b, deadlineRel))
}

// ReadMsg blocks for the next server message and decodes it.
func (c *Client) ReadMsg() (Msg, error) {
	for {
		raw, err := readMsg(c.br)
		if err != nil {
			return Msg{}, err
		}
		if cum, epoch, ok := v2v.ParseAck(raw); ok {
			return Msg{Kind: MsgAck, AckCum: cum, AckEpoch: epoch}, nil
		}
		if !isCtrl(raw) {
			continue // unknown frame family; skip, stream is still framed
		}
		switch raw[2] {
		case ctrlResult:
			qid, status, stale, dist, lat, err := parseResult(raw)
			if err != nil {
				return Msg{}, err
			}
			return Msg{Kind: MsgResult, QID: qid, Status: status,
				Stale: stale, Distance: dist, Latency: lat}, nil
		case ctrlRefuse:
			qid, reason, retry, err := parseRefuse(raw)
			if err != nil {
				return Msg{}, err
			}
			return Msg{Kind: MsgRefuse, QID: qid, Reason: reason,
				RetryAfter: retry}, nil
		case ctrlDrain:
			if !isDrain(raw) {
				return Msg{}, errBadCtrl
			}
			return Msg{Kind: MsgDrain}, nil
		default:
			return Msg{}, fmt.Errorf("serve: unexpected control type %d", raw[2])
		}
	}
}
