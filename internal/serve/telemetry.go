package serve

import "rups/internal/obs"

// serveTelemetry is the resolution service's metric roster (see
// docs/OBSERVABILITY.md and docs/SERVICE.md). The counters narrate the
// admission story — what was asked, what was answered, what was refused
// and why — and the gauges bound the resident state the soak job holds
// the server to: queue depth under its cap, resident snapshot bytes
// under the memory budget.
type serveTelemetry struct {
	connsTotal  *obs.Counter
	connsActive *obs.Gauge

	queries *obs.Counter
	results *obs.Counter
	shed    *obs.Counter

	refused      *obs.Counter
	refusedQueue *obs.Counter
	refusedRate  *obs.Counter
	refusedDrain *obs.Counter
	refusedConns *obs.Counter

	evictions       *obs.Counter
	evictionsExpiry *obs.Counter
	residentBytes   *obs.Gauge
	residentVeh     *obs.Gauge
	queueDepth      *obs.Gauge

	slowDisconnects *obs.Counter
	malformed       *obs.Counter

	drains         *obs.Counter
	drainedQueries *obs.Counter

	resolveSec *obs.Histogram
}

// disabledTel is the all-nil roster served while telemetry is off: every
// handle method is nil-receiver-safe, so call sites pay one branch here
// instead of a nil check each.
var disabledTel serveTelemetry

// stel returns the live metric roster, or the inert one when no registry
// is enabled.
func stel() *serveTelemetry {
	if t := serveTel.Get(); t != nil {
		return t
	}
	return &disabledTel
}

var serveTel = obs.NewView(func(r *obs.Registry) *serveTelemetry {
	return &serveTelemetry{
		connsTotal: r.Counter("rups_serve_connections_total",
			"client connections accepted"),
		connsActive: r.Gauge("rups_serve_connections_active",
			"client connections currently open"),
		queries: r.Counter("rups_serve_queries_total",
			"pair queries received (admitted or refused)"),
		results: r.Counter("rups_serve_results_total",
			"query results sent back to clients"),
		shed: r.Counter("rups_serve_queries_shed_total",
			"admitted queries shed because their deadline expired before resolution started"),
		refused: r.Counter("rups_serve_refused_total",
			"requests refused with explicit backpressure (sum of the per-reason counters)"),
		refusedQueue: r.Counter("rups_serve_refused_queue_total",
			"queries refused because the admission queue or per-connection bound was full"),
		refusedRate: r.Counter("rups_serve_refused_rate_total",
			"queries refused by the per-client rate limit"),
		refusedDrain: r.Counter("rups_serve_refused_drain_total",
			"queries refused because the server was draining"),
		refusedConns: r.Counter("rups_serve_refused_conn_limit_total",
			"connections refused at the connection cap"),
		evictions: r.Counter("rups_serve_evictions_total",
			"per-vehicle snapshots evicted from the resident set"),
		evictionsExpiry: r.Counter("rups_serve_evictions_expiry_total",
			"evictions driven by staleness expiry rather than LRU memory pressure"),
		residentBytes: r.Gauge("rups_serve_resident_bytes",
			"approximate bytes of resident per-vehicle trajectory state"),
		residentVeh: r.Gauge("rups_serve_resident_vehicles",
			"vehicles with resident trajectory state"),
		queueDepth: r.Gauge("rups_serve_queue_depth",
			"admitted queries waiting for the resolver"),
		slowDisconnects: r.Counter("rups_serve_slow_disconnects_total",
			"connections dropped because the client stopped reading (outbox overflow)"),
		malformed: r.Counter("rups_serve_malformed_total",
			"messages dropped as malformed (bad framing, CRC, or unknown type)"),
		drains: r.Counter("rups_serve_drains_total",
			"graceful drains begun (SIGTERM or Shutdown)"),
		drainedQueries: r.Counter("rups_serve_drained_queries_total",
			"admitted queries flushed to completion during a drain"),
		// 2^-20 s ≈ 1 µs up to 2^4 = 16 s, matching the engine's pair
		// histogram so the resolve-latency SLO reads either.
		resolveSec: r.Histogram("rups_serve_resolve_seconds",
			"per-query resolve latency as observed by the service (admission to result)", -20, 4),
	}
})
