// Package serve is the long-running resolution service: vehicles stream
// trajectory deltas over TCP using the v2v frame codec, and clients issue
// d_r pair queries answered from per-vehicle reconstructions through the
// resolution engine.
//
// The package's design center is graceful degradation under overload
// (ROADMAP: robustness). Every resource is bounded and every bound, when
// hit, produces an explicit, observable refusal instead of a silent drop,
// an unbounded queue, or a dead connection:
//
//   - connections past the cap are refused with REFUSE(conn_limit);
//   - queries past the admission queue or per-connection bound are
//     refused with REFUSE(queue_full) and a retry-after hint;
//   - queries past the per-client rate limit are refused with
//     REFUSE(rate);
//   - admitted queries whose deadline expires before a worker starts
//     them are shed by the engine and answered StatusShed;
//   - resident per-vehicle state past the memory budget is evicted LRU-
//     first (the owning connection is kicked so the client resyncs under
//     a fresh epoch), and contexts older than the staleness policy's
//     expiry bound are swept regardless of pressure;
//   - clients that stop reading are disconnected when their outbox
//     fills, rather than wedging a writer goroutine;
//   - on Shutdown the server stops accepting, refuses new work with
//     REFUSE(draining), answers everything already admitted, flushes
//     outboxes, and only then tears down.
package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"rups/internal/core"
	"rups/internal/engine"
	"rups/internal/obs/flight"
	"rups/internal/obs/slo"
	"rups/internal/trajectory"
	"rups/internal/v2v"
)

// Config parameterizes a Server. The zero value of every bound gets a
// conservative default from New; a negative bound disables it where noted.
type Config struct {
	// Addr is the TCP listen address (":0" for an ephemeral test port).
	Addr string
	// Clock is the server's time source; nil means WallClock.
	Clock Clock
	// Workers sizes the resolution engine's worker pool (0 = GOMAXPROCS,
	// per engine.New).
	Workers int
	// Params are the resolution parameters applied to every query.
	Params core.Params
	// Staleness grades and expires context by age; its expiry bound also
	// drives the resident-table sweep. Zero disables both rungs.
	Staleness core.Staleness

	// MaxConns caps concurrent connections (default 1024).
	MaxConns int
	// QueueCap bounds the admission queue (default 256).
	QueueCap int
	// PerConnQueries bounds one connection's outstanding queries
	// (default 64).
	PerConnQueries int
	// RatePerSec is the per-connection sustained query rate; 0 disables
	// rate limiting. RateBurst is the token-bucket depth (default 2×rate,
	// minimum 1) — only read when RatePerSec > 0.
	RatePerSec float64
	RateBurst  int
	// MemBudgetBytes caps resident per-vehicle trajectory state; 0
	// disables the budget (expiry sweeps still run).
	MemBudgetBytes int64
	// OutboxCap bounds one connection's pending outbound messages; a
	// client that lets it fill is disconnected as a slow reader
	// (default 256).
	OutboxCap int
	// SweepEverySec is the staleness-sweep period (default 5).
	SweepEverySec float64
	// RetryAfterSec is the retry hint carried by queue-full and draining
	// refusals (default 0.5).
	RetryAfterSec float64

	// SLO, when set, receives per-query observations for the
	// resolve_latency, context_freshness, and pair_availability
	// objectives (absent objectives are skipped).
	SLO *slo.Tracker
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = WallClock{}
	}
	if c.MaxConns == 0 {
		c.MaxConns = 1024
	}
	if c.QueueCap == 0 {
		c.QueueCap = 256
	}
	if c.PerConnQueries == 0 {
		c.PerConnQueries = 64
	}
	if c.OutboxCap == 0 {
		c.OutboxCap = 256
	}
	if c.SweepEverySec <= 0 {
		c.SweepEverySec = 5
	}
	if c.RetryAfterSec <= 0 {
		c.RetryAfterSec = 0.5
	}
	if c.RatePerSec > 0 && c.RateBurst <= 0 {
		c.RateBurst = int(2 * c.RatePerSec)
		if c.RateBurst < 1 {
			c.RateBurst = 1
		}
	}
	return c
}

// query is one admitted pair query waiting for the resolver.
type query struct {
	qid      uint32
	a, b     uint32
	deadline float64 // absolute server-clock deadline; 0 = none
	admitted float64
	c        *conn
}

// Server is the resolution service. Construct with New, start with Start,
// stop with Shutdown.
type Server struct {
	cfg   Config
	clock Clock
	eng   *engine.Engine
	tab   *vtable
	ln    net.Listener

	// qmu guards the admission gate: admitters hold the read lock across
	// the draining check and the channel send, so Shutdown's write-locked
	// {draining = true; close(queries)} can never close the channel under
	// a sender (the engine's safe-close pattern).
	qmu      sync.RWMutex
	draining bool
	queries  chan *query

	cmu   sync.Mutex
	conns map[*conn]struct{}

	resolverDone chan struct{}
	sweepDone    chan struct{}
	stop         chan struct{}
	acceptWG     sync.WaitGroup
	connWG       sync.WaitGroup
	shutOnce     sync.Once

	// SLO objective indices, resolved once at construction (-1 = absent).
	sloLat, sloFresh, sloAvail int
}

// New builds a Server from cfg. Call Start to begin listening.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:          cfg,
		clock:        cfg.Clock,
		eng:          engine.New(cfg.Workers),
		tab:          newVTable(cfg.MemBudgetBytes, cfg.Staleness),
		queries:      make(chan *query, cfg.QueueCap),
		conns:        make(map[*conn]struct{}),
		resolverDone: make(chan struct{}),
		sweepDone:    make(chan struct{}),
		stop:         make(chan struct{}),
		sloLat:       -1, sloFresh: -1, sloAvail: -1,
	}
	// Task-start deadline rechecks shed work that expired while queued.
	s.eng.SetClock(s.clock.Now)
	if cfg.SLO != nil {
		s.sloLat = cfg.SLO.Index("resolve_latency")
		s.sloFresh = cfg.SLO.Index("context_freshness")
		s.sloAvail = cfg.SLO.Index("pair_availability")
	}
	return s
}

// Start listens on cfg.Addr and launches the accept, resolver, and sweep
// goroutines. It returns once the listener is live; Addr reports the
// bound address.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.acceptWG.Add(1)
	go s.acceptLoop()
	go s.resolveLoop()
	go s.sweepLoop()
	return nil
}

// Addr returns the listener address (nil before Start).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.admitConn(nc)
	}
}

// admitConn enforces the connection cap; refused connections get an
// explicit conn-level REFUSE before the close so the client can back off
// rather than hammer reconnects.
func (s *Server) admitConn(nc net.Conn) {
	tel := stel()
	s.cmu.Lock()
	if len(s.conns) >= s.cfg.MaxConns {
		s.cmu.Unlock()
		tel.refused.Inc()
		tel.refusedConns.Inc()
		//lint:ignore errflow best-effort refusal on a doomed connection
		_ = writeMsg(nc, refuseFrame(0, RefuseConnLimit, s.cfg.RetryAfterSec))
		//lint:ignore errflow the connection is being refused; its close error changes nothing
		_ = nc.Close()
		return
	}
	c := &conn{
		s:      s,
		nc:     nc,
		outbox: make(chan []byte, s.cfg.OutboxCap),
		tokens: float64(s.cfg.RateBurst),
		last:   s.clock.Now(),
	}
	s.conns[c] = struct{}{}
	s.cmu.Unlock()
	tel.connsTotal.Inc()
	tel.connsActive.Add(1)
	s.connWG.Add(2)
	go c.writeLoop()
	go c.readLoop()
}

// admitQuery runs the bounded admission gate for one parsed query.
func (s *Server) admitQuery(q *query) {
	tel := stel()
	tel.queries.Inc()
	if q.c.outstanding.Load() >= int64(s.cfg.PerConnQueries) {
		s.refuse(q.c, q.qid, RefuseQueueFull)
		return
	}
	s.qmu.RLock()
	if s.draining {
		s.qmu.RUnlock()
		s.refuse(q.c, q.qid, RefuseDraining)
		return
	}
	select {
	//lint:ignore chanclose every send holds qmu.RLock and checks draining; drain sets draining and closes under qmu.Lock, so no send can follow the close
	case s.queries <- q:
		q.c.outstanding.Add(1)
		tel.queueDepth.Set(int64(len(s.queries)))
		s.qmu.RUnlock()
	default:
		s.qmu.RUnlock()
		s.refuse(q.c, q.qid, RefuseQueueFull)
	}
}

func (s *Server) refuse(c *conn, qid uint32, reason byte) {
	tel := stel()
	tel.refused.Inc()
	retry := s.cfg.RetryAfterSec
	switch reason {
	case RefuseQueueFull:
		tel.refusedQueue.Inc()
	case RefuseRate:
		tel.refusedRate.Inc()
		if s.cfg.RatePerSec > 0 {
			retry = 1 / s.cfg.RatePerSec
		}
	case RefuseDraining:
		tel.refusedDrain.Inc()
	}
	c.send(refuseFrame(qid, reason, retry))
}

// resolveLoop drains the admission queue, collecting opportunistic
// batches so one engine admission covers several queries. It exits only
// when Shutdown has closed the queue AND every already-admitted query has
// been answered — that is the "flush in-flight work" half of the drain
// guarantee.
func (s *Server) resolveLoop() {
	defer close(s.resolverDone)
	tel := stel()
	for q := range s.queries {
		batch := []*query{q}
	collect:
		for len(batch) < 64 {
			select {
			case q2, ok := <-s.queries:
				if !ok {
					break collect
				}
				batch = append(batch, q2)
			default:
				break collect
			}
		}
		tel.queueDepth.Set(int64(len(s.queries)))
		s.resolveBatch(batch)
	}
}

func (s *Server) isDraining() bool {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	return s.draining
}

// resolveBatch answers a batch of queries: snapshot each referenced
// vehicle once, admit the snapshots, and resolve all pairs through the
// deadline-aware engine entry point.
func (s *Server) resolveBatch(batch []*query) {
	tel := stel()
	now := s.clock.Now()
	if s.isDraining() {
		tel.drainedQueries.Add(uint64(len(batch)))
	}
	var snaps []*trajectory.Aware
	snapIdx := make(map[uint32]int)
	snapshotOf := func(id uint32) int {
		if i, ok := snapIdx[id]; ok {
			return i
		}
		e := s.tab.get(id, now)
		if e == nil {
			snapIdx[id] = -1
			return -1
		}
		snaps = append(snaps, e.snapshot())
		snapIdx[id] = len(snaps) - 1
		return snapIdx[id]
	}
	var live []*query
	var pairs [][2]int
	var dls []float64
	for _, q := range batch {
		ia, ib := snapshotOf(q.a), snapshotOf(q.b)
		if ia < 0 || ib < 0 {
			s.finish(q, StatusUnknownVehicle, false, 0)
			continue
		}
		live = append(live, q)
		pairs = append(pairs, [2]int{ia, ib})
		dls = append(dls, q.deadline)
	}
	if len(live) == 0 {
		return
	}
	b, err := s.eng.Admit(snaps...)
	if err != nil {
		// Engine closed under us (hard stop, not a drain): answer rather
		// than leave clients waiting on qids forever.
		for _, q := range live {
			s.finish(q, StatusUnresolved, false, 0)
		}
		return
	}
	res := b.ResolvePairsDeadlineAt(pairs, dls, s.cfg.Params, now, s.cfg.Staleness)
	for i, r := range res {
		q := live[i]
		switch {
		case r.Shed:
			stel().shed.Inc()
			s.finish(q, StatusShed, false, 0)
		case !r.OK:
			s.finish(q, StatusUnresolved, r.Stale, 0)
		default:
			s.finish(q, StatusOK, r.Stale, r.Est.Distance)
		}
	}
}

// finish sends one query's answer and records the outcome across metrics
// and the SLO tracker.
func (s *Server) finish(q *query, status byte, stale bool, dist float64) {
	tel := stel()
	done := s.clock.Now()
	lat := done - q.admitted
	if lat < 0 {
		lat = 0
	}
	q.c.outstanding.Add(-1)
	q.c.send(resultFrame(q.qid, status, stale, dist, lat))
	tel.results.Inc()
	tel.resolveSec.Observe(lat)
	if t := s.cfg.SLO; t != nil {
		if s.sloLat >= 0 {
			t.ObserveLatency(s.sloLat, lat, done)
		}
		if s.sloFresh >= 0 {
			t.Observe(s.sloFresh, status == StatusOK && !stale, done)
		}
		if s.sloAvail >= 0 {
			t.Observe(s.sloAvail, status == StatusOK, done)
		}
	}
}

// sweepLoop expires aged-out resident contexts on the clock's cadence.
func (s *Server) sweepLoop() {
	defer close(s.sweepDone)
	ch, stopTick := s.clock.Tick(s.cfg.SweepEverySec)
	defer stopTick()
	for {
		select {
		case <-ch:
			s.tab.sweepExpired(s.clock.Now())
		case <-s.stop:
			return
		}
	}
}

// DrainStats summarizes a completed graceful drain.
type DrainStats struct {
	// Flushed counts queries that were already admitted when the drain
	// began and were answered during it.
	Flushed uint64
	// ResidentVehicles/ResidentBytes snapshot the vehicle table at the
	// end of the drain.
	ResidentVehicles int
	ResidentBytes    int64
}

// Shutdown drains the server gracefully and blocks until done:
//
//  1. stop accepting connections;
//  2. flip the admission gate to draining — every new query is refused
//     with REFUSE(draining) — and seal the queue under the gate's write
//     lock, so no admitter can be mid-send;
//  3. notify every connection with a DRAIN frame;
//  4. wait for the resolver to answer everything already admitted;
//  5. flush and close every connection's outbox, wait for the
//     connection goroutines;
//  6. release the engine and the sweeper.
//
// Admitted work is never dropped: a query either gets its RESULT or the
// client saw the connection die — there is no silent third state.
// Shutdown is idempotent; concurrent calls block until the first
// completes.
func (s *Server) Shutdown() DrainStats {
	s.shutOnce.Do(s.drain)
	<-s.sweepDone
	tel := stel()
	veh, bytes := s.tab.stats()
	return DrainStats{
		Flushed:          tel.drainedQueries.Value(),
		ResidentVehicles: veh,
		ResidentBytes:    bytes,
	}
}

func (s *Server) drain() {
	tel := stel()
	tel.drains.Inc()
	now := s.clock.Now()
	if fl := flight.Active(); fl != nil {
		fl.Emit(flight.Event{T: now, Kind: flight.KindDrain, V1: 0})
	}
	if s.ln != nil {
		//lint:ignore errflow the drain proceeds regardless; the listener is discarded either way
		_ = s.ln.Close()
	}
	s.acceptWG.Wait()

	s.qmu.Lock()
	s.draining = true
	close(s.queries)
	s.qmu.Unlock()

	s.cmu.Lock()
	open := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		open = append(open, c)
	}
	s.cmu.Unlock()
	for _, c := range open {
		c.send(drainFrame())
	}

	<-s.resolverDone
	for _, c := range open {
		c.closeSend()
	}
	s.connWG.Wait()
	close(s.stop)
	s.eng.Close()
	if fl := flight.Active(); fl != nil {
		fl.Emit(flight.Event{T: s.clock.Now(), Kind: flight.KindDrain, V1: 1})
	}
}

// conn is one client connection. The reader goroutine owns all inbound
// parsing and the rate limiter; the writer goroutine owns the socket's
// write side and is fed through a bounded outbox.
type conn struct {
	s  *Server
	nc net.Conn

	// omu serializes outbox sends with closeSend so the channel is never
	// closed under a sender.
	omu        sync.Mutex
	sendClosed bool
	outbox     chan []byte

	abortOnce sync.Once

	// Vehicle streaming state, set by HELLO (reader goroutine only).
	entry *vehicleEntry
	vid   uint32
	gen   uint64

	outstanding atomic.Int64

	// Token-bucket rate limiter; reader goroutine only.
	tokens float64
	last   float64
}

// send enqueues one outbound message without blocking. A full outbox
// means the client stopped reading: the connection is aborted as a slow
// reader — a deliberate disconnect beats an unbounded buffer or a wedged
// writer. Returns false if the message was not enqueued.
func (c *conn) send(b []byte) bool {
	c.omu.Lock()
	if c.sendClosed {
		c.omu.Unlock()
		return false
	}
	select {
	//lint:ignore chanclose every send holds omu and checks sendClosed; closeSend sets it and closes under omu, so no send can follow the close
	case c.outbox <- b:
		c.omu.Unlock()
		return true
	default:
		c.omu.Unlock()
		stel().slowDisconnects.Inc()
		c.abort()
		return false
	}
}

// closeSend seals the outbox; the writer flushes what is buffered and
// closes the socket. Idempotent.
func (c *conn) closeSend() {
	c.omu.Lock()
	if !c.sendClosed {
		c.sendClosed = true
		close(c.outbox)
	}
	c.omu.Unlock()
}

// abort hard-closes the connection (slow reader, eviction kick). The
// socket close unblocks the reader; sealing the outbox unblocks the
// writer. Safe from any goroutine; must not take vtable.mu (it is the
// eviction kick hook).
func (c *conn) abort() {
	//lint:ignore errflow aborting a misbehaving connection is best-effort; the close error is uninteresting
	c.abortOnce.Do(func() { _ = c.nc.Close() })
	c.closeSend()
}

func (c *conn) writeLoop() {
	defer c.s.connWG.Done()
	bw := bufio.NewWriter(c.nc)
	var werr error
	for b := range c.outbox {
		if werr != nil {
			continue // drain remaining sends after a dead socket
		}
		if werr = writeMsg(bw, b); werr == nil && len(c.outbox) == 0 {
			werr = bw.Flush()
		}
		if werr != nil {
			c.abort()
		}
	}
	if werr == nil {
		//lint:ignore errflow final flush on a closing socket is best-effort
		_ = bw.Flush()
	}
	//lint:ignore errflow the writer owns the socket's teardown; its close error has no consumer
	_ = c.nc.Close()
}

func (c *conn) readLoop() {
	defer func() {
		c.abort()
		if c.entry != nil {
			c.s.tab.detach(c.vid, c.gen)
		}
		c.s.cmu.Lock()
		delete(c.s.conns, c)
		c.s.cmu.Unlock()
		stel().connsActive.Add(-1)
		c.s.connWG.Done()
	}()
	br := bufio.NewReader(c.nc)
	for {
		msg, err := readMsg(br)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) && isFramingError(err) {
				stel().malformed.Inc()
			}
			return
		}
		switch {
		case v2v.IsFrame(msg):
			c.handleFrame(msg)
		case isCtrl(msg):
			c.handleCtrl(msg)
		default:
			stel().malformed.Inc()
		}
	}
}

// isFramingError distinguishes a protocol violation (oversized length
// prefix) from an ordinary disconnect mid-read.
func isFramingError(err error) bool {
	var fe *framingError
	return errors.As(err, &fe)
}

// handleFrame applies one v2v frame to the connection's vehicle. Frames
// before HELLO have no home and count as malformed.
func (c *conn) handleFrame(msg []byte) {
	tel := stel()
	if c.entry == nil {
		tel.malformed.Inc()
		return
	}
	e := c.entry
	e.mu.Lock()
	ok := e.rx.Offer(msg)
	var ack []byte
	if e.rx.TakeAckDue() {
		ack = e.rx.AckBytes()
	}
	e.mu.Unlock()
	if !ok {
		tel.malformed.Inc()
		return
	}
	c.s.tab.charge(e, c.s.clock.Now())
	if ack != nil {
		c.send(ack)
	}
}

func (c *conn) handleCtrl(msg []byte) {
	tel := stel()
	switch msg[2] {
	case ctrlHello:
		vid, _, width, err := parseHello(msg)
		if err != nil || c.entry != nil || width == 0 {
			tel.malformed.Inc()
			return
		}
		c.vid = vid
		c.entry, c.gen = c.s.tab.attach(vid, int(width), c.abort, c.s.clock.Now())
	case ctrlQuery:
		qid, a, b, dlRel, err := parseQuery(msg)
		if err != nil {
			tel.malformed.Inc()
			return
		}
		now := c.s.clock.Now()
		if !c.allow(now) {
			tel.queries.Inc()
			c.s.refuse(c, qid, RefuseRate)
			return
		}
		q := &query{qid: qid, a: a, b: b, admitted: now, c: c}
		if dlRel > 0 {
			q.deadline = now + dlRel
		}
		c.s.admitQuery(q)
	default:
		tel.malformed.Inc()
	}
}

// allow runs the per-connection token bucket; always true when rate
// limiting is disabled.
func (c *conn) allow(now float64) bool {
	if c.s.cfg.RatePerSec <= 0 {
		return true
	}
	c.tokens += (now - c.last) * c.s.cfg.RatePerSec
	c.last = now
	if max := float64(c.s.cfg.RateBurst); c.tokens > max {
		c.tokens = max
	}
	if c.tokens < 1 {
		return false
	}
	c.tokens--
	return true
}

// framingError marks a length-prefix protocol violation.
type framingError struct{ n uint32 }

func (e *framingError) Error() string {
	return fmt.Sprintf("serve: message length %d outside (0, %d]", e.n, maxMsgLen)
}
