package serve

import (
	"context"
	"net"
	"sync"
	"testing"

	"rups/internal/core"
	"rups/internal/link"
	"rups/internal/obs"
)

// TestShutdownDrainGracefully is the SIGTERM-path regression test (run
// under -race): Shutdown racing live clients must answer or refuse every
// query — no hangs, no panics, no silent drops — notify connections with
// DRAIN, flush outboxes, and leave the server fully torn down.
func TestShutdownDrainGracefully(t *testing.T) {
	obs.Enable(obs.NewRegistry())
	defer obs.Disable()

	sim := NewSimClock(1250)
	s := New(Config{
		Addr: "127.0.0.1:0", Clock: sim, Workers: 2, Params: testParams(),
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	tel := stel()
	drainsBefore := tel.drains.Value()

	const clients = 4
	const queriesEach = 25
	var wg sync.WaitGroup
	var accounted, disconnects int64
	var mu sync.Mutex
	for ci := 0; ci < clients; ci++ {
		cl, err := Dial(s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		go func(cl *Client, ci int) {
			defer wg.Done()
			for q := 0; q < queriesEach; q++ {
				// Unknown vehicles: answered instantly, which keeps the
				// accounting exact without needing streamed context.
				if cl.Query(uint32(q+1), uint32(ci*100+1), uint32(ci*100+2), 0) != nil {
					return
				}
			}
		}(cl, ci)
		go func(cl *Client) {
			defer wg.Done()
			defer cl.Close()
			n := int64(0)
			for {
				m, err := cl.ReadMsg()
				if err != nil {
					mu.Lock()
					accounted += n
					disconnects++
					mu.Unlock()
					return
				}
				if m.Kind == MsgResult || m.Kind == MsgRefuse {
					n++
				}
			}
		}(cl)
	}

	done := make(chan DrainStats, 1)
	go func() { done <- s.Shutdown() }()
	stats := <-done
	wg.Wait()

	if got := tel.drains.Value(); got != drainsBefore+1 {
		t.Fatalf("drains %d, want %d", got, drainsBefore+1)
	}
	// Every query got exactly one of: RESULT, REFUSE, or a closed
	// connection before the send — never more responses than queries,
	// never a hang (reaching here at all proves the latter).
	if accounted > clients*queriesEach {
		t.Fatalf("%d responses for at most %d queries", accounted, clients*queriesEach)
	}
	if disconnects != clients {
		t.Fatalf("%d reader exits, want %d", disconnects, clients)
	}

	// The listener is down: new connections fail.
	if _, err := Dial(s.Addr().String()); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
	// Shutdown is idempotent and still reports the drain snapshot.
	if again := s.Shutdown(); again.ResidentVehicles != stats.ResidentVehicles {
		t.Fatalf("second Shutdown diverged: %+v vs %+v", again, stats)
	}
}

// TestShutdownFlushesAdmittedQueries pins the drain guarantee precisely:
// queries admitted before the drain began are answered during it, counted
// by the drained-queries metric, and their RESULT frames reach the client
// before the connection closes.
func TestShutdownFlushesAdmittedQueries(t *testing.T) {
	obs.Enable(obs.NewRegistry())
	defer obs.Disable()

	sim := NewSimClock(1250)
	s := New(Config{Clock: sim, Workers: 1, Params: testParams(), QueueCap: 8})
	// No Start: admit queries with no resolver running, so they are
	// provably queued when the drain begins.
	srvNC, cliNC := net.Pipe()
	c := &conn{s: s, nc: srvNC, outbox: make(chan []byte, 8)}
	s.conns[c] = struct{}{}
	s.connWG.Add(1)
	go c.writeLoop()

	// net.Pipe is unbuffered, so the client must read concurrently or the
	// drain's flush would block on the first write.
	peer := NewClient(cliNC)
	msgs := make(chan Msg, 16)
	go func() {
		defer close(msgs)
		for {
			m, err := peer.ReadMsg()
			if err != nil {
				return
			}
			msgs <- m
		}
	}()

	const admitted = 3
	for i := 1; i <= admitted; i++ {
		s.admitQuery(&query{qid: uint32(i), a: 900, b: 901, admitted: sim.Now(), c: c})
	}
	flushedBefore := stel().drainedQueries.Value()

	// Drain: the resolver starts, finds the backlog, answers it, exits.
	go s.resolveLoop()
	go s.sweepLoop()
	stats := s.Shutdown()

	got := map[uint32]bool{}
	sawDrain := false
	for m := range msgs {
		switch m.Kind {
		case MsgDrain:
			sawDrain = true
		case MsgResult:
			got[m.QID] = true
		default:
			t.Fatalf("unexpected message during drain: %+v", m)
		}
	}
	for i := 1; i <= admitted; i++ {
		if !got[uint32(i)] {
			t.Fatalf("qid %d never answered during drain (got %v)", i, got)
		}
	}
	if !sawDrain {
		t.Fatal("client never saw the DRAIN notice")
	}
	if stats.Flushed != flushedBefore+admitted {
		t.Fatalf("drain stats flushed %d, want %d", stats.Flushed, flushedBefore+admitted)
	}
}

// TestLoadGeneratorAgainstFaults runs a miniature soak in-process: a
// fleet streaming through a lossy, bursty, corrupting link, with stalled
// clients, malformed injection, and mid-run epoch resets, against a
// server with tight bounds. The assertions are the robustness contract:
// the server answers what it can, refuses what it cannot, kicks what
// misbehaves, and shuts down cleanly afterwards. Run under -race this is
// the package's main concurrency check.
func TestLoadGeneratorAgainstFaults(t *testing.T) {
	obs.Enable(obs.NewRegistry())
	defer obs.Disable()

	s := New(Config{
		Addr:    "127.0.0.1:0",
		Workers: 2,
		Params:  testParams(),
		// Deliberately tight: force refusal paths under the fleet.
		QueueCap:       16,
		PerConnQueries: 4,
		MemBudgetBytes: 64 << 10,
		OutboxCap:      32,
		Staleness:      core.Staleness{StaleAfterSec: 30, ExpireAfterSec: 150},
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	tel := stel()
	evBefore := tel.evictions.Value()
	slowBefore := tel.slowDisconnects.Value()

	stats := RunLoad(context.Background(), LoadConfig{
		Addr:            s.Addr().String(),
		Vehicles:        40,
		Rounds:          12,
		MarksPerRound:   6,
		Width:           8,
		QueriesPerRound: 2,
		Seed:            7,
		Link: link.Params{
			Seed: 7, Loss: 0.1, BurstEnter: 0.02, BurstExit: 0.3,
			Reorder: 0.1, Duplicate: 0.05, Corrupt: 0.05,
		},
		MalformedEvery: 9,
		StallEvery:     10,
		ResetEvery:     7,
	})
	s.Shutdown()

	if stats.Connected == 0 || stats.QueriesSent == 0 {
		t.Fatalf("load generator did not run: %+v", stats)
	}
	answered := stats.ResultsOK + stats.Unresolved + stats.Shed + stats.UnknownVeh
	if answered+stats.Refused == 0 {
		t.Fatalf("no query was ever answered or refused: %+v", stats)
	}
	if stats.MalformedSent == 0 || stats.Resets == 0 {
		t.Fatalf("fault injection did not engage: %+v", stats)
	}
	if tel.malformed.Value() == 0 {
		t.Fatal("server never counted a malformed message under corruption")
	}
	if tel.evictions.Value() == evBefore {
		t.Fatal("memory budget never evicted under a 40-vehicle fleet")
	}
	if tel.slowDisconnects.Value() == slowBefore {
		t.Fatal("stalled clients were never disconnected")
	}
}
