package serve

import (
	"math/rand"
	"net"
	"testing"

	"rups/internal/core"
	"rups/internal/obs"
	"rups/internal/trajectory"
	"rups/internal/v2v"
)

// testConvoy builds n vehicles driving the same road with planted
// alignment (vehicle vi trails the leader by vi*gap metres), mirroring the
// engine test convoy so pair queries resolve to real distances. Mark
// timestamps end near t=1249, so tests run their clocks around 1250.
func testConvoy(seed int64, n, length, gap, width int) []*trajectory.Aware {
	rng := rand.New(rand.NewSource(seed))
	world := make([][]float64, width)
	span := length + (n-1)*gap
	for ch := range world {
		world[ch] = make([]float64, span)
		v := -80 + 20*rng.NormFloat64()
		for i := range world[ch] {
			v += 2 * rng.NormFloat64()
			if v < -110 {
				v = -110
			}
			if v > -45 {
				v = -45
			}
			world[ch][i] = v
		}
	}
	out := make([]*trajectory.Aware, n)
	for vi := 0; vi < n; vi++ {
		offset := (n - 1 - vi) * gap
		g := trajectory.Geo{Marks: make([]trajectory.GeoMark, length)}
		for i := range g.Marks {
			g.Marks[i] = trajectory.GeoMark{T: 1000 - float64(vi) + float64(i)}
		}
		a := trajectory.NewAwareWidth(g, width)
		vrng := rand.New(rand.NewSource(seed + int64(vi) + 1))
		for ch := 0; ch < width; ch++ {
			for i := 0; i < length; i++ {
				a.SetPower(ch, i, world[ch][offset+i]+1.0*vrng.NormFloat64())
			}
		}
		out[vi] = a
	}
	return out
}

func testParams() core.Params {
	p := core.DefaultParams()
	p.WindowChannels = 40
	return p
}

// streamVehicle pushes a whole trajectory through one client connection
// and blocks until the server's cumulative ack covers it.
func streamVehicle(t *testing.T, cl *Client, vid, epoch uint32, traj *trajectory.Aware) {
	t.Helper()
	if err := cl.Hello(vid, epoch, traj.Width()); err != nil {
		t.Fatalf("hello v%d: %v", vid, err)
	}
	d, err := v2v.MakeDelta(traj, 0)
	if err != nil {
		t.Fatalf("delta v%d: %v", vid, err)
	}
	if err := cl.SendDelta(d, epoch); err != nil {
		t.Fatalf("send v%d: %v", vid, err)
	}
	for {
		m, err := cl.ReadMsg()
		if err != nil {
			t.Fatalf("read ack v%d: %v", vid, err)
		}
		if m.Kind == MsgAck && m.AckEpoch == epoch && m.AckCum >= traj.Len() {
			return
		}
	}
}

// readResult skips interleaved acks until a RESULT (or REFUSE) arrives.
func readResult(t *testing.T, cl *Client) Msg {
	t.Helper()
	for {
		m, err := cl.ReadMsg()
		if err != nil {
			t.Fatalf("read result: %v", err)
		}
		if m.Kind == MsgResult || m.Kind == MsgRefuse {
			return m
		}
	}
}

// TestServeStreamAndQuery is the service's end-to-end happy path: two
// vehicles stream their trajectories over TCP, a query for their relative
// distance resolves, and the answer matches the sequential core.Resolve
// oracle exactly — the wire, the receiver reconstruction, and the engine
// must not perturb the estimate.
func TestServeStreamAndQuery(t *testing.T) {
	trajs := testConvoy(11, 2, 250, 20, 64)
	sim := NewSimClock(1250)
	s := New(Config{
		Addr: "127.0.0.1:0", Clock: sim, Workers: 2,
		Params: testParams(), Staleness: core.Staleness{StaleAfterSec: 300, ExpireAfterSec: 600},
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	c1, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	streamVehicle(t, c1, 1, 1, trajs[0])
	streamVehicle(t, c2, 2, 1, trajs[1])

	if err := c1.Query(7, 1, 2, 0); err != nil {
		t.Fatal(err)
	}
	m := readResult(t, c1)
	if m.Kind != MsgResult || m.QID != 7 {
		t.Fatalf("got %+v, want RESULT qid 7", m)
	}
	if m.Status != StatusOK {
		t.Fatalf("status %d, want OK", m.Status)
	}
	want, ok := core.Resolve(trajs[0], trajs[1], testParams())
	if !ok {
		t.Fatal("oracle did not resolve")
	}
	if m.Distance != want.Distance {
		t.Fatalf("distance %v diverged from oracle %v", m.Distance, want.Distance)
	}

	// A query touching a vehicle nobody streamed answers explicitly.
	if err := c1.Query(8, 1, 99, 0); err != nil {
		t.Fatal(err)
	}
	if m := readResult(t, c1); m.Status != StatusUnknownVehicle {
		t.Fatalf("got %+v, want unknown-vehicle", m)
	}
}

// TestQueueFullRefusal: with the resolver deliberately not running, the
// bounded admission queue fills and the next query is refused with an
// explicit queue-full REFUSE carrying the retry hint — never silently
// dropped, never queued unboundedly.
func TestQueueFullRefusal(t *testing.T) {
	sim := NewSimClock(100)
	s := New(Config{Clock: sim, QueueCap: 2, RetryAfterSec: 0.25})
	// No Start: the queue has no consumer, making overflow deterministic.
	srv, cli := net.Pipe()
	defer cli.Close()
	c := &conn{s: s, nc: srv, outbox: make(chan []byte, 8)}
	s.connWG.Add(1)
	go c.writeLoop()
	defer c.closeSend()

	peer := NewClient(cli)
	for i := 0; i < 2; i++ {
		s.admitQuery(&query{qid: uint32(i), c: c})
	}
	s.admitQuery(&query{qid: 42, c: c})
	m, err := peer.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != MsgRefuse || m.QID != 42 || m.Reason != RefuseQueueFull {
		t.Fatalf("got %+v, want queue-full refusal of qid 42", m)
	}
	if m.RetryAfter != 0.25 {
		t.Fatalf("retry-after %v, want 0.25", m.RetryAfter)
	}

	// The per-connection outstanding bound refuses the same way.
	c.outstanding.Store(int64(s.cfg.PerConnQueries))
	s.admitQuery(&query{qid: 43, c: c})
	if m, _ := peer.ReadMsg(); m.Kind != MsgRefuse || m.QID != 43 || m.Reason != RefuseQueueFull {
		t.Fatalf("got %+v, want per-conn refusal of qid 43", m)
	}
}

// TestDeadlineShedThroughServer: a query admitted with a live deadline
// that expires before the resolver reaches it is answered StatusShed —
// the deadline propagated through the engine sheds the work unrun.
func TestDeadlineShedThroughServer(t *testing.T) {
	sim := NewSimClock(1000)
	s := New(Config{Clock: sim, Params: testParams()})
	defer s.eng.Close()
	s.tab.attach(1, 8, nil, sim.Now())
	s.tab.attach(2, 8, nil, sim.Now())

	srv, cli := net.Pipe()
	defer cli.Close()
	c := &conn{s: s, nc: srv, outbox: make(chan []byte, 8)}
	s.connWG.Add(1)
	go c.writeLoop()
	defer c.closeSend()

	q := &query{qid: 5, a: 1, b: 2, deadline: sim.Now() + 1, admitted: sim.Now(), c: c}
	c.outstanding.Add(1)
	sim.Advance(10) // the deadline passes while the query waits
	s.resolveBatch([]*query{q})

	peer := NewClient(cli)
	m, err := peer.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != MsgResult || m.QID != 5 || m.Status != StatusShed {
		t.Fatalf("got %+v, want shed result for qid 5", m)
	}
	if c.outstanding.Load() != 0 {
		t.Fatalf("outstanding %d, want 0", c.outstanding.Load())
	}
}

// TestRateLimitRefusal: the per-connection token bucket refuses the query
// that exceeds the burst and recovers after the clock refills it.
func TestRateLimitRefusal(t *testing.T) {
	sim := NewSimClock(50)
	s := New(Config{Clock: sim, RatePerSec: 1, RateBurst: 2})
	c := &conn{s: s, tokens: 2, last: sim.Now()}
	if !c.allow(sim.Now()) || !c.allow(sim.Now()) {
		t.Fatal("burst tokens refused")
	}
	if c.allow(sim.Now()) {
		t.Fatal("third immediate query allowed past the burst")
	}
	sim.Advance(1.5)
	if !c.allow(sim.Now()) {
		t.Fatal("refilled token refused")
	}
	if c.allow(sim.Now()) {
		t.Fatal("fractional token allowed")
	}
}

// TestSlowReaderDisconnect: a client that stops reading cannot wedge the
// server — once its outbox fills, the connection is aborted and the slow-
// disconnect counter moves. net.Pipe has no kernel buffering, so the
// writer blocks on the first unread message and the overflow is exact: one
// message in the writer's hands, OutboxCap in the box, the next send
// fails.
func TestSlowReaderDisconnect(t *testing.T) {
	obs.Enable(obs.NewRegistry())
	defer obs.Disable()

	sim := NewSimClock(0)
	s := New(Config{Clock: sim, OutboxCap: 1})
	defer s.eng.Close()
	srv, cli := net.Pipe()
	defer cli.Close()
	c := &conn{s: s, nc: srv, outbox: make(chan []byte, s.cfg.OutboxCap)}
	s.connWG.Add(1)
	go c.writeLoop()

	before := stel().slowDisconnects.Value()
	dropped := false
	for i := 0; i < 3; i++ { // 1 in-flight + 1 buffered: the 3rd must drop
		if !c.send(resultFrame(uint32(i), StatusOK, false, 1, 0)) {
			dropped = true
			break
		}
	}
	if !dropped {
		t.Fatal("sends into a dead client never failed")
	}
	if got := stel().slowDisconnects.Value(); got != before+1 {
		t.Fatalf("slow disconnects %d, want %d", got, before+1)
	}
	// The connection is dead: subsequent sends refuse immediately.
	if c.send(drainFrame()) {
		t.Fatal("send succeeded after slow-reader abort")
	}
	s.connWG.Wait()
}

// TestEvictionUnderMemoryBudget: resident snapshots past the byte budget
// evict LRU-first, the owning connection is kicked, and the metrics
// account for every eviction.
func TestEvictionUnderMemoryBudget(t *testing.T) {
	obs.Enable(obs.NewRegistry())
	defer obs.Disable()

	width := 8
	perMark := int64(16 + 8*width)
	tab := newVTable(25*perMark, core.Staleness{}) // room for ~25 marks
	sim := NewSimClock(10)
	tel := stel()
	evBefore := tel.evictions.Value()

	kicked := make(map[uint32]bool)
	feed := func(vid uint32, marks int) {
		e, _ := tab.attach(vid, width, func() { kicked[vid] = true }, sim.Now())
		g := trajectory.Geo{Marks: make([]trajectory.GeoMark, marks)}
		for i := range g.Marks {
			g.Marks[i] = trajectory.GeoMark{T: float64(i)}
		}
		d, err := v2v.MakeDelta(trajectory.NewAwareWidth(g, width), 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, fr := range v2v.DataFrames(d, obs.TraceRef{}, 1) {
			e.mu.Lock()
			e.rx.Offer(fr)
			e.mu.Unlock()
		}
		tab.charge(e, sim.Now())
		sim.Advance(1)
	}
	feed(1, 10)
	feed(2, 10)
	if n, _ := tab.stats(); n != 2 {
		t.Fatalf("resident %d, want 2", n)
	}
	feed(3, 10) // 30 marks > budget: vehicle 1 (coldest) must go
	if n, _ := tab.stats(); n != 2 {
		t.Fatalf("resident %d after eviction, want 2", n)
	}
	if tab.get(1, sim.Now()) != nil {
		t.Fatal("vehicle 1 still resident, want LRU-evicted")
	}
	if !kicked[1] || kicked[2] || kicked[3] {
		t.Fatalf("kicks %+v, want exactly vehicle 1", kicked)
	}
	if got := tel.evictions.Value(); got != evBefore+1 {
		t.Fatalf("evictions %d, want %d", got, evBefore+1)
	}

	// Staleness expiry sweeps even with room to spare.
	expBefore := tel.evictionsExpiry.Value()
	tab.pol = core.Staleness{ExpireAfterSec: 5}
	sim.Advance(100)
	if n := tab.sweepExpired(sim.Now()); n != 2 {
		t.Fatalf("swept %d, want 2", n)
	}
	if got := tel.evictionsExpiry.Value(); got != expBefore+2 {
		t.Fatalf("expiry evictions %d, want %d", got, expBefore+2)
	}
	if n, b := tab.stats(); n != 0 || b != 0 {
		t.Fatalf("resident %d/%dB after sweep, want empty", n, b)
	}
}

// TestEpochRestartThroughServer: a vehicle that reconnects under a bumped
// epoch resyncs from scratch — the server discards the dead incarnation's
// reconstruction instead of wedging on its acks.
func TestEpochRestartThroughServer(t *testing.T) {
	trajs := testConvoy(13, 2, 120, 20, 16)
	sim := NewSimClock(1250)
	s := New(Config{Addr: "127.0.0.1:0", Clock: sim, Params: testParams()})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	c1, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	streamVehicle(t, c1, 1, 1, trajs[0])
	c1.Close() // abrupt restart, no goodbye

	c2, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	streamVehicle(t, c2, 1, 2, trajs[1]) // same vehicle, new epoch, new life

	e := s.tab.get(1, sim.Now())
	if e == nil {
		t.Fatal("vehicle 1 not resident")
	}
	e.mu.Lock()
	resets, epoch, n := e.rx.Resets(), e.rx.Epoch(), e.rx.Copy().Len()
	e.mu.Unlock()
	if resets != 1 || epoch != 2 || n != trajs[1].Len() {
		t.Fatalf("resets=%d epoch=%d len=%d, want 1/2/%d", resets, epoch, n, trajs[1].Len())
	}
}

// TestMalformedInputsDoNotKillTheServer: garbage messages, corrupt
// control frames, and oversized length prefixes are counted and the
// server stays up; the oversize case disconnects only the offender.
func TestMalformedInputsDoNotKillTheServer(t *testing.T) {
	obs.Enable(obs.NewRegistry())
	defer obs.Disable()

	sim := NewSimClock(1250)
	s := New(Config{Addr: "127.0.0.1:0", Clock: sim, Params: testParams()})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	tel := stel()
	before := tel.malformed.Value()

	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Garbage bytes under valid framing: dropped, counted, conn survives.
	if err := cl.SendRaw([]byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// A corrupted QUERY (CRC broken): same.
	q := queryFrame(1, 1, 2, 0)
	q[len(q)-1] ^= 0xFF
	if err := cl.SendRaw(q); err != nil {
		t.Fatal(err)
	}
	// The connection still works after both.
	if err := cl.Query(9, 1, 2, 0); err != nil {
		t.Fatal(err)
	}
	if m := readResult(t, cl); m.QID != 9 || m.Status != StatusUnknownVehicle {
		t.Fatalf("got %+v, want unknown-vehicle answer for qid 9", m)
	}
	// The reader goroutine handles messages in order, so the answered
	// query proves both bad messages were already processed and counted.
	if got := tel.malformed.Value(); got < before+2 {
		t.Fatalf("malformed counter %d, want at least %d", got, before+2)
	}

	// An oversized length prefix is a framing violation: that connection
	// dies, the server does not.
	evil, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer evil.Close()
	if err := evil.SendRaw(make([]byte, maxMsgLen+1)); err != nil {
		t.Fatal(err)
	}
	if _, err := evil.ReadMsg(); err == nil {
		t.Fatal("oversized message did not disconnect the offender")
	}
	cl2, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("server dead after framing violation: %v", err)
	}
	cl2.Close()
}
