package serve

import (
	"context"
	"encoding/binary"
	"sync"
	"sync/atomic"

	"rups/internal/link"
	"rups/internal/noise"
	"rups/internal/obs"
	"rups/internal/trajectory"
	"rups/internal/v2v"
)

// LoadConfig drives RunLoad, the fault-injecting load generator behind
// cmd/rups-load and the soak job. Each synthetic vehicle is one TCP
// connection streaming a deterministic convoy trajectory and issuing pair
// queries; the fault knobs push the server into its refusal paths on
// purpose — the generator's job is to prove the server refuses rather
// than OOMs, deadlocks, or panics.
type LoadConfig struct {
	// Addr is the server address.
	Addr string
	// Vehicles is the fleet size; vehicle IDs are 1..Vehicles.
	Vehicles int
	// Rounds is how many stream/query rounds each vehicle runs.
	Rounds int
	// MarksPerRound is trajectory growth per round (default 4).
	MarksPerRound int
	// Width is the trajectory channel width (default 8 — narrow keeps the
	// soak cheap; the protocol does not care).
	Width int
	// QueriesPerRound is pair queries per vehicle per round (default 1).
	QueriesPerRound int
	// DeadlineRel is the per-query relative deadline in seconds; 0 sends
	// undeadlined queries.
	DeadlineRel float64
	// Seed makes the whole run — trajectories, query targets, fault
	// rolls — replayable.
	Seed uint64
	// Link is the fault model applied to every outbound DATA frame (loss,
	// bursts, reordering, duplication, corruption). The zero value is a
	// clean channel.
	Link link.Params
	// MalformedEvery injects one garbage message per N sent messages per
	// vehicle (0 = off).
	MalformedEvery int
	// StallEvery makes every Nth vehicle a stalled client that never
	// reads server responses, exercising the slow-reader disconnect
	// (0 = off).
	StallEvery int
	// ResetEvery makes every Nth vehicle abruptly close its connection
	// mid-run and reconnect under a bumped epoch, exercising the restart
	// handshake (0 = off).
	ResetEvery int
	// Concurrency bounds simultaneously active vehicles (default
	// min(Vehicles, 64)).
	Concurrency int
	// Clock stamps trajectory marks; it must share the server's time
	// domain (default WallClock).
	Clock Clock
	// PaceSec spaces a vehicle's rounds on the clock; 0 runs flat out
	// (the overload case).
	PaceSec float64
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.MarksPerRound == 0 {
		c.MarksPerRound = 4
	}
	if c.Width == 0 {
		c.Width = 8
	}
	if c.QueriesPerRound == 0 {
		c.QueriesPerRound = 1
	}
	if c.Concurrency == 0 {
		c.Concurrency = 64
		if c.Vehicles < c.Concurrency {
			c.Concurrency = c.Vehicles
		}
	}
	if c.Clock == nil {
		c.Clock = WallClock{}
	}
	return c
}

// LoadStats aggregates one run's outcomes across the fleet.
type LoadStats struct {
	Connected  uint64 // successful dials (reconnects included)
	ConnErrors uint64 // dial failures and writes on dead connections
	Disconnect uint64 // connections the server closed on us mid-run
	Resets     uint64 // deliberate mid-run restarts performed

	QueriesSent   uint64
	ResultsOK     uint64
	ResultsStale  uint64
	Unresolved    uint64
	Shed          uint64
	UnknownVeh    uint64
	Refused       uint64 // by reason, summed; per-reason below
	RefusedQueue  uint64
	RefusedRate   uint64
	RefusedDrain  uint64
	Drains        uint64 // DRAIN notices observed
	AcksSeen      uint64
	MalformedSent uint64
}

type loadCounters struct {
	connected, connErrors, disconnect, resets        atomic.Uint64
	queriesSent, resultsOK, resultsStale             atomic.Uint64
	unresolved, shed, unknownVeh                     atomic.Uint64
	refused, refusedQueue, refusedRate, refusedDrain atomic.Uint64
	drains, acksSeen, malformedSent                  atomic.Uint64
}

func (c *loadCounters) snapshot() LoadStats {
	return LoadStats{
		Connected: c.connected.Load(), ConnErrors: c.connErrors.Load(),
		Disconnect: c.disconnect.Load(), Resets: c.resets.Load(),
		QueriesSent: c.queriesSent.Load(), ResultsOK: c.resultsOK.Load(),
		ResultsStale: c.resultsStale.Load(), Unresolved: c.unresolved.Load(),
		Shed: c.shed.Load(), UnknownVeh: c.unknownVeh.Load(),
		Refused: c.refused.Load(), RefusedQueue: c.refusedQueue.Load(),
		RefusedRate: c.refusedRate.Load(), RefusedDrain: c.refusedDrain.Load(),
		Drains: c.drains.Load(), AcksSeen: c.acksSeen.Load(),
		MalformedSent: c.malformedSent.Load(),
	}
}

// RunLoad replays the configured fleet against the server and blocks
// until every vehicle finishes its rounds, the server drains, or ctx is
// cancelled. The run is deterministic per Seed up to network and
// scheduling timing; all stochastic choices (trajectory shape, query
// targets, fault rolls) derive from it.
func RunLoad(ctx context.Context, cfg LoadConfig) LoadStats {
	cfg = cfg.withDefaults()
	var ctr loadCounters
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	for vid := 1; vid <= cfg.Vehicles; vid++ {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			wg.Wait()
			return ctr.snapshot()
		}
		wg.Add(1)
		go func(vid int) {
			defer func() { <-sem; wg.Done() }()
			runVehicle(ctx, cfg, uint32(vid), &ctr)
		}(vid)
	}
	wg.Wait()
	return ctr.snapshot()
}

// convoyField is the shared RSSI landscape every synthetic vehicle drives
// through: vehicle vid's position at mark m is offset by a per-vehicle
// gap, so pairs genuinely align and clean-phase queries resolve to real
// distances instead of coincidences.
func convoyMark(cfg LoadConfig, vid uint32, m int, now float64) (trajectory.GeoMark, []float64) {
	field := noise.Field2D{Seed: cfg.Seed, Scale: 40}
	pos := float64(m) + 15*float64(vid)
	row := make([]float64, cfg.Width)
	for ch := range row {
		row[ch] = -80 + 25*field.At(pos, float64(ch)*7)
	}
	theta := 0.3 * noise.Gaussian(cfg.Seed, uint64(vid), uint64(m), 0xA11)
	return trajectory.GeoMark{Theta: theta, T: now}, row
}

// runVehicle drives one synthetic vehicle through its rounds, reconnecting
// once with a bumped epoch when it is a designated resetter.
func runVehicle(ctx context.Context, cfg LoadConfig, vid uint32, ctr *loadCounters) {
	traj := trajectory.NewAwareWidth(trajectory.Geo{}, cfg.Width)
	epoch := uint32(1)
	stalled := cfg.StallEvery > 0 && int(vid)%cfg.StallEvery == 0
	resetAt := -1
	if cfg.ResetEvery > 0 && int(vid)%cfg.ResetEvery == 0 {
		resetAt = cfg.Rounds / 2
	}
	round := 0
	for {
		again, next := vehicleSession(ctx, cfg, vid, epoch, traj, stalled, resetAt, round, ctr)
		if !again {
			return
		}
		round, resetAt = next, -1
		epoch++
		ctr.resets.Add(1)
	}
}

// vehicleSession runs one connection's lifetime. Returns (true, round) if
// the vehicle deliberately reset and should reconnect from round.
func vehicleSession(ctx context.Context, cfg LoadConfig, vid, epoch uint32,
	traj *trajectory.Aware, stalled bool, resetAt, startRound int, ctr *loadCounters) (bool, int) {
	cl, err := Dial(cfg.Addr)
	if err != nil {
		ctr.connErrors.Add(1)
		return false, 0
	}
	ctr.connected.Add(1)
	defer cl.Close()
	if err := cl.Hello(vid, epoch, cfg.Width); err != nil {
		ctr.connErrors.Add(1)
		return false, 0
	}

	// acked tracks the server's cumulative ack under this epoch; the
	// sender retransmits everything above it each round (a crude but
	// sufficient go-back-all).
	var acked atomic.Int64
	// responded counts RESULT/REFUSE messages seen; the session waits at
	// the end until it matches the queries that actually reached the wire,
	// so outcomes are counted before the connection closes.
	var responded atomic.Int64
	notify := make(chan struct{}, 1)
	drained := make(chan struct{})
	var drainOnce sync.Once
	readerDone := make(chan struct{})
	if stalled {
		//lint:ignore chanclose the stalled branch and the reader goroutine are mutually exclusive; exactly one site ever closes
		close(readerDone)
	} else {
		go func() {
			//lint:ignore chanclose the stalled branch and the reader goroutine are mutually exclusive; exactly one site ever closes
			defer close(readerDone)
			for {
				m, err := cl.ReadMsg()
				if err != nil {
					return
				}
				switch m.Kind {
				case MsgAck:
					ctr.acksSeen.Add(1)
					if m.AckEpoch == epoch {
						acked.Store(int64(m.AckCum))
					}
				case MsgResult:
					switch m.Status {
					case StatusOK:
						ctr.resultsOK.Add(1)
						if m.Stale {
							ctr.resultsStale.Add(1)
						}
					case StatusShed:
						ctr.shed.Add(1)
					case StatusUnknownVehicle:
						ctr.unknownVeh.Add(1)
					default:
						ctr.unresolved.Add(1)
					}
					responded.Add(1)
					select {
					case notify <- struct{}{}:
					default:
					}
				case MsgRefuse:
					ctr.refused.Add(1)
					switch m.Reason {
					case RefuseQueueFull:
						ctr.refusedQueue.Add(1)
					case RefuseRate:
						ctr.refusedRate.Add(1)
					case RefuseDraining:
						ctr.refusedDrain.Add(1)
					}
					responded.Add(1)
					select {
					case notify <- struct{}{}:
					default:
					}
				case MsgDrain:
					ctr.drains.Add(1)
					drainOnce.Do(func() { close(drained) })
				}
			}
		}()
	}

	// Epoch restarts resync from mark 0: everything resident at the
	// server belongs to the dead incarnation.
	if epoch > 1 {
		acked.Store(0)
	} else {
		acked.Store(int64(traj.Len()))
	}

	ch := link.New(cfg.Link, uint64(vid))
	msgN, qid := 0, uint32(0)
	// expected counts queries that actually reached the wire — the server
	// owes each exactly one RESULT or REFUSE (or a disconnect).
	expected := int64(0)
	var tick <-chan struct{}
	stopTick := func() {}
	if cfg.PaceSec > 0 {
		tick, stopTick = cfg.Clock.Tick(cfg.PaceSec)
	}
	defer stopTick()

	// sendRaw writes b, occasionally substituting garbage when malformed
	// injection is on. Returns (delivered, connAlive): delivered reports
	// whether b itself went out (false when a garbage message took its
	// slot), which the query path uses to know a response is owed.
	sendRaw := func(b []byte) (bool, bool) {
		msgN++
		if cfg.MalformedEvery > 0 && msgN%cfg.MalformedEvery == 0 {
			g := make([]byte, 16)
			binary.LittleEndian.PutUint64(g, noise.Hash(cfg.Seed, uint64(vid), uint64(msgN)))
			binary.LittleEndian.PutUint64(g[8:], noise.Hash(cfg.Seed, uint64(msgN), uint64(vid)))
			ctr.malformedSent.Add(1)
			if cl.SendRaw(g) != nil {
				ctr.disconnect.Add(1)
				return false, false
			}
			return false, true
		}
		if cl.SendRaw(b) != nil {
			ctr.disconnect.Add(1)
			return false, false
		}
		return true, true
	}

	for round := startRound; round < cfg.Rounds; round++ {
		select {
		case <-ctx.Done():
			return false, 0
		case <-drained:
			return false, 0
		case <-readerDone:
			if !stalled {
				// Server closed on us (slow-reader kick, eviction kick,
				// or shutdown teardown).
				ctr.disconnect.Add(1)
				return false, 0
			}
		default:
		}
		if tick != nil {
			select {
			case <-tick:
			case <-ctx.Done():
				return false, 0
			}
		}
		now := cfg.Clock.Now()
		for m := 0; m < cfg.MarksPerRound; m++ {
			mark, row := convoyMark(cfg, vid, traj.Len(), now)
			traj.Append(mark, row)
		}
		// Stream the unacked suffix through the faulty link; deliverable
		// frames (delayed, reordered, possibly corrupted) go to the wire.
		from := int(acked.Load())
		if from < traj.Len() {
			if d, err := v2v.MakeDelta(traj, from); err == nil {
				for _, fr := range v2v.DataFrames(d, obs.TraceRef{}, epoch) {
					//lint:ignore errflow oversize frames cannot happen below the MTU
					_ = ch.Send(round, fr)
				}
			}
		}
		for _, fr := range ch.Receive(round) {
			if _, ok := sendRaw(fr); !ok {
				return false, 0
			}
		}
		for q := 0; q < cfg.QueriesPerRound; q++ {
			peer := uint32(noise.Hash(cfg.Seed, uint64(vid), uint64(round), uint64(q))%uint64(cfg.Vehicles)) + 1
			if peer == vid {
				peer = peer%uint32(cfg.Vehicles) + 1
			}
			qid++
			ctr.queriesSent.Add(1)
			delivered, ok := sendRaw(queryFrame(qid, vid, peer, cfg.DeadlineRel))
			if !ok {
				return false, 0
			}
			if delivered {
				expected++
			}
		}
		if resetAt >= 0 && round >= resetAt {
			// Abrupt restart: no goodbye, a fresh connection, a bumped
			// epoch. The server must discard the dead incarnation.
			return true, round + 1
		}
	}
	// Drain link-delayed frames so the final marks usually land.
	for r := cfg.Rounds; r < cfg.Rounds+4; r++ {
		for _, fr := range ch.Receive(r) {
			if _, ok := sendRaw(fr); !ok {
				return false, 0
			}
		}
	}
	// Wait for every owed response before closing, else the outcomes of
	// this session's queries are lost to the teardown race. The server
	// answers every query it parses (RESULT or REFUSE), so this terminates:
	// either the count arrives or the server closes on us (readerDone).
	if !stalled {
		for responded.Load() < expected {
			select {
			case <-notify:
			case <-readerDone:
				return false, 0
			case <-ctx.Done():
				return false, 0
			}
		}
	}
	return false, 0
}
