package serve

import (
	"container/list"
	"sync"

	"rups/internal/core"
	"rups/internal/obs/flight"
	"rups/internal/trajectory"
	"rups/internal/v2v"
)

// vehicleEntry is one vehicle's resident context: the v2v receiver
// reconstructing its trajectory from streamed deltas, plus the bookkeeping
// the eviction ladder needs. The entry outlives its connection — a vehicle
// that disconnects keeps its context resident (queries against it still
// answer) until memory pressure or staleness expires it.
type vehicleEntry struct {
	// mu serializes frame application (Receiver is not concurrency-safe)
	// with query-time snapshotting.
	mu sync.Mutex
	rx *v2v.Receiver

	id uint32
	// lastTouch is the server-clock time of the last applied frame or
	// query touch; drives LRU ordering and the staleness expiry sweep.
	lastTouch float64
	// bytes is the entry's resident-size estimate charged against the
	// table budget, refreshed after every applied frame.
	bytes int64
	elem  *list.Element
	// kick disconnects the connection currently feeding this vehicle, set
	// while one is attached. Called when the entry is evicted live: the
	// client reconnects and restreams under a fresh epoch, which is the
	// only way a re-admitted vehicle can resync (a same-epoch resume would
	// wedge on acks for marks the server no longer holds). Must not take
	// table.mu. kickGen identifies the attaching connection so a stale
	// conn's detach cannot clear a hook a later conn installed.
	kick    func()
	kickGen uint64
}

// snapshot returns an immutable copy-on-write snapshot of the vehicle's
// reconstruction, safe to resolve against while frames keep applying.
func (e *vehicleEntry) snapshot() *trajectory.Aware {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rx.Copy().Snapshot()
}

// residentBytes estimates an entry's footprint: per mark, the GeoMark
// (theta+t) plus one float64 power cell per channel. Deliberately an
// estimate — the budget bounds growth, it is not an allocator.
func residentBytes(marks, width int) int64 {
	return int64(marks) * int64(16+8*width)
}

// vtable is the resident-vehicle table: an LRU over vehicleEntry under a
// hard byte budget, with a staleness rung on top. Two forces evict:
//
//   - memory pressure: when resident bytes exceed the budget, the
//     least-recently-touched vehicles are dropped until back under;
//   - expiry: a vehicle whose context has aged past the staleness
//     policy's expiry bound is dropped by the sweep even with room to
//     spare — the engine would refuse to resolve against it anyway, so
//     keeping it buys nothing.
type vtable struct {
	mu      sync.Mutex
	byID    map[uint32]*vehicleEntry
	lru     *list.List // front = most recently touched
	bytes   int64
	budget  int64 // <= 0 means unbounded
	pol     core.Staleness
	nextGen uint64
}

func newVTable(budget int64, pol core.Staleness) *vtable {
	return &vtable{
		byID:   make(map[uint32]*vehicleEntry),
		lru:    list.New(),
		budget: budget,
		pol:    pol,
	}
}

// attach returns the entry for id, creating it if absent, installs kick as
// the owning connection's disconnect hook, and touches the entry. The
// returned generation token identifies this attachment for detach. A
// second connection HELLOing the same vehicle steals the entry; the
// previous connection's hook is dropped (its frames now race the thief's,
// but both feed the same receiver under the entry lock, and epochs
// arbitrate).
func (t *vtable) attach(id uint32, width int, kick func(), now float64) (*vehicleEntry, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.byID[id]
	if e == nil {
		e = &vehicleEntry{id: id, rx: v2v.NewReceiver(width)}
		e.elem = t.lru.PushFront(e)
		t.byID[id] = e
		stel().residentVeh.Set(int64(len(t.byID)))
	} else {
		t.lru.MoveToFront(e.elem)
	}
	t.nextGen++
	e.kick = kick
	e.kickGen = t.nextGen
	e.lastTouch = now
	return e, t.nextGen
}

// detach drops the connection hook when the conn owning id closes; the
// entry and its context stay resident. The generation token keeps a stale
// conn from clearing a hook a thief installed after stealing the vehicle.
func (t *vtable) detach(id uint32, gen uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.byID[id]; e != nil && e.kickGen == gen {
		e.kick = nil
	}
}

// get returns the entry for id, touching it, or nil when not resident.
func (t *vtable) get(id uint32, now float64) *vehicleEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.byID[id]
	if e != nil {
		t.lru.MoveToFront(e.elem)
		e.lastTouch = now
	}
	return e
}

// charge refreshes the entry's byte estimate after frames were applied,
// touches it, and evicts colder vehicles if the budget is now exceeded.
func (t *vtable) charge(e *vehicleEntry, now float64) {
	e.mu.Lock()
	nb := residentBytes(e.rx.Copy().Len(), e.rx.Copy().Width())
	e.mu.Unlock()
	t.mu.Lock()
	t.bytes += nb - e.bytes
	e.bytes = nb
	e.lastTouch = now
	t.lru.MoveToFront(e.elem)
	t.enforceLocked(now)
	tel := stel()
	tel.residentBytes.Set(t.bytes)
	tel.residentVeh.Set(int64(len(t.byID)))
	t.mu.Unlock()
}

// enforceLocked evicts from the LRU tail until resident bytes fit the
// budget. The entry being charged may itself be evicted if it alone
// exceeds the budget and nothing colder remains.
func (t *vtable) enforceLocked(now float64) {
	if t.budget <= 0 {
		return
	}
	fl := flight.Active()
	for t.bytes > t.budget && t.lru.Len() > 0 {
		e := t.lru.Back().Value.(*vehicleEntry)
		t.evictLocked(e, now, false, fl)
	}
}

// sweepExpired drops every vehicle whose context age (server clock minus
// last touch) has passed the staleness policy's expiry bound. Returns the
// number evicted.
func (t *vtable) sweepExpired(now float64) int {
	if t.pol.ExpireAfterSec <= 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	fl := flight.Active()
	for el := t.lru.Back(); el != nil; {
		e := el.Value.(*vehicleEntry)
		el = el.Prev()
		if now-e.lastTouch > t.pol.ExpireAfterSec {
			t.evictLocked(e, now, true, fl)
			n++
		}
	}
	if n > 0 {
		tel := stel()
		tel.residentBytes.Set(t.bytes)
		tel.residentVeh.Set(int64(len(t.byID)))
	}
	return n
}

// evictLocked removes one entry: uncharges its bytes, kicks any live
// connection (the client reconnects and restreams under a fresh epoch),
// and records the eviction in metrics and the flight ring. The caller
// passes the ring handle so eviction loops look it up once.
func (t *vtable) evictLocked(e *vehicleEntry, now float64, expiry bool, fl *flight.Ring) {
	delete(t.byID, e.id)
	t.lru.Remove(e.elem)
	t.bytes -= e.bytes
	tel := stel()
	tel.evictions.Inc()
	v2 := int64(0)
	if expiry {
		tel.evictionsExpiry.Inc()
		v2 = 1
	}
	if fl != nil {
		fl.Emit(flight.Event{
			// The event's A field is 31-bit; masking keeps real-world
			// vehicle IDs intact and only folds the sign bit on synthetic
			// extremes.
			T: now, Kind: flight.KindEvicted, A: int32(e.id & 0x7fffffff),
			V1: e.bytes, V2: v2,
		})
	}
	if e.kick != nil {
		e.kick()
		e.kick = nil
	}
}

// stats returns resident vehicle count and bytes (for drain snapshots and
// tests).
func (t *vtable) stats() (vehicles int, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID), t.bytes
}
