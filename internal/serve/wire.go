package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
)

// The service's wire protocol over TCP.
//
// The stream is a sequence of length-prefixed messages: a u32 little-
// endian byte count followed by that many message bytes. Each message is
// either a v2v protocol frame (magic "RL" — trajectory DATA frames from
// the client, cumulative-ack beacons from the server; the codec is reused
// verbatim, see internal/v2v) or one of this package's control frames
// (magic "RS"). Control frames follow the v2v framing conventions: little
// endian, a type byte, a flags byte (reserved, ignored on parse), and an
// IEEE CRC32 trailer over everything before it — TCP already guarantees
// integrity, but the CRC makes a desynchronized or hostile stream fail
// parsing instead of decoding garbage, and keeps the two frame families
// symmetric.
//
// Control frames:
//
//	HELLO  (client → server)  vehicle u32, epoch u32, width u16
//	QUERY  (client → server)  qid u32, a u32, b u32, deadlineRel f64
//	RESULT (server → client)  qid u32, status u8, stale u8, distance f64,
//	                          latency f64
//	REFUSE (server → client)  qid u32 (0 = whole connection), reason u8,
//	                          retryAfter f64 seconds
//	DRAIN  (server → client)  no fields — the server is draining; finish
//	                          reading pending results and reconnect later
//
// QUERY deadlines are *relative* seconds on purpose: an absolute deadline
// would require the client and server clocks to agree, and "fix relative
// distances without shared absolute references" is the whole point of the
// paper. The server anchors the deadline to its own clock at admission.
const (
	ctrlMagic uint16 = 0x5352 // "RS"

	ctrlHello  byte = 1
	ctrlQuery  byte = 2
	ctrlResult byte = 3
	ctrlRefuse byte = 4
	ctrlDrain  byte = 5

	ctrlCRCLen = 4

	helloLen  = 4 + 4 + 4 + 2 + ctrlCRCLen
	queryLen  = 4 + 4 + 4 + 4 + 8 + ctrlCRCLen
	resultLen = 4 + 4 + 1 + 1 + 8 + 8 + ctrlCRCLen
	refuseLen = 4 + 4 + 1 + 8 + ctrlCRCLen
	drainLen  = 4 + ctrlCRCLen

	// maxMsgLen bounds one length-prefixed message. v2v DATA frames are
	// WSM-bounded (~1.4 KB); anything larger is a malformed or hostile
	// stream and disconnects rather than allocates.
	maxMsgLen = 4096
)

// Result statuses.
const (
	// StatusOK: the pair resolved; Distance is the d_r estimate.
	StatusOK byte = 0
	// StatusUnresolved: the pair could not be resolved — no coherent SYN
	// point, or context expired under the staleness policy.
	StatusUnresolved byte = 1
	// StatusShed: the query's deadline expired before resolution started;
	// the work was dropped unrun. Retry with a fresher deadline.
	StatusShed byte = 2
	// StatusUnknownVehicle: one of the queried vehicles has no resident
	// context (never streamed, or evicted).
	StatusUnknownVehicle byte = 3
)

// Refuse reasons.
const (
	// RefuseQueueFull: the engine admission queue (or the per-connection
	// outstanding-query bound) is at capacity.
	RefuseQueueFull byte = 1
	// RefuseRate: the per-client query rate limit is exhausted.
	RefuseRate byte = 2
	// RefuseDraining: the server is draining for shutdown.
	RefuseDraining byte = 3
	// RefuseConnLimit: the server is at its connection cap.
	RefuseConnLimit byte = 4
)

var errBadCtrl = errors.New("serve: malformed control frame")

// writeMsg frames b as one length-prefixed message on w.
func writeMsg(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// readMsg reads one length-prefixed message, rejecting oversized lengths
// before allocating.
func readMsg(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxMsgLen {
		return nil, &framingError{n}
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// sealCtrl appends the CRC trailer.
func sealCtrl(b []byte) []byte {
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// openCtrl validates magic, type, exact length, and CRC, returning the
// frame body (everything before the CRC).
func openCtrl(b []byte, typ byte, wantLen int) ([]byte, error) {
	if len(b) != wantLen || binary.LittleEndian.Uint16(b[0:]) != ctrlMagic || b[2] != typ {
		return nil, errBadCtrl
	}
	body, tail := b[:len(b)-ctrlCRCLen], b[len(b)-ctrlCRCLen:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, errBadCtrl
	}
	return body, nil
}

// isCtrl reports whether b begins with the control-frame magic.
func isCtrl(b []byte) bool {
	return len(b) >= 3 && binary.LittleEndian.Uint16(b[0:]) == ctrlMagic
}

func helloFrame(vehicle, epoch uint32, width uint16) []byte {
	b := make([]byte, 0, helloLen)
	b = binary.LittleEndian.AppendUint16(b, ctrlMagic)
	b = append(b, ctrlHello, 0)
	b = binary.LittleEndian.AppendUint32(b, vehicle)
	b = binary.LittleEndian.AppendUint32(b, epoch)
	b = binary.LittleEndian.AppendUint16(b, width)
	return sealCtrl(b)
}

func parseHello(b []byte) (vehicle, epoch uint32, width uint16, err error) {
	body, err := openCtrl(b, ctrlHello, helloLen)
	if err != nil {
		return 0, 0, 0, err
	}
	return binary.LittleEndian.Uint32(body[4:]),
		binary.LittleEndian.Uint32(body[8:]),
		binary.LittleEndian.Uint16(body[12:]), nil
}

func queryFrame(qid, a, b uint32, deadlineRel float64) []byte {
	fr := make([]byte, 0, queryLen)
	fr = binary.LittleEndian.AppendUint16(fr, ctrlMagic)
	fr = append(fr, ctrlQuery, 0)
	fr = binary.LittleEndian.AppendUint32(fr, qid)
	fr = binary.LittleEndian.AppendUint32(fr, a)
	fr = binary.LittleEndian.AppendUint32(fr, b)
	fr = binary.LittleEndian.AppendUint64(fr, math.Float64bits(deadlineRel))
	return sealCtrl(fr)
}

func parseQuery(b []byte) (qid, va, vb uint32, deadlineRel float64, err error) {
	body, err := openCtrl(b, ctrlQuery, queryLen)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return binary.LittleEndian.Uint32(body[4:]),
		binary.LittleEndian.Uint32(body[8:]),
		binary.LittleEndian.Uint32(body[12:]),
		math.Float64frombits(binary.LittleEndian.Uint64(body[16:])), nil
}

func resultFrame(qid uint32, status byte, stale bool, distance, latency float64) []byte {
	fr := make([]byte, 0, resultLen)
	fr = binary.LittleEndian.AppendUint16(fr, ctrlMagic)
	fr = append(fr, ctrlResult, 0)
	fr = binary.LittleEndian.AppendUint32(fr, qid)
	st := byte(0)
	if stale {
		st = 1
	}
	fr = append(fr, status, st)
	fr = binary.LittleEndian.AppendUint64(fr, math.Float64bits(distance))
	fr = binary.LittleEndian.AppendUint64(fr, math.Float64bits(latency))
	return sealCtrl(fr)
}

func parseResult(b []byte) (qid uint32, status byte, stale bool, distance, latency float64, err error) {
	body, err := openCtrl(b, ctrlResult, resultLen)
	if err != nil {
		return 0, 0, false, 0, 0, err
	}
	return binary.LittleEndian.Uint32(body[4:]),
		body[8], body[9] != 0,
		math.Float64frombits(binary.LittleEndian.Uint64(body[10:])),
		math.Float64frombits(binary.LittleEndian.Uint64(body[18:])), nil
}

func refuseFrame(qid uint32, reason byte, retryAfter float64) []byte {
	fr := make([]byte, 0, refuseLen)
	fr = binary.LittleEndian.AppendUint16(fr, ctrlMagic)
	fr = append(fr, ctrlRefuse, 0)
	fr = binary.LittleEndian.AppendUint32(fr, qid)
	fr = append(fr, reason)
	fr = binary.LittleEndian.AppendUint64(fr, math.Float64bits(retryAfter))
	return sealCtrl(fr)
}

func parseRefuse(b []byte) (qid uint32, reason byte, retryAfter float64, err error) {
	body, err := openCtrl(b, ctrlRefuse, refuseLen)
	if err != nil {
		return 0, 0, 0, err
	}
	return binary.LittleEndian.Uint32(body[4:]),
		body[8],
		math.Float64frombits(binary.LittleEndian.Uint64(body[9:])), nil
}

func drainFrame() []byte {
	fr := make([]byte, 0, drainLen)
	fr = binary.LittleEndian.AppendUint16(fr, ctrlMagic)
	fr = append(fr, ctrlDrain, 0)
	return sealCtrl(fr)
}

func isDrain(b []byte) bool {
	_, err := openCtrl(b, ctrlDrain, drainLen)
	return err == nil
}
