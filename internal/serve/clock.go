package serve

import (
	"sync"
	"time"
)

// Clock is the server's one time source. Everything in this package —
// admission deadlines, rate-limit refills, staleness ages, eviction
// sweeps — threads a Clock instead of reading wall time, so tests drive
// the whole service on simulated time (deterministic drain and deadline
// tests) while production runs on WallClock. The timedet analyzer keeps
// the package honest: WallClock is the single justified wall-time
// boundary.
//
// The domain is seconds as float64. It must be shared by everything that
// stamps or judges time: clients stamp trajectory marks in the same
// domain the server's staleness policy measures ages in (Unix seconds
// under WallClock, sim seconds under SimClock).
type Clock interface {
	// Now returns the current time in seconds.
	Now() float64
	// Tick returns a channel delivering periodic wakeups roughly every d
	// seconds and a stop function releasing the ticker's resources. The
	// channel never closes; receivers must select against their own
	// cancellation signal.
	Tick(d float64) (<-chan struct{}, func())
}

// WallClock is the production clock: Unix-epoch seconds. This is the
// package's sanctioned wall-time boundary — the only place real time
// enters the service.
type WallClock struct{}

// Now returns Unix time in seconds with nanosecond resolution.
func (WallClock) Now() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// Tick adapts time.Ticker to the Clock contract. Wakeups are coalesced:
// a receiver slower than the period sees one pending wakeup, not a
// backlog.
func (WallClock) Tick(d float64) (<-chan struct{}, func()) {
	if d <= 0 {
		d = 1
	}
	t := time.NewTicker(time.Duration(d * float64(time.Second)))
	ch := make(chan struct{}, 1)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-t.C:
				select {
				case ch <- struct{}{}:
				default:
				}
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			t.Stop()
			close(done)
		})
	}
}

// SimClock is a manually advanced clock for deterministic tests: Now
// returns the last value set, and every Advance delivers one wakeup to
// each live Tick subscriber (the requested period is ignored — the test
// controls cadence by calling Advance).
type SimClock struct {
	mu   sync.Mutex
	now  float64
	subs map[int]chan struct{}
	next int
}

// NewSimClock builds a simulated clock starting at now.
func NewSimClock(now float64) *SimClock {
	return &SimClock{now: now, subs: make(map[int]chan struct{})}
}

// Now returns the simulated time.
func (c *SimClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Set jumps the simulated time to now (backwards jumps are allowed; the
// clock does not police its callers).
func (c *SimClock) Set(now float64) {
	c.mu.Lock()
	c.now = now
	c.notifyLocked()
	c.mu.Unlock()
}

// Advance moves the simulated time forward by dt seconds and wakes every
// Tick subscriber once.
func (c *SimClock) Advance(dt float64) {
	c.mu.Lock()
	c.now += dt
	c.notifyLocked()
	c.mu.Unlock()
}

func (c *SimClock) notifyLocked() {
	for _, ch := range c.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// Tick subscribes to Advance wakeups; d is ignored.
func (c *SimClock) Tick(d float64) (<-chan struct{}, func()) {
	c.mu.Lock()
	id := c.next
	c.next++
	ch := make(chan struct{}, 1)
	c.subs[id] = ch
	c.mu.Unlock()
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			c.mu.Lock()
			delete(c.subs, id)
			c.mu.Unlock()
		})
	}
}
