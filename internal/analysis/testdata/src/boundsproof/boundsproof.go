// Package boundsproof is the golden input for the bounds-proof analyzer:
// every flagged line is provably wrong under interval analysis, and every
// silent line either is in range or has an unknown interval.
package boundsproof

var weights = []int{10, 20, 30}

func indexProvablyOut() int {
	xs := []int{1, 2, 3}
	i := 5
	return xs[i] // want "index provably out of range"
}

func indexNegative(xs []int) int {
	i := -2
	return xs[i] // want "index is provably negative"
}

func indexInRange() int {
	xs := []int{1, 2, 3}
	i := 2
	return xs[i] // proven in range: silent
}

func indexGuarded(xs []int, i int) int {
	if i < 0 || i >= len(xs) {
		return 0
	}
	return xs[i] // guard proves 0 <= i < len(xs): silent
}

func indexUnknown(xs []int, i int) int {
	return xs[i] // no proof either way: silent
}

func indexLoopOut() int {
	total := 0
	for i := 0; i < 3; i++ {
		total += weights[i+3] // want "index provably out of range"
	}
	return total
}

func indexLoopOK() int {
	total := 0
	for i := 0; i < len(weights); i++ {
		total += weights[i] // induction proves i < len: silent
	}
	return total
}

func sliceInverted(xs []int) []int {
	lo, hi := 4, 2
	return xs[lo:hi] // want "slice bounds provably inverted"
}

func sliceHighOut(s string) string {
	if len(s) > 4 {
		return s
	}
	hi := 6
	return s[:hi] // want "slice high bound provably out of range"
}

func makeNegative() []int {
	n := -3
	return make([]int, n) // want "make length is provably negative"
}

func makeLenOverCap() []int {
	n, c := 8, 4
	return make([]int, n, c) // want "make length provably exceeds capacity"
}

func makeClamped(n int) []byte {
	if n < 0 || n > 64 {
		return nil
	}
	return make([]byte, n) // proven nonnegative: silent
}

// boundedTelemetryLoop exists for the suppression-fact test: the loop
// ranges over a 3-element package literal, so boundsproof proves at most
// 3 trips and emits an obsdiscipline suppression over the body.
func boundedTelemetryLoop() int {
	total := 0
	for _, w := range weights {
		total += w
	}
	return total
}

// unboundedInner nests an unprovable loop inside a proven one: the fact
// for the outer loop must not cover the inner body.
func unboundedInner(n int) int {
	total := 0
	for _, w := range weights {
		for j := 0; j < n; j++ {
			total += w
		}
		total++
	}
	return total
}

// mapHintLoop ranges over a freshly made map: the make argument is only
// a capacity hint, so no trip bound is provable and no suppression fact
// may cover the body.
func mapHintLoop() int {
	m := make(map[int]int, 4)
	m[0] = 1
	n := 0
	for range m {
		n++
	}
	return n
}
