// Package wirecross is the cross-package wiretaint golden: the pre-fix
// trace.ReadFrom shape — a wire count trusted into make() — with the
// decode helper living in another package, which the same-package
// summaries of the original analyzer could not see.
package wirecross

import "rups/internal/analysis/testdata/src/wiredec"

// ReadFrom is the historical bug shape across a package boundary.
func ReadFrom(buf []byte) []float64 {
	n := wiredec.Count(buf)
	return make([]float64, n) // want `reaches make size`
}

// Relay hands the tainted count to a foreign function whose parameter
// reaches an allocation unguarded.
func Relay(buf []byte) []float64 {
	n := wiredec.Count(buf)
	return wiredec.Alloc(n) // want `passed to Alloc`
}

// Guarded bounds the count before use: silent.
func Guarded(buf []byte) []float64 {
	n := wiredec.Count(buf)
	if n > 64 {
		return nil
	}
	return make([]float64, n)
}

// RelayChecked calls the helper that guards internally: silent.
func RelayChecked(buf []byte) []float64 {
	return wiredec.AllocChecked(wiredec.Count(buf))
}
