// Package errflow is the golden-diagnostic package for the errflow
// analyzer: every // want comment marks a line that must fire, and every
// silent line must stay silent.
package errflow

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

var errSentinel = errors.New("sentinel")

func step() error { return nil }

func fetch() (int, error) { return 0, nil }

// Dropped fires: the call's error result vanishes.
func Dropped() {
	step() // want "result of step carries an error that is dropped"
}

type closer struct{}

func (closer) Close() error { return nil }

// DroppedMethod fires on method calls too.
func DroppedMethod(c closer) {
	c.Close() // want "result of c.Close carries an error that is dropped"
}

// DeferredClose must stay silent: defers are cleanup, not data flow.
func DeferredClose(c closer) error {
	defer c.Close()
	return step()
}

// PrintFamily must stay silent: fmt's print family is best-effort by
// design.
func PrintFamily() {
	fmt.Println("status")
	fmt.Fprintf(os.Stderr, "warn\n")
}

// BuilderWrites must stay silent: strings.Builder writes never fail.
func BuilderWrites() string {
	var sb strings.Builder
	sb.WriteString("x")
	return sb.String()
}

// Blank fires: the error is discarded via _.
func Blank() int {
	n, _ := fetch() // want "error discarded via _"
	return n
}

// ExplicitDiscard fires: assigning a lone error to _ is still a drop.
func ExplicitDiscard() {
	_ = step() // want "error discarded via _"
}

// BlankNonError must stay silent: discarding a non-error value is fine.
func BlankNonError() error {
	_, err := fetch()
	return err
}

// Overwrite fires: the first error is clobbered before anyone reads it.
func Overwrite() error {
	err := step()
	err = step() // want "error .err. overwritten before the value assigned at line \\d+ is checked"
	return err
}

// CheckedBetween must stay silent: the first error is read before the
// second assignment.
func CheckedBetween() error {
	err := step()
	if err != nil {
		return err
	}
	err = step()
	return err
}

// BranchAssign must stay silent: assignments on alternative paths are
// not overwrites.
func BranchAssign(flag bool) error {
	var err error
	if flag {
		err = step()
	} else {
		err = errSentinel
	}
	return err
}

// BranchAssignDeep must stay silent even when err is not the first
// identifier in each branch block — a regression test for the block
// tracking that once attributed both assignments to the function body.
func BranchAssignDeep(flag bool) error {
	var err error
	if flag {
		n := 1
		_ = n
		err = step()
	} else {
		m := 2
		_ = m
		err = errSentinel
	}
	return err
}

// WrapChain must stay silent: the RHS of the wrapping assignment reads
// the previous error before the variable is overwritten.
func WrapChain() error {
	err := step()
	err = fmt.Errorf("context: %w", err)
	return err
}

// WrapThenClobber fires: the wrapped error is itself overwritten before
// anyone reads it.
func WrapThenClobber() error {
	err := step()
	err = fmt.Errorf("context: %w", err)
	err = step() // want "error .err. overwritten before the value assigned at line \\d+ is checked"
	return err
}

// Abandoned fires: the error from the read is never looked at.
func Abandoned(path string) []byte {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	buf := make([]byte, 16)
	n, err := f.Read(buf) // want "error .err. is assigned but never checked"
	return buf[:n]
}

// PollLoop must stay silent: err is read at the top of the next pass.
func PollLoop(n int) {
	var err error
	for i := 0; i < n; i++ {
		if err != nil {
			fmt.Println(err)
		}
		err = step()
	}
}

// DeferredRead must stay silent: the deferred closure reads err at exit.
func DeferredRead() {
	var err error
	defer func() {
		if err != nil {
			fmt.Println(err)
		}
	}()
	err = step()
}

// Shadowed fires: the inner err never reaches the final return.
func Shadowed(path string) error {
	var err error
	if path != "" {
		f, err := os.Open(path) // want "shadows the error from line \\d+, which is read again at line \\d+"
		if err != nil {
			fmt.Println(err)
		}
		_ = f
	}
	return err
}

// ShadowedResult fires: the naked return reads the named result, not the
// inner err.
func ShadowedResult(path string) (err error) {
	if path != "" {
		f, err := os.Open(path) // want "shadows the error from line \\d+"
		if err != nil {
			fmt.Println(err)
		}
		_ = f
	}
	return
}

// InnerOnly must stay silent: there is no outer error to lose.
func InnerOnly(path string) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Println(err)
		}
		_ = f
	}
}

// ReassignSameScope must stay silent: := re-use of an existing err in
// the same scope is an assignment, not a shadow.
func ReassignSameScope(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	_ = buf
	return nil
}
