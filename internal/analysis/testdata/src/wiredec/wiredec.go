// Package wiredec is a decode-helper package for the cross-package
// wiretaint golden: its outputs are wire-tainted and one of its
// parameters reaches an allocation unguarded. The findings appear in the
// importing package, through the interprocedural summaries.
package wiredec

import "encoding/binary"

// Count decodes a wire-encoded count: the return is tainted.
func Count(buf []byte) uint32 {
	return binary.BigEndian.Uint32(buf)
}

// Alloc trusts its parameter into a make — an unguarded parameter.
func Alloc(n uint32) []float64 {
	return make([]float64, n)
}

// AllocChecked bounds the count against a limit first.
func AllocChecked(n uint32) []float64 {
	if n > 1<<16 {
		return nil
	}
	return make([]float64, n)
}
