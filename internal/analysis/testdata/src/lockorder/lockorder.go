// Package lockorder is the golden-diagnostic package for the lockorder
// analyzer.
package lockorder

import "sync"

// S carries two locks taken in opposite orders by AB and BA.
type S struct {
	a, b sync.Mutex
	n    int
}

// AB takes a then b.
func (s *S) AB() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock() // want `lock-order cycle`
	defer s.b.Unlock()
	s.n++
}

// BA takes b then a — the opposite order: with AB running concurrently,
// each holds what the other wants.
func (s *S) BA() {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock() // want `lock-order cycle`
	defer s.a.Unlock()
	s.n++
}

// Outer holds a while calling takeB — the a→b edge is interprocedural and
// still part of the cycle.
func (s *S) Outer() {
	s.a.Lock()
	defer s.a.Unlock()
	s.takeB() // want `acquired via call`
}

func (s *S) takeB() {
	s.b.Lock()
	defer s.b.Unlock()
	s.n++
}

// T's locks are always taken in one order: silent.
type T struct {
	c, d sync.Mutex
	n    int
}

// CD is consistent with itself and has no reverse anywhere.
func (t *T) CD() {
	t.c.Lock()
	defer t.c.Unlock()
	t.d.Lock()
	defer t.d.Unlock()
	t.n++
}

// DThenNothing takes d alone — no ordering evidence.
func (t *T) DThenNothing() {
	t.d.Lock()
	defer t.d.Unlock()
	t.n++
}
