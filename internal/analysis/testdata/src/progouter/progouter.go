// Package progouter is the caller side of the cross-package fixpoint
// test: it reaches proginner's recursive cycle and tainted decode from a
// different package, exercising summary export across the boundary.
package progouter

import "rups/internal/analysis/testdata/src/proginner"

// Enter reaches the clock and the lock only through proginner's
// mutually recursive pair.
func Enter(n int) int {
	return proginner.Ping(n)
}

// Grow trusts a foreign-decoded count into make.
func Grow(buf []byte) []int {
	n := proginner.TaintedCount(buf)
	return make([]int, n)
}
