// Package indexunit is the golden-diagnostic package for the indexunit
// analyzer.
package indexunit

import "rups/internal/trajectory"

// SYN mimics core.SYNPoint: metre-indices into two trajectories.
type SYN struct {
	IdxA, IdxB int
}

// RawIndexToFloat is the exact confusion SYNPoint.RelativeDistance
// invites: a metre-index silently becomes a metre distance.
func RawIndexToFloat(s SYN, tailLen int) float64 {
	dA := float64(s.IdxA) // want `raw float64\(\) of trajectory index "s.IdxA"`
	dB := float64(s.IdxB) // want `raw float64\(\) of trajectory index "s.IdxB"`
	return dB - dA + float64(tailLen)
}

// RawLocalIndex fires on plain locally named indices too.
func RawLocalIndex(markIdx int) float64 {
	return float64(markIdx) // want `raw float64\(\) of trajectory index "markIdx"`
}

// RawDistanceToInt fires in the other direction: a distance truncated into
// an index without saying so.
func RawDistanceToInt(distM float64) int {
	return int(distM) // want `raw int\(\) of metre distance "distM"`
}

// RawGap fires for gap-named distances.
func RawGap(initGapM float64) int64 {
	return int64(initGapM) // want `raw int64\(\) of metre distance "initGapM"`
}

// Sanctioned conversions go through the helpers and must not fire.
func Sanctioned(s SYN, distM float64) (float64, int) {
	return trajectory.MetresFromIndex(s.IdxA), trajectory.IndexFromMetres(distM)
}

// PlainCounters are not indices; they must not fire.
func PlainCounters(n, total int) float64 {
	return float64(n) / float64(total)
}

// UnrelatedFloats are not distances; they must not fire.
func UnrelatedFloats(score float64) int {
	return int(score * 100)
}
