// Package indexunit is the golden-diagnostic package for the indexunit
// analyzer.
package indexunit

import "rups/internal/trajectory"

// SYN mimics core.SYNPoint: metre-indices into two trajectories.
type SYN struct {
	IdxA, IdxB int
}

// RawIndexToFloat is the exact confusion SYNPoint.RelativeDistance
// invites: a metre-index silently becomes a metre distance.
func RawIndexToFloat(s SYN, tailLen int) float64 {
	dA := float64(s.IdxA) // want `raw float64\(\) of trajectory index "s.IdxA"`
	dB := float64(s.IdxB) // want `raw float64\(\) of trajectory index "s.IdxB"`
	return dB - dA + float64(tailLen)
}

// RawLocalIndex fires on plain locally named indices too.
func RawLocalIndex(markIdx int) float64 {
	return float64(markIdx) // want `raw float64\(\) of trajectory index "markIdx"`
}

// RawMark pins the doc/unit agreement behind Aware.DistanceBetween: a
// "mark" argument is a metre-index (the i-th per-metre mark), and turning
// it into a float distance must go through MetresFromIndex. This exact
// shape — Len()-derived int minus a mark — was the DistanceBetween bug.
func RawMark(mark, length int) float64 {
	return float64(length - 1 - mark) // want `raw float64\(\) of trajectory index "length - 1 - mark"`
}

// MarkViaHelper is the fixed DistanceBetween shape; it must not fire.
func MarkViaHelper(mark, length int) float64 {
	return trajectory.MetresFromIndex(length-1) - trajectory.MetresFromIndex(mark)
}

// LenOfMarks is a count, not an index — len() operands must not fire even
// when they are mark-named.
func LenOfMarks(marks []int) float64 {
	return float64(len(marks))
}

// RawDistanceToInt fires in the other direction: a distance truncated into
// an index without saying so.
func RawDistanceToInt(distM float64) int {
	return int(distM) // want `raw int\(\) of metre distance "distM"`
}

// RawGap fires for gap-named distances.
func RawGap(initGapM float64) int64 {
	return int64(initGapM) // want `raw int64\(\) of metre distance "initGapM"`
}

// Sanctioned conversions go through the helpers and must not fire.
func Sanctioned(s SYN, distM float64) (float64, int) {
	return trajectory.MetresFromIndex(s.IdxA), trajectory.IndexFromMetres(distM)
}

// PlainCounters are not indices; they must not fire.
func PlainCounters(n, total int) float64 {
	return float64(n) / float64(total)
}

// UnrelatedFloats are not distances; they must not fire.
func UnrelatedFloats(score float64) int {
	return int(score * 100)
}
