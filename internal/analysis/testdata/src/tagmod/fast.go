//go:build fastpath

package tagmod

// Mode identifies the fastpath variant.
func Mode() string { return "fast" }

// FastOnly exists only under the fastpath tag.
func FastOnly() bool { return true }
