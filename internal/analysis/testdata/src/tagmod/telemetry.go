//go:build telemetry

package tagmod

// Telemetry exists only when the telemetry tag is set, independently of
// the fastpath choice — the multi-tag case.
func Telemetry() bool { return true }
