// Package tagmod exercises loader.LoadTags: its file set changes with
// the build-tag variant, and the loader test asserts which declarations
// each variant exposes.
package tagmod

// Always is present in every variant.
func Always() int { return 1 }
