//go:build !fastpath

package tagmod

// Mode identifies the default (non-fastpath) variant.
func Mode() string { return "slow" }
