// Package wiretaint is the golden-diagnostic package for the wiretaint
// analyzer: every // want comment marks a line that must fire, and every
// silent line must stay silent.
package wiretaint

import "encoding/binary"

// Vec2 stands in for geo.Vec2: 16 bytes on the wire.
type Vec2 struct{ X, Y float64 }

// decoder mirrors the cursor-style decoder in internal/trace.
type decoder struct {
	data []byte
	off  int
}

func (d *decoder) u32() uint32 {
	v := binary.LittleEndian.Uint32(d.data[d.off:])
	d.off += 4
	return v
}

func (d *decoder) remaining() int { return len(d.data) - d.off }

// ReadFromLegacy reproduces the pre-fix trace.ReadFrom shape: a
// wire-encoded count flows straight from the decoder into make. A
// corrupt 4-byte count meant gigabytes of allocation.
func ReadFromLegacy(data []byte) []Vec2 {
	d := &decoder{data: data}
	nPos := int(d.u32())
	marks := make([]Vec2, nPos) // want "wire-decoded value .nPos. reaches make size without a bound check"
	return marks
}

// ReadFromFixed is the post-fix shape: the count is validated against
// the bytes actually present before the allocation. Must stay silent.
func ReadFromFixed(data []byte) []Vec2 {
	d := &decoder{data: data}
	nPos := int(d.u32())
	if nPos < 0 || nPos > d.remaining()/16 {
		return nil
	}
	marks := make([]Vec2, nPos)
	return marks
}

// DirectCount fires without the decoder indirection too.
func DirectCount(data []byte) []Vec2 {
	n := int(binary.LittleEndian.Uint32(data))
	return make([]Vec2, n) // want "wire-decoded value .n. reaches make size"
}

// Clamped must stay silent: min() against the trusted buffer length is a
// bound.
func Clamped(data []byte) []byte {
	n := int(binary.LittleEndian.Uint32(data))
	n = min(n, len(data))
	return make([]byte, n)
}

// LoopBound fires: an unchecked wire count steering a loop is the same
// hang, one iteration at a time.
func LoopBound(data []byte) int {
	n := int(binary.LittleEndian.Uint16(data))
	total := 0
	for i := 0; i < n; i++ { // want "wire-decoded value .n. reaches loop bound"
		total += int(data[2+i]) % 7
	}
	return total
}

// RangeInt fires for the range-over-int form as well.
func RangeInt(data []byte) int {
	n := int(binary.LittleEndian.Uint32(data))
	s := 0
	for i := range n { // want "wire-decoded value .n. reaches loop bound"
		s += i
	}
	return s
}

// LenLoop must stay silent: len(data) measures bytes actually present.
func LenLoop(data []byte) int {
	s := 0
	for i := 0; i < len(data); i++ {
		s += int(data[i])
	}
	return s
}

// IndexOffset fires: a wire-decoded offset used as an index.
func IndexOffset(data []byte) byte {
	off := int(binary.LittleEndian.Uint32(data))
	return data[off] // want "wire-decoded value .off. reaches index"
}

// SliceOffset fires on slice bounds.
func SliceOffset(data []byte) []byte {
	n := int(binary.LittleEndian.Uint16(data))
	return data[:n] // want "wire-decoded value .n. reaches slice bound"
}

// ByteWide must stay silent: a single byte cannot express a dangerous
// count.
func ByteWide(data []byte) []bool {
	k := data[0]
	return make([]bool, k)
}

// allocRecords allocates without checking its argument: callers own the
// bound check, and wiretaint holds them to it via the call summary.
func allocRecords(count int) []Vec2 {
	return make([]Vec2, count)
}

// CallUnguarded fires at the call site: the tainted count crosses into a
// helper whose parameter reaches make unchecked.
func CallUnguarded(data []byte) []Vec2 {
	n := int(binary.LittleEndian.Uint32(data))
	return allocRecords(n) // want "wire-decoded value .n. passed to allocRecords, whose parameter .count. reaches"
}

// allocChecked validates its argument itself.
func allocChecked(count, limit int) []Vec2 {
	if count < 0 || count > limit {
		return nil
	}
	return make([]Vec2, count)
}

// CallGuarded must stay silent: the helper bounds the count internally.
func CallGuarded(data []byte) []Vec2 {
	n := int(binary.LittleEndian.Uint32(data))
	return allocChecked(n, len(data)/16)
}

// wireCount launders a wire value through a same-package return.
func wireCount(data []byte) int {
	return int(binary.LittleEndian.Uint32(data))
}

// ThroughReturn fires: the summary marks wireCount's result tainted.
func ThroughReturn(data []byte) []Vec2 {
	n := wireCount(data)
	return make([]Vec2, n) // want "wire-decoded value .n. reaches make size"
}

// GuardedReturn must stay silent: the bound check after the call clears
// the laundered value.
func GuardedReturn(data []byte) []Vec2 {
	n := wireCount(data)
	if n > len(data)/16 {
		return nil
	}
	return make([]Vec2, n)
}
