// Package naninguard is the golden-diagnostic package for the naninguard
// analyzer.
package naninguard

import (
	"math"

	"rups/internal/stats"
)

// UnguardedCompare feeds a correlation straight into a comparison.
func UnguardedCompare(x, y []float64, threshold float64) bool {
	r := stats.Pearson(x, y)
	return r >= threshold // want `correlation result "r" flows into ">="`
}

// UnguardedAccumulate builds a running average without a guard.
func UnguardedAccumulate(rows, cols [][]float64) float64 {
	var sum float64
	for i := range rows {
		sum += stats.Pearson(rows[i], cols[i]) // want `correlation result accumulates via "\+="`
	}
	return sum / float64(len(rows))
}

// UnguardedDirect uses the call directly as a comparison operand.
func UnguardedDirect(a, b [][]float64) bool {
	return stats.TrajCorr(a, b) > 1.2 // want `correlation result flows into ">"`
}

// UnguardedCopy launders the result through a plain copy; still flagged.
func UnguardedCopy(x, y []float64) bool {
	r := stats.Pearson(x, y)
	score := r
	return score > 0.5 // want `correlation result "score" flows into ">"`
}

// GuardedCompare tests the result for NaN first; it must not fire.
func GuardedCompare(x, y []float64, threshold float64) bool {
	r := stats.Pearson(x, y)
	if math.IsNaN(r) {
		return false
	}
	return r >= threshold
}

// GuardedByIsMissing uses the stats alias for the NaN test; equally fine.
func GuardedByIsMissing(a, b [][]float64) bool {
	c := stats.TrajCorr(a, b)
	if stats.IsMissing(c) {
		return false
	}
	return c > 1.2
}

// PlainUse neither compares nor accumulates; recording the raw value is
// fine.
func PlainUse(x, y []float64, sink *[]float64) {
	*sink = append(*sink, stats.Pearson(x, y))
}

// OtherMath is not a correlation kernel; it must not fire.
func OtherMath(x []float64, threshold float64) bool {
	return stats.Mean(x) >= threshold
}
