// Package obsdiscipline is the golden-diagnostic package for the
// obsdiscipline analyzer. It instruments against the real
// rups/internal/obs layer.
package obsdiscipline

import (
	"rups/internal/obs"
	"rups/internal/obs/flight"
)

type tel struct {
	hits *obs.Counter
}

// view is the sanctioned pattern: handles built once inside the NewView
// build function, fetched with one atomic load per Get.
var view = obs.NewView(func(r *obs.Registry) *tel {
	return &tel{hits: r.Counter("hits_total", "total hits")}
})

// goodLoop pays one View.Get per iteration — the documented contract.
func goodLoop(n int) {
	for i := 0; i < n; i++ {
		if t := view.Get(); t != nil {
			t.hits.Add(1)
		}
	}
}

// rawInLoop looks the registry up per iteration.
func rawInLoop(n int) {
	for i := 0; i < n; i++ {
		r := obs.Default() // want `raw obs.Default lookup inside a loop`
		_ = r
	}
}

// recorderInLoop does the same with the span recorder.
func recorderInLoop(n int) {
	for i := 0; i < n; i++ {
		rec := obs.ActiveRecorder() // want `raw obs.ActiveRecorder lookup inside a loop`
		_ = rec
	}
}

// helper hides a raw lookup behind a call.
func helper() *obs.Registry {
	return obs.Default()
}

// onceOff is a one-shot lookup outside any loop: silent.
func onceOff() *obs.Registry {
	return helper()
}

// loopCall runs helper's lookup once per iteration.
func loopCall(n int) {
	for i := 0; i < n; i++ {
		_ = helper() // want `call in a loop reaches a raw telemetry lookup \(obsdiscipline.helper -> obs.Default\)`
	}
}

// strayHandle constructs a handle outside any view build.
func strayHandle(r *obs.Registry) *obs.Counter {
	return r.Counter("stray_total", "stray") // want `Registry.Counter creates a metric handle outside`
}

// goodFlightLoop caches the ring handle once — the flight-recorder
// counterpart of the View contract.
func goodFlightLoop(n int) {
	fl := flight.Active()
	for i := 0; i < n; i++ {
		fl.Emit(flight.Event{Kind: flight.KindWarmHit, A: int32(i), B: -1})
	}
}

// flightInLoop looks the ring up per emission.
func flightInLoop(n int) {
	for i := 0; i < n; i++ {
		flight.Active().Emit(flight.Event{Kind: flight.KindWarmHit}) // want `raw flight.Active lookup inside a loop`
	}
}

// flightHelper hides the ring lookup behind a call.
func flightHelper() *flight.Ring {
	return flight.Active()
}

// flightLoopCall runs flightHelper's lookup once per iteration.
func flightLoopCall(n int) {
	for i := 0; i < n; i++ {
		_ = flightHelper() // want `call in a loop reaches a raw telemetry lookup \(obsdiscipline.flightHelper -> flight.Active\)`
	}
}
