// Package timedetutil is a helper package for the timedet golden: it is
// outside the deterministic set, so its own sources are legal — the
// findings appear where deterministic code calls in.
package timedetutil

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Jitter draws from the global source.
func Jitter() float64 {
	return rand.Float64()
}

// Indirect reaches the clock one hop deeper.
func Indirect() int64 {
	return Stamp() + 1
}

// SeededNoise is deterministic: an explicitly seeded source.
func SeededNoise(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}
