// Package ival exercises the interval abstract-interpretation engine:
// constants, branch joins, loop-induction and range constraints,
// diverting guards, length tracking, and interprocedural argument/return
// propagation. The dataflow interp tests assert the return interval of
// each function by name.
package ival

// configs is countable: initialized from a literal and never reassigned.
var configs = []int{10, 20, 30, 40, 50}

// grown is not countable: init() appends to it.
var grown = []int{1, 2}

func init() { grown = append(grown, 3) }

func constChain() int {
	x := 4
	y := x * 3
	return y + 2 // [14, 14]
}

func branchJoin(c bool) int {
	x := 1
	if c {
		x = 5
	}
	return x // [1, 5]
}

func loopInduction() int {
	m := 0
	for i := 0; i < 10; i++ {
		m = i // i ∈ [0, 9]
	}
	return m // [0, 9]
}

func loopStepTwo() int {
	m := 0
	for i := 2; i <= 20; i += 2 {
		m = i // i ∈ [2, 20]
	}
	return m // [0, 20]
}

func countdown() int {
	m := 0
	for i := 8; i > 0; i-- {
		m = i // i ∈ [1, 8]
	}
	return m // [0, 8]
}

func rangeConfigs() int {
	last := 0
	for i := range configs {
		last = i // i ∈ [0, 4] via the package-level length table
	}
	return last // [0, 4]
}

func rangeGrown() int {
	last := 0
	for i := range grown {
		last = i // length unknown: i ∈ [0, +inf)
	}
	return last // [0, +inf)
}

func rangeLiteral() int {
	total := 0
	for i, w := range [4]int{1, 2, 3, 4} {
		total = i // i ∈ [0, 3]
		_ = w
	}
	return total // [0, 3]
}

func rangeInt(n int) int {
	last := 0
	for i := range 6 {
		last = i // i ∈ [0, 5]
	}
	_ = n
	return last // [0, 5]
}

func clamp(x int) int {
	if x < 0 {
		return 0
	}
	if x > 100 {
		return 100
	}
	return x // refined to [0, 100] by the two diverting guards
}

func elseBranch(x int) int {
	if x < 10 {
		return 9
	} else {
		if x > 50 {
			return 50
		}
		return x // ¬(x<10) in the else branch, then the x>50 guard: [10, 50]
	}
}

func modIdiom(x int) int {
	return x % 16 // x unknown: [-15, 15]; callers only pass nonneg? exported-shape: keep general
}

// step is unexported and only ever called with small constants, so the
// interprocedural fixpoint narrows k.
func step(k int) int {
	return k * 2
}

func callsStep() int {
	return step(3) + step(5) // k ∈ [3, 5] → step ∈ [6, 10] → [12, 20]
}

// recurse must settle (widened) instead of looping the fixpoint.
func recurse(n int) int {
	if n <= 0 {
		return 0
	}
	return recurse(n-1) + 1
}

func lenOfMake(n int) int {
	if n < 0 || n > 32 {
		return 0
	}
	buf := make([]byte, n) // len ∈ [0, 32]
	total := 0
	for i := range buf {
		total = i // [0, 31]
	}
	return total // [0, 31]
}

func lenAppend() int {
	xs := []int{1, 2, 3}
	xs2 := append(xs, 4, 5)
	return len(xs2) // [5, 5]
}

func sliceBounds(raw []byte) int {
	if len(raw) < 8 {
		return 0
	}
	head := raw[:4] // provable: 4 ≤ len(raw)
	return len(head)
}

func minClamp(n int) int {
	return min(n, 64) // (-inf, 64]
}

// Exported is countable in form, but any other package in the program
// (or a test, which is not loaded) can reassign or append to it, so the
// package-level length table must skip it.
var Exported = []int{1, 2}

func rangeExported() int {
	last := 0
	for i := range Exported {
		last = i // length unprovable for exported vars: i ∈ [0, +inf)
	}
	return last // [0, +inf)
}

func mapHint() int {
	m := make(map[int]int, 8) // 8 is a capacity hint, not a length
	m[1] = 1
	return len(m) // [0, +inf): inserts grow the map without a Def event
}

func countMap() int {
	m := make(map[int]int, 4)
	m[1] = 1
	m[2] = 2
	n := 0
	for range m { // trip count must stay unproven
		n++
	}
	return n
}

// twoInts feeds spread2 through the f(g()) spread form: that call site
// has no per-argument expressions, so it must widen both parameters to
// Top despite the constant direct call next to it.
func twoInts() (int, int) { return 1, 2 }

func spread2(a, b int) int { return a + b }

func callsSpread() int { return spread2(twoInts()) + spread2(1, 2) }

// escaped is taken as a value: calls through the value are invisible to
// the call-site walk, so its parameter must not narrow to the constant
// the one direct call passes.
func escaped(k int) int { return k }

func useEscaped() int {
	f := escaped
	return f(100) + escaped(1)
}

// hugeStep's trip ceiling adjustment (hi + step - 1) would overflow
// int64: the count must stay unproven rather than wrapping to zero.
func hugeStep() int {
	m := 0
	for i := 0; i <= 9223372036854775806; i += 2 {
		m = 1
		_ = i
	}
	return m
}
