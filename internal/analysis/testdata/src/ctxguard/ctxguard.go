// Package ctxguard is the golden-diagnostic package for the ctxguard
// analyzer: every // want comment marks a line that must fire, and every
// silent line must stay silent.
package ctxguard

import (
	"context"
	"sync"
)

func work(n int) int { return n * 2 }

// Orphan fires: nothing outside the goroutine can stop it.
func Orphan() {
	go func() { // want "goroutine started without a cancellation path"
		for {
			work(1)
		}
	}()
}

func count(n int) {
	for i := 0; i < n; i++ {
		work(i)
	}
}

// OrphanNamed fires for named callees whose arguments carry no
// affordance either.
func OrphanNamed() {
	go count(10) // want "goroutine started without a cancellation path"
}

// InternalChannel fires: a channel created inside the goroutine is
// invisible to the parent, so it is not a cancellation path.
func InternalChannel() {
	go func() { // want "goroutine started without a cancellation path"
		ch := make(chan int, 1)
		ch <- work(1)
	}()
}

// WithContext must stay silent: the captured ctx is the cancellation path.
func WithContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func run(ctx context.Context) {
	<-ctx.Done()
}

// WithContextArg must stay silent: the context travels as an argument.
func WithContextArg(ctx context.Context) {
	go run(ctx)
}

// WithDone must stay silent: the captured done channel stops the loop.
func WithDone(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work(1)
			}
		}
	}()
}

// WithWaitGroup must stay silent: the parent waits on wg.
func WithWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work(1)
	}()
	wg.Wait()
}

func worker(jobs chan int) {
	for j := range jobs {
		work(j)
	}
}

// WithJobChannel must stay silent: closing jobs terminates the worker.
func WithJobChannel(jobs chan int) {
	go worker(jobs)
}

type server struct {
	quit chan struct{}
}

func (s *server) loop() {
	<-s.quit
}

// MethodReceiver must stay silent: the receiver carries the quit channel.
func MethodReceiver(s *server) {
	go s.loop()
}
