// Package widenconv is the golden input for the lossy-conversion
// analyzer: flagged conversions have a proven interval escaping the
// target type; silent ones fit or have no proof.
package widenconv

func narrowProvablyLossy(x int) int16 {
	if x < 0 {
		x = 0
	}
	if x > 100000 {
		x = 100000
	}
	return int16(x) // want "conversion to int16 is provably lossy"
}

func narrowFits(x int) int16 {
	if x < 0 {
		x = 0
	}
	if x > 30000 {
		x = 30000
	}
	return int16(x) // proven [0, 30000] fits int16: silent
}

func narrowUnproven(x int) int16 {
	return int16(x) // no interval proof: silent
}

func maskedByte(x int) byte {
	y := x & 0xff
	return byte(y) // mask proves [0, 255]: silent
}

func uint8Lossy() uint8 {
	v := 300
	return uint8(v) // want "conversion to uint8 is provably lossy"
}

func toFloat32Lossy(x int) float32 {
	if x < 0 {
		x = 0
	}
	if x > 1<<26 {
		x = 1 << 26
	}
	return float32(x) // want "conversion to float32 is provably lossy"
}

func toFloat32Fits(x int) float32 {
	if x < 0 {
		x = 0
	}
	if x > 1<<20 {
		x = 1 << 20
	}
	return float32(x) // [0, 2^20] is exact in float32: silent
}

func toFloat64Fits(x int) float64 {
	if x < 0 {
		x = 0
	}
	return float64(x) // half-open interval carries no proof: silent
}

func loopCounterNarrow() []int8 {
	var out []int8
	for i := 0; i <= 200; i++ {
		out = append(out, int8(i)) // want "conversion to int8 is provably lossy"
	}
	return out
}
