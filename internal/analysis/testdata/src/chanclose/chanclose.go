// Package chanclose is the golden-diagnostic package for the chanclose
// analyzer. Engine below reproduces, line for line, the pre-fix PR 4
// engine.Close shape — the send-on-closed-channel panic that escaped to
// production — and SafeEngine the shipped fix, which must stay silent.
package chanclose

import "sync"

// Engine is the pre-fix shape: Submit checks a plain bool outside any
// lock, Close flips it and closes the channel. A Submit racing Close
// passes the check, then sends on the closed channel and panics.
type Engine struct {
	closed bool
	tasks  chan func()
	wg     sync.WaitGroup
}

// Submit races Close: nothing orders the send before the close.
func (e *Engine) Submit(f func()) bool {
	if e.closed {
		return false
	}
	e.tasks <- f // want `send on tasks can race with close`
	return true
}

// Close is the pre-fix close path.
func (e *Engine) Close() {
	e.closed = true
	close(e.tasks)
	e.wg.Wait()
}

// SafeEngine is the PR 4 fix: the send happens under mu.RLock and Close
// takes mu (then closes outside it, under a sync.Once) — every in-flight
// send is ordered before the close, so the analyzer must stay silent.
type SafeEngine struct {
	mu     sync.RWMutex
	closed bool
	tasks  chan func()
	once   sync.Once
}

// Submit holds the read lock across the closed check and the send.
func (e *SafeEngine) Submit(f func()) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return false
	}
	e.tasks <- f // guarded: Close acquires mu, ordering it after this send
	return true
}

// Close flips the flag under the write lock before closing.
func (e *SafeEngine) Close() {
	e.once.Do(func() {
		e.mu.Lock()
		e.closed = true
		e.mu.Unlock()
		close(e.tasks)
	})
}

// doubleClose closes the same channel twice in straight-line code.
func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want `possible double close`
}

// Broadcaster closes a loop-invariant field channel inside a loop.
type Broadcaster struct {
	done chan struct{}
}

// Stop double-closes on the second iteration.
func (b *Broadcaster) Stop(times int) {
	for i := 0; i < times; i++ {
		close(b.done) // want `inside a loop`
	}
}

// fanIn closes per-iteration channels — a fresh channel each time, silent.
func fanIn(chs []chan int) {
	for _, ch := range chs {
		close(ch)
	}
}

// closeOwned is the canonical producer: a send-only parameter documents
// ownership transfer, so the deferred close is the owner's close.
func closeOwned(out chan<- int) {
	defer close(out)
	out <- 1
}

// closeBorrowed closes a bidirectional channel it does not own.
func closeBorrowed(ch chan int) {
	close(ch) // want `received as a parameter`
}
