// Package proginner hosts the callee side of the cross-package fixpoint
// test: a mutually recursive pair whose effects must converge around the
// cycle, plus a tainted decode helper.
package proginner

import (
	"encoding/binary"
	"sync"
	"time"
)

var mu sync.Mutex

// Ping and Pong recurse into each other; only Pong touches the lock and
// the clock, so Ping's effects exist purely by propagation around the
// cycle.
func Ping(n int) int {
	if n <= 0 {
		return 0
	}
	return Pong(n - 1)
}

func Pong(n int) int {
	mu.Lock()
	defer mu.Unlock()
	if n <= 0 {
		return int(time.Now().Unix())
	}
	return Ping(n - 1)
}

// TaintedCount decodes a wire-encoded count; its return is tainted.
func TaintedCount(buf []byte) uint32 {
	return binary.BigEndian.Uint32(buf)
}
