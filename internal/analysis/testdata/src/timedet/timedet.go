// Package sim (golden for the timedet analyzer) is named into the
// deterministic set on purpose: everything here is under the per-seed
// reproducibility contract.
package sim

import (
	"math/rand"
	"time"

	"rups/internal/analysis/testdata/src/timedetutil"
)

// Tick reads the wall clock directly.
func Tick() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic simulation code`
}

// Age uses time.Since — also wall-clock.
func Age(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in deterministic simulation code`
}

// Jitter draws from the global math/rand source.
func Jitter() float64 {
	return rand.Float64() // want `global rand.Float64 in deterministic simulation code`
}

// Stamp reaches the clock through a non-deterministic helper package.
func Stamp() int64 {
	return timedetutil.Stamp() // want `call reaches wall-clock`
}

// Deep reaches it two hops out; the chain is spelled out.
func Deep() int64 {
	return timedetutil.Indirect() // want `call reaches wall-clock \(timedetutil.Indirect -> timedetutil.Stamp -> time.Now\)`
}

// Shake reaches the global source transitively.
func Shake() float64 {
	return timedetutil.Jitter() // want `call reaches global randomness`
}

// Relay calls another deterministic-package function that reaches time:
// not re-flagged here — the finding lives at Stamp's own call site.
func Relay() int64 {
	return Stamp()
}

// Noise is deterministic: seeded source through the helper, silent.
func Noise(seed int64) float64 {
	return timedetutil.SeededNoise(seed)
}
