// Package lockcheck is the golden-diagnostic package for the lockcheck
// analyzer.
package lockcheck

import "sync"

// Guarded embeds a mutex by value, like node.Network does.
type Guarded struct {
	mu    sync.Mutex
	count int
}

// Nested buries the lock one level deeper; copies must still be caught.
type Nested struct {
	inner Guarded
}

// CopyAssign copies the lock state through an assignment.
func CopyAssign(g Guarded) Guarded { // want `value parameter copies lock value`
	snapshot := g // want `assignment copies lock value`
	return snapshot
}

// ValueReceiver copies the lock on every call.
func (g Guarded) ValueReceiver() int { // want `value receiver copies lock value`
	return g.count
}

// RangeByValue copies each element's lock.
func RangeByValue(gs []Nested) int {
	total := 0
	for _, g := range gs { // want `range-by-value copies lock value`
		total += g.inner.count
	}
	return total
}

// PassByValue hands the lock to a callee by value.
func PassByValue(g Guarded) { // want `value parameter copies lock value`
	use(g) // want `call passes lock by value`
}

func use(Guarded) {} // want `value parameter copies lock value`

// PointerUse is the correct idiom everywhere; it must not fire.
func PointerUse(g *Guarded) *Guarded {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.count++
	return g
}

// FreshLiteral constructs a new value rather than copying one; fine.
func FreshLiteral() *Guarded {
	g := Guarded{}
	return &g
}

// RacyCounter is the textbook unsynchronised captured write.
func RacyCounter(n int) int {
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total++ // want `goroutine writes captured variable "total" without synchronization`
		}()
	}
	wg.Wait()
	return total
}

// LostLoopVarWrite writes to the per-iteration loop variable; the update
// dies with the iteration.
func LostLoopVarWrite(items []int) {
	var wg sync.WaitGroup
	for _, item := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			item = item * 2 // want `goroutine writes captured loop variable "item"`
		}()
	}
	wg.Wait()
}

// LockedCounter takes the lock in the closure; it must not fire.
func LockedCounter(n int) int {
	var g Guarded
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.mu.Lock()
			g.count++
			g.mu.Unlock()
		}()
	}
	wg.Wait()
	return g.count
}

// ShardedWrites assigns distinct slice elements per goroutine — the
// sanctioned fan-out idiom, invisible to this check on purpose.
func ShardedWrites(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = i * i
		}(i)
	}
	wg.Wait()
	return out
}

// ChannelResult communicates by channel; fine.
func ChannelResult() int {
	ch := make(chan int, 1)
	go func() {
		ch <- 42
	}()
	return <-ch
}
