// Package allocdiscipline is the golden input for the preallocation
// analyzer: flagged makes are grown by append in loops with proven trip
// bounds; silent ones have unprovable bounds or disqualifying writes.
package allocdiscipline

var modes = []int{1, 2, 3, 4}

func preallocProvable() []int {
	out := make([]int, 0) // want "preallocate with make"
	for _, m := range modes {
		out = append(out, m*2)
	}
	return out
}

func preallocTwoPerIter() []int {
	out := make([]int, 0) // want "at most 12 element"
	for i := 0; i < 6; i++ {
		out = append(out, i, -i)
	}
	return out
}

func unprovableTrips(n int) []int {
	out := make([]int, 0) // loop bound unknown: silent
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

func alreadyCapped() []int {
	out := make([]int, 0, len(modes)) // has a capacity: silent
	for _, m := range modes {
		out = append(out, m)
	}
	return out
}

func reassigned() []int {
	out := make([]int, 0) // reassigned to something else: silent
	for _, m := range modes {
		out = append(out, m)
	}
	out = nil
	return out
}

func spreadAppend(extra []int) []int {
	out := make([]int, 0) // spread defeats element counting: silent
	for range modes {
		out = append(out, extra...)
	}
	return out
}

func appendOutsideLoop() []int {
	out := make([]int, 0) // no loop growth: silent
	out = append(out, 1)
	return out
}
