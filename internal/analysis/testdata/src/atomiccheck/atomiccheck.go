// Package atomiccheck is the golden-diagnostic package for the
// atomiccheck analyzer.
package atomiccheck

import "sync/atomic"

// Hits mixes package-function atomics with plain access.
type Hits struct {
	n     uint64
	other int64
}

// Inc is the atomic side.
func (h *Hits) Inc() {
	atomic.AddUint64(&h.n, 1)
}

// Read races Inc: the load establishes no happens-before.
func (h *Hits) Read() uint64 {
	return h.n // want `plain read of field n`
}

// Reset races Inc the other way.
func (h *Hits) Reset() {
	h.n = 0 // want `plain write of field n`
}

// NewHits is a constructor: the value is not yet shared, so the plain
// write is fine.
func NewHits() *Hits {
	h := &Hits{}
	h.n = 0
	return h
}

// bumpOther never touches an atomically-accessed field: silent.
func (h *Hits) bumpOther() {
	h.other++
}

// Typed uses a typed atomic — plain access is unrepresentable, and the
// methods count as atomic sites only.
type Typed struct {
	v atomic.Int64
}

// Add is all-atomic: silent.
func (t *Typed) Add(d int64) int64 {
	return t.v.Add(d)
}

// mixedSameFunc touches the field both ways inside one function — the
// analyzer only flags cross-function mixes, where neither side can see
// the other's discipline.
type mixedSameFunc struct {
	k int64
}

func (m *mixedSameFunc) swapIn(v int64) int64 {
	m.k = v
	return atomic.LoadInt64(&m.k)
}
