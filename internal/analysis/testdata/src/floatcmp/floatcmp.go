// Package floatcmp is the golden-diagnostic package for the floatcmp
// analyzer: every // want comment marks a line that must fire, and every
// silent line must stay silent.
package floatcmp

import "math"

const tolerance = 1e-9

// Scores compares correlation scores the wrong way.
func Scores(score, best float64) bool {
	if score == best { // want `floating-point == comparison`
		return true
	}
	return score != best // want `floating-point != comparison`
}

// MixedOperands fires when only one side is a float.
func MixedOperands(rssi float64) bool {
	return rssi == -107 // want `floating-point == comparison`
}

// Float32 fires for the narrow type too.
func Float32(a, b float32) bool {
	return a == b // want `floating-point == comparison`
}

// NamedFloat fires for defined types with a floating underlying type.
type DBm float64

func NamedFloat(a, b DBm) bool {
	return a != b // want `floating-point != comparison`
}

// NaNIdiom is the canonical self-comparison NaN test; it must not fire.
func NaNIdiom(v float64) bool {
	return v != v
}

// Ordered comparisons are the sanctioned alternative; they must not fire.
func Ordered(a, b float64) bool {
	return a <= b || a > b
}

// Ints are not the analyzer's business.
func Ints(a, b int) bool {
	return a == b
}

// ConstFold compares two compile-time constants; exact by nature.
func ConstFold() bool {
	return math.Pi == 3.141592653589793
}

// approxEqual is an epsilon helper: the exact comparison inside it is the
// point of the function, so it must not fire.
func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tolerance
}

// Suppressed demonstrates //lint:ignore: the sentinel comparison is
// deliberate and documented, so it must not fire.
func Suppressed(width float64) float64 {
	//lint:ignore floatcmp zero value means "unset" in this config struct
	if width == 0 {
		width = 900
	}
	return width
}

// Consumers keeps approxEqual referenced.
var _ = approxEqual(1, 1)
