package analysis

import (
	"errors"
	"fmt"
	"go/format"
	"go/token"
	"os"
	"path/filepath"
	"sort"
)

// Suggested fixes: an analyzer that can name the repair attaches machine-
// applicable text edits to its diagnostic. The driver's -fix mode applies
// every non-conflicting fix, runs the result through gofmt, and writes
// each file atomically — applying the same fixes twice is a no-op, which
// CI asserts.

// TextEdit replaces the half-open byte range [Pos.Offset, End.Offset) of
// one file with NewText.
type TextEdit struct {
	Pos     token.Position
	End     token.Position
	NewText string
}

// Fix is one suggested repair: a human-readable description plus the
// edits that implement it. All edits of one fix are applied atomically or
// not at all.
type Fix struct {
	Message string
	Edits   []TextEdit
}

// Edit builds a TextEdit from token positions of this pass's fileset.
func (p *Pass) Edit(from, to token.Pos, newText string) TextEdit {
	return TextEdit{Pos: p.Fset.Position(from), End: p.Fset.Position(to), NewText: newText}
}

// ReportWithFix records a diagnostic carrying a suggested fix.
func (p *Pass) ReportWithFix(pos token.Pos, message string, fix Fix) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  message,
		Fixes:    []Fix{fix},
	})
}

// FixResult summarizes one ApplyFixes run.
type FixResult struct {
	// Files lists the files rewritten, sorted.
	Files []string
	// Applied counts the fixes whose edits landed.
	Applied int
	// Skipped counts the fixes dropped because their edits overlapped an
	// already-accepted fix.
	Skipped int
}

// ApplyFixes applies every suggested fix carried by diags to the files on
// disk. Fixes are accepted greedily in diagnostic order; a fix whose
// edits overlap an already-accepted edit is skipped whole. Each rewritten
// file is formatted with gofmt and replaced atomically (write to a
// temporary file in the same directory, then rename), so a crash cannot
// leave a half-edited source file.
func ApplyFixes(diags []Diagnostic) (*FixResult, error) {
	type span struct{ start, end int }
	accepted := make(map[string][]span)  // file -> claimed ranges
	edits := make(map[string][]TextEdit) // file -> edits to apply
	res := &FixResult{}

	overlaps := func(file string, s span) bool {
		for _, a := range accepted[file] {
			if s.start < a.end && a.start < s.end {
				return true
			}
		}
		return false
	}

	for _, d := range diags {
		for _, fix := range d.Fixes {
			ok := len(fix.Edits) > 0
			for _, e := range fix.Edits {
				if e.End.Offset < e.Pos.Offset || e.Pos.Filename == "" || e.Pos.Filename != e.End.Filename {
					ok = false
					break
				}
				if overlaps(e.Pos.Filename, span{e.Pos.Offset, e.End.Offset}) {
					ok = false
					break
				}
			}
			if !ok {
				res.Skipped++
				continue
			}
			for _, e := range fix.Edits {
				accepted[e.Pos.Filename] = append(accepted[e.Pos.Filename], span{e.Pos.Offset, e.End.Offset})
				edits[e.Pos.Filename] = append(edits[e.Pos.Filename], e)
			}
			res.Applied++
		}
	}

	for file, es := range edits {
		if err := applyFileEdits(file, es); err != nil {
			return res, fmt.Errorf("fix %s: %w", file, err)
		}
		res.Files = append(res.Files, file)
	}
	sort.Strings(res.Files)
	return res, nil
}

// applyFileEdits splices the accepted edits into one file, formats, and
// writes atomically. Edits are applied back to front so earlier offsets
// stay valid.
func applyFileEdits(file string, edits []TextEdit) error {
	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	sort.Slice(edits, func(i, j int) bool { return edits[i].Pos.Offset > edits[j].Pos.Offset })
	out := src
	for _, e := range edits {
		if e.End.Offset > len(out) {
			return fmt.Errorf("edit range [%d, %d) outside file of %d bytes (stale positions?)",
				e.Pos.Offset, e.End.Offset, len(out))
		}
		next := make([]byte, 0, len(out)-(e.End.Offset-e.Pos.Offset)+len(e.NewText))
		next = append(next, out[:e.Pos.Offset]...)
		next = append(next, e.NewText...)
		next = append(next, out[e.End.Offset:]...)
		out = next
	}
	formatted, err := format.Source(out)
	if err != nil {
		return fmt.Errorf("result does not parse (fix bug?): %w", err)
	}

	info, err := os.Stat(file)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(file), "."+filepath.Base(file)+".fix*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(formatted)
	merr := tmp.Chmod(info.Mode().Perm())
	cerr := tmp.Close()
	if err := errors.Join(werr, merr, cerr); err != nil {
		return errors.Join(err, os.Remove(tmpName))
	}
	if err := os.Rename(tmpName, file); err != nil {
		return errors.Join(err, os.Remove(tmpName))
	}
	return nil
}
