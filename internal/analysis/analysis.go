// Package analysis is a minimal, dependency-free counterpart of
// golang.org/x/tools/go/analysis: just enough framework to write
// type-aware linters for this repository and drive them from
// cmd/rups-lint. An Analyzer inspects one type-checked package at a time
// and reports Diagnostics; the runner (Run) applies a set of analyzers to
// loaded packages and filters diagnostics suppressed with
// //lint:ignore directives.
//
// See docs/STATIC_ANALYSIS.md for the catalogue of analyzers and how to
// write a new one.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"

	"rups/internal/analysis/loader"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. By convention it is a short lowercase word.
	Name string
	// Doc is the help text: first line is a one-sentence summary.
	Doc string
	// Run applies the check to one package, reporting problems through
	// pass.Report or pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Program holds program-wide facts shared by every pass of one run:
	// the interprocedural dataflow program (*dataflow.Program) when the
	// driver built one. It is typed `any` because dataflow sits above this
	// package; analyzers retrieve it with dataflow.ProgramOf, which falls
	// back to a single-package program when the driver supplied none.
	Program any

	diags []Diagnostic
	supps []SuppressRange
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Fixes carries suggested repairs the driver's -fix mode can apply;
	// see fix.go. Nil for purely advisory diagnostics.
	Fixes []Fix
}

// String formats the diagnostic the way compilers do, with the analyzer
// name appended for grep-ability.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Report records a diagnostic at pos.
func (p *Pass) Report(pos token.Pos, message string) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  message,
	})
}

// Reportf records a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Diagnostics on lines covered by a
// matching //lint:ignore directive are dropped.
func Run(pkgs []*loader.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunWithProgram(pkgs, analyzers, nil)
}

// RunWithProgram is Run with program-wide facts attached to every pass.
// Drivers that load multiple packages build one *dataflow.Program over all
// of them and pass it here, so interprocedural analyzers see call edges and
// effect summaries across package boundaries instead of rebuilding a
// single-package view per pass.
func RunWithProgram(pkgs []*loader.Package, analyzers []*Analyzer, program any) ([]Diagnostic, error) {
	res, err := RunAll(pkgs, analyzers, program, 1)
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// RunResult is the full outcome of one analyzer run.
type RunResult struct {
	// Diags are the surviving diagnostics, sorted by position.
	Diags []Diagnostic
	// Suppressed counts diagnostics retired by suppression facts.
	Suppressed int
	// Facts are the suppression facts every pass emitted, sorted; see
	// suppress.go.
	Facts []SuppressRange
}

// RunAll applies every analyzer to every package on up to workers
// goroutines and returns the surviving diagnostics sorted by position.
// Packages are the unit of parallelism: one worker runs the full roster
// over one package, so per-package state (ignore directives, suppression
// facts) never crosses a goroutine. Because diagnostics are merged in
// package order and then fully sorted — position, analyzer, message —
// output is byte-identical for every worker count.
//
// Diagnostics on lines covered by a matching //lint:ignore directive are
// dropped, then diagnostics covered by a suppression fact (from any
// package's passes) are retired.
func RunAll(pkgs []*loader.Package, analyzers []*Analyzer, program any, workers int) (*RunResult, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}

	type pkgOut struct {
		diags []Diagnostic
		supps []SuppressRange
		err   error
	}
	outs := make([]pkgOut, len(pkgs))
	runPkg := func(i int) {
		pkg := pkgs[i]
		ignores := collectIgnores(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Program:   program,
			}
			if err := a.Run(pass); err != nil {
				outs[i].err = fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
				return
			}
			for _, d := range pass.diags {
				if !ignores.matches(d) {
					outs[i].diags = append(outs[i].diags, d)
				}
			}
			outs[i].supps = append(outs[i].supps, pass.supps...)
		}
	}

	if workers <= 1 {
		for i := range pkgs {
			runPkg(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					runPkg(i)
				}
			}()
		}
		for i := range pkgs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	res := &RunResult{}
	var all []Diagnostic
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		all = append(all, outs[i].diags...)
		res.Facts = append(res.Facts, outs[i].supps...)
	}
	sortSuppressions(res.Facts)
	all, res.Suppressed = applySuppressions(all, res.Facts)
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if all[i].Analyzer != all[j].Analyzer {
			return all[i].Analyzer < all[j].Analyzer
		}
		return all[i].Message < all[j].Message
	})
	res.Diags = all
	return res, nil
}
