// Package analysis is a minimal, dependency-free counterpart of
// golang.org/x/tools/go/analysis: just enough framework to write
// type-aware linters for this repository and drive them from
// cmd/rups-lint. An Analyzer inspects one type-checked package at a time
// and reports Diagnostics; the runner (Run) applies a set of analyzers to
// loaded packages and filters diagnostics suppressed with
// //lint:ignore directives.
//
// See docs/STATIC_ANALYSIS.md for the catalogue of analyzers and how to
// write a new one.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"rups/internal/analysis/loader"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. By convention it is a short lowercase word.
	Name string
	// Doc is the help text: first line is a one-sentence summary.
	Doc string
	// Run applies the check to one package, reporting problems through
	// pass.Report or pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Program holds program-wide facts shared by every pass of one run:
	// the interprocedural dataflow program (*dataflow.Program) when the
	// driver built one. It is typed `any` because dataflow sits above this
	// package; analyzers retrieve it with dataflow.ProgramOf, which falls
	// back to a single-package program when the driver supplied none.
	Program any

	diags []Diagnostic
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic the way compilers do, with the analyzer
// name appended for grep-ability.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Report records a diagnostic at pos.
func (p *Pass) Report(pos token.Pos, message string) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  message,
	})
}

// Reportf records a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Diagnostics on lines covered by a
// matching //lint:ignore directive are dropped.
func Run(pkgs []*loader.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunWithProgram(pkgs, analyzers, nil)
}

// RunWithProgram is Run with program-wide facts attached to every pass.
// Drivers that load multiple packages build one *dataflow.Program over all
// of them and pass it here, so interprocedural analyzers see call edges and
// effect summaries across package boundaries instead of rebuilding a
// single-package view per pass.
func RunWithProgram(pkgs []*loader.Package, analyzers []*Analyzer, program any) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Program:   program,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !ignores.matches(d) {
					all = append(all, d)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}
