// Package analysistest runs an analyzer over a golden package and checks
// its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// A test package lives under testdata/src/<name>/ next to the analyzer's
// test. Lines that must trigger a diagnostic carry a comment of the form
//
//	x := a == b // want "floating-point == comparison"
//
// where each quoted string is a regular expression that must match the
// message of one diagnostic reported on that line. Lines without a want
// comment must stay silent; both directions are asserted.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"rups/internal/analysis"
	"rups/internal/analysis/dataflow"
	"rups/internal/analysis/loader"
)

// expectation is one // want entry.
type expectation struct {
	file    string
	line    int
	pattern string
	matched bool
}

// Run loads the package directories under testdata/src in one go — so
// cross-package golden setups (a restricted package calling a helper
// package) share one interprocedural program, exactly like the real
// driver — and applies the analyzer, asserting that diagnostics and
// // want comments agree.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	patterns := make([]string, len(pkgs))
	for i, pkg := range pkgs {
		patterns[i] = "./" + pkg
	}
	loaded, err := loader.Load(filepath.Join(testdata, "src"), patterns...)
	if err != nil {
		t.Errorf("%v: %v", pkgs, err)
		return
	}
	for _, lp := range loaded {
		if len(lp.TypeErrors) > 0 {
			t.Errorf("%s: type errors in golden package: %v", lp.Path, lp.TypeErrors)
		}
	}
	diags, err := analysis.RunWithProgram(loaded, []*analysis.Analyzer{a}, dataflow.NewProgram(loaded))
	if err != nil {
		t.Errorf("%v: %v", pkgs, err)
		return
	}
	checkExpectations(t, strings.Join(pkgs, ","), loaded, diags)
}

// checkExpectations matches diagnostics against want comments.
func checkExpectations(t *testing.T, pkg string, loaded []*loader.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, lp := range loaded {
		for _, file := range lp.Syntax {
			for _, group := range file.Comments {
				for _, c := range group.List {
					wants = append(wants, parseWant(lp.Fset, c.Pos(), c.Text)...)
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			ok, err := regexpMatch(w.pattern, d.Message)
			if err != nil {
				t.Errorf("%s: bad want pattern %q: %v", pkg, w.pattern, err)
				w.matched = true // don't report it twice
				continue
			}
			if ok {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pkg, d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: no diagnostic matching %q", pkg, filepath.Base(w.file), w.line, w.pattern)
		}
	}
}

// parseWant extracts the expectations from one comment.
func parseWant(fset *token.FileSet, pos token.Pos, text string) []*expectation {
	body := strings.TrimPrefix(text, "//")
	idx := strings.Index(body, "want ")
	if idx < 0 {
		return nil
	}
	position := fset.Position(pos)
	rest := strings.TrimSpace(body[idx+len("want "):])
	var out []*expectation
	for rest != "" {
		quoted, err := strconv.QuotedPrefix(rest)
		if err != nil {
			break
		}
		pattern, err := strconv.Unquote(quoted)
		if err != nil {
			break
		}
		out = append(out, &expectation{
			file:    position.Filename,
			line:    position.Line,
			pattern: pattern,
		})
		rest = strings.TrimSpace(rest[len(quoted):])
	}
	return out
}

// regexpMatch reports whether message matches the pattern as an unanchored
// regular expression.
func regexpMatch(pattern, message string) (bool, error) {
	return regexp.MatchString(pattern, message)
}
