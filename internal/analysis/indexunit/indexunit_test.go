package indexunit_test

import (
	"testing"

	"rups/internal/analysis/analysistest"
	"rups/internal/analysis/indexunit"
)

func TestIndexunit(t *testing.T) {
	analysistest.Run(t, "../testdata", indexunit.Analyzer, "indexunit")
}
