// Package indexunit polices the boundary between the two "metre" units in
// this codebase: trajectory metre-indices (int — the i-th per-metre mark
// since recording began) and metre distances (float64 — lengths along the
// road). The two are numerically interchangeable, which is exactly why raw
// float64(idx) / int(dist) conversions are dangerous: nothing marks the
// place where an index silently becomes a distance. SYNPoint.RelativeDistance
// is the canonical trap.
//
// The analyzer flags raw conversions between index-named integers and
// distance-named floats and points at the sanctioned helpers,
// trajectory.MetresFromIndex and trajectory.IndexFromMetres, which make the
// unit change explicit and auditable.
package indexunit

import (
	"go/ast"
	"go/types"
	"regexp"

	"rups/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "indexunit",
	Doc: "flags raw float64(index)/int(distance) conversions between trajectory " +
		"metre-indices and metre distances; use trajectory.MetresFromIndex / IndexFromMetres",
	Run: run,
}

var (
	// indexName matches identifiers that carry a trajectory metre-index.
	// "mark" is in the set because a trajectory records one mark per metre:
	// an int named mark is the i-th metre mark, not a distance — the exact
	// confusion behind the Aware.DistanceBetween unit bug.
	indexName = regexp.MustCompile(`(?i)(idx|index|mark)`)
	// distName matches identifiers that carry a metre distance.
	distName = regexp.MustCompile(`(?i)(dist|metre|meter|gap)`)
	// sanctioned are the helpers allowed to perform the raw conversion.
	sanctioned = map[string]bool{"MetresFromIndex": true, "IndexFromMetres": true}
)

func run(pass *analysis.Pass) error {
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		// Only conversions, not function calls.
		convIdent, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if _, isType := pass.TypesInfo.Uses[convIdent].(*types.TypeName); !isType {
			return true
		}
		if sanctioned[analysis.EnclosingFunc(stack)] {
			return true
		}
		arg := call.Args[0]
		switch convIdent.Name {
		case "float64", "float32":
			if isIntExpr(pass, arg) && mentions(arg, indexName) {
				pass.Reportf(call.Pos(),
					"raw %s() of trajectory index %q; convert with trajectory.MetresFromIndex to make the unit change explicit",
					convIdent.Name, render(arg))
			}
		case "int", "int64", "int32":
			if isFloatExpr(pass, arg) && mentions(arg, distName) {
				pass.Reportf(call.Pos(),
					"raw %s() of metre distance %q; convert with trajectory.IndexFromMetres to make the unit change explicit",
					convIdent.Name, render(arg))
			}
		}
		return true
	})
	return nil
}

// mentions reports whether any identifier or field name inside e matches
// re. Subtrees under the len() builtin are skipped: len(marks) is a count,
// not a metre-index, no matter what the operand is named.
func mentions(e ast.Expr, re *regexp.Regexp) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "len" {
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok && re.MatchString(id.Name) {
			found = true
			return false
		}
		return !found
	})
	return found
}

func isIntExpr(pass *analysis.Pass, e ast.Expr) bool {
	return basicInfo(pass, e)&types.IsInteger != 0
}

func isFloatExpr(pass *analysis.Pass, e ast.Expr) bool {
	return basicInfo(pass, e)&types.IsFloat != 0
}

func basicInfo(pass *analysis.Pass, e ast.Expr) types.BasicInfo {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return 0
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0
	}
	return b.Info()
}

// render produces a short printable form of the flagged expression.
func render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.BinaryExpr:
		return render(e.X) + " " + e.Op.String() + " " + render(e.Y)
	case *ast.ParenExpr:
		return "(" + render(e.X) + ")"
	case *ast.CallExpr:
		return render(e.Fun) + "(…)"
	case *ast.IndexExpr:
		return render(e.X) + "[…]"
	case *ast.BasicLit:
		return e.Value
	default:
		return "expression"
	}
}
