package analysis

import (
	"path/filepath"
	"testing"

	"rups/internal/analysis/loader"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text      string
		ok        bool
		analyzers []string
		reason    string
	}{
		{"//lint:ignore floatcmp zero means unset", true, []string{"floatcmp"}, "zero means unset"},
		{"// lint:ignore wiretaint,errflow checked by caller", true, []string{"wiretaint", "errflow"}, "checked by caller"},
		{"//lint:ignore all generated code", true, []string{"all"}, "generated code"},
		{"//lint:ignore floatcmp", true, []string{"floatcmp"}, ""}, // unjustified: listed, but inert
		{"// just a comment", false, nil, ""},
		{"//lint:ignore", false, nil, ""},
	}
	for _, c := range cases {
		ig, ok := parseDirective(c.text)
		if ok != c.ok {
			t.Errorf("parseDirective(%q): ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(ig.Analyzers) != len(c.analyzers) {
			t.Errorf("parseDirective(%q): analyzers = %v, want %v", c.text, ig.Analyzers, c.analyzers)
			continue
		}
		for i := range c.analyzers {
			if ig.Analyzers[i] != c.analyzers[i] {
				t.Errorf("parseDirective(%q): analyzers = %v, want %v", c.text, ig.Analyzers, c.analyzers)
			}
		}
		if ig.Reason != c.reason {
			t.Errorf("parseDirective(%q): reason = %q, want %q", c.text, ig.Reason, c.reason)
		}
	}
}

// TestCollectIgnores walks the floatcmp golden package, which carries
// exactly one justified suppression.
func TestCollectIgnores(t *testing.T) {
	dir := filepath.Join("testdata", "src", "floatcmp")
	pkgs, err := loader.Load(dir, ".")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	ignores := CollectIgnores(pkgs)
	if len(ignores) != 1 {
		t.Fatalf("got %d ignores, want 1: %+v", len(ignores), ignores)
	}
	ig := ignores[0]
	if len(ig.Analyzers) != 1 || ig.Analyzers[0] != "floatcmp" {
		t.Errorf("analyzers = %v, want [floatcmp]", ig.Analyzers)
	}
	if ig.Reason == "" {
		t.Error("reason is empty, want the justification text")
	}
	if ig.Pos.Line == 0 || filepath.Base(ig.Pos.Filename) != "floatcmp.go" {
		t.Errorf("position = %v, want a line in floatcmp.go", ig.Pos)
	}
}

// TestUnjustifiedDirectiveIsInert confirms the filtering contract: a
// reasonless directive appears in CollectIgnores but suppresses nothing.
func TestUnjustifiedDirectiveIsInert(t *testing.T) {
	ig, ok := parseDirective("//lint:ignore floatcmp")
	if !ok {
		t.Fatal("directive not recognized")
	}
	if ig.Reason != "" {
		t.Fatalf("reason = %q, want empty", ig.Reason)
	}
	// collectIgnores (the suppression path) drops it; CollectIgnores (the
	// audit path) must keep it. The parse-level contract above is what
	// both build on.
}
