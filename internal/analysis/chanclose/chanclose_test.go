package chanclose_test

import (
	"testing"

	"rups/internal/analysis/analysistest"
	"rups/internal/analysis/chanclose"
)

func TestChanclose(t *testing.T) {
	analysistest.Run(t, "../testdata", chanclose.Analyzer, "chanclose")
}
