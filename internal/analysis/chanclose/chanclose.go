// Package chanclose flags channel lifecycle hazards across function and
// package boundaries, using the interprocedural program's channel-operation
// and lock-acquisition summaries:
//
//   - a send that can race a close in another function when no shared lock
//     orders them — the engine.Close send-on-closed-channel panic shipped
//     before PR 4's fix, where a plain `closed` bool was checked outside
//     any lock;
//   - a close executed in a loop or at multiple sites (double close);
//   - a close of a channel received as a parameter — channels are closed
//     by their owning sender, not by a callee handed the channel.
//
// The fixed engine shape stays silent: the send holds mu.RLock and the
// closing function acquires mu before flipping the closed flag, so the
// close is ordered after every in-flight send.
package chanclose

import (
	"sort"
	"strings"

	"rups/internal/analysis"
	"rups/internal/analysis/dataflow"
)

// Analyzer flags send/close races, double closes, and closes by non-owners.
var Analyzer = &analysis.Analyzer{
	Name: "chanclose",
	Doc: "flags sends racing a close without a shared lock, double closes, " +
		"and closes of channels received as parameters (the engine.Close " +
		"send-on-closed-channel bug class)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	prog := dataflow.ProgramOf(pass)
	local := func(s dataflow.Site) bool {
		return s.Fn != nil && s.Fn.Pkg() != nil && s.Fn.Pkg().Path() == pass.Pkg.Path()
	}
	for _, key := range prog.ChanKeys() {
		var sends, closes []dataflow.ChanOp
		for _, op := range prog.ChanOpsOf(key) {
			switch op.Kind {
			case dataflow.ChanSend:
				sends = append(sends, op)
			case dataflow.ChanClose:
				closes = append(closes, op)
			}
		}
		if len(closes) == 0 {
			continue
		}
		sort.Slice(closes, func(i, j int) bool { return closes[i].Pos < closes[j].Pos })

		for _, c := range closes {
			if !local(c.Site) {
				continue
			}
			if c.FromParam {
				pass.Reportf(c.Pos, "close(%s) closes a channel received as a parameter: "+
					"only the owning sender should close it", c.Name)
			}
			// A loop-resident close only double-closes when the channel is
			// loop-invariant (a field or package var); a per-iteration local
			// (range over a channel slice) is a fresh channel each time.
			if c.InLoop && !strings.HasPrefix(c.Key, "local:") {
				pass.Reportf(c.Pos, "close(%s) inside a loop: a second iteration "+
					"panics with double close", c.Name)
			}
		}

		// Multiple close sites double-close unless every one is guarded by
		// sync.Once; the first (position-sorted) site is treated as the
		// legitimate one.
		if len(closes) > 1 && !allOnce(closes) {
			for _, c := range closes[1:] {
				if local(c.Site) {
					pass.Reportf(c.Pos, "close(%s) is also closed at another site: "+
						"possible double close", c.Name)
				}
			}
		}

		// A send races the close when they live in different functions and
		// the sender holds no lock that the closing function acquires — with
		// a shared lock (engine's mu.RLock around the send, mu.Lock before
		// the close) the close is ordered after the send.
		for _, s := range sends {
			if !local(s.Site) {
				continue
			}
			for _, c := range closes {
				if c.FnID == s.FnID {
					continue // sequential within one function
				}
				closeFn := prog.FuncByID(c.FnID)
				if closeFn == nil {
					continue
				}
				if holdsAny(s.Held, closeFn.Effects.Acquires) {
					continue
				}
				pass.Reportf(s.Pos, "send on %s can race with close in %s: no shared "+
					"lock orders the send before the close (send on a closed channel panics)",
					s.Name, dataflow.FuncLabel(closeFn.Fn))
				break
			}
		}
	}
	return nil
}

func allOnce(ops []dataflow.ChanOp) bool {
	for _, op := range ops {
		if !op.InOnce {
			return false
		}
	}
	return true
}

func holdsAny(held []string, acquires map[string]bool) bool {
	for _, h := range held {
		if acquires[h] {
			return true
		}
	}
	return false
}
