package wiretaint_test

import (
	"testing"

	"rups/internal/analysis/analysistest"
	"rups/internal/analysis/wiretaint"
)

func TestWiretaint(t *testing.T) {
	analysistest.Run(t, "../testdata", wiretaint.Analyzer, "wiretaint")
}
