package wiretaint_test

import (
	"testing"

	"rups/internal/analysis/analysistest"
	"rups/internal/analysis/wiretaint"
)

func TestWiretaint(t *testing.T) {
	analysistest.Run(t, "../testdata", wiretaint.Analyzer, "wiretaint")
}

// TestWiretaintCrossPackage pins the pre-fix trace.ReadFrom shape with the
// decode helper split into a second package: the finding only exists when
// taint summaries propagate across package boundaries.
func TestWiretaintCrossPackage(t *testing.T) {
	analysistest.Run(t, "../testdata", wiretaint.Analyzer, "wirecross", "wiredec")
}
