// Package wiretaint flags untrusted wire input flowing into allocations,
// indexing, or loop bounds without an intervening bound check.
//
// Every decode path in internal/trace and internal/v2v is
// attacker-reachable — trajectories arrive over DSRC — and the bug class
// is concrete: before PR 1, trace.ReadFrom trusted a wire-encoded count
// in a make() call, so a corrupt 4-byte count meant gigabytes of
// allocation from a few hundred KB of input. The fuzzer found that once;
// this analyzer finds the shape every time.
//
// Sources: []byte parameters and fields, io.ReadAll / os.ReadFile
// results, and encoding/binary integer decodes. Sinks: make sizes,
// slice/array/string indices, slice bounds, and loop bounds. A value is
// cleared (Tainted → Bounded) by a dominating bound check — an if whose
// condition mentions the value and whose body returns, or clamps it —
// or by min() against a trusted limit. Calls within the package are
// handled by summaries: passing a tainted count to a same-package helper
// whose parameter reaches a sink unguarded is flagged at the call site.
package wiretaint

import (
	"go/ast"
	"go/types"

	"rups/internal/analysis"
	"rups/internal/analysis/dataflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "wiretaint",
	Doc: "flags wire-decoded values reaching make, indexing, or loop bounds " +
		"without a bound check (the trace.ReadFrom oversized-count bug class)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	df := dataflow.AnalysisOf(pass)
	for _, flow := range df.Flows {
		checkSinks(pass, df, flow)
		checkCallSites(pass, df, flow)
	}
	return nil
}

// checkSinks reports tainted values at the function's own sinks.
func checkSinks(pass *analysis.Pass, df *dataflow.Analysis, flow *dataflow.FuncFlow) {
	for _, sink := range flow.Sinks {
		if df.Fact(sink.Val, flow, sink.Val.Pos()) != dataflow.Tainted {
			continue
		}
		pass.Reportf(sink.Val.Pos(),
			"wire-decoded value %s reaches %s without a bound check; "+
				"validate it against the bytes actually present before use",
			describe(sink.Val), sink.Kind)
	}
}

// checkCallSites reports tainted arguments passed to same-package
// functions whose parameter reaches a sink unguarded.
func checkCallSites(pass *analysis.Pass, df *dataflow.Analysis, flow *dataflow.FuncFlow) {
	ast.Inspect(flow.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil {
			return true
		}
		// Same-package summaries resolve directly; cross-package ones come
		// from the interprocedural program — a tainted count handed to a
		// decode helper in another package is the same bug.
		s := df.SummaryAny(callee)
		if s == nil {
			return true
		}
		for i, arg := range call.Args {
			if i >= len(s.UnguardedParams) || !s.UnguardedParams[i] {
				continue
			}
			if df.Fact(arg, flow, arg.Pos()) != dataflow.Tainted {
				continue
			}
			pass.Reportf(arg.Pos(),
				"wire-decoded value %s passed to %s, whose parameter %q reaches "+
					"an allocation or index without a bound check",
				describe(arg), callee.Name(), s.ParamNames[i])
		}
		return true
	})
}

// calleeFunc resolves the called function object, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// describe renders a short printable form of the offending expression.
func describe(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return "`" + e.Name + "`"
	case *ast.SelectorExpr:
		if base, ok := e.X.(*ast.Ident); ok {
			return "`" + base.Name + "." + e.Sel.Name + "`"
		}
		return "`" + e.Sel.Name + "`"
	case *ast.CallExpr:
		return "from " + describe(e.Fun)
	case *ast.BinaryExpr:
		return "in expression"
	default:
		return "here"
	}
}
