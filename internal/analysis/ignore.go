package analysis

import (
	"strings"

	"rups/internal/analysis/loader"
)

// ignoreSet records //lint:ignore directives: which analyzer names are
// suppressed on which file:line. A directive written on its own line
// suppresses the line below it; written at the end of a statement it
// suppresses that statement's line.
type ignoreSet struct {
	// byLine maps filename → line → analyzer names ("all" wildcards).
	byLine map[string]map[int][]string
}

// directivePrefix introduces a suppression comment:
//
//	//lint:ignore floatcmp exact zero is the documented sentinel
//
// The analyzer list may be comma-separated, or "all".
const directivePrefix = "lint:ignore"

// collectIgnores scans a package's comments for suppression directives.
func collectIgnores(pkg *loader.Package) *ignoreSet {
	set := &ignoreSet{byLine: make(map[string]map[int][]string)}
	for _, file := range pkg.Syntax {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					// A directive without a reason is ignored; the reason is
					// mandatory so suppressions stay auditable.
					continue
				}
				names := strings.Split(fields[0], ",")
				pos := pkg.Fset.Position(c.Pos())
				lines := set.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					set.byLine[pos.Filename] = lines
				}
				// The directive covers its own line (end-of-line form) and
				// the next line (own-line form).
				lines[pos.Line] = append(lines[pos.Line], names...)
				lines[pos.Line+1] = append(lines[pos.Line+1], names...)
			}
		}
	}
	return set
}

// matches reports whether d is suppressed.
func (s *ignoreSet) matches(d Diagnostic) bool {
	lines, ok := s.byLine[d.Pos.Filename]
	if !ok {
		return false
	}
	for _, name := range lines[d.Pos.Line] {
		if name == "all" || name == d.Analyzer {
			return true
		}
	}
	return false
}
