package analysis

import (
	"go/token"
	"sort"
	"strings"

	"rups/internal/analysis/loader"
)

// Ignore is one //lint:ignore directive, justified or not. The lint
// driver's -list-ignores mode prints these so every suppression in the
// tree stays auditable, and CI fails on any with an empty Reason.
type Ignore struct {
	// Pos is where the directive comment sits.
	Pos token.Position
	// Analyzers lists the suppressed analyzer names ("all" wildcards).
	Analyzers []string
	// Reason is the justification text after the analyzer list; empty
	// means the directive is unjustified and therefore inert.
	Reason string
}

// CollectIgnores returns every suppression directive in the packages, in
// file/line order, including unjustified ones (which suppress nothing
// but must be surfaced rather than silently dropped).
func CollectIgnores(pkgs []*loader.Package) []Ignore {
	var out []Ignore
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, group := range file.Comments {
				for _, c := range group.List {
					ig, ok := parseDirective(c.Text)
					if !ok {
						continue
					}
					ig.Pos = pkg.Fset.Position(c.Pos())
					out = append(out, ig)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// parseDirective splits one comment into a directive, if it is one.
func parseDirective(text string) (Ignore, bool) {
	text = strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(text, directivePrefix) {
		return Ignore{}, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
	if rest == "" {
		return Ignore{}, false
	}
	names, reason, _ := strings.Cut(rest, " ")
	return Ignore{
		Analyzers: strings.Split(names, ","),
		Reason:    strings.TrimSpace(reason),
	}, true
}

// ignoreSet records //lint:ignore directives: which analyzer names are
// suppressed on which file:line. A directive written on its own line
// suppresses the line below it; written at the end of a statement it
// suppresses that statement's line.
type ignoreSet struct {
	// byLine maps filename → line → analyzer names ("all" wildcards).
	byLine map[string]map[int][]string
}

// directivePrefix introduces a suppression comment:
//
//	//lint:ignore floatcmp exact zero is the documented sentinel
//
// The analyzer list may be comma-separated, or "all".
const directivePrefix = "lint:ignore"

// collectIgnores scans a package's comments for suppression directives.
func collectIgnores(pkg *loader.Package) *ignoreSet {
	set := &ignoreSet{byLine: make(map[string]map[int][]string)}
	for _, file := range pkg.Syntax {
		for _, group := range file.Comments {
			for _, c := range group.List {
				ig, ok := parseDirective(c.Text)
				if !ok || ig.Reason == "" {
					// A directive without a reason suppresses nothing; the
					// reason is mandatory so suppressions stay auditable.
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := set.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					set.byLine[pos.Filename] = lines
				}
				// The directive covers its own line (end-of-line form) and
				// the next line (own-line form).
				lines[pos.Line] = append(lines[pos.Line], ig.Analyzers...)
				lines[pos.Line+1] = append(lines[pos.Line+1], ig.Analyzers...)
			}
		}
	}
	return set
}

// matches reports whether d is suppressed.
func (s *ignoreSet) matches(d Diagnostic) bool {
	lines, ok := s.byLine[d.Pos.Filename]
	if !ok {
		return false
	}
	for _, name := range lines[d.Pos.Line] {
		if name == "all" || name == d.Analyzer {
			return true
		}
	}
	return false
}
