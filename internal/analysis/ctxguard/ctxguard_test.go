package ctxguard_test

import (
	"testing"

	"rups/internal/analysis/analysistest"
	"rups/internal/analysis/ctxguard"
)

func TestCtxguard(t *testing.T) {
	analysistest.Run(t, "../testdata", ctxguard.Analyzer, "ctxguard")
}
