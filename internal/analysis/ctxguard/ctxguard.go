// Package ctxguard flags goroutines started without any cancellation
// path. A worker that cannot be told to stop is a leak: in a
// long-running RUPS service the scanner, v2v exchange, and simulation
// layers all spawn per-query or per-peer goroutines, and every one of
// them must be reachable by a context.Context, a done/quit channel, or
// a sync.WaitGroup the parent waits on. A goroutine with none of those
// outlives its request, pins its captures, and accumulates until the
// process dies.
//
// Detection is structural: for each `go` statement, look for a
// cancellation affordance among (a) the call's arguments, (b) the
// callee's receiver, and (c) for function literals, any variable
// referenced inside the body but declared outside it. An affordance is
// a context.Context, any channel-bearing type, or a sync.WaitGroup. A
// channel created *inside* the literal does not count — nobody outside
// can signal on it.
package ctxguard

import (
	"go/ast"
	"go/types"

	"rups/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxguard",
	Doc: "flags goroutines started without a cancellation path " +
		"(no context.Context, done channel, or sync.WaitGroup reaches them)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Preorder(func(n ast.Node) {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		if hasCancellationPath(pass, g.Call) {
			return
		}
		pass.Reportf(g.Pos(),
			"goroutine started without a cancellation path: no context.Context, "+
				"channel, or sync.WaitGroup reaches it, so it cannot be stopped")
	})
	return nil
}

// hasCancellationPath reports whether any cancellation affordance is
// visible to the spawned goroutine.
func hasCancellationPath(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isAffordance(pass.TypesInfo.TypeOf(arg)) {
			return true
		}
	}
	fun := ast.Unparen(call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		return closureCaptures(pass, lit)
	}
	// Named callee: the receiver may carry the affordance (method on a
	// struct holding a quit channel or WaitGroup).
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if isAffordance(pass.TypesInfo.TypeOf(sel.X)) {
			return true
		}
	}
	return false
}

// closureCaptures reports whether the literal's body references an
// affordance-typed variable declared outside the literal. Channels made
// inside the body are excluded: they are invisible to the parent.
func closureCaptures(pass *analysis.Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || !isAffordance(obj.Type()) {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the literal itself
		}
		found = true
		return false
	})
	return found
}

// isAffordance reports whether t is, or contains at one level of
// struct/pointer nesting, a context.Context, a channel, or a
// sync.WaitGroup.
func isAffordance(t types.Type) bool {
	return affordanceIn(t, make(map[types.Type]bool))
}

func affordanceIn(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isContext(t) || isWaitGroup(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		return affordanceIn(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			ft := u.Field(i).Type()
			if isContext(ft) || isWaitGroup(ft) {
				return true
			}
			if _, ok := ft.Underlying().(*types.Chan); ok {
				return true
			}
			if p, ok := ft.Underlying().(*types.Pointer); ok {
				if affordanceIn(p.Elem(), seen) {
					return true
				}
			}
		}
	}
	return false
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isWaitGroup reports whether t is sync.WaitGroup (or *sync.WaitGroup
// after the pointer unwrap in affordanceIn).
func isWaitGroup(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
