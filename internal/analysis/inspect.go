package analysis

import "go/ast"

// Preorder calls fn for every node in every file, in depth-first order.
func (p *Pass) Preorder(fn func(ast.Node)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				fn(n)
			}
			return true
		})
	}
}

// WithStack calls fn for every node with the stack of enclosing nodes,
// outermost first (stack[0] is the *ast.File, stack[len-1] is n itself).
// Returning false from fn prunes the subtree below n.
func (p *Pass) WithStack(fn func(n ast.Node, stack []ast.Node) bool) {
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !fn(n, stack) {
				// ast.Inspect skips the closing nil callback for pruned
				// subtrees, so pop the stack here.
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}

// EnclosingFunc returns the name of the innermost function declaration or
// literal in stack, or "" when n is at file scope. Function literals
// report the name of their nearest named ancestor function.
func EnclosingFunc(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}
