// Package allocdiscipline watches the allocation discipline of hot paths
// with the interval engine's cost model. It has two modes:
//
//   - the analyzer proper reports the mechanically fixable pattern: a
//     zero-capacity make([]T, 0) grown by append inside a loop whose trip
//     count the interval engine proves. The diagnostic carries a
//     suggested fix that preallocates the proven capacity, applied by the
//     driver's -fix mode;
//   - Report ranks every allocation site (make, append, the
//     append([]T(nil), src...) deep-copy idiom) by how hot it is — the
//     interprocedural loop multiplicity of its function times its
//     syntactic loop depth — and how big it is, with sizes derived from
//     proven intervals. The driver's -allocreport mode prints the top
//     entries; the engine.Admit snapshot path is the expected leader on
//     this repository.
package allocdiscipline

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"rups/internal/analysis"
	"rups/internal/analysis/dataflow"
)

// Analyzer reports provably preallocatable append loops with a fix.
var Analyzer = &analysis.Analyzer{
	Name: "allocdiscipline",
	Doc: "flags zero-capacity slices grown by append in loops with a proven " +
		"trip bound, suggesting the preallocated capacity (see also -allocreport)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	prog := dataflow.ProgramOf(pass)
	df := prog.AnalysisFor(pass.Pkg)
	if df == nil {
		return nil
	}
	it := df.Interp()
	for _, pf := range prog.Functions() {
		if pf.Pkg.Path() != pass.Pkg.Path() {
			continue
		}
		flow := df.FlowOf(pf.Decl)
		if flow == nil {
			continue
		}
		checkPrealloc(pass, it, flow)
	}
	return nil
}

// growth is one `obj = append(obj, ...)` site inside a loop.
type growth struct {
	loop    ast.Stmt
	perIter int64 // elements appended per call; -1 when a spread defeats counting
}

// checkPrealloc finds `xs := make([]T, 0)` defs whose every growth is an
// append inside a loop with a proven trip bound, and suggests the summed
// capacity.
func checkPrealloc(pass *analysis.Pass, it *dataflow.Interp, flow *dataflow.FuncFlow) {
	info := pass.TypesInfo
	makes := zeroCapMakes(info, flow)
	if len(makes) == 0 {
		return
	}
	grows, ok := collectGrowth(info, flow, makes)
	for obj, mk := range makes {
		gs := grows[obj]
		if !ok[obj] || len(gs) == 0 {
			continue
		}
		total := int64(0)
		proven := true
		for _, g := range gs {
			trips, tok := it.LoopTrips(g.loop, flow)
			if !tok || !trips.HiBounded() || g.perIter < 0 {
				proven = false
				break
			}
			total += trips.Hi * g.perIter
		}
		if !proven || total <= 0 {
			continue
		}
		fix := analysis.Fix{
			Message: fmt.Sprintf("preallocate capacity %d", total),
			Edits: []analysis.TextEdit{
				pass.Edit(mk.Args[1].End(), mk.Args[1].End(), fmt.Sprintf(", %d", total)),
			},
		}
		pass.ReportWithFix(mk.Pos(),
			fmt.Sprintf("append loop provably adds at most %d element(s) to this zero-capacity "+
				"slice: preallocate with make(%s, 0, %d)", total, types.TypeString(info.TypeOf(mk), nil), total),
			fix)
	}
}

// zeroCapMakes maps slice objects to their `make([]T, 0)` initializer.
func zeroCapMakes(info *types.Info, flow *dataflow.FuncFlow) map[types.Object]*ast.CallExpr {
	out := make(map[types.Object]*ast.CallExpr)
	for _, ev := range flow.Events {
		if ev.Kind != dataflow.Def || ev.Compound || ev.Rhs == nil {
			continue
		}
		call, ok := ev.Rhs.(*ast.CallExpr)
		if !ok || builtinName(info, call) != "make" || len(call.Args) != 2 {
			continue
		}
		if _, isSlice := info.TypeOf(call).Underlying().(*types.Slice); !isSlice {
			continue
		}
		if tv, ok := info.Types[call.Args[1]]; !ok || tv.Value == nil || !isZero(tv.Value) {
			continue
		}
		out[ev.Obj] = call
	}
	return out
}

// collectGrowth walks the body once: for each tracked object it gathers
// `obj = append(obj, ...)` sites with their innermost enclosing loop, and
// records in ok whether every other write to obj keeps the analysis valid
// (any non-append reassignment disqualifies the object).
func collectGrowth(info *types.Info, flow *dataflow.FuncFlow, makes map[types.Object]*ast.CallExpr) (map[types.Object][]growth, map[types.Object]bool) {
	grows := make(map[types.Object][]growth)
	ok := make(map[types.Object]bool, len(makes))
	for obj := range makes {
		ok[obj] = true
	}
	var loops []ast.Stmt
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(nd ast.Node) bool {
			switch s := nd.(type) {
			case *ast.ForStmt:
				loops = append(loops, s)
				walk(s.Body)
				loops = loops[:len(loops)-1]
				return false
			case *ast.RangeStmt:
				loops = append(loops, s)
				walk(s.Body)
				loops = loops[:len(loops)-1]
				return false
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					id, isIdent := lhs.(*ast.Ident)
					if !isIdent {
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj == nil {
						continue
					}
					if _, tracked := makes[obj]; !tracked {
						continue
					}
					if mk := makes[obj]; i < len(s.Rhs) && s.Rhs[i] == mk {
						continue // the defining make itself
					}
					g, isGrow := appendGrowth(info, s, i, obj)
					if !isGrow || len(loops) == 0 {
						ok[obj] = false
						continue
					}
					g.loop = loops[len(loops)-1]
					grows[obj] = append(grows[obj], g)
				}
			}
			return true
		})
	}
	walk(flow.Decl.Body)
	return grows, ok
}

// appendGrowth matches `obj = append(obj, e1, e2, ...)` at assignment
// slot i and counts the appended elements.
func appendGrowth(info *types.Info, s *ast.AssignStmt, i int, obj types.Object) (growth, bool) {
	if s.Tok != token.ASSIGN || i >= len(s.Rhs) {
		return growth{}, false
	}
	call, ok := s.Rhs[i].(*ast.CallExpr)
	if !ok || builtinName(info, call) != "append" || len(call.Args) < 2 {
		return growth{}, false
	}
	base, ok := call.Args[0].(*ast.Ident)
	if !ok || (info.Uses[base] != obj && info.Defs[base] != obj) {
		return growth{}, false
	}
	if call.Ellipsis != token.NoPos {
		return growth{perIter: -1}, true
	}
	return growth{perIter: int64(len(call.Args) - 1)}, true
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

func isZero(v constant.Value) bool {
	n, ok := constant.Int64Val(constant.ToInt(v))
	return ok && n == 0
}

// ---- ranked allocation report ------------------------------------------

// Site is one allocation expression with its cost model, for -allocreport.
type Site struct {
	Fn    string         // label of the containing function
	Pos   token.Position // allocation expression
	Kind  string         // "make", "append", "clone-append"
	Depth int            // loop multiplicity: interprocedural + syntactic
	// Count is the proven interval of allocated element count.
	Count dataflow.Interval
	// ElemBytes is the element size under 64-bit gc sizes.
	ElemBytes int64
	// Amortized marks an allocation that runs once per capacity high-water
	// mark or cache miss, not once per call: it sits behind a cap() guard
	// or inside a memoized constructor, so caller loop multiplicity does
	// not multiply it and Depth carries only the syntactic nesting.
	Amortized bool
	// Chain names the hottest caller path that gives Depth, outermost first.
	Chain []string
	// Score orders the report.
	Score float64
}

// maxMult caps interprocedural loop multiplicity: past a few nested
// levels of loop-resident calls, "hotter" stops being meaningful.
const maxMult = 4

// unboundedCount stands in for an unbounded element count when scoring.
const unboundedCount = 1 << 16

// Report ranks every allocation site of the loaded program, hottest
// first. Deterministic: ties break by position.
func Report(prog *dataflow.Program) []Site {
	mult, pred := loopMultiplicity(prog)
	var sites []Site
	for _, pf := range prog.Functions() {
		df := prog.AnalysisFor(pf.Pkg)
		if df == nil {
			continue
		}
		flow := df.FlowOf(pf.Decl)
		if flow == nil {
			continue
		}
		sites = append(sites, collectSites(prog, df, pf, flow, mult[pf.ID], chainOf(prog, pred, pf))...)
	}
	for i := range sites {
		sites[i].Score = score(sites[i])
	}
	sort.Slice(sites, func(i, j int) bool {
		// Scores are products of small integers, so ordered comparison is
		// exact; ties fall through to position for determinism.
		if sites[i].Score > sites[j].Score {
			return true
		}
		if sites[i].Score < sites[j].Score {
			return false
		}
		a, b := sites[i].Pos, sites[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return sites
}

// score weighs loop depth exponentially and size linearly: one more loop
// level multiplies the per-operation count, while size only scales bytes.
// Three refinements keep the ranking honest:
//
//   - a proven interval as wide as a machine integer type (a wire-decoded
//     uint32 gives [0, 2^32-1]) is a type artifact, not a size proof, so
//     counts are capped at the unbounded stand-in rather than letting a
//     4-billion "proof" swamp the report;
//   - plain append growth reallocates O(log n) times for n appends, so an
//     append site is charged one loop level less than its nesting;
//   - a clone-append deep copy allocates, copies, and retains every byte
//     on every call — nothing about it amortizes — so it is charged two
//     levels hotter.
func score(s Site) float64 {
	count := float64(unboundedCount)
	if s.Count.HiBounded() && s.Count.Hi < unboundedCount {
		count = float64(s.Count.Hi)
		if count < 1 {
			count = 1
		}
	}
	depth := s.Depth
	switch s.Kind {
	case "append":
		if depth > 0 {
			depth--
		}
	case "clone-append":
		depth += 2
	}
	if depth > 16 {
		depth = 16
	}
	bytes := count * float64(s.ElemBytes)
	return float64(int64(1)<<(2*uint(depth))) * bytes // 4^depth × bytes
}

// loopMultiplicity runs a monotone fixpoint over the call graph: a
// function called from a loop inherits its caller's multiplicity plus
// one, capped at maxMult. pred records the caller that supplied the
// maximum, for chain reconstruction.
func loopMultiplicity(prog *dataflow.Program) (map[string]int, map[string]string) {
	mult := make(map[string]int)
	pred := make(map[string]string)
	for changed := true; changed; {
		changed = false
		for _, pf := range prog.Functions() {
			for _, cs := range pf.Calls {
				d := mult[pf.ID]
				if cs.InLoop {
					d++
				}
				if d > maxMult {
					d = maxMult
				}
				for _, callee := range prog.Callees(cs) {
					if d > mult[callee.ID] {
						mult[callee.ID] = d
						pred[callee.ID] = pf.ID
						changed = true
					}
				}
			}
		}
	}
	return mult, pred
}

// chainOf reconstructs the hottest caller chain, outermost first, capped.
func chainOf(prog *dataflow.Program, pred map[string]string, pf *dataflow.ProgFunc) []string {
	var rev []string
	for id, hops := pf.ID, 0; id != "" && hops < maxMult+1; hops++ {
		f := prog.FuncByID(id)
		if f == nil {
			break
		}
		rev = append(rev, dataflow.FuncLabel(f.Fn))
		id = pred[id]
	}
	out := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// collectSites gathers make/append allocations of one function with their
// syntactic loop depth added to the function's call-graph multiplicity.
func collectSites(prog *dataflow.Program, df *dataflow.Analysis, pf *dataflow.ProgFunc, flow *dataflow.FuncFlow, mult int, chain []string) []Site {
	info := pf.Info
	it := df.Interp()
	var out []Site
	depth := 0
	amort := memoGuarded(flow.Decl)
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(nd ast.Node) bool {
			switch e := nd.(type) {
			case *ast.ForStmt:
				depth++
				walk(e.Body)
				depth--
				return false
			case *ast.RangeStmt:
				depth++
				walk(e.Body)
				depth--
				return false
			case *ast.IfStmt:
				// Allocation behind a capacity check runs once per
				// high-water mark, not once per call.
				if capGuarded(info, e.Cond) {
					saved := amort
					amort = true
					walk(e.Body)
					amort = saved
					if e.Else != nil {
						walk(e.Else)
					}
					return false
				}
				return true
			case *ast.CallExpr:
				s, ok := allocSite(info, it, flow, e)
				if !ok {
					return true
				}
				s.Fn = dataflow.FuncLabel(pf.Fn)
				s.Pos = prog.Fset().Position(e.Pos())
				s.Depth = mult + depth
				s.Chain = chain
				if amort {
					s.Amortized = true
					s.Depth = depth
					s.Chain = nil
				}
				out = append(out, s)
			}
			return true
		})
	}
	walk(flow.Decl.Body)
	return out
}

// capGuarded reports whether the condition tests a cap() — the signature
// of grow-on-demand scratch that amortizes its allocations.
func capGuarded(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && builtinName(info, call) == "cap" {
			found = true
		}
		return !found
	})
	return found
}

// memoGuarded recognizes the memoized-constructor shape: the function's
// first statement returns early when a cached result already exists
// (a `!= nil` test), so the allocations below run once per cache miss and
// caller loop multiplicity does not multiply them.
func memoGuarded(decl *ast.FuncDecl) bool {
	if decl == nil || decl.Body == nil || len(decl.Body.List) == 0 {
		return false
	}
	ifs, ok := decl.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Else != nil || len(ifs.Body.List) == 0 {
		return false
	}
	if _, ok := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt); !ok {
		return false
	}
	found := false
	ast.Inspect(ifs.Cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if ok && b.Op == token.NEQ && (isNilIdent(b.X) || isNilIdent(b.Y)) {
			found = true
		}
		return !found
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// allocSite classifies one call expression as an allocation.
func allocSite(info *types.Info, it *dataflow.Interp, flow *dataflow.FuncFlow, call *ast.CallExpr) (Site, bool) {
	switch builtinName(info, call) {
	case "make":
		t := info.TypeOf(call)
		count := dataflow.AtLeast(0)
		if len(call.Args) >= 2 {
			count = it.Eval(call.Args[1], flow, call.Pos())
		}
		return Site{Kind: "make", Count: count, ElemBytes: elemBytes(t)}, true
	case "append":
		if len(call.Args) < 2 {
			return Site{}, false
		}
		kind := "append"
		count := dataflow.Range(0, int64(len(call.Args)-1))
		if call.Ellipsis != token.NoPos {
			count = it.LenOf(call.Args[1], flow, call.Pos())
			if isNilConversion(info, call.Args[0]) {
				kind = "clone-append" // append([]T(nil), src...): a deep copy
			}
		}
		return Site{Kind: kind, Count: count, ElemBytes: elemBytes(info.TypeOf(call))}, true
	}
	return Site{}, false
}

// isNilConversion matches `[]T(nil)` and `T(nil)`.
func isNilConversion(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	if tv, ok := info.Types[call.Fun]; !ok || !tv.IsType() {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	return ok && tv.IsNil()
}

// elemBytes sizes the element of a slice/map/chan type under the 64-bit
// gc layout; 8 when no element applies.
func elemBytes(t types.Type) int64 {
	if t == nil {
		return 8
	}
	sizes := types.SizesFor("gc", "amd64")
	if sizes == nil {
		sizes = &types.StdSizes{WordSize: 8, MaxAlign: 8}
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return sizes.Sizeof(u.Elem())
	case *types.Map:
		return sizes.Sizeof(u.Key()) + sizes.Sizeof(u.Elem())
	case *types.Chan:
		return sizes.Sizeof(u.Elem())
	}
	return 8
}

// FormatReport renders the top n sites as the driver's -allocreport text.
func FormatReport(sites []Site, n int) string {
	if n > len(sites) {
		n = len(sites)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "top %d allocation site(s) by loop depth × interval-derived size:\n", n)
	for i := 0; i < n; i++ {
		s := sites[i]
		count := "unbounded"
		if s.Count.HiBounded() {
			count = s.Count.String()
		}
		fmt.Fprintf(&b, "%2d. depth=%d %-12s count=%s elem=%dB est=%s  %s\n      at %s\n",
			i+1, s.Depth, s.Kind, count, s.ElemBytes, estimate(s), s.Fn, s.Pos)
		if s.Amortized {
			fmt.Fprintf(&b, "      amortized: behind a capacity/memo guard, charged once per high-water mark\n")
		} else if len(s.Chain) > 0 {
			fmt.Fprintf(&b, "      via %s\n", strings.Join(s.Chain, " -> "))
		}
	}
	return b.String()
}

// estimate renders the interval-derived per-execution byte estimate: exact
// when the count interval is usefully bounded, a conservative ">=" floor
// when the proof is absent or only a type-width artifact.
func estimate(s Site) string {
	if s.Count.HiBounded() && s.Count.Hi < unboundedCount {
		hi := s.Count.Hi
		if hi < 1 {
			hi = 1
		}
		return fmtBytes(hi * s.ElemBytes)
	}
	return ">=" + fmtBytes(unboundedCount*s.ElemBytes)
}

// fmtBytes prints a byte count with a binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
