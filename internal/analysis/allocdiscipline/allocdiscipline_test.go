package allocdiscipline_test

import (
	"path/filepath"
	"strings"
	"testing"

	"rups/internal/analysis"
	"rups/internal/analysis/allocdiscipline"
	"rups/internal/analysis/analysistest"
	"rups/internal/analysis/dataflow"
	"rups/internal/analysis/loader"
)

func TestAllocdiscipline(t *testing.T) {
	analysistest.Run(t, "../testdata", allocdiscipline.Analyzer, "allocdiscipline")
}

// TestSuggestedFix checks the fix payload: the edit inserts the proven
// capacity after the zero length argument.
func TestSuggestedFix(t *testing.T) {
	diags := runOnGolden(t)
	var fixed []analysis.Diagnostic
	for _, d := range diags {
		if len(d.Fixes) > 0 {
			fixed = append(fixed, d)
		}
	}
	if len(fixed) != 2 {
		t.Fatalf("got %d diagnostics with fixes, want 2", len(fixed))
	}
	for _, d := range fixed {
		fix := d.Fixes[0]
		if len(fix.Edits) != 1 {
			t.Fatalf("fix has %d edits, want 1", len(fix.Edits))
		}
		e := fix.Edits[0]
		if e.Pos.Offset != e.End.Offset {
			t.Errorf("capacity fix must be a pure insertion, got [%d, %d)", e.Pos.Offset, e.End.Offset)
		}
		if !strings.HasPrefix(e.NewText, ", ") {
			t.Errorf("edit %q does not insert a capacity argument", e.NewText)
		}
	}
	// preallocTwoPerIter: 6 proven trips × 2 elements.
	found := false
	for _, d := range fixed {
		for _, e := range d.Fixes[0].Edits {
			if e.NewText == ", 12" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no fix inserts the summed capacity 12")
	}
}

// TestReportRanksDepth checks the report's cost model on the golden
// package: an allocation two loops deep outranks the same allocation one
// loop deep.
func TestReportRanksDepth(t *testing.T) {
	prog := loadGolden(t)
	sites := allocdiscipline.Report(prog)
	if len(sites) == 0 {
		t.Fatal("no allocation sites found")
	}
	for i := 1; i < len(sites); i++ {
		if sites[i].Score > sites[i-1].Score {
			t.Fatalf("report not sorted: site %d score %.0f > site %d score %.0f",
				i, sites[i].Score, i-1, sites[i-1].Score)
		}
	}
	// Formatting stays stable enough to grep.
	text := allocdiscipline.FormatReport(sites, 3)
	if !strings.Contains(text, "depth=") || !strings.Contains(text, "count=") {
		t.Errorf("report text missing columns:\n%s", text)
	}
}

// TestReportAdmitSnapshotNoLongerTops pins the post-interning acceptance
// contract on the real module: snapshot interning removed the engine.Admit
// deep copy (Snapshot used to reach trajectory.Clone, the #1 site of the
// PR-7 worklist), so no ranked site may reach a cell-storage deep copy
// through Admit -> Snapshot any more.
func TestReportAdmitSnapshotNoLongerTops(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module")
	}
	pkgs, err := loader.Load(filepath.Join("..", "..", ".."), "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	sites := allocdiscipline.Report(dataflow.NewProgram(pkgs))
	if len(sites) == 0 {
		t.Fatal("no allocation sites found")
	}
	for _, site := range sites {
		chain := strings.Join(site.Chain, " -> ")
		if strings.Contains(chain, "Admit") && strings.Contains(chain, "Snapshot") &&
			strings.Contains(site.Fn, "Clone") {
			t.Errorf("Admit -> Snapshot still reaches a deep copy: %s at %s (chain %q)",
				site.Fn, site.Pos, chain)
		}
	}
}

func loadGolden(t *testing.T) *dataflow.Program {
	t.Helper()
	pkgs, err := loader.Load(filepath.Join("..", "testdata", "src"), "./allocdiscipline")
	if err != nil {
		t.Fatalf("load golden package: %v", err)
	}
	return dataflow.NewProgram(pkgs)
}

func runOnGolden(t *testing.T) []analysis.Diagnostic {
	t.Helper()
	pkgs, err := loader.Load(filepath.Join("..", "testdata", "src"), "./allocdiscipline")
	if err != nil {
		t.Fatalf("load golden package: %v", err)
	}
	res, err := analysis.RunAll(pkgs, []*analysis.Analyzer{allocdiscipline.Analyzer}, dataflow.NewProgram(pkgs), 1)
	if err != nil {
		t.Fatal(err)
	}
	return res.Diags
}
