package boundsproof_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rups/internal/analysis"
	"rups/internal/analysis/analysistest"
	"rups/internal/analysis/boundsproof"
	"rups/internal/analysis/dataflow"
	"rups/internal/analysis/loader"
)

func TestBoundsproof(t *testing.T) {
	analysistest.Run(t, "../testdata", boundsproof.Analyzer, "boundsproof")
}

// TestSuppressionFacts runs the analyzer by hand to inspect the facts the
// golden package produces: the bounded range loop yields an obsdiscipline
// suppression carrying the trip-count proof, and the proven outer loop of
// unboundedInner must not cover its unprovable inner body.
func TestSuppressionFacts(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src")
	pkgs, err := loader.Load(dir, "./boundsproof")
	if err != nil {
		t.Fatalf("load golden package: %v", err)
	}
	pass := &analysis.Pass{
		Analyzer:  boundsproof.Analyzer,
		Fset:      pkgs[0].Fset,
		Files:     pkgs[0].Syntax,
		Pkg:       pkgs[0].Types,
		TypesInfo: pkgs[0].TypesInfo,
		Program:   dataflow.NewProgram(pkgs),
	}
	if err := boundsproof.Analyzer.Run(pass); err != nil {
		t.Fatal(err)
	}
	facts := pass.Suppressions()
	if len(facts) == 0 {
		t.Fatal("no suppression facts emitted")
	}

	var bounded []analysis.SuppressRange
	for _, f := range facts {
		if f.Analyzer != "obsdiscipline" {
			t.Errorf("fact targets %q, want obsdiscipline", f.Analyzer)
		}
		if !strings.Contains(f.Why, "provably executes at most") {
			t.Errorf("fact lacks a trip-count proof: %q", f.Why)
		}
		bounded = append(bounded, f)
	}

	// boundedTelemetryLoop ranges over the 3-element weights literal.
	if !anyWhy(bounded, "at most 3 iteration") {
		t.Error("no fact proves the 3-trip bound of boundedTelemetryLoop")
	}

	// The inner `for j := 0; j < n; j++` body of unboundedInner is
	// unprovable, so no fact may cover the `total += w` statement inside
	// it. Locate that line and check.
	innerLine := findLine(t, pkgs[0], "total += w", 2) // second occurrence is the nested one
	for _, f := range bounded {
		if f.Start.Line <= innerLine && innerLine <= f.End.Line && coversLine(f, innerLine) {
			t.Errorf("fact [%d, %d) covers the unbounded inner loop body at line %d",
				f.Start.Line, f.End.Line, innerLine)
		}
	}

	// mapHintLoop ranges over make(map[int]int, 4): the hint is not a
	// length, so the body must not be covered by any fact.
	mapLine := findLine(t, pkgs[0], "n++", 1)
	for _, f := range bounded {
		if coversLine(f, mapLine) {
			t.Errorf("fact [%d, %d) covers the map-range body at line %d: make's hint is not a length",
				f.Start.Line, f.End.Line, mapLine)
		}
	}
}

func anyWhy(facts []analysis.SuppressRange, substr string) bool {
	for _, f := range facts {
		if strings.Contains(f.Why, substr) {
			return true
		}
	}
	return false
}

// coversLine approximates offset coverage by line: exact for this golden,
// where no fact boundary splits a line.
func coversLine(f analysis.SuppressRange, line int) bool {
	return f.Start.Line <= line && line <= f.End.Line
}

// findLine returns the line of the nth line whose trimmed text equals
// substr in the golden package's single file.
func findLine(t *testing.T, pkg *loader.Package, substr string, nth int) int {
	t.Helper()
	file := pkg.Fset.Position(pkg.Syntax[0].Pos()).Filename
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for i, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == substr {
			seen++
			if seen == nth {
				return i + 1
			}
		}
	}
	t.Fatalf("%q (occurrence %d) not found in %s", substr, nth, file)
	return 0
}
