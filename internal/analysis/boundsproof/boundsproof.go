// Package boundsproof turns the dataflow interval engine into a bounds
// checker with two outputs:
//
//   - diagnostics for index, slice, and make expressions that are
//     *provably* wrong — the proven interval of the index (or length)
//     cannot intersect the valid range, so the statement panics on every
//     execution that reaches it;
//   - suppression facts for loops whose total trip count is proven small:
//     per-iteration cost findings (obsdiscipline's "call in a loop
//     reaches a raw telemetry lookup") inside such a loop describe a
//     compile-time-bounded cost, so the fact retires them, and
//     `-prune-baseline rewrite` retires the matching baseline entries
//     with the proof recorded.
//
// The analyzer only speaks when it has a proof: an unknown interval
// produces neither a diagnostic nor a fact. Soundness of the suppression
// accounts for nesting — a fact never covers the body of a nested loop
// unless the *product* of the whole enclosing chain's trip bounds stays
// under the limit.
package boundsproof

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"rups/internal/analysis"
	"rups/internal/analysis/dataflow"
)

// boundedLoopLimit caps the total proven iteration count (product over
// the enclosing loop chain) a suppression fact may cover: beyond it, "the
// loop is bounded" stops being an argument that per-iteration cost is
// negligible.
const boundedLoopLimit = 1024

// suppressTargets lists the analyzers whose per-iteration cost findings a
// bounded-loop proof retires.
var suppressTargets = []string{"obsdiscipline"}

// Analyzer proves bounds and emits bounded-loop suppression facts.
var Analyzer = &analysis.Analyzer{
	Name: "boundsproof",
	Doc: "reports index/slice/make expressions proven out of range by interval " +
		"analysis and retires per-iteration findings inside provably bounded loops",
	Run: run,
}

func run(pass *analysis.Pass) error {
	prog := dataflow.ProgramOf(pass)
	df := prog.AnalysisFor(pass.Pkg)
	if df == nil {
		return nil
	}
	it := df.Interp()
	for _, pf := range prog.Functions() {
		if pf.Pkg.Path() != pass.Pkg.Path() {
			continue
		}
		flow := df.FlowOf(pf.Decl)
		if flow == nil {
			continue
		}
		checkBounds(pass, it, flow)
		suppressBoundedLoops(pass, it, flow)
	}
	return nil
}

// checkBounds reports expressions the intervals prove must panic.
func checkBounds(pass *analysis.Pass, it *dataflow.Interp, flow *dataflow.FuncFlow) {
	info := pass.TypesInfo
	ast.Inspect(flow.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.IndexExpr:
			t := info.TypeOf(e.X)
			if t == nil || !isSequence(t) {
				return true
			}
			idx := it.Eval(e.Index, flow, e.Pos())
			ln := it.LenOf(e.X, flow, e.Pos())
			if idx.HiBounded() && idx.Hi < 0 {
				pass.Reportf(e.Index.Pos(), "index is provably negative (index ∈ %s)", idx)
				return true
			}
			if idx.LoBounded() && ln.HiBounded() && idx.Lo >= ln.Hi {
				pass.Reportf(e.Index.Pos(), "index provably out of range (index ∈ %s, len ∈ %s)", idx, ln)
			}
		case *ast.SliceExpr:
			lo, hi := boundOrNil(it, flow, e.Low, e.Pos()), boundOrNil(it, flow, e.High, e.Pos())
			if lo != nil && hi != nil && lo.LoBounded() && hi.HiBounded() && lo.Lo > hi.Hi {
				pass.Reportf(e.Pos(), "slice bounds provably inverted (low ∈ %s, high ∈ %s)", *lo, *hi)
				return true
			}
			// High beyond len is only a proof where cap == len: arrays and
			// strings. A slice may have spare capacity.
			if hi != nil && capEqualsLen(info.TypeOf(e.X)) {
				ln := it.LenOf(e.X, flow, e.Pos())
				if hi.LoBounded() && ln.HiBounded() && hi.Lo > ln.Hi {
					pass.Reportf(e.High.Pos(), "slice high bound provably out of range (high ∈ %s, len ∈ %s)", *hi, ln)
				}
			}
		case *ast.CallExpr:
			if name := builtinName(info, e); name == "make" && len(e.Args) >= 2 {
				ln := it.Eval(e.Args[1], flow, e.Pos())
				if ln.HiBounded() && ln.Hi < 0 {
					pass.Reportf(e.Args[1].Pos(), "make length is provably negative (len ∈ %s)", ln)
					return true
				}
				if len(e.Args) >= 3 {
					cp := it.Eval(e.Args[2], flow, e.Pos())
					if ln.LoBounded() && cp.HiBounded() && ln.Lo > cp.Hi {
						pass.Reportf(e.Args[1].Pos(), "make length provably exceeds capacity (len ∈ %s, cap ∈ %s)", ln, cp)
					}
				}
			}
		}
		return true
	})
}

// loopNest is one syntactic loop with its position in the nesting tree.
type loopNest struct {
	body   *ast.BlockStmt
	parent int // index into the collected slice, -1 at top level
	trips  dataflow.Interval
	proven bool
}

// suppressBoundedLoops emits one fact per region whose innermost loop —
// and every loop enclosing it — has a proven trip bound, with the chain's
// product under boundedLoopLimit. Regions inside a nested loop are left
// to the nested loop's own entry, so an unbounded inner loop is never
// covered by its bounded parent.
func suppressBoundedLoops(pass *analysis.Pass, it *dataflow.Interp, flow *dataflow.FuncFlow) {
	var loops []loopNest
	var walk func(n ast.Node, parent int)
	walk = func(n ast.Node, parent int) {
		ast.Inspect(n, func(nd ast.Node) bool {
			var body *ast.BlockStmt
			switch l := nd.(type) {
			case *ast.ForStmt:
				body = l.Body
			case *ast.RangeStmt:
				body = l.Body
			default:
				return true
			}
			trips, ok := it.LoopTrips(nd.(ast.Stmt), flow)
			loops = append(loops, loopNest{body: body, parent: parent, trips: trips, proven: ok})
			walk(body, len(loops)-1)
			return false // children were walked with the right parent
		})
	}
	walk(flow.Decl.Body, -1)

	for i, l := range loops {
		total, ok := chainProduct(loops, i)
		if !ok || total > boundedLoopLimit {
			continue
		}
		why := fmt.Sprintf("loop provably executes at most %d iteration(s): per-iteration cost is compile-time bounded", total)
		for _, gap := range gaps(l.body, childSpans(loops, i)) {
			for _, target := range suppressTargets {
				pass.Suppress(target, gap.start, gap.end, why)
			}
		}
	}
}

// chainProduct multiplies the proven trip bounds from loop i up through
// every enclosing loop; ok is false when any link is unproven or
// unbounded.
func chainProduct(loops []loopNest, i int) (int64, bool) {
	total := int64(1)
	for ; i >= 0; i = loops[i].parent {
		l := loops[i]
		if !l.proven || !l.trips.HiBounded() || l.trips.Hi < 0 {
			return 0, false
		}
		total *= l.trips.Hi
		if total > boundedLoopLimit {
			return total, true // caller rejects; avoid overflow on deep nests
		}
	}
	return total, true
}

type span struct{ start, end token.Pos }

// childSpans collects the source extents of loops directly nested in loop i.
func childSpans(loops []loopNest, i int) []span {
	var out []span
	for j, l := range loops {
		if l.parent == i {
			out = append(out, span{loops[j].body.Pos(), loops[j].body.End()})
		}
	}
	return out
}

// gaps splits the body extent around the child spans (which arrive in
// source order from the walk).
func gaps(body *ast.BlockStmt, children []span) []span {
	var out []span
	at := body.Pos()
	for _, c := range children {
		if c.start > at {
			out = append(out, span{at, c.start})
		}
		if c.end > at {
			at = c.end
		}
	}
	if body.End() > at {
		out = append(out, span{at, body.End()})
	}
	return out
}

func boundOrNil(it *dataflow.Interp, flow *dataflow.FuncFlow, e ast.Expr, at token.Pos) *dataflow.Interval {
	if e == nil {
		return nil
	}
	iv := it.Eval(e, flow, at)
	return &iv
}

// isSequence reports whether indexing t is bounds-checked against a length
// (maps and type parameters are not provable).
func isSequence(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	}
	return false
}

// capEqualsLen reports whether t's high slice bound is checked against its
// length rather than a possibly-larger capacity.
func capEqualsLen(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Array:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	}
	return false
}

// builtinName resolves a call to a builtin's name, "" otherwise.
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
