// Package widenconv flags lossy numeric conversions backed by an interval
// proof: the converted value's *proven* interval does not fit the target
// type, so some reachable value is truncated, wrapped, or rounded. An
// unknown interval never fires — unlike a syntactic narrowing lint, every
// report here comes with the range evidence in the message.
//
// Two families:
//
//   - integer → smaller integer where the proven interval escapes the
//     target's range (int16(x) with x ∈ [0, 100000]);
//   - integer → float where the proven interval escapes the mantissa's
//     exact-integer range (float32 holds every integer only up to 2^24,
//     float64 up to 2^53), so nearby counts collide after conversion.
package widenconv

import (
	"go/ast"
	"go/types"

	"rups/internal/analysis"
	"rups/internal/analysis/dataflow"
)

// Analyzer reports narrowing conversions with interval proof of loss.
var Analyzer = &analysis.Analyzer{
	Name: "widenconv",
	Doc: "flags int-to-int and int-to-float conversions whose proven interval " +
		"exceeds what the target type represents exactly",
	Run: run,
}

// float mantissa limits: the largest N with every integer in [-N, N]
// exactly representable.
const (
	float32Exact = 1 << 24
	float64Exact = 1 << 53
)

func run(pass *analysis.Pass) error {
	prog := dataflow.ProgramOf(pass)
	df := prog.AnalysisFor(pass.Pkg)
	if df == nil {
		return nil
	}
	it := df.Interp()
	for _, pf := range prog.Functions() {
		if pf.Pkg.Path() != pass.Pkg.Path() {
			continue
		}
		flow := df.FlowOf(pf.Decl)
		if flow == nil {
			continue
		}
		checkConversions(pass, it, flow)
	}
	return nil
}

func checkConversions(pass *analysis.Pass, it *dataflow.Interp, flow *dataflow.FuncFlow) {
	info := pass.TypesInfo
	ast.Inspect(flow.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if tv, ok := info.Types[call.Fun]; !ok || !tv.IsType() {
			return true
		}
		src := info.TypeOf(call.Args[0])
		dst := info.TypeOf(call)
		if src == nil || dst == nil || !isInteger(src) {
			return true
		}
		iv := it.Eval(call.Args[0], flow, call.Pos())
		if !iv.Bounded() {
			return true // no proof, no report
		}
		switch {
		case isInteger(dst):
			dr := dataflow.TypeInterval(dst)
			if dr.IsTop() || iv.ContainedIn(dr) {
				return true
			}
			pass.Reportf(call.Pos(),
				"conversion to %s is provably lossy: value proven in %s, %s holds %s",
				dst, iv, dst, dr)
		case isFloat(dst):
			exact := int64(float64Exact)
			if basicKind(dst) == types.Float32 {
				exact = float32Exact
			}
			if iv.ContainedIn(dataflow.Range(-exact, exact)) {
				return true
			}
			pass.Reportf(call.Pos(),
				"conversion to %s is provably lossy: value proven in %s exceeds the "+
					"exactly-representable integer range [-2^%d, 2^%d]",
				dst, iv, log2(exact), log2(exact))
		}
		return true
	})
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func basicKind(t types.Type) types.BasicKind {
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Kind()
	}
	return types.Invalid
}

func log2(n int64) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}
