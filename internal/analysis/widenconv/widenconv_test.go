package widenconv_test

import (
	"testing"

	"rups/internal/analysis/analysistest"
	"rups/internal/analysis/widenconv"
)

func TestWidenconv(t *testing.T) {
	analysistest.Run(t, "../testdata", widenconv.Analyzer, "widenconv")
}
