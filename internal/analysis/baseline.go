package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baselines let rups-lint adopt a new analyzer incrementally: known
// findings are written to a JSON file once, suppressed on later runs,
// and burned down over time. A finding is fingerprinted by analyzer,
// repo-relative file, and message — but not line number, so unrelated
// edits that shift code do not resurrect suppressed findings. Identical
// findings in one file are counted, so fixing one of three leaves two
// suppressed and flags a fourth.

// BaselineEntry is one suppressed finding class.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
	// Why is a human-written justification for keeping the finding
	// suppressed rather than fixing it. It is preserved across Prune
	// rewrites and ignored when matching diagnostics.
	Why string `json:"why,omitempty"`
}

// key normalizes an entry to its matching identity: Count and Why carry
// bookkeeping, not identity.
func (e BaselineEntry) key() BaselineEntry {
	e.Count = 0
	e.Why = ""
	return e
}

// Baseline is a set of suppressed finding classes.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// NewBaseline fingerprints the given diagnostics relative to root.
func NewBaseline(diags []Diagnostic, root string) *Baseline {
	counts := make(map[BaselineEntry]int)
	for _, d := range diags {
		key := fingerprint(d, root)
		counts[key]++
	}
	b := &Baseline{}
	for key, n := range counts {
		key.Count = n
		b.Entries = append(b.Entries, key)
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// LoadBaseline reads a baseline file written by WriteFile.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := &Baseline{}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return b, nil
}

// WriteFile stores the baseline as indented JSON, suitable for review
// and committing.
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter returns the diagnostics not covered by the baseline. Within one
// fingerprint class the first Count diagnostics (in the driver's sorted
// order) are suppressed and the rest reported.
func (b *Baseline) Filter(diags []Diagnostic, root string) []Diagnostic {
	budget := make(map[BaselineEntry]int, len(b.Entries))
	for _, e := range b.Entries {
		budget[e.key()] += e.Count
	}
	var out []Diagnostic
	for _, d := range diags {
		key := fingerprint(d, root)
		if budget[key] > 0 {
			budget[key]--
			continue
		}
		out = append(out, d)
	}
	return out
}

// Prune splits the baseline against the diagnostics of a fresh run:
// entries (or portions of an entry's count) that still fire are returned
// in kept, with justifications preserved; suppression budget that no
// longer matches anything is returned in stale, Count set to the number
// of slots that went unused. A non-empty stale list means the baseline
// has drifted — the fix landed but the suppression lives on, able to
// mask a future regression of the same message.
func (b *Baseline) Prune(diags []Diagnostic, root string) (kept *Baseline, stale []BaselineEntry) {
	current := make(map[BaselineEntry]int)
	for _, d := range diags {
		current[fingerprint(d, root)]++
	}
	kept = &Baseline{}
	for _, e := range b.Entries {
		live := current[e.key()]
		if live >= e.Count {
			kept.Entries = append(kept.Entries, e)
			continue
		}
		unused := e
		unused.Count = e.Count - live
		stale = append(stale, unused)
		if live > 0 {
			k := e
			k.Count = live
			kept.Entries = append(kept.Entries, k)
		}
	}
	return kept, stale
}

// fingerprint is the line-independent identity of a diagnostic.
func fingerprint(d Diagnostic, root string) BaselineEntry {
	file := d.Pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	return BaselineEntry{Analyzer: d.Analyzer, File: file, Message: d.Message}
}
