// Package timedet guards the simulation's per-seed determinism: inside
// the deterministic packages (sim, link, v2v, engine, serve, and
// cmd/rups-sim)
// it flags wall-clock reads (time.Now and friends) and draws from the
// global math/rand source — directly, and through calls whose loaded
// callees transitively reach one, with the call chain spelled out.
//
// The chaos and replay tests depend on a run being a pure function of its
// seed; one time.Now in a resolution path makes failures unreproducible.
// Calls from one deterministic package into another are not re-flagged —
// the finding belongs where the source is introduced — so a single
// offending helper produces one diagnostic per entry point, not a cascade.
package timedet

import (
	"go/types"
	"strings"

	"rups/internal/analysis"
	"rups/internal/analysis/dataflow"
)

// Analyzer flags wall-clock and global-randomness reach in deterministic
// simulation packages.
var Analyzer = &analysis.Analyzer{
	Name: "timedet",
	Doc: "flags time.Now and global math/rand reached from deterministic " +
		"simulation code (sim, link, v2v, engine, serve, cmd/rups-sim), " +
		"breaking " +
		"per-seed reproducibility",
	Run: run,
}

// restrictedNames are the package names under the determinism contract.
var restrictedNames = map[string]bool{
	"sim": true, "link": true, "v2v": true, "engine": true, "serve": true,
}

func restricted(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return restrictedNames[pkg.Name()] || strings.HasSuffix(pkg.Path(), "cmd/rups-sim")
}

func run(pass *analysis.Pass) error {
	if !restricted(pass.Pkg) {
		return nil
	}
	prog := dataflow.ProgramOf(pass)
	for _, pf := range prog.Functions() {
		if pf.Pkg.Path() != pass.Pkg.Path() {
			continue
		}
		eff := pf.Effects
		for _, s := range eff.TimeSites {
			pass.Reportf(s.Pos, "%s in deterministic simulation code: wall-clock "+
				"breaks per-seed reproducibility; thread the sim timestamp instead", s.What)
		}
		for _, s := range eff.RandSites {
			pass.Reportf(s.Pos, "global %s in deterministic simulation code: draws "+
				"depend on process history; use a seeded source (internal/noise)", s.What)
		}
		reportReach(pass, prog, pf, eff.ReachesTime,
			func(e *dataflow.Effects) bool { return e.ReachesTime },
			prog.TimeChain, "wall-clock")
		reportReach(pass, prog, pf, eff.ReachesRand,
			func(e *dataflow.Effects) bool { return e.ReachesRand },
			prog.RandChain, "global randomness")
	}
	return nil
}

// reportReach flags the first call site per function whose callee
// transitively reaches the source — unless the callee itself sits in a
// deterministic package, where the finding already lives. One report per
// function keeps a telemetry-heavy body from drowning the signal.
func reportReach(pass *analysis.Pass, prog *dataflow.Program, pf *dataflow.ProgFunc,
	reaches bool, has func(*dataflow.Effects) bool, chain func(*dataflow.ProgFunc) []string, what string) {
	if !reaches {
		return
	}
	for _, cs := range pf.Calls {
		callee := reachingCallee(prog, cs, has)
		if callee == nil || restricted(callee.Pkg) {
			continue
		}
		hops := append([]string{dataflow.FuncLabel(cs.Callee)}, chain(callee)...)
		pass.Reportf(cs.Pos, "call reaches %s (%s) from deterministic simulation "+
			"code: breaks per-seed reproducibility", what, strings.Join(hops, " -> "))
		return
	}
}

// reachingCallee resolves the first loaded callee of the site carrying the
// effect, or nil.
func reachingCallee(prog *dataflow.Program, cs *dataflow.CallSite, has func(*dataflow.Effects) bool) *dataflow.ProgFunc {
	for _, cal := range prog.Callees(cs) {
		if has(cal.Effects) {
			return cal
		}
	}
	return nil
}
