package timedet_test

import (
	"testing"

	"rups/internal/analysis/analysistest"
	"rups/internal/analysis/timedet"
)

func TestTimedet(t *testing.T) {
	// Two packages in one load: the golden "sim" package is inside the
	// deterministic set, timedetutil outside it — the cross-package reach
	// reports land in sim with the chain spelled out.
	analysistest.Run(t, "../testdata", timedet.Analyzer, "timedet", "timedetutil")
}
