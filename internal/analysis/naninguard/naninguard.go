// Package naninguard enforces NaN hygiene around the correlation kernels.
//
// stats.Pearson and stats.TrajCorr document a 0 return for degenerate
// windows today, but their callers routinely feed the result into score
// comparisons and running averages where a NaN — introduced by a future
// kernel change, an Inf overflow in the moment sums, or a missing-value
// convention leak (stats.Missing IS a NaN) — would silently poison every
// downstream estimate: NaN compares false with everything, so a
// "best score" scan just skips it and returns a plausible wrong answer.
//
// The analyzer flags any correlation result that flows into a comparison
// or arithmetic without a math.IsNaN / stats.IsMissing guard somewhere in
// the same function.
package naninguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"rups/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "naninguard",
	Doc: "flags stats.Pearson/stats.TrajCorr results used in comparisons or " +
		"arithmetic without a math.IsNaN (or stats.IsMissing) guard in the same function",
	Run: run,
}

// correlationFuncs are the guarded kernels, by package path and name.
var correlationFuncs = map[string]map[string]bool{
	"rups/internal/stats": {"Pearson": true, "TrajCorr": true},
}

// guardFuncs recognise a NaN test. stats.IsMissing is a documented alias
// for math.IsNaN.
var guardFuncs = map[string]map[string]bool{
	"math":                {"IsNaN": true},
	"rups/internal/stats": {"IsMissing": true},
}

func run(pass *analysis.Pass) error {
	// The kernels' own package defines the degenerate-input contract; the
	// guard obligation starts at its API boundary.
	if _, isKernelPkg := correlationFuncs[pass.Pkg.Path()]; isKernelPkg {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc applies the per-function analysis: collect the variables that
// hold correlation results, the variables that are NaN-guarded, and the
// risky uses; then report unguarded flows.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	resultVars := make(map[types.Object]token.Pos) // corr-result var → assignment pos
	guarded := make(map[types.Object]bool)         // var → appears in IsNaN/IsMissing

	// Pass 1: find `v := stats.Pearson(...)` / `v = stats.TrajCorr(...)`
	// bindings and IsNaN/IsMissing guards. Plain copies (`r := v`) of a
	// result variable are results too; iterate to a fixed point so chains
	// of copies are tracked regardless of source order.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
					return true
				}
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					if !isCorrelationCall(pass, rhs) && !isResultCopy(pass, rhs, resultVars) {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
							if _, seen := resultVars[obj]; !seen {
								resultVars[obj] = n.Pos()
								changed = true
							}
						}
					}
				}
			case *ast.CallExpr:
				if isGuardCall(pass, n) {
					for _, arg := range n.Args {
						if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
							if obj := pass.TypesInfo.ObjectOf(id); obj != nil && !guarded[obj] {
								guarded[obj] = true
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}

	// Pass 2: flag risky uses. A use is risky when a correlation result —
	// either a direct call or an unguarded result variable — is an operand
	// of a comparison, of float arithmetic, or of a compound assignment.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ,
				token.ADD, token.SUB, token.MUL, token.QUO:
				for _, op := range []ast.Expr{n.X, n.Y} {
					reportRisky(pass, op, resultVars, guarded,
						"flows into %q without a math.IsNaN guard in this function", n.Op)
				}
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, rhs := range n.Rhs {
					reportRisky(pass, rhs, resultVars, guarded,
						"accumulates via %q without a math.IsNaN guard in this function", n.Tok)
				}
			}
		}
		return true
	})
}

// reportRisky reports op when it is an unguarded correlation result.
func reportRisky(pass *analysis.Pass, op ast.Expr, resultVars map[types.Object]token.Pos, guarded map[types.Object]bool, format string, tok token.Token) {
	op = ast.Unparen(op)
	if isCorrelationCall(pass, op) {
		pass.Reportf(op.Pos(), "correlation result "+format+"; bind it to a variable and guard it", tok)
		return
	}
	if id, ok := op.(*ast.Ident); ok {
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return
		}
		if _, isResult := resultVars[obj]; isResult && !guarded[obj] {
			pass.Reportf(op.Pos(), "correlation result %q "+format, id.Name, tok)
		}
	}
}

// isResultCopy reports whether e is a plain read of an already-tracked
// result variable.
func isResultCopy(pass *analysis.Pass, e ast.Expr, resultVars map[types.Object]token.Pos) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	_, tracked := resultVars[obj]
	return tracked
}

// isCorrelationCall reports whether e calls one of the guarded kernels.
func isCorrelationCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return calleeIn(pass, call, correlationFuncs)
}

// isGuardCall reports whether call is math.IsNaN or stats.IsMissing.
func isGuardCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	return calleeIn(pass, call, guardFuncs)
}

// calleeIn resolves call's callee to a package-level function and looks it
// up in the path→name table.
func calleeIn(pass *analysis.Pass, call *ast.CallExpr, table map[string]map[string]bool) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	names, ok := table[fn.Pkg().Path()]
	return ok && names[fn.Name()]
}
