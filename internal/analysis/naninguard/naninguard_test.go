package naninguard_test

import (
	"testing"

	"rups/internal/analysis/analysistest"
	"rups/internal/analysis/naninguard"
)

func TestNaninguard(t *testing.T) {
	analysistest.Run(t, "../testdata", naninguard.Analyzer, "naninguard")
}
