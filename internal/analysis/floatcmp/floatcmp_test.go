package floatcmp_test

import (
	"testing"

	"rups/internal/analysis/analysistest"
	"rups/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, "../testdata", floatcmp.Analyzer, "floatcmp")
}
