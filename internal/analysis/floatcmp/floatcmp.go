// Package floatcmp flags == and != comparisons on floating-point values.
//
// Correlation scores, RSSI levels in dBm, and metre distances are all
// float64 in this codebase, and exact equality on any of them is almost
// always a latent bug: two mathematically equal scores rarely compare equal
// after different summation orders. Compare with an ordered operator, an
// epsilon helper such as stats.ApproxEqual, or suppress a deliberate exact
// comparison with //lint:ignore floatcmp <reason>.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"rups/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "flags ==/!= on floating-point operands outside epsilon helpers; " +
		"use ordered comparisons, stats.ApproxEqual, or an explicit //lint:ignore",
	Run: run,
}

// epsilonHelper matches the names of functions allowed to compare floats
// exactly: they exist to implement the tolerance themselves.
var epsilonHelper = regexp.MustCompile(`(?i)(approx|almost|near|close|within|eps|tol)`)

func run(pass *analysis.Pass) error {
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		cmp, ok := n.(*ast.BinaryExpr)
		if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
			return true
		}
		if !isFloat(pass, cmp.X) && !isFloat(pass, cmp.Y) {
			return true
		}
		// x != x is the portable NaN test; leave it alone.
		if sx := exprString(cmp.X); sx != "" && sx == exprString(cmp.Y) {
			return true
		}
		// Comparisons between compile-time constants are exact by nature.
		if isConst(pass, cmp.X) && isConst(pass, cmp.Y) {
			return true
		}
		if name := analysis.EnclosingFunc(stack); epsilonHelper.MatchString(name) {
			return true
		}
		pass.Reportf(cmp.OpPos,
			"floating-point %s comparison; use an ordered comparison or an epsilon helper (e.g. stats.ApproxEqual)", cmp.Op)
		return true
	})
	return nil
}

// isFloat reports whether e has floating-point type (including named types
// whose underlying type is a float).
func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConst reports whether e is a compile-time constant expression.
func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// exprString renders a restricted class of expressions (identifiers and
// selector chains) to text for the x != x check; anything more complex
// yields a unique placeholder so it never compares equal.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := exprString(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return ""
}
