package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"
)

func TestWriteSARIF(t *testing.T) {
	analyzers := []*Analyzer{
		{Name: "wiretaint", Doc: "flags unchecked wire counts"},
		{Name: "errflow", Doc: "flags dropped errors"},
	}
	diags := []Diagnostic{
		{
			Analyzer: "wiretaint",
			Pos:      token.Position{Filename: "/repo/internal/trace/trace.go", Line: 42, Column: 7},
			Message:  "wire-decoded value `n` reaches make size without a bound check",
		},
		{
			Analyzer: "errflow",
			Pos:      token.Position{Filename: "/elsewhere/outside.go", Line: 3, Column: 1},
			Message:  "error dropped",
		},
	}

	var buf bytes.Buffer
	if err := WriteSARIF(&buf, diags, analyzers, "/repo"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "rups-lint" {
		t.Errorf("driver name = %q, want rups-lint", run.Tool.Driver.Name)
	}
	// Rules are sorted and cover every analyzer, fired or not.
	if len(run.Tool.Driver.Rules) != 2 ||
		run.Tool.Driver.Rules[0].ID != "errflow" || run.Tool.Driver.Rules[1].ID != "wiretaint" {
		t.Errorf("rules = %+v, want [errflow wiretaint]", run.Tool.Driver.Rules)
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "wiretaint" || first.Level != "error" {
		t.Errorf("result 0 = %+v, want wiretaint/error", first)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/trace/trace.go" {
		t.Errorf("URI = %q, want repo-relative internal/trace/trace.go", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 || loc.Region.StartColumn != 7 {
		t.Errorf("region = %+v, want 42:7", loc.Region)
	}
	// A file outside the root keeps its absolute path.
	outside := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI
	if outside != "/elsewhere/outside.go" {
		t.Errorf("outside URI = %q, want absolute /elsewhere/outside.go", outside)
	}
}

// TestWriteSARIFFixesRoundTrip serializes a diagnostic carrying a
// suggested fix and decodes it back through the in-package SARIF types:
// the fix's description, file, region, and inserted text all survive.
func TestWriteSARIFFixesRoundTrip(t *testing.T) {
	diags := []Diagnostic{{
		Analyzer: "allocdiscipline",
		Pos:      token.Position{Filename: "/repo/internal/engine/engine.go", Line: 190, Column: 12},
		Message:  "append loop provably adds at most 12 elements",
		Fixes: []Fix{{
			Message: "preallocate with make([]float64, 0, 12)",
			Edits: []TextEdit{{
				Pos:     token.Position{Filename: "/repo/internal/engine/engine.go", Line: 190, Column: 30, Offset: 4200},
				End:     token.Position{Filename: "/repo/internal/engine/engine.go", Line: 190, Column: 30, Offset: 4200},
				NewText: ", 12",
			}},
		}},
	}}

	var buf bytes.Buffer
	if err := WriteSARIF(&buf, diags, []*Analyzer{{Name: "allocdiscipline", Doc: "d"}}, "/repo"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	res := log.Runs[0].Results[0]
	if len(res.Fixes) != 1 {
		t.Fatalf("got %d fixes, want 1", len(res.Fixes))
	}
	fix := res.Fixes[0]
	if fix.Description.Text != "preallocate with make([]float64, 0, 12)" {
		t.Errorf("description = %q", fix.Description.Text)
	}
	if len(fix.ArtifactChanges) != 1 {
		t.Fatalf("got %d artifactChanges, want 1", len(fix.ArtifactChanges))
	}
	ch := fix.ArtifactChanges[0]
	if ch.ArtifactLocation.URI != "internal/engine/engine.go" {
		t.Errorf("fix URI = %q, want repo-relative internal/engine/engine.go", ch.ArtifactLocation.URI)
	}
	if len(ch.Replacements) != 1 {
		t.Fatalf("got %d replacements, want 1", len(ch.Replacements))
	}
	rep := ch.Replacements[0]
	if rep.InsertedContent.Text != ", 12" {
		t.Errorf("insertedContent = %q, want %q", rep.InsertedContent.Text, ", 12")
	}
	if rep.DeletedRegion.StartLine != 190 || rep.DeletedRegion.StartColumn != 30 ||
		rep.DeletedRegion.EndLine != 190 || rep.DeletedRegion.EndColumn != 30 {
		t.Errorf("deletedRegion = %+v, want a zero-width region at 190:30", rep.DeletedRegion)
	}
	// A diagnostic without fixes must omit the key entirely.
	var generic map[string]any
	if err := json.Unmarshal(buf.Bytes(), &generic); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteSARIF(&buf2, []Diagnostic{{Analyzer: "allocdiscipline", Message: "m"}}, []*Analyzer{{Name: "allocdiscipline", Doc: "d"}}, ""); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf2.Bytes(), []byte(`"fixes"`)) {
		t.Error("fix-free diagnostic serialized a fixes key")
	}
}

func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil, []*Analyzer{{Name: "x", Doc: "d"}}, ""); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	runs := log["runs"].([]any)
	results := runs[0].(map[string]any)["results"].([]any)
	if len(results) != 0 {
		t.Errorf("got %d results, want an empty (non-null) array", len(results))
	}
}
