// Package obsdiscipline enforces the telemetry layer's documented
// zero-alloc disabled-path contract: instrument sites fetch handles
// through a cached obs.View (one atomic load per call), never by raw
// registry lookup or handle construction on a per-iteration or per-resolve
// path. It flags:
//
//   - raw obs.Default / obs.ActiveRecorder / flight.Active lookups written
//     inside a loop;
//   - loop-resident calls whose loaded callee transitively performs a raw
//     lookup (the lookup runs per iteration even though it is written
//     elsewhere), with the call chain spelled out;
//   - metric handle construction (Registry.Counter/Gauge/Histogram)
//     anywhere outside an obs.NewView build function — handles are
//     process-lifetime objects, built once.
//
// View.Get is the sanctioned cache and never flagged; internal/obs itself
// is the owner of the raw lookups and exempt.
package obsdiscipline

import (
	"strings"

	"rups/internal/analysis"
	"rups/internal/analysis/dataflow"
)

// Analyzer flags telemetry lookups and handle construction off the cached
// obs.View path.
var Analyzer = &analysis.Analyzer{
	Name: "obsdiscipline",
	Doc: "flags raw obs registry/recorder lookups in loops and metric handle " +
		"construction outside obs.NewView builds (the cached-View contract)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/obs") ||
		strings.HasSuffix(pass.Pkg.Path(), "internal/obs/flight") {
		return nil // the telemetry layers own their raw lookups
	}
	prog := dataflow.ProgramOf(pass)
	for _, pf := range prog.Functions() {
		if pf.Pkg.Path() != pass.Pkg.Path() {
			continue
		}
		eff := pf.Effects
		for _, s := range eff.RawObsSites {
			if !s.InLoop {
				continue
			}
			hint := "cache handles in a package-level obs.View and call Get once per operation"
			if s.What == "flight.Active" {
				hint = "fetch the ring handle once outside the loop and reuse it"
			}
			pass.Reportf(s.Pos, "raw %s lookup inside a loop: %s", s.What, hint)
		}
		for _, s := range eff.HandleSites {
			pass.Reportf(s.Pos, "%s creates a metric handle outside an obs.NewView "+
				"build function: handles are process-lifetime, construct them once "+
				"in a view", s.What)
		}
		reportLoopCalls(pass, prog, pf)
	}
	return nil
}

// reportLoopCalls flags loop-resident calls whose callee transitively does
// a raw lookup — one report per (function, callee), since a tick loop
// usually repeats the same call.
func reportLoopCalls(pass *analysis.Pass, prog *dataflow.Program, pf *dataflow.ProgFunc) {
	seen := make(map[string]bool)
	for _, cs := range pf.Calls {
		if !cs.InLoop || seen[cs.CalleeID] {
			continue
		}
		var callee *dataflow.ProgFunc
		for _, cal := range prog.Callees(cs) {
			if cal.Effects.RawObs {
				callee = cal
				break
			}
		}
		if callee == nil {
			continue
		}
		seen[cs.CalleeID] = true
		hops := append([]string{dataflow.FuncLabel(cs.Callee)}, prog.ObsChain(callee)...)
		pass.Reportf(cs.Pos, "call in a loop reaches a raw telemetry lookup (%s): "+
			"the lookup runs per iteration; cache handles in an obs.View outside "+
			"the loop", strings.Join(hops, " -> "))
	}
}
