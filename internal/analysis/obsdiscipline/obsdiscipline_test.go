package obsdiscipline_test

import (
	"testing"

	"rups/internal/analysis/analysistest"
	"rups/internal/analysis/obsdiscipline"
)

func TestObsdiscipline(t *testing.T) {
	analysistest.Run(t, "../testdata", obsdiscipline.Analyzer, "obsdiscipline")
}
