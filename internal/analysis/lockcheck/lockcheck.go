// Package lockcheck guards the concurrency seams of the simulator and the
// node network:
//
//   - copying a value whose type contains sync.Mutex, sync.RWMutex,
//     sync.WaitGroup, sync.Once or sync.Cond forks the lock state — two
//     goroutines end up synchronising on different locks. The check flags
//     value copies through assignment, value parameters, value receivers
//     and range-by-value.
//   - a `go func(){...}` literal that writes a variable captured from the
//     enclosing function without holding a lock (and without atomics or
//     channels) is a data race by construction; `go test -race` only sees
//     it when a test happens to schedule the collision.
//
// Writes to distinct elements of a captured slice (out[i] = ...) are the
// sanctioned fan-out idiom and are not flagged.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"rups/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "flags struct copies of lock-bearing types and goroutine closures " +
		"writing captured variables without synchronization",
	Run: run,
}

func run(pass *analysis.Pass) error {
	checkCopies(pass)
	checkGoroutines(pass)
	return nil
}

// --- lock-bearing value copies -----------------------------------------

// checkCopies flags operations that copy a lock-bearing value.
func checkCopies(pass *analysis.Pass) {
	pass.Preorder(func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				return
			}
			for _, rhs := range n.Rhs {
				if t := copiedLockType(pass, rhs); t != "" {
					pass.Reportf(rhs.Pos(), "assignment copies lock value: %s contains %s", typeName(pass, rhs), t)
				}
			}
		case *ast.FuncDecl:
			if n.Recv != nil {
				for _, f := range n.Recv.List {
					if t := lockInType(pass.TypesInfo.TypeOf(f.Type)); t != "" {
						pass.Reportf(f.Type.Pos(), "value receiver copies lock value: %s contains %s", render(f.Type), t)
					}
				}
			}
			if n.Type.Params != nil {
				for _, f := range n.Type.Params.List {
					if t := lockInType(pass.TypesInfo.TypeOf(f.Type)); t != "" {
						pass.Reportf(f.Type.Pos(), "value parameter copies lock value: %s contains %s", render(f.Type), t)
					}
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := lockInType(pass.TypesInfo.TypeOf(n.Value)); t != "" {
					pass.Reportf(n.Value.Pos(), "range-by-value copies lock value: %s contains %s", render(n.Value), t)
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if t := copiedLockType(pass, arg); t != "" {
					pass.Reportf(arg.Pos(), "call passes lock by value: %s contains %s", typeName(pass, arg), t)
				}
			}
		}
	})
}

// copiedLockType returns the name of the lock type inside e's type when
// evaluating e copies an existing lock-bearing value. Composite literals
// and conversions construct fresh values and are fine.
func copiedLockType(pass *analysis.Pass, e ast.Expr) string {
	switch ast.Unparen(e).(type) {
	case *ast.CompositeLit, *ast.CallExpr:
		return ""
	}
	return lockInType(pass.TypesInfo.TypeOf(e))
}

// lockInType returns the qualified name of a sync primitive contained in t
// (by value), or "".
func lockInType(t types.Type) string {
	return lockIn(t, make(map[types.Type]bool))
}

func lockIn(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return "sync." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if s := lockIn(u.Field(i).Type(), seen); s != "" {
				return s
			}
		}
	case *types.Array:
		return lockIn(u.Elem(), seen)
	}
	return ""
}

// --- goroutine closures -------------------------------------------------

// checkGoroutines flags unsynchronised writes to captured variables inside
// `go func(){...}` literals. Writes to loop variables get their own
// message: under Go ≥ 1.22 each iteration has its own variable, so such a
// write is silently lost when the iteration ends — a logic bug rather than
// a race, and invisible to the race detector.
func checkGoroutines(pass *analysis.Pass) {
	loopVars := collectLoopVars(pass)
	pass.Preorder(func(n ast.Node) {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return
		}
		if closureSynchronises(pass, lit) {
			return
		}
		locals := localObjects(pass, lit)
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // nested closures are their own problem
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					reportCapturedWrite(pass, lhs, locals, loopVars)
				}
			case *ast.IncDecStmt:
				reportCapturedWrite(pass, n.X, locals, loopVars)
			}
			return true
		})
	})
}

// collectLoopVars gathers the objects declared as for/range loop variables
// anywhere in the package.
func collectLoopVars(pass *analysis.Pass) map[types.Object]bool {
	loopVars := make(map[types.Object]bool)
	define := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	pass.Preorder(func(n ast.Node) {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Key != nil {
				define(n.Key)
			}
			if n.Value != nil {
				define(n.Value)
			}
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					define(lhs)
				}
			}
		}
	})
	return loopVars
}

// closureSynchronises reports whether the closure body takes a lock or
// uses sync/atomic — either makes the write analysis too imprecise to
// second-guess. Calling sync.WaitGroup methods does NOT count: a
// WaitGroup orders goroutine completion, it does not protect writes.
func closureSynchronises(pass *analysis.Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock":
			found = true
		}
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
			found = true
		}
		return !found
	})
	return found
}

// reportCapturedWrite flags lhs when it is a direct write to a scalar
// variable declared outside the closure. Element writes (slice/map/pointer
// indirection) are left to the race detector: writing distinct elements
// concurrently is legitimate.
func reportCapturedWrite(pass *analysis.Pass, lhs ast.Expr, locals, loopVars map[types.Object]bool) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil || locals[obj] {
		return
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	// Channels synchronise on their own.
	if _, isChan := obj.Type().Underlying().(*types.Chan); isChan {
		return
	}
	if loopVars[obj] {
		pass.Reportf(id.Pos(),
			"goroutine writes captured loop variable %q; each iteration has its own copy, so the write is lost", id.Name)
		return
	}
	pass.Reportf(id.Pos(),
		"goroutine writes captured variable %q without synchronization (no lock or atomic in closure)", id.Name)
}

// localObjects collects every object declared inside the closure,
// including its parameters.
func localObjects(pass *analysis.Pass, lit *ast.FuncLit) map[types.Object]bool {
	locals := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				locals[obj] = true
			}
		}
		return true
	})
	return locals
}

// typeName renders e's type for a diagnostic.
func typeName(pass *analysis.Pass, e ast.Expr) string {
	if t := pass.TypesInfo.TypeOf(e); t != nil {
		return t.String()
	}
	return render(e)
}

// render produces a short printable form of an expression or type.
func render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + render(e.X)
	case *ast.ArrayType:
		return "[]" + render(e.Elt)
	default:
		return "value"
	}
}
