package lockcheck_test

import (
	"testing"

	"rups/internal/analysis/analysistest"
	"rups/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "../testdata", lockcheck.Analyzer, "lockcheck")
}
