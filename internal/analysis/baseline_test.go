package analysis

import (
	"go/token"
	"path/filepath"
	"testing"
)

func diag(analyzer, file string, line int, msg string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Message:  msg,
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	root := "/repo"
	diags := []Diagnostic{
		diag("errflow", "/repo/cmd/a/main.go", 10, "error dropped"),
		diag("errflow", "/repo/cmd/a/main.go", 20, "error dropped"),
		diag("wiretaint", "/repo/internal/x/x.go", 5, "tainted make"),
	}
	b := NewBaseline(diags, root)
	if len(b.Entries) != 2 {
		t.Fatalf("got %d entries, want 2 (identical findings collapse): %+v", len(b.Entries), b.Entries)
	}
	// Entries are sorted by file; the repeated finding carries its count.
	if b.Entries[0].File != "cmd/a/main.go" || b.Entries[0].Count != 2 {
		t.Errorf("entry 0 = %+v, want cmd/a/main.go count 2", b.Entries[0])
	}

	// Everything baselined: nothing survives the filter.
	if rest := b.Filter(diags, root); len(rest) != 0 {
		t.Errorf("filter left %d diagnostics, want 0: %v", len(rest), rest)
	}

	// The same finding moving to another line stays suppressed.
	moved := []Diagnostic{diag("wiretaint", "/repo/internal/x/x.go", 99, "tainted make")}
	if rest := b.Filter(moved, root); len(rest) != 0 {
		t.Errorf("line move resurrected a baselined finding: %v", rest)
	}

	// A third copy of a finding baselined twice is reported.
	tripled := []Diagnostic{
		diag("errflow", "/repo/cmd/a/main.go", 10, "error dropped"),
		diag("errflow", "/repo/cmd/a/main.go", 20, "error dropped"),
		diag("errflow", "/repo/cmd/a/main.go", 30, "error dropped"),
	}
	if rest := b.Filter(tripled, root); len(rest) != 1 {
		t.Errorf("filter left %d diagnostics, want exactly the third copy", len(rest))
	}

	// A genuinely new finding passes through.
	fresh := []Diagnostic{diag("ctxguard", "/repo/internal/x/x.go", 7, "orphan goroutine")}
	if rest := b.Filter(fresh, root); len(rest) != 1 {
		t.Errorf("new finding was swallowed: %v", rest)
	}
}

func TestBaselineFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	b := NewBaseline([]Diagnostic{
		diag("errflow", "/repo/a.go", 1, "error dropped"),
	}, "/repo")
	if err := b.WriteFile(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(loaded.Entries) != 1 || loaded.Entries[0] != b.Entries[0] {
		t.Errorf("round trip mismatch: wrote %+v, read %+v", b.Entries, loaded.Entries)
	}
}

func TestBaselinePrune(t *testing.T) {
	root := "/repo"
	all := []Diagnostic{
		diag("errflow", "/repo/cmd/a/main.go", 10, "error dropped"),
		diag("errflow", "/repo/cmd/a/main.go", 20, "error dropped"),
		diag("wiretaint", "/repo/internal/x/x.go", 5, "tainted make"),
		diag("timedet", "/repo/internal/sim/sim.go", 3, "time.Now in sim"),
	}
	b := NewBaseline(all, root)
	for i := range b.Entries {
		b.Entries[i].Why = "justified"
	}

	// Nothing fixed: kept is the whole baseline, nothing stale.
	kept, stale := b.Prune(all, root)
	if len(stale) != 0 {
		t.Errorf("prune of an unchanged run found stale entries: %+v", stale)
	}
	if len(kept.Entries) != len(b.Entries) {
		t.Errorf("prune kept %d of %d entries", len(kept.Entries), len(b.Entries))
	}

	// The wiretaint finding is fixed and one of two errflow findings is
	// fixed: wiretaint's entry goes fully stale, errflow's count shrinks.
	after := []Diagnostic{
		diag("errflow", "/repo/cmd/a/main.go", 10, "error dropped"),
		diag("timedet", "/repo/internal/sim/sim.go", 3, "time.Now in sim"),
	}
	kept, stale = b.Prune(after, root)
	if len(stale) != 2 {
		t.Fatalf("got %d stale entries, want 2 (wiretaint whole, errflow partial): %+v", len(stale), stale)
	}
	for _, e := range stale {
		switch e.Analyzer {
		case "wiretaint":
			if e.Count != 1 {
				t.Errorf("wiretaint stale count = %d, want 1", e.Count)
			}
		case "errflow":
			if e.Count != 1 {
				t.Errorf("errflow stale count = %d, want 1 (one of two slots unused)", e.Count)
			}
		default:
			t.Errorf("unexpected stale analyzer %q", e.Analyzer)
		}
	}
	if len(kept.Entries) != 2 {
		t.Fatalf("kept %d entries, want 2 (errflow shrunk + timedet): %+v", len(kept.Entries), kept.Entries)
	}
	for _, e := range kept.Entries {
		if e.Why != "justified" {
			t.Errorf("prune dropped the justification on %+v", e)
		}
		if e.Analyzer == "errflow" && e.Count != 1 {
			t.Errorf("errflow kept count = %d, want 1", e.Count)
		}
	}

	// The shrunk baseline still suppresses exactly the surviving findings.
	if rest := kept.Filter(after, root); len(rest) != 0 {
		t.Errorf("pruned baseline no longer covers the live findings: %v", rest)
	}
}

func TestBaselineWhyIgnoredForMatching(t *testing.T) {
	root := "/repo"
	d := diag("floatcmp", "/repo/internal/x/x.go", 4, "== on float64")
	b := NewBaseline([]Diagnostic{d}, root)
	b.Entries[0].Why = "legacy comparison, fix tracked separately"

	if rest := b.Filter([]Diagnostic{d}, root); len(rest) != 0 {
		t.Errorf("a justification broke fingerprint matching: %v", rest)
	}
	if _, stale := b.Prune([]Diagnostic{d}, root); len(stale) != 0 {
		t.Errorf("a justification made a live entry look stale: %+v", stale)
	}

	// And it survives the file round trip.
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Entries[0].Why != b.Entries[0].Why {
		t.Errorf("Why lost in round trip: %q", loaded.Entries[0].Why)
	}
}

func TestLoadBaselineMissing(t *testing.T) {
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("loading a missing baseline should fail, not silently succeed")
	}
}
