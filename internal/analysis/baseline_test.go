package analysis

import (
	"go/token"
	"path/filepath"
	"testing"
)

func diag(analyzer, file string, line int, msg string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Message:  msg,
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	root := "/repo"
	diags := []Diagnostic{
		diag("errflow", "/repo/cmd/a/main.go", 10, "error dropped"),
		diag("errflow", "/repo/cmd/a/main.go", 20, "error dropped"),
		diag("wiretaint", "/repo/internal/x/x.go", 5, "tainted make"),
	}
	b := NewBaseline(diags, root)
	if len(b.Entries) != 2 {
		t.Fatalf("got %d entries, want 2 (identical findings collapse): %+v", len(b.Entries), b.Entries)
	}
	// Entries are sorted by file; the repeated finding carries its count.
	if b.Entries[0].File != "cmd/a/main.go" || b.Entries[0].Count != 2 {
		t.Errorf("entry 0 = %+v, want cmd/a/main.go count 2", b.Entries[0])
	}

	// Everything baselined: nothing survives the filter.
	if rest := b.Filter(diags, root); len(rest) != 0 {
		t.Errorf("filter left %d diagnostics, want 0: %v", len(rest), rest)
	}

	// The same finding moving to another line stays suppressed.
	moved := []Diagnostic{diag("wiretaint", "/repo/internal/x/x.go", 99, "tainted make")}
	if rest := b.Filter(moved, root); len(rest) != 0 {
		t.Errorf("line move resurrected a baselined finding: %v", rest)
	}

	// A third copy of a finding baselined twice is reported.
	tripled := []Diagnostic{
		diag("errflow", "/repo/cmd/a/main.go", 10, "error dropped"),
		diag("errflow", "/repo/cmd/a/main.go", 20, "error dropped"),
		diag("errflow", "/repo/cmd/a/main.go", 30, "error dropped"),
	}
	if rest := b.Filter(tripled, root); len(rest) != 1 {
		t.Errorf("filter left %d diagnostics, want exactly the third copy", len(rest))
	}

	// A genuinely new finding passes through.
	fresh := []Diagnostic{diag("ctxguard", "/repo/internal/x/x.go", 7, "orphan goroutine")}
	if rest := b.Filter(fresh, root); len(rest) != 1 {
		t.Errorf("new finding was swallowed: %v", rest)
	}
}

func TestBaselineFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	b := NewBaseline([]Diagnostic{
		diag("errflow", "/repo/a.go", 1, "error dropped"),
	}, "/repo")
	if err := b.WriteFile(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(loaded.Entries) != 1 || loaded.Entries[0] != b.Entries[0] {
		t.Errorf("round trip mismatch: wrote %+v, read %+v", b.Entries, loaded.Entries)
	}
}

func TestLoadBaselineMissing(t *testing.T) {
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("loading a missing baseline should fail, not silently succeed")
	}
}
