// Package atomiccheck flags struct fields that are accessed through
// sync/atomic (package functions or the typed atomics' methods) in one
// function and by plain read or write in another. Mixing the two is a data
// race even when each side looks locally consistent — the atomic side
// establishes no happens-before for the plain side. The obs registry's
// atomic handle cache is the motivating surface; its typed atomics make
// plain access unrepresentable, which is the pattern this analyzer pushes
// toward.
//
// Constructors are exempt: plain writes inside functions named New* or
// init happen before the value is shared.
package atomiccheck

import (
	"rups/internal/analysis"
	"rups/internal/analysis/dataflow"
)

// Analyzer flags fields mixing atomic and plain access across functions.
var Analyzer = &analysis.Analyzer{
	Name: "atomiccheck",
	Doc: "flags fields accessed via sync/atomic in one function and by " +
		"plain read/write in another (no happens-before between the two sides)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	prog := dataflow.ProgramOf(pass)
	local := func(s dataflow.Site) bool {
		return s.Fn != nil && s.Fn.Pkg() != nil && s.Fn.Pkg().Path() == pass.Pkg.Path()
	}
	for _, id := range prog.FieldIDs() {
		fa := prog.FieldAccessOf(id)
		if len(fa.Atomic) == 0 {
			continue
		}
		atomicFns := make(map[string]bool, len(fa.Atomic))
		for _, s := range fa.Atomic {
			atomicFns[s.FnID] = true
		}
		witness := dataflow.FuncLabel(fa.Atomic[0].Fn)
		report := func(sites []dataflow.Site, how string) {
			for _, s := range sites {
				if !local(s) || atomicFns[s.FnID] || constructor(s) {
					continue
				}
				pass.Reportf(s.Pos, "plain %s of field %s, which %s accesses "+
					"atomically: mixed atomic/plain access is a data race",
					how, fa.Name, witness)
			}
		}
		report(fa.PlainReads, "read")
		report(fa.PlainWrites, "write")
	}
	return nil
}

// constructor reports whether the site sits in a New*/init function, where
// the value is not yet shared.
func constructor(s dataflow.Site) bool {
	if s.Fn == nil {
		return false
	}
	name := s.Fn.Name()
	return name == "init" || (len(name) >= 3 && name[:3] == "New")
}
