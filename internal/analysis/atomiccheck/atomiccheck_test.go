package atomiccheck_test

import (
	"testing"

	"rups/internal/analysis/analysistest"
	"rups/internal/analysis/atomiccheck"
)

func TestAtomiccheck(t *testing.T) {
	analysistest.Run(t, "../testdata", atomiccheck.Analyzer, "atomiccheck")
}
