package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF (Static Analysis Results Interchange Format) 2.1.0 output, the
// subset GitHub code scanning consumes: one run, one rule per analyzer,
// one result per diagnostic, physical locations with URIs relative to
// the repository root so annotations land on PR diffs.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	Fixes     []sarifFix      `json:"fixes,omitempty"`
}

type sarifFix struct {
	Description     sarifMessage          `json:"description"`
	ArtifactChanges []sarifArtifactChange `json:"artifactChanges"`
}

type sarifArtifactChange struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Replacements     []sarifReplacement    `json:"replacements"`
}

type sarifReplacement struct {
	DeletedRegion   sarifRegion  `json:"deletedRegion"`
	InsertedContent sarifMessage `json:"insertedContent"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
	EndLine     int `json:"endLine,omitempty"`
	EndColumn   int `json:"endColumn,omitempty"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log. Rules cover every
// registered analyzer — not just the ones that fired — so a clean run
// still documents what was checked. File paths are made relative to
// root; paths outside it are kept absolute rather than mangled.
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer, root string) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relativeURI(root, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
			Fixes: sarifFixes(d.Fixes, root),
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "rups-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifFixes serializes suggested fixes: one artifactChange per edited
// file, each edit a replacement whose deletedRegion spans [Pos, End).
func sarifFixes(fixes []Fix, root string) []sarifFix {
	out := make([]sarifFix, 0, len(fixes))
	for _, f := range fixes {
		byFile := make(map[string][]sarifReplacement)
		var order []string
		for _, e := range f.Edits {
			if _, seen := byFile[e.Pos.Filename]; !seen {
				order = append(order, e.Pos.Filename)
			}
			byFile[e.Pos.Filename] = append(byFile[e.Pos.Filename], sarifReplacement{
				DeletedRegion: sarifRegion{
					StartLine:   e.Pos.Line,
					StartColumn: e.Pos.Column,
					EndLine:     e.End.Line,
					EndColumn:   e.End.Column,
				},
				InsertedContent: sarifMessage{Text: e.NewText},
			})
		}
		sf := sarifFix{Description: sarifMessage{Text: f.Message}}
		for _, file := range order {
			sf.ArtifactChanges = append(sf.ArtifactChanges, sarifArtifactChange{
				ArtifactLocation: sarifArtifactLocation{URI: relativeURI(root, file)},
				Replacements:     byFile[file],
			})
		}
		out = append(out, sf)
	}
	return out
}

// relativeURI rewrites an absolute filename relative to the repo root,
// with forward slashes as SARIF requires.
func relativeURI(root, filename string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}
