package dataflow

import (
	"fmt"
	"math"
)

// Interval is the value domain of the abstract-interpretation layer: a
// (possibly half-open) range of int64. The taint lattice answers "where
// did this value come from"; the interval lattice answers "how big can it
// be" — the question a bounds proof, an allocation estimate, or a lossy
// narrowing conversion actually needs.
//
// The bottom element (no value) is represented by empty == true; Top is
// (-inf, +inf). All arithmetic saturates: an operation whose exact result
// could overflow int64 gives up the affected bound (sets it unbounded)
// rather than wrapping, so intervals stay over-approximations of the
// concrete values.
type Interval struct {
	// Lo and Hi are the inclusive bounds, valid only when the matching
	// *Unb flag is false.
	Lo, Hi int64
	// LoUnb and HiUnb mark the bound as -inf / +inf respectively.
	LoUnb, HiUnb bool
	// empty marks the bottom element (the interval of an unreachable
	// value). The zero Interval is [0, 0], not bottom — construct bottom
	// with Bottom().
	empty bool
}

// Top is the unknown value: (-inf, +inf).
func Top() Interval { return Interval{LoUnb: true, HiUnb: true} }

// Bottom is the interval of no value at all.
func Bottom() Interval { return Interval{empty: true} }

// Const is the singleton interval [v, v].
func Const(v int64) Interval { return Interval{Lo: v, Hi: v} }

// Range is the closed interval [lo, hi]; lo > hi yields Bottom.
func Range(lo, hi int64) Interval {
	if lo > hi {
		return Bottom()
	}
	return Interval{Lo: lo, Hi: hi}
}

// AtLeast is [lo, +inf).
func AtLeast(lo int64) Interval { return Interval{Lo: lo, HiUnb: true} }

// AtMost is (-inf, hi].
func AtMost(hi int64) Interval { return Interval{Hi: hi, LoUnb: true} }

// IsEmpty reports the bottom element.
func (iv Interval) IsEmpty() bool { return iv.empty }

// IsTop reports the completely unknown interval.
func (iv Interval) IsTop() bool { return !iv.empty && iv.LoUnb && iv.HiUnb }

// Bounded reports that both ends are finite.
func (iv Interval) Bounded() bool { return !iv.empty && !iv.LoUnb && !iv.HiUnb }

// LoBounded reports a finite lower bound.
func (iv Interval) LoBounded() bool { return !iv.empty && !iv.LoUnb }

// HiBounded reports a finite upper bound.
func (iv Interval) HiBounded() bool { return !iv.empty && !iv.HiUnb }

// IsConst reports a singleton interval and returns its value.
func (iv Interval) IsConst() (int64, bool) {
	if iv.Bounded() && iv.Lo == iv.Hi {
		return iv.Lo, true
	}
	return 0, false
}

// Contains reports v ∈ iv.
func (iv Interval) Contains(v int64) bool {
	if iv.empty {
		return false
	}
	return (iv.LoUnb || iv.Lo <= v) && (iv.HiUnb || v <= iv.Hi)
}

// ContainedIn reports iv ⊆ o.
func (iv Interval) ContainedIn(o Interval) bool {
	if iv.empty {
		return true
	}
	if o.empty {
		return false
	}
	loOK := o.LoUnb || (!iv.LoUnb && iv.Lo >= o.Lo)
	hiOK := o.HiUnb || (!iv.HiUnb && iv.Hi <= o.Hi)
	return loOK && hiOK
}

// Join is the least upper bound: the smallest interval covering both.
func (iv Interval) Join(o Interval) Interval {
	if iv.empty {
		return o
	}
	if o.empty {
		return iv
	}
	out := Interval{}
	if iv.LoUnb || o.LoUnb {
		out.LoUnb = true
	} else {
		out.Lo = min64(iv.Lo, o.Lo)
	}
	if iv.HiUnb || o.HiUnb {
		out.HiUnb = true
	} else {
		out.Hi = max64(iv.Hi, o.Hi)
	}
	return out
}

// Meet is the greatest lower bound: the intersection. Disjoint intervals
// meet to Bottom.
func (iv Interval) Meet(o Interval) Interval {
	if iv.empty || o.empty {
		return Bottom()
	}
	out := Interval{}
	switch {
	case iv.LoUnb && o.LoUnb:
		out.LoUnb = true
	case iv.LoUnb:
		out.Lo = o.Lo
	case o.LoUnb:
		out.Lo = iv.Lo
	default:
		out.Lo = max64(iv.Lo, o.Lo)
	}
	switch {
	case iv.HiUnb && o.HiUnb:
		out.HiUnb = true
	case iv.HiUnb:
		out.Hi = o.Hi
	case o.HiUnb:
		out.Hi = iv.Hi
	default:
		out.Hi = min64(iv.Hi, o.Hi)
	}
	if !out.LoUnb && !out.HiUnb && out.Lo > out.Hi {
		return Bottom()
	}
	return out
}

// Widen is the loop-head widening operator: any bound that moved since
// prev is given up entirely, so a chain of widenings stabilizes after at
// most two steps per side. Classic interval widening — precision at loop
// heads is recovered afterwards by Meet against the loop condition.
func (iv Interval) Widen(prev Interval) Interval {
	if prev.empty {
		return iv
	}
	if iv.empty {
		return prev
	}
	out := iv
	if !prev.LoUnb && (iv.LoUnb || iv.Lo < prev.Lo) {
		out.Lo, out.LoUnb = 0, true
	} else if prev.LoUnb {
		out.Lo, out.LoUnb = 0, true
	}
	if !prev.HiUnb && (iv.HiUnb || iv.Hi > prev.Hi) {
		out.Hi, out.HiUnb = 0, true
	} else if prev.HiUnb {
		out.Hi, out.HiUnb = 0, true
	}
	return out
}

// Add is interval addition, saturating to unbounded on overflow.
func (iv Interval) Add(o Interval) Interval {
	if iv.empty || o.empty {
		return Bottom()
	}
	out := Interval{LoUnb: iv.LoUnb || o.LoUnb, HiUnb: iv.HiUnb || o.HiUnb}
	if !out.LoUnb {
		lo, ok := addChecked(iv.Lo, o.Lo)
		if !ok {
			out.LoUnb = true
		} else {
			out.Lo = lo
		}
	}
	if !out.HiUnb {
		hi, ok := addChecked(iv.Hi, o.Hi)
		if !ok {
			out.HiUnb = true
		} else {
			out.Hi = hi
		}
	}
	return out
}

// Neg is interval negation.
func (iv Interval) Neg() Interval {
	if iv.empty {
		return iv
	}
	out := Interval{LoUnb: iv.HiUnb, HiUnb: iv.LoUnb}
	if !out.LoUnb {
		if iv.Hi == math.MinInt64 {
			out.LoUnb = true
		} else {
			out.Lo = -iv.Hi
		}
	}
	if !out.HiUnb {
		if iv.Lo == math.MinInt64 {
			out.HiUnb = true
		} else {
			out.Hi = -iv.Lo
		}
	}
	return out
}

// Sub is interval subtraction.
func (iv Interval) Sub(o Interval) Interval { return iv.Add(o.Neg()) }

// Mul is interval multiplication: the hull of the four corner products,
// with unbounded ends handled by sign reasoning (kept deliberately coarse —
// any unbounded operand whose sign is not pinned yields Top).
func (iv Interval) Mul(o Interval) Interval {
	if iv.empty || o.empty {
		return Bottom()
	}
	if z, ok := iv.IsConst(); ok && z == 0 {
		return Const(0)
	}
	if z, ok := o.IsConst(); ok && z == 0 {
		return Const(0)
	}
	if iv.Bounded() && o.Bounded() {
		vals := make([]int64, 0, 4)
		unb := false
		for _, a := range [2]int64{iv.Lo, iv.Hi} {
			for _, b := range [2]int64{o.Lo, o.Hi} {
				p, ok := mulChecked(a, b)
				if !ok {
					unb = true
					continue
				}
				vals = append(vals, p)
			}
		}
		if len(vals) == 0 {
			return Top()
		}
		out := Interval{Lo: vals[0], Hi: vals[0]}
		for _, v := range vals[1:] {
			out.Lo = min64(out.Lo, v)
			out.Hi = max64(out.Hi, v)
		}
		if unb {
			// Some corner overflowed: keep only the bounds that cannot be
			// beaten by the overflowed corner's sign.
			return Top()
		}
		return out
	}
	// Unbounded operand: only the both-nonnegative case stays useful
	// (allocation sizes and loop bounds are nonnegative).
	if iv.LoBounded() && iv.Lo >= 0 && o.LoBounded() && o.Lo >= 0 {
		lo, ok := mulChecked(iv.Lo, o.Lo)
		if !ok {
			return AtLeast(0)
		}
		return AtLeast(lo)
	}
	return Top()
}

// Div is interval division by a divisor interval excluding zero behaviour:
// a divisor interval containing zero yields Top (the runtime would panic,
// the abstraction stays sound by knowing nothing).
func (iv Interval) Div(o Interval) Interval {
	if iv.empty || o.empty {
		return Bottom()
	}
	if o.Contains(0) || !o.Bounded() {
		if iv.LoBounded() && iv.Lo >= 0 && o.LoBounded() && o.Lo >= 1 {
			// nonneg / (≥1): result shrinks — keep [0, iv.Hi].
			if iv.HiBounded() {
				return Range(0, iv.Hi)
			}
			return AtLeast(0)
		}
		return Top()
	}
	if !iv.Bounded() {
		if iv.LoBounded() && iv.Lo >= 0 && o.Lo >= 1 {
			return AtLeast(0)
		}
		return Top()
	}
	vals := [4]int64{iv.Lo / o.Lo, iv.Lo / o.Hi, iv.Hi / o.Lo, iv.Hi / o.Hi}
	out := Interval{Lo: vals[0], Hi: vals[0]}
	for _, v := range vals[1:] {
		out.Lo = min64(out.Lo, v)
		out.Hi = max64(out.Hi, v)
	}
	return out
}

// Rem bounds x % y. For a positive divisor the result sits in
// [0, y.Hi-1] when x is nonnegative — the modular-indexing idiom.
func (iv Interval) Rem(o Interval) Interval {
	if iv.empty || o.empty {
		return Bottom()
	}
	if o.LoBounded() && o.Lo >= 1 && o.HiBounded() {
		if iv.LoBounded() && iv.Lo >= 0 {
			hi := o.Hi - 1
			if iv.HiBounded() && iv.Hi < hi {
				hi = iv.Hi
			}
			return Range(0, hi)
		}
		return Range(-(o.Hi - 1), o.Hi-1)
	}
	return Top()
}

// String renders the interval for diagnostics: "[0, 15]", "[0, +inf)",
// "(-inf, 42]", "(-inf, +inf)", "∅".
func (iv Interval) String() string {
	if iv.empty {
		return "∅"
	}
	lo, hi := "(-inf", fmt.Sprintf("%d]", iv.Hi)
	if !iv.LoUnb {
		lo = fmt.Sprintf("[%d", iv.Lo)
	}
	if iv.HiUnb {
		hi = "+inf)"
	}
	return lo + ", " + hi
}

func addChecked(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

func mulChecked(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
