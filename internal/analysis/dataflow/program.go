// Interprocedural layer: a Program is the whole-load view the
// concurrency-discipline analyzers work on — every function declaration in
// every loaded package, a static call graph between them, and per-function
// effect summaries (channel operations, lock acquisition order, atomic
// versus plain field access, wall-clock and global-randomness sources,
// telemetry-handle discipline) computed to a cross-package fixpoint.
//
// The loader type-checks each target package from source while its
// importers see export-data twins of the same packages, so *types.Object
// identity does not hold across package boundaries. Everything
// program-wide is therefore keyed by stable string IDs: functions by
// "pkgpath.(Recv).Name", struct fields and channels by
// "pkgpath.Type.field", locks by the same scheme. Positions stay exact —
// every recorded site carries its token.Pos and owning function.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"

	"rups/internal/analysis"
	"rups/internal/analysis/loader"
)

// Program is the interprocedural view over one load.
type Program struct {
	fset  *token.FileSet
	funcs []*ProgFunc          // deterministic: declaration order
	byID  map[string]*ProgFunc // funcID → function

	analyses map[string]*Analysis // pkg path → per-package dataflow
	taints   map[string]*Summary  // funcID → taint summary (cross-package)

	chanOps  map[string][]ChanOp // chanKey → operations, program-wide
	chanKeys []string            // deterministic iteration order
	fields   map[string]*FieldAccess
	fieldIDs []string

	lockEdges   []LockEdge
	lockEdgeSet map[lockEdgeKey]bool

	// dynMu guards dynCache: it is populated lazily by callees(), which
	// analyzers reach concurrently once the driver parallelizes packages.
	dynMu    sync.Mutex
	dynCache map[string][]*ProgFunc // interface method ID → matching impls

	// ivalRets holds the interval fixpoint's per-function return
	// intervals, keyed by canonical function ID (see computeIntervals).
	ivalRets map[string]Interval

	// ivalNoNarrow marks functions whose identifier is referenced outside
	// call position somewhere in the load: calls through the escaped value
	// are invisible to the call-site walk, so parameter narrowing is
	// unsound for them (see collectValueRefFuncs).
	ivalNoNarrow map[string]bool
}

// ProgFunc is one declared function (methods included) with its syntax,
// package, direct call sites, and effect summary.
type ProgFunc struct {
	ID      string
	Fn      *types.Func
	Decl    *ast.FuncDecl
	Pkg     *types.Package
	Info    *types.Info
	Calls   []*CallSite
	Effects *Effects

	// sanctionedObs marks functions inside internal/obs itself: the View
	// cache and friends are the sanctioned owners of raw registry lookups,
	// so they record their sites but do not export the RawObs effect —
	// otherwise every cached View.Get chain would flag as a raw lookup.
	sanctionedObs bool
}

// CallSite is one static call edge out of a declared function. Calls from
// closures are attributed to the enclosing declaration; a closure defined
// inside a loop inherits the loop context (it typically runs per
// iteration).
type CallSite struct {
	Caller   *types.Func
	CalleeID string      // canonical ID; resolve with Program.Func
	Callee   *types.Func // the caller's view of the callee (may be an export-data twin)
	Pos      token.Pos
	InLoop   bool
	InGo     bool
	InDefer  bool
	Held     []string // lock IDs held at the call, in acquisition order

	// Dynamic marks an interface-method call. CalleeID then names the
	// interface method; the fixpoint joins effects over every loaded
	// concrete method named MethodName whose receiver's method set covers
	// IfaceNames (a structural-implements approximation that survives the
	// source/export-data type-identity split).
	Dynamic    bool
	MethodName string
	IfaceNames []string
}

// Site is one recorded source position with its concurrency context.
type Site struct {
	Fn     *types.Func
	FnID   string
	Pos    token.Pos
	InLoop bool
	InGo   bool
	InOnce bool
	Held   []string
}

// ChanOpKind classifies channel operations.
type ChanOpKind uint8

const (
	// ChanSend is ch <- v.
	ChanSend ChanOpKind = iota
	// ChanClose is close(ch).
	ChanClose
	// ChanRecv is <-ch (recorded for completeness).
	ChanRecv
)

// String names the operation for diagnostics.
func (k ChanOpKind) String() string {
	switch k {
	case ChanSend:
		return "send"
	case ChanClose:
		return "close"
	default:
		return "receive"
	}
}

// ChanOp is one send/close/receive on an abstract channel.
type ChanOp struct {
	Kind ChanOpKind
	// Key identifies the channel program-wide (see chanKey).
	Key string
	// Name is the channel's short name for diagnostics (field or var name).
	Name string
	// FromParam reports that the channel reached this function as a
	// parameter — ownership lives with the caller.
	FromParam bool
	Site
}

// FieldAccess aggregates every access to one struct field program-wide:
// the sites that touch it through sync/atomic (or a typed atomic's
// methods) and the plain reads/writes.
type FieldAccess struct {
	ID          string
	Name        string // short field name for diagnostics
	Atomic      []Site
	PlainReads  []Site
	PlainWrites []Site
}

// LockEdge records "From was held while To was acquired" with the position
// of the acquisition (or of the call that leads to it) and the function
// the evidence sits in. Via names the callee chain when the acquisition is
// interprocedural; empty for a direct acquire.
type LockEdge struct {
	From, To string
	Pos      token.Pos
	Fn       *types.Func
	FnID     string
	Via      string
}

type lockEdgeKey struct {
	from, to string
	pos      token.Pos
}

// NewProgram builds the interprocedural program over every loaded package:
// call graph, effect summaries to fixpoint, and cross-package taint
// summaries feeding the existing intraprocedural layer.
func NewProgram(pkgs []*loader.Package) *Program {
	passes := make([]*analysis.Pass, len(pkgs))
	for i, pkg := range pkgs {
		passes[i] = &analysis.Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
	}
	return newProgram(passes)
}

// ProgramOf returns the program the driver attached to the pass, or — when
// the pass runs without one (single-package analysistest goldens, direct
// analyzer invocation) — a program built from just this package. The
// fallback keeps every interprocedural analyzer usable on one package; it
// simply cannot see across imports.
func ProgramOf(pass *analysis.Pass) *Program {
	if p, ok := pass.Program.(*Program); ok && p != nil {
		return p
	}
	return newProgram([]*analysis.Pass{{
		Fset:      pass.Fset,
		Files:     pass.Files,
		Pkg:       pass.Pkg,
		TypesInfo: pass.TypesInfo,
	}})
}

func newProgram(passes []*analysis.Pass) *Program {
	p := &Program{
		byID:        make(map[string]*ProgFunc),
		analyses:    make(map[string]*Analysis),
		taints:      make(map[string]*Summary),
		chanOps:     make(map[string][]ChanOp),
		fields:      make(map[string]*FieldAccess),
		lockEdgeSet: make(map[lockEdgeKey]bool),
	}
	for _, pass := range passes {
		if p.fset == nil {
			p.fset = pass.Fset
		}
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				pf := &ProgFunc{
					ID:            FuncID(fn),
					Fn:            fn,
					Decl:          fd,
					Pkg:           pass.Pkg,
					Info:          pass.TypesInfo,
					Effects:       newEffects(),
					sanctionedObs: strings.HasSuffix(pass.Pkg.Path(), "internal/obs") ||
						strings.HasSuffix(pass.Pkg.Path(), "internal/obs/flight"),
				}
				p.funcs = append(p.funcs, pf)
				p.byID[pf.ID] = pf
			}
		}
	}
	sort.SliceStable(p.funcs, func(i, j int) bool { return p.funcs[i].Decl.Pos() < p.funcs[j].Decl.Pos() })

	for _, pf := range p.funcs {
		p.walkFunc(pf)
	}
	p.fixpoint()

	// Cross-package taint: per-package intraprocedural analyses whose call
	// summaries consult every other package's, iterated to a global
	// fixpoint. Facts only climb the lattice, so this terminates.
	for _, pass := range passes {
		a := New(pass)
		a.SetForeign(p.foreignSummary(pass.Pkg))
		p.analyses[pass.Pkg.Path()] = a
		for fn, s := range a.summaries {
			p.taints[FuncID(fn)] = s
		}
	}
	for changed := true; changed; {
		changed = false
		for _, pass := range passes {
			if p.analyses[pass.Pkg.Path()].Recompute() {
				changed = true
			}
		}
	}

	// Interval layer: interprocedural argument/return interval propagation
	// over the same per-package analyses, to a widened fixpoint.
	p.computeIntervals(passes)

	sort.Strings(p.chanKeys)
	sort.Strings(p.fieldIDs)
	sort.Slice(p.lockEdges, func(i, j int) bool {
		a, b := p.lockEdges[i], p.lockEdges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Pos < b.Pos
	})
	return p
}

// foreignSummary resolves call summaries across package boundaries by
// canonical function ID, so a caller's export-data view of a callee finds
// the summary computed from the callee's source.
func (p *Program) foreignSummary(self *types.Package) func(*types.Func) *Summary {
	return func(fn *types.Func) *Summary {
		if fn == nil || fn.Pkg() == nil || fn.Pkg() == self {
			return nil // same package: the local summary map already answered
		}
		return p.taints[FuncID(fn)]
	}
}

// ---- accessors ---------------------------------------------------------

// Functions returns every declared function in declaration order.
func (p *Program) Functions() []*ProgFunc { return p.funcs }

// Fset is the shared fileset every loaded package was parsed into.
func (p *Program) Fset() *token.FileSet { return p.fset }

// Func resolves a function (possibly an export-data twin from another
// package's view) to its program entry, or nil when it is not part of the
// load (standard library, unexported foreign helpers, interface methods).
func (p *Program) Func(fn *types.Func) *ProgFunc {
	if fn == nil {
		return nil
	}
	return p.byID[FuncID(fn)]
}

// FuncByID resolves a canonical function ID.
func (p *Program) FuncByID(id string) *ProgFunc { return p.byID[id] }

// EffectsOf returns fn's effect summary, or nil for functions outside the
// load.
func (p *Program) EffectsOf(fn *types.Func) *Effects {
	if pf := p.Func(fn); pf != nil {
		return pf.Effects
	}
	return nil
}

// ChanKeys lists every abstract channel with at least one recorded
// operation, sorted.
func (p *Program) ChanKeys() []string { return p.chanKeys }

// ChanOpsOf returns the program-wide operations on one abstract channel.
func (p *Program) ChanOpsOf(key string) []ChanOp { return p.chanOps[key] }

// FieldIDs lists every struct field with a recorded access, sorted.
func (p *Program) FieldIDs() []string { return p.fieldIDs }

// FieldAccessOf returns the aggregated accesses of one field.
func (p *Program) FieldAccessOf(id string) *FieldAccess { return p.fields[id] }

// LockEdges returns the "held From while acquiring To" graph, sorted.
func (p *Program) LockEdges() []LockEdge { return p.lockEdges }

// AnalysisFor returns the per-package intraprocedural dataflow analysis
// with cross-package summaries wired in, or nil for unloaded packages.
func (p *Program) AnalysisFor(pkg *types.Package) *Analysis {
	if pkg == nil {
		return nil
	}
	return p.analyses[pkg.Path()]
}

// AnalysisOf is the analyzer-facing entry point for the intraprocedural
// layer: the pass's per-package analysis out of the shared program (so
// flows and summaries are built once per run and cross-package call
// summaries resolve), falling back to a standalone analysis when the pass
// carries no program.
func AnalysisOf(pass *analysis.Pass) *Analysis {
	if a := ProgramOf(pass).AnalysisFor(pass.Pkg); a != nil {
		return a
	}
	return New(pass)
}

// TaintSummaryByID resolves a cross-package taint summary.
func (p *Program) TaintSummaryByID(id string) *Summary { return p.taints[id] }

// ---- canonical IDs -----------------------------------------------------

// FuncID is the canonical program-wide identity of a function:
// "pkgpath.Name" for package functions, "pkgpath.(Recv).Name" for methods.
// Export-data twins of a source-checked function produce the same ID.
func FuncID(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	fn = fn.Origin()
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return path + ".(" + recvName(sig.Recv().Type()) + ")." + fn.Name()
	}
	return path + "." + fn.Name()
}

func recvName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		return "*" + recvName(ptr.Elem())
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Alias:
		return recvName(types.Unalias(t))
	}
	return t.String()
}

// typeID names a type for field/lock identity: package path + type name.
func typeID(t types.Type) string {
	if t == nil {
		return "?"
	}
	if ptr, ok := t.(*types.Pointer); ok {
		return typeID(ptr.Elem())
	}
	t = types.Unalias(t)
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return obj.Name()
	}
	return t.String()
}

// fieldID keys a struct field program-wide. The owning struct type comes
// from the selection's receiver, so promoted fields key on the embedded
// type that declares them only when accessed through it explicitly.
func fieldID(recv types.Type, field *types.Var) string {
	return typeID(recv) + "." + field.Name()
}

// objectKey keys a non-field variable: package-level vars by path.name,
// locals by their declaration position (stable within one load, never
// shared across packages).
func objectKey(fset *token.FileSet, obj types.Object) string {
	if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	pos := fset.Position(obj.Pos())
	return "local:" + pos.Filename + ":" + pos.String() + ":" + obj.Name()
}
