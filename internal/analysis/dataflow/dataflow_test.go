package dataflow_test

import (
	"go/ast"
	"path/filepath"
	"testing"

	"rups/internal/analysis"
	"rups/internal/analysis/dataflow"
	"rups/internal/analysis/loader"
)

// load builds a dataflow analysis over the wiretaint golden package,
// which exercises every source, sink, and summary shape.
func load(t *testing.T) (*analysis.Pass, *dataflow.Analysis) {
	t.Helper()
	dir := filepath.Join("..", "testdata", "src", "wiretaint")
	pkgs, err := loader.Load(dir, ".")
	if err != nil {
		t.Fatalf("load golden package: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if len(p.TypeErrors) > 0 {
		t.Fatalf("type errors in golden package: %v", p.TypeErrors)
	}
	pass := &analysis.Pass{
		Analyzer:  &analysis.Analyzer{Name: "dataflow-test"},
		Fset:      p.Fset,
		Files:     p.Syntax,
		Pkg:       p.Types,
		TypesInfo: p.TypesInfo,
	}
	return pass, dataflow.New(pass)
}

// flowOf finds the FuncFlow for a named function or method.
func flowOf(t *testing.T, df *dataflow.Analysis, name string) *dataflow.FuncFlow {
	t.Helper()
	for _, flow := range df.Flows {
		if flow.Decl.Name.Name == name {
			return flow
		}
	}
	t.Fatalf("no flow for %s", name)
	return nil
}

// sinkFact evaluates the first sink of the named function.
func sinkFact(t *testing.T, df *dataflow.Analysis, flow *dataflow.FuncFlow, kind dataflow.SinkKind) dataflow.Fact {
	t.Helper()
	for _, sink := range flow.Sinks {
		if sink.Kind == kind {
			return df.Fact(sink.Val, flow, sink.Val.Pos())
		}
	}
	t.Fatalf("%s has no %s sink", flow.Decl.Name.Name, kind)
	return dataflow.Clean
}

func TestTaintReachesUnguardedMake(t *testing.T) {
	_, df := load(t)
	flow := flowOf(t, df, "ReadFromLegacy")
	if got := sinkFact(t, df, flow, dataflow.SinkMake); got != dataflow.Tainted {
		t.Errorf("ReadFromLegacy make sink: got %s, want tainted", got)
	}
}

func TestBoundCheckPromotesToBounded(t *testing.T) {
	_, df := load(t)
	flow := flowOf(t, df, "ReadFromFixed")
	if got := sinkFact(t, df, flow, dataflow.SinkMake); got != dataflow.Bounded {
		t.Errorf("ReadFromFixed make sink: got %s, want bounded", got)
	}
}

func TestMinClampIsBounded(t *testing.T) {
	_, df := load(t)
	flow := flowOf(t, df, "Clamped")
	if got := sinkFact(t, df, flow, dataflow.SinkMake); got != dataflow.Bounded {
		t.Errorf("Clamped make sink: got %s, want bounded", got)
	}
}

func TestByteWideIsCapped(t *testing.T) {
	_, df := load(t)
	flow := flowOf(t, df, "ByteWide")
	if got := sinkFact(t, df, flow, dataflow.SinkMake); got == dataflow.Tainted {
		t.Errorf("ByteWide make sink: got tainted, want at most bounded")
	}
}

func TestSummaryReturnsTainted(t *testing.T) {
	_, df := load(t)
	for _, name := range []string{"u32", "wireCount"} {
		flow := flowOf(t, df, name)
		s := df.SummaryOf(flow.Fn)
		if s == nil {
			t.Fatalf("no summary for %s", name)
		}
		if !s.ReturnsTainted {
			t.Errorf("summary of %s: ReturnsTainted = false, want true", name)
		}
	}
}

func TestSummaryUnguardedParams(t *testing.T) {
	_, df := load(t)
	unguarded := flowOf(t, df, "allocRecords")
	s := df.SummaryOf(unguarded.Fn)
	if s == nil || len(s.UnguardedParams) != 1 || !s.UnguardedParams[0] {
		t.Errorf("allocRecords: UnguardedParams = %+v, want [true]", s)
	}
	guarded := flowOf(t, df, "allocChecked")
	s = df.SummaryOf(guarded.Fn)
	if s == nil {
		t.Fatal("no summary for allocChecked")
	}
	for i, bad := range s.UnguardedParams {
		if bad {
			t.Errorf("allocChecked: parameter %d reported unguarded", i)
		}
	}
}

// TestEventBlocksAreInnermost asserts every event's Block is the
// innermost block statement containing its position. Regression test for
// the walk's node stack: ast.Inspect reports nil after every visited
// node, not just blocks, so a stack popped on every nil but pushed only
// for blocks drains immediately and everything falls back to the
// function body.
func TestEventBlocksAreInnermost(t *testing.T) {
	_, df := load(t)
	for _, flow := range df.Flows {
		var blocks []*ast.BlockStmt
		ast.Inspect(flow.Decl.Body, func(n ast.Node) bool {
			if b, ok := n.(*ast.BlockStmt); ok {
				blocks = append(blocks, b)
			}
			return true
		})
		for _, ev := range flow.Events {
			if ev.Block == nil {
				continue // parameters and synthesized naked-return reads
			}
			if ev.Pos < ev.Block.Pos() || ev.Pos >= ev.Block.End() {
				t.Errorf("%s: event %q at %d has Block not containing it",
					flow.Decl.Name.Name, ev.Obj.Name(), ev.Pos)
				continue
			}
			for _, b := range blocks {
				if ev.Pos >= b.Pos() && ev.Pos < b.End() && b.Pos() > ev.Block.Pos() {
					t.Errorf("%s: event %q at %d: Block is not innermost (a nested block also contains it)",
						flow.Decl.Name.Name, ev.Obj.Name(), ev.Pos)
					break
				}
			}
		}
	}
}

func TestDefUseChainShape(t *testing.T) {
	_, df := load(t)
	flow := flowOf(t, df, "Clamped")
	objs := flow.Objects()
	if len(objs) == 0 {
		t.Fatal("Clamped has no tracked objects")
	}
	// n has two Defs (:= and the min clamp) and at least one Use.
	for _, obj := range objs {
		if obj.Name() != "n" {
			continue
		}
		defs, uses := 0, 0
		for _, ev := range flow.EventsOf(obj) {
			switch ev.Kind {
			case dataflow.Def:
				defs++
			case dataflow.Use:
				uses++
			}
		}
		if defs != 2 || uses < 2 {
			t.Errorf("n: %d defs / %d uses, want 2 defs and >=2 uses", defs, uses)
		}
		return
	}
	t.Fatal("no object named n in Clamped")
}
