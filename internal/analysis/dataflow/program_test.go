package dataflow_test

import (
	"path/filepath"
	"strings"
	"testing"

	"rups/internal/analysis/dataflow"
	"rups/internal/analysis/loader"
)

const (
	innerPath = "rups/internal/analysis/testdata/src/proginner"
	outerPath = "rups/internal/analysis/testdata/src/progouter"
)

func loadProgram(t *testing.T) *dataflow.Program {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(dir, "./proginner", "./progouter")
	if err != nil {
		t.Fatalf("loader.Load: %v", err)
	}
	return dataflow.NewProgram(pkgs)
}

// TestCrossPackageFixpoint checks that effects computed inside a mutually
// recursive pair converge and propagate to a caller in another package.
func TestCrossPackageFixpoint(t *testing.T) {
	prog := loadProgram(t)

	ping := prog.FuncByID(innerPath + ".Ping")
	pong := prog.FuncByID(innerPath + ".Pong")
	enter := prog.FuncByID(outerPath + ".Enter")
	if ping == nil || pong == nil || enter == nil {
		t.Fatalf("missing functions: ping=%v pong=%v enter=%v", ping, pong, enter)
	}

	// Pong has the direct effects; Ping only via the cycle; Enter only via
	// the cross-package call into the cycle.
	for _, pf := range []*dataflow.ProgFunc{pong, ping, enter} {
		if !pf.Effects.ReachesTime {
			t.Errorf("%s: ReachesTime = false, want true", pf.ID)
		}
		if _, ok := pf.Effects.Acquires[innerPath+".mu"]; !ok {
			t.Errorf("%s: Acquires missing %s.mu (got %v)", pf.ID, innerPath, pf.Effects.Acquires)
		}
	}
	if len(pong.Effects.TimeSites) == 0 {
		t.Error("Pong: no direct TimeSites recorded")
	}
	if len(ping.Effects.TimeSites) != 0 {
		t.Errorf("Ping: unexpected direct TimeSites %v (effect should be transitive only)", ping.Effects.TimeSites)
	}

	// The explanation chain from Enter must cross the package boundary and
	// bottom out at time.Now without looping forever on the Ping/Pong cycle.
	chain := prog.TimeChain(enter)
	if len(chain) == 0 || chain[len(chain)-1] != "time.Now" {
		t.Fatalf("TimeChain(Enter) = %v, want non-empty chain ending in time.Now", chain)
	}
	joined := strings.Join(chain, " -> ")
	if !strings.Contains(joined, "proginner.") {
		t.Errorf("TimeChain(Enter) = %q, want a hop through proginner", joined)
	}
}

// TestCrossPackageTaintSummaries checks that wire-taint summaries are
// visible program-wide by stable function ID.
func TestCrossPackageTaintSummaries(t *testing.T) {
	prog := loadProgram(t)

	s := prog.TaintSummaryByID(innerPath + ".TaintedCount")
	if s == nil {
		t.Fatalf("no taint summary for %s.TaintedCount", innerPath)
	}
	if !s.ReturnsTainted {
		t.Errorf("TaintedCount: ReturnsTainted = false, want true")
	}

	// Grow consumes the foreign tainted return into make: its own summary
	// must not claim taint (it allocates, it does not return wire data),
	// but the per-package analysis for progouter must exist.
	grow := prog.FuncByID(outerPath + ".Grow")
	if grow == nil {
		t.Fatal("missing progouter.Grow")
	}
	if a := prog.AnalysisFor(grow.Pkg); a == nil {
		t.Error("AnalysisFor(progouter) = nil, want shared analysis")
	}
}
