package dataflow

import (
	"math"
	"testing"
)

func TestIntervalConstructorsAndPredicates(t *testing.T) {
	if !Bottom().IsEmpty() || Bottom().Contains(0) {
		t.Error("Bottom must be empty and contain nothing")
	}
	if !Top().IsTop() || !Top().Contains(math.MinInt64) || !Top().Contains(math.MaxInt64) {
		t.Error("Top must contain everything")
	}
	if v, ok := Const(7).IsConst(); !ok || v != 7 {
		t.Errorf("Const(7).IsConst() = %d, %v", v, ok)
	}
	if !Range(5, 3).IsEmpty() {
		t.Error("inverted Range must be Bottom")
	}
	if got := Range(0, 15).String(); got != "[0, 15]" {
		t.Errorf("String: got %q", got)
	}
	if got := AtLeast(0).String(); got != "[0, +inf)" {
		t.Errorf("String: got %q", got)
	}
	if got := AtMost(42).String(); got != "(-inf, 42]" {
		t.Errorf("String: got %q", got)
	}
}

func TestIntervalJoinMeet(t *testing.T) {
	a, b := Range(0, 5), Range(3, 10)
	if got := a.Join(b); got != Range(0, 10) {
		t.Errorf("Join: got %s", got)
	}
	if got := a.Meet(b); got != Range(3, 5) {
		t.Errorf("Meet: got %s", got)
	}
	if got := Range(0, 2).Meet(Range(5, 9)); !got.IsEmpty() {
		t.Errorf("disjoint Meet: got %s, want empty", got)
	}
	if got := a.Join(Bottom()); got != a {
		t.Errorf("Join with Bottom: got %s", got)
	}
	if got := a.Meet(Top()); got != a {
		t.Errorf("Meet with Top: got %s", got)
	}
	if got := AtLeast(3).Meet(AtMost(8)); got != Range(3, 8) {
		t.Errorf("half-open Meet: got %s", got)
	}
	if !Range(2, 3).ContainedIn(Range(0, 5)) || Range(0, 6).ContainedIn(Range(0, 5)) {
		t.Error("ContainedIn misjudged")
	}
}

func TestIntervalWiden(t *testing.T) {
	prev, cur := Range(0, 5), Range(0, 7)
	w := cur.Widen(prev)
	if w.LoUnb || w.Lo != 0 || !w.HiUnb {
		t.Errorf("Widen must drop the moving upper bound: got %s", w)
	}
	// Stable bounds survive widening.
	if got := Range(0, 5).Widen(Range(0, 5)); got != Range(0, 5) {
		t.Errorf("stable Widen: got %s", got)
	}
	// Widening is idempotent once a bound is gone.
	if got := w.Widen(w); got != w {
		t.Errorf("idempotent Widen: got %s", got)
	}
}

func TestIntervalArithmetic(t *testing.T) {
	if got := Range(1, 2).Add(Range(10, 20)); got != Range(11, 22) {
		t.Errorf("Add: got %s", got)
	}
	if got := Range(1, 2).Sub(Range(10, 20)); got != Range(-19, -8) {
		t.Errorf("Sub: got %s", got)
	}
	if got := Range(-2, 3).Mul(Range(4, 5)); got != Range(-10, 15) {
		t.Errorf("Mul: got %s", got)
	}
	if got := Range(10, 20).Div(Range(2, 5)); got != Range(2, 10) {
		t.Errorf("Div: got %s", got)
	}
	if got := Range(0, 100).Rem(Range(8, 8)); got != Range(0, 7) {
		t.Errorf("Rem: got %s", got)
	}
	if got := Range(3, 4).Neg(); got != Range(-4, -3) {
		t.Errorf("Neg: got %s", got)
	}
	// Division by an interval containing zero or negatives knows nothing
	// (10 / -1 = -10), unless the divisor is provably ≥ 1.
	if got := Range(10, 20).Div(Range(-1, 1)); !got.IsTop() {
		t.Errorf("Div through zero: got %s, want Top", got)
	}
	if got := Range(10, 20).Div(AtLeast(1)); got != Range(0, 20) {
		t.Errorf("Div by unbounded positive divisor: got %s", got)
	}
}

func TestIntervalOverflowSaturates(t *testing.T) {
	big := Const(math.MaxInt64)
	if got := big.Add(Const(1)); !got.HiUnb {
		t.Errorf("overflowing Add must drop the bound: got %s", got)
	}
	if got := big.Mul(Const(2)); !got.IsTop() {
		t.Errorf("overflowing Mul: got %s, want Top", got)
	}
	if got := Const(math.MinInt64).Neg(); !got.HiUnb {
		t.Errorf("Neg(MinInt64) must saturate: got %s", got)
	}
}

func TestIntervalMinMax(t *testing.T) {
	if got := intervalMin(Range(0, 10), Range(5, 7)); got != Range(0, 7) {
		t.Errorf("min: got %s", got)
	}
	if got := intervalMin(AtLeast(0), Range(5, 7)); got != Range(0, 7) {
		t.Errorf("min with unbounded hi: got %s", got)
	}
	if got := intervalMax(Range(0, 10), Range(5, 7)); got != Range(5, 10) {
		t.Errorf("max: got %s", got)
	}
}
