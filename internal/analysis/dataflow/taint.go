package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Fact evaluates the abstract value of an expression at a source
// position. The position matters because a bound check between a
// definition and a use promotes Tainted to Bounded.
func (a *Analysis) Fact(e ast.Expr, flow *FuncFlow, at token.Pos) Fact {
	return a.fact(e, flow, at, nil, make(map[token.Pos]bool))
}

// fact is Fact with an assumption environment (used when computing call
// summaries with a parameter seeded Tainted) and a cycle guard.
func (a *Analysis) fact(e ast.Expr, flow *FuncFlow, at token.Pos, assume map[types.Object]Fact, seen map[token.Pos]bool) Fact {
	f := a.rawFact(e, flow, at, assume, seen)
	// A value one byte wide cannot express a dangerous count: cap it.
	if f == Tainted && byteSized(a.pass.TypesInfo.TypeOf(e)) {
		return Bounded
	}
	return f
}

func (a *Analysis) rawFact(e ast.Expr, flow *FuncFlow, at token.Pos, assume map[types.Object]Fact, seen map[token.Pos]bool) Fact {
	info := a.pass.TypesInfo
	switch e := e.(type) {
	case *ast.ParenExpr:
		return a.fact(e.X, flow, at, assume, seen)
	case *ast.Ident:
		return a.identFact(e, flow, at, assume, seen)
	case *ast.BasicLit:
		return Clean
	case *ast.SelectorExpr:
		// A []byte field is a wire buffer: the decoder structs here hold
		// exactly the raw payload (trace.decoder.data and friends).
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal && isByteSlice(sel.Type()) {
			return Tainted
		}
		return Clean
	case *ast.IndexExpr:
		return a.fact(e.X, flow, at, assume, seen) // element of a tainted container
	case *ast.SliceExpr:
		return a.fact(e.X, flow, at, assume, seen)
	case *ast.StarExpr:
		return a.fact(e.X, flow, at, assume, seen)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return Clean
		}
		return a.fact(e.X, flow, at, assume, seen)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return Clean // booleans carry no count
		}
		return join(a.fact(e.X, flow, at, assume, seen), a.fact(e.Y, flow, at, assume, seen))
	case *ast.CallExpr:
		return a.callFact(e, flow, at, assume, seen)
	case *ast.CompositeLit, *ast.FuncLit, *ast.TypeAssertExpr:
		return Clean
	}
	return Clean
}

// identFact resolves a variable's fact from its last definition before
// the position, then applies any intervening bound check.
func (a *Analysis) identFact(id *ast.Ident, flow *FuncFlow, at token.Pos, assume map[types.Object]Fact, seen map[token.Pos]bool) Fact {
	obj, ok := a.pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || obj.IsField() {
		return Clean
	}
	return a.objFact(obj, flow, at, assume, seen)
}

// objFact is identFact keyed directly on the object.
func (a *Analysis) objFact(obj *types.Var, flow *FuncFlow, at token.Pos, assume map[types.Object]Fact, seen map[token.Pos]bool) Fact {
	if f, ok := assume[obj]; ok {
		if f == Tainted && flow.guardedBetween(obj, flow.start, at) {
			return Bounded
		}
		return f
	}
	// Wire buffers arrive as []byte parameters; everything read out of
	// one is attacker-controlled.
	if isByteSlice(obj.Type()) && a.isParam(flow, obj) {
		return Tainted
	}
	events, inFlow := flow.byObj[obj]
	if !inFlow {
		return Clean // package-level or foreign variable
	}
	var last *Event
	for _, i := range events {
		ev := &flow.Events[i]
		if ev.Kind != Def {
			continue
		}
		if ev.Pos < at {
			last = ev
		}
	}
	if last == nil {
		// Use positioned before any def (loop-carried): join every def.
		f := Clean
		for _, i := range events {
			ev := &flow.Events[i]
			if ev.Kind == Def {
				f = join(f, a.defFact(ev, flow, assume, seen))
			}
		}
		return f
	}
	f := a.defFact(last, flow, assume, seen)
	if f == Tainted && flow.guardedBetween(obj, last.Pos, at) {
		return Bounded
	}
	return f
}

// defFact evaluates the value a definition binds.
func (a *Analysis) defFact(ev *Event, flow *FuncFlow, assume map[types.Object]Fact, seen map[token.Pos]bool) Fact {
	if ev.Rhs == nil {
		return Clean // parameter, var decl without value, or ++/--
	}
	if seen[ev.Pos] {
		return Clean // loop-carried cycle: stay optimistic
	}
	seen[ev.Pos] = true
	defer delete(seen, ev.Pos)
	f := a.fact(ev.Rhs, flow, ev.Pos, assume, seen)
	if ev.Compound {
		// x += rhs keeps x's previous influence too; the recursive object
		// lookup bottoms out at the cycle guard.
		if v, ok := ev.Obj.(*types.Var); ok {
			f = join(f, a.objFact(v, flow, ev.Pos, assume, seen))
		}
	}
	return f
}

// callFact evaluates calls: conversions, builtins, the wire-decoding
// sources, and same-package calls through their summaries.
func (a *Analysis) callFact(call *ast.CallExpr, flow *FuncFlow, at token.Pos, assume map[types.Object]Fact, seen map[token.Pos]bool) Fact {
	info := a.pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return a.fact(call.Args[0], flow, at, assume, seen) // conversion
		}
		return Clean
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return a.builtinFact(id.Name, call, flow, at, assume, seen)
		}
	}
	callee := calleeFunc(info, call)
	if callee == nil {
		return Clean
	}
	if pkg := callee.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "encoding/binary":
			switch callee.Name() {
			case "Uint16", "Uint32", "Uint64", "Varint", "Uvarint":
				return Tainted
			}
		case "io":
			if callee.Name() == "ReadAll" {
				return Tainted
			}
		case "os":
			if callee.Name() == "ReadFile" {
				return Tainted
			}
		}
	}
	s := a.summaries[callee]
	if s == nil && a.foreign != nil {
		s = a.foreign(callee)
	}
	if s != nil {
		f := Clean
		if s.ReturnsTainted {
			f = Tainted
		}
		for i, arg := range call.Args {
			if i < len(s.PassesThrough) && s.PassesThrough[i] {
				f = join(f, a.fact(arg, flow, at, assume, seen))
			}
		}
		return f
	}
	return Clean
}

func (a *Analysis) builtinFact(name string, call *ast.CallExpr, flow *FuncFlow, at token.Pos, assume map[types.Object]Fact, seen map[token.Pos]bool) Fact {
	switch name {
	case "len", "cap":
		// The length of a buffer measures bytes actually present — the
		// trusted quantity wire counts must be checked against.
		return Clean
	case "make", "new", "copy":
		return Clean
	case "min":
		// min(wireCount, trustedLimit) is a clamp: the result cannot
		// exceed the cleanest operand.
		worst, best := Clean, Tainted
		for _, arg := range call.Args {
			f := a.fact(arg, flow, at, assume, seen)
			worst = join(worst, f)
			if f < best {
				best = f
			}
		}
		if worst == Tainted && best < Tainted {
			return Bounded
		}
		return worst
	case "append":
		f := Clean
		for _, arg := range call.Args {
			f = join(f, a.fact(arg, flow, at, assume, seen))
		}
		return f
	}
	// max and anything else: join of the operands.
	f := Clean
	for _, arg := range call.Args {
		f = join(f, a.fact(arg, flow, at, assume, seen))
	}
	return f
}

// calleeFunc resolves the *types.Func a call invokes, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func (a *Analysis) isParam(flow *FuncFlow, obj types.Object) bool {
	for _, p := range flow.params {
		if p == obj {
			return true
		}
	}
	return false
}

// ---- summaries ---------------------------------------------------------

// computeSummaries iterates the per-function summaries to a fixpoint:
// facts only climb the lattice, so termination is immediate once no
// summary changes in a round.
func (a *Analysis) computeSummaries() {
	for _, flow := range a.Flows {
		if flow.Fn == nil {
			continue
		}
		n := len(flow.params)
		s := &Summary{PassesThrough: make([]bool, n), UnguardedParams: make([]bool, n), ParamNames: make([]string, n)}
		for i, p := range flow.params {
			s.ParamNames[i] = p.Name()
		}
		a.summaries[flow.Fn] = s
	}
	for changed := true; changed; {
		changed = false
		for _, flow := range a.Flows {
			if flow.Fn == nil {
				continue
			}
			s := a.summaries[flow.Fn]
			if a.updateSummary(flow, s) {
				changed = true
			}
		}
	}
}

func (a *Analysis) updateSummary(flow *FuncFlow, s *Summary) bool {
	changed := false
	if !s.ReturnsTainted && a.returnFact(flow, nil) == Tainted {
		s.ReturnsTainted = true
		changed = true
	}
	for i, p := range flow.params {
		if s.ReturnsTainted {
			break // call results are already tainted regardless of args
		}
		if s.PassesThrough[i] {
			continue
		}
		assume := map[types.Object]Fact{p: Tainted}
		if a.returnFact(flow, assume) == Tainted {
			s.PassesThrough[i] = true
			changed = true
		}
	}
	for i, p := range flow.params {
		if s.UnguardedParams[i] {
			continue
		}
		assume := map[types.Object]Fact{p: Tainted}
		if a.paramReachesSink(flow, assume) {
			s.UnguardedParams[i] = true
			changed = true
		}
	}
	return changed
}

// returnFact joins the facts of every value the function can return.
func (a *Analysis) returnFact(flow *FuncFlow, assume map[types.Object]Fact) Fact {
	f := Clean
	walkSkippingFuncLits(flow.Decl.Body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		if len(ret.Results) == 0 {
			for obj := range flow.results {
				if v, ok := obj.(*types.Var); ok {
					f = join(f, a.objFact(v, flow, ret.Pos(), assume, make(map[token.Pos]bool)))
				}
			}
			return
		}
		for _, res := range ret.Results {
			f = join(f, a.fact(res, flow, ret.Pos(), assume, make(map[token.Pos]bool)))
		}
	})
	return f
}

// paramReachesSink reports whether, with the assumption applied, some
// sink in the function receives a Tainted value that it would not
// receive without the assumption (i.e. the taint is the parameter's).
func (a *Analysis) paramReachesSink(flow *FuncFlow, assume map[types.Object]Fact) bool {
	for _, sink := range flow.Sinks {
		at := sink.Val.Pos()
		if a.fact(sink.Val, flow, at, assume, make(map[token.Pos]bool)) != Tainted {
			continue
		}
		if a.fact(sink.Val, flow, at, nil, make(map[token.Pos]bool)) == Tainted {
			continue // tainted anyway: the finding belongs inside this function
		}
		return true
	}
	return false
}

// ---- type helpers ------------------------------------------------------

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

func byteSized(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Uint8, types.Int8, types.Bool:
		return true
	}
	return false
}
