package dataflow_test

import (
	"go/ast"
	"path/filepath"
	"testing"

	"rups/internal/analysis/dataflow"
	"rups/internal/analysis/loader"
)

func flowRangeStmts(flow *dataflow.FuncFlow) []*ast.RangeStmt {
	var out []*ast.RangeStmt
	ast.Inspect(flow.Decl.Body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			out = append(out, rs)
		}
		return true
	})
	return out
}

// loadIval builds the interprocedural program over the ival golden
// package, so return-interval queries exercise the whole stack: SSA-lite
// reaching defs, constraints, lengths, and the interval fixpoint.
func loadIval(t *testing.T) *dataflow.Program {
	t.Helper()
	dir := filepath.Join("..", "testdata", "src", "ival")
	pkgs, err := loader.Load(dir, ".")
	if err != nil {
		t.Fatalf("load ival golden package: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if len(pkgs[0].TypeErrors) > 0 {
		t.Fatalf("type errors in golden package: %v", pkgs[0].TypeErrors)
	}
	return dataflow.NewProgram(pkgs)
}

const ivalPath = "rups/internal/analysis/testdata/src/ival"

func retIval(t *testing.T, p *dataflow.Program, name string) dataflow.Interval {
	t.Helper()
	iv, ok := p.RetIvalByID(ivalPath + "." + name)
	if !ok {
		t.Fatalf("no return interval recorded for ival.%s", name)
	}
	return iv
}

func TestInterpReturnIntervals(t *testing.T) {
	p := loadIval(t)
	cases := []struct {
		fn   string
		want dataflow.Interval
	}{
		{"constChain", dataflow.Const(14)},
		{"branchJoin", dataflow.Range(1, 5)},
		{"loopInduction", dataflow.Range(0, 9)},
		{"loopStepTwo", dataflow.Range(0, 20)},
		{"countdown", dataflow.Range(0, 8)},
		{"rangeConfigs", dataflow.Range(0, 4)},
		{"rangeLiteral", dataflow.Range(0, 3)},
		{"rangeInt", dataflow.Range(0, 5)},
		{"clamp", dataflow.Range(0, 100)},
		{"elseBranch", dataflow.Range(9, 50)},
		{"modIdiom", dataflow.Range(-15, 15)},
		{"callsStep", dataflow.Range(12, 20)},
		{"lenOfMake", dataflow.Range(0, 31)},
		{"lenAppend", dataflow.Const(5)},
		{"sliceBounds", dataflow.Range(0, 4)},
	}
	for _, tc := range cases {
		if got := retIval(t, p, tc.fn); got != tc.want {
			t.Errorf("%s: got %s, want %s", tc.fn, got, tc.want)
		}
	}
}

func TestInterpUnboundedStaysUnbounded(t *testing.T) {
	p := loadIval(t)
	if got := retIval(t, p, "rangeGrown"); got.HiBounded() {
		t.Errorf("rangeGrown: mutated package slice must not get a finite length, got %s", got)
	}
	if got := retIval(t, p, "rangeGrown"); !got.LoBounded() || got.Lo != 0 {
		t.Errorf("rangeGrown: range key is still nonnegative, got %s", got)
	}
	if got := retIval(t, p, "minClamp"); got.LoBounded() || !got.HiBounded() || got.Hi != 64 {
		t.Errorf("minClamp: want (-inf, 64], got %s", got)
	}
	// The widened recursion must settle on a sound over-approximation
	// that still knows the result is nonnegative on the base path.
	if got := retIval(t, p, "recurse"); got.IsEmpty() {
		t.Errorf("recurse: got empty interval")
	}
}

// TestInterpSoundnessGuards pins the cases where the engine must refuse
// to prove: map make hints, exported package-level slices, spread-form
// call sites, and value-referenced functions.
func TestInterpSoundnessGuards(t *testing.T) {
	p := loadIval(t)
	if got := retIval(t, p, "mapHint"); got.HiBounded() {
		t.Errorf("mapHint: a map's make hint must not become a proven length, got %s", got)
	}
	if got := retIval(t, p, "rangeExported"); got.HiBounded() {
		t.Errorf("rangeExported: an exported package slice must not get a proven length, got %s", got)
	}
	if got := retIval(t, p, "spread2"); !got.IsTop() {
		t.Errorf("spread2: the f(g()) spread call site must widen parameters to Top, got %s", got)
	}
	if got := retIval(t, p, "escaped"); !got.IsTop() {
		t.Errorf("escaped: a value-referenced function must not narrow its parameter, got %s", got)
	}
}

func flowForStmts(flow *dataflow.FuncFlow) []*ast.ForStmt {
	var out []*ast.ForStmt
	ast.Inspect(flow.Decl.Body, func(n ast.Node) bool {
		if fs, ok := n.(*ast.ForStmt); ok {
			out = append(out, fs)
		}
		return true
	})
	return out
}

// TestInterpLoopTripsUnprovable covers loops whose trip count must stay
// unproven: ranging over a made map (the hint is not a length) and a
// counting loop whose ceiling adjustment would overflow int64.
func TestInterpLoopTripsUnprovable(t *testing.T) {
	p := loadIval(t)
	for _, name := range []string{"countMap", "hugeStep"} {
		pf := p.FuncByID(ivalPath + "." + name)
		if pf == nil {
			t.Fatalf("no ProgFunc for %s", name)
		}
		a := p.AnalysisFor(pf.Pkg)
		flow := a.FlowOf(pf.Decl)
		it := a.Interp()
		stmts := make([]ast.Stmt, 0, 1)
		for _, s := range flowRangeStmts(flow) {
			stmts = append(stmts, s)
		}
		for _, s := range flowForStmts(flow) {
			stmts = append(stmts, s)
		}
		if len(stmts) == 0 {
			t.Fatalf("%s: no loops found", name)
		}
		for _, s := range stmts {
			if trips, ok := it.LoopTrips(s, flow); ok {
				t.Errorf("%s: trip count must not be provable, got %s", name, trips)
			}
		}
	}
}

func TestInterpLoopTrips(t *testing.T) {
	p := loadIval(t)
	pf := p.FuncByID(ivalPath + ".rangeConfigs")
	if pf == nil {
		t.Fatal("no ProgFunc for rangeConfigs")
	}
	a := p.AnalysisFor(pf.Pkg)
	flow := a.FlowOf(pf.Decl)
	it := a.Interp()
	ssa := it.SSAOf(pf.Decl)
	if len(ssa.Loops()) != 1 {
		t.Fatalf("rangeConfigs: got %d loops", len(ssa.Loops()))
	}
	// Find the range statement and bound its trips.
	found := false
	for _, s := range flowRangeStmts(flow) {
		trips, ok := it.LoopTrips(s, flow)
		if !ok {
			t.Fatalf("rangeConfigs: trip count not proven")
		}
		if trips != dataflow.Const(5) {
			t.Errorf("rangeConfigs trips: got %s, want [5, 5]", trips)
		}
		found = true
	}
	if !found {
		t.Fatal("no range statement found")
	}

	pf = p.FuncByID(ivalPath + ".rangeGrown")
	a = p.AnalysisFor(pf.Pkg)
	flow = a.FlowOf(pf.Decl)
	for _, s := range flowRangeStmts(flow) {
		if _, ok := a.Interp().LoopTrips(s, flow); ok {
			t.Error("rangeGrown: trip count must not be provable over a mutated slice")
		}
	}
}
