// Abstract interpretation over the interval domain: every integer
// expression gets an Interval, every sliceable expression gets a length
// Interval, and every for/range statement gets a trip-count Interval when
// one is provable. Precision comes from three refinement sources layered
// over the SSA-lite reaching definitions:
//
//   - loop-induction constraints (`for i := a; i < b; i += c` pins i to
//     [a.lo, b.hi-1] across the body — the classic widen-then-narrow:
//     the loop-carried definition widens the variable to Top, the loop
//     condition narrows it back);
//   - range constraints (the key of `range xs` sits in [0, len(xs)-1],
//     the key of `range n` in [0, n-1]);
//   - branch-condition constraints (inside `if x < y`'s body the
//     comparison holds; after a diverting guard, or inside an else
//     branch, its negation holds).
//
// Constraints are scoped to source extents and invalidated by an
// intervening redefinition of the constrained object, mirroring the
// position-approximated dominance the taint layer already uses.
// Interprocedurally, the Program joins argument intervals over every
// loaded call site into per-parameter assumptions (unexported functions
// only — exported ones can be called from outside the load) and return
// intervals per function, iterated to a widened fixpoint.
package dataflow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
)

// Interp evaluates interval facts over one package's functions.
type Interp struct {
	a    *Analysis
	info *types.Info

	ssa  map[*ast.FuncDecl]*SSA
	cons map[*ast.FuncDecl][]*constraint

	// pkgLens holds proven lengths of package-level slice/array variables
	// that are initialized with a countable literal and never reassigned
	// or address-taken anywhere in the package.
	pkgLens map[types.Object]Interval

	// paramIvals narrows parameter objects to the join of every argument
	// interval observed at loaded call sites; installed by the Program's
	// interval fixpoint.
	paramIvals map[types.Object]Interval

	// retIval resolves a callee's return interval (any package, by
	// canonical ID); installed by the Program's interval fixpoint.
	retIval func(*types.Func) (Interval, bool)
}

// ienv is the per-query evaluation state: cycle guards for definitions
// and constraints, plus a recursion fuse.
type ienv struct {
	seen  map[*Event]bool
	cseen map[*constraint]bool
	depth int
}

func newIenv() *ienv {
	return &ienv{seen: make(map[*Event]bool), cseen: make(map[*constraint]bool)}
}

// constraint is one scoped refinement: within Span, obj relates to bound
// by op (or to the closed-form interval `fixed` computes). The refinement
// is dropped when obj is redefined between killFrom and the query
// position; killFrom == NoPos disables that check (loop-induction
// constraints verify at collection time that the body never assigns the
// variable).
type constraint struct {
	obj      types.Object
	span     Span
	killFrom token.Pos

	// isLen marks a refinement of len(obj) rather than of obj's value —
	// the `if len(raw) < 8 { return }` wire-decoding idiom.
	isLen bool

	op    token.Token // LSS/LEQ/GTR/GEQ/EQL; ILLEGAL when fixed is set
	bound ast.Expr
	at    token.Pos // where the guard is evaluated (bound's values are read here)

	fixed func(it *Interp, flow *FuncFlow, env *ienv) Interval
}

func newInterp(a *Analysis) *Interp {
	it := &Interp{
		a:          a,
		info:       a.pass.TypesInfo,
		ssa:        make(map[*ast.FuncDecl]*SSA),
		cons:       make(map[*ast.FuncDecl][]*constraint),
		paramIvals: make(map[types.Object]Interval),
	}
	it.pkgLens = buildPkgLens(a.pass.Files, it.info)
	for _, flow := range a.Flows {
		it.ssa[flow.Decl] = BuildSSA(flow)
		it.cons[flow.Decl] = it.collectConstraints(flow)
	}
	return it
}

// Interp returns the package's interval engine.
func (a *Analysis) Interp() *Interp { return a.interp }

// FlowOf returns the def-use chain built for a declaration, or nil.
func (a *Analysis) FlowOf(decl *ast.FuncDecl) *FuncFlow { return a.byDecl[decl] }

// SSAOf returns the reaching-definition view for a declaration, or nil.
func (it *Interp) SSAOf(decl *ast.FuncDecl) *SSA { return it.ssa[decl] }

// ---- public queries ----------------------------------------------------

// Eval returns the interval of an integer expression observed at a source
// position within flow. Non-integer expressions evaluate to Top.
func (it *Interp) Eval(e ast.Expr, flow *FuncFlow, at token.Pos) Interval {
	return it.eval(e, flow, at, newIenv())
}

// LenOf returns the interval of len(e) for a slice/array/string/map
// expression observed at a position. Lengths are never negative, so the
// result is always ⊆ [0, +inf).
func (it *Interp) LenOf(e ast.Expr, flow *FuncFlow, at token.Pos) Interval {
	return it.lenOf(e, flow, at, newIenv())
}

// LoopTrips bounds the number of iterations a for/range statement can
// execute. ok reports a finite upper bound was proven; breaks only lower
// the count, so the bound is an over-approximation.
func (it *Interp) LoopTrips(stmt ast.Stmt, flow *FuncFlow) (Interval, bool) {
	env := newIenv()
	switch n := stmt.(type) {
	case *ast.RangeStmt:
		t := it.info.TypeOf(n.X)
		if t == nil {
			return Top(), false
		}
		var iv Interval
		switch u := t.Underlying().(type) {
		case *types.Basic:
			switch {
			case u.Info()&types.IsInteger != 0:
				iv = it.eval(n.X, flow, n.Pos(), env).Meet(AtLeast(0))
			case u.Info()&types.IsString != 0:
				iv = it.lenOf(n.X, flow, n.Pos(), env)
			default:
				return Top(), false
			}
		case *types.Slice, *types.Array, *types.Pointer, *types.Map:
			iv = it.lenOf(n.X, flow, n.Pos(), env)
		default:
			return Top(), false // channels, funcs: no length
		}
		return iv, iv.HiBounded()
	case *ast.ForStmt:
		ind := it.parseInduction(n)
		if ind == nil {
			return Top(), false
		}
		a := it.eval(ind.init, flow, n.Pos(), env)
		b := it.eval(ind.bound, flow, n.Pos(), env)
		var span Interval
		if ind.step > 0 {
			span = b.Sub(a) // iterations cover [a, b)
		} else {
			span = a.Sub(b)
		}
		if ind.op == token.LEQ || ind.op == token.GEQ {
			span = span.Add(Const(1))
		}
		if !span.HiBounded() {
			return Top(), false
		}
		step := ind.step
		if step < 0 {
			step = -step
		}
		if step <= 0 {
			return Top(), false // -MinInt64 wrapped negative
		}
		hi, ok := addChecked(span.Hi, step-1)
		if !ok {
			return Top(), false // ceiling adjustment would overflow
		}
		trips := hi / step
		if trips < 0 {
			trips = 0
		}
		return Range(0, trips), true
	}
	return Top(), false
}

// ---- expression evaluation ---------------------------------------------

func (it *Interp) eval(e ast.Expr, flow *FuncFlow, at token.Pos, env *ienv) Interval {
	if env.depth > 64 {
		return Top()
	}
	env.depth++
	defer func() { env.depth-- }()

	info := it.info
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		if v := constant.ToInt(tv.Value); v.Kind() == constant.Int {
			if i, exact := constant.Int64Val(v); exact {
				return Const(i)
			}
		}
		return Top()
	}
	raw := it.rawEval(e, flow, at, env)
	return raw.Meet(typeInterval(info.TypeOf(e)))
}

func (it *Interp) rawEval(e ast.Expr, flow *FuncFlow, at token.Pos, env *ienv) Interval {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return it.eval(e.X, flow, at, env)
	case *ast.Ident:
		obj := it.info.ObjectOf(e)
		if obj == nil {
			return Top()
		}
		return it.objIval(obj, flow, at, env)
	case *ast.BinaryExpr:
		return it.binaryIval(e, flow, at, env)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.SUB:
			return it.eval(e.X, flow, at, env).Neg()
		case token.ADD:
			return it.eval(e.X, flow, at, env)
		}
		return Top()
	case *ast.CallExpr:
		return it.callIval(e, flow, at, env)
	case *ast.StarExpr, *ast.SelectorExpr, *ast.IndexExpr, *ast.TypeAssertExpr:
		return Top() // refined only by the type meet in eval
	}
	return Top()
}

func (it *Interp) binaryIval(e *ast.BinaryExpr, flow *FuncFlow, at token.Pos, env *ienv) Interval {
	x := it.eval(e.X, flow, at, env)
	y := it.eval(e.Y, flow, at, env)
	switch e.Op {
	case token.ADD:
		return x.Add(y)
	case token.SUB:
		return x.Sub(y)
	case token.MUL:
		return x.Mul(y)
	case token.QUO:
		return x.Div(y)
	case token.REM:
		return x.Rem(y)
	case token.SHL:
		if c, ok := y.IsConst(); ok && c >= 0 && c < 62 {
			return x.Mul(Const(int64(1) << uint(c)))
		}
		if x.LoBounded() && x.Lo >= 0 {
			return AtLeast(0)
		}
		return Top()
	case token.SHR:
		if c, ok := y.IsConst(); ok && c >= 0 && c < 62 {
			return x.Div(Const(int64(1) << uint(c)))
		}
		if x.LoBounded() && x.Lo >= 0 && x.HiBounded() {
			return Range(0, x.Hi)
		}
		return Top()
	case token.AND:
		// x & y is bounded by either nonnegative operand.
		if x.LoBounded() && x.Lo >= 0 && x.HiBounded() {
			if y.LoBounded() && y.Lo >= 0 && y.HiBounded() {
				return Range(0, min64(x.Hi, y.Hi))
			}
			return Range(0, x.Hi)
		}
		if y.LoBounded() && y.Lo >= 0 && y.HiBounded() {
			return Range(0, y.Hi)
		}
		return Top()
	case token.OR, token.XOR, token.AND_NOT:
		if x.LoBounded() && x.Lo >= 0 && y.LoBounded() && y.Lo >= 0 {
			return AtLeast(0)
		}
		return Top()
	}
	return Top()
}

func (it *Interp) callIval(call *ast.CallExpr, flow *FuncFlow, at token.Pos, env *ienv) Interval {
	info := it.info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			// Conversion: the value survives, clipped to the target type by
			// the meet in eval. (Go truncates rather than clips, but a value
			// whose interval exceeds the target is exactly what widenconv
			// flags — for in-range values the meet is exact.)
			return it.eval(call.Args[0], flow, at, env)
		}
		return Top()
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap":
				if len(call.Args) == 1 {
					return it.lenOf(call.Args[0], flow, at, env)
				}
			case "min":
				return it.foldMinMax(call, flow, at, env, true)
			case "max":
				return it.foldMinMax(call, flow, at, env, false)
			}
			return Top()
		}
	}
	if callee := calleeFunc(info, call); callee != nil && it.retIval != nil {
		if iv, ok := it.retIval(callee); ok && !iv.IsEmpty() {
			return iv
		}
	}
	return Top()
}

func (it *Interp) foldMinMax(call *ast.CallExpr, flow *FuncFlow, at token.Pos, env *ienv, isMin bool) Interval {
	if len(call.Args) == 0 {
		return Top()
	}
	acc := it.eval(call.Args[0], flow, at, env)
	for _, arg := range call.Args[1:] {
		v := it.eval(arg, flow, at, env)
		if isMin {
			acc = intervalMin(acc, v)
		} else {
			acc = intervalMax(acc, v)
		}
	}
	return acc
}

// intervalMin bounds min(a, b): each end is the min of the two ends, and
// an unbounded low on either side wins (the result can be that small).
func intervalMin(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Bottom()
	}
	out := Interval{LoUnb: a.LoUnb || b.LoUnb, HiUnb: a.HiUnb && b.HiUnb}
	if !out.LoUnb {
		out.Lo = min64(a.Lo, b.Lo)
	}
	if !out.HiUnb {
		switch {
		case a.HiUnb:
			out.Hi = b.Hi
		case b.HiUnb:
			out.Hi = a.Hi
		default:
			out.Hi = min64(a.Hi, b.Hi)
		}
	}
	return out
}

func intervalMax(a, b Interval) Interval {
	return intervalMin(a.Neg(), b.Neg()).Neg()
}

// ---- object resolution -------------------------------------------------

func (it *Interp) objIval(obj types.Object, flow *FuncFlow, at token.Pos, env *ienv) Interval {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return Top()
	}
	s := it.ssa[flow.Decl]
	if s == nil {
		return Top()
	}
	iv := Top()
	if defs := s.ReachingDefs(obj, at); len(defs) > 0 {
		acc := Bottom()
		for _, ev := range defs {
			acc = acc.Join(it.defIval(ev, flow, env))
		}
		if !acc.IsEmpty() {
			iv = acc
		}
	} else if pl, ok := it.pkgLens[obj]; ok {
		_ = pl // package-level objects carry length facts only, not values
	}
	iv = iv.Meet(typeInterval(obj.Type()))
	return it.applyConstraints(obj, flow, at, env, iv, false)
}

// applyConstraints narrows iv by every applicable scoped refinement of
// obj (wantLen selects length constraints over value constraints).
func (it *Interp) applyConstraints(obj types.Object, flow *FuncFlow, at token.Pos, env *ienv, iv Interval, wantLen bool) Interval {
	for _, c := range it.cons[flow.Decl] {
		if c.obj != obj || c.isLen != wantLen || !c.span.Contains(at) || env.cseen[c] {
			continue
		}
		if c.killFrom.IsValid() && it.redefinedBetween(flow, obj, c.killFrom, at) {
			continue
		}
		env.cseen[c] = true
		iv = iv.Meet(c.interval(it, flow, env))
		delete(env.cseen, c)
	}
	return iv
}

func (it *Interp) defIval(ev *Event, flow *FuncFlow, env *ienv) Interval {
	if env.seen[ev] {
		return Top() // loop-carried cycle: widen, constraints narrow later
	}
	if ev.Compound || ev.Container {
		// x op= y / x++ (operator not recorded) and range-element values:
		// widen; induction variables are recovered by loop constraints.
		return Top()
	}
	if ev.Rhs == nil {
		// Parameter, value-less declaration, or range key. Parameters may
		// carry an interprocedural assumption.
		if iv, ok := it.paramIvals[ev.Obj]; ok {
			return iv
		}
		return Top()
	}
	env.seen[ev] = true
	defer delete(env.seen, ev)
	return it.eval(ev.Rhs, flow, ev.Pos, env)
}

// redefinedBetween reports a Def of obj strictly inside (from, to).
func (it *Interp) redefinedBetween(flow *FuncFlow, obj types.Object, from, to token.Pos) bool {
	for _, i := range flow.byObj[obj] {
		ev := &flow.Events[i]
		if ev.Kind == Def && ev.Pos > from && ev.Pos < to {
			return true
		}
	}
	return false
}

// ---- lengths -----------------------------------------------------------

func (it *Interp) lenOf(e ast.Expr, flow *FuncFlow, at token.Pos, env *ienv) Interval {
	if env.depth > 64 {
		return AtLeast(0)
	}
	env.depth++
	defer func() { env.depth-- }()
	return it.rawLen(e, flow, at, env).Meet(AtLeast(0))
}

func (it *Interp) rawLen(e ast.Expr, flow *FuncFlow, at token.Pos, env *ienv) Interval {
	info := it.info
	if n, ok := arrayLen(info.TypeOf(e)); ok {
		return Const(n)
	}
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return Const(int64(len(constant.StringVal(tv.Value))))
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return it.lenOf(e.X, flow, at, env)
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return AtLeast(0)
		}
		iv := AtLeast(0)
		if s := it.ssa[flow.Decl]; s != nil && len(s.ReachingDefs(obj, at)) > 0 {
			acc := Bottom()
			for _, ev := range s.ReachingDefs(obj, at) {
				acc = acc.Join(it.lenOfDef(ev, flow, env))
			}
			if !acc.IsEmpty() {
				iv = acc
			}
		} else if pl, ok := it.pkgLens[obj]; ok {
			iv = pl
		}
		return it.applyConstraints(obj, flow, at, env, iv, true)
	case *ast.CompositeLit:
		return compositeLen(info, e)
	case *ast.CallExpr:
		return it.lenOfCall(e, flow, at, env)
	case *ast.SliceExpr:
		var lo Interval
		if e.Low != nil {
			lo = it.eval(e.Low, flow, at, env)
		} else {
			lo = Const(0)
		}
		if e.High != nil {
			return it.eval(e.High, flow, at, env).Sub(lo)
		}
		return it.lenOf(e.X, flow, at, env).Sub(lo)
	}
	return AtLeast(0)
}

func (it *Interp) lenOfDef(ev *Event, flow *FuncFlow, env *ienv) Interval {
	if env.seen[ev] || ev.Rhs == nil || ev.Container || ev.Compound {
		// Cycles (xs = append(xs, ...) in a loop), parameters, and range
		// elements: length unknown.
		return AtLeast(0)
	}
	env.seen[ev] = true
	defer delete(env.seen, ev)
	return it.lenOf(ev.Rhs, flow, ev.Pos, env)
}

func (it *Interp) lenOfCall(call *ast.CallExpr, flow *FuncFlow, at token.Pos, env *ienv) Interval {
	info := it.info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion. []byte(s) and string(b) preserve length; []rune does
		// not (multi-byte runes), so only byte-width element conversions
		// pass the length through.
		if len(call.Args) == 1 {
			src := info.TypeOf(call.Args[0])
			dst := info.TypeOf(call)
			if byteLengthPreserving(src, dst) {
				return it.lenOf(call.Args[0], flow, at, env)
			}
		}
		return AtLeast(0)
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				// The size argument pins the length only for slices. For a
				// map it is a capacity hint (and map inserts assign through
				// m[k], which never produces a Def event for m, so a fixed
				// length here would survive arbitrarily many inserts); for a
				// channel it is a buffer capacity. Both stay [0, +inf).
				if t := info.TypeOf(call); t != nil {
					if _, isSlice := t.Underlying().(*types.Slice); isSlice && len(call.Args) >= 2 {
						return it.eval(call.Args[1], flow, at, env)
					}
				}
				return AtLeast(0)
			case "append":
				if len(call.Args) == 0 {
					return AtLeast(0)
				}
				base := it.lenOf(call.Args[0], flow, at, env)
				if call.Ellipsis.IsValid() {
					if len(call.Args) == 2 {
						return base.Add(it.lenOf(call.Args[1], flow, at, env))
					}
					return base // append(x, ys...) malformed otherwise
				}
				return base.Add(Const(int64(len(call.Args) - 1)))
			}
		}
	}
	return AtLeast(0)
}

// compositeLen counts a slice composite literal's elements, resolving
// constant keyed indices ({0: a, 5: b} has length 6).
func compositeLen(info *types.Info, lit *ast.CompositeLit) Interval {
	next := int64(0) // index the next positional element would take
	max := int64(0)  // one past the highest index seen
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			tv, ok := info.Types[kv.Key]
			if !ok || tv.Value == nil {
				return AtLeast(int64(len(lit.Elts))) // non-constant key
			}
			k := constant.ToInt(tv.Value)
			i, exact := constant.Int64Val(k)
			if !exact {
				return AtLeast(0)
			}
			next = i + 1
		} else {
			next++
		}
		if next > max {
			max = next
		}
	}
	return Const(max)
}

// buildPkgLens proves lengths for package-level slice/array variables:
// unexported, initialized from a countable literal, never reassigned,
// never address-taken anywhere in the package. Exported variables are
// excluded for the same reason exported functions skip parameter
// narrowing — any other package in the program (or a test, which is not
// loaded) can reassign or append to them, so this package's files are
// not the whole story.
func buildPkgLens(files []*ast.File, info *types.Info) map[types.Object]Interval {
	cands := make(map[types.Object]Interval)
	mutated := make(map[types.Object]bool)
	for _, file := range files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, name := range vs.Names {
					obj := info.Defs[name]
					if obj == nil || obj.Exported() {
						continue
					}
					if n, ok := arrayLen(obj.Type()); ok {
						cands[obj] = Const(n)
						continue
					}
					if lit, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit); ok {
						if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
							cands[obj] = compositeLen(info, lit)
						}
					}
				}
			}
		}
	}
	if len(cands) == 0 {
		return cands
	}
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, l := range n.Lhs {
					if id, ok := ast.Unparen(l).(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil {
							mutated[obj] = true
						}
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil {
							mutated[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	for obj := range mutated {
		delete(cands, obj)
	}
	return cands
}

func arrayLen(t types.Type) (int64, bool) {
	if t == nil {
		return 0, false
	}
	switch u := t.Underlying().(type) {
	case *types.Array:
		return u.Len(), true
	case *types.Pointer:
		if arr, ok := u.Elem().Underlying().(*types.Array); ok {
			return arr.Len(), true
		}
	}
	return 0, false
}

func byteLengthPreserving(src, dst types.Type) bool {
	if src == nil || dst == nil {
		return false
	}
	srcStr := false
	if b, ok := src.Underlying().(*types.Basic); ok {
		srcStr = b.Info()&types.IsString != 0
	}
	return (srcStr && isByteSlice(dst)) || (isByteSlice(src) && func() bool {
		b, ok := dst.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}())
}

// ---- constraint collection ---------------------------------------------

func (it *Interp) collectConstraints(flow *FuncFlow) []*constraint {
	var cons []*constraint
	var stack []ast.Node
	enclosingBlockEnd := func() token.Pos {
		for i := len(stack) - 2; i >= 0; i-- {
			if b, ok := stack[i].(*ast.BlockStmt); ok {
				return b.End()
			}
		}
		return flow.Decl.Body.End()
	}
	ast.Inspect(flow.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.ForStmt:
			cons = append(cons, it.forConstraints(flow, n)...)
		case *ast.RangeStmt:
			cons = append(cons, it.rangeConstraints(flow, n)...)
		case *ast.IfStmt:
			cons = append(cons, it.ifConstraints(n, enclosingBlockEnd())...)
		}
		return true
	})
	return cons
}

// induction is a recognized counting loop.
type induction struct {
	obj   types.Object
	init  ast.Expr
	bound ast.Expr
	op    token.Token // comparison, normalized so obj is on the left
	step  int64       // per-iteration increment (negative for countdown)
}

func (it *Interp) parseInduction(n *ast.ForStmt) *induction {
	info := it.info
	ind := &induction{}

	init, ok := n.Init.(*ast.AssignStmt)
	if !ok || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return nil
	}
	id, ok := ast.Unparen(init.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	ind.obj = info.ObjectOf(id)
	if ind.obj == nil {
		return nil
	}
	ind.init = init.Rhs[0]

	cmp, ok := n.Cond.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch {
	case isObjIdent(info, cmp.X, ind.obj):
		ind.op, ind.bound = cmp.Op, cmp.Y
	case isObjIdent(info, cmp.Y, ind.obj):
		ind.op, ind.bound = flipCmp(cmp.Op), cmp.X
	default:
		return nil
	}

	switch post := n.Post.(type) {
	case *ast.IncDecStmt:
		if !isObjIdent(info, post.X, ind.obj) {
			return nil
		}
		if post.Tok == token.INC {
			ind.step = 1
		} else {
			ind.step = -1
		}
	case *ast.AssignStmt:
		if len(post.Lhs) != 1 || len(post.Rhs) != 1 || !isObjIdent(info, post.Lhs[0], ind.obj) {
			return nil
		}
		tv, ok := info.Types[post.Rhs[0]]
		if !ok || tv.Value == nil {
			return nil
		}
		c, exact := constant.Int64Val(constant.ToInt(tv.Value))
		if !exact || c == 0 {
			return nil
		}
		switch post.Tok {
		case token.ADD_ASSIGN:
			ind.step = c
		case token.SUB_ASSIGN:
			ind.step = -c
		default:
			return nil
		}
	default:
		return nil
	}

	// The pattern must be the whole story: neither the variable nor the
	// bound's inputs may be assigned inside the body.
	assigned := assignedObjects(n.Body, info)
	if assigned[ind.obj] {
		return nil
	}
	for obj := range objectsIn(info, ind.bound) {
		if assigned[obj] {
			return nil
		}
	}
	// Direction and comparison must agree (a `for i := 0; i > n; i++` is
	// not a counting loop).
	if ind.step > 0 && ind.op != token.LSS && ind.op != token.LEQ {
		return nil
	}
	if ind.step < 0 && ind.op != token.GTR && ind.op != token.GEQ {
		return nil
	}
	return ind
}

func (it *Interp) forConstraints(flow *FuncFlow, n *ast.ForStmt) []*constraint {
	ind := it.parseInduction(n)
	if ind == nil {
		return nil
	}
	loopPos := n.Pos()
	c := &constraint{
		obj:      ind.obj,
		span:     Span{n.Body.Pos(), n.Body.End()},
		killFrom: token.NoPos, // body never assigns the variable (checked above)
		fixed: func(it *Interp, flow *FuncFlow, env *ienv) Interval {
			a := it.eval(ind.init, flow, loopPos, env)
			b := it.eval(ind.bound, flow, loopPos, env)
			out := Top()
			if ind.step > 0 {
				if a.LoBounded() {
					out = out.Meet(AtLeast(a.Lo))
				}
				out = out.Meet(refineBy(ind.op, b))
			} else {
				if a.HiBounded() {
					out = out.Meet(AtMost(a.Hi))
				}
				out = out.Meet(refineBy(ind.op, b))
			}
			return out
		},
	}
	return []*constraint{c}
}

func (it *Interp) rangeConstraints(flow *FuncFlow, n *ast.RangeStmt) []*constraint {
	info := it.info
	key, ok := n.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return nil
	}
	obj := info.ObjectOf(key)
	if obj == nil || assignedObjects(n.Body, info)[obj] {
		return nil
	}
	t := info.TypeOf(n.X)
	if t == nil {
		return nil
	}
	var upper func(it *Interp, flow *FuncFlow, env *ienv) Interval
	pos := n.Pos()
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch {
		case u.Info()&types.IsInteger != 0:
			upper = func(it *Interp, flow *FuncFlow, env *ienv) Interval {
				return it.eval(n.X, flow, pos, env)
			}
		case u.Info()&types.IsString != 0:
			upper = func(it *Interp, flow *FuncFlow, env *ienv) Interval {
				return it.lenOf(n.X, flow, pos, env)
			}
		default:
			return nil
		}
	case *types.Slice, *types.Array, *types.Pointer:
		if _, ok := arrayLen(t); !ok {
			if _, isSlice := u.(*types.Slice); !isSlice {
				return nil // pointer to non-array
			}
		}
		upper = func(it *Interp, flow *FuncFlow, env *ienv) Interval {
			return it.lenOf(n.X, flow, pos, env)
		}
	default:
		return nil // map keys and channel values are not indices
	}
	c := &constraint{
		obj:      obj,
		span:     Span{n.Body.Pos(), n.Body.End()},
		killFrom: token.NoPos,
		fixed: func(it *Interp, flow *FuncFlow, env *ienv) Interval {
			b := upper(it, flow, env)
			iv := AtLeast(0)
			if b.HiBounded() {
				iv = iv.Meet(AtMost(b.Hi - 1))
			}
			return iv
		},
	}
	return []*constraint{c}
}

func (it *Interp) ifConstraints(n *ast.IfStmt, blockEnd token.Pos) []*constraint {
	var cons []*constraint
	thenSpan := Span{n.Body.Pos(), n.Body.End()}
	for _, cmp := range conjuncts(n.Cond) {
		cons = append(cons, it.compConstraints(cmp, thenSpan, n.Body.Pos(), false)...)
	}
	if els, ok := n.Else.(*ast.BlockStmt); ok {
		span := Span{els.Pos(), els.End()}
		for _, cmp := range disjuncts(n.Cond) {
			cons = append(cons, it.compConstraints(cmp, span, els.Pos(), true)...)
		}
	}
	if bodyDiverts(n.Body) {
		span := Span{n.End(), blockEnd}
		for _, cmp := range disjuncts(n.Cond) {
			cons = append(cons, it.compConstraints(cmp, span, n.End(), true)...)
		}
	} else if n.Else == nil {
		// Clamp idiom: `if x > hi { x = hi }`. The body neither diverts
		// nor is skipped — but when it definitely overwrites x, the value
		// after the if is either a pre-if value with the condition false
		// or one of the assigned values, so the union of the negated
		// refinement and the assigned intervals holds until the next
		// redefinition.
		span := Span{n.End(), blockEnd}
		for _, cmp := range disjuncts(n.Cond) {
			for _, c := range it.compConstraints(cmp, span, n.End(), true) {
				if c.isLen {
					continue // len(x) is not overwritten by assigning x
				}
				rhs, ok := clampAssigns(it.info, n.Body, c.obj)
				if !ok {
					continue
				}
				neg := &constraint{obj: c.obj, op: c.op, bound: c.bound, at: c.at}
				condPos := n.Cond.Pos()
				cons = append(cons, &constraint{
					obj: c.obj, span: span, killFrom: n.End(),
					// post = (pre ∧ ¬cond) ∪ assigned. Folding the pre-if
					// value in (rather than ¬cond alone) chains earlier
					// clamps through: `if x < 0 { x = 0 }` keeps its lower
					// bound across a later `if x > hi { x = hi }`, whose
					// branch-arm def would otherwise invalidate it.
					fixed: func(it *Interp, flow *FuncFlow, env *ienv) Interval {
						iv := it.objIval(neg.obj, flow, condPos, env).Meet(neg.interval(it, flow, env))
						for _, e := range rhs {
							iv = iv.Join(it.eval(e, flow, e.Pos(), env))
						}
						return iv
					},
				})
			}
		}
	}
	return cons
}

// clampAssigns collects the values a then-body can leave in obj: every
// simple `obj = expr` assignment in the body. ok requires at least one
// such assignment at the body's top level (the branch then definitely
// overwrites obj) and no write the union cannot model — compound assigns,
// ++/--, range bindings, address-taking, or closures touching obj.
func clampAssigns(info *types.Info, body *ast.BlockStmt, obj types.Object) (rhs []ast.Expr, ok bool) {
	ok = true
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(s.Body, func(nd ast.Node) bool {
				if id, isIdent := nd.(*ast.Ident); isIdent && info.ObjectOf(id) == obj {
					ok = false
				}
				return ok
			})
			return false
		case *ast.IncDecStmt:
			if isObjIdent(info, s.X, obj) {
				ok = false
			}
		case *ast.RangeStmt:
			if (s.Key != nil && isObjIdent(info, s.Key, obj)) ||
				(s.Value != nil && isObjIdent(info, s.Value, obj)) {
				ok = false
			}
		case *ast.UnaryExpr:
			if s.Op == token.AND && isObjIdent(info, s.X, obj) {
				ok = false
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if !isObjIdent(info, lhs, obj) {
					continue
				}
				if s.Tok != token.ASSIGN || len(s.Lhs) != len(s.Rhs) || i >= len(s.Rhs) {
					ok = false
					continue
				}
				rhs = append(rhs, s.Rhs[i])
			}
		}
		return ok
	})
	if !ok || len(rhs) == 0 {
		return nil, false
	}
	for _, st := range body.List {
		if as, isAssign := st.(*ast.AssignStmt); isAssign && as.Tok == token.ASSIGN && len(as.Lhs) == len(as.Rhs) {
			for _, lhs := range as.Lhs {
				if isObjIdent(info, lhs, obj) {
					return rhs, true
				}
			}
		}
	}
	return nil, false
}

// conjuncts splits a && chain into its comparison leaves; a non-comparison
// conjunct is simply skipped (it refines nothing).
func conjuncts(cond ast.Expr) []*ast.BinaryExpr {
	return splitCond(cond, token.LAND)
}

// disjuncts splits a || chain: the negation of a disjunction is the
// conjunction of the negations, so each leaf's negation holds on the
// not-taken path. A cond mixing ||/&& at top level yields no usable
// negation leaves beyond what splitCond returns for the requested op.
func disjuncts(cond ast.Expr) []*ast.BinaryExpr {
	return splitCond(cond, token.LOR)
}

func splitCond(cond ast.Expr, op token.Token) []*ast.BinaryExpr {
	cond = ast.Unparen(cond)
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	if be.Op == op {
		return append(splitCond(be.X, op), splitCond(be.Y, op)...)
	}
	switch be.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return []*ast.BinaryExpr{be}
	}
	return nil
}

func (it *Interp) compConstraints(cmp *ast.BinaryExpr, span Span, killFrom token.Pos, negated bool) []*constraint {
	info := it.info
	op := cmp.Op
	if negated {
		op = negateCmp(op)
	}
	var cons []*constraint
	add := func(side, bound ast.Expr, op token.Token) {
		if op == token.NEQ || op == token.ILLEGAL {
			return // x != e carries no interval information
		}
		side = ast.Unparen(side)
		isLen := false
		if call, ok := side.(*ast.CallExpr); ok && len(call.Args) == 1 {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					side = ast.Unparen(call.Args[0])
					isLen = true
				}
			}
		}
		id, ok := side.(*ast.Ident)
		if !ok {
			return
		}
		obj, ok := info.ObjectOf(id).(*types.Var)
		if !ok || obj.IsField() {
			return
		}
		cons = append(cons, &constraint{
			obj: obj, span: span, killFrom: killFrom, isLen: isLen,
			op: op, bound: bound, at: cmp.Pos(),
		})
	}
	add(cmp.X, cmp.Y, op)
	add(cmp.Y, cmp.X, flipCmp(op))
	return cons
}

// interval materializes the refinement a constraint contributes.
func (c *constraint) interval(it *Interp, flow *FuncFlow, env *ienv) Interval {
	if c.fixed != nil {
		return c.fixed(it, flow, env)
	}
	b := it.eval(c.bound, flow, c.at, env)
	return refineBy(c.op, b)
}

// refineBy turns "x op b" into the interval x must lie in.
func refineBy(op token.Token, b Interval) Interval {
	if b.IsEmpty() {
		return Top()
	}
	switch op {
	case token.LSS:
		if b.HiBounded() && b.Hi > math.MinInt64 {
			return AtMost(b.Hi - 1)
		}
	case token.LEQ:
		if b.HiBounded() {
			return AtMost(b.Hi)
		}
	case token.GTR:
		if b.LoBounded() && b.Lo < math.MaxInt64 {
			return AtLeast(b.Lo + 1)
		}
	case token.GEQ:
		if b.LoBounded() {
			return AtLeast(b.Lo)
		}
	case token.EQL:
		return b
	}
	return Top()
}

func isObjIdent(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.ObjectOf(id) == obj
}

// flipCmp mirrors a comparison across its operands: a < b ⇔ b > a.
func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op // EQL, NEQ are symmetric
}

// negateCmp is the comparison that holds when the original fails.
func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return token.ILLEGAL
}

// TypeInterval is the value range a basic integer type admits; Top for
// everything 64-bit or non-integer. Exposed for analyzers that compare a
// proven interval against a conversion's target type.
func TypeInterval(t types.Type) Interval { return typeInterval(t) }

// typeInterval is the value range a basic integer type admits; Top for
// everything 64-bit or non-integer (an int64 bound is representable but
// carries no information beyond the domain itself).
func typeInterval(t types.Type) Interval {
	if t == nil {
		return Top()
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return Top()
	}
	switch b.Kind() {
	case types.Int8:
		return Range(math.MinInt8, math.MaxInt8)
	case types.Int16:
		return Range(math.MinInt16, math.MaxInt16)
	case types.Int32:
		return Range(math.MinInt32, math.MaxInt32)
	case types.Uint8:
		return Range(0, math.MaxUint8)
	case types.Uint16:
		return Range(0, math.MaxUint16)
	case types.Uint32:
		return Range(0, math.MaxUint32)
	case types.Uint, types.Uint64, types.Uintptr:
		return AtLeast(0)
	}
	return Top()
}
