// Interprocedural interval propagation: the Program joins argument
// intervals over every loaded call site into per-parameter assumptions,
// and return intervals per function into a program-wide table the
// expression evaluator consults at call expressions.
//
// The iteration is a descending Kleene chain: a table miss evaluates to
// Top, and each round recomputes every entry fresh from the previous
// round's (over-approximate) tables, so every intermediate state — and
// therefore any cutoff — is a sound over-approximation. Bounds that move
// the wrong way (non-monotone blips through division or widening
// feedback) are widened to infinity after a few rounds, which makes them
// sticky and forces termination well inside the round cap.
//
// Two deliberate approximations keep this honest as a lint-grade (not
// verifier-grade) analysis:
//
//   - parameter narrowing applies to unexported functions only — an
//     exported function can be called from outside the load (tests are
//     not loaded at all), so the observed call sites are not exhaustive;
//     for the same reason it is disabled for any function whose
//     identifier appears outside call position (assigned, passed, or
//     stored as a value), since calls through that value are invisible
//     to the call-site walk;
//   - a call site whose arguments cannot be evaluated per-parameter
//     (the f(g()) spread form) widens every parameter to Top rather
//     than contributing nothing;
//   - return intervals cover single-result integer functions only.
package dataflow

import (
	"go/ast"
	"go/types"

	"rups/internal/analysis"
)

// ivalWidenRound is the round after which still-moving interval bounds
// are widened to infinity; with classic interval widening the tables
// stabilize within two further rounds per side.
const ivalWidenRound = 4

// ivalMaxRounds caps the fixpoint outright as a backstop.
const ivalMaxRounds = 10

func (p *Program) computeIntervals(passes []*analysis.Pass) {
	p.ivalRets = make(map[string]Interval)
	p.ivalNoNarrow = collectValueRefFuncs(p, passes)
	for _, pass := range passes {
		a := p.analyses[pass.Pkg.Path()]
		a.interp.retIval = func(fn *types.Func) (Interval, bool) {
			iv, ok := p.ivalRets[FuncID(fn)]
			return iv, ok
		}
	}

	prevParams := make(map[string][]Interval)
	for round := 0; round < ivalMaxRounds; round++ {
		changed := false

		// Argument intervals at every loaded call site, joined per callee
		// parameter, recomputed fresh against the previous round's tables.
		fresh := make(map[string][]Interval)
		for _, pass := range passes {
			a := p.analyses[pass.Pkg.Path()]
			for _, flow := range a.Flows {
				p.collectArgIvals(a, flow, fresh)
			}
		}
		for id, ivs := range fresh {
			old := prevParams[id]
			for i := range ivs {
				var prev Interval
				if i < len(old) {
					prev = old[i]
				} else {
					prev = Top()
				}
				if round >= ivalWidenRound {
					ivs[i] = ivs[i].Widen(prev)
				}
				if ivs[i] != prev {
					changed = true
				}
			}
		}
		prevParams = fresh
		p.installParamIvals(fresh)

		// Return intervals, recomputed fresh.
		for _, pf := range p.funcs {
			a := p.analyses[pf.Pkg.Path()]
			if a == nil {
				continue
			}
			flow := a.byDecl[pf.Decl]
			if flow == nil || !singleIntResult(pf.Fn) {
				continue
			}
			nv := a.interp.returnIval(flow)
			old, ok := p.ivalRets[pf.ID]
			if !ok {
				old = Top()
			}
			if round >= ivalWidenRound {
				nv = nv.Widen(old)
			}
			if nv != old || !ok {
				p.ivalRets[pf.ID] = nv
				changed = changed || nv != old
			}
		}
		if !changed {
			break
		}
	}
}

// collectValueRefFuncs records every loaded function whose identifier
// appears outside call position anywhere in the load — assigned to a
// variable or field, passed as an argument, returned, or captured as a
// method value. Such a function can be invoked through the escaped value
// at sites calleeFunc cannot resolve, so the direct call sites are not
// exhaustive and parameter narrowing must be disabled for it.
func collectValueRefFuncs(p *Program, passes []*analysis.Pass) map[string]bool {
	out := make(map[string]bool)
	for _, pass := range passes {
		info := pass.TypesInfo
		for _, file := range pass.Files {
			// First mark the identifiers that are the callee of a direct
			// call; every other *types.Func use is a value reference.
			calleePos := make(map[*ast.Ident]bool)
			ast.Inspect(file, func(nd ast.Node) bool {
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					calleePos[fun] = true
				case *ast.SelectorExpr:
					calleePos[fun.Sel] = true
				}
				return true
			})
			ast.Inspect(file, func(nd ast.Node) bool {
				id, ok := nd.(*ast.Ident)
				if !ok || calleePos[id] {
					return true
				}
				fn, ok := info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				if fid := FuncID(fn); p.byID[fid] != nil {
					out[fid] = true
				}
				return true
			})
		}
	}
	return out
}

// collectArgIvals evaluates integer arguments at every call expression in
// one function and joins them into the per-callee accumulator.
func (p *Program) collectArgIvals(a *Analysis, flow *FuncFlow, acc map[string][]Interval) {
	info := a.pass.TypesInfo
	it := a.interp
	ast.Inspect(flow.Decl.Body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil {
			return true
		}
		pf := p.byID[FuncID(callee)]
		if pf == nil || pf.Fn.Exported() || p.ivalNoNarrow[pf.ID] {
			return true
		}
		sig, ok := pf.Fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		n := sig.Params().Len()
		if sig.Variadic() {
			n-- // the variadic tail aggregates values, not one argument
		}
		slots := acc[pf.ID]
		if slots == nil {
			slots = make([]Interval, n)
			for i := range slots {
				slots[i] = Bottom()
			}
			acc[pf.ID] = slots
		}
		if len(call.Args) < n {
			// f(g()) spread form: no per-argument expressions to evaluate.
			// The site still exists, so it must widen every parameter to
			// Top — contributing nothing would let the other call sites
			// narrow past values this one can pass.
			for i := range slots {
				slots[i] = Top()
			}
			return true
		}
		for i := 0; i < n; i++ {
			if !isIntegerType(sig.Params().At(i).Type()) {
				continue
			}
			slots[i] = slots[i].Join(it.eval(call.Args[i], flow, call.Pos(), newIenv()))
		}
		return true
	})
}

// installParamIvals publishes the current parameter table into each
// package's evaluator, keyed by the callee's own parameter objects.
func (p *Program) installParamIvals(params map[string][]Interval) {
	for _, pf := range p.funcs {
		ivs := params[pf.ID]
		if ivs == nil {
			continue
		}
		a := p.analyses[pf.Pkg.Path()]
		if a == nil {
			continue
		}
		sig, ok := pf.Fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		for i, iv := range ivs {
			if i >= sig.Params().Len() {
				break
			}
			obj := sig.Params().At(i)
			if iv.IsEmpty() || iv.IsTop() {
				// A previous round may have published a narrower value that
				// widening has since given up on.
				delete(a.interp.paramIvals, obj)
				continue
			}
			a.interp.paramIvals[obj] = iv
		}
	}
}

// returnIval joins the intervals of every value the function can return
// (single-result integer functions; the caller checks the signature).
func (it *Interp) returnIval(flow *FuncFlow) Interval {
	acc := Bottom()
	walkSkippingFuncLits(flow.Decl.Body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		if len(ret.Results) == 1 {
			acc = acc.Join(it.eval(ret.Results[0], flow, ret.Pos(), newIenv()))
			return
		}
		if len(ret.Results) == 0 {
			for obj := range flow.results {
				acc = acc.Join(it.objIval(obj, flow, ret.Pos(), newIenv()))
			}
		}
	})
	if acc.IsEmpty() {
		return Top() // no return statements reached: know nothing
	}
	return acc
}

// RetIvalByID resolves the proven return interval of a function by
// canonical ID.
func (p *Program) RetIvalByID(id string) (Interval, bool) {
	iv, ok := p.ivalRets[id]
	return iv, ok
}

func singleIntResult(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	return isIntegerType(sig.Results().At(0).Type())
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
