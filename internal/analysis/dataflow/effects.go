package dataflow

// Effect summaries: one linear walk per declared function collects the
// direct facts (channel operations, lock acquisitions in order, atomic
// versus plain field access, wall-clock/randomness/telemetry sources,
// outgoing call sites with their concurrency context), then a monotone
// whole-program fixpoint propagates the reachability facts across the
// call graph — including name-structural resolution of interface-method
// calls.
//
// Held-lock tracking is position-approximated like the rest of the
// dataflow layer: the walk visits nodes in source order and carries one
// mutable acquisition stack; a deferred Unlock never releases (the lock is
// held to the end of the function), and branch-local releases are
// linearized in source order. docs/STATIC_ANALYSIS.md spells out the
// approximation.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Effects is one function's summary, direct facts plus everything
// propagated from its (transitive) callees.
type Effects struct {
	// Acquires holds every lock ID the function may take, directly or via
	// any call.
	Acquires map[string]bool

	// ReachesTime reports a path to a wall-clock source (time.Now and
	// friends). TimeVia is the call importing the effect (nil when direct),
	// TimeWhat names the source, TimeSites are the direct sites.
	ReachesTime bool
	TimeVia     *CallSite
	TimeWhat    string
	TimeSites   []SourceSite

	// ReachesRand is the same for the global math/rand source.
	ReachesRand bool
	RandVia     *CallSite
	RandWhat    string
	RandSites   []SourceSite

	// RawObs reports a path to a raw registry/recorder lookup
	// (obs.Default / obs.ActiveRecorder) outside the sanctioned View
	// cache. ObsVia/ObsWhat mirror the time fields; RawObsSites are the
	// direct lookups, HandleSites the metric-handle constructions outside
	// a NewView build function.
	RawObs      bool
	ObsVia      *CallSite
	ObsWhat     string
	RawObsSites []SourceSite
	HandleSites []SourceSite
}

// SourceSite is a Site plus the name of the source it touches
// (e.g. "time.Now", "obs.ActiveRecorder", "Registry.Counter").
type SourceSite struct {
	Site
	What string
}

func newEffects() *Effects {
	return &Effects{Acquires: make(map[string]bool)}
}

// ---- per-function walk -------------------------------------------------

func (p *Program) walkFunc(pf *ProgFunc) {
	w := &effWalker{p: p, pf: pf}
	ast.Inspect(pf.Decl.Body, w.visit)
}

type effWalker struct {
	p     *Program
	pf    *ProgFunc
	stack []ast.Node
	held  []string // lock IDs in acquisition order, source-position approximated
}

func (w *effWalker) visit(n ast.Node) bool {
	if n == nil {
		w.stack = w.stack[:len(w.stack)-1]
		return true
	}
	w.stack = append(w.stack, n)
	switch n := n.(type) {
	case *ast.SendStmt:
		w.chanOp(ChanSend, n.Chan, n.Arrow)
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			w.chanOp(ChanRecv, n.X, n.OpPos)
		}
	case *ast.CallExpr:
		w.call(n)
	case *ast.SelectorExpr:
		w.fieldAccess(n)
	}
	return true
}

// site snapshots the current concurrency context. A closure defined inside
// a loop (or go statement) inherits that context — it typically runs per
// iteration, which is exactly what the loop-discipline analyzers care
// about.
func (w *effWalker) site(pos token.Pos) Site {
	s := Site{Fn: w.pf.Fn, FnID: w.pf.ID, Pos: pos,
		Held: append([]string(nil), w.held...)}
	for i, anc := range w.stack {
		switch a := anc.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			s.InLoop = true
		case *ast.GoStmt:
			s.InGo = true
		case *ast.CallExpr:
			if i < len(w.stack)-1 && w.isOnceDo(a) {
				s.InOnce = true
			}
		}
	}
	return s
}

func (w *effWalker) inDefer() bool {
	for _, anc := range w.stack {
		if _, ok := anc.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// isOnceDo recognizes once.Do(...) calls; anything lexically inside the
// argument runs at most once.
func (w *effWalker) isOnceDo(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := w.pf.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Do" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && typeID(sig.Recv().Type()) == "sync.Once"
}

// inViewBuild reports whether the walk currently sits inside the build
// function literal of an obs.NewView call — the one place handle
// construction is sanctioned.
func (w *effWalker) inViewBuild() bool {
	for i, anc := range w.stack {
		lit, ok := anc.(*ast.FuncLit)
		if !ok || i == 0 {
			continue
		}
		call, ok := w.stack[i-1].(*ast.CallExpr)
		if !ok {
			continue
		}
		if fn := calleeFunc(w.pf.Info, call); fn != nil && fn.Name() == "NewView" &&
			fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/obs") {
			_ = lit
			return true
		}
	}
	return false
}

// ---- channel operations ------------------------------------------------

func (w *effWalker) chanOp(kind ChanOpKind, ch ast.Expr, pos token.Pos) {
	key, name, fromParam := w.chanIdent(ch)
	if key == "" {
		return
	}
	w.p.chanOps[key] = append(w.p.chanOps[key], ChanOp{
		Kind: kind, Key: key, Name: name, FromParam: fromParam, Site: w.site(pos),
	})
}

// chanIdent names the abstract channel an operation touches: a struct
// field, a package-level var, or a local/parameter. Anything else (map
// element, call result) is out of the abstraction.
func (w *effWalker) chanIdent(e ast.Expr) (key, name string, fromParam bool) {
	info := w.pf.Info
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj, _ := info.ObjectOf(e).(*types.Var)
		if obj == nil {
			return "", "", false
		}
		// A directional chan<- parameter documents ownership transfer (the
		// canonical deferred-close producer); only a bidirectional channel
		// parameter counts as borrowed.
		fromParam = w.isParamOf(obj)
		if ch, ok := obj.Type().Underlying().(*types.Chan); ok && ch.Dir() != types.SendRecv {
			fromParam = false
		}
		return objectKey(w.p.fset, obj), obj.Name(), fromParam
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			fld, _ := sel.Obj().(*types.Var)
			if fld == nil {
				return "", "", false
			}
			return fieldID(sel.Recv(), fld), fld.Name(), false
		}
		if obj, ok := info.Uses[e.Sel].(*types.Var); ok { // qualified package var
			return objectKey(w.p.fset, obj), obj.Name(), false
		}
	}
	return "", "", false
}

func (w *effWalker) isParamOf(obj *types.Var) bool {
	sig, _ := w.pf.Fn.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return true
		}
	}
	return false
}

// ---- calls -------------------------------------------------------------

func (w *effWalker) call(n *ast.CallExpr) {
	info := w.pf.Info
	if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "close" && len(n.Args) == 1 {
				w.chanOp(ChanClose, n.Args[0], n.Pos())
			}
			return
		}
	}
	callee := calleeFunc(info, n)
	if callee == nil {
		return
	}
	pkgPath := ""
	if callee.Pkg() != nil {
		pkgPath = callee.Pkg().Path()
	}
	sig, _ := callee.Type().(*types.Signature)
	eff := w.pf.Effects

	switch pkgPath {
	case "sync":
		w.syncCall(n, callee, sig)
		return
	case "sync/atomic":
		w.atomicCall(n, sig)
		return
	case "time":
		switch callee.Name() {
		case "Now", "Since", "Until":
			s := SourceSite{Site: w.site(n.Pos()), What: "time." + callee.Name()}
			eff.TimeSites = append(eff.TimeSites, s)
			if !eff.ReachesTime {
				eff.ReachesTime, eff.TimeWhat = true, s.What
			}
		}
		return
	case "math/rand", "math/rand/v2":
		// Package-level functions draw from the shared global source;
		// explicitly seeded *Rand values (rand.New) stay deterministic.
		if sig != nil && sig.Recv() == nil {
			switch callee.Name() {
			case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			default:
				s := SourceSite{Site: w.site(n.Pos()), What: strings.TrimPrefix(pkgPath, "math/") + "." + callee.Name()}
				eff.RandSites = append(eff.RandSites, s)
				if !eff.ReachesRand {
					eff.ReachesRand, eff.RandWhat = true, s.What
				}
			}
		}
		return
	}
	if strings.HasSuffix(pkgPath, "internal/obs") || strings.HasSuffix(pkgPath, "internal/obs/flight") {
		w.obsCall(n, callee, sig)
	}
	w.recordCallSite(n, callee, sig)
}

func (w *effWalker) obsCall(n *ast.CallExpr, callee *types.Func, sig *types.Signature) {
	eff := w.pf.Effects
	name := callee.Name()
	raw := ""
	if sig != nil && sig.Recv() == nil {
		switch {
		case name == "Default" || name == "ActiveRecorder":
			raw = "obs." + name
		case name == "Active" && callee.Pkg() != nil &&
			strings.HasSuffix(callee.Pkg().Path(), "internal/obs/flight"):
			// The flight ring's default lookup follows the same discipline
			// as the obs registry/recorder: fetch once, cache the handle.
			raw = "flight.Active"
		}
	}
	if raw != "" {
		s := SourceSite{Site: w.site(n.Pos()), What: raw}
		eff.RawObsSites = append(eff.RawObsSites, s)
		if !eff.RawObs && !w.pf.sanctionedObs {
			eff.RawObs, eff.ObsWhat = true, s.What
		}
		return
	}
	if sig != nil && sig.Recv() != nil && strings.HasSuffix(typeID(sig.Recv().Type()), ".Registry") {
		switch name {
		case "Counter", "Gauge", "Histogram":
			if !w.inViewBuild() {
				eff.HandleSites = append(eff.HandleSites,
					SourceSite{Site: w.site(n.Pos()), What: "Registry." + name})
			}
		}
	}
}

func (w *effWalker) recordCallSite(n *ast.CallExpr, callee *types.Func, sig *types.Signature) {
	cs := &CallSite{
		Caller:   w.pf.Fn,
		Callee:   callee,
		CalleeID: FuncID(callee),
		Pos:      n.Pos(),
		Held:     append([]string(nil), w.held...),
	}
	for _, anc := range w.stack {
		switch anc.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			cs.InLoop = true
		case *ast.GoStmt:
			cs.InGo = true
		case *ast.DeferStmt:
			cs.InDefer = true
		}
	}
	if sig != nil && sig.Recv() != nil {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			cs.Dynamic = true
			cs.MethodName = callee.Name()
			for i := 0; i < iface.NumMethods(); i++ {
				cs.IfaceNames = append(cs.IfaceNames, iface.Method(i).Name())
			}
			sort.Strings(cs.IfaceNames)
		}
	}
	w.pf.Calls = append(w.pf.Calls, cs)
}

// ---- locks -------------------------------------------------------------

func (w *effWalker) syncCall(n *ast.CallExpr, callee *types.Func, sig *types.Signature) {
	if sig == nil || sig.Recv() == nil {
		return
	}
	switch typeID(sig.Recv().Type()) {
	case "sync.Mutex", "sync.RWMutex":
	default:
		return // Once.Do context is handled via the site stack; WaitGroup etc. are out of scope
	}
	sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	id := w.lockIDOf(sel.X)
	eff := w.pf.Effects
	switch callee.Name() {
	case "Lock", "RLock":
		eff.Acquires[id] = true
		for _, h := range w.held {
			if h != id {
				w.p.addEdge(h, id, n.Pos(), w.pf, "")
			}
		}
		w.held = append(w.held, id)
	case "TryLock", "TryRLock":
		// May acquire: record the ordering evidence but do not assume held
		// (the success branch is not modeled).
		eff.Acquires[id] = true
		for _, h := range w.held {
			if h != id {
				w.p.addEdge(h, id, n.Pos(), w.pf, "")
			}
		}
	case "Unlock", "RUnlock":
		if w.inDefer() {
			return // released at function end: held for the rest of the body
		}
		for i := len(w.held) - 1; i >= 0; i-- {
			if w.held[i] == id {
				w.held = append(w.held[:i], w.held[i+1:]...)
				break
			}
		}
	}
}

// lockIDOf names the lock a sync call operates on: struct fields by owner
// type + field, package vars by path + name, locals by declaration
// position, and a promoted embedded mutex by the embedding type.
func (w *effWalker) lockIDOf(x ast.Expr) string {
	info := w.pf.Info
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
			if fld, ok := s.Obj().(*types.Var); ok {
				return fieldID(s.Recv(), fld)
			}
		}
		if obj, ok := info.Uses[x.Sel].(*types.Var); ok {
			return objectKey(w.p.fset, obj)
		}
	case *ast.Ident:
		if obj, ok := info.ObjectOf(x).(*types.Var); ok {
			if !isSyncLock(obj.Type()) {
				return typeID(obj.Type()) + ".lock" // promoted embedded mutex
			}
			return objectKey(w.p.fset, obj)
		}
	}
	if t := info.TypeOf(x); t != nil {
		return typeID(t) + ".lock"
	}
	return "?"
}

func isSyncLock(t types.Type) bool {
	switch typeID(t) {
	case "sync.Mutex", "sync.RWMutex":
		return true
	}
	return false
}

// ---- atomic vs plain field access --------------------------------------

func (w *effWalker) atomicCall(n *ast.CallExpr, sig *types.Signature) {
	if sig != nil && sig.Recv() != nil {
		// Typed atomic (atomic.Int64, atomic.Pointer, ...): the receiver
		// expression is the cell.
		if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
			w.recordAtomic(sel.X, n.Pos())
		}
		return
	}
	// Package function (atomic.AddUint64(&x.f, 1), ...): the address
	// argument is the cell.
	if len(n.Args) > 0 {
		if un, ok := ast.Unparen(n.Args[0]).(*ast.UnaryExpr); ok && un.Op == token.AND {
			w.recordAtomic(un.X, n.Pos())
		}
	}
}

func (w *effWalker) recordAtomic(cell ast.Expr, pos token.Pos) {
	info := w.pf.Info
	sel, ok := ast.Unparen(cell).(*ast.SelectorExpr)
	if !ok {
		return // atomics on non-field cells are out of the field abstraction
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	fld, _ := s.Obj().(*types.Var)
	if fld == nil {
		return
	}
	fa := w.p.field(fieldID(s.Recv(), fld), fld.Name())
	fa.Atomic = append(fa.Atomic, w.site(pos))
}

// fieldAccess records plain reads/writes of fields whose type could also
// be touched through sync/atomic (integers, unsafe pointers) — the
// atomiccheck join only fires on fields present in both camps.
func (w *effWalker) fieldAccess(sel *ast.SelectorExpr) {
	info := w.pf.Info
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	fld, _ := s.Obj().(*types.Var)
	if fld == nil || !plainTrackable(fld.Type()) {
		return
	}
	if w.atomicOperand() {
		return // &x.f inside an atomic call: recorded by atomicCall
	}
	read, write := w.accessKind(sel)
	if !read && !write {
		return
	}
	fa := w.p.field(fieldID(s.Recv(), fld), fld.Name())
	st := w.site(sel.Sel.Pos())
	if read {
		fa.PlainReads = append(fa.PlainReads, st)
	}
	if write {
		fa.PlainWrites = append(fa.PlainWrites, st)
	}
}

// atomicOperand reports whether the selector currently on top of the stack
// is the &-operand of a sync/atomic package call.
func (w *effWalker) atomicOperand() bool {
	if len(w.stack) < 3 {
		return false
	}
	un, ok := w.stack[len(w.stack)-2].(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return false
	}
	call, ok := w.stack[len(w.stack)-3].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(w.pf.Info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

func (w *effWalker) accessKind(sel *ast.SelectorExpr) (read, write bool) {
	if len(w.stack) < 2 {
		return true, false
	}
	switch parent := w.stack[len(w.stack)-2].(type) {
	case *ast.AssignStmt:
		for _, l := range parent.Lhs {
			if ast.Unparen(l) == sel {
				compound := parent.Tok != token.ASSIGN && parent.Tok != token.DEFINE
				return compound, true
			}
		}
		return true, false
	case *ast.IncDecStmt:
		return true, true
	case *ast.UnaryExpr:
		if parent.Op == token.AND {
			return true, true // address escapes: anything can happen to it
		}
	}
	return true, false
}

// plainTrackable limits plain-access recording to field types sync/atomic
// can also operate on.
func plainTrackable(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Info()&types.IsInteger != 0 || b.Kind() == types.UnsafePointer
	}
	return false
}

func (p *Program) field(id, name string) *FieldAccess {
	fa := p.fields[id]
	if fa == nil {
		fa = &FieldAccess{ID: id, Name: name}
		p.fields[id] = fa
	}
	return fa
}

func (p *Program) addEdge(from, to string, pos token.Pos, pf *ProgFunc, via string) bool {
	k := lockEdgeKey{from: from, to: to, pos: pos}
	if p.lockEdgeSet[k] {
		return false
	}
	p.lockEdgeSet[k] = true
	p.lockEdges = append(p.lockEdges, LockEdge{
		From: from, To: to, Pos: pos, Fn: pf.Fn, FnID: pf.ID, Via: via,
	})
	return true
}

// ---- whole-program fixpoint --------------------------------------------

// fixpoint propagates reachability facts (time/rand sources, raw obs
// lookups, transitive lock acquisitions and the ordering edges they imply)
// across the call graph until nothing changes. Every fact is monotone —
// booleans only flip to true, sets only grow — so termination is
// guaranteed; the via pointers are set exactly once, on the round a fact
// first arrives, which keeps explanation chains acyclic.
func (p *Program) fixpoint() {
	for k := range p.chanOps {
		p.chanKeys = append(p.chanKeys, k)
	}
	for id := range p.fields {
		p.fieldIDs = append(p.fieldIDs, id)
	}
	p.dynCache = make(map[string][]*ProgFunc)

	for changed := true; changed; {
		changed = false
		for _, pf := range p.funcs {
			eff := pf.Effects
			for _, cs := range pf.Calls {
				for _, cal := range p.callees(cs) {
					ce := cal.Effects
					if ce.ReachesTime && !eff.ReachesTime {
						eff.ReachesTime, eff.TimeVia = true, cs
						changed = true
					}
					if ce.ReachesRand && !eff.ReachesRand {
						eff.ReachesRand, eff.RandVia = true, cs
						changed = true
					}
					if ce.RawObs && !eff.RawObs && !pf.sanctionedObs {
						eff.RawObs, eff.ObsVia = true, cs
						changed = true
					}
					for l := range ce.Acquires {
						if !eff.Acquires[l] {
							eff.Acquires[l] = true
							changed = true
						}
						for _, h := range cs.Held {
							if h != l && p.addEdge(h, l, cs.Pos, pf, cal.ID) {
								changed = true
							}
						}
					}
				}
			}
		}
	}
}

// Callees resolves a call site to the loaded functions it may invoke:
// exactly one for a static call, every structurally matching concrete
// method for an interface call, none for targets outside the load.
func (p *Program) Callees(cs *CallSite) []*ProgFunc { return p.callees(cs) }

func (p *Program) callees(cs *CallSite) []*ProgFunc {
	if !cs.Dynamic {
		if pf := p.byID[cs.CalleeID]; pf != nil {
			return []*ProgFunc{pf}
		}
		return nil
	}
	p.dynMu.Lock()
	defer p.dynMu.Unlock()
	if impls, ok := p.dynCache[cs.CalleeID]; ok {
		return impls
	}
	var impls []*ProgFunc
	for _, pf := range p.funcs {
		if pf.Fn.Name() != cs.MethodName || pf.Decl.Recv == nil {
			continue
		}
		if methodNamesCover(pf, cs.IfaceNames) {
			impls = append(impls, pf)
		}
	}
	p.dynCache[cs.CalleeID] = impls
	return impls
}

// methodNamesCover reports whether pf's receiver type carries at least the
// interface's method names — structural implements by name, which stays
// correct across the source/export-data type-identity split (types from
// the two sides are never Identical, so types.Implements cannot be used).
func methodNamesCover(pf *ProgFunc, names []string) bool {
	sig, _ := pf.Fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := types.Unalias(recv).(*types.Named)
	if !ok {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	have := make(map[string]bool, ms.Len())
	for i := 0; i < ms.Len(); i++ {
		have[ms.At(i).Obj().Name()] = true
	}
	for _, n := range names {
		if !have[n] {
			return false
		}
	}
	return true
}

// ---- explanation chains ------------------------------------------------

// TimeChain explains how fn reaches a wall-clock source as a list of hop
// labels ending in the source name; empty when it does not.
func (p *Program) TimeChain(pf *ProgFunc) []string {
	return p.chain(pf,
		func(e *Effects) (*CallSite, string) { return e.TimeVia, e.TimeWhat },
		func(e *Effects) bool { return e.ReachesTime })
}

// RandChain is TimeChain for the global math/rand source.
func (p *Program) RandChain(pf *ProgFunc) []string {
	return p.chain(pf,
		func(e *Effects) (*CallSite, string) { return e.RandVia, e.RandWhat },
		func(e *Effects) bool { return e.ReachesRand })
}

// ObsChain is TimeChain for raw telemetry lookups.
func (p *Program) ObsChain(pf *ProgFunc) []string {
	return p.chain(pf,
		func(e *Effects) (*CallSite, string) { return e.ObsVia, e.ObsWhat },
		func(e *Effects) bool { return e.RawObs })
}

func (p *Program) chain(pf *ProgFunc, step func(*Effects) (*CallSite, string), has func(*Effects) bool) []string {
	var hops []string
	seen := make(map[string]bool)
	for cur := pf; cur != nil && !seen[cur.ID]; {
		seen[cur.ID] = true
		cs, what := step(cur.Effects)
		if cs == nil {
			if what != "" {
				hops = append(hops, what)
			}
			return hops
		}
		hops = append(hops, FuncLabel(cs.Callee))
		var next *ProgFunc
		for _, cal := range p.callees(cs) {
			if has(cal.Effects) {
				next = cal
				break
			}
		}
		cur = next
	}
	return hops
}

// FuncLabel renders a function for diagnostics: pkgname.Name, or
// pkgname.(Recv).Name for methods.
func FuncLabel(fn *types.Func) string {
	if fn == nil {
		return "?"
	}
	fn = fn.Origin()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return pkg + "(" + recvName(sig.Recv().Type()) + ")." + fn.Name()
	}
	return pkg + fn.Name()
}
