// SSA-lite: reaching-definition resolution over the def-use chains, with
// dominance approximated by the block stack dataflow.go records on every
// event. The full construction (phi nodes, dominator trees) is overkill
// for the straight-line-plus-guards code this repository writes; what the
// interval engine actually needs is "which definitions can this use
// observe", and that splits into three position-decidable cases:
//
//   - the latest earlier definition whose block extent encloses the use
//     (it post-dominates every older definition on the path to the use —
//     the kill);
//   - later-but-earlier-positioned definitions in non-enclosing blocks
//     (branch arms between the kill and the use — the phi operands);
//   - definitions positioned after the use but inside a loop that also
//     encloses the use (loop back edges — the loop phi operands).
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Span is a half-open source extent.
type Span struct {
	Start, End token.Pos
}

// Contains reports pos ∈ [Start, End].
func (s Span) Contains(pos token.Pos) bool { return s.Start <= pos && pos <= s.End }

// SSA is the per-function reaching-definition view.
type SSA struct {
	flow *FuncFlow
	// loops are the extents of every for/range statement in the body,
	// outermost first; a definition positioned after a use still reaches
	// it when some loop extent contains both.
	loops []Span
}

// BuildSSA prepares reaching-definition queries for one function.
func BuildSSA(flow *FuncFlow) *SSA {
	s := &SSA{flow: flow}
	ast.Inspect(flow.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			s.loops = append(s.loops, Span{n.Pos(), n.End()})
		case *ast.RangeStmt:
			s.loops = append(s.loops, Span{n.Pos(), n.End()})
		}
		return true
	})
	return s
}

// Loops returns the loop extents of the function body, in source order.
func (s *SSA) Loops() []Span { return s.loops }

// InLoop reports whether a position sits inside some loop extent.
func (s *SSA) InLoop(pos token.Pos) bool {
	for _, l := range s.loops {
		if l.Contains(pos) {
			return true
		}
	}
	return false
}

// sharesLoop reports whether one loop extent contains both positions —
// the back-edge condition under which a later definition reaches an
// earlier use.
func (s *SSA) sharesLoop(a, b token.Pos) bool {
	for _, l := range s.loops {
		if l.Contains(a) && l.Contains(b) {
			return true
		}
	}
	return false
}

// blockEncloses reports whether the event's recorded block extent covers
// the position. A nil block (parameter and result declarations) behaves
// as the function body: it encloses everything.
func (s *SSA) blockEncloses(ev *Event, at token.Pos) bool {
	if ev.Block == nil {
		return true
	}
	return ev.Block.Pos() <= at && at <= ev.Block.End()
}

// ReachingDefs returns the definitions of obj that can flow into a use at
// the given position, oldest first. An empty result means the object has
// no definition events at all (package-level, foreign).
func (s *SSA) ReachingDefs(obj types.Object, at token.Pos) []*Event {
	flow := s.flow
	idx := flow.byObj[obj]
	if len(idx) == 0 {
		return nil
	}
	// The kill: latest def before `at` whose block encloses `at`.
	killAt := token.NoPos
	for _, i := range idx {
		ev := &flow.Events[i]
		if ev.Kind == Def && ev.Pos < at && s.blockEncloses(ev, at) && ev.Pos > killAt {
			killAt = ev.Pos
		}
	}
	var out []*Event
	for _, i := range idx {
		ev := &flow.Events[i]
		if ev.Kind != Def {
			continue
		}
		switch {
		case ev.Pos == killAt:
			out = append(out, ev)
		case ev.Pos > killAt && ev.Pos < at:
			// Branch-arm definition between the kill and the use: may or
			// may not have executed.
			out = append(out, ev)
		case ev.Pos >= at && s.sharesLoop(ev.Pos, at):
			// Loop back edge: a textually later definition reaches the use
			// on the next iteration.
			out = append(out, ev)
		case killAt == token.NoPos && ev.Pos >= at:
			// Use before any definition (loop-carried into a guard, named
			// result read by defer): every definition may reach.
			out = append(out, ev)
		}
	}
	return out
}
