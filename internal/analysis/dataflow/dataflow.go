// Package dataflow is the intraprocedural dataflow layer under the
// wire-facing analyzers: def-use chains over the AST, a three-point
// abstract-value lattice (Clean < Bounded < Tainted) for values derived
// from untrusted wire input, and call summaries for functions within the
// same package, computed to a fixpoint.
//
// The model is deliberately coarse — flow sensitivity is approximated by
// source position (a bound check whose if-statement ends before a use
// dominates that use in the straight-line decoder code this repository
// writes), and struct fields are only tracked when they hold raw bytes.
// docs/STATIC_ANALYSIS.md spells out the approximations.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"rups/internal/analysis"
)

// Fact is a point in the taint lattice.
type Fact uint8

const (
	// Clean values carry no attacker influence.
	Clean Fact = iota
	// Bounded values derive from wire input but sit below a dominating
	// bound check (or are too narrow to matter, e.g. a single byte).
	Bounded
	// Tainted values derive from wire input with no bound applied:
	// letting one reach an allocation, an index, or a loop bound is the
	// trace.ReadFrom bug class.
	Tainted
)

// String names the fact for diagnostics and tests.
func (f Fact) String() string {
	switch f {
	case Bounded:
		return "bounded"
	case Tainted:
		return "tainted"
	default:
		return "clean"
	}
}

// join returns the least upper bound of two facts.
func join(a, b Fact) Fact {
	if a > b {
		return a
	}
	return b
}

// EventKind distinguishes definitions from uses in a def-use chain.
type EventKind uint8

const (
	// Def is a write: declaration, assignment, or compound assignment.
	Def EventKind = iota
	// Use is a read.
	Use
)

// Event is one definition or use of a function-local object.
type Event struct {
	Kind EventKind
	Obj  types.Object
	Pos  token.Pos
	// Rhs is the expression assigned at a Def; nil for parameters,
	// value-less declarations, and ++/--.
	Rhs ast.Expr
	// Compound marks x += y, x++ and friends: the new value joins the
	// previous one instead of replacing it.
	Compound bool
	// Container marks a range-value Def whose Rhs is the ranged
	// container, not the element value itself.
	Container bool
	// Block is the innermost block statement holding the event, used by
	// clients that need "same straight-line region" judgements.
	Block *ast.BlockStmt
}

// SinkKind classifies the places where a tainted integer does damage.
type SinkKind uint8

const (
	// SinkMake is a make() length or capacity argument.
	SinkMake SinkKind = iota
	// SinkIndex is a slice/array/string index expression.
	SinkIndex
	// SinkSliceBound is a low/high/max bound of a slice expression.
	SinkSliceBound
	// SinkLoopBound is an operand of a for-loop comparison or a
	// range-over-int operand.
	SinkLoopBound
)

// String names the sink for diagnostics.
func (k SinkKind) String() string {
	switch k {
	case SinkMake:
		return "make size"
	case SinkIndex:
		return "index"
	case SinkSliceBound:
		return "slice bound"
	default:
		return "loop bound"
	}
}

// Sink is one value position that must never receive a Tainted fact.
type Sink struct {
	Kind SinkKind
	// Val is the integer expression flowing into the sink.
	Val ast.Expr
}

// FuncFlow is the def-use chain of one function declaration, including
// any closures nested in its body (their events share the parent chain —
// positions stay linear).
type FuncFlow struct {
	Decl *ast.FuncDecl
	// Fn is the declaration's type object.
	Fn *types.Func
	// Events holds every Def and Use of function-local objects in
	// evaluation order: source-position order, except that reads inside
	// an assignment's right-hand side precede the left-hand side's Def.
	Events []Event
	// Sinks are the allocation/index/loop-bound positions in the body.
	Sinks []Sink

	byObj   map[types.Object][]int
	results map[types.Object]bool
	params  []types.Object
	guards  map[types.Object][]token.Pos // end positions of bound checks
	start   token.Pos
}

// EventsOf returns obj's events in evaluation order.
func (f *FuncFlow) EventsOf(obj types.Object) []Event {
	idx := f.byObj[obj]
	out := make([]Event, len(idx))
	for i, j := range idx {
		out[i] = f.Events[j]
	}
	return out
}

// Objects returns every local object with at least one event, in
// declaration-position order (deterministic).
func (f *FuncFlow) Objects() []types.Object {
	out := make([]types.Object, 0, len(f.byObj))
	for obj := range f.byObj {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// IsResult reports whether obj is a named result parameter of the
// function.
func (f *FuncFlow) IsResult(obj types.Object) bool { return f.results[obj] }

// guardedBetween reports whether a bound check for obj ends in (from, to].
func (f *FuncFlow) guardedBetween(obj types.Object, from, to token.Pos) bool {
	for _, end := range f.guards[obj] {
		if end > from && end <= to {
			return true
		}
	}
	return false
}

// Summary is what the taint engine knows about calls to a same-package
// function without re-analyzing it at every call site.
type Summary struct {
	// ReturnsTainted reports that some result derives from wire input
	// with no bound applied, independent of the arguments.
	ReturnsTainted bool
	// PassesThrough[i] reports that taint on argument i flows through to
	// a result.
	PassesThrough []bool
	// UnguardedParams[i] reports that parameter i reaches a sink inside
	// the function without a dominating bound check — passing a tainted
	// value there is as bad as the sink itself.
	UnguardedParams []bool
	// ParamNames mirrors the parameter list for diagnostics.
	ParamNames []string
}

// Analysis holds the per-package dataflow results.
type Analysis struct {
	pass      *analysis.Pass
	Flows     []*FuncFlow
	byDecl    map[*ast.FuncDecl]*FuncFlow
	summaries map[*types.Func]*Summary
	interp    *Interp

	// foreign resolves call summaries for functions outside this package.
	// The interprocedural Program installs it so cross-package calls see
	// the callee's summary instead of Clean; nil means same-package only.
	foreign func(*types.Func) *Summary
}

// New builds def-use chains for every function declaration in the pass
// and computes call summaries to a fixpoint.
func New(pass *analysis.Pass) *Analysis {
	a := &Analysis{
		pass:      pass,
		byDecl:    make(map[*ast.FuncDecl]*FuncFlow),
		summaries: make(map[*types.Func]*Summary),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			flow := buildFlow(pass, fd)
			a.Flows = append(a.Flows, flow)
			a.byDecl[fd] = flow
		}
	}
	a.computeSummaries()
	a.interp = newInterp(a)
	return a
}

// SummaryOf returns the call summary for a same-package function, or nil.
func (a *Analysis) SummaryOf(fn *types.Func) *Summary { return a.summaries[fn] }

// SummaryAny resolves a call summary for any loaded function: same-package
// directly, cross-package through the interprocedural program's resolver
// when one is installed.
func (a *Analysis) SummaryAny(fn *types.Func) *Summary {
	if s := a.summaries[fn]; s != nil {
		return s
	}
	if a.foreign != nil {
		return a.foreign(fn)
	}
	return nil
}

// SetForeign installs a resolver for out-of-package call summaries. After
// changing it, run Recompute (usually from the Program's global fixpoint
// loop) so summaries that depend on foreign callees climb the lattice.
func (a *Analysis) SetForeign(resolve func(*types.Func) *Summary) { a.foreign = resolve }

// Recompute runs one round of summary updates over every function and
// reports whether anything changed. The Program alternates Recompute
// across packages until no package changes — the global fixpoint.
// Summaries only climb the lattice, so the iteration terminates.
func (a *Analysis) Recompute() bool {
	changed := false
	for _, flow := range a.Flows {
		if flow.Fn == nil {
			continue
		}
		if a.updateSummary(flow, a.summaries[flow.Fn]) {
			changed = true
		}
	}
	return changed
}

// ---- flow construction -------------------------------------------------

func buildFlow(pass *analysis.Pass, fd *ast.FuncDecl) *FuncFlow {
	flow := &FuncFlow{
		Decl:    fd,
		byObj:   make(map[types.Object][]int),
		results: make(map[types.Object]bool),
		guards:  make(map[types.Object][]token.Pos),
		start:   fd.Pos(),
	}
	if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		flow.Fn = obj
	}
	info := pass.TypesInfo

	declareFields := func(fl *ast.FieldList, result bool, param bool) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				if result {
					flow.results[obj] = true
				}
				if param {
					flow.params = append(flow.params, obj)
				}
				flow.add(Event{Kind: Def, Obj: obj, Pos: name.Pos()})
			}
		}
	}
	declareFields(fd.Recv, false, false)
	declareFields(fd.Type.Params, false, true)
	declareFields(fd.Type.Results, true, false)

	// First pass: classify assignment left-hand sides so the ident walk
	// below can tell writes from reads, and attach right-hand sides.
	type lhsInfo struct {
		rhs       ast.Expr
		compound  bool
		container bool
	}
	lhs := make(map[*ast.Ident]lhsInfo)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				id, ok := ast.Unparen(l).(*ast.Ident)
				if !ok {
					continue
				}
				li := lhsInfo{compound: n.Tok != token.ASSIGN && n.Tok != token.DEFINE}
				if len(n.Rhs) == len(n.Lhs) {
					li.rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					li.rhs = n.Rhs[0]
				}
				lhs[id] = li
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				lhs[id] = lhsInfo{compound: true}
			}
		case *ast.RangeStmt:
			if id, ok := n.Key.(*ast.Ident); ok && id != nil {
				lhs[id] = lhsInfo{} // index/key: bounded by the container
			}
			if id, ok := n.Value.(*ast.Ident); ok && id != nil {
				lhs[id] = lhsInfo{rhs: n.X, container: true}
			}
		}
		return true
	})

	// Second pass: one event per ident. ast.Inspect calls the callback
	// with nil after every visited node — not just block statements — so
	// the stack must mirror every node: push each non-nil node, pop on
	// each nil, and scan down the stack for the innermost enclosing
	// *ast.BlockStmt.
	var stack []ast.Node
	innermost := func() *ast.BlockStmt {
		for i := len(stack) - 1; i >= 0; i-- {
			if b, ok := stack[i].(*ast.BlockStmt); ok {
				return b
			}
		}
		return fd.Body
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if obj, ok := info.Defs[id].(*types.Var); ok {
			li := lhs[id]
			flow.add(Event{Kind: Def, Obj: obj, Pos: id.Pos(), Rhs: li.rhs,
				Compound: li.compound, Container: li.container, Block: innermost()})
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if li, isLHS := lhs[id]; isLHS {
			if li.compound {
				flow.add(Event{Kind: Use, Obj: obj, Pos: id.Pos(), Block: innermost()})
			}
			flow.add(Event{Kind: Def, Obj: obj, Pos: id.Pos(), Rhs: li.rhs,
				Compound: li.compound, Container: li.container, Block: innermost()})
			return true
		}
		flow.add(Event{Kind: Use, Obj: obj, Pos: id.Pos(), Block: innermost()})
		return true
	})

	// A naked return in a function with named results reads every one of
	// them — that is how a shadowed err silently resurfaces.
	if len(flow.results) > 0 {
		walkSkippingFuncLits(fd.Body, func(n ast.Node) {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 0 {
				return
			}
			for obj := range flow.results {
				flow.add(Event{Kind: Use, Obj: obj, Pos: ret.Pos()})
			}
		})
	}

	// Sort events into evaluation order. Raw source position is almost
	// right, with two corrections: at `x += f()` the read precedes the
	// write at the same position, and the RHS of an assignment evaluates
	// before its LHS is written even though the LHS ident sits first in
	// the source — `err = fmt.Errorf("...: %w", err)` reads the previous
	// error, it does not clobber it unread. A Use positioned inside a
	// Def's Rhs extent therefore sorts just before that Def (the
	// innermost such Def, for nested assignments).
	key := make([]token.Pos, len(flow.Events))
	for i := range flow.Events {
		ev := &flow.Events[i]
		key[i] = ev.Pos
		if ev.Kind != Use {
			continue
		}
		best := token.NoPos
		for j := range flow.Events {
			d := &flow.Events[j]
			if d.Kind == Def && d.Rhs != nil && d.Pos < ev.Pos &&
				d.Rhs.Pos() <= ev.Pos && ev.Pos < d.Rhs.End() && d.Pos > best {
				best = d.Pos
			}
		}
		if best != token.NoPos {
			key[i] = best
		}
	}
	order := make([]int, len(flow.Events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		i, j := order[x], order[y]
		a, b := &flow.Events[i], &flow.Events[j]
		if key[i] != key[j] {
			return key[i] < key[j]
		}
		if a.Kind != b.Kind {
			return a.Kind == Use // read-before-write
		}
		return a.Pos < b.Pos
	})
	sorted := make([]Event, len(flow.Events))
	for x, i := range order {
		sorted[x] = flow.Events[i]
	}
	flow.Events = sorted
	flow.byObj = make(map[types.Object][]int)
	for i, ev := range flow.Events {
		flow.byObj[ev.Obj] = append(flow.byObj[ev.Obj], i)
	}

	collectGuards(flow, info)
	collectSinks(flow, info)
	return flow
}

func (f *FuncFlow) add(ev Event) { f.Events = append(f.Events, ev) }

// walkSkippingFuncLits visits nodes without descending into closures.
func walkSkippingFuncLits(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// collectGuards records bound checks: an if-statement whose condition
// mentions a local object and whose body either diverts control flow
// (return / break / continue / panic / os.Exit / log.Fatal) or clamps the
// object by assigning it. Code positioned after the if-statement runs
// with the object range-checked.
func collectGuards(flow *FuncFlow, info *types.Info) {
	ast.Inspect(flow.Decl.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		mentioned := objectsIn(info, ifs.Cond)
		if len(mentioned) == 0 {
			return true
		}
		if bodyDiverts(ifs.Body) {
			for obj := range mentioned {
				flow.guards[obj] = append(flow.guards[obj], ifs.End())
			}
			return true
		}
		assigned := assignedObjects(ifs.Body, info)
		for obj := range mentioned {
			if assigned[obj] {
				flow.guards[obj] = append(flow.guards[obj], ifs.End())
			}
		}
		return true
	})
}

// objectsIn collects the local variable objects mentioned in an expression.
func objectsIn(info *types.Info, e ast.Expr) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := info.Uses[id].(*types.Var); ok && !obj.IsField() {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// assignedObjects collects objects written anywhere in a statement.
func assignedObjects(root ast.Node, info *types.Info) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				record(l)
			}
		case *ast.IncDecStmt:
			record(n.X)
		}
		return true
	})
	return out
}

// bodyDiverts reports whether executing the block can only continue past
// the enclosing if by failing the condition: it returns, breaks,
// continues, panics, or exits (closures excluded).
func bodyDiverts(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt, *ast.BranchStmt:
			found = true
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "panic" {
					found = true
				}
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				if name == "Exit" || strings.HasPrefix(name, "Fatal") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// collectSinks enumerates the allocation, indexing, and loop-bound
// positions in a function body.
func collectSinks(flow *FuncFlow, info *types.Info) {
	addVal := func(kind SinkKind, val ast.Expr) {
		if val != nil {
			flow.Sinks = append(flow.Sinks, Sink{Kind: kind, Val: val})
		}
	}
	ast.Inspect(flow.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "make" {
					for _, arg := range n.Args[1:] {
						addVal(SinkMake, arg)
					}
				}
			}
		case *ast.IndexExpr:
			if tv, ok := info.Types[n.Index]; ok && tv.IsType() {
				return true // generic instantiation, not an index
			}
			if indexableSequence(info.TypeOf(n.X)) {
				addVal(SinkIndex, n.Index)
			}
		case *ast.SliceExpr:
			addVal(SinkSliceBound, n.Low)
			addVal(SinkSliceBound, n.High)
			addVal(SinkSliceBound, n.Max)
		case *ast.ForStmt:
			if n.Cond == nil {
				return true
			}
			ast.Inspect(n.Cond, func(c ast.Node) bool {
				if cmp, ok := c.(*ast.BinaryExpr); ok {
					switch cmp.Op {
					case token.LSS, token.LEQ, token.GTR, token.GEQ:
						addVal(SinkLoopBound, cmp.X)
						addVal(SinkLoopBound, cmp.Y)
					}
				}
				return true
			})
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					addVal(SinkLoopBound, n.X) // range-over-int
				}
			}
		}
		return true
	})
}

// indexableSequence reports whether indexing t walks contiguous memory
// (slices, arrays, strings — not maps, whose keys are never out of range).
func indexableSequence(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	}
	return false
}
