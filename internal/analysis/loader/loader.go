// Package loader type-checks Go packages for static analysis without any
// dependency beyond the standard library and the go toolchain itself. It
// shells out to `go list -export` to enumerate packages and to obtain
// compiler export data for every dependency (standard library included), so
// only the packages under analysis are type-checked from source. This is
// what lets cmd/rups-lint run offline with an empty module cache.
package loader

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package under analysis.
type Package struct {
	Path      string // import path
	Name      string // package name
	Dir       string // directory holding the sources
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors holds any type-checking problems encountered. Analysis can
	// proceed on a partially checked package, but diagnostics may be
	// incomplete.
	TypeErrors []error
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *listError
}

type listError struct {
	Err string
}

// Load type-checks the packages matching the go-list patterns, resolved
// relative to dir. Test files are not included: the linters audit shipping
// code. The returned packages share one FileSet.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadTags(dir, nil, patterns...)
}

// LoadTags is Load under an explicit build-tag set: file selection (and
// the export data compiled for dependencies) follows `go list -tags`, so
// an analyzer can audit every build variant of a package — the default
// file set with a nil tag list, or e.g. []string{"fastpath","telemetry"}
// for a tagged variant.
func LoadTags(dir string, tags []string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Standard,Error",
	}
	if len(tags) > 0 {
		args = append(args, "-tags="+strings.Join(tags, ","))
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("loader: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string) // import path → export data file
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			cp := p
			targets = append(targets, &cp)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("loader: no packages matched %v", patterns)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg := &Package{
		Path:      lp.ImportPath,
		Name:      lp.Name,
		Dir:       lp.Dir,
		Fset:      fset,
		Syntax:    files,
		TypesInfo: info,
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if tpkg == nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
