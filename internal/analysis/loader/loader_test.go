package loader

import (
	"path/filepath"
	"runtime"
	"testing"
)

// repoRoot returns the module root (two levels above this package).
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Join(filepath.Dir(file), "..", "..", "..")
}

func TestLoadTypeChecksModulePackage(t *testing.T) {
	pkgs, err := Load(repoRoot(t), "./internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "rups/internal/stats" || p.Name != "stats" {
		t.Fatalf("unexpected package identity %q %q", p.Path, p.Name)
	}
	if len(p.TypeErrors) != 0 {
		t.Fatalf("type errors: %v", p.TypeErrors)
	}
	if p.Types.Scope().Lookup("Pearson") == nil {
		t.Fatal("stats.Pearson not found in package scope")
	}
	if len(p.Syntax) == 0 {
		t.Fatal("no syntax trees")
	}
}

func TestLoadResolvesIntraModuleImports(t *testing.T) {
	// core imports rups/internal/stats and rups/internal/trajectory; both
	// must come in through export data.
	pkgs, err := Load(repoRoot(t), "./internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if len(pkgs[0].TypeErrors) != 0 {
		t.Fatalf("type errors: %v", pkgs[0].TypeErrors)
	}
}

func TestLoadManyPatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	pkgs, err := Load(repoRoot(t), "./internal/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("expected the full internal tree, got %d packages", len(pkgs))
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) != 0 {
			t.Fatalf("%s: type errors: %v", p.Path, p.TypeErrors)
		}
	}
}
