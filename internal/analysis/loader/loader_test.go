package loader

import (
	"path/filepath"
	"runtime"
	"testing"
)

// repoRoot returns the module root (two levels above this package).
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Join(filepath.Dir(file), "..", "..", "..")
}

func TestLoadTypeChecksModulePackage(t *testing.T) {
	pkgs, err := Load(repoRoot(t), "./internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "rups/internal/stats" || p.Name != "stats" {
		t.Fatalf("unexpected package identity %q %q", p.Path, p.Name)
	}
	if len(p.TypeErrors) != 0 {
		t.Fatalf("type errors: %v", p.TypeErrors)
	}
	if p.Types.Scope().Lookup("Pearson") == nil {
		t.Fatal("stats.Pearson not found in package scope")
	}
	if len(p.Syntax) == 0 {
		t.Fatal("no syntax trees")
	}
}

func TestLoadResolvesIntraModuleImports(t *testing.T) {
	// core imports rups/internal/stats and rups/internal/trajectory; both
	// must come in through export data.
	pkgs, err := Load(repoRoot(t), "./internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if len(pkgs[0].TypeErrors) != 0 {
		t.Fatalf("type errors: %v", pkgs[0].TypeErrors)
	}
}

func TestLoadMultiPackage(t *testing.T) {
	// trajectory and v2v in one load, where v2v imports trajectory: the
	// import must resolve against the same export data the other pattern
	// was compiled from, and each package must see the other's types.
	pkgs, err := Load(repoRoot(t), "./internal/trajectory", "./internal/v2v")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		if len(p.TypeErrors) != 0 {
			t.Fatalf("%s: type errors: %v", p.Path, p.TypeErrors)
		}
		byPath[p.Path] = p
	}
	traj, ok := byPath["rups/internal/trajectory"]
	if !ok {
		t.Fatal("rups/internal/trajectory not loaded")
	}
	v2v, ok := byPath["rups/internal/v2v"]
	if !ok {
		t.Fatal("rups/internal/v2v not loaded")
	}
	// The cross-package dependency must be wired: v2v's Delta.Marks field
	// is typed with trajectory.GeoMark, and that named type must be the
	// trajectory package's own object, not a stub.
	geoMark := traj.Types.Scope().Lookup("GeoMark")
	if geoMark == nil {
		t.Fatal("trajectory.GeoMark not found")
	}
	delta := v2v.Types.Scope().Lookup("Delta")
	if delta == nil {
		t.Fatal("v2v.Delta not found")
	}
	found := false
	for _, imp := range v2v.Types.Imports() {
		if imp.Path() == "rups/internal/trajectory" {
			found = true
		}
	}
	if !found {
		t.Errorf("v2v does not record its import of trajectory: %v", v2v.Types.Imports())
	}
}

func TestLoadManyPatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	pkgs, err := Load(repoRoot(t), "./internal/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("expected the full internal tree, got %d packages", len(pkgs))
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) != 0 {
			t.Fatalf("%s: type errors: %v", p.Path, p.TypeErrors)
		}
	}
}
