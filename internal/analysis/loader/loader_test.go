package loader

import (
	"path/filepath"
	"runtime"
	"testing"
)

// repoRoot returns the module root (two levels above this package).
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Join(filepath.Dir(file), "..", "..", "..")
}

func TestLoadTypeChecksModulePackage(t *testing.T) {
	pkgs, err := Load(repoRoot(t), "./internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "rups/internal/stats" || p.Name != "stats" {
		t.Fatalf("unexpected package identity %q %q", p.Path, p.Name)
	}
	if len(p.TypeErrors) != 0 {
		t.Fatalf("type errors: %v", p.TypeErrors)
	}
	if p.Types.Scope().Lookup("Pearson") == nil {
		t.Fatal("stats.Pearson not found in package scope")
	}
	if len(p.Syntax) == 0 {
		t.Fatal("no syntax trees")
	}
}

func TestLoadResolvesIntraModuleImports(t *testing.T) {
	// core imports rups/internal/stats and rups/internal/trajectory; both
	// must come in through export data.
	pkgs, err := Load(repoRoot(t), "./internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if len(pkgs[0].TypeErrors) != 0 {
		t.Fatalf("type errors: %v", pkgs[0].TypeErrors)
	}
}

func TestLoadMultiPackage(t *testing.T) {
	// trajectory and v2v in one load, where v2v imports trajectory: the
	// import must resolve against the same export data the other pattern
	// was compiled from, and each package must see the other's types.
	pkgs, err := Load(repoRoot(t), "./internal/trajectory", "./internal/v2v")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		if len(p.TypeErrors) != 0 {
			t.Fatalf("%s: type errors: %v", p.Path, p.TypeErrors)
		}
		byPath[p.Path] = p
	}
	traj, ok := byPath["rups/internal/trajectory"]
	if !ok {
		t.Fatal("rups/internal/trajectory not loaded")
	}
	v2v, ok := byPath["rups/internal/v2v"]
	if !ok {
		t.Fatal("rups/internal/v2v not loaded")
	}
	// The cross-package dependency must be wired: v2v's Delta.Marks field
	// is typed with trajectory.GeoMark, and that named type must be the
	// trajectory package's own object, not a stub.
	geoMark := traj.Types.Scope().Lookup("GeoMark")
	if geoMark == nil {
		t.Fatal("trajectory.GeoMark not found")
	}
	delta := v2v.Types.Scope().Lookup("Delta")
	if delta == nil {
		t.Fatal("v2v.Delta not found")
	}
	found := false
	for _, imp := range v2v.Types.Imports() {
		if imp.Path() == "rups/internal/trajectory" {
			found = true
		}
	}
	if !found {
		t.Errorf("v2v does not record its import of trajectory: %v", v2v.Types.Imports())
	}
}

func TestLoadTagsSelectsBuildVariant(t *testing.T) {
	dir := filepath.Join(repoRoot(t), "internal", "analysis", "testdata", "src")

	lookup := func(tags []string) map[string]bool {
		t.Helper()
		pkgs, err := LoadTags(dir, tags, "./tagmod")
		if err != nil {
			t.Fatalf("LoadTags(%v): %v", tags, err)
		}
		if len(pkgs) != 1 {
			t.Fatalf("LoadTags(%v): got %d packages, want 1", tags, len(pkgs))
		}
		if len(pkgs[0].TypeErrors) != 0 {
			t.Fatalf("LoadTags(%v): type errors: %v", tags, pkgs[0].TypeErrors)
		}
		have := make(map[string]bool)
		for _, name := range []string{"Always", "Mode", "FastOnly", "Telemetry"} {
			have[name] = pkgs[0].Types.Scope().Lookup(name) != nil
		}
		return have
	}

	// Default variant: the !fastpath file wins, no telemetry.
	def := lookup(nil)
	if !def["Always"] || !def["Mode"] {
		t.Errorf("default variant missing shared declarations: %v", def)
	}
	if def["FastOnly"] || def["Telemetry"] {
		t.Errorf("default variant leaked tagged declarations: %v", def)
	}

	// Single tag swaps the Mode implementation and brings FastOnly in.
	fast := lookup([]string{"fastpath"})
	if !fast["FastOnly"] || fast["Telemetry"] {
		t.Errorf("fastpath variant has wrong declaration set: %v", fast)
	}

	// Multiple tags compose: both tag-gated files are in the package.
	both := lookup([]string{"fastpath", "telemetry"})
	if !both["FastOnly"] || !both["Telemetry"] || !both["Always"] {
		t.Errorf("fastpath+telemetry variant has wrong declaration set: %v", both)
	}
}

func TestLoadManyPatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	pkgs, err := Load(repoRoot(t), "./internal/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("expected the full internal tree, got %d packages", len(pkgs))
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) != 0 {
			t.Fatalf("%s: type errors: %v", p.Path, p.TypeErrors)
		}
	}
}
