package analysis

import (
	"go/format"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// fixtureFile writes src into a temp dir and returns its path.
func fixtureFile(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "fixture.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// edit builds a TextEdit over the half-open byte range [start, end) of file.
func edit(file string, start, end int, newText string) TextEdit {
	return TextEdit{
		Pos:     token.Position{Filename: file, Offset: start},
		End:     token.Position{Filename: file, Offset: end},
		NewText: newText,
	}
}

func TestApplyFixesInsertsAndFormats(t *testing.T) {
	src := "package p\n\nfunc f() []int {\n\tout := make([]int, 0)\n\treturn out\n}\n"
	path := fixtureFile(t, src)
	// Insert a capacity argument after the zero length of make([]int, 0).
	at := len("package p\n\nfunc f() []int {\n\tout := make([]int, 0")
	diags := []Diagnostic{{
		Analyzer: "allocdiscipline",
		Pos:      token.Position{Filename: path, Line: 4},
		Message:  "preallocate",
		Fixes:    []Fix{{Message: "add capacity", Edits: []TextEdit{edit(path, at, at, ", 8")}}},
	}}

	res, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Skipped != 0 {
		t.Fatalf("applied=%d skipped=%d, want 1/0", res.Applied, res.Skipped)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "package p\n\nfunc f() []int {\n\tout := make([]int, 0, 8)\n\treturn out\n}\n"
	if string(got) != want {
		t.Errorf("rewritten file:\n%s\nwant:\n%s", got, want)
	}
	// The result must already be gofmt-clean: formatting is a fixed point.
	formatted, err := format.Source(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(formatted) != string(got) {
		t.Error("ApplyFixes output is not gofmt-clean")
	}
}

func TestApplyFixesSkipsOverlapping(t *testing.T) {
	src := "package p\n\nvar x = 1\n"
	path := fixtureFile(t, src)
	at := len("package p\n\nvar x = ")
	diags := []Diagnostic{
		{
			Analyzer: "a", Pos: token.Position{Filename: path, Line: 3}, Message: "first",
			Fixes: []Fix{{Message: "first", Edits: []TextEdit{edit(path, at, at+1, "2")}}},
		},
		{
			Analyzer: "b", Pos: token.Position{Filename: path, Line: 3}, Message: "second",
			Fixes: []Fix{{Message: "conflicts", Edits: []TextEdit{edit(path, at, at+1, "3")}}},
		},
	}
	res, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Skipped != 1 {
		t.Fatalf("applied=%d skipped=%d, want 1/1", res.Applied, res.Skipped)
	}
	got, _ := os.ReadFile(path)
	if want := "package p\n\nvar x = 2\n"; string(got) != want {
		t.Errorf("file is %q, want %q (first fix wins, second skipped whole)", got, want)
	}
}

func TestApplyFixesIdempotent(t *testing.T) {
	// A fix whose edit range no longer exists (already applied, file now
	// shorter there) must fail loudly, and applying an empty diagnostic
	// set must not touch the file — together these are the driver's
	// "-fix twice is a no-op" contract: the second run recomputes
	// diagnostics, finds none, and applies nothing.
	src := "package p\n\nvar x = 1\n"
	path := fixtureFile(t, src)
	res, err := ApplyFixes(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 0 || res.Applied != 0 {
		t.Fatalf("empty ApplyFixes rewrote files: %+v", res)
	}
	got, _ := os.ReadFile(path)
	if string(got) != src {
		t.Error("file changed with no fixes applied")
	}
}

// TestBaselinePruneRetiresSuppressed is the satellite contract: when a
// boundsproof-style suppression fact retires findings, a subsequent Prune
// marks exactly that budget stale — with count accounting when only part
// of an entry's findings are covered — and preserves `why:` on what stays.
func TestBaselinePruneRetiresSuppressed(t *testing.T) {
	root := "/repo"
	file := "/repo/internal/eval/conditions.go"
	diags := []Diagnostic{
		{Analyzer: "obsdiscipline", Pos: token.Position{Filename: file, Line: 10, Offset: 100}, Message: "observation copied per iteration"},
		{Analyzer: "obsdiscipline", Pos: token.Position{Filename: file, Line: 20, Offset: 200}, Message: "observation copied per iteration"},
		{Analyzer: "timedet", Pos: token.Position{Filename: file, Line: 30, Offset: 300}, Message: "wall clock read in replay path"},
	}
	base := NewBaseline(diags, root)
	for i := range base.Entries {
		base.Entries[i].Why = "accepted: " + base.Entries[i].Analyzer
	}

	// A fresh run where boundsproof proved the loop at line 10 bounded:
	// its fact covers offsets [90, 150), retiring one of the two
	// obsdiscipline findings.
	fact := SuppressRange{
		Analyzer: "obsdiscipline",
		Start:    token.Position{Filename: file, Offset: 90},
		End:      token.Position{Filename: file, Offset: 150},
		Why:      "loop provably executes at most 5 iterations",
	}
	surviving, dropped := applySuppressions(diags, []SuppressRange{fact})
	if dropped != 1 {
		t.Fatalf("suppression dropped %d diagnostics, want 1", dropped)
	}

	kept, stale := base.Prune(surviving, root)
	if len(stale) != 1 {
		t.Fatalf("stale entries = %d, want 1 (the suppressed finding's budget)", len(stale))
	}
	if stale[0].Analyzer != "obsdiscipline" || stale[0].Count != 1 {
		t.Errorf("stale = %+v, want obsdiscipline count 1", stale[0])
	}
	// The other obsdiscipline finding still fires, so its entry survives
	// with the reduced count and the justification intact.
	var foundObs, foundTime bool
	for _, e := range kept.Entries {
		switch e.Analyzer {
		case "obsdiscipline":
			foundObs = true
			if e.Count != 1 {
				t.Errorf("kept obsdiscipline count = %d, want 1", e.Count)
			}
			if e.Why != "accepted: obsdiscipline" {
				t.Errorf("kept entry lost its why: %q", e.Why)
			}
		case "timedet":
			foundTime = true
			if e.Why != "accepted: timedet" {
				t.Errorf("timedet entry lost its why: %q", e.Why)
			}
		}
	}
	if !foundObs || !foundTime {
		t.Errorf("kept entries missing: obs=%v time=%v (%+v)", foundObs, foundTime, kept.Entries)
	}
}
