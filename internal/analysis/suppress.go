package analysis

import (
	"go/token"
	"sort"
)

// Suppression facts let one analyzer retire another's diagnostics with a
// proof instead of a human-written ignore. The canonical producer is
// boundsproof: when the interval engine proves a loop executes at most N
// times, the per-iteration findings of cost-oriented analyzers inside
// that loop stop being interesting, and the fact carries the proof in Why
// so `-prune-baseline rewrite` can retire the baseline entry mechanically
// and auditable-y.
//
// A fact is scoped: it names the target analyzer and a half-open source
// range [Start, End). It never crosses files, and it only fires when the
// producing analyzer is in the roster — running `-only obsdiscipline`
// reports the raw findings.

// SuppressRange retires diagnostics of one analyzer inside a source range.
type SuppressRange struct {
	// Analyzer is the target whose diagnostics are retired — not the
	// analyzer that produced the fact.
	Analyzer string
	// Start and End delimit the half-open byte range [Start, End) in one
	// file; a diagnostic is covered when its position's offset falls
	// inside and the filename matches.
	Start, End token.Position
	// Why is the machine-generated proof, e.g. "loop provably executes at
	// most 5 iterations". It is surfaced by -debug and in tests.
	Why string
}

// covers reports whether the diagnostic falls inside the fact's range.
func (s SuppressRange) covers(d Diagnostic) bool {
	return s.Analyzer == d.Analyzer &&
		s.Start.Filename == d.Pos.Filename &&
		s.Start.Offset <= d.Pos.Offset &&
		d.Pos.Offset < s.End.Offset
}

// Suppress records a suppression fact: diagnostics of the target analyzer
// positioned in [start, end) of this pass's fileset are dropped after all
// analyzers have run, with why recorded as the proof.
func (p *Pass) Suppress(target string, start, end token.Pos, why string) {
	p.supps = append(p.supps, SuppressRange{
		Analyzer: target,
		Start:    p.Fset.Position(start),
		End:      p.Fset.Position(end),
		Why:      why,
	})
}

// Suppressions exposes the facts recorded so far, for tests and -debug.
func (p *Pass) Suppressions() []SuppressRange {
	return p.supps
}

// applySuppressions drops every diagnostic covered by a fact and returns
// the survivors plus the number dropped. Facts produced by an analyzer in
// one package may cover diagnostics from any package: matching is by
// file and offset, which are process-global in one run.
func applySuppressions(diags []Diagnostic, supps []SuppressRange) (kept []Diagnostic, dropped int) {
	if len(supps) == 0 {
		return diags, 0
	}
	// Bucket facts by file so the common case (no facts for this file)
	// costs one map probe per diagnostic.
	byFile := make(map[string][]SuppressRange)
	for _, s := range supps {
		byFile[s.Start.Filename] = append(byFile[s.Start.Filename], s)
	}
	kept = diags[:0]
	for _, d := range diags {
		covered := false
		for _, s := range byFile[d.Pos.Filename] {
			if s.covers(d) {
				covered = true
				break
			}
		}
		if covered {
			dropped++
			continue
		}
		kept = append(kept, d)
	}
	return kept, dropped
}

// sortSuppressions orders facts for deterministic -debug output.
func sortSuppressions(supps []SuppressRange) {
	sort.Slice(supps, func(i, j int) bool {
		a, b := supps[i], supps[j]
		if a.Start.Filename != b.Start.Filename {
			return a.Start.Filename < b.Start.Filename
		}
		if a.Start.Offset != b.Start.Offset {
			return a.Start.Offset < b.Start.Offset
		}
		return a.Analyzer < b.Analyzer
	})
}
