package lockorder_test

import (
	"testing"

	"rups/internal/analysis/analysistest"
	"rups/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "../testdata", lockorder.Analyzer, "lockorder")
}
