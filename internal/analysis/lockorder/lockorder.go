// Package lockorder flags lock-acquisition-order cycles across
// sync.Mutex/RWMutex pairs, interprocedurally: the dataflow program
// records every "lock A was held while lock B was acquired" edge —
// including acquisitions reached through calls, in any loaded package —
// and any cycle in that graph is a potential deadlock (two goroutines
// taking the locks in opposite orders block each other forever).
//
// It extends the lockcheck family from copy mistakes to ordering
// mistakes; the graph is global, so an engine function holding its mutex
// while calling into sim is ordered against sim's own acquisitions.
package lockorder

import (
	"strings"

	"rups/internal/analysis"
	"rups/internal/analysis/dataflow"
)

// Analyzer flags interprocedural lock-order cycles.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "flags lock-acquisition-order cycles across functions and packages " +
		"(opposite-order acquisition deadlocks)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	prog := dataflow.ProgramOf(pass)
	edges := prog.LockEdges()
	if len(edges) == 0 {
		return nil
	}
	// adjacency over lock IDs; an edge is part of a cycle iff its target
	// can reach its source.
	next := make(map[string][]string)
	for _, e := range edges {
		next[e.From] = append(next[e.From], e.To)
	}
	for _, e := range edges {
		fn := prog.FuncByID(e.FnID)
		if fn == nil || fn.Pkg.Path() != pass.Pkg.Path() {
			continue
		}
		if !reaches(next, e.To, e.From) {
			continue
		}
		via := ""
		if e.Via != "" {
			via = " (acquired via call to " + shortFunc(e.Via) + ")"
		}
		pass.Reportf(e.Pos, "acquiring %s while holding %s%s conflicts with the "+
			"opposite acquisition order elsewhere: lock-order cycle, potential deadlock",
			shortLock(e.To), shortLock(e.From), via)
	}
	return nil
}

// reaches reports whether from can reach to in the lock graph.
func reaches(next map[string][]string, from, to string) bool {
	seen := map[string]bool{from: true}
	work := []string{from}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		if cur == to {
			return true
		}
		for _, n := range next[cur] {
			if !seen[n] {
				seen[n] = true
				work = append(work, n)
			}
		}
	}
	return false
}

// shortLock trims the module path prefix off a lock ID for readability:
// "rups/internal/engine.Engine.mu" reads as "engine.Engine.mu".
func shortLock(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}

// shortFunc does the same for canonical function IDs.
func shortFunc(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}
