package errflow_test

import (
	"testing"

	"rups/internal/analysis/analysistest"
	"rups/internal/analysis/errflow"
)

func TestErrflow(t *testing.T) {
	analysistest.Run(t, "../testdata", errflow.Analyzer, "errflow")
}
