// Package errflow audits how error values travel: a dropped or
// overwritten error silently converts an I/O or decode failure into a
// plausible wrong answer, which in this codebase means a corrupt trace
// replayed as truth or a half-written CSV shipped as results.
//
// Four checks, all on the def-use chains from internal/analysis/dataflow:
//
//   - a call statement discarding an error-bearing result entirely
//     (fmt's print family, strings.Builder and bytes.Buffer writes are
//     exempt: they are documented never to fail or to be best-effort);
//   - an error result discarded via _ in an assignment;
//   - an error variable overwritten by a second assignment in the same
//     block with no read in between — the first failure is lost;
//   - a := re-declaration shadowing an outer error variable that is read
//     again after the inner scope ends: the shadowed error never reaches
//     that read, so the function reports stale success.
//
// Deferred calls are exempt from the dropped-error check: defers are
// cleanup, and the idiomatic `defer f.Close()` on a read path is not a
// bug. Closing a written file is different — do it explicitly and check.
package errflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rups/internal/analysis"
	"rups/internal/analysis/dataflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "errflow",
	Doc: "flags dropped, overwritten, _-discarded, and shadow-lost error " +
		"values (outside deferred cleanup and fmt's print family)",
	Run: run,
}

var errorType = types.Universe.Lookup("error").Type()

func run(pass *analysis.Pass) error {
	checkDiscards(pass)
	df := dataflow.AnalysisOf(pass)
	for _, flow := range df.Flows {
		checkOverwrites(pass, flow)
		checkNeverRead(pass, flow)
		checkShadows(pass, flow)
	}
	return nil
}

// ---- discards ----------------------------------------------------------

// checkDiscards flags expression statements that drop an error-bearing
// result and assignments that discard an error into _.
func checkDiscards(pass *analysis.Pass) {
	pass.Preorder(func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, ok := ast.Unparen(n.X).(*ast.CallExpr)
			if !ok || !returnsError(pass, call) || exempt(pass, call) {
				return
			}
			pass.Reportf(n.Pos(), "result of %s carries an error that is dropped; check it or assign it",
				callName(pass, call))
		case *ast.AssignStmt:
			checkBlankAssign(pass, n)
		}
	})
}

// checkBlankAssign flags `_` positions whose incoming value is an error.
func checkBlankAssign(pass *analysis.Pass, n *ast.AssignStmt) {
	for i, lhs := range n.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		t := blankType(pass, n, i)
		if t == nil || !types.Identical(t, errorType) {
			continue
		}
		pass.Reportf(id.Pos(), "error discarded via _; handle it or document why it cannot happen")
	}
}

// blankType resolves the type flowing into position i of the assignment.
func blankType(pass *analysis.Pass, n *ast.AssignStmt, i int) types.Type {
	if len(n.Rhs) == len(n.Lhs) {
		return pass.TypesInfo.TypeOf(n.Rhs[i])
	}
	if len(n.Rhs) != 1 {
		return nil
	}
	t := pass.TypesInfo.TypeOf(n.Rhs[0])
	if tuple, ok := t.(*types.Tuple); ok && i < tuple.Len() {
		return tuple.At(i).Type()
	}
	return nil
}

// returnsError reports whether the call's result is or contains an error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errorType)
}

// exempt reports calls whose dropped error is sanctioned: fmt's print
// family (best-effort diagnostics) and the never-failing in-memory
// writers strings.Builder and bytes.Buffer.
func exempt(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
		path, name := named.Obj().Pkg().Path(), named.Obj().Name()
		if (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer") {
			return true
		}
	}
	return false
}

// callName renders the callee for a diagnostic.
func callName(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if base, ok := fun.X.(*ast.Ident); ok {
			return base.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "the call"
}

// ---- overwritten and unread errors -------------------------------------

// checkOverwrites flags an error variable assigned twice in the same
// block with no read between the assignments.
func checkOverwrites(pass *analysis.Pass, flow *dataflow.FuncFlow) {
	for _, obj := range flow.Objects() {
		if !types.Identical(obj.Type(), errorType) {
			continue
		}
		events := flow.EventsOf(obj)
		var prev *dataflow.Event
		for i := range events {
			ev := &events[i]
			if ev.Kind == dataflow.Use {
				prev = nil
				continue
			}
			if prev != nil && prev.Rhs != nil && ev.Rhs != nil &&
				prev.Block == ev.Block && !ev.Compound {
				pos := pass.Fset.Position(prev.Pos)
				pass.Reportf(ev.Pos,
					"error %q overwritten before the value assigned at line %d is checked",
					obj.Name(), pos.Line)
			}
			prev = ev
		}
	}
}

// checkNeverRead flags a local error variable whose last assignment is
// never read. Two execution orders that source positions cannot see are
// exempted: a read earlier in a loop body that also holds the write
// (next-iteration read), and any read inside a closure (deferred or
// escaping reads run at unknowable times).
func checkNeverRead(pass *analysis.Pass, flow *dataflow.FuncFlow) {
	loops, lits := bodyRegions(flow.Decl.Body)
	for _, obj := range flow.Objects() {
		if !types.Identical(obj.Type(), errorType) || flow.IsResult(obj) {
			continue
		}
		events := flow.EventsOf(obj)
		var lastDef *dataflow.Event
		readAfter, readInLit := false, false
		for i := range events {
			ev := &events[i]
			if ev.Kind == dataflow.Def {
				if ev.Rhs != nil {
					lastDef = ev
					readAfter = false
				}
				continue
			}
			if lastDef != nil && ev.Pos > lastDef.Pos {
				readAfter = true
			}
			if within(lits, ev.Pos) {
				readInLit = true
			}
		}
		if lastDef == nil || readAfter || readInLit {
			continue
		}
		// A read earlier in the same loop body reaches the write on the
		// next iteration.
		if loop := enclosing(loops, lastDef.Pos); loop != nil && usedWithin(events, loop) {
			continue
		}
		pass.Reportf(lastDef.Pos, "error %q is assigned but never checked", obj.Name())
	}
}

// region is a position interval of a syntactic construct.
type region struct{ pos, end token.Pos }

// bodyRegions collects loop-body and function-literal extents.
func bodyRegions(body *ast.BlockStmt) (loops, lits []region) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, region{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, region{n.Body.Pos(), n.Body.End()})
		case *ast.FuncLit:
			lits = append(lits, region{n.Pos(), n.End()})
		}
		return true
	})
	return loops, lits
}

func within(rs []region, p token.Pos) bool {
	for _, r := range rs {
		if p >= r.pos && p < r.end {
			return true
		}
	}
	return false
}

func enclosing(rs []region, p token.Pos) *region {
	for i := range rs {
		if p >= rs[i].pos && p < rs[i].end {
			return &rs[i]
		}
	}
	return nil
}

func usedWithin(events []dataflow.Event, r *region) bool {
	for i := range events {
		ev := &events[i]
		if ev.Kind == dataflow.Use && ev.Pos >= r.pos && ev.Pos < r.end {
			return true
		}
	}
	return false
}

// ---- shadowed errors ---------------------------------------------------

// checkShadows flags a := declaration of an error variable that shadows
// an outer error which is read again after the inner scope closes: the
// inner error can never reach that later read.
func checkShadows(pass *analysis.Pass, flow *dataflow.FuncFlow) {
	ast.Inspect(flow.Decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok.String() != ":=" {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			inner, ok := pass.TypesInfo.Defs[id].(*types.Var)
			if !ok || !types.Identical(inner.Type(), errorType) {
				continue
			}
			reportShadow(pass, flow, id, inner)
		}
		return true
	})
}

func reportShadow(pass *analysis.Pass, flow *dataflow.FuncFlow, id *ast.Ident, inner *types.Var) {
	scope := inner.Parent()
	if scope == nil || scope.Parent() == nil {
		return
	}
	_, outerObj := scope.Parent().LookupParent(id.Name, id.Pos())
	outer, ok := outerObj.(*types.Var)
	if !ok || outer.IsField() || !types.Identical(outer.Type(), errorType) {
		return
	}
	if outer.Parent() == pass.Pkg.Scope() {
		return // package-level sentinel, not a local flow
	}
	scopeEnd := scope.End()
	for _, ev := range flow.EventsOf(outer) {
		if ev.Kind == dataflow.Use && ev.Pos > scopeEnd {
			outerLine := pass.Fset.Position(outer.Pos()).Line
			readLine := pass.Fset.Position(ev.Pos).Line
			pass.Reportf(id.Pos(),
				"declaration of %q shadows the error from line %d, which is read again at line %d; "+
					"the shadowed error is lost",
				id.Name, outerLine, readLine)
			return
		}
	}
}
