package gsm

import (
	"math"

	"rups/internal/geo"
	"rups/internal/noise"
)

// Field is the deterministic ambient RSSI field: Sample answers "what does a
// receiver at position p read on channel ch at time t?". It is pure — the
// same query always returns the same value — which is what makes the whole
// evaluation trace-driven and reproducible.
type Field struct {
	seed     uint64
	towers   []Tower
	zone     Zoning
	temporal TemporalParams
	// byChannel[ch] lists the towers transmitting on ch.
	byChannel [NumChannels][]*Tower
	perturbs  []Perturber
}

// audibleRangeM is the distance beyond which a tower's contribution is below
// the noise floor and skipped.
const audibleRangeM = 4000.0

// NewField builds the RSSI field for the given towers and zoning, with the
// calibrated default temporal dynamics.
func NewField(seed uint64, towers []Tower, zone Zoning) *Field {
	f := &Field{
		seed:     seed,
		towers:   towers,
		zone:     zone,
		temporal: DefaultTemporalParams(),
	}
	for i := range f.towers {
		t := &f.towers[i]
		for _, ch := range t.Channels {
			f.byChannel[ch] = append(f.byChannel[ch], t)
		}
	}
	return f
}

// SetTemporal overrides the temporal dynamics (used by calibration tests and
// ablations).
func (f *Field) SetTemporal(p TemporalParams) { f.temporal = p }

// AddPerturber attaches a transient perturbation (e.g. a passing truck) to
// the field.
func (f *Field) AddPerturber(p Perturber) { f.perturbs = append(f.perturbs, p) }

// Towers returns the field's base stations (read-only).
func (f *Field) Towers() []Tower { return f.towers }

// Channels implements the scanner source contract.
func (f *Field) Channels() int { return NumChannels }

// Sample returns the RSSI in dBm read on channel ch at position pos and
// time t, clamped to the receiver's dynamic range.
func (f *Field) Sample(pos geo.Vec2, ch int, t float64) float64 {
	env := f.zone.EnvAt(pos)
	p := DefaultEnvParams(env)
	day := uint64(math.Floor(t / 86400))

	total := math.Pow(10, NoiseFloorDBm/10)
	for _, tw := range f.byChannel[ch] {
		d := pos.Dist(tw.Pos)
		if d > audibleRangeM {
			continue
		}
		link := uint64(tw.ID)<<16 | uint64(ch)
		// The first carrier of a cell is its BCCH beacon: always on, never
		// power-controlled, slightly hotter than traffic carriers. Traffic
		// (TCH) carriers fluctuate with load and downlink power control.
		isBCCH := ch == tw.Channels[0]

		// Frozen spatial structure: per-tower shadowing, per-link fading.
		shadow := noise.Field2D{
			Seed:  noise.Hash(f.seed, uint64(tw.ID), 0x5AAD),
			Scale: p.ShadowCorrLenM,
		}.At(pos.X, pos.Y) * p.ShadowSigmaDB
		fade := noise.Field2D{
			Seed:  noise.Hash(f.seed, link, 0xFADE),
			Scale: p.FadeFineLenM,
		}.At(pos.X, pos.Y)*p.FadeFineSigmaDB +
			noise.Field2D{
				Seed:  noise.Hash(f.seed, link, 0xFAD2),
				Scale: p.FadeMidLenM,
			}.At(pos.X, pos.Y)*p.FadeMidSigmaDB

		// Slow dynamics: two drift processes plus a per-day offset. BCCH
		// beacons barely participate in the fast/burst churn.
		tp := f.temporal
		fastScale, burstScale, boost := 1.0, 1.0, 0.0
		if isBCCH {
			fastScale, burstScale, boost = 0.3, 0.15, 3.0
		}
		drift := noise.Field1D{
			Seed:  noise.Hash(f.seed, link, 0x510),
			Scale: tp.SlowTauS,
		}.At(t)*tp.SlowSigmaDB +
			noise.Field1D{
				Seed:  noise.Hash(f.seed, link, 0xFA5),
				Scale: tp.FastTauS,
			}.At(t)*tp.FastSigmaDB*fastScale +
			noise.Field1D{
				Seed:  noise.Hash(f.seed, link, 0xB42),
				Scale: tp.BurstTauS,
			}.At(t)*tp.BurstSigmaDB*burstScale +
			noise.Gaussian(f.seed, link, 0xDA4, day)*tp.DaySigmaDB

		rx := tw.EIRPdBm + boost - pathLossDB(d, p.PathLossExponent) - p.ExtraLossDB +
			shadow + fade + drift
		total += math.Pow(10, rx/10)
	}

	rssi := 10 * math.Log10(total)
	for _, pb := range f.perturbs {
		rssi -= pb.LossDB(pos, ch, t)
	}
	if rssi < NoiseFloorDBm {
		rssi = NoiseFloorDBm
	}
	if rssi > SaturationDBm {
		rssi = SaturationDBm
	}
	return rssi
}

// SampleVector returns the full 194-channel power vector at (pos, t) —
// what an idealized instantaneous scan of the whole band would read.
func (f *Field) SampleVector(pos geo.Vec2, t float64) []float64 {
	v := make([]float64, NumChannels)
	for ch := 0; ch < NumChannels; ch++ {
		v[ch] = f.Sample(pos, ch, t)
	}
	return v
}

// Perturber injects a transient, localized RSSI loss into the field —
// the mechanism behind the paper's "big vehicle passing by" outliers
// (Fig 10).
type Perturber interface {
	// LossDB returns the attenuation to apply at (pos, ch, t); 0 when the
	// perturbation does not apply.
	LossDB(pos geo.Vec2, ch int, t float64) float64
}

// RegionPerturbation attenuates a subset of channels inside a disc for a
// time window — a parked obstruction or localized interferer.
type RegionPerturbation struct {
	Center      geo.Vec2
	RadiusM     float64
	Start, End  float64 // seconds
	Loss        float64 // dB at the centre, tapering linearly to the rim
	ChannelFrac float64 // fraction of channels affected, in [0,1]
	Seed        uint64
}

// LossDB implements Perturber.
func (r RegionPerturbation) LossDB(pos geo.Vec2, ch int, t float64) float64 {
	if t < r.Start || t > r.End {
		return 0
	}
	d := pos.Dist(r.Center)
	if d > r.RadiusM {
		return 0
	}
	if noise.Uniform(r.Seed, uint64(ch), 0x9E4B) > r.ChannelFrac {
		return 0
	}
	return r.Loss * (1 - d/r.RadiusM)
}

// TrackPerturbation is a moving obstruction — a truck overtaking in the
// next lane — whose position is a function of time. A big vehicle both
// blocks some carriers (its body shadows the receiver) and reflects others
// (a large metal surface metres away boosts them), so affected channels
// take ±Loss dB: the mixed signs are what can *bias* a window match rather
// than merely weakening it, producing the paper's Fig 10 outliers.
type TrackPerturbation struct {
	// PosAt returns the obstruction's position at time t and whether it is
	// present at all (false outside its lifetime).
	PosAt       func(t float64) (geo.Vec2, bool)
	RadiusM     float64
	Loss        float64
	ChannelFrac float64
	Seed        uint64
}

// LossDB implements Perturber.
func (tp TrackPerturbation) LossDB(pos geo.Vec2, ch int, t float64) float64 {
	c, ok := tp.PosAt(t)
	if !ok {
		return 0
	}
	d := pos.Dist(c)
	if d > tp.RadiusM {
		return 0
	}
	if noise.Uniform(tp.Seed, uint64(ch), 0x9E4B) > tp.ChannelFrac {
		return 0
	}
	sign := 1.0
	if noise.Uniform(tp.Seed, uint64(ch), 0x516E) < 0.45 {
		sign = -1 // reflection gain on this carrier
	}
	return sign * tp.Loss * (1 - d/tp.RadiusM)
}
