// Package gsm simulates the ambient GSM radio environment that RUPS
// fingerprints: the R-GSM-900 band plan, base-station towers, and a
// deterministic RSSI field over space, channel, and time.
//
// The field is the sum (in linear power) of per-tower contributions, each
// shaped by log-distance path loss, a frozen spatially-correlated shadowing
// field, a frozen sub-metre multipath fading field, and a slowly varying
// temporal drift. The model is calibrated (see params.go and the calibration
// tests) so that the three empirical properties the paper measures in §III —
// temporary stability, geographical uniqueness, and fine resolution — emerge
// from the simulation rather than being asserted.
package gsm

import "fmt"

// NumChannels is the number of carriers in the R-GSM-900 band the paper
// scans: ARFCNs 0–124 (primary GSM-900) plus 955–1023 (railway extension),
// 194 channels in total, coverable in 2.85 s at ~15 ms per channel.
const NumChannels = 194

// ChannelARFCN returns the absolute radio-frequency channel number of
// channel index i ∈ [0, NumChannels). Indices 0–124 map to ARFCN 0–124 and
// indices 125–193 map to ARFCN 955–1023.
func ChannelARFCN(i int) int {
	if i < 0 || i >= NumChannels {
		panic(fmt.Sprintf("gsm: channel index %d out of range", i))
	}
	if i <= 124 {
		return i
	}
	return 955 + (i - 125)
}

// ChannelIndex is the inverse of ChannelARFCN. It panics on an ARFCN outside
// the R-GSM-900 band.
func ChannelIndex(arfcn int) int {
	switch {
	case arfcn >= 0 && arfcn <= 124:
		return arfcn
	case arfcn >= 955 && arfcn <= 1023:
		return 125 + (arfcn - 955)
	default:
		panic(fmt.Sprintf("gsm: ARFCN %d not in R-GSM-900", arfcn))
	}
}

// ChannelFreqMHz returns the downlink centre frequency of channel index i in
// MHz. Primary band: 935 + 0.2·N; railway extension: 935 + 0.2·(N−1024).
func ChannelFreqMHz(i int) float64 {
	n := ChannelARFCN(i)
	if n <= 124 {
		return 935.0 + 0.2*float64(n)
	}
	return 935.0 + 0.2*float64(n-1024)
}

// NoiseFloorDBm is the receiver sensitivity floor. Channels with no audible
// tower read as thermal noise around this level.
const NoiseFloorDBm = -110.0

// SaturationDBm is the strongest RSSI the scanning hardware reports.
const SaturationDBm = -40.0

// Excess converts an RSSI in dBm to "level above the noise floor" in dB.
// Pearson correlation (Eq. 1) is shift-invariant, but the relative-change
// metric of Eq. 3 is not: computed on raw dBm it would depend on the
// arbitrary dBm reference. All Eq. 3 computations therefore use this excess
// representation (documented substitution; see DESIGN.md §2).
func Excess(rssiDBm float64) float64 {
	return rssiDBm - NoiseFloorDBm
}
