package gsm

import (
	"fmt"
	"math"

	"rups/internal/geo"
	"rups/internal/noise"
)

// Tower is one GSM base station broadcasting on a handful of carriers.
type Tower struct {
	ID       int
	Pos      geo.Vec2
	Channels []int   // channel indices (not ARFCNs) this cell transmits on
	EIRPdBm  float64 // effective radiated power of each carrier
}

// Zoning maps a world position to its radio environment class. The city
// package implements it; tests use ConstZone.
type Zoning interface {
	EnvAt(pos geo.Vec2) EnvClass
}

// ConstZone is a Zoning that returns the same class everywhere.
type ConstZone EnvClass

// EnvAt implements Zoning.
func (c ConstZone) EnvAt(geo.Vec2) EnvClass { return EnvClass(c) }

// Bounds is an axis-aligned region of the world plane, in metres.
type Bounds struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether p lies inside b.
func (b Bounds) Contains(p geo.Vec2) bool {
	return p.X >= b.MinX && p.X <= b.MaxX && p.Y >= b.MinY && p.Y <= b.MaxY
}

// Pad returns b grown by m metres on every side.
func (b Bounds) Pad(m float64) Bounds {
	return Bounds{b.MinX - m, b.MinY - m, b.MaxX + m, b.MaxY + m}
}

// channelsPerTower is how many carriers each cell transmits (BCCH plus a few
// TCHs).
const channelsPerTower = 7

// GenerateTowers lays out base stations over the padded bounds on a jittered
// grid whose local density follows the environment's TowerSpacingM: dense
// downtown, sparse in the suburbs. Channel assignments are deterministic in
// the seed, giving each of the 194 channels a few geographically scattered
// co-channel cells (frequency reuse) — the source of the field's
// geographical uniqueness.
func GenerateTowers(seed uint64, area Bounds, zone Zoning) []Tower {
	// Candidate sites on the finest grid; thin probabilistically to match
	// the local environment's target spacing.
	const baseSpacing = 500.0
	padded := area.Pad(2000) // audible towers beyond the driving area
	var towers []Tower
	id := 0
	row := 0
	for y := padded.MinY; y <= padded.MaxY; y += baseSpacing {
		col := 0
		for x := padded.MinX; x <= padded.MaxX; x += baseSpacing {
			key := uint64(row)<<32 | uint64(uint32(col))
			env := zone.EnvAt(geo.Vec2{X: x, Y: y})
			p := DefaultEnvParams(env)
			keep := (baseSpacing / p.TowerSpacingM) * (baseSpacing / p.TowerSpacingM)
			if noise.Uniform(seed, key, 0xA11CE) > keep {
				col++
				continue
			}
			jx := (noise.Uniform(seed, key, 1) - 0.5) * baseSpacing
			jy := (noise.Uniform(seed, key, 2) - 0.5) * baseSpacing
			towers = append(towers, Tower{
				ID:       id,
				Pos:      geo.Vec2{X: x + jx, Y: y + jy},
				Channels: pickChannels(seed, key),
				EIRPdBm:  TxPowerDBm + (noise.Uniform(seed, key, 3)-0.5)*6,
			})
			id++
			col++
		}
		row++
	}
	if len(towers) == 0 {
		panic(fmt.Sprintf("gsm: no towers generated for area %+v", area))
	}
	return towers
}

// pickChannels draws channelsPerTower distinct channel indices for a site.
func pickChannels(seed, key uint64) []int {
	chosen := make([]int, 0, channelsPerTower)
	used := make(map[int]bool, channelsPerTower)
	for k := uint64(0); len(chosen) < channelsPerTower; k++ {
		ch := int(noise.Hash(seed, key, 0xC4A2+k) % NumChannels)
		if used[ch] {
			continue
		}
		used[ch] = true
		chosen = append(chosen, ch)
	}
	return chosen
}

// pathLossDB is the log-distance model: free-space-at-reference plus
// 10·n·log10(d/d₀). Distances under the reference are clamped.
func pathLossDB(d, exponent float64) float64 {
	if d < refDistM {
		d = refDistM
	}
	return refLossDB + 10*exponent*math.Log10(d/refDistM)
}
