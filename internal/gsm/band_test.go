package gsm

import "testing"

func TestChannelARFCNMapping(t *testing.T) {
	cases := []struct{ idx, arfcn int }{
		{0, 0}, {124, 124}, {125, 955}, {193, 1023},
	}
	for _, c := range cases {
		if got := ChannelARFCN(c.idx); got != c.arfcn {
			t.Errorf("ChannelARFCN(%d) = %d, want %d", c.idx, got, c.arfcn)
		}
		if got := ChannelIndex(c.arfcn); got != c.idx {
			t.Errorf("ChannelIndex(%d) = %d, want %d", c.arfcn, got, c.idx)
		}
	}
}

func TestChannelRoundTrip(t *testing.T) {
	for i := 0; i < NumChannels; i++ {
		if got := ChannelIndex(ChannelARFCN(i)); got != i {
			t.Fatalf("round trip failed for index %d: got %d", i, got)
		}
	}
}

func TestChannelFreq(t *testing.T) {
	// ARFCN 0 → 935.0 MHz downlink; ARFCN 1 → 935.2.
	if got := ChannelFreqMHz(0); got != 935.0 {
		t.Errorf("freq(0) = %v", got)
	}
	if got := ChannelFreqMHz(1); got != 935.2 {
		t.Errorf("freq(1) = %v", got)
	}
	// ARFCN 955 → 935 + 0.2·(955−1024) = 921.2 MHz (R-GSM extension below
	// the primary band).
	if got := ChannelFreqMHz(125); got != 935.0+0.2*(955-1024) {
		t.Errorf("freq(125) = %v", got)
	}
	// Frequencies are unique across the band.
	seen := map[float64]bool{}
	for i := 0; i < NumChannels; i++ {
		f := ChannelFreqMHz(i)
		if seen[f] {
			t.Fatalf("duplicate frequency %v at index %d", f, i)
		}
		seen[f] = true
	}
}

func TestChannelPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"index -1":   func() { ChannelARFCN(-1) },
		"index 194":  func() { ChannelARFCN(NumChannels) },
		"arfcn 200":  func() { ChannelIndex(200) },
		"arfcn -1":   func() { ChannelIndex(-1) },
		"arfcn 1024": func() { ChannelIndex(1024) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestExcess(t *testing.T) {
	if got := Excess(NoiseFloorDBm); got != 0 {
		t.Errorf("Excess(floor) = %v, want 0", got)
	}
	if got := Excess(-80); got != 30 {
		t.Errorf("Excess(-80) = %v, want 30", got)
	}
}

func TestEnvClassString(t *testing.T) {
	for e, want := range map[EnvClass]string{
		Suburban: "suburban", Urban: "urban", Downtown: "downtown",
		UnderElevated: "under-elevated", EnvClass(99): "unknown",
	} {
		if got := e.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", e, got, want)
		}
	}
}
