package gsm

import (
	"math"
	"testing"

	"rups/internal/geo"
)

func testField(seed uint64, env EnvClass) *Field {
	area := Bounds{MinX: 0, MinY: 0, MaxX: 3000, MaxY: 3000}
	towers := GenerateTowers(seed, area, ConstZone(env))
	return NewField(seed, towers, ConstZone(env))
}

func TestGenerateTowersDensity(t *testing.T) {
	area := Bounds{MinX: 0, MinY: 0, MaxX: 5000, MaxY: 5000}
	sub := GenerateTowers(1, area, ConstZone(Suburban))
	town := GenerateTowers(1, area, ConstZone(Downtown))
	if len(town) <= 2*len(sub) {
		t.Errorf("downtown towers (%d) not much denser than suburban (%d)",
			len(town), len(sub))
	}
	for _, tw := range town {
		if len(tw.Channels) != channelsPerTower {
			t.Fatalf("tower %d has %d channels", tw.ID, len(tw.Channels))
		}
		seen := map[int]bool{}
		for _, ch := range tw.Channels {
			if ch < 0 || ch >= NumChannels {
				t.Fatalf("tower %d channel %d out of range", tw.ID, ch)
			}
			if seen[ch] {
				t.Fatalf("tower %d repeats channel %d", tw.ID, ch)
			}
			seen[ch] = true
		}
	}
}

func TestGenerateTowersDeterministic(t *testing.T) {
	area := Bounds{MinX: 0, MinY: 0, MaxX: 2000, MaxY: 2000}
	a := GenerateTowers(7, area, ConstZone(Urban))
	b := GenerateTowers(7, area, ConstZone(Urban))
	if len(a) != len(b) {
		t.Fatalf("tower counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Pos != b[i].Pos || a[i].EIRPdBm != b[i].EIRPdBm {
			t.Fatalf("tower %d differs", i)
		}
	}
	c := GenerateTowers(8, area, ConstZone(Urban))
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Pos != c[i].Pos {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical tower layouts")
	}
}

func TestSampleRangeAndDeterminism(t *testing.T) {
	f := testField(3, Urban)
	pos := geo.Vec2{X: 1500, Y: 1500}
	for ch := 0; ch < NumChannels; ch++ {
		v := f.Sample(pos, ch, 100)
		if v < NoiseFloorDBm || v > SaturationDBm {
			t.Fatalf("Sample ch %d = %v outside dynamic range", ch, v)
		}
		if v != f.Sample(pos, ch, 100) {
			t.Fatalf("Sample not deterministic on ch %d", ch)
		}
	}
}

func TestSampleVectorHasSignal(t *testing.T) {
	f := testField(4, Urban)
	v := f.SampleVector(geo.Vec2{X: 1500, Y: 1500}, 0)
	if len(v) != NumChannels {
		t.Fatalf("vector length %d", len(v))
	}
	active := 0
	for _, x := range v {
		if Excess(x) > 3 {
			active++
		}
	}
	// A realistic urban spectrum has a healthy share of audible carriers.
	if active < NumChannels/4 {
		t.Errorf("only %d/%d channels audible; field too sparse", active, NumChannels)
	}
}

func TestPathLossMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for d := 10.0; d <= 4000; d *= 1.5 {
		pl := pathLossDB(d, 3.3)
		if pl <= prev {
			t.Fatalf("path loss not increasing at %v m", d)
		}
		prev = pl
	}
	// Clamped below reference distance.
	if pathLossDB(1, 3.3) != pathLossDB(refDistM, 3.3) {
		t.Error("path loss not clamped below reference distance")
	}
}

func TestSignalDecaysFromTower(t *testing.T) {
	f := testField(5, Suburban)
	tw := f.Towers()[0]
	ch := tw.Channels[0]
	// Average over time to suppress fading: RSSI near the tower must beat
	// RSSI 2 km away on the same channel.
	avg := func(pos geo.Vec2) float64 {
		var s float64
		for i := 0; i < 20; i++ {
			s += f.Sample(pos.Add(geo.Vec2{X: float64(i), Y: 0}), ch, 0)
		}
		return s / 20
	}
	near := avg(tw.Pos.Add(geo.Vec2{X: 30, Y: 0}))
	far := avg(tw.Pos.Add(geo.Vec2{X: 2000, Y: 0}))
	if near-far < 10 {
		t.Errorf("near %v dBm vs far %v dBm: decay too weak", near, far)
	}
}

func TestRegionPerturbation(t *testing.T) {
	p := RegionPerturbation{
		Center: geo.Vec2{X: 0, Y: 0}, RadiusM: 10,
		Start: 10, End: 20, Loss: 12, ChannelFrac: 1, Seed: 1,
	}
	if got := p.LossDB(geo.Vec2{X: 0, Y: 0}, 3, 15); got != 12 {
		t.Errorf("centre loss = %v, want 12", got)
	}
	if got := p.LossDB(geo.Vec2{X: 5, Y: 0}, 3, 15); !(got > 0 && got < 12) {
		t.Errorf("mid loss = %v, want in (0,12)", got)
	}
	if got := p.LossDB(geo.Vec2{X: 11, Y: 0}, 3, 15); got != 0 {
		t.Errorf("outside radius loss = %v, want 0", got)
	}
	if got := p.LossDB(geo.Vec2{X: 0, Y: 0}, 3, 25); got != 0 {
		t.Errorf("outside window loss = %v, want 0", got)
	}
}

func TestRegionPerturbationChannelFraction(t *testing.T) {
	p := RegionPerturbation{
		Center: geo.Vec2{}, RadiusM: 10, Start: 0, End: 1,
		Loss: 10, ChannelFrac: 0.5, Seed: 2,
	}
	hit := 0
	for ch := 0; ch < NumChannels; ch++ {
		if p.LossDB(geo.Vec2{}, ch, 0.5) > 0 {
			hit++
		}
	}
	if hit < NumChannels/4 || hit > 3*NumChannels/4 {
		t.Errorf("channel fraction: %d/%d affected, want ~half", hit, NumChannels)
	}
}

func TestTrackPerturbation(t *testing.T) {
	tp := TrackPerturbation{
		PosAt: func(t float64) (geo.Vec2, bool) {
			if t < 0 || t > 10 {
				return geo.Vec2{}, false
			}
			return geo.Vec2{X: t * 10, Y: 0}, true // moving east at 10 m/s
		},
		RadiusM: 5, Loss: 15, ChannelFrac: 1, Seed: 3,
	}
	// At t=5 the truck is at (50,0).
	if got := tp.LossDB(geo.Vec2{X: 50, Y: 0}, 0, 5); got != 15 {
		t.Errorf("on-track loss = %v, want 15", got)
	}
	if got := tp.LossDB(geo.Vec2{X: 50, Y: 0}, 0, 0); got != 0 {
		t.Errorf("loss when truck elsewhere = %v, want 0", got)
	}
	if got := tp.LossDB(geo.Vec2{X: 50, Y: 0}, 0, 11); got != 0 {
		t.Errorf("loss after lifetime = %v, want 0", got)
	}
}

func TestFieldPerturbationApplied(t *testing.T) {
	f := testField(6, Urban)
	pos := geo.Vec2{X: 1500, Y: 1500}
	// Find a channel with solid signal so the subtraction is visible.
	ch := 0
	best := math.Inf(-1)
	for c := 0; c < NumChannels; c++ {
		if v := f.Sample(pos, c, 50); v > best {
			best, ch = v, c
		}
	}
	before := f.Sample(pos, ch, 50)
	f.AddPerturber(RegionPerturbation{
		Center: pos, RadiusM: 20, Start: 0, End: 100, Loss: 10,
		ChannelFrac: 1, Seed: 4,
	})
	after := f.Sample(pos, ch, 50)
	if math.Abs((before-after)-10) > 1e-9 {
		t.Errorf("perturbation effect = %v dB, want 10", before-after)
	}
}

func TestBoundsHelpers(t *testing.T) {
	b := Bounds{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if !b.Contains(geo.Vec2{X: 5, Y: 5}) || b.Contains(geo.Vec2{X: 11, Y: 5}) {
		t.Error("Contains wrong")
	}
	p := b.Pad(2)
	if p.MinX != -2 || p.MaxY != 12 {
		t.Errorf("Pad = %+v", p)
	}
}
