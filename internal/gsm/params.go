package gsm

// EnvClass classifies the radio environment around a position, matching the
// paper's three trace-collection environments (§III-A) plus the covered
// "under elevated road" condition of the evaluation (§VI).
type EnvClass int

const (
	// Suburban: sparse towers, low clutter (the paper's 2-lane suburb
	// roads).
	Suburban EnvClass = iota
	// Urban: regular tower grid, moderate clutter (4-lane surface roads).
	Urban
	// Downtown: dense towers, heavy clutter, strong shadowing (8-lane roads
	// flanked by tall buildings — the "concrete forest").
	Downtown
	// UnderElevated: beneath an elevated road deck. GSM remains usable
	// (towers are lateral) but suffers extra attenuation; GPS is nearly
	// blind here.
	UnderElevated
)

// String returns the environment name used in evaluation output.
func (e EnvClass) String() string {
	switch e {
	case Suburban:
		return "suburban"
	case Urban:
		return "urban"
	case Downtown:
		return "downtown"
	case UnderElevated:
		return "under-elevated"
	default:
		return "unknown"
	}
}

// EnvParams holds the radio propagation parameters of one environment
// class. The values are the model's calibration surface: the gsm package's
// calibration tests assert that with DefaultEnvParams the §III statistics of
// the paper hold (Fig 2 temporal stability, Fig 3 uniqueness, Fig 4
// resolution). Changing them deliberately breaks those tests.
type EnvParams struct {
	// TowerSpacingM is the mean spacing of the jittered tower grid.
	TowerSpacingM float64
	// PathLossExponent is the log-distance decay exponent n.
	PathLossExponent float64
	// ShadowSigmaDB is the standard deviation of the correlated shadowing
	// field (per tower).
	ShadowSigmaDB float64
	// ShadowCorrLenM is the spatial decorrelation length of shadowing.
	ShadowCorrLenM float64
	// Multipath fading is modelled at two spatial scales per tower-channel
	// link. The fine component decorrelates within a metre and provides the
	// paper's fine-resolution property (Fig 4: ≥40% relative change at
	// 1 m); the mid component decorrelates over several metres, giving the
	// alignment structure that survives missing-channel interpolation when
	// a fast vehicle scans sparsely. Rayleigh fading in dB has σ ≈ 5.57 dB;
	// the two components split that energy.
	FadeFineSigmaDB float64
	FadeFineLenM    float64
	FadeMidSigmaDB  float64
	FadeMidLenM     float64
	// ExtraLossDB is a blanket attenuation applied to every link, modelling
	// cover (elevated deck) or deep clutter.
	ExtraLossDB float64
}

// DefaultEnvParams returns the calibrated propagation parameters for an
// environment class.
func DefaultEnvParams(e EnvClass) EnvParams {
	switch e {
	case Suburban:
		return EnvParams{
			TowerSpacingM:    1500,
			PathLossExponent: 2.9,
			ShadowSigmaDB:    5,
			ShadowCorrLenM:   120,
			FadeFineSigmaDB:  5.5,
			FadeFineLenM:     0.85,
			FadeMidSigmaDB:   5.5,
			FadeMidLenM:      11,
			ExtraLossDB:      0,
		}
	case Urban:
		return EnvParams{
			TowerSpacingM:    800,
			PathLossExponent: 3.3,
			ShadowSigmaDB:    6.5,
			ShadowCorrLenM:   60,
			FadeFineSigmaDB:  7.5,
			FadeFineLenM:     0.8,
			FadeMidSigmaDB:   6.0,
			FadeMidLenM:      10,
			ExtraLossDB:      0,
		}
	case Downtown:
		return EnvParams{
			TowerSpacingM:    500,
			PathLossExponent: 3.6,
			ShadowSigmaDB:    8,
			ShadowCorrLenM:   40,
			FadeFineSigmaDB:  7.5,
			FadeFineLenM:     0.75,
			FadeMidSigmaDB:   6.5,
			FadeMidLenM:      9,
			ExtraLossDB:      2,
		}
	case UnderElevated:
		return EnvParams{
			TowerSpacingM:    500,
			PathLossExponent: 3.6,
			ShadowSigmaDB:    8,
			ShadowCorrLenM:   40,
			FadeFineSigmaDB:  7.5,
			FadeFineLenM:     0.75,
			FadeMidSigmaDB:   6.5,
			FadeMidLenM:      9,
			ExtraLossDB:      8,
		}
	default:
		panic("gsm: unknown environment class")
	}
}

// TemporalParams controls the environment's slow dynamics — the only
// time-dependent part of the field. Two correlated drift processes per
// channel (a slow one for large-scale environmental change, a faster one for
// traffic-driven interference) determine how quickly two measurements of the
// same place decorrelate (paper Fig 2).
type TemporalParams struct {
	// SlowSigmaDB / SlowTauS: slow environmental drift (weather, parked
	// vehicles, crowd build-up).
	SlowSigmaDB float64
	SlowTauS    float64
	// FastSigmaDB / FastTauS: faster interference churn (traffic load on
	// the cells, passing reflectors).
	FastSigmaDB float64
	FastTauS    float64
	// BurstSigmaDB / BurstTauS: second-scale fluctuation from downlink
	// power control and bursty traffic on TCH carriers — the reason two
	// passes of the same spot seconds apart still read somewhat different
	// power, which bounds how precisely a SYN point can be localized.
	BurstSigmaDB float64
	BurstTauS    float64
	// DaySigmaDB scales a per-day offset: re-entering a road on a different
	// day sees a slightly different spectrum (paper Fig 3 separates workday
	// and weekend).
	DaySigmaDB float64
}

// DefaultTemporalParams returns the calibrated temporal dynamics.
func DefaultTemporalParams() TemporalParams {
	return TemporalParams{
		SlowSigmaDB:  4.0,
		SlowTauS:     900, // 15 min
		FastSigmaDB:  1.8,
		FastTauS:     45,
		BurstSigmaDB: 3.0,
		BurstTauS:    2.0,
		DaySigmaDB:   1.5,
	}
}

// TxPowerDBm is the effective isotropic radiated power of a macro-cell
// carrier as seen at the reference distance of the path loss model.
const TxPowerDBm = 30.0

// refDistM is the reference distance d₀ of the log-distance model, with
// free-space loss at 940 MHz folded into refLossDB.
const (
	refDistM  = 10.0
	refLossDB = 52.0
)
