package gsm

// Calibration tests: the contract between the simulated radio environment
// and the RUPS algorithm. They assert that the three empirical properties
// the paper measures on real Shanghai traces (§III, Figs 2-4) emerge from
// the synthetic field with the default parameters. If these fail after a
// parameter change, the evaluation figures can no longer be trusted to have
// the paper's shape.

import (
	"math"
	"testing"

	"rups/internal/geo"
	"rups/internal/noise"
	"rups/internal/stats"
)

// measure returns a power vector with scanner-like measurement noise, the
// way the §III experiments observed the field.
func measure(f *Field, pos geo.Vec2, t float64, seed uint64) []float64 {
	v := f.SampleVector(pos, t)
	for ch := range v {
		v[ch] += noise.Gaussian(seed, uint64(ch), math.Float64bits(t)) * 1.0
		if v[ch] < NoiseFloorDBm {
			v[ch] = NoiseFloorDBm
		}
	}
	return v
}

func pick(v []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = v[j]
	}
	return out
}

// TestCalibrationTemporalStability reproduces the shape of Fig 2: the
// probability that two power vectors of the same location stay correlated,
// as a function of their time difference, for thresholds {0.8, 0.9} and
// channel counts {194, 10}.
func TestCalibrationTemporalStability(t *testing.T) {
	f := testField(101, Downtown)
	deltas := []float64{5, 300, 1500} // 5 s ... 25 min
	const locations = 8
	const pairs = 40

	// prob[threshold][channels][deltaIdx]
	type key struct {
		thr float64
		n   int
	}
	counts := map[key][]int{}
	for _, k := range []key{{0.8, 194}, {0.9, 194}, {0.8, 10}, {0.9, 10}} {
		counts[k] = make([]int, len(deltas))
	}

	for loc := 0; loc < locations; loc++ {
		pos := geo.Vec2{
			X: 500 + 2000*noise.Uniform(55, uint64(loc), 1),
			Y: 500 + 2000*noise.Uniform(55, uint64(loc), 2),
		}
		// Ten random channels for the subset curves, fixed per location.
		sub := make([]int, 10)
		for i := range sub {
			sub[i] = int(noise.Hash(56, uint64(loc), uint64(i)) % NumChannels)
		}
		for di, dt := range deltas {
			for p := 0; p < pairs; p++ {
				t1 := 3600 * noise.Uniform(57, uint64(loc), uint64(di), uint64(p))
				a := measure(f, pos, t1, 58)
				b := measure(f, pos, t1+dt, 59)
				rFull := stats.Pearson(a, b)
				rSub := stats.Pearson(pick(a, sub), pick(b, sub))
				if rFull >= 0.8 {
					counts[key{0.8, 194}][di]++
				}
				if rFull >= 0.9 {
					counts[key{0.9, 194}][di]++
				}
				if rSub >= 0.8 {
					counts[key{0.8, 10}][di]++
				}
				if rSub >= 0.9 {
					counts[key{0.9, 10}][di]++
				}
			}
		}
	}
	total := float64(locations * pairs)
	prob := func(thr float64, n int, di int) float64 {
		return float64(counts[key{thr, n}][di]) / total
	}
	last := len(deltas) - 1

	// Paper observation 2: with threshold 0.8 and all channels, vectors are
	// stable with high probability over the whole 25-minute span.
	for di := range deltas {
		if p := prob(0.8, 194, di); p < 0.9 {
			t.Errorf("P(r≥0.8, 194ch) at Δt=%vs = %v, want ≥ 0.9", deltas[di], p)
		}
	}
	// Stability decays with Δt at the strict threshold.
	if prob(0.9, 194, 0) <= prob(0.9, 194, last) {
		t.Errorf("P(r≥0.9, 194ch) did not decay: %v -> %v",
			prob(0.9, 194, 0), prob(0.9, 194, last))
	}
	// Paper observation 1: at the strict threshold a 10-channel subset
	// looks *more* stable than all 194 channels (small-sample spread).
	if prob(0.9, 10, last) <= prob(0.9, 194, last) {
		t.Errorf("crossover missing: P(r≥0.9, 10ch)=%v ≤ P(r≥0.9, 194ch)=%v at Δt=25min",
			prob(0.9, 10, last), prob(0.9, 194, last))
	}
	// Paper observation 3: at the loose threshold, more channels win.
	if prob(0.8, 10, last) >= prob(0.8, 194, last) {
		t.Errorf("P(r≥0.8, 10ch)=%v ≥ P(r≥0.8, 194ch)=%v at Δt=25min",
			prob(0.8, 10, last), prob(0.8, 194, last))
	}
}

// sampleTrajectory builds the channel-major 194×L trajectory matrix along a
// straight road starting at origin with the given heading, one vector per
// metre, as a vehicle driving it at vMS m/s starting at t0 would.
func sampleTrajectory(f *Field, origin geo.Vec2, heading float64, L int, t0, vMS float64, seed uint64) [][]float64 {
	m := make([][]float64, NumChannels)
	for ch := range m {
		m[ch] = make([]float64, L)
	}
	dir := geo.HeadingVec(heading)
	for j := 0; j < L; j++ {
		pos := origin.Add(dir.Scale(float64(j)))
		v := measure(f, pos, t0+float64(j)/vMS, seed)
		for ch := range v {
			m[ch][j] = v[ch]
		}
	}
	return m
}

// TestCalibrationGeographicalUniqueness reproduces the shape of Fig 3:
// trajectory correlation coefficients of re-entries of the same road
// separate cleanly from those of different roads.
func TestCalibrationGeographicalUniqueness(t *testing.T) {
	f := testField(202, Urban)
	const L = 150
	const roads = 8
	var same, diff []float64
	type road struct {
		origin  geo.Vec2
		heading float64
	}
	rs := make([]road, roads)
	for i := range rs {
		rs[i] = road{
			origin: geo.Vec2{
				X: 400 + 2200*noise.Uniform(71, uint64(i), 1),
				Y: 400 + 2200*noise.Uniform(71, uint64(i), 2),
			},
			heading: 2 * math.Pi * noise.Uniform(71, uint64(i), 3),
		}
	}
	trajs := make([][][]float64, roads)
	reentries := make([][][]float64, roads)
	for i, r := range rs {
		trajs[i] = sampleTrajectory(f, r.origin, r.heading, L, 0, 10, 80+uint64(i))
		// Re-enter the same road half an hour later.
		reentries[i] = sampleTrajectory(f, r.origin, r.heading, L, 1800, 10, 90+uint64(i))
	}
	for i := 0; i < roads; i++ {
		same = append(same, stats.TrajCorr(trajs[i], reentries[i]))
		for j := i + 1; j < roads; j++ {
			diff = append(diff, stats.TrajCorr(trajs[i], trajs[j]))
		}
	}
	sameMean, diffMean := stats.Mean(same), stats.Mean(diff)
	if sameMean < 1.2 {
		t.Errorf("same-road mean trajectory correlation = %v, want ≥ 1.2 (coherency threshold)", sameMean)
	}
	if diffMean > 0.5 {
		t.Errorf("different-road mean trajectory correlation = %v, want ≤ 0.5", diffMean)
	}
	// Distributions must separate: the weakest re-entry must beat the
	// strongest cross-road correlation.
	if lo, hi := stats.Quantile(same, 0), stats.Quantile(diff, 1); lo <= hi {
		t.Errorf("distributions overlap: min(same)=%v ≤ max(diff)=%v", lo, hi)
	}
}

// TestCalibrationFineResolution reproduces the shape of Fig 4: the relative
// change of two power vectors k metres apart on the same road reaches ~40%
// already at one metre and rises gently with distance.
func TestCalibrationFineResolution(t *testing.T) {
	f := testField(303, Urban)
	origin := geo.Vec2{X: 600, Y: 1500}
	dir := geo.HeadingVec(math.Pi / 2) // eastbound
	const n = 120
	vec := func(s float64) []float64 {
		v := measure(f, origin.Add(dir.Scale(s)), 0, 77)
		for ch := range v {
			v[ch] = Excess(v[ch])
		}
		return v
	}
	relAt := func(k float64) float64 {
		var acc stats.Online
		for i := 0; i < n; i++ {
			s := float64(i) * 4.0
			acc.Add(stats.RelativeChange(vec(s), vec(s+k)))
		}
		return acc.Mean()
	}
	r1 := relAt(1)
	r20 := relAt(20)
	r120 := relAt(120)
	// The paper measures ~0.4 at 1 m; the calibrated field lands at ~0.35
	// (the gap is documented in EXPERIMENTS.md — pushing the fine-fading
	// variance higher would break SYN robustness under sparse scanning).
	if r1 < 0.32 {
		t.Errorf("mean relative change at 1 m = %v, want ≥ 0.32 (paper: ~0.4)", r1)
	}
	if !(r120 > r1) {
		t.Errorf("relative change not rising with distance: r(1m)=%v r(120m)=%v", r1, r120)
	}
	if r20 > r120+0.05 {
		t.Errorf("relative change non-monotone beyond tolerance: r(20m)=%v r(120m)=%v", r20, r120)
	}
	// Sanity: a vector compared with itself changes by 0.
	if got := stats.RelativeChange(vec(0), vec(0)); got != 0 {
		t.Errorf("self relative change = %v", got)
	}
}
