package engine

import "rups/internal/obs"

// engineTelemetry is the pool's metric roster (see docs/OBSERVABILITY.md).
// Handles are re-fetched per run/batch through the obs.View, so a disabled
// registry costs one atomic load per call and no task-level work at all.
type engineTelemetry struct {
	tasks        *obs.Counter
	inline       *obs.Counter
	batches      *obs.Counter
	depth        *obs.Gauge
	peak         *obs.Gauge
	taskSec      *obs.Histogram
	batchSec     *obs.Histogram
	pairSec      *obs.Histogram
	pairsStale   *obs.Counter
	pairsExpired *obs.Counter
	pairsShed    *obs.Counter
}

var engineTel = obs.NewView(func(r *obs.Registry) *engineTelemetry {
	return &engineTelemetry{
		tasks: r.Counter("rups_engine_tasks_total",
			"tasks scheduled through the engine pool (pooled or inline)"),
		inline: r.Counter("rups_engine_tasks_inline_total",
			"tasks run inline on the caller because no worker was idle (help-first fallback)"),
		batches: r.Counter("rups_engine_batches_total",
			"pair batches resolved (one per Batch.ResolvePairs call)"),
		depth: r.Gauge("rups_engine_queue_depth",
			"tasks currently handed to pool workers and not yet finished"),
		peak: r.Gauge("rups_engine_queue_depth_peak",
			"high-water mark of rups_engine_queue_depth since the registry was installed"),
		// 2^-20 s ≈ 1 µs up to 2^4 = 16 s covers direction scans through
		// whole-pair resolutions.
		taskSec: r.Histogram("rups_engine_task_seconds",
			"wall time of one pooled or inline task", -20, 4),
		// Batches span many pairs: 2^-10 s ≈ 1 ms up to 2^6 = 64 s.
		batchSec: r.Histogram("rups_engine_batch_seconds",
			"wall time of one Batch.ResolvePairs call", -10, 6),
		// Per-pair resolve latency feeds the resolve-latency SLO; same
		// span as taskSec (1 µs – 16 s).
		pairSec: r.Histogram("rups_engine_pair_seconds",
			"wall time of one pair resolution (searcher build through aggregation)", -20, 4),
		pairsStale: r.Counter("rups_engine_pairs_stale_total",
			"pairs resolved from degraded (aged) context and flagged stale"),
		pairsExpired: r.Counter("rups_engine_pairs_expired_total",
			"pairs refused because a context aged past the expiry horizon"),
		pairsShed: r.Counter("rups_engine_pairs_shed_total",
			"pairs shed because their deadline expired before resolution started"),
	}
})
