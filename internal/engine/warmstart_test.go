package engine_test

import (
	"math/rand"
	"reflect"
	"testing"

	"rups/internal/core"
	"rups/internal/engine"
	"rups/internal/obs"
	"rups/internal/trajectory"
)

// warmCounters reads the tracker's hit/fallback counters off a registry.
func warmCounters(reg *obs.Registry) (hits, fallbacks uint64) {
	return reg.Counter("rups_core_warmstart_hits_total", "").Value(),
		reg.Counter("rups_core_warmstart_fallbacks_total", "").Value()
}

// TestWarmResolveMatchesColdOracle is the warm-start equivalence proof: a
// convoy re-resolved across a ladder of growing contexts through the
// engine's tracked path must answer every tick exactly like the sequential
// cold core.Resolve oracle — the tracker may only reorder scan evaluation,
// never change a result. Run under -race this also exercises tracker
// hand-off across concurrent pair tasks.
func TestWarmResolveMatchesColdOracle(t *testing.T) {
	reg := obs.NewRegistry()
	obs.Enable(reg)
	defer obs.Disable()

	trajs := syntheticConvoy(21, 4, 400, 25, 1.0)
	p := convoyParams()
	e := engine.New(0)
	defer e.Close()

	var pairs [][2]int
	for a := 0; a < len(trajs); a++ {
		for b := a + 1; b < len(trajs); b++ {
			pairs = append(pairs, [2]int{a, b})
		}
	}

	resolved := 0
	for _, now := range []float64{1300, 1325, 1350, 1375, 1399} {
		views := make([]*trajectory.Aware, len(trajs))
		for i, a := range trajs {
			views[i] = a.PrefixUntil(now)
		}
		b, err := e.Admit(views...)
		if err != nil {
			t.Fatal(err)
		}
		got := b.ResolvePairsAt(pairs, p, now, core.Staleness{})
		for i, r := range got {
			wantEst, wantOK := core.Resolve(views[pairs[i][0]], views[pairs[i][1]], p)
			if r.OK != wantOK {
				t.Fatalf("t=%v pair (%d,%d): warm OK=%v, cold oracle OK=%v",
					now, r.A, r.B, r.OK, wantOK)
			}
			if !reflect.DeepEqual(r.Est, wantEst) {
				t.Fatalf("t=%v pair (%d,%d): warm and cold estimates differ:\n%+v\n%+v",
					now, r.A, r.B, r.Est, wantEst)
			}
			if r.OK {
				resolved++
			}
		}
	}
	if resolved == 0 {
		t.Fatal("no pair of the overlapping convoy ever resolved — fixture is broken")
	}
	hits, fallbacks := warmCounters(reg)
	if fallbacks == 0 {
		t.Error("first-contact segments should have counted as fallbacks")
	}
	if hits == 0 {
		t.Error("steady-state re-resolves never hit a warm hint")
	}
}

// TestTrackerDemotesOnCoherencyLoss drives one pair through a mid-convoy
// coherency loss: lock on, lose the partner to an uncorrelated impostor
// (every tracked segment must demote to cold scanning), then re-acquire.
// The re-acquisition tick must scan cold — zero warm hits — and still
// match the oracle, and the tick after it must warm back up.
func TestTrackerDemotesOnCoherencyLoss(t *testing.T) {
	reg := obs.NewRegistry()
	obs.Enable(reg)
	defer obs.Disable()

	trajs := syntheticConvoy(22, 2, 400, 25, 0.5)
	p := convoyParams()

	// An impostor wearing B's geometry but emitting pure noise: no shared
	// world signal, so every segment check fails its coherency threshold.
	rng := rand.New(rand.NewSource(99))
	g := trajectory.Geo{Marks: make([]trajectory.GeoMark, trajs[1].Len())}
	for i := range g.Marks {
		g.Marks[i] = trajectory.GeoMark{T: 999 + float64(i)}
	}
	noise := trajectory.NewAwareWidth(g, trajs[1].Width())
	for ch := 0; ch < noise.Width(); ch++ {
		for i := 0; i < noise.Len(); i++ {
			noise.SetPower(ch, i, -80+15*rng.NormFloat64())
		}
	}

	e := engine.New(0)
	defer e.Close()
	pairs := [][2]int{{0, 1}}
	resolveWith := func(partner *trajectory.Aware) engine.Result {
		b, err := e.Admit(trajs[0], partner)
		if err != nil {
			t.Fatal(err)
		}
		return b.ResolvePairsAt(pairs, p, 1399, core.Staleness{})[0]
	}

	// Tick 1: lock on.
	if r := resolveWith(trajs[1]); !r.OK {
		t.Fatal("overlapping pair did not resolve on first contact")
	}
	// Tick 2: coherency loss — refused (like the oracle) and demoted.
	if est, ok := core.Resolve(trajs[0], noise, p); ok {
		t.Fatalf("oracle resolved the uncorrelated impostor: %+v", est)
	}
	if r := resolveWith(noise); r.OK {
		t.Fatal("warm path resolved the uncorrelated impostor")
	}
	hitsLost, fallsLost := warmCounters(reg)

	// Tick 3: signal back. The demoted pair must rescan cold (no hits, new
	// fallbacks) and still agree with the oracle.
	r := resolveWith(trajs[1])
	wantEst, wantOK := core.Resolve(trajs[0], trajs[1], p)
	if r.OK != wantOK || !reflect.DeepEqual(r.Est, wantEst) {
		t.Fatalf("re-acquisition diverged from oracle: %+v vs %+v", r.Est, wantEst)
	}
	hitsRescan, fallsRescan := warmCounters(reg)
	if hitsRescan != hitsLost {
		t.Errorf("re-acquisition after demotion counted warm hits: %d → %d", hitsLost, hitsRescan)
	}
	if fallsRescan == fallsLost {
		t.Error("post-demotion rescan did not count fallbacks")
	}

	// Tick 4: the re-acquired lock warms the pair again.
	resolveWith(trajs[1])
	if hitsWarm, _ := warmCounters(reg); hitsWarm == hitsRescan {
		t.Error("re-locked pair never warmed back up")
	}
}

// TestWarmStaggeredContextsMatchOracle drives the warm path through a pair
// whose contexts differ in length (B started reporting 13 ticks earlier and
// leads by 150 marks), so one direction's true alignment lies beyond its
// partner's context every tick — the steady-state benchmark's shape. The
// warm path must not skip that direction (the cold oracle computes a real
// score there that can decide combine); it scans it seeded with the
// verified direction's score instead. Every tick must equal the oracle
// exactly, and the re-resolves must still hit warm.
func TestWarmStaggeredContextsMatchOracle(t *testing.T) {
	reg := obs.NewRegistry()
	obs.Enable(reg)
	defer obs.Disable()

	rng := rand.New(rand.NewSource(41))
	const span, lead, n = 700, 150, 400
	world := make([][]float64, 64)
	for ch := range world {
		world[ch] = make([]float64, span)
		v := -80 + 20*rng.NormFloat64()
		for i := range world[ch] {
			v += 2 * rng.NormFloat64()
			if v < -110 {
				v = -110
			}
			if v > -45 {
				v = -45
			}
			world[ch][i] = v
		}
	}
	build := func(offset int, t0 float64, seed int64) *trajectory.Aware {
		g := trajectory.Geo{Marks: make([]trajectory.GeoMark, n)}
		for i := range g.Marks {
			g.Marks[i] = trajectory.GeoMark{T: t0 + float64(i)}
		}
		a := trajectory.NewAwareWidth(g, 64)
		vrng := rand.New(rand.NewSource(seed))
		for ch := 0; ch < 64; ch++ {
			for i := 0; i < n; i++ {
				a.SetPower(ch, i, world[ch][offset+i]+0.5*vrng.NormFloat64())
			}
		}
		return a
	}
	ta := build(0, 1000, 5)
	tb := build(lead, 987, 6)

	p := convoyParams()
	e := engine.New(0)
	defer e.Close()
	resolved := 0
	for _, now := range []float64{1350, 1360, 1370, 1380} {
		va, vb := ta.PrefixUntil(now), tb.PrefixUntil(now)
		if va.Len() == vb.Len() {
			t.Fatal("fixture lost its stagger — contexts have equal length")
		}
		b, err := e.Admit(va, vb)
		if err != nil {
			t.Fatal(err)
		}
		r := b.ResolvePairsAt([][2]int{{0, 1}}, p, now, core.Staleness{})[0]
		wantEst, wantOK := core.Resolve(va, vb, p)
		if r.OK != wantOK {
			t.Fatalf("t=%v: warm OK=%v, cold oracle OK=%v", now, r.OK, wantOK)
		}
		if !reflect.DeepEqual(r.Est, wantEst) {
			t.Fatalf("t=%v: warm and cold estimates differ:\n%+v\n%+v", now, r.Est, wantEst)
		}
		if r.OK {
			resolved++
		}
	}
	if resolved == 0 {
		t.Fatal("staggered pair never resolved — fixture is broken")
	}
	if hits, _ := warmCounters(reg); hits == 0 {
		t.Error("staggered-context re-resolves never hit a warm hint")
	}
}

// TestResolvePairsAtDuplicatePairs: pairs is caller-controlled and may
// list the same pair twice. Each tracker must be attached to only one
// concurrent task (repeats resolve cold), so duplicated pairs cannot race
// on the shared hint state — run under -race, every occurrence must still
// match the oracle. The warm-up ticks make sure the duplicated resolves
// happen while hints exist.
func TestResolvePairsAtDuplicatePairs(t *testing.T) {
	trajs := syntheticConvoy(31, 2, 400, 25, 0.5)
	p := convoyParams()
	e := engine.New(0)
	defer e.Close()
	pairs := [][2]int{{0, 1}, {0, 1}, {0, 1}, {0, 1}}
	want, wantOK := core.Resolve(trajs[0], trajs[1], p)
	for tick := 0; tick < 3; tick++ {
		b, err := e.Admit(trajs...)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range b.ResolvePairsAt(pairs, p, 1399, core.Staleness{}) {
			if r.OK != wantOK || !reflect.DeepEqual(r.Est, want) {
				t.Fatalf("tick %d occurrence %d diverged from oracle: %+v vs %+v",
					tick, i, r.Est, want)
			}
		}
	}
	if !wantOK {
		t.Fatal("fixture pair never resolved — test exercised nothing")
	}
}

// TestTrackerEvictedAfterLongAbsence: a pair's cached tracker must not
// outlive the pair. After enough warm batches that never resolve the pair,
// its entry is evicted and the next contact scans cold — no warm hits.
func TestTrackerEvictedAfterLongAbsence(t *testing.T) {
	reg := obs.NewRegistry()
	obs.Enable(reg)
	defer obs.Disable()

	trajs := syntheticConvoy(37, 3, 400, 25, 0.5)
	p := convoyParams()
	e := engine.New(0)
	defer e.Close()
	b, err := e.Admit(trajs...)
	if err != nil {
		t.Fatal(err)
	}

	// Warm the {0,1} tracker up.
	for tick := 0; tick < 2; tick++ {
		if r := b.ResolvePairsAt([][2]int{{0, 1}}, p, 1399, core.Staleness{})[0]; !r.OK {
			t.Fatal("fixture pair did not resolve")
		}
	}
	// Let it idle well past the eviction horizon while other pairs keep
	// the engine busy.
	for tick := 0; tick < 70; tick++ {
		b.ResolvePairsAt([][2]int{{1, 2}}, p, 1399, core.Staleness{})
	}
	hitsIdle, _ := warmCounters(reg)
	if r := b.ResolvePairsAt([][2]int{{0, 1}}, p, 1399, core.Staleness{})[0]; !r.OK {
		t.Fatal("pair did not resolve after idle period")
	}
	if hitsBack, _ := warmCounters(reg); hitsBack != hitsIdle {
		t.Errorf("re-contact after long absence counted warm hits (%d → %d) — tracker was not evicted",
			hitsIdle, hitsBack)
	}
}

// TestTrackerResetOnExpiry: when the staleness policy expires a pair, the
// engine must drop its warm-start state — a context too old to answer with
// cannot vouch for a warm window either. The first resolve after
// re-contact scans cold.
func TestTrackerResetOnExpiry(t *testing.T) {
	reg := obs.NewRegistry()
	obs.Enable(reg)
	defer obs.Disable()

	trajs := syntheticConvoy(23, 2, 400, 30, 0.5)
	p := convoyParams()
	e := engine.New(0)
	defer e.Close()
	b, err := e.Admit(trajs...)
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{{0, 1}}
	pol := core.Staleness{StaleAfterSec: 30, ExpireAfterSec: 150}
	const newest = 1398.0 // youngest context mark in the fixture

	// Tick 1: fresh lock. Tick 2: the repeat resolve must warm-hit.
	if r := b.ResolvePairsAt(pairs, p, newest+5, pol)[0]; !r.OK {
		t.Fatal("fresh pair did not resolve")
	}
	hitsCold, _ := warmCounters(reg)
	if r := b.ResolvePairsAt(pairs, p, newest+10, pol)[0]; !r.OK {
		t.Fatal("repeat resolve failed")
	}
	hitsLocked, _ := warmCounters(reg)
	if hitsLocked == hitsCold {
		t.Error("repeat resolve on a locked pair never hit warm")
	}

	// Tick 3: the pair expires — refused, tracker reset.
	if r := b.ResolvePairsAt(pairs, p, newest+500, pol)[0]; r.OK {
		t.Fatal("expired pair resolved")
	}

	// Tick 4: contact again within freshness — resolves, but cold.
	hitsExpired, fallsExpired := warmCounters(reg)
	if r := b.ResolvePairsAt(pairs, p, newest+5, pol)[0]; !r.OK {
		t.Fatal("pair did not resolve after expiry reset")
	}
	hitsAfter, fallsAfter := warmCounters(reg)
	if hitsAfter != hitsExpired {
		t.Errorf("hints survived staleness expiry: hits %d → %d", hitsExpired, hitsAfter)
	}
	if fallsAfter == fallsExpired {
		t.Error("post-expiry rescan did not count fallbacks")
	}
}
