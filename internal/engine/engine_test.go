package engine_test

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"rups/internal/core"
	"rups/internal/engine"
	"rups/internal/trajectory"
)

// syntheticConvoy builds n trajectories over a shared per-channel world
// signal, vehicle v offset v·gap metres behind the leader — the same
// planted-alignment construction core's property tests use, extended to a
// platoon. Every adjacent pair overlaps by length−gap metres.
func syntheticConvoy(seed int64, n, length, gap int, noiseSigma float64) []*trajectory.Aware {
	rng := rand.New(rand.NewSource(seed))
	world := make([][]float64, 64)
	span := length + (n-1)*gap
	for ch := range world {
		world[ch] = make([]float64, span)
		v := -80 + 20*rng.NormFloat64()
		for i := range world[ch] {
			v += 2 * rng.NormFloat64()
			if v < -110 {
				v = -110
			}
			if v > -45 {
				v = -45
			}
			world[ch][i] = v
		}
	}
	out := make([]*trajectory.Aware, n)
	for vi := 0; vi < n; vi++ {
		// The leader (vehicle 0) is farthest along the road.
		offset := (n - 1 - vi) * gap
		g := trajectory.Geo{Marks: make([]trajectory.GeoMark, length)}
		for i := range g.Marks {
			g.Marks[i] = trajectory.GeoMark{T: 1000 - float64(vi) + float64(i)}
		}
		a := trajectory.NewAwareWidth(g, 64)
		vrng := rand.New(rand.NewSource(seed + int64(vi) + 1))
		for ch := 0; ch < 64; ch++ {
			for i := 0; i < length; i++ {
				a.SetPower(ch, i, world[ch][offset+i]+noiseSigma*vrng.NormFloat64())
			}
		}
		out[vi] = a
	}
	return out
}

func convoyParams() core.Params {
	p := core.DefaultParams()
	p.WindowChannels = 40
	return p
}

// TestEngineMatchesOracle is the equivalence proof the engine rests on: all
// pairs of a 6-vehicle platoon resolved concurrently must be bit-identical
// to the sequential core.Resolve oracle — estimates, SYN points, scores,
// everything. Run under -race this is also the engine's main race check.
func TestEngineMatchesOracle(t *testing.T) {
	trajs := syntheticConvoy(1, 6, 300, 15, 1.0)
	p := convoyParams()
	e := engine.New(0)
	defer e.Close()
	got, err := e.ResolveAll(trajs, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 15 {
		t.Fatalf("6-vehicle platoon has %d results, want 15", len(got))
	}
	resolved := 0
	for _, r := range got {
		wantEst, wantOK := core.Resolve(trajs[r.A], trajs[r.B], p)
		if r.OK != wantOK {
			t.Fatalf("pair (%d,%d): engine OK=%v, oracle OK=%v", r.A, r.B, r.OK, wantOK)
		}
		if !reflect.DeepEqual(r.Est, wantEst) {
			t.Fatalf("pair (%d,%d): engine and oracle estimates differ:\n%+v\n%+v",
				r.A, r.B, r.Est, wantEst)
		}
		if r.OK {
			resolved++
		}
	}
	if resolved == 0 {
		t.Fatal("no pair of the overlapping convoy resolved — fixture is broken")
	}
}

// TestEngineSingleWorkerNestedFanout: with one worker, the pair task runs
// on the worker and its nested direction fan-out must fall back inline
// instead of deadlocking on the saturated pool.
func TestEngineSingleWorkerNestedFanout(t *testing.T) {
	trajs := syntheticConvoy(2, 3, 250, 20, 1.0)
	p := convoyParams()
	e := engine.New(1)
	defer e.Close()
	got, err := e.ResolveAll(trajs, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		wantEst, wantOK := core.Resolve(trajs[r.A], trajs[r.B], p)
		if r.OK != wantOK || !reflect.DeepEqual(r.Est, wantEst) {
			t.Fatalf("pair (%d,%d) diverged from oracle under 1 worker", r.A, r.B)
		}
	}
}

// TestEngineConcurrentAppend: admission (Admit, on the goroutine that owns
// the trajectories) must fully decouple resolution from live trajectory
// growth — once Admit returns, vehicles keep appending marks while the
// batch resolves on its snapshots. Meaningful under -race.
func TestEngineConcurrentAppend(t *testing.T) {
	trajs := syntheticConvoy(3, 4, 250, 20, 1.0)
	p := convoyParams()
	e := engine.New(0)
	defer e.Close()

	// Admission happens at quiescence; appends start only afterwards.
	batch, err := e.Admit(trajs...)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for vi := range trajs {
		wg.Add(1)
		go func(a *trajectory.Aware) {
			defer wg.Done()
			power := make([]float64, 64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for ch := range power {
					power[ch] = -80 + float64(i%20)
				}
				a.Append(trajectory.GeoMark{T: 2000 + float64(i)}, power)
			}
		}(trajs[vi])
	}
	for round := 0; round < 3; round++ {
		res := batch.ResolveAll(p)
		if len(res) != 6 {
			t.Fatalf("round %d: %d results, want 6", round, len(res))
		}
	}
	close(stop)
	wg.Wait()

	// The snapshots really are decoupled: the live trajectories grew, the
	// batch's view did not.
	for vi, a := range trajs {
		if a.Len() <= 250 {
			t.Fatalf("vehicle %d never appended (len %d)", vi, a.Len())
		}
	}
}

// TestEngineDegenerate: empty batches, empty trajectories, and bad pair
// indexes all answer cleanly.
func TestEngineDegenerate(t *testing.T) {
	p := convoyParams()
	e := engine.New(2)
	defer e.Close()
	if res, err := e.ResolveAll(nil, p); err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v, %d results", err, len(res))
	}
	empty := trajectory.NewAware(trajectory.Geo{})
	res, err := e.ResolveAll([]*trajectory.Aware{empty, empty}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].OK {
		t.Fatalf("empty trajectories resolved: %+v", res)
	}
	trajs := syntheticConvoy(4, 2, 250, 20, 1.0)
	batch, err := e.Admit(trajs...)
	if err != nil {
		t.Fatal(err)
	}
	res = batch.ResolvePairs([][2]int{{0, 5}, {-1, 1}, {0, 1}}, p)
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	if res[0].OK || res[1].OK {
		t.Fatal("out-of-range pairs must not resolve")
	}
	if !res[2].OK {
		t.Fatal("valid pair of the overlapping convoy should resolve")
	}
	if res[2].A != 0 || res[2].B != 1 {
		t.Fatalf("result order not preserved: %+v", res[2])
	}
}

// TestEngineResolveSingle: the one-pair convenience entry matches the
// oracle too.
func TestEngineResolveSingle(t *testing.T) {
	trajs := syntheticConvoy(5, 2, 300, 25, 1.0)
	p := convoyParams()
	e := engine.New(0)
	defer e.Close()
	gotEst, gotOK, err := e.Resolve(trajs[0], trajs[1], p)
	if err != nil {
		t.Fatal(err)
	}
	wantEst, wantOK := core.Resolve(trajs[0], trajs[1], p)
	if gotOK != wantOK || !reflect.DeepEqual(gotEst, wantEst) {
		t.Fatalf("single resolve diverged: %+v vs %+v", gotEst, wantEst)
	}
}

// TestEngineAdmitAfterClose: Close used to leave the task channel closed
// while Admit/schedule still tried to send on it — a panic. Every admission
// entry point must now answer ErrClosed instead, and Close must stay
// idempotent.
func TestEngineAdmitAfterClose(t *testing.T) {
	trajs := syntheticConvoy(6, 2, 250, 20, 1.0)
	p := convoyParams()
	e := engine.New(2)

	// Admit a batch before Close: it must still resolve afterwards (the
	// pool degrades to inline execution) without panicking.
	batch, err := e.Admit(trajs...)
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent

	if _, err := e.Admit(trajs...); err != engine.ErrClosed {
		t.Fatalf("Admit after Close: err = %v, want ErrClosed", err)
	}
	if _, err := e.ResolveAll(trajs, p); err != engine.ErrClosed {
		t.Fatalf("ResolveAll after Close: err = %v, want ErrClosed", err)
	}
	if _, _, err := e.Resolve(trajs[0], trajs[1], p); err != engine.ErrClosed {
		t.Fatalf("Resolve after Close: err = %v, want ErrClosed", err)
	}

	res := batch.ResolveAll(p)
	if len(res) != 1 {
		t.Fatalf("pre-Close batch resolved %d pairs, want 1", len(res))
	}
	wantEst, wantOK := core.Resolve(trajs[0], trajs[1], p)
	if res[0].OK != wantOK || !reflect.DeepEqual(res[0].Est, wantEst) {
		t.Fatal("pre-Close batch diverged from oracle after Close")
	}
}

// TestEngineCloseDuringResolve hammers Close against in-flight admission
// and resolution — under -race this is the regression test for the
// send-on-closed-channel panic.
func TestEngineCloseDuringResolve(t *testing.T) {
	trajs := syntheticConvoy(7, 3, 250, 20, 1.0)
	p := convoyParams()
	for round := 0; round < 8; round++ {
		e := engine.New(2)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := e.ResolveAll(trajs, p); err != nil && err != engine.ErrClosed {
					t.Errorf("ResolveAll: %v", err)
				}
			}
		}()
		go func() {
			defer wg.Done()
			e.Close()
		}()
		wg.Wait()
	}
}
