package engine_test

import (
	"reflect"
	"testing"

	"rups/internal/core"
	"rups/internal/engine"
	"rups/internal/trajectory"
)

// TestStalenessTransitions drives one pair through the full degradation
// ladder as its context ages: resolved (fresh) → resolved-but-flagged
// (stale) → unresolved (expired). The estimate while stale must be the
// same d_r as while fresh — degraded means "older data", never "different
// answer" — and expiry must refuse cleanly rather than panic or fabricate.
func TestStalenessTransitions(t *testing.T) {
	e := engine.New(4)
	defer e.Close()
	trajs := syntheticConvoy(3, 2, 400, 30, 0.5)
	b, err := e.Admit(trajs...)
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{{0, 1}}
	pol := core.Staleness{StaleAfterSec: 30, ExpireAfterSec: 150}
	// syntheticConvoy stamps vehicle vi's marks T = 1000 - vi + i, so with
	// length 400 the younger context ends at T = 1398; the pair's age at
	// time now is now - 1398.
	const newest = 1398.0

	fresh := b.ResolvePairsAt(pairs, convoyParams(), newest+5, pol)[0]
	if !fresh.OK || fresh.Stale {
		t.Fatalf("fresh pair: OK=%v Stale=%v", fresh.OK, fresh.Stale)
	}

	stale := b.ResolvePairsAt(pairs, convoyParams(), newest+100, pol)[0]
	if !stale.OK || !stale.Stale {
		t.Fatalf("aged pair: OK=%v Stale=%v, want resolved and flagged", stale.OK, stale.Stale)
	}
	if !reflect.DeepEqual(stale.Est, fresh.Est) {
		t.Fatalf("stale estimate %+v differs from fresh %+v — degradation changed the answer", stale.Est, fresh.Est)
	}

	expired := b.ResolvePairsAt(pairs, convoyParams(), newest+200, pol)[0]
	if expired.OK || expired.Stale {
		t.Fatalf("expired pair: OK=%v Stale=%v, want refused", expired.OK, expired.Stale)
	}
	if !reflect.DeepEqual(expired.Est, core.Estimate{}) {
		t.Fatalf("expired pair carries an estimate: %+v", expired.Est)
	}
}

// A disabled policy must be bit-identical to the plain path.
func TestStalenessDisabledMatchesResolvePairs(t *testing.T) {
	e := engine.New(4)
	defer e.Close()
	trajs := syntheticConvoy(4, 3, 400, 25, 0.5)
	b, err := e.Admit(trajs...)
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{{0, 1}, {0, 2}, {1, 2}, {0, 99}}
	plain := b.ResolvePairs(pairs, convoyParams())
	at := b.ResolvePairsAt(pairs, convoyParams(), 1e12, core.Staleness{})
	if !reflect.DeepEqual(plain, at) {
		t.Fatalf("disabled policy diverged:\n%+v\nvs\n%+v", plain, at)
	}
}

// An empty context is infinitely old: the pair expires instead of
// panicking inside the resolver.
func TestStalenessEmptyContextExpires(t *testing.T) {
	e := engine.New(2)
	defer e.Close()
	trajs := syntheticConvoy(5, 1, 400, 30, 0.5)
	empty := trajectory.NewAwareWidth(trajectory.Geo{}, 64)
	b, err := e.Admit(trajs[0], empty)
	if err != nil {
		t.Fatal(err)
	}
	pol := core.DefaultStaleness()
	r := b.ResolvePairsAt([][2]int{{0, 1}}, convoyParams(), 1399, pol)[0]
	if r.OK || r.Stale {
		t.Fatalf("pair against an empty context: OK=%v Stale=%v", r.OK, r.Stale)
	}
	// Out-of-range indexes still refuse cleanly under a policy.
	r = b.ResolvePairsAt([][2]int{{0, 7}}, convoyParams(), 1399, pol)[0]
	if r.OK {
		t.Fatal("out-of-range pair resolved")
	}
}
