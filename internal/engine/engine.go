// Package engine batches relative-distance resolution across a platoon: it
// owns a bounded worker pool and resolves many vehicle pairs concurrently,
// fanning both the per-pair queries and each query's 2·NumSYN direction
// scans over the same pool. Results are bit-identical to the sequential
// core.Resolve oracle — every scheduled task is internally deterministic
// and writes only its own result slot, and combination happens in a fixed
// order — so concurrency changes latency, never answers.
//
// Trajectories are decoupled at query admission: the engine snapshots every
// live trajectory once (trajectory.Aware.Snapshot) before any worker
// touches it, so vehicles may keep appending marks while a batch resolves.
package engine

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rups/internal/core"
	"rups/internal/obs"
	"rups/internal/obs/flight"
	"rups/internal/trajectory"
)

// ErrClosed is returned by admission entry points called after Close.
var ErrClosed = errors.New("engine: closed")

// Engine is a bounded worker pool for batch relative-distance resolution.
// The zero value is not usable; construct with New and release with Close.
type Engine struct {
	workers int
	// tasks carries scheduled work to the workers. The channel doubles as
	// the workers' shutdown signal: Close closes it and the workers drain
	// and exit.
	tasks chan func()
	wg    sync.WaitGroup
	once  sync.Once

	// mu guards closed, and crucially is read-held across every channel
	// send: Close flips closed under the write lock before closing the
	// channel, so no submit can race a send against the close.
	mu     sync.RWMutex
	closed bool

	// trackers caches per-pair warm-start state across batches, keyed by
	// the pair's indexes into the admitted trajectory slice — callers using
	// ResolvePairsAt must therefore admit in a stable order (the linked-
	// convoy sim does: one fixed slot pair per link); a caller whose
	// admission order shifts between batches only loses warm windows (the
	// warm path is oracle-equivalent for any hint), it cannot get a wrong
	// answer. tmu guards the map; each Tracker itself is only touched by
	// its pair's single task. Entries are evicted on staleness expiry and
	// after trackerIdleBatches warm batches without use, so a departed
	// pair's state does not accumulate forever.
	tmu      sync.Mutex
	trackers map[[2]int]*trackerEntry
	// tgen counts ResolvePairsAt calls; each entry remembers the last
	// generation that used it.
	tgen uint64
	// classes remembers each pair's last staleness class (zero value =
	// fresh), so the flight recorder sees *transitions* — one event per
	// state change, not one per tick. Guarded by tmu; swept with trackers.
	classes map[[2]int]core.Freshness

	// nowBits is the float64 bits of the latest batch's sim time — the
	// timestamp run()'s flight events carry. The engine has no sim clock
	// of its own; ResolvePairsAt batches donate theirs.
	nowBits atomic.Uint64

	// clockNow, when set, is the time source deadline rechecks consult at
	// task start (same domain as the deadlines callers pass — sim seconds
	// in tests, wall-clock seconds in the resolution service). Nil keeps
	// the engine deterministic: deadlines are then only checked against
	// the batch's own now, before scheduling. Set via SetClock.
	clockNow func() float64
}

// SetClock installs the time source for deadline rechecks at task start.
// Must be called before the engine resolves its first batch (it is read
// concurrently by pool workers without synchronization afterwards).
func (e *Engine) SetClock(now func() float64) { e.clockNow = now }

// simNow returns the latest batch sim time donated to the engine.
func (e *Engine) simNow() float64 { return math.Float64frombits(e.nowBits.Load()) }

// trackerEntry is one cached tracker plus the last generation (warm batch)
// that touched it.
type trackerEntry struct {
	tk  *core.Tracker
	gen uint64
}

// trackerIdleBatches is how many consecutive warm batches a tracker entry
// may go unused before eviction. Convoy callers resolve every tracked pair
// every tick, so anything idle this long has left the platoon.
const trackerIdleBatches = 64

// tracker returns (creating on first contact) the warm-start state for a
// pair key.
func (e *Engine) tracker(pr [2]int) *core.Tracker {
	e.tmu.Lock()
	defer e.tmu.Unlock()
	if e.trackers == nil {
		e.trackers = make(map[[2]int]*trackerEntry)
	}
	te := e.trackers[pr]
	if te == nil {
		te = &trackerEntry{tk: core.NewTracker(0)}
		e.trackers[pr] = te
	}
	te.gen = e.tgen
	return te.tk
}

// dropTracker evicts a pair's warm-start state entirely (staleness expiry:
// a context too old to answer with cannot vouch for a warm window either,
// and an expired pair may never come back).
func (e *Engine) dropTracker(pr [2]int, fl *flight.Ring, now float64) {
	e.tmu.Lock()
	defer e.tmu.Unlock()
	if _, ok := e.trackers[pr]; ok && fl != nil {
		fl.Emit(flight.Event{T: now, Kind: flight.KindWarmEvict,
			A: int32(pr[0]), B: int32(pr[1]), V1: int64(e.tgen)})
	}
	delete(e.trackers, pr)
}

// beginTrackerGen opens a new tracker generation and sweeps out entries
// that no warm batch has touched for trackerIdleBatches generations. The
// sweep is O(cached pairs) once per ResolvePairsAt call. Swept pairs also
// lose their staleness-class memory: if they return, their first
// classification is a fresh transition again.
func (e *Engine) beginTrackerGen(fl *flight.Ring, now float64) {
	e.tmu.Lock()
	defer e.tmu.Unlock()
	e.tgen++
	for pr, te := range e.trackers {
		if e.tgen-te.gen > trackerIdleBatches {
			if fl != nil {
				fl.Emit(flight.Event{T: now, Kind: flight.KindWarmEvict,
					A: int32(pr[0]), B: int32(pr[1]), V1: int64(te.gen)})
			}
			delete(e.trackers, pr)
			delete(e.classes, pr)
		}
	}
}

// noteClass records a pair's staleness class and reports the previous one
// (zero value core.FreshContext for a first sighting) — the transition
// edge the flight recorder events on.
func (e *Engine) noteClass(pr [2]int, cls core.Freshness) core.Freshness {
	e.tmu.Lock()
	defer e.tmu.Unlock()
	if e.classes == nil {
		e.classes = make(map[[2]int]core.Freshness)
	}
	prev := e.classes[pr]
	e.classes[pr] = cls
	return prev
}

// New starts an engine with the given number of workers; workers <= 0 means
// GOMAXPROCS. The pool is shared by every batch submitted to this engine.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{workers: workers, tasks: make(chan func())}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.workers }

// worker drains the task channel until Close.
func (e *Engine) worker() {
	defer e.wg.Done()
	for t := range e.tasks {
		t()
	}
}

// Close shuts the pool down and waits for in-flight tasks to finish. Close
// is idempotent. Afterwards Admit/ResolveAll/Resolve return ErrClosed;
// batches admitted before Close still resolve correctly, degraded to
// inline (sequential) execution.
func (e *Engine) Close() {
	e.once.Do(func() {
		e.mu.Lock()
		e.closed = true
		e.mu.Unlock()
		close(e.tasks)
		e.wg.Wait()
	})
}

// isClosed reports whether Close has begun.
func (e *Engine) isClosed() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.closed
}

// submit hands t to an idle worker if one is ready and the pool is still
// open. The read lock spans the send so Close cannot close the channel
// between the closed check and the send.
func (e *Engine) submit(t func()) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return false
	}
	select {
	case e.tasks <- t:
		return true
	default:
		return false
	}
}

// run is the engine's core.Parallel implementation. Handoff is help-first:
// a task is given to an idle worker when one is ready to receive, and run
// inline on the calling goroutine otherwise. Workers executing a pair task
// therefore never block waiting for pool capacity when the pair fans out
// its direction scans — nested fan-out cannot deadlock, and the pool degrades
// to sequential execution under saturation (or after Close) instead of
// queueing.
func (e *Engine) run(tasks ...func()) {
	tel := engineTel.Get()
	fl := flight.Active()
	var wg sync.WaitGroup
	for _, t := range tasks {
		t := t
		wg.Add(1)
		if tel == nil {
			// Disabled-telemetry fast path: byte-for-byte the allocation
			// profile of the uninstrumented pool (one wrapper closure per
			// pooled handoff, nothing else).
			if !e.submit(func() { defer wg.Done(); t() }) {
				t()
				wg.Done()
			}
			continue
		}
		tel.tasks.Inc()
		// Count the task as queued before the handoff attempt: a worker may
		// start (and finish) it before submit even returns. A new depth
		// peak is a flight event: "the pool was at its most backed up
		// here" is exactly what a latency post-mortem wants on its
		// timeline. (fl is the handle cached before this loop.)
		if tel.peak.RaiseTo(tel.depth.Add(1)) && fl != nil {
			fl.Emit(flight.Event{T: e.simNow(), Kind: flight.KindQueueHighwater,
				A: -1, B: -1, V1: tel.peak.Value()})
		}
		if e.submit(func() {
			defer wg.Done()
			start := time.Now()
			t()
			tel.taskSec.Observe(time.Since(start).Seconds())
			tel.depth.Add(-1)
		}) {
			continue
		}
		tel.depth.Add(-1) // never reached a worker
		tel.inline.Inc()
		start := time.Now()
		t()
		tel.taskSec.Observe(time.Since(start).Seconds())
		wg.Done()
	}
	wg.Wait()
}

// Result is one resolved pair of a batch. A and B index the trajectory
// slice the batch was admitted with; Est is the resolved estimate
// (Est.Distance > 0 means B is ahead of A). OK is false when no SYN point
// passed the coherency threshold, the pair's indexes were out of range, or
// a staleness policy expired the pair's context. Stale flags results
// resolved from degraded (aged but not yet expired) context — see
// core.Staleness.
type Result struct {
	A, B  int
	Est   core.Estimate
	OK    bool
	Stale bool
	// Shed flags a pair whose deadline expired before its resolution
	// started (at admission, or — with SetClock installed — at task
	// start): the work was dropped unrun, OK is false, and the caller
	// should signal backpressure rather than treat the pair as
	// unresolvable. Pairs that started resolving always run to
	// completion; deadlines shed queued work, they do not cancel running
	// work.
	Shed bool
	// LatencySec is this pair's wall-clock resolve time (searcher build
	// through aggregation, queue wait excluded). Measured only when
	// telemetry is enabled or the pair is causally traced; 0 otherwise —
	// the disabled fast path never reads the clock.
	LatencySec float64
}

// Batch is a set of trajectories admitted for resolution: every trajectory
// was snapshotted exactly once when Admit ran. Resolution reads only the
// snapshots, so once Admit has returned, the live trajectories may keep
// appending marks while the batch resolves.
type Batch struct {
	e     *Engine
	snaps []*trajectory.Aware
}

// Admit is the copy-on-read admission boundary: it snapshots every
// trajectory once, on the calling goroutine. The caller must own the
// trajectories for the duration of the call — admit at a quiescent point
// (a tick boundary, or the vehicle goroutine handing its own trajectory
// over); Admit returning is the synchronization point after which appends
// may resume concurrently with the batch's resolution. Admission is the
// simulation's stand-in for the paper's context exchange, so it records an
// "exchange" span (Arg = trajectories admitted). Returns ErrClosed after
// Close.
func (e *Engine) Admit(trajs ...*trajectory.Aware) (*Batch, error) {
	if e.isClosed() {
		return nil, ErrClosed
	}
	rec := obs.ActiveRecorder()
	sp := rec.Start(rec.NewTrace(), "exchange")
	sp.Arg = int64(len(trajs))
	defer sp.End()
	b := &Batch{e: e, snaps: make([]*trajectory.Aware, len(trajs))}
	for i, t := range trajs {
		b.snaps[i] = t.Snapshot()
	}
	return b, nil
}

// Len reports how many trajectories the batch admitted.
func (b *Batch) Len() int { return len(b.snaps) }

// ResolveAll resolves every unordered pair (i < j) of the batch and
// returns the results in pair-enumeration order. Identical to calling the
// sequential core.Resolve on every pair of snapshots, bit for bit.
func (b *Batch) ResolveAll(p core.Params) []Result {
	pairs := make([][2]int, 0, len(b.snaps)*(len(b.snaps)-1)/2)
	for i := 0; i < len(b.snaps); i++ {
		for j := i + 1; j < len(b.snaps); j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return b.ResolvePairs(pairs, p)
}

// ResolvePairsAt resolves the given pairs under a staleness policy at sim
// time now — the graceful-degradation entry point for lossy-link callers.
// A pair's age is the older of its two contexts' ages (a resolution is
// only as current as its weaker side):
//
//   - expired pairs are not resolved at all: OK == false, no panic, no
//     silently wrong d_r from fossil context — and the pair's warm-start
//     tracker is evicted, so the next resolve after re-contact scans cold;
//   - stale pairs resolve normally but carry Stale == true;
//   - fresh pairs resolve normally.
//
// Unlike ResolvePairs (the cold oracle), this entry point warm-starts
// every pair from the engine's per-pair tracker cache: steady-state
// re-resolves pivot their scans on the previous tick's SYN offsets. A warm
// bounded scan is accepted only when it is proven to dominate the full
// scan range (and demotes to the cold scan otherwise), so results stay
// identical to the cold path's — with a zero-value (disabled) policy this
// returns exactly what ResolvePairs would, just faster on repeat contact.
func (b *Batch) ResolvePairsAt(pairs [][2]int, p core.Params, now float64, pol core.Staleness) []Result {
	return b.resolveAt(pairs, nil, nil, p, now, pol)
}

// ResolvePairsDeadlineAt is ResolvePairsAt with per-pair deadlines —
// the load-shedding entry point for service callers. deadlines is aligned
// with pairs; entry dl > 0 is the absolute time (same domain as now) by
// which pair pi's resolution must have *started*, and 0 means no deadline.
// A pair already past its deadline at admission is shed before any
// scheduling (Result.Shed, OK false); with SetClock installed, the
// deadline is rechecked when a worker picks the task up, so work that
// expired while queued behind a backlog is shed instead of run — expired
// answers nobody is waiting for anymore never displace live ones.
// Misaligned deadlines cannot be attributed and are ignored entirely.
func (b *Batch) ResolvePairsDeadlineAt(pairs [][2]int, deadlines []float64, p core.Params, now float64, pol core.Staleness) []Result {
	if deadlines != nil && len(deadlines) != len(pairs) {
		deadlines = nil
	}
	return b.resolveAt(pairs, nil, deadlines, p, now, pol)
}

// ResolvePairsTracedAt is ResolvePairsAt with causal stitching: refs is
// aligned with pairs, each entry the cross-vehicle trace ref of the
// context admission that produced the pair's snapshot (typically
// v2v.Session.TraceRef). A traced pair's queue wait and resolve pipeline
// record as children of the sender-side sync spans, so one trace tells
// the pair's whole story across both vehicles. Zero refs (and a nil
// slice) resolve exactly like ResolvePairsAt.
func (b *Batch) ResolvePairsTracedAt(pairs [][2]int, refs []obs.TraceRef, p core.Params, now float64, pol core.Staleness) []Result {
	if refs != nil && len(refs) != len(pairs) {
		refs = nil // misaligned refs cannot be attributed; resolve unstitched
	}
	return b.resolveAt(pairs, refs, nil, p, now, pol)
}

func (b *Batch) resolveAt(pairs [][2]int, refs []obs.TraceRef, dls []float64, p core.Params, now float64, pol core.Staleness) []Result {
	tel := engineTel.Get()
	fl := flight.Active()
	b.e.nowBits.Store(math.Float64bits(now))
	b.e.beginTrackerGen(fl, now)
	keep := make([][2]int, 0, len(pairs))
	kept := make([]int, 0, len(pairs))
	tks := make([]*core.Tracker, 0, len(pairs))
	var keepRefs []obs.TraceRef
	if refs != nil {
		keepRefs = make([]obs.TraceRef, 0, len(pairs))
	}
	var keepDls []float64
	if dls != nil {
		keepDls = make([]float64, 0, len(pairs))
	}
	out := make([]Result, len(pairs))
	stale := make([]bool, len(pairs))
	// Each tracker must be owned by exactly one concurrent pair task, but
	// pairs is caller-controlled and may list the same pair twice — only
	// the first occurrence gets the tracker; repeats resolve cold, which
	// yields the identical result (the warm path is oracle-equivalent)
	// without racing on the shared hint state.
	seen := make(map[[2]int]bool, len(pairs))
	for pi, pr := range pairs {
		out[pi] = Result{A: pr[0], B: pr[1]}
		if pr[0] < 0 || pr[0] >= len(b.snaps) || pr[1] < 0 || pr[1] >= len(b.snaps) {
			continue
		}
		if dls != nil && dls[pi] > 0 && now > dls[pi] {
			// Dead on arrival: the caller's deadline passed before this
			// batch was even admitted. Shed before classification or
			// scheduling — no tracker touch, no staleness transition.
			out[pi].Shed = true
			if tel != nil {
				tel.pairsShed.Inc()
			}
			if fl != nil {
				fl.Emit(flight.Event{T: now, Kind: flight.KindShed,
					A: int32(pr[0]), B: int32(pr[1]),
					V1: int64((now - dls[pi]) * 1000)})
			}
			continue
		}
		var tk *core.Tracker
		if !seen[pr] {
			seen[pr] = true
			tk = b.e.tracker(pr)
		}
		if pol.Enabled() {
			age := core.ContextAge(b.snaps[pr[0]], now)
			if ab := core.ContextAge(b.snaps[pr[1]], now); ab > age {
				age = ab
			}
			cls := pol.Classify(age)
			if fl != nil {
				if prev := b.e.noteClass(pr, cls); prev != cls {
					fl.Emit(flight.Event{T: now, Kind: flight.KindStaleness,
						A: int32(pr[0]), B: int32(pr[1]),
						V1: int64(cls), V2: int64(prev)})
					if cls == core.ExpiredContext {
						// Crossing into expiry refuses the pair — one of the
						// black-box anomaly triggers. Emit the expiry detail,
						// then dump (best-effort; the capsule is advisory).
						fl.Emit(flight.Event{T: now, Kind: flight.KindExpired,
							A: int32(pr[0]), B: int32(pr[1]),
							V1: int64(age * 1000)})
						//lint:ignore errflow best-effort black-box dump; resolution must not fail because the disk did
						_, _ = fl.Anomaly("refused_pair", flight.Event{T: now,
							Kind: flight.KindRefused,
							A:    int32(pr[0]), B: int32(pr[1]),
							V1: int64(age * 1000)})
					}
				}
			}
			switch cls {
			case core.ExpiredContext:
				if tel != nil {
					tel.pairsExpired.Inc()
				}
				if tk != nil {
					b.e.dropTracker(pr, fl, now)
				}
				continue
			case core.StaleContext:
				if tel != nil {
					tel.pairsStale.Inc()
				}
				stale[pi] = true
			}
		}
		keep = append(keep, pr)
		kept = append(kept, pi)
		tks = append(tks, tk)
		if keepRefs != nil {
			keepRefs = append(keepRefs, refs[pi])
		}
		if keepDls != nil {
			keepDls = append(keepDls, dls[pi])
		}
	}
	for i, r := range b.resolvePairs(keep, p, tks, keepRefs, keepDls, now) {
		pi := kept[i]
		if !r.Shed {
			r.Stale = stale[pi]
		}
		out[pi] = r
	}
	return out
}

// ResolvePairs resolves the given pairs (indexes into the admitted slice)
// and returns results in input order. Pairs with out-of-range indexes
// yield OK == false rather than a panic. This is the cold-scan entry
// point — no warm-start state is consulted or updated.
func (b *Batch) ResolvePairs(pairs [][2]int, p core.Params) []Result {
	return b.resolvePairs(pairs, p, nil, nil, nil, 0)
}

// resolvePairs fans the pair queries over the pool. tks, when non-nil, is
// aligned with pairs and attaches each pair's warm-start tracker to its
// searcher; each tracker is touched only by its own pair's task, so the
// fan-out needs no extra locking. refs, when non-nil, is aligned with
// pairs and stitches each pair's spans into its cross-vehicle trace; dls,
// when non-nil, is aligned with pairs and carries each pair's start
// deadline for the task-start recheck (see ResolvePairsDeadlineAt); now
// timestamps flight events from the fan-out.
func (b *Batch) resolvePairs(pairs [][2]int, p core.Params, tks []*core.Tracker, refs []obs.TraceRef, dls []float64, now float64) []Result {
	tel := engineTel.Get()
	rec := obs.ActiveRecorder()
	fl := flight.Active()
	var start time.Time
	if tel != nil {
		tel.batches.Inc()
		start = time.Now()
	}
	out := make([]Result, len(pairs))
	tasks := make([]func(), 0, len(pairs))
	// shedNow implements the task-start deadline recheck: queued work whose
	// deadline passed while it waited is dropped unrun. Only the slot owner
	// calls it, so writing out[pi] is race-free.
	clock := b.e.clockNow
	shedNow := func(pi int, pr [2]int) bool {
		if dls == nil || dls[pi] <= 0 || clock == nil {
			return false
		}
		late := clock() - dls[pi]
		if late <= 0 {
			return false
		}
		out[pi].Shed = true
		if tel != nil {
			tel.pairsShed.Inc()
		}
		if fl != nil {
			fl.Emit(flight.Event{T: now, Kind: flight.KindShed,
				A: int32(pr[0]), B: int32(pr[1]),
				V1: int64(late * 1000), V2: 1})
		}
		return true
	}
	for pi, pr := range pairs {
		pi, pr := pi, pr
		out[pi] = Result{A: pr[0], B: pr[1]}
		if pr[0] < 0 || pr[0] >= len(b.snaps) || pr[1] < 0 || pr[1] >= len(b.snaps) {
			continue
		}
		var ref obs.TraceRef
		if refs != nil {
			ref = refs[pi]
		}
		if ref.Trace == 0 && tel == nil {
			// Disabled-telemetry, unstitched fast path: byte-for-byte the
			// allocation profile of the uninstrumented fan-out — no clock
			// reads, no span values in the closure. (The deadline recheck
			// only reads a clock when the caller both passed deadlines and
			// installed one.)
			tasks = append(tasks, func() {
				if shedNow(pi, pr) {
					return
				}
				s := core.NewSearcher(b.snaps[pr[0]], b.snaps[pr[1]], p)
				if tks != nil && tks[pi] != nil {
					s.SetTracker(tks[pi])
				}
				if fl != nil {
					s.SetFlight(fl, pr[0], pr[1], now)
				}
				out[pi].Est, out[pi].OK = s.Resolve(b.e.run)
				s.Release()
			})
			continue
		}
		// The queue span opens at scheduling and closes when a worker (or
		// the inline fallback) picks the task up: its duration is the
		// pair's queue wait, the critical-path component no per-stage span
		// could otherwise see. Inert when the pair is unstitched.
		var qsp obs.Span
		if ref.Trace != 0 {
			qsp = rec.StartChild(ref.Trace, ref.Parent, "queue")
			qsp.Arg = int64(pr[0])<<32 | int64(pr[1])
		}
		tasks = append(tasks, func() {
			qsp.End()
			if shedNow(pi, pr) {
				return
			}
			t0 := time.Now()
			s := core.NewSearcher(b.snaps[pr[0]], b.snaps[pr[1]], p)
			if tks != nil && tks[pi] != nil {
				s.SetTracker(tks[pi])
			}
			s.SetTrace(ref)
			if fl != nil {
				s.SetFlight(fl, pr[0], pr[1], now)
			}
			out[pi].Est, out[pi].OK = s.Resolve(b.e.run)
			s.Release()
			lat := time.Since(t0).Seconds()
			out[pi].LatencySec = lat
			if tel != nil {
				tel.pairSec.Observe(lat)
			}
		})
	}
	b.e.run(tasks...)
	if tel != nil {
		tel.batchSec.Observe(time.Since(start).Seconds())
	}
	return out
}

// ResolveAll admits the platoon and resolves every unordered pair — the
// one-call form for callers already at a quiescent point. Returns ErrClosed
// after Close.
func (e *Engine) ResolveAll(trajs []*trajectory.Aware, p core.Params) ([]Result, error) {
	b, err := e.Admit(trajs...)
	if err != nil {
		return nil, err
	}
	return b.ResolveAll(p), nil
}

// Resolve answers a single pair through the pool (admitting both
// trajectories first). The batch entry points amortize better; this exists
// for callers resolving one query at a time. Returns ErrClosed after Close.
func (e *Engine) Resolve(a, b *trajectory.Aware, p core.Params) (core.Estimate, bool, error) {
	batch, err := e.Admit(a, b)
	if err != nil {
		return core.Estimate{}, false, err
	}
	s := core.NewSearcher(batch.snaps[0], batch.snaps[1], p)
	defer s.Release()
	est, ok := s.Resolve(e.run)
	return est, ok, nil
}
