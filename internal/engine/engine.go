// Package engine batches relative-distance resolution across a platoon: it
// owns a bounded worker pool and resolves many vehicle pairs concurrently,
// fanning both the per-pair queries and each query's 2·NumSYN direction
// scans over the same pool. Results are bit-identical to the sequential
// core.Resolve oracle — every scheduled task is internally deterministic
// and writes only its own result slot, and combination happens in a fixed
// order — so concurrency changes latency, never answers.
//
// Trajectories are decoupled at query admission: the engine snapshots every
// live trajectory once (trajectory.Aware.Snapshot) before any worker
// touches it, so vehicles may keep appending marks while a batch resolves.
package engine

import (
	"runtime"
	"sync"

	"rups/internal/core"
	"rups/internal/trajectory"
)

// Engine is a bounded worker pool for batch relative-distance resolution.
// The zero value is not usable; construct with New and release with Close.
type Engine struct {
	workers int
	// tasks carries scheduled work to the workers. The channel doubles as
	// the workers' shutdown signal: Close closes it and the workers drain
	// and exit.
	tasks chan func()
	wg    sync.WaitGroup
	once  sync.Once
}

// New starts an engine with the given number of workers; workers <= 0 means
// GOMAXPROCS. The pool is shared by every batch submitted to this engine.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{workers: workers, tasks: make(chan func())}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.workers }

// worker drains the task channel until Close.
func (e *Engine) worker() {
	defer e.wg.Done()
	for t := range e.tasks {
		t()
	}
}

// Close shuts the pool down and waits for in-flight tasks to finish. The
// engine must not be used afterwards. Close is idempotent.
func (e *Engine) Close() {
	e.once.Do(func() {
		close(e.tasks)
		e.wg.Wait()
	})
}

// run is the engine's core.Parallel implementation. Handoff is help-first:
// a task is given to an idle worker when one is ready to receive, and run
// inline on the calling goroutine otherwise. Workers executing a pair task
// therefore never block waiting for pool capacity when the pair fans out
// its direction scans — nested fan-out cannot deadlock, and the pool degrades
// to sequential execution under saturation instead of queueing.
func (e *Engine) run(tasks ...func()) {
	var wg sync.WaitGroup
	for _, t := range tasks {
		t := t
		wg.Add(1)
		select {
		case e.tasks <- func() { defer wg.Done(); t() }:
		default:
			t()
			wg.Done()
		}
	}
	wg.Wait()
}

// Result is one resolved pair of a batch. A and B index the trajectory
// slice the batch was admitted with; Est is the resolved estimate
// (Est.Distance > 0 means B is ahead of A). OK is false when no SYN point
// passed the coherency threshold, or the pair's indexes were out of range.
type Result struct {
	A, B int
	Est  core.Estimate
	OK   bool
}

// Batch is a set of trajectories admitted for resolution: every trajectory
// was snapshotted exactly once when Admit ran. Resolution reads only the
// snapshots, so once Admit has returned, the live trajectories may keep
// appending marks while the batch resolves.
type Batch struct {
	e     *Engine
	snaps []*trajectory.Aware
}

// Admit is the copy-on-read admission boundary: it snapshots every
// trajectory once, on the calling goroutine. The caller must own the
// trajectories for the duration of the call — admit at a quiescent point
// (a tick boundary, or the vehicle goroutine handing its own trajectory
// over); Admit returning is the synchronization point after which appends
// may resume concurrently with the batch's resolution.
func (e *Engine) Admit(trajs ...*trajectory.Aware) *Batch {
	b := &Batch{e: e, snaps: make([]*trajectory.Aware, len(trajs))}
	for i, t := range trajs {
		b.snaps[i] = t.Snapshot()
	}
	return b
}

// Len reports how many trajectories the batch admitted.
func (b *Batch) Len() int { return len(b.snaps) }

// ResolveAll resolves every unordered pair (i < j) of the batch and
// returns the results in pair-enumeration order. Identical to calling the
// sequential core.Resolve on every pair of snapshots, bit for bit.
func (b *Batch) ResolveAll(p core.Params) []Result {
	pairs := make([][2]int, 0, len(b.snaps)*(len(b.snaps)-1)/2)
	for i := 0; i < len(b.snaps); i++ {
		for j := i + 1; j < len(b.snaps); j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return b.ResolvePairs(pairs, p)
}

// ResolvePairs resolves the given pairs (indexes into the admitted slice)
// and returns results in input order. Pairs with out-of-range indexes
// yield OK == false rather than a panic.
func (b *Batch) ResolvePairs(pairs [][2]int, p core.Params) []Result {
	out := make([]Result, len(pairs))
	tasks := make([]func(), 0, len(pairs))
	for pi, pr := range pairs {
		pi, pr := pi, pr
		out[pi] = Result{A: pr[0], B: pr[1]}
		if pr[0] < 0 || pr[0] >= len(b.snaps) || pr[1] < 0 || pr[1] >= len(b.snaps) {
			continue
		}
		tasks = append(tasks, func() {
			s := core.NewSearcher(b.snaps[pr[0]], b.snaps[pr[1]], p)
			out[pi].Est, out[pi].OK = s.Resolve(b.e.run)
		})
	}
	b.e.run(tasks...)
	return out
}

// ResolveAll admits the platoon and resolves every unordered pair — the
// one-call form for callers already at a quiescent point.
func (e *Engine) ResolveAll(trajs []*trajectory.Aware, p core.Params) []Result {
	return e.Admit(trajs...).ResolveAll(p)
}

// Resolve answers a single pair through the pool (admitting both
// trajectories first). The batch entry points amortize better; this exists
// for callers resolving one query at a time.
func (e *Engine) Resolve(a, b *trajectory.Aware, p core.Params) (core.Estimate, bool) {
	batch := e.Admit(a, b)
	return core.NewSearcher(batch.snaps[0], batch.snaps[1], p).Resolve(e.run)
}
