package engine_test

import (
	"reflect"
	"sync"
	"testing"

	"rups/internal/core"
	"rups/internal/engine"
)

// TestDeadlineShedDeadOnArrival: a pair whose deadline passed before the
// batch was admitted is shed before any scheduling — Shed true, OK false —
// while pairs with live or absent deadlines resolve normally.
func TestDeadlineShedDeadOnArrival(t *testing.T) {
	trajs := syntheticConvoy(3, 3, 250, 20, 1.0)
	p := convoyParams()
	e := engine.New(0)
	defer e.Close()
	b, err := e.Admit(trajs...)
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{{0, 1}, {1, 2}, {0, 2}}
	now := 2000.0
	dls := []float64{now - 0.001, now + 10, 0} // expired, live, none
	res := b.ResolvePairsDeadlineAt(pairs, dls, p, now, core.Staleness{})
	if !res[0].Shed || res[0].OK {
		t.Fatalf("expired pair: %+v, want shed and not OK", res[0])
	}
	for i := 1; i < 3; i++ {
		if res[i].Shed || !res[i].OK {
			t.Fatalf("live pair %d: %+v, want resolved", i, res[i])
		}
	}
	// Shed results must match the cold oracle for the surviving pairs.
	want := b.ResolvePairs(pairs[1:], p)
	for i := range want {
		if res[i+1].Est.Distance != want[i].Est.Distance {
			t.Fatalf("pair %d estimate diverged from oracle", i+1)
		}
	}
}

// TestDeadlineRecheckAtTaskStart: with SetClock installed, a deadline that
// was live at admission but expired while the task waited for a worker is
// shed when the task starts, not run.
func TestDeadlineRecheckAtTaskStart(t *testing.T) {
	trajs := syntheticConvoy(4, 3, 250, 20, 1.0)
	p := convoyParams()
	e := engine.New(2)
	defer e.Close()
	// The injected clock runs far ahead of the batch's now: every deadline
	// that survives the admission check has expired by the time any task
	// starts. Deterministic — no real clock involved.
	e.SetClock(func() float64 { return 1e9 })
	b, err := e.Admit(trajs...)
	if err != nil {
		t.Fatal(err)
	}
	now := 2000.0
	pairs := [][2]int{{0, 1}, {1, 2}}
	dls := []float64{now + 5, now + 5} // live at admission, dead at start
	res := b.ResolvePairsDeadlineAt(pairs, dls, p, now, core.Staleness{})
	for i, r := range res {
		if !r.Shed || r.OK {
			t.Fatalf("pair %d: %+v, want shed at task start", i, r)
		}
	}
	// Zero deadlines never consult the clock: the same batch still
	// resolves everything.
	res = b.ResolvePairsDeadlineAt(pairs, []float64{0, 0}, p, now, core.Staleness{})
	for i, r := range res {
		if r.Shed || !r.OK {
			t.Fatalf("undeadlined pair %d: %+v, want resolved", i, r)
		}
	}
}

// TestDeadlineNilMatchesResolvePairsAt: nil and misaligned deadline slices
// degrade to plain ResolvePairsAt, bit for bit.
func TestDeadlineNilMatchesResolvePairsAt(t *testing.T) {
	trajs := syntheticConvoy(5, 3, 250, 20, 1.0)
	p := convoyParams()
	pol := core.Staleness{StaleAfterSec: 30, ExpireAfterSec: 150}
	e := engine.New(0)
	defer e.Close()
	b, err := e.Admit(trajs...)
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{{0, 1}, {1, 2}, {0, 2}}
	now := 1250.0 // newest mark T≈1249 → fresh
	want := b.ResolvePairsAt(pairs, p, now, pol)
	gotNil := b.ResolvePairsDeadlineAt(pairs, nil, p, now, pol)
	gotBad := b.ResolvePairsDeadlineAt(pairs, []float64{1}, p, now, pol)
	stripLat := func(rs []engine.Result) []engine.Result {
		out := append([]engine.Result(nil), rs...)
		for i := range out {
			out[i].LatencySec = 0
		}
		return out
	}
	if !reflect.DeepEqual(stripLat(want), stripLat(gotNil)) {
		t.Fatalf("nil deadlines diverged:\n%+v\n%+v", want, gotNil)
	}
	if !reflect.DeepEqual(stripLat(want), stripLat(gotBad)) {
		t.Fatalf("misaligned deadlines diverged:\n%+v\n%+v", want, gotBad)
	}
}

// TestEngineCloseDuringResolvePairsAt is the shutdown-race regression test
// for the staleness/deadline entry point: Close racing an in-flight
// ResolvePairsAt (and ResolvePairsDeadlineAt) batch must neither panic nor
// deadlock — admitted batches degrade to inline execution and still return
// oracle-correct results. Run under -race.
func TestEngineCloseDuringResolvePairsAt(t *testing.T) {
	trajs := syntheticConvoy(6, 3, 250, 20, 1.0)
	p := convoyParams()
	pol := core.Staleness{StaleAfterSec: 30, ExpireAfterSec: 150}
	pairs := [][2]int{{0, 1}, {1, 2}, {0, 2}}
	for round := 0; round < 8; round++ {
		e := engine.New(2)
		e.SetClock(func() float64 { return 1250.0 })
		b, err := e.Admit(trajs...)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				res := b.ResolvePairsAt(pairs, p, 1250.0, pol)
				for pi, r := range res {
					if !r.OK {
						t.Errorf("round %d iter %d pair %d not OK", round, i, pi)
					}
				}
				dres := b.ResolvePairsDeadlineAt(pairs, []float64{1e9, 1e9, 1e9}, p, 1250.0, pol)
				for pi, r := range dres {
					if !r.OK || r.Shed {
						t.Errorf("round %d iter %d deadlined pair %d: %+v", round, i, pi, r)
					}
				}
			}
		}()
		go func() {
			defer wg.Done()
			e.Close()
		}()
		wg.Wait()
		e.Close()
	}
}
