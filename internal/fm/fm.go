// Package fm simulates the FM broadcast band (87.5–108 MHz) as a second
// ambient fingerprinting source — the paper's first future-work direction
// (§VII: "further improve the accuracy of RUPS by involving other ambient
// wireless signals such as the 3G/4G, FM and TV bands").
//
// FM differs from GSM in ways that matter for fingerprinting: far fewer
// carriers (a metro area receives a few dozen stations instead of 194
// cells), much stronger and taller transmitters (city-wide coverage, so
// path loss varies slowly), and a ~3 m wavelength, so multipath fading
// decorrelates over metres rather than fractions of a metre. FM rows are
// therefore individually less discriminative but almost never missing and
// far more robust to scan gaps — complementary to GSM.
package fm

import (
	"fmt"
	"math"

	"rups/internal/geo"
	"rups/internal/gsm"
	"rups/internal/noise"
)

// NumStations is the number of receivable FM broadcast stations in the
// simulated metro area.
const NumStations = 28

// StationFreqMHz returns the carrier frequency of station index i, spread
// over the 87.5–108 MHz band on the 100 kHz grid.
func StationFreqMHz(i int) float64 {
	if i < 0 || i >= NumStations {
		panic(fmt.Sprintf("fm: station index %d out of range", i))
	}
	return 87.7 + float64(i)*(108.0-88.0)/NumStations
}

// Propagation constants of the FM model.
const (
	txPowerDBm = 42.0 // ERP net of the receiving antenna in a vehicle cabin
	refDistM   = 100.0
	refLossDB  = 60.0
	pathExp    = 2.5 // high antennas: near free-space decay
	// Shadowing and fading scales; see the package comment for why they
	// are smoother than GSM's.
	shadowSigmaDB = 4.0
	shadowCorrM   = 250.0
	fadeSigmaDB   = 4.5
	fadeCorrM     = 2.6
	// Temporal drift: broadcast carriers are extremely stable; what varies
	// is the propagation environment.
	driftSigmaDB = 1.5
	driftTauS    = 1200.0
	// coverLossDB is the extra attenuation under an elevated deck — much
	// milder than GSM's because the long wavelength diffracts around the
	// structure.
	coverLossDB = 3.0
)

// Field is the deterministic FM RSSI field. It implements the same
// Sample(pos, ch, t) contract as gsm.Field, so the scanner can drive both
// through one interface.
type Field struct {
	seed     uint64
	stations []geo.Vec2
	zone     gsm.Zoning
}

// NewField places NumStations transmitters deterministically on a wide ring
// around (and a few inside) the area.
func NewField(seed uint64, area gsm.Bounds, zone gsm.Zoning) *Field {
	f := &Field{seed: seed, zone: zone}
	cx := (area.MinX + area.MaxX) / 2
	cy := (area.MinY + area.MaxY) / 2
	span := math.Max(area.MaxX-area.MinX, area.MaxY-area.MinY)
	for i := 0; i < NumStations; i++ {
		ang := 2 * math.Pi * noise.Uniform(seed, uint64(i), 1)
		// Most stations sit well outside the drive area (broadcast masts on
		// the outskirts); a few are downtown towers.
		rad := span * (0.7 + 1.3*noise.Uniform(seed, uint64(i), 2))
		if i%7 == 0 {
			rad = span * 0.2 * noise.Uniform(seed, uint64(i), 3)
		}
		f.stations = append(f.stations, geo.Vec2{
			X: cx + rad*math.Cos(ang),
			Y: cy + rad*math.Sin(ang),
		})
	}
	return f
}

// Channels implements the scanner source contract.
func (f *Field) Channels() int { return NumStations }

// Stations returns the transmitter positions (read-only).
func (f *Field) Stations() []geo.Vec2 { return f.stations }

// Sample returns the RSSI in dBm of station ch at (pos, t), clamped to the
// receiver's dynamic range.
func (f *Field) Sample(pos geo.Vec2, ch int, t float64) float64 {
	if ch < 0 || ch >= NumStations {
		panic(fmt.Sprintf("fm: station %d out of range", ch))
	}
	st := f.stations[ch]
	d := pos.Dist(st)
	if d < refDistM {
		d = refDistM
	}
	link := uint64(ch)

	shadow := noise.Field2D{
		Seed:  noise.Hash(f.seed, link, 0x5AAD),
		Scale: shadowCorrM,
	}.At(pos.X, pos.Y) * shadowSigmaDB
	fade := noise.Field2D{
		Seed:  noise.Hash(f.seed, link, 0xFADE),
		Scale: fadeCorrM,
	}.At(pos.X, pos.Y) * fadeSigmaDB
	drift := noise.Field1D{
		Seed:  noise.Hash(f.seed, link, 0x510),
		Scale: driftTauS,
	}.At(t) * driftSigmaDB

	rx := txPowerDBm - refLossDB - 10*pathExp*math.Log10(d/refDistM) +
		shadow + fade + drift
	if f.zone != nil && f.zone.EnvAt(pos) == gsm.UnderElevated {
		rx -= coverLossDB
	}
	if rx < gsm.NoiseFloorDBm {
		rx = gsm.NoiseFloorDBm
	}
	if rx > gsm.SaturationDBm {
		rx = gsm.SaturationDBm
	}
	return rx
}
