package fm

import (
	"math"
	"testing"

	"rups/internal/geo"
	"rups/internal/gsm"
	"rups/internal/stats"
)

func testFMField(seed uint64) *Field {
	area := gsm.Bounds{MinX: 0, MinY: 0, MaxX: 4000, MaxY: 4000}
	return NewField(seed, area, gsm.ConstZone(gsm.Urban))
}

func TestStationFreqs(t *testing.T) {
	seen := map[float64]bool{}
	for i := 0; i < NumStations; i++ {
		f := StationFreqMHz(i)
		if f < 87.5 || f > 108 {
			t.Fatalf("station %d at %v MHz outside the FM band", i, f)
		}
		if seen[f] {
			t.Fatalf("duplicate frequency %v", f)
		}
		seen[f] = true
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range station")
		}
	}()
	StationFreqMHz(NumStations)
}

func TestSampleRangeAndDeterminism(t *testing.T) {
	f := testFMField(1)
	pos := geo.Vec2{X: 2000, Y: 2000}
	for ch := 0; ch < NumStations; ch++ {
		v := f.Sample(pos, ch, 100)
		if v < gsm.NoiseFloorDBm || v > gsm.SaturationDBm {
			t.Fatalf("station %d RSSI %v out of range", ch, v)
		}
		if v != f.Sample(pos, ch, 100) {
			t.Fatal("not deterministic")
		}
	}
	if f.Channels() != NumStations {
		t.Errorf("Channels = %d", f.Channels())
	}
}

func TestBroadcastCoverage(t *testing.T) {
	// FM stations cover the whole metro: most stations audible well above
	// the floor everywhere in the drive area, unlike GSM cells.
	f := testFMField(2)
	for _, pos := range []geo.Vec2{{X: 500, Y: 500}, {X: 2000, Y: 2000}, {X: 3500, Y: 1000}} {
		audible := 0
		for ch := 0; ch < NumStations; ch++ {
			if gsm.Excess(f.Sample(pos, ch, 0)) > 10 {
				audible++
			}
		}
		if audible < NumStations*3/4 {
			t.Errorf("only %d/%d stations audible at %v", audible, NumStations, pos)
		}
	}
}

func TestSmoothFading(t *testing.T) {
	// FM fading decorrelates over metres, not fractions of a metre: the
	// correlation between vectors 1 m apart is much higher than GSM's.
	f := testFMField(3)
	var a, b []float64
	for i := 0; i < 400; i++ {
		pos := geo.Vec2{X: 300 + float64(i)*9.7, Y: 1500}
		for ch := 0; ch < NumStations; ch += 5 {
			a = append(a, f.Sample(pos, ch, 0))
			b = append(b, f.Sample(pos.Add(geo.Vec2{X: 1}), ch, 0))
		}
	}
	if r := stats.Pearson(a, b); r < 0.9 {
		t.Errorf("1 m fading correlation = %v, want very high for FM", r)
	}
}

func TestTemporalStability(t *testing.T) {
	// Broadcast carriers are more stable over 25 minutes than GSM cells.
	f := testFMField(4)
	pos := geo.Vec2{X: 1700, Y: 2300}
	var now, later []float64
	for trial := 0; trial < 60; trial++ {
		t0 := float64(trial) * 60
		for ch := 0; ch < NumStations; ch++ {
			now = append(now, f.Sample(pos, ch, t0))
			later = append(later, f.Sample(pos, ch, t0+1500))
		}
	}
	if r := stats.Pearson(now, later); r < 0.95 {
		t.Errorf("25-minute FM correlation = %v", r)
	}
}

func TestUnderElevatedMilder(t *testing.T) {
	// The FM cover loss is milder than GSM's 8 dB.
	area := gsm.Bounds{MinX: 0, MinY: 0, MaxX: 4000, MaxY: 4000}
	open := NewField(5, area, gsm.ConstZone(gsm.Urban))
	covered := NewField(5, area, gsm.ConstZone(gsm.UnderElevated))
	pos := geo.Vec2{X: 2000, Y: 2000}
	var diff stats.Online
	for ch := 0; ch < NumStations; ch++ {
		diff.Add(open.Sample(pos, ch, 0) - covered.Sample(pos, ch, 0))
	}
	if math.Abs(diff.Mean()-coverLossDB) > 1 {
		t.Errorf("cover loss = %v dB, want ~%v", diff.Mean(), coverLossDB)
	}
}

func TestSamplePanics(t *testing.T) {
	f := testFMField(6)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f.Sample(geo.Vec2{}, NumStations, 0)
}
