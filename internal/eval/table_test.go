package eval

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	tb := &Table{
		ID:     "x",
		Title:  "T",
		Header: []string{"a", "b"},
	}
	tb.AddRow("1", "two, with comma")
	tb.Note("hello")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d: %q", len(lines), out)
	}
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], `"two, with comma"`) {
		t.Errorf("comma cell not quoted: %q", lines[1])
	}
	if !strings.Contains(lines[2], "# hello") {
		t.Errorf("note missing: %q", lines[2])
	}
}

func TestOptionsN(t *testing.T) {
	if (Options{Quick: true}).n(100, 7) != 7 {
		t.Error("quick count wrong")
	}
	if (Options{}).n(100, 7) != 100 {
		t.Error("full count wrong")
	}
}

func TestFormatHelpers(t *testing.T) {
	if f(1234.5678) != "1.23e+03" {
		t.Errorf("f = %q", f(1234.5678))
	}
	if f2(1.005) == "" {
		t.Error("f2 empty")
	}
}
