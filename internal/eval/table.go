// Package eval implements one experiment per table and figure of the
// paper's evaluation (§III Figs 1-4; §VI Figs 9-12; the §V latency and
// scalability arithmetic). Each experiment regenerates the rows or series
// the paper plots and annotates them with the paper's reported values where
// it states any, so EXPERIMENTS.md can record paper-vs-measured directly.
package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a titled grid of rows.
type Table struct {
	ID     string // experiment id, e.g. "fig2"
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries paper-reference numbers and commentary.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a commentary line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			wdt := 0
			if i < len(widths) {
				wdt = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", wdt, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV emits the table as CSV (header row first); notes become
// trailing comment-style rows so nothing is lost in the export.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{"# " + n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Options control experiment scale.
type Options struct {
	Seed uint64
	// Quick shrinks sample counts for tests and smoke runs; full runs
	// reproduce the paper's counts (e.g. 500 query points per setting).
	Quick bool
}

// n picks a sample count based on Quick.
func (o Options) n(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.3g", v) }

// f2 formats with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
