package eval

// Ablations of the design choices DESIGN.md §5 calls out: each row switches
// one mechanism off (or swaps it) on the same urban scenario and reports
// what happens to resolution rate and accuracy.

import (
	"fmt"

	"rups/internal/city"
	"rups/internal/core"
	"rups/internal/gsm"
	"rups/internal/sim"
	"rups/internal/stats"
)

// ablationCase is one row of the ablation table.
type ablationCase struct {
	name   string
	params func() core.Params
	// scenario mutates the base scenario (nil = unchanged).
	scenario func(*sim.Scenario)
}

// Ablations runs the design-choice ablations on a 4-lane urban scenario.
func Ablations(o Options) *Table {
	base := func() core.Params { return core.DefaultParams() }
	cases := []ablationCase{
		{"baseline (paper configuration)", base, nil},
		{"Eq.2 column-mean term off", func() core.Params {
			p := base()
			p.NoColumnTerm = true
			// Without the column term the score is the mean per-channel
			// correlation alone (range [-1,1]); rescale the threshold to
			// the equivalent operating point.
			p.Coherency = 0.35
			p.ShortCoherency = 0.3
			return p
		}, nil},
		{"single-sided sliding", func() core.Params {
			p := base()
			p.SingleSided = true
			return p
		}, nil},
		{"all 194 channels (no top-45 selection)", func() core.Params {
			p := base()
			p.WindowChannels = gsm.NumChannels
			return p
		}, nil},
		{"single SYN point (no aggregation)", func() core.Params {
			p := base()
			p.Aggregation = core.SingleSYN
			p.NumSYN = 1
			return p
		}, nil},
		{"fixed window (no §V-C flexibility), short context", func() core.Params {
			p := base()
			p.MinWindowMeters = p.WindowMeters
			p.ShortCoherency = p.Coherency
			return p
		}, func(sc *sim.Scenario) {
			sc.DistanceM = 130 // a just-turned-onto-this-road situation
			sc.Trucks = 0
		}},
		{"flexible window (baseline), short context", base, func(sc *sim.Scenario) {
			sc.DistanceM = 130
			sc.Trucks = 0
		}},
		{"heading gate off", func() core.Params {
			p := base()
			p.HeadingGateRad = 0
			return p
		}, nil},
		{"no missing-channel interpolation", base, func(sc *sim.Scenario) {
			sc.SkipInterpolation = true
		}},
	}

	t := &Table{
		ID:    "ablations",
		Title: "Design-choice ablations (4-lane urban, 4 front radios, truck perturbations)",
		Header: []string{"variant", "resolved", "RDE mean (m)", "RDE p90 (m)",
			"SYN err mean (m)", "false SYN (unrelated)"},
	}
	queries := o.n(300, 20)

	// An unrelated vehicle in the same city on a different road: the SYN
	// search must reject it. Built once; prefixes probe each variant's
	// false-positive behaviour.
	strangerSc := sim.DefaultScenario(o.Seed+2000, city.FourLaneUrban)
	strangerSc.RoadIndex = 1
	strangerSc.Trucks = 0
	stranger := sim.Execute(strangerSc)

	for _, c := range cases {
		sc := sim.DefaultScenario(o.Seed+2000, city.FourLaneUrban)
		sc.Trucks = 3
		if c.scenario != nil {
			c.scenario(&sc)
		}
		r := sim.Execute(sc)
		times := r.QueryTimes(queries, sc.Seed^0xC0FFEE)
		qs := r.QueryMany(times, c.params())
		rde := collect(qs, rdeOf)
		syn := collect(qs, synErrOf)
		p90 := "-"
		if len(rde) > 0 {
			p90 = f2(stats.Quantile(rde, 0.9))
		}

		// False-positive probe: the follower against the stranger.
		fp, fpTotal := 0, 0
		for i := 0; i < 12; i++ {
			tm := r.Follower.Truth.States[0].T + 30 + float64(i)*4
			pf := r.Follower.Aware.PrefixUntil(tm)
			ps := stranger.Follower.Aware.PrefixUntil(tm)
			if pf.Len() < 20 || ps.Len() < 20 {
				continue
			}
			fpTotal++
			if _, ok := core.FindSYN(pf, ps, c.params()); ok {
				fp++
			}
		}

		t.AddRow(c.name,
			fmt.Sprintf("%d/%d", len(rde), len(qs)),
			f2(stats.Mean(rde)), p90, f2(stats.Mean(syn)),
			fmt.Sprintf("%d/%d", fp, fpTotal))
	}
	t.Note("a good variant resolves related pairs AND rejects the unrelated vehicle; the column-term row uses a rescaled threshold (score range halves without the term)")
	return t
}
