package eval

import (
	"strings"
	"testing"
)

// Smoke tests for the experiments not already covered by the shape tests:
// they must run in quick mode and produce well-formed, plausibly-valued
// tables. The heavier ones are skipped under -short.

func TestLinkLossTable(t *testing.T) {
	tb := LinkLoss(quick)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	prev := -1.0
	for _, row := range tb.Rows {
		el := parseCell(t, row[3])
		if el < prev {
			t.Fatalf("exchange time not increasing with loss: %v after %v", el, prev)
		}
		prev = el
	}
	// Lossless row has zero retransmissions.
	if tb.Rows[0][2] != "0" {
		t.Errorf("lossless retransmissions = %s", tb.Rows[0][2])
	}
}

func TestTrafficTable(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario execution in -short mode")
	}
	tb := Traffic(quick)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	light := parseCell(t, tb.Rows[0][1])
	heavy := parseCell(t, tb.Rows[1][1])
	if heavy >= light {
		t.Errorf("heavy traffic speed %v not below light %v", heavy, light)
	}
	// The laser validation column reports a sub-decimetre match.
	for _, row := range tb.Rows {
		if !strings.Contains(row[5], "Δ 0.0") {
			t.Errorf("laser validation off: %s", row[5])
		}
	}
}

func TestPlatoonTable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-vehicle pipelines in -short mode")
	}
	tb := PlatoonScale(quick)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Channel utilization grows with platoon size.
	u2 := parseCell(t, strings.TrimSuffix(tb.Rows[0][5], "%"))
	u8 := parseCell(t, strings.TrimSuffix(tb.Rows[2][5], "%"))
	if u8 <= u2 {
		t.Errorf("utilization did not grow: %v → %v", u2, u8)
	}
}

func TestOdometryTable(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario execution in -short mode")
	}
	tb := Odometry(quick)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	wheel := parseCell(t, tb.Rows[0][2])
	imu := parseCell(t, tb.Rows[2][2])
	if wheel > imu+1 {
		t.Errorf("wheel odometer (%v) much worse than IMU (%v)", wheel, imu)
	}
}

func TestMultibandTable(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario execution in -short mode")
	}
	tb := Multiband(quick)
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[1] != "GSM" && row[1] != "GSM+FM" {
			t.Errorf("unexpected bands cell %q", row[1])
		}
	}
}

func TestAblationsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario execution in -short mode")
	}
	tb := Ablations(quick)
	if len(tb.Rows) != 9 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The no-interpolation row must show a collapse; flexible window must
	// beat fixed window on short contexts.
	var noInterp, fixed, flex float64
	for _, row := range tb.Rows {
		resolved := parseCell(t, strings.SplitN(row[1], "/", 2)[0])
		switch {
		case strings.HasPrefix(row[0], "no missing-channel"):
			noInterp = resolved
		case strings.HasPrefix(row[0], "fixed window"):
			fixed = resolved
		case strings.HasPrefix(row[0], "flexible window"):
			flex = resolved
		}
	}
	if noInterp > 2 {
		t.Errorf("no-interpolation resolved %v queries; expected collapse", noInterp)
	}
	if flex <= fixed {
		t.Errorf("flexible window (%v) did not beat fixed (%v) on short contexts", flex, fixed)
	}
}

func TestSensitivityTable(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario execution in -short mode")
	}
	tb := Sensitivity(quick)
	if len(tb.Rows) < 15 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The strictest threshold resolves nothing; the loosest resolves all.
	for _, row := range tb.Rows {
		if row[0] == "coherency threshold" && row[1] == "1.50" {
			if resolved := parseCell(t, strings.SplitN(row[2], "/", 2)[0]); resolved != 0 {
				t.Errorf("threshold 1.5 resolved %v queries", resolved)
			}
		}
	}
}
