package eval

// PlatoonScale extends the §V-B scalability arithmetic to a real protocol
// simulation: N vehicles in a platoon, each tracking the vehicle ahead at
// 2 Hz over one shared DSRC control channel with 10 Hz incremental
// updates. The question is how channel load and accuracy behave as the
// platoon grows — the "heavy traffic and frequent queries" regime the
// paper's abstract claims RUPS scales to.

import (
	"fmt"

	"rups/internal/node"
)

// PlatoonScale sweeps the platoon size.
func PlatoonScale(o Options) *Table {
	t := &Table{
		ID:    "platoon",
		Title: "Protocol scalability: N-vehicle platoon on one DSRC channel (§V-B regime)",
		Header: []string{"vehicles", "queries", "resolved", "RDE mean (m)",
			"copy lag (m)", "channel util", "kB/s/vehicle", "full xfers", "deltas"},
	}
	sizes := []int{2, 4, 8}
	if !o.Quick {
		sizes = []int{2, 4, 8, 12}
	}
	for _, n := range sizes {
		cfg := node.DefaultPlatoonConfig(o.Seed+3000, n)
		if o.Quick {
			cfg.DistanceM = 800
		}
		nw, _, t0, t1 := node.Platoon(cfg)
		nw.Run(t0, t1)
		s := nw.Stats(t0, t1)
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", s.Queries),
			fmt.Sprintf("%d (%.0f%%)", s.Resolved, 100*float64(s.Resolved)/float64(max(1, s.Queries))),
			f2(s.MeanRDE),
			f2(s.MeanLagM),
			fmt.Sprintf("%.1f%%", s.Utilization*100),
			f2(s.BytesPerNodeS/1024),
			fmt.Sprintf("%d", s.FullTransfers),
			fmt.Sprintf("%d", s.DeltaTransfers),
		)
	}
	t.Note("channel utilization grows linearly with tracked pairs; the incremental protocol keeps even a 12-vehicle platoon far from saturating the channel")
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
