package eval

// The §V cost model experiments: computation time of the SYN search
// (§V-A), communication time of context exchange (§V-B), and the
// incremental-tracking scalability arithmetic.

import (
	"fmt"
	"time"

	"rups/internal/city"
	"rups/internal/core"
	"rups/internal/gsm"
	"rups/internal/sim"
	"rups/internal/trajectory"
	"rups/internal/v2v"
)

// Latency regenerates the §V numbers: the O(mwk) SYN search cost on a
// 1000 m context with a 45×(85-100) m window, and the WSM arithmetic for
// shipping a 1 km context.
func Latency(o Options) *Table {
	sc := sim.DefaultScenario(o.Seed+1500, city.FourLaneUrban)
	sc.DistanceM = 1100
	r := sim.Execute(sc)
	a := r.Follower.Aware
	b := r.Leader.Aware

	p := core.DefaultParams()
	reps := o.n(20, 3)
	var searchTime time.Duration
	found := 0
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, ok := core.FindSYN(a, b, p); ok {
			found++
		}
	}
	searchTime = time.Since(start) / time.Duration(reps)

	link := &v2v.Link{Seed: o.Seed}
	size := trajectory.EncodedSize(1000, gsm.NumChannels)
	cost := link.Transfer(size)

	t := &Table{
		ID:     "latency",
		Title:  "Computation and communication cost (§V)",
		Header: []string{"quantity", "measured", "paper"},
	}
	t.AddRow("SYN search, 1 km context, 45ch × 85 m window",
		fmt.Sprintf("%.2f ms", float64(searchTime.Microseconds())/1000), "~1.2 ms (i7-2640M)")
	t.AddRow("1 km context size", fmt.Sprintf("%d KB", size/1024), "~182 KB")
	t.AddRow("WSM packets for 1 km context", fmt.Sprintf("%d", cost.Packets), "~130")
	t.AddRow("context exchange time", fmt.Sprintf("%.2f s", cost.Elapsed), "~0.52 s")
	t.AddRow("SYN searches that found a point", fmt.Sprintf("%d/%d", found, reps), "-")
	t.Note("the search is O(m·w·k); absolute times differ with hardware, the compute ≪ communication relation is the claim")
	return t
}

// Scalability regenerates the §V-B incremental-tracking arithmetic: a
// 10 Hz tracking application transfers small deltas instead of the full
// context, falling back to a full exchange only on resync.
func Scalability(o Options) *Table {
	sc := sim.DefaultScenario(o.Seed+1600, city.FourLaneUrban)
	sc.DistanceM = 1100
	r := sim.Execute(sc)
	a := r.Follower.Aware

	link := &v2v.Link{Seed: o.Seed + 1}
	full := link.Transfer(trajectory.EncodedSize(a.Len(), gsm.NumChannels))

	// Simulate 30 s of 10 Hz tracking: at vehicle speed ~14 m/s each 100 ms
	// tick adds 1-2 marks.
	const ticks = 300
	marksPerTick := 2
	var deltaBytes, deltaPackets int
	var deltaElapsed float64
	from := a.Len() - ticks*marksPerTick
	if from < 0 {
		from = 0
	}
	for i := 0; i < ticks; i++ {
		hi := from + (i+1)*marksPerTick
		if hi > a.Len() {
			hi = a.Len()
		}
		lo := hi - marksPerTick
		if lo < 0 {
			lo = 0
		}
		d, err := v2v.MakeDelta(a, lo)
		if err != nil {
			continue
		}
		c := v2v.SendDelta(link, v2v.Delta{FromMark: d.FromMark,
			Marks: d.Marks[:hi-lo], Power: truncRows(d.Power, hi-lo)})
		deltaBytes += c.Bytes
		deltaPackets += c.Packets
		deltaElapsed += c.Elapsed
	}

	t := &Table{
		ID:     "scalability",
		Title:  "Full context exchange vs incremental tracking updates (§V-B)",
		Header: []string{"quantity", "full exchange", "30 s of 10 Hz deltas", "per tick"},
	}
	t.AddRow("bytes", fmt.Sprintf("%d", full.Bytes),
		fmt.Sprintf("%d", deltaBytes), fmt.Sprintf("%d", deltaBytes/ticks))
	t.AddRow("WSM packets", fmt.Sprintf("%d", full.Packets),
		fmt.Sprintf("%d", deltaPackets), f2(float64(deltaPackets)/ticks))
	t.AddRow("air time (s)", f2(full.Elapsed), f2(deltaElapsed),
		fmt.Sprintf("%.4f", deltaElapsed/ticks))
	t.Note("transferring the whole context per 0.1 s query is infeasible (%.2f s > 0.1 s); one-WSM deltas are", full.Elapsed)
	return t
}

func truncRows(rows [][]float64, n int) [][]float64 {
	out := make([][]float64, len(rows))
	for i := range rows {
		if len(rows[i]) > n {
			out[i] = rows[i][:n]
		} else {
			out[i] = rows[i]
		}
	}
	return out
}

// All runs every experiment in paper order.
func All(o Options) []*Table {
	return []*Table{
		Fig1(o), Fig2(o), Fig3(o), Fig4(o),
		Fig9(o), Fig10(o), Fig11(o), Fig12(o),
		Latency(o), Scalability(o), PlatoonScale(o), Ablations(o),
		Sensitivity(o), Multiband(o), Odometry(o), Traffic(o), LinkLoss(o),
		Turns(o),
	}
}

// ByID returns the experiment runner for an id, or nil.
func ByID(id string) func(Options) *Table {
	switch id {
	case "fig1":
		return Fig1
	case "fig2":
		return Fig2
	case "fig3":
		return Fig3
	case "fig4":
		return Fig4
	case "fig9":
		return Fig9
	case "fig10":
		return Fig10
	case "fig11":
		return Fig11
	case "fig12":
		return Fig12
	case "latency":
		return Latency
	case "scalability":
		return Scalability
	case "ablations":
		return Ablations
	case "multiband":
		return Multiband
	case "odometry":
		return Odometry
	case "platoon":
		return PlatoonScale
	case "sensitivity":
		return Sensitivity
	case "traffic":
		return Traffic
	case "linkloss":
		return LinkLoss
	case "turns":
		return Turns
	default:
		return nil
	}
}

// IDs lists the experiment ids in paper order.
func IDs() []string {
	return []string{"fig1", "fig2", "fig3", "fig4", "fig9", "fig10",
		"fig11", "fig12", "latency", "scalability", "platoon", "ablations", "sensitivity", "multiband", "odometry",
		"traffic", "linkloss", "turns"}
}
