package eval

// Multiband is the paper's first future-work item made concrete (§VII):
// add the FM broadcast band to the fingerprint and measure what it buys.
// FM rows are nearly never missing (28 stations, all audible, so even one
// radio refreshes each station every ~0.4 s) and survive under elevated
// decks, where GSM is attenuated — the hypothesis is better resolution
// rates in hard environments.

import (
	"fmt"

	"rups/internal/city"
	"rups/internal/core"
	"rups/internal/sim"
	"rups/internal/stats"
)

// Multiband compares GSM-only against GSM+FM fingerprinting across the
// environments, with the paper's default algorithm parameters.
func Multiband(o Options) *Table {
	t := &Table{
		ID:    "multiband",
		Title: "Future work (§VII): adding the FM broadcast band to the fingerprint",
		Header: []string{"environment", "bands", "resolved", "RDE mean (m)",
			"SYN err mean (m)", "missing cells"},
	}
	queries := o.n(300, 20)
	settings := []struct {
		name  string
		class city.RoadClass
	}{
		{"4-lane urban", city.FourLaneUrban},
		{"8-lane urban", city.EightLaneUrban},
		{"under elevated", city.UnderElevated},
	}
	for si, set := range settings {
		for _, withFM := range []bool{false, true} {
			sc := sim.DefaultScenario(o.Seed+2500+uint64(si), set.class)
			sc.WithFM = withFM
			r := sim.Execute(sc)
			times := r.QueryTimes(queries, sc.Seed^0xC0FFEE)
			qs := r.QueryMany(times, core.DefaultParams())
			rde := collect(qs, rdeOf)
			syn := collect(qs, synErrOf)
			bands := "GSM"
			if withFM {
				bands = "GSM+FM"
			}
			t.AddRow(set.name, bands,
				fmt.Sprintf("%d/%d", len(rde), len(qs)),
				f2(stats.Mean(rde)), f2(stats.Mean(syn)),
				fmt.Sprintf("%.0f%%", r.Follower.MissingBeforeInterp*100))
		}
	}
	t.Note("FM rows are strong and rarely missing; the gain should concentrate where GSM struggles (sparse coverage, under decks)")
	return t
}
