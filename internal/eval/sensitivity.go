package eval

// Sensitivity sweeps the RUPS parameters around the paper's operating
// point (45 channels × 85 m window, coherency 1.2, 5 SYN points, 1000 m
// context), justifying those choices: each sweep varies one knob on the
// same executed scenario and reports resolution, accuracy, and the
// false-positive behaviour against an unrelated vehicle.

import (
	"fmt"

	"rups/internal/city"
	"rups/internal/core"
	"rups/internal/sim"
	"rups/internal/stats"
)

// Sensitivity runs the parameter sweeps.
func Sensitivity(o Options) *Table {
	t := &Table{
		ID:    "sensitivity",
		Title: "Parameter sensitivity around the paper's operating point",
		Header: []string{"knob", "value", "resolved", "RDE mean (m)",
			"RDE p90 (m)", "false SYN (unrelated)"},
	}

	sc := sim.DefaultScenario(o.Seed+2900, city.FourLaneUrban)
	r := sim.Execute(sc)
	strangerSc := sc
	strangerSc.RoadIndex = 2
	stranger := sim.Execute(strangerSc)
	queries := o.n(250, 20)
	times := r.QueryTimes(queries, sc.Seed^0xC0FFEE)

	probe := func(name, value string, p core.Params) {
		qs := r.QueryMany(times, p)
		rde := collect(qs, rdeOf)
		p90 := "-"
		if len(rde) > 0 {
			p90 = f2(stats.Quantile(rde, 0.9))
		}
		fp, fpTotal := 0, 0
		for i := 0; i < 10; i++ {
			tm := r.Follower.Truth.States[0].T + 40 + float64(i)*5
			pf := r.Follower.Aware.PrefixUntil(tm)
			ps := stranger.Follower.Aware.PrefixUntil(tm)
			if pf.Len() < 20 || ps.Len() < 20 {
				continue
			}
			fpTotal++
			if _, ok := core.FindSYN(pf, ps, p); ok {
				fp++
			}
		}
		t.AddRow(name, value,
			fmt.Sprintf("%d/%d", len(rde), len(qs)),
			f2(stats.Mean(rde)), p90,
			fmt.Sprintf("%d/%d", fp, fpTotal))
	}

	for _, w := range []int{25, 45, 85, 120} {
		p := core.DefaultParams()
		p.WindowMeters = w
		probe("window length (m)", fmt.Sprintf("%d", w), p)
	}
	for _, c := range []float64{0.9, 1.05, 1.2, 1.35, 1.5} {
		p := core.DefaultParams()
		p.Coherency = c
		probe("coherency threshold", f2(c), p)
	}
	for _, k := range []int{15, 45, 90} {
		p := core.DefaultParams()
		p.WindowChannels = k
		probe("window channels", fmt.Sprintf("%d", k), p)
	}
	for _, n := range []int{1, 3, 5, 8} {
		p := core.DefaultParams()
		p.NumSYN = n
		probe("SYN points aggregated", fmt.Sprintf("%d", n), p)
	}
	for _, m := range []int{200, 500, 1000} {
		p := core.DefaultParams()
		p.MaxContextMeters = m
		probe("context cap (m)", fmt.Sprintf("%d", m), p)
	}

	t.Note("the paper's 85 m × 45-channel window at coherency 1.2 trades resolution rate against false positives; shorter windows resolve more but admit spurious SYNs at lower thresholds")
	return t
}
