package eval

// Conditions covers the remaining experimental axes the paper mentions but
// does not plot: traffic density (§VI-A: "we encountered both heavy and
// light traffic") and DSRC packet loss (the §V-B exchange arithmetic
// assumes a clean channel). It also validates the ground-truth pipeline
// against the simulated laser rangefinder the way the paper did.

import (
	"fmt"
	"math"

	"rups/internal/city"
	"rups/internal/core"
	"rups/internal/gsm"
	"rups/internal/mobility"
	"rups/internal/sim"
	"rups/internal/stats"
	"rups/internal/trajectory"
	"rups/internal/v2v"
)

// Traffic compares light vs heavy traffic on the same 8-lane road.
func Traffic(o Options) *Table {
	t := &Table{
		ID:    "traffic",
		Title: "Traffic density (§VI-A): light vs heavy flow, 8-lane urban, 4 front radios",
		Header: []string{"condition", "mean speed (m/s)", "resolved",
			"RDE mean (m)", "SYN err mean (m)", "laser checks"},
	}
	queries := o.n(300, 25)
	for _, cond := range []mobility.Condition{mobility.LightTraffic, mobility.HeavyTraffic} {
		sc := sim.DefaultScenario(o.Seed+3100, city.EightLaneUrban)
		sc.Condition = cond
		sc.StopEveryM = 400
		r := sim.Execute(sc)
		times := r.QueryTimes(queries, sc.Seed^0xC0FFEE)
		qs := r.QueryMany(times, core.DefaultParams())
		rde := collect(qs, rdeOf)
		syn := collect(qs, synErrOf)

		// Ground-truth validation: wherever the laser saw the leader,
		// compare the odometric truth against the optical reading.
		var laserDiff stats.Online
		for _, q := range qs {
			if q.LaserOK {
				laserDiff.Add(math.Abs(q.LaserM - q.TruthGap))
			}
		}
		name := "light"
		if cond == mobility.HeavyTraffic {
			name = "heavy"
		}
		meanSpeed := r.Follower.Truth.Distance() / r.Follower.Truth.Duration()
		t.AddRow(name, f2(meanSpeed),
			fmt.Sprintf("%d/%d", len(rde), len(qs)),
			f2(stats.Mean(rde)), f2(stats.Mean(syn)),
			fmt.Sprintf("%d (Δ %.2f m)", laserDiff.N(), laserDiff.Mean()))
	}
	t.Note("heavy traffic slows the scan-gap problem (denser coverage per metre) but adds stops; the laser column validates the odometric ground truth within its 50 m range")
	return t
}

// LinkLoss sweeps DSRC packet loss and reports the context exchange cost —
// the robustness of the §V-B arithmetic.
func LinkLoss(o Options) *Table {
	t := &Table{
		ID:    "linkloss",
		Title: "Context exchange vs DSRC packet loss (1 km context)",
		Header: []string{"loss prob", "packets", "retransmissions",
			"exchange time (s)", "delta time (s)"},
	}
	size := trajectory.EncodedSize(1000, gsm.NumChannels)
	for _, loss := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		link := &v2v.Link{Seed: o.Seed, LossProb: loss}
		c := link.Transfer(size)
		dl := link.Transfer(16 + 2*6 + gsm.NumChannels*2) // a 2-metre delta
		t.AddRow(f2(loss),
			fmt.Sprintf("%d", c.Packets),
			fmt.Sprintf("%d", c.Retrans),
			f2(c.Elapsed), fmt.Sprintf("%.4f", dl.Elapsed))
	}
	t.Note("even at 30%% loss the full exchange stays under a second and a tracking delta under 10 ms")
	return t
}
