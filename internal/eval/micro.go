package eval

// The §III empirical-study experiments (Figs 1-4): they probe the GSM field
// directly, the way the paper's trace-collection campaign did with parked
// and slowly driven scanner cars.

import (
	"math"

	"rups/internal/geo"
	"rups/internal/gsm"
	"rups/internal/noise"
	"rups/internal/stats"
)

// fieldFor builds a standalone field of one environment class.
func fieldFor(seed uint64, env gsm.EnvClass) *gsm.Field {
	area := gsm.Bounds{MinX: 0, MinY: 0, MaxX: 4000, MaxY: 4000}
	return gsm.NewField(seed, gsm.GenerateTowers(seed, area, gsm.ConstZone(env)), gsm.ConstZone(env))
}

// measure reads a full power vector with scanner-grade measurement noise.
func measure(fd *gsm.Field, pos geo.Vec2, t float64, seed uint64) []float64 {
	v := fd.SampleVector(pos, t)
	for ch := range v {
		v[ch] += noise.Gaussian(seed, uint64(ch), math.Float64bits(t))
		if v[ch] < gsm.NoiseFloorDBm {
			v[ch] = gsm.NoiseFloorDBm
		}
	}
	return v
}

// roadTrajectory samples the 194×L channel-major matrix along a straight
// road at 1 m spacing, driven at speed starting at t0; day shifts the
// absolute clock by whole days (the Fig 3 workday/weekend axis).
func roadTrajectory(fd *gsm.Field, origin geo.Vec2, heading float64, L int, t0, speed float64, day int, seed uint64) [][]float64 {
	m := make([][]float64, gsm.NumChannels)
	for ch := range m {
		m[ch] = make([]float64, L)
	}
	dir := geo.HeadingVec(heading)
	base := float64(day)*86400 + t0
	for j := 0; j < L; j++ {
		v := measure(fd, origin.Add(dir.Scale(float64(j))), base+float64(j)/speed, seed)
		for ch := range v {
			m[ch][j] = v[ch]
		}
	}
	return m
}

// Fig1 regenerates the spectrogram comparison of Fig 1: RSSI trajectories
// on two different roads, with the first road entered twice. The paper
// makes the point qualitatively; we report the pairwise trajectory
// correlations, which is the quantitative content.
func Fig1(o Options) *Table {
	fd := fieldFor(o.Seed+101, gsm.Urban)
	const L = 150
	road1a := roadTrajectory(fd, geo.Vec2{X: 800, Y: 900}, math.Pi/2, L, 0, 8, 0, 1)
	road1b := roadTrajectory(fd, geo.Vec2{X: 800, Y: 900}, math.Pi/2, L, 1800, 8, 0, 2)
	road2 := roadTrajectory(fd, geo.Vec2{X: 2600, Y: 2900}, 0, L, 900, 8, 0, 3)

	t := &Table{
		ID:     "fig1",
		Title:  "R-GSM-900 trajectories on two roads, first road entered twice",
		Header: []string{"pair", "trajectory correlation (Eq.2, range [-2,2])"},
	}
	t.AddRow("road1 entry1 vs road1 entry2", f2(stats.TrajCorr(road1a, road1b)))
	t.AddRow("road1 entry1 vs road2", f2(stats.TrajCorr(road1a, road2)))
	t.AddRow("road1 entry2 vs road2", f2(stats.TrajCorr(road1b, road2)))
	t.Note("paper: same-road spectrograms look alike, different roads distinct (qualitative)")
	return t
}

// Fig2 regenerates the temporal-stability curves: P(pairwise power-vector
// correlation ≥ threshold) vs time difference, for 194 and 10 channels.
func Fig2(o Options) *Table {
	fd := fieldFor(o.Seed+202, gsm.Downtown)
	locations := o.n(20, 6)
	pairs := o.n(100, 30)
	deltas := []float64{5, 60, 300, 600, 900, 1200, 1500}

	type curve struct {
		thr float64
		n   int
	}
	curves := []curve{{0.8, 194}, {0.9, 194}, {0.8, 10}, {0.9, 10}}
	counts := make([][]int, len(curves))
	for i := range counts {
		counts[i] = make([]int, len(deltas))
	}

	for loc := 0; loc < locations; loc++ {
		pos := geo.Vec2{
			X: 600 + 2800*noise.Uniform(o.Seed, 0xF2, uint64(loc), 1),
			Y: 600 + 2800*noise.Uniform(o.Seed, 0xF2, uint64(loc), 2),
		}
		sub := make([]int, 10)
		for i := range sub {
			sub[i] = int(noise.Hash(o.Seed, 0xF2A, uint64(loc), uint64(i)) % gsm.NumChannels)
		}
		for di, dt := range deltas {
			for p := 0; p < pairs; p++ {
				t1 := 3600 * noise.Uniform(o.Seed, 0xF2B, uint64(loc), uint64(di), uint64(p))
				a := measure(fd, pos, t1, 11)
				b := measure(fd, pos, t1+dt, 12)
				rFull := stats.Pearson(a, b)
				rSub := stats.Pearson(pick(a, sub), pick(b, sub))
				for ci, c := range curves {
					r := rFull
					if c.n == 10 {
						r = rSub
					}
					// A NaN correlation (all-missing window) must count as
					// "below threshold", not fall through the comparison.
					if stats.IsMissing(r) {
						continue
					}
					if r >= c.thr {
						counts[ci][di]++
					}
				}
			}
		}
	}
	total := float64(locations * pairs)
	t := &Table{
		ID:    "fig2",
		Title: "Temporal stability of GSM power vectors",
		Header: []string{"Δt (s)", "P(r≥0.80,194ch)", "P(r≥0.90,194ch)",
			"P(r≥0.80,10ch)", "P(r≥0.90,10ch)"},
	}
	for di, dt := range deltas {
		t.AddRow(f(dt),
			f2(float64(counts[0][di])/total), f2(float64(counts[1][di])/total),
			f2(float64(counts[2][di])/total), f2(float64(counts[3][di])/total))
	}
	t.Note("paper: P(r≥0.8,194ch) ≥ 0.95 over 25 min; strict threshold decays; 10-channel curves cross over")
	return t
}

func pick(v []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = v[j]
	}
	return out
}

// Fig3 regenerates the geographical-uniqueness CDFs: trajectory correlation
// of same-road re-entries vs different roads, on a workday and a weekend.
func Fig3(o Options) *Table {
	fd := fieldFor(o.Seed+303, gsm.Urban)
	roads := o.n(30, 8)
	const L = 150
	type road struct {
		origin  geo.Vec2
		heading float64
	}
	rs := make([]road, roads)
	for i := range rs {
		rs[i] = road{
			origin: geo.Vec2{
				X: 500 + 3000*noise.Uniform(o.Seed, 0xF3, uint64(i), 1),
				Y: 500 + 3000*noise.Uniform(o.Seed, 0xF3, uint64(i), 2),
			},
			heading: 2 * math.Pi * noise.Uniform(o.Seed, 0xF3, uint64(i), 3),
		}
	}
	var sameWork, sameWeekend, diffWork, diffWeekend []float64
	first := make([][][]float64, roads)
	days := []struct {
		day  int
		sink *[]float64
	}{{0, &sameWork}, {5, &sameWeekend}} // day 0 fills `first`; keep order
	for _, dc := range days {
		day, sink := dc.day, dc.sink
		reentry := make([][][]float64, roads)
		for i, r := range rs {
			if day == 0 {
				first[i] = roadTrajectory(fd, r.origin, r.heading, L, 0, 10, 0, 20+uint64(i))
			}
			reentry[i] = roadTrajectory(fd, r.origin, r.heading, L, 1800, 10, day, 40+uint64(i))
		}
		for i := 0; i < roads; i++ {
			*sink = append(*sink, stats.TrajCorr(first[i], reentry[i]))
		}
		diffSink := &diffWork
		if day != 0 {
			diffSink = &diffWeekend
		}
		for i := 0; i < roads; i++ {
			j := (i + 1) % roads
			*diffSink = append(*diffSink, stats.TrajCorr(first[i], reentry[j]))
		}
	}

	t := &Table{
		ID:    "fig3",
		Title: "CDF of trajectory correlation coefficients",
		Header: []string{"corr", "diff roads, weekend", "diff roads, workday",
			"same road, weekend", "same road, workday"},
	}
	cdDW := stats.NewCDF(diffWeekend)
	cdDK := stats.NewCDF(diffWork)
	cdSW := stats.NewCDF(sameWeekend)
	cdSK := stats.NewCDF(sameWork)
	for _, x := range []float64{-2, -1.5, -1, -0.5, 0, 0.5, 1, 1.2, 1.5, 2} {
		t.AddRow(f(x), f2(cdDW.At(x)), f2(cdDK.At(x)), f2(cdSW.At(x)), f2(cdSK.At(x)))
	}
	t.Note("mean same-road corr %.2f (work) %.2f (weekend); different-road %.2f / %.2f",
		stats.Mean(sameWork), stats.Mean(sameWeekend), stats.Mean(diffWork), stats.Mean(diffWeekend))
	ksD, ksP := stats.KolmogorovSmirnov(sameWork, diffWork)
	t.Note("same vs different roads: KS D=%.2f (p=%.2g) — complete separation has D=1", ksD, ksP)
	t.Note("paper: same-road coefficients far right of different-road; day type marginal")
	return t
}

// Fig4 regenerates the fine-resolution scatter: relative change (Eq. 3, on
// level above the noise floor) between power vectors k metres apart.
func Fig4(o Options) *Table {
	fd := fieldFor(o.Seed+404, gsm.Urban)
	origin := geo.Vec2{X: 700, Y: 1800}
	dir := geo.HeadingVec(math.Pi / 2)
	samples := o.n(1000, 120)
	vec := func(s float64) []float64 {
		v := measure(fd, origin.Add(dir.Scale(s)), 0, 77)
		for ch := range v {
			v[ch] = gsm.Excess(v[ch])
		}
		return v
	}
	t := &Table{
		ID:     "fig4",
		Title:  "Relative change of power vectors over distance",
		Header: []string{"distance (m)", "mean relative change", "p10", "p90"},
	}
	for _, k := range []float64{1, 2, 5, 10, 20, 40, 60, 80, 100, 120} {
		var vals []float64
		for i := 0; i < samples; i++ {
			s := float64(i) * 3.1
			vals = append(vals, stats.RelativeChange(vec(s), vec(s+k)))
		}
		t.AddRow(f(k), f2(stats.Mean(vals)),
			f2(stats.Quantile(vals, 0.1)), f2(stats.Quantile(vals, 0.9)))
	}
	t.Note("paper: mean relative change already above 0.4 at 1 m, rising gently to ~0.55-0.6 by 120 m")
	return t
}
