package eval

// Odometry compares the travelled-distance sources the paper discusses
// (§IV-B: OBD/ECU access or motion-sensor estimation; §VI-A adds the Hall
// wheel sensor): what does the distance source cost in end-to-end relative
// distance accuracy?

import (
	"fmt"

	"rups/internal/city"
	"rups/internal/core"
	"rups/internal/sim"
	"rups/internal/stats"
)

// Odometry runs the same urban scenario with each distance source.
func Odometry(o Options) *Table {
	t := &Table{
		ID:    "odometry",
		Title: "Travelled-distance source vs end-to-end accuracy (4-lane urban, 4 front radios)",
		Header: []string{"odometry", "resolved", "RDE mean (m)", "RDE p90 (m)",
			"SYN err mean (m)"},
	}
	queries := o.n(300, 20)
	for _, src := range []sim.OdometrySource{sim.WheelOBD, sim.OBDOnly, sim.IMUOnly} {
		sc := sim.DefaultScenario(o.Seed+2700, city.FourLaneUrban)
		sc.StopEveryM = 400 // stop-and-go gives the IMU estimator its ZUPTs
		sc.Odometry = src
		qs := runScenario(o, sc, queries, core.DefaultParams())
		rde := collect(qs, rdeOf)
		syn := collect(qs, synErrOf)
		p90 := "-"
		if len(rde) > 0 {
			p90 = f2(stats.Quantile(rde, 0.9))
		}
		t.AddRow(src.String(),
			fmt.Sprintf("%d/%d", len(rde), len(qs)),
			f2(stats.Mean(rde)), p90, f2(stats.Mean(syn)))
	}
	t.Note("the wheel odometer is the paper's instrumented choice; OBD-only and IMU-only trade hardware for accuracy")
	return t
}
