package eval

// The §VI system experiments (Figs 9-12): full two-vehicle scenarios over
// the simulated city, queried with RUPS and the GPS baseline.

import (
	"fmt"
	"math"

	"rups/internal/city"
	"rups/internal/core"
	"rups/internal/scanner"
	"rups/internal/sim"
	"rups/internal/stats"
)

// radioConfig names one of the paper's scanner configurations (rear car
// first: "4 central radios, 4 front radios" means the queried/front car has
// front radios while the rear car's are central).
type radioConfig struct {
	name              string
	leaderRadios      int
	leaderPlacement   scanner.Placement
	followerRadios    int
	followerPlacement scanner.Placement
}

var fig9Configs = []radioConfig{
	{"4 front, 4 front", 4, scanner.FrontPanel, 4, scanner.FrontPanel},
	{"4 central, 4 front", 4, scanner.FrontPanel, 4, scanner.CabinCenter},
	{"2 front, 2 front", 2, scanner.FrontPanel, 2, scanner.FrontPanel},
	{"1 front, 1 front", 1, scanner.FrontPanel, 1, scanner.FrontPanel},
}

// runScenario executes one configured scenario and answers queries.
func runScenario(o Options, sc sim.Scenario, queries int, p core.Params) []sim.QueryResult {
	r := sim.Execute(sc)
	times := r.QueryTimes(queries, sc.Seed^0xC0FFEE)
	return r.QueryMany(times, p)
}

// collect pulls one metric out of the resolved queries.
func collect(qs []sim.QueryResult, metric func(sim.QueryResult) (float64, bool)) []float64 {
	var out []float64
	for _, q := range qs {
		if v, ok := metric(q); ok {
			out = append(out, v)
		}
	}
	return out
}

func rdeOf(q sim.QueryResult) (float64, bool)    { return q.RDE, q.OK }
func synErrOf(q sim.QueryResult) (float64, bool) { return q.SYNErrM, q.OK && !math.IsNaN(q.SYNErrM) }
func gpsRdeOf(q sim.QueryResult) (float64, bool) { return q.GPSRDE, true }

// cdfRow formats a CDF evaluated at the given grid.
func cdfRow(vals []float64, grid []float64) []string {
	cells := make([]string, len(grid))
	if len(vals) == 0 {
		for i := range cells {
			cells[i] = "-"
		}
		return cells
	}
	c := stats.NewCDF(vals)
	for i, x := range grid {
		cells[i] = f2(c.At(x))
	}
	return cells
}

var errGrid = []float64{2, 5, 10, 15, 20, 30, 40}

func gridHeader(name string) []string {
	h := []string{name}
	for _, x := range errGrid {
		h = append(h, fmt.Sprintf("P(err≤%gm)", x))
	}
	return append(h, "mean (m)", "n")
}

// Fig9 regenerates the SYN-point-error CDFs for the radio count/placement
// configurations, on 8-lane urban roads, same lane, coherency 1.2.
func Fig9(o Options) *Table {
	t := &Table{
		ID:     "fig9",
		Title:  "SYN point error vs number and placement of GSM radios (8-lane urban, same lane)",
		Header: gridHeader("config"),
	}
	queries := o.n(500, 25)
	for ci, cfg := range fig9Configs {
		// All configs share one scenario seed: same city, road, and drives,
		// so the comparison isolates the radio configuration.
		sc := sim.DefaultScenario(o.Seed+900, city.EightLaneUrban)
		_ = ci
		sc.Radios = cfg.leaderRadios
		sc.Placement = cfg.leaderPlacement
		sc.FollowerRadios = cfg.followerRadios
		sc.FollowerPlacement = cfg.followerPlacement
		qs := runScenario(o, sc, queries, core.DefaultParams())
		errs := collect(qs, synErrOf)
		row := append([]string{cfg.name}, cdfRow(errs, errGrid)...)
		row = append(row, f2(stats.Mean(errs)), fmt.Sprintf("%d", len(errs)))
		t.Rows = append(t.Rows, row)
	}
	t.Note("paper: more radios → smaller SYN error; central placement clearly worse (~75%% within 10 m)")
	return t
}

// Fig10 regenerates the aggregation comparison: RDE CDFs with one SYN
// point, a simple average, and a selective average, under passing-truck
// perturbations on an 8-lane road.
func Fig10(o Options) *Table {
	sc := sim.DefaultScenario(o.Seed+1000, city.EightLaneUrban)
	sc.Trucks = 5
	r := sim.Execute(sc)
	queries := o.n(500, 25)
	times := r.QueryTimes(queries, sc.Seed^0xC0FFEE)

	t := &Table{
		ID:     "fig10",
		Title:  "RDE with one vs multiple SYN points under passing-vehicle perturbation",
		Header: gridHeader("aggregation"),
	}
	for _, mode := range []core.AggMode{SingleMode, MeanMode, SelectiveMode} {
		p := core.DefaultParams()
		p.Aggregation = mode
		errs := collect(r.QueryMany(times, p), rdeOf)
		row := append([]string{mode.String()}, cdfRow(errs, errGrid)...)
		row = append(row, f2(stats.Mean(errs)), fmt.Sprintf("%d", len(errs)))
		t.Rows = append(t.Rows, row)
	}
	t.Note("paper: with one SYN point ~25%% of errors exceed 10 m; selective average removes the tail")
	return t
}

// Aliases keep the eval-facing names close to the paper's wording.
const (
	SingleMode    = core.SingleSYN
	MeanMode      = core.MeanAgg
	SelectiveMode = core.SelectiveAgg
)

// fig11Setting is one road/lane environment of Fig 11.
type fig11Setting struct {
	name         string
	class        city.RoadClass
	followerLane int
	leaderLane   int
}

var fig11Settings = []fig11Setting{
	{"2-lane, suburb", city.TwoLaneSuburb, 0, 0},
	{"4-lane, same lane", city.FourLaneUrban, 1, 1},
	{"8-lane, same lane", city.EightLaneUrban, 1, 1},
	{"8-lane, distinct lanes", city.EightLaneUrban, 0, 3},
}

var fig11Configs = []radioConfig{
	{"1 front, 1 front", 1, scanner.FrontPanel, 1, scanner.FrontPanel},
	{"4 front, 4 front", 4, scanner.FrontPanel, 4, scanner.FrontPanel},
	{"4 central, 4 front", 4, scanner.FrontPanel, 4, scanner.CabinCenter},
}

// Fig11 regenerates the average RDE (and SYN error) with 95% confidence
// intervals across environments and radio configurations, using the
// selective average over five SYN points.
func Fig11(o Options) *Table {
	t := &Table{
		ID:    "fig11",
		Title: "Average RDE under dynamic environments and radio configurations (selective avg, 5 SYN)",
		Header: []string{"config", "setting", "RDE mean±CI (m)", "RDE median (m)",
			"SYN err mean±CI (m)", "resolved"},
	}
	queries := o.n(500, 20)
	for ci, cfg := range fig11Configs {
		for si, set := range fig11Settings {
			// Same seed per setting across configs (paired comparison).
			sc := sim.DefaultScenario(o.Seed+1100+uint64(si), set.class)
			_ = ci
			sc.Radios = cfg.leaderRadios
			sc.Placement = cfg.leaderPlacement
			sc.FollowerRadios = cfg.followerRadios
			sc.FollowerPlacement = cfg.followerPlacement
			sc.FollowerLane = set.followerLane
			sc.LeaderLane = set.leaderLane
			qs := runScenario(o, sc, queries, core.DefaultParams())
			rde := collect(qs, rdeOf)
			syn := collect(qs, synErrOf)
			rm, rci := stats.MeanCI(rde)
			sm, sci := stats.MeanCI(syn)
			med := "-"
			if len(rde) > 0 {
				med = f2(stats.Median(rde))
			}
			t.AddRow(cfg.name, set.name,
				fmt.Sprintf("%.1f ± %.1f", rm, rci), med,
				fmt.Sprintf("%.1f ± %.1f", sm, sci),
				fmt.Sprintf("%d/%d", len(rde), len(qs)))
		}
	}
	t.Note("paper: ≤4.5 m average over all same-lane settings with 4 front radios; ~10 m on distinct lanes")
	t.Note("our distinct-lane means carry heavy outlier tails (wrong SYNs across ~10 m of lateral fading decorrelation); medians tell the typical case")
	return t
}

// fig12Setting is one environment of the RUPS-vs-GPS comparison.
var fig12Settings = []struct {
	name     string
	class    city.RoadClass
	paperR   float64 // paper's RUPS mean RDE
	paperGPS float64 // paper's GPS mean RDE
}{
	{"2-lane roads, suburb", city.TwoLaneSuburb, 3.4, 4.2},
	{"4-lane roads, urban", city.FourLaneUrban, 2.3, 9.9},
	{"8-lane roads, urban", city.EightLaneUrban, 4.2, 9.8},
	{"under elevated roads", city.UnderElevated, 6.9, 21.1},
}

// Fig12 regenerates the RUPS vs GPS comparison across the four urban
// environments, including the headline average-improvement factor.
func Fig12(o Options) *Table {
	t := &Table{
		ID:    "fig12",
		Title: "RUPS vs GPS relative distance errors in urban environments",
		Header: []string{"environment", "RUPS mean (m)", "GPS mean (m)",
			"paper RUPS", "paper GPS", "P(RUPS≤10m)", "P(GPS≤10m)"},
	}
	queries := o.n(500, 25)
	var ratios []float64
	for si, set := range fig12Settings {
		sc := sim.DefaultScenario(o.Seed+1200+uint64(si), set.class)
		qs := runScenario(o, sc, queries, core.DefaultParams())
		rde := collect(qs, rdeOf)
		gpsRde := collect(qs, gpsRdeOf)
		rm := stats.Mean(rde)
		gm := stats.Mean(gpsRde)
		if rm > 0 {
			ratios = append(ratios, gm/rm)
		}
		rc := stats.NewCDF(rde)
		gc := stats.NewCDF(gpsRde)
		t.AddRow(set.name, f2(rm), f2(gm), f2(set.paperR), f2(set.paperGPS),
			f2(rc.At(10)), f2(gc.At(10)))
	}
	t.Note("measured GPS/RUPS improvement factor: %.1fx (paper: 2.7x on average)", stats.Mean(ratios))
	return t
}
