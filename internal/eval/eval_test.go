package eval

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

var quick = Options{Seed: 42, Quick: true}

// parseCell reads a float out of a table cell.
func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.Fields(s)[0], 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestFig1SameRoadBeatsDifferent(t *testing.T) {
	tb := Fig1(quick)
	same := parseCell(t, tb.Rows[0][1])
	diff1 := parseCell(t, tb.Rows[1][1])
	diff2 := parseCell(t, tb.Rows[2][1])
	if same <= diff1 || same <= diff2 {
		t.Errorf("same-road correlation %v not above different-road %v/%v", same, diff1, diff2)
	}
	if same < 1.0 {
		t.Errorf("same-road correlation %v too weak", same)
	}
}

func TestFig2Shape(t *testing.T) {
	tb := Fig2(quick)
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	firstRow := tb.Rows[0]
	lastRow := tb.Rows[len(tb.Rows)-1]
	// Loose threshold, all channels: high throughout.
	if p := parseCell(t, lastRow[1]); p < 0.85 {
		t.Errorf("P(r≥0.8,194ch) at 25 min = %v", p)
	}
	// Strict threshold decays.
	if p0, p1 := parseCell(t, firstRow[2]), parseCell(t, lastRow[2]); p1 >= p0 {
		t.Errorf("P(r≥0.9,194ch) did not decay: %v -> %v", p0, p1)
	}
	// Crossover at the strict threshold by the last Δt.
	if p10, p194 := parseCell(t, lastRow[4]), parseCell(t, lastRow[2]); p10 <= p194 {
		t.Errorf("crossover missing: 10ch %v ≤ 194ch %v", p10, p194)
	}
}

func TestFig3Separation(t *testing.T) {
	tb := Fig3(quick)
	// At corr = 1.0 the different-road CDFs are ~1 (all below) while the
	// same-road CDFs are well under 1 (mass above).
	for _, row := range tb.Rows {
		if row[0] != "1" {
			continue
		}
		if d := parseCell(t, row[1]); d < 0.9 {
			t.Errorf("diff-road CDF at 1.0 = %v, want ~1", d)
		}
		if s := parseCell(t, row[4]); s > 0.4 {
			t.Errorf("same-road CDF at 1.0 = %v, want small", s)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	tb := Fig4(quick)
	first := parseCell(t, tb.Rows[0][1])
	last := parseCell(t, tb.Rows[len(tb.Rows)-1][1])
	if first < 0.3 {
		t.Errorf("relative change at 1 m = %v, want ≥ 0.3 (paper ~0.4)", first)
	}
	if last <= first {
		t.Errorf("relative change not rising: %v at 1 m vs %v at 120 m", first, last)
	}
}

func TestFig9RadioOrdering(t *testing.T) {
	tb := Fig9(quick)
	// Mean SYN error: 4 front ≤ 1 front; central worse than 4 front.
	means := map[string]float64{}
	for _, row := range tb.Rows {
		means[row[0]] = parseCell(t, row[len(row)-2])
	}
	if means["4 front, 4 front"] > means["1 front, 1 front"] {
		t.Errorf("more radios worse: 4=%v vs 1=%v",
			means["4 front, 4 front"], means["1 front, 1 front"])
	}
	if means["4 central, 4 front"] < means["4 front, 4 front"] {
		t.Errorf("central placement better than front: %v vs %v",
			means["4 central, 4 front"], means["4 front, 4 front"])
	}
}

func TestFig10SelectiveBeatsSingle(t *testing.T) {
	tb := Fig10(quick)
	means := map[string]float64{}
	for _, row := range tb.Rows {
		means[row[0]] = parseCell(t, row[len(row)-2])
	}
	// In a quick run only a few queries land inside a perturbation window,
	// so the means are close; the property to hold is that aggregation never
	// costs much and stays accurate in absolute terms.
	if means["selective average"] > means["one SYN point"]+2 {
		t.Errorf("selective average (%v) much worse than single SYN (%v)",
			means["selective average"], means["one SYN point"])
	}
	if means["selective average"] > 6 {
		t.Errorf("selective average mean RDE %v m too large", means["selective average"])
	}
}

func TestFig12RUPSBeatsGPS(t *testing.T) {
	tb := Fig12(quick)
	for _, row := range tb.Rows {
		rups := parseCell(t, row[1])
		gps := parseCell(t, row[2])
		if rups > 12 {
			t.Errorf("%s: RUPS mean %v too large", row[0], rups)
		}
		// GPS must lose in the non-open environments.
		if row[0] != "2-lane roads, suburb" && gps < rups {
			t.Errorf("%s: GPS (%v) beat RUPS (%v)", row[0], gps, rups)
		}
	}
}

func TestLatencyTable(t *testing.T) {
	tb := Latency(quick)
	if len(tb.Rows) < 4 {
		t.Fatal("latency table too small")
	}
	// Exchange time row should be near the paper's 0.52 s.
	for _, row := range tb.Rows {
		if row[0] == "context exchange time" {
			v := parseCell(t, row[1])
			if v < 0.3 || v > 0.8 {
				t.Errorf("exchange time %v s", v)
			}
		}
	}
}

func TestScalabilityDeltasCheaper(t *testing.T) {
	tb := Scalability(quick)
	for _, row := range tb.Rows {
		if row[0] == "air time (s)" {
			full := parseCell(t, row[1])
			perTick := parseCell(t, row[3])
			if perTick >= 0.1 {
				t.Errorf("per-tick delta time %v ≥ tracking period", perTick)
			}
			if full < 0.3 {
				t.Errorf("full exchange suspiciously fast: %v", full)
			}
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID: "x", Title: "T", Header: []string{"a", "bb"},
	}
	tb.AddRow("1", "2")
	tb.Note("hello %d", 7)
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== x: T ==", "a", "bb", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestByIDAndIDs(t *testing.T) {
	for _, id := range IDs() {
		if ByID(id) == nil {
			t.Errorf("ByID(%q) = nil", id)
		}
	}
	if ByID("nope") != nil {
		t.Error("unknown id resolved")
	}
}
