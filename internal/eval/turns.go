package eval

// Turns is the §V-C scenario end to end: two vehicles arrive at the same
// road from *different* streets, so their shared context starts at zero at
// the merge point and grows as they drive on. The paper's discussion says
// RUPS "allows a vehicle to make a fast judgment about nearby vehicles even
// when it just moves to a new road segment and to further improve accuracy
// as it moves on" — this experiment measures exactly that ramp: resolution
// rate and accuracy as a function of the follower's distance past the
// merge.

import (
	"fmt"
	"math"

	"rups/internal/city"
	"rups/internal/core"
	"rups/internal/geo"
	"rups/internal/gsm"
	"rups/internal/mobility"
	"rups/internal/noise"
	"rups/internal/scanner"
	"rups/internal/sim"
	"rups/internal/stats"
)

// mergeRoutes builds two L-shaped roads sharing their final leg: A arrives
// from the south, B from the north, both continuing east for commonLen.
func mergeRoutes(privateLen, commonLen float64) (a, b city.Road) {
	merge := geo.Vec2{X: -400, Y: 600}
	end := merge.Add(geo.Vec2{X: commonLen})
	a = city.Road{
		ID:    -2,
		Class: city.FourLaneUrban,
		Line: geo.NewPolyline(
			merge.Add(geo.Vec2{Y: -privateLen}), merge, end),
	}
	b = city.Road{
		ID:    -3,
		Class: city.FourLaneUrban,
		Line: geo.NewPolyline(
			merge.Add(geo.Vec2{Y: privateLen}), merge, end),
	}
	return a, b
}

// Turns measures resolution and accuracy vs distance past the merge.
func Turns(o Options) *Table {
	const privateLen = 400.0
	const commonLen = 700.0
	roadA, roadB := mergeRoutes(privateLen, commonLen)

	c := city.Generate(city.DefaultConfig(o.Seed + 3300))
	field := gsm.NewField(noise.Hash(o.Seed, 0x7042), gsm.GenerateTowers(noise.Hash(o.Seed, 0x7043), c.Bounds(), c), c)

	lead := mobility.Drive(mobility.DriveConfig{
		Road: roadA, Lane: 0, StartS: 0, Distance: privateLen + commonLen - 30,
		StartTime: 0, Seed: noise.Hash(o.Seed, 0x7044),
	})
	follow := mobility.Drive(mobility.DriveConfig{
		Road: roadB, Lane: 0, StartS: 0, Distance: privateLen + commonLen - 30,
		StartTime: 2.5, Seed: noise.Hash(o.Seed, 0x7045),
	})

	vLead := sim.PipelineVehicle(lead, field, 4, scanner.FrontPanel, noise.Hash(o.Seed, 0x7046))
	vFollow := sim.PipelineVehicle(follow, field, 4, scanner.FrontPanel, noise.Hash(o.Seed, 0x7047))

	type bin struct {
		lo, hi float64
		rde    []float64
		total  int
	}
	bins := []*bin{
		{lo: 10, hi: 40}, {lo: 40, hi: 80}, {lo: 80, hi: 120},
		{lo: 120, hi: 200}, {lo: 200, hi: 400}, {lo: 400, hi: 700},
	}
	p := core.DefaultParams()
	queries := o.n(400, 60)
	t0 := follow.States[0].T
	dur := follow.Duration()
	for i := 0; i < queries; i++ {
		tq := t0 + dur*float64(i)/float64(queries)
		past := follow.At(tq).S - privateLen // metres past the merge
		var target *bin
		for _, bn := range bins {
			if past >= bn.lo && past < bn.hi {
				target = bn
				break
			}
		}
		if target == nil {
			continue
		}
		target.total++
		pf := vFollow.Aware.PrefixUntil(tq)
		pl := vLead.Aware.PrefixUntil(tq)
		if est, ok := core.Resolve(pf, pl, p); ok {
			truth := mobility.TrueGap(lead, follow, tq)
			target.rde = append(target.rde, math.Abs(est.Distance-truth))
		}
	}

	t := &Table{
		ID:    "turns",
		Title: "Merging from different streets (§V-C): accuracy vs distance past the merge",
		Header: []string{"metres past merge", "queries", "resolved",
			"RDE mean (m)", "RDE p90 (m)"},
	}
	for _, bn := range bins {
		p90 := "-"
		if len(bn.rde) > 0 {
			p90 = f2(stats.Quantile(bn.rde, 0.9))
		}
		t.AddRow(fmt.Sprintf("%.0f–%.0f", bn.lo, bn.hi),
			fmt.Sprintf("%d", bn.total),
			fmt.Sprintf("%d", len(bn.rde)),
			f2(stats.Mean(bn.rde)), p90)
	}
	t.Note("shared context starts at zero at the merge; resolution ramps up once the overlap approaches the checking-window length and accuracy follows (§V-C)")
	return t
}
