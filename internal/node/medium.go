// Package node implements the distributed side of RUPS that the paper's
// prototype wired by hand (§IV-A, §V-B): each vehicle is a protocol node
// that beacons its presence on the DSRC control channel, exchanges journey
// contexts with neighbours, streams incremental updates once a SYN point is
// established, and falls back to a full context transfer when its copy goes
// stale. All nodes share one finite-capacity broadcast medium, so the
// package is where the paper's scalability arguments become measurable:
// how does query latency grow with platoon size, and how much airtime does
// the incremental protocol save?
package node

import "fmt"

// Medium is the shared 802.11p control channel: one transmission at a
// time, finite bit rate, per-frame overhead. Transmissions are serialized
// FIFO from their submission instants — a deliberately simple stand-in for
// CSMA that preserves the quantity the evaluation needs, total airtime.
type Medium struct {
	// RateBps is the effective channel throughput in bytes per second
	// (6 Mbps DSRC with protocol overhead ≈ 600 kB/s).
	RateBps float64
	// FrameOverheadS is the fixed per-frame cost (preamble, IFS, ACK).
	FrameOverheadS float64

	busyUntil float64

	// Accounting.
	TotalBytes   int
	TotalAirtime float64
	Frames       int
}

// NewMedium returns a DSRC control channel with default timing.
func NewMedium() *Medium {
	return &Medium{
		RateBps:        600_000,
		FrameOverheadS: 0.0008,
	}
}

// Send submits a transmission of n bytes at time t and returns its
// completion time. Transmissions queue behind whatever is on the air.
func (m *Medium) Send(t float64, n int) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("node: send of %d bytes", n))
	}
	start := t
	if m.busyUntil > start {
		start = m.busyUntil
	}
	dur := float64(n)/m.RateBps + m.FrameOverheadS
	m.busyUntil = start + dur
	m.TotalBytes += n
	m.TotalAirtime += dur
	m.Frames++
	return m.busyUntil
}

// Utilization returns the fraction of the interval [t0, t1] the channel
// spent transmitting.
func (m *Medium) Utilization(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	u := m.TotalAirtime / (t1 - t0)
	if u > 1 {
		u = 1
	}
	return u
}
