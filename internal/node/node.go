package node

import (
	"fmt"
	"math"

	"rups/internal/core"
	"rups/internal/mobility"
	"rups/internal/sim"
	"rups/internal/stats"
	"rups/internal/trajectory"
	"rups/internal/v2v"
)

// Node is one RUPS-equipped vehicle's protocol state: its own pipeline
// output plus reassembled copies of the neighbours it tracks.
type Node struct {
	ID      uint32
	Vehicle *sim.VehicleRun
	peers   map[uint32]*peerState
}

// peerState is a node's view of one tracked neighbour.
type peerState struct {
	copy *trajectory.Aware // reassembled journey context
	// readyAt is when the last transfer completes on the medium; data is
	// unusable before that.
	readyAt float64
	// haveFull records whether an initial full exchange happened.
	haveFull bool
	// lastResync is when the last full exchange was requested.
	lastResync float64
	// badScores counts consecutive low-coherency resolutions (the §V-B
	// error-triggered resync signal).
	badScores int
	needsSync bool
	// stats
	fullTransfers  int
	deltaTransfers int
}

// NewNode wraps a pipelined vehicle.
func NewNode(id uint32, v *sim.VehicleRun) *Node {
	return &Node{ID: id, Vehicle: v, peers: map[uint32]*peerState{}}
}

// Track registers a neighbour to be tracked.
func (n *Node) Track(peer *Node) {
	n.peers[peer.ID] = &peerState{}
}

// Config tunes the protocol.
type Config struct {
	// BeaconHz is the presence-beacon rate.
	BeaconHz float64
	// DeltaHz is the incremental-update streaming rate once a full context
	// is held.
	DeltaHz float64
	// QueryHz is how often tracked distances are re-resolved.
	QueryHz float64
	// ResyncAfterS forces a fresh full exchange when the copy is older.
	ResyncAfterS float64
	// ResyncScoreBelow implements §V-B's error-triggered resync: when the
	// coherency score of resolved queries stays below this level for
	// ResyncAfterBad consecutive queries, the tracker assumes accumulated
	// error and requests a fresh full context. 0 disables.
	ResyncScoreBelow float64
	ResyncAfterBad   int
	// Params is the RUPS algorithm configuration.
	Params core.Params
}

// DefaultConfig matches the §V-B discussion: 10 Hz incremental updates, a
// full exchange only at the start (and on staleness).
func DefaultConfig() Config {
	return Config{
		BeaconHz:         1,
		DeltaHz:          10,
		QueryHz:          2,
		ResyncAfterS:     120,
		ResyncScoreBelow: 1.25,
		ResyncAfterBad:   6,
		Params:           core.DefaultParams(),
	}
}

// QueryRecord is one tracked-distance resolution.
type QueryRecord struct {
	T        float64
	Node     uint32
	Peer     uint32
	OK       bool
	Distance float64
	TruthGap float64
	// LagM is how many metres of the peer's recorded context had not yet
	// reached this node's copy at query time (transfer lag). Time-based
	// staleness is misleading: a platoon waiting at a light records no new
	// marks, so a perfectly current copy would look "old".
	LagM float64
}

// RDE returns the query's absolute error (NaN when unresolved).
func (q QueryRecord) RDE() float64 {
	if !q.OK {
		return math.NaN()
	}
	return math.Abs(q.Distance - q.TruthGap)
}

// Network couples nodes over a shared medium and steps the protocol.
type Network struct {
	Medium *Medium
	Cfg    Config
	nodes  []*Node
	byID   map[uint32]*Node

	Queries []QueryRecord

	nextBeacon map[uint32]float64
	nextDelta  float64
	nextQuery  float64
}

// NewNetwork builds a network over the nodes.
func NewNetwork(m *Medium, cfg Config, nodes ...*Node) *Network {
	nw := &Network{
		Medium: m, Cfg: cfg, nodes: nodes,
		byID:       map[uint32]*Node{},
		nextBeacon: map[uint32]float64{},
	}
	for _, n := range nodes {
		if _, dup := nw.byID[n.ID]; dup {
			panic(fmt.Sprintf("node: duplicate id %d", n.ID))
		}
		nw.byID[n.ID] = n
	}
	return nw
}

// Run steps the protocol from t0 to t1 and records tracked-distance
// queries. It is deterministic.
func (nw *Network) Run(t0, t1 float64) {
	const tick = 0.05
	for _, n := range nw.nodes {
		nw.nextBeacon[n.ID] = t0
	}
	nw.nextDelta = t0
	nw.nextQuery = t0 + 1/nw.Cfg.QueryHz

	for t := t0; t <= t1; t += tick {
		// Beacons: cheap presence announcements.
		for _, n := range nw.nodes {
			if t >= nw.nextBeacon[n.ID] {
				nw.Medium.Send(t, v2v.BeaconSize)
				nw.nextBeacon[n.ID] += 1 / nw.Cfg.BeaconHz
			}
		}

		// Context maintenance.
		if t >= nw.nextDelta {
			for _, n := range nw.nodes {
				for peerID, ps := range n.peers {
					nw.maintain(t, n, nw.byID[peerID], ps)
				}
			}
			nw.nextDelta += 1 / nw.Cfg.DeltaHz
		}

		// Queries.
		if t >= nw.nextQuery {
			for _, n := range nw.nodes {
				for peerID, ps := range n.peers {
					nw.query(t, n, nw.byID[peerID], ps)
				}
			}
			nw.nextQuery += 1 / nw.Cfg.QueryHz
		}
	}
}

// maintain keeps a peer copy current: first a full exchange, then deltas,
// with a full resync when the copy ages out.
func (nw *Network) maintain(t float64, n, peer *Node, ps *peerState) {
	avail := peer.Vehicle.Aware.PrefixUntil(t)
	if avail.Len() == 0 {
		return
	}
	needFull := !ps.haveFull || t-ps.lastResync > nw.Cfg.ResyncAfterS || ps.needsSync
	if needFull {
		// Full exchange goes through the real wire encoding: the copy the
		// tracker holds is the quantized one, exactly as received.
		data, err := avail.MarshalBinary()
		if err != nil {
			return
		}
		ps.readyAt = nw.Medium.Send(t, len(data))
		rx := &trajectory.Aware{}
		if err := rx.UnmarshalBinary(data); err != nil {
			return
		}
		ps.copy = rx
		ps.haveFull = true
		ps.lastResync = t
		ps.needsSync = false
		ps.badScores = 0
		ps.fullTransfers++
		return
	}
	if ps.copy == nil || avail.Len() <= ps.copy.Len() {
		return // nothing new
	}
	d, err := v2v.MakeDelta(avail, ps.copy.Len())
	if err != nil {
		return
	}
	// A 10 Hz delta usually fits one WSM, but a tracker catching up after a
	// stall may not: split to the wire bound like a real sender must.
	for _, c := range v2v.ChunkDelta(d) {
		data, err := c.MarshalBinary()
		if err != nil {
			return
		}
		ps.readyAt = nw.Medium.Send(t, len(data))
		var rx v2v.Delta
		if err := rx.UnmarshalBinary(data); err != nil {
			return
		}
		if err := rx.Apply(ps.copy); err != nil {
			// Gap: force a resync next round.
			ps.haveFull = false
			return
		}
	}
	ps.deltaTransfers++
}

// query resolves the tracked distance using the node's own live context
// and its (possibly in-flight) copy of the peer.
func (nw *Network) query(t float64, n, peer *Node, ps *peerState) {
	// A node does not pose queries before both sides have usable context
	// (the paper's warm-up: RUPS needs a stretch of common road).
	const minContext = 100
	if ps.copy == nil || t < ps.readyAt || ps.copy.Len() < minContext {
		return
	}
	mine := n.Vehicle.Aware.PrefixUntil(t)
	if mine.Len() < minContext {
		return
	}
	rec := QueryRecord{T: t, Node: n.ID, Peer: peer.ID}
	rec.TruthGap = mobility.TrueGap(peer.Vehicle.Truth, n.Vehicle.Truth, t)
	if est, ok := core.Resolve(mine, ps.copy, nw.Cfg.Params); ok {
		rec.OK = true
		rec.Distance = est.Distance
		// §V-B error-triggered resync: sustained low coherency suggests the
		// copy has drifted (quantization, missed deltas); refresh it.
		if nw.Cfg.ResyncScoreBelow > 0 {
			if est.Score < nw.Cfg.ResyncScoreBelow {
				ps.badScores++
				if ps.badScores >= nw.Cfg.ResyncAfterBad {
					ps.needsSync = true
					ps.badScores = 0
				}
			} else {
				ps.badScores = 0
			}
		}
	}
	rec.LagM = float64(peer.Vehicle.Aware.PrefixUntil(t).Len() - ps.copy.Len())
	nw.Queries = append(nw.Queries, rec)
}

// Stats summarizes a finished run.
type Stats struct {
	Queries        int
	Resolved       int
	MeanRDE        float64
	MeanLagM       float64
	FullTransfers  int
	DeltaTransfers int
	Utilization    float64
	BytesPerNodeS  float64
}

// Stats computes the summary over [t0, t1].
func (nw *Network) Stats(t0, t1 float64) Stats {
	var s Stats
	var rde, lag stats.Online
	for _, q := range nw.Queries {
		s.Queries++
		if q.OK {
			s.Resolved++
			rde.Add(q.RDE())
			lag.Add(q.LagM)
		}
	}
	s.MeanRDE = rde.Mean()
	s.MeanLagM = lag.Mean()
	for _, n := range nw.nodes {
		for _, ps := range n.peers {
			s.FullTransfers += ps.fullTransfers
			s.DeltaTransfers += ps.deltaTransfers
		}
	}
	s.Utilization = nw.Medium.Utilization(t0, t1)
	if dur := t1 - t0; dur > 0 && len(nw.nodes) > 0 {
		s.BytesPerNodeS = float64(nw.Medium.TotalBytes) / dur / float64(len(nw.nodes))
	}
	return s
}

// AutoTrack makes every node track any peer currently within rangeM of it
// (by ground-truth position — beacons carry position hints) and drop peers
// that left range. Call it periodically from a protocol loop to model a
// dynamic neighbourhood instead of a fixed platoon.
func (nw *Network) AutoTrack(t, rangeM float64) {
	for _, n := range nw.nodes {
		np := n.Vehicle.Truth.At(t).Pos
		for _, peer := range nw.nodes {
			if peer.ID == n.ID {
				continue
			}
			d := np.Dist(peer.Vehicle.Truth.At(t).Pos)
			_, tracked := n.peers[peer.ID]
			switch {
			case d <= rangeM && !tracked:
				n.Track(peer)
			case d > rangeM*1.2 && tracked:
				// Hysteresis avoids flapping at the range boundary.
				delete(n.peers, peer.ID)
			}
		}
	}
}

// TrackedPairs returns the current number of (tracker, tracked) pairs.
func (nw *Network) TrackedPairs() int {
	total := 0
	for _, n := range nw.nodes {
		total += len(n.peers)
	}
	return total
}
