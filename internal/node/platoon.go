package node

import (
	"fmt"

	"rups/internal/city"
	"rups/internal/fm"
	"rups/internal/gsm"
	"rups/internal/mobility"
	"rups/internal/noise"
	"rups/internal/scanner"
	"rups/internal/sim"
)

// PlatoonConfig parametrizes a same-lane platoon scenario.
type PlatoonConfig struct {
	Seed      uint64
	Vehicles  int
	RoadClass city.RoadClass
	DistanceM float64
	GapM      float64
	Radios    int
	WithFM    bool
}

// DefaultPlatoonConfig returns an n-vehicle urban platoon.
func DefaultPlatoonConfig(seed uint64, n int) PlatoonConfig {
	return PlatoonConfig{
		Seed:      seed,
		Vehicles:  n,
		RoadClass: city.EightLaneUrban,
		DistanceM: 1000,
		GapM:      25,
		Radios:    4,
	}
}

// Platoon builds an n-vehicle convoy (vehicle 0 leads; each subsequent
// vehicle IDM-follows the one ahead), runs every vehicle's full on-board
// pipeline, and wires each node to track its front neighbour over a shared
// medium.
func Platoon(cfg PlatoonConfig) (*Network, []*Node, float64, float64) {
	if cfg.Vehicles < 2 {
		panic(fmt.Sprintf("node: platoon needs ≥ 2 vehicles, got %d", cfg.Vehicles))
	}
	c := city.Generate(city.DefaultConfig(cfg.Seed))
	var src scanner.Source = gsm.NewField(noise.Hash(cfg.Seed, 0xF1E1D),
		gsm.GenerateTowers(noise.Hash(cfg.Seed, 0x703E5), c.Bounds(), c), c)
	if cfg.WithFM {
		src = scanner.NewMultiSource(src.(*gsm.Field),
			fm.NewField(noise.Hash(cfg.Seed, 0xF30), c.Bounds(), c))
	}
	road := c.RoadsOfClass(cfg.RoadClass)[0]

	base := mobility.DriveConfig{
		Road: road, Lane: 0, StartS: 30, Distance: cfg.DistanceM,
		StopEveryM: 600, StopSeed: cfg.Seed,
	}
	lead := base
	lead.Seed = noise.Hash(cfg.Seed, 100)
	traces := []*mobility.Trace{mobility.Drive(lead)}
	for i := 1; i < cfg.Vehicles; i++ {
		fc := base
		fc.Seed = noise.Hash(cfg.Seed, 100+uint64(i))
		traces = append(traces, mobility.Follow(fc, traces[i-1], cfg.GapM))
	}

	nodes := make([]*Node, cfg.Vehicles)
	for i, tr := range traces {
		v := sim.PipelineVehicle(tr, src, cfg.Radios, scanner.FrontPanel,
			noise.Hash(cfg.Seed, 200+uint64(i)))
		nodes[i] = NewNode(uint32(i), v)
	}
	for i := 1; i < cfg.Vehicles; i++ {
		nodes[i].Track(nodes[i-1])
	}

	nw := NewNetwork(NewMedium(), DefaultConfig(), nodes...)
	t0 := traces[0].States[0].T
	// The last follower's trace is the shortest in time; stop there.
	t1 := t0 + traces[len(traces)-1].Duration()
	return nw, nodes, t0, t1
}
