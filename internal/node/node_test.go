package node

import (
	"math"
	"testing"
)

func TestMediumSerializes(t *testing.T) {
	m := NewMedium()
	done1 := m.Send(0, 60000)
	done2 := m.Send(0, 60000)
	if done2 <= done1 {
		t.Errorf("overlapping transmissions: %v then %v", done1, done2)
	}
	// 60 kB at 600 kB/s is 0.1 s plus overhead.
	if done1 < 0.1 || done1 > 0.11 {
		t.Errorf("first transmission done at %v, want ~0.1", done1)
	}
	if m.Frames != 2 || m.TotalBytes != 120000 {
		t.Errorf("accounting wrong: %+v", m)
	}
}

func TestMediumIdleGap(t *testing.T) {
	m := NewMedium()
	m.Send(0, 6000)
	// A transmission submitted after the channel went idle starts
	// immediately.
	done := m.Send(5, 6000)
	if done < 5.01 || done > 5.02 {
		t.Errorf("post-idle completion %v", done)
	}
}

func TestMediumUtilization(t *testing.T) {
	m := NewMedium()
	m.Send(0, 600000) // one second of airtime
	u := m.Utilization(0, 10)
	if math.Abs(u-0.1) > 0.01 {
		t.Errorf("utilization %v, want ~0.1", u)
	}
	if m.Utilization(5, 5) != 0 {
		t.Error("degenerate interval should give 0")
	}
}

func TestMediumPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMedium().Send(0, 0)
}

// platoonFixture builds a small platoon once (pipelines are expensive).
var cachedNW *Network
var cachedT0, cachedT1 float64

func getPlatoon(t *testing.T) (*Network, float64, float64) {
	t.Helper()
	if cachedNW == nil {
		cfg := DefaultPlatoonConfig(71, 3)
		cfg.DistanceM = 700
		nw, _, t0, t1 := Platoon(cfg)
		nw.Run(t0, t1)
		cachedNW, cachedT0, cachedT1 = nw, t0, t1
	}
	return cachedNW, cachedT0, cachedT1
}

func TestPlatoonProtocolResolves(t *testing.T) {
	nw, t0, t1 := getPlatoon(t)
	s := nw.Stats(t0, t1)
	if s.Queries == 0 {
		t.Fatal("no queries recorded")
	}
	if s.Resolved < s.Queries/3 {
		t.Errorf("resolved %d/%d tracked queries", s.Resolved, s.Queries)
	}
	if s.MeanRDE > 8 {
		t.Errorf("mean tracked RDE %v m", s.MeanRDE)
	}
}

func TestPlatoonIncrementalDominates(t *testing.T) {
	nw, _, _ := getPlatoon(t)
	s := nw.Stats(cachedT0, cachedT1)
	if s.DeltaTransfers < 10*s.FullTransfers {
		t.Errorf("protocol not incremental: %d deltas vs %d full transfers",
			s.DeltaTransfers, s.FullTransfers)
	}
	if s.FullTransfers < 2 { // one per tracked pair at least
		t.Errorf("full transfers = %d", s.FullTransfers)
	}
}

func TestPlatoonCopyLag(t *testing.T) {
	nw, _, _ := getPlatoon(t)
	s := nw.Stats(cachedT0, cachedT1)
	// With 10 Hz deltas the copy should track within a few metres of the
	// peer's live context.
	if s.MeanLagM > 6 {
		t.Errorf("mean copy lag %v m", s.MeanLagM)
	}
}

func TestPlatoonChannelBudget(t *testing.T) {
	nw, t0, t1 := getPlatoon(t)
	s := nw.Stats(t0, t1)
	if s.Utilization <= 0 || s.Utilization > 0.5 {
		t.Errorf("channel utilization %v implausible for 3 vehicles", s.Utilization)
	}
}

func TestPlatoonValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 1-vehicle platoon")
		}
	}()
	Platoon(DefaultPlatoonConfig(1, 1))
}

func TestNetworkDuplicateIDPanics(t *testing.T) {
	nw, _, _ := getPlatoon(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewNetwork(NewMedium(), DefaultConfig(), nw.nodes[0], nw.nodes[0])
}

func TestQueryRecordRDE(t *testing.T) {
	q := QueryRecord{OK: true, Distance: 30, TruthGap: 25}
	if q.RDE() != 5 {
		t.Errorf("RDE = %v", q.RDE())
	}
	q.OK = false
	if !math.IsNaN(q.RDE()) {
		t.Error("unresolved RDE should be NaN")
	}
}

func TestAutoTrackRangeAndHysteresis(t *testing.T) {
	nw, t0, _ := getPlatoon(t)
	// Fresh network over the same vehicles with no tracking configured.
	var fresh []*Node
	for i, n := range nw.nodes {
		fresh = append(fresh, NewNode(uint32(100+i), n.Vehicle))
	}
	n2 := NewNetwork(NewMedium(), DefaultConfig(), fresh...)
	if n2.TrackedPairs() != 0 {
		t.Fatal("fresh network already tracking")
	}
	// A platoon with ~25 m gaps: everyone within 300 m of everyone.
	n2.AutoTrack(t0+20, 300)
	want := len(fresh) * (len(fresh) - 1)
	if got := n2.TrackedPairs(); got != want {
		t.Errorf("tracked pairs = %d, want %d", got, want)
	}
	// Shrinking the range far below the gaps drops the far pairs but
	// hysteresis (1.2×) keeps anything inside the buffer zone.
	n2.AutoTrack(t0+20, 1)
	if got := n2.TrackedPairs(); got >= want {
		t.Errorf("no pairs dropped after range shrink: %d", got)
	}
}

func TestScoreTriggeredResync(t *testing.T) {
	// Force the error-triggered resync path: an absurdly high score bar
	// means every resolved query counts as "bad", so after ResyncAfterBad
	// queries the tracker must request a fresh full context.
	cfg := DefaultPlatoonConfig(72, 2)
	cfg.DistanceM = 700
	nw, _, t0, t1 := Platoon(cfg)
	nw.Cfg.ResyncScoreBelow = 99
	nw.Cfg.ResyncAfterBad = 3
	nw.Run(t0, t1)
	s := nw.Stats(t0, t1)
	if s.FullTransfers < 3 {
		t.Errorf("error-triggered resync never fired: %d full transfers", s.FullTransfers)
	}
	// And with the trigger disabled, only the initial exchange happens
	// (the drive is shorter than ResyncAfterS).
	nw2, _, u0, u1 := Platoon(cfg)
	nw2.Cfg.ResyncScoreBelow = 0
	nw2.Run(u0, u1)
	if got := nw2.Stats(u0, u1).FullTransfers; got != 1 {
		t.Errorf("with trigger disabled: %d full transfers, want 1", got)
	}
}
