package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, skipping Missing entries. The mean
// of an empty (or all-missing) slice is 0.
func Mean(xs []float64) float64 {
	var s float64
	var n int
	for _, x := range xs {
		if IsMissing(x) {
			continue
		}
		s += x
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// MeanOK returns the arithmetic mean of xs, skipping Missing entries, and
// reports whether any valid value contributed. Use it instead of comparing
// Mean's result against the 0 fallback: a genuine mean of exactly 0 and
// "no data" are different answers.
func MeanOK(xs []float64) (mean float64, ok bool) {
	var s float64
	var n int
	for _, x := range xs {
		if IsMissing(x) {
			continue
		}
		s += x
		n++
	}
	if n == 0 {
		return 0, false
	}
	return s / float64(n), true
}

// ApproxEqual reports whether a and b agree within the absolute tolerance
// eps. It is the sanctioned alternative to ==/!= on floating-point values
// (see the floatcmp analyzer in cmd/rups-lint). NaNs are never
// approximately equal to anything, including each other.
func ApproxEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

// Variance returns the unbiased sample variance of xs, skipping Missing
// entries. Fewer than two valid values yield 0.
func Variance(xs []float64) float64 {
	m := Mean(xs)
	var s float64
	var n int
	for _, x := range xs {
		if IsMissing(x) {
			continue
		}
		d := x - m
		s += d * d
		n++
	}
	if n < 2 {
		return 0
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanCI returns the sample mean of xs and the half-width of its 95%
// confidence interval under the normal approximation (1.96·σ/√n), matching
// the error bars of the paper's Fig. 11.
func MeanCI(xs []float64) (mean, halfWidth float64) {
	var valid []float64
	for _, x := range xs {
		if !IsMissing(x) {
			valid = append(valid, x)
		}
	}
	if len(valid) == 0 {
		return 0, 0
	}
	mean = Mean(valid)
	if len(valid) < 2 {
		return mean, 0
	}
	halfWidth = 1.96 * StdDev(valid) / math.Sqrt(float64(len(valid)))
	return mean, halfWidth
}

// SelectiveMean implements the paper's "selective average" (§VI-C): the
// maximum and the minimum estimates are discarded and the rest are averaged.
// With fewer than three values it degrades to the plain mean, which is the
// only sensible behaviour for the short-context case.
func SelectiveMean(xs []float64) float64 {
	var valid []float64
	for _, x := range xs {
		if !IsMissing(x) {
			valid = append(valid, x)
		}
	}
	if len(valid) < 3 {
		return Mean(valid)
	}
	minI, maxI := 0, 0
	for i, v := range valid {
		if v < valid[minI] {
			minI = i
		}
		if v > valid[maxI] {
			maxI = i
		}
	}
	var s float64
	var n int
	for i, v := range valid {
		if i == minI || i == maxI {
			continue
		}
		s += v
		n++
	}
	if n == 0 {
		// All values identical: min and max indices coincide or everything
		// was dropped; fall back to the plain mean.
		return Mean(valid)
	}
	return s / float64(n)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on an empty input or a
// q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile q=%v out of [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs, skipping Missing
// entries. It panics if no valid values remain.
func NewCDF(xs []float64) *CDF {
	var s []float64
	for _, x := range xs {
		if !IsMissing(x) {
			s = append(s, x)
		}
	}
	if len(s) == 0 {
		panic("stats: NewCDF with no valid values")
	}
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	// First index with sorted[i] > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile of the sample.
func (c *CDF) Quantile(q float64) float64 { return Quantile(c.sorted, q) }

// Mean returns the sample mean.
func (c *CDF) Mean() float64 { return Mean(c.sorted) }

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// Series evaluates the CDF at n evenly spaced points spanning [min, max] and
// returns the (x, P(X≤x)) pairs — the plot series for the paper's CDF
// figures.
func (c *CDF) Series(min, max float64, n int) (xs, ps []float64) {
	if n < 2 {
		panic("stats: CDF.Series needs n ≥ 2")
	}
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		x := min + (max-min)*float64(i)/float64(n-1)
		xs[i] = x
		ps[i] = c.At(x)
	}
	return xs, ps
}

// KolmogorovSmirnov returns the two-sample KS statistic D = sup|F₁−F₂| and
// the asymptotic p-value of the null hypothesis that both samples come from
// the same distribution. The evaluation uses it to quantify how completely
// distributions separate (e.g. same-road vs different-road trajectory
// correlations). Missing entries are skipped; it panics when either sample
// has no valid values.
func KolmogorovSmirnov(xs, ys []float64) (d, p float64) {
	a := validSorted(xs)
	b := validSorted(ys)
	if len(a) == 0 || len(b) == 0 {
		panic("stats: KolmogorovSmirnov with an empty sample")
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		var x float64
		if a[i] <= b[j] {
			x = a[i]
		} else {
			x = b[j]
		}
		for i < len(a) && a[i] <= x {
			i++
		}
		for j < len(b) && b[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b)))
		if diff > d {
			d = diff
		}
	}
	// Asymptotic Kolmogorov distribution: p = 2 Σ (−1)^{k−1} e^{−2k²λ²}.
	// The series does not converge as λ → 0, where the true p is 1.
	n := float64(len(a)) * float64(len(b)) / float64(len(a)+len(b))
	lambda := (math.Sqrt(n) + 0.12 + 0.11/math.Sqrt(n)) * d
	if lambda < 0.2 {
		return d, 1
	}
	p = 0
	for k := 1; k <= 100; k++ {
		term := 2 * math.Pow(-1, float64(k-1)) * math.Exp(-2*float64(k*k)*lambda*lambda)
		p += term
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return d, p
}

// validSorted returns the non-missing values of xs, sorted ascending.
func validSorted(xs []float64) []float64 {
	var s []float64
	for _, x := range xs {
		if !IsMissing(x) {
			s = append(s, x)
		}
	}
	sort.Float64s(s)
	return s
}
