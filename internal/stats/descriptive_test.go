package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); !almostEq(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
	// Missing skipped.
	if got := Mean([]float64{1, Missing, 3}); got != 2 {
		t.Errorf("Mean with missing = %v, want 2", got)
	}
}

func TestSelectiveMean(t *testing.T) {
	// Drops min and max: {1, 5, 5, 5, 100} → mean(5,5,5) = 5.
	if got := SelectiveMean([]float64{1, 5, 5, 5, 100}); got != 5 {
		t.Errorf("SelectiveMean = %v, want 5", got)
	}
	// Fewer than 3 values: plain mean.
	if got := SelectiveMean([]float64{2, 4}); got != 3 {
		t.Errorf("SelectiveMean short = %v, want 3", got)
	}
	// All identical values.
	if got := SelectiveMean([]float64{7, 7, 7}); got != 7 {
		t.Errorf("SelectiveMean identical = %v, want 7", got)
	}
	// The headline behaviour: one wild outlier (the passing-truck case of
	// Fig. 10) does not move the estimate.
	clean := SelectiveMean([]float64{10, 10.2, 9.8, 10.1, 55})
	if math.Abs(clean-10) > 0.2 {
		t.Errorf("SelectiveMean with outlier = %v, want ~10", clean)
	}
}

func TestQuantileMedian(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Median(xs); got != 2 {
		t.Errorf("Median = %v, want 2", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 3 {
		t.Errorf("Quantile(1) = %v, want 3", got)
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Errorf("Quantile interp = %v, want 1.5", got)
	}
	// Input must not be reordered.
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestQuantilePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":      func() { Quantile(nil, 0.5) },
		"q too big":  func() { Quantile([]float64{1}, 1.5) },
		"q negative": func() { Quantile([]float64{1}, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, p float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); !almostEq(got, cse.p, 1e-12) {
			t.Errorf("CDF.At(%v) = %v, want %v", cse.x, got, cse.p)
		}
	}
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	if got := c.Mean(); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	c := NewCDF(xs)
	sx, ps := c.Series(-40, 40, 200)
	for i := 1; i < len(ps); i++ {
		if ps[i] < ps[i-1] {
			t.Fatalf("CDF not monotone at x=%v", sx[i])
		}
	}
	if ps[0] != 0 || ps[len(ps)-1] != 1 {
		t.Errorf("CDF range endpoints = %v..%v", ps[0], ps[len(ps)-1])
	}
}

func TestMeanCI(t *testing.T) {
	mean, hw := MeanCI([]float64{5, 5, 5, 5})
	if mean != 5 || hw != 0 {
		t.Errorf("MeanCI constant = (%v,%v)", mean, hw)
	}
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = 3 + rng.NormFloat64()
	}
	mean, hw = MeanCI(xs)
	// 95% CI of N(3,1) with n=10000 has half width ≈ 1.96/100 ≈ 0.02.
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("MeanCI mean = %v, want ~3", mean)
	}
	if math.Abs(hw-0.0196) > 0.005 {
		t.Errorf("MeanCI halfWidth = %v, want ~0.0196", hw)
	}
	if m, h := MeanCI(nil); m != 0 || h != 0 {
		t.Errorf("MeanCI(nil) = (%v,%v)", m, h)
	}
}

func TestKolmogorovSmirnovIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	d, p := KolmogorovSmirnov(xs, xs)
	if d != 0 {
		t.Errorf("D = %v for identical samples", d)
	}
	if p < 0.99 {
		t.Errorf("p = %v for identical samples", p)
	}
}

func TestKolmogorovSmirnovDisjoint(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 11, 12, 13, 14}
	d, p := KolmogorovSmirnov(xs, ys)
	if d != 1 {
		t.Errorf("D = %v for disjoint samples, want 1", d)
	}
	if p > 0.05 {
		t.Errorf("p = %v for disjoint samples", p)
	}
}

func TestKolmogorovSmirnovSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 400)
	ys := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	d, p := KolmogorovSmirnov(xs, ys)
	if d > 0.15 {
		t.Errorf("D = %v for same-distribution samples", d)
	}
	if p < 0.01 {
		t.Errorf("p = %v should not reject", p)
	}
}

func TestKolmogorovSmirnovShifted(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64() + 1
	}
	d, p := KolmogorovSmirnov(xs, ys)
	if d < 0.3 {
		t.Errorf("D = %v for clearly shifted samples", d)
	}
	if p > 1e-6 {
		t.Errorf("p = %v should strongly reject", p)
	}
}

func TestKolmogorovSmirnovPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	KolmogorovSmirnov(nil, []float64{1})
}
