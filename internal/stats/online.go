package stats

import "math"

// Online accumulates a running mean and variance using Welford's algorithm.
// The zero value is ready to use. It is used by long-running simulations to
// report moments without retaining every sample.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator. Missing values are ignored.
func (o *Online) Add(x float64) {
	if IsMissing(x) {
		return
	}
	if o.n == 0 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of accumulated samples.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 before any sample).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the unbiased running variance (0 with fewer than two
// samples).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the running standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest accumulated sample (0 before any sample).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest accumulated sample (0 before any sample).
func (o *Online) Max() float64 { return o.max }

// Merge folds the other accumulator into o (parallel reduction), using
// Chan et al.'s pairwise update.
func (o *Online) Merge(p *Online) {
	if p.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *p
		return
	}
	n := o.n + p.n
	d := p.mean - o.mean
	o.m2 += p.m2 + d*d*float64(o.n)*float64(p.n)/float64(n)
	o.mean += d * float64(p.n) / float64(n)
	if p.min < o.min {
		o.min = p.min
	}
	if p.max > o.max {
		o.max = p.max
	}
	o.n = n
}
