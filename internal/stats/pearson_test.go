package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); !almostEq(got, 1, 1e-12) {
		t.Errorf("Pearson positive = %v, want 1", got)
	}
	yn := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yn); !almostEq(got, -1, 1e-12) {
		t.Errorf("Pearson negative = %v, want -1", got)
	}
}

func TestPearsonKnownValue(t *testing.T) {
	// Hand-computed: x={1,2,3}, y={1,3,2} → r = 0.5.
	if got := Pearson([]float64{1, 2, 3}, []float64{1, 3, 2}); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("Pearson = %v, want 0.5", got)
	}
}

func TestPearsonConstantVector(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("Pearson with constant x = %v, want 0", got)
	}
	if got := Pearson([]float64{1, 2, 3}, []float64{5, 5, 5}); got != 0 {
		t.Errorf("Pearson with constant y = %v, want 0", got)
	}
}

func TestPearsonMissing(t *testing.T) {
	// Missing pairs are skipped: with the third pair masked the data is
	// perfectly correlated.
	x := []float64{1, 2, Missing, 4}
	y := []float64{2, 4, 100, 8}
	if got := Pearson(x, y); !almostEq(got, 1, 1e-12) {
		t.Errorf("Pearson with missing = %v, want 1", got)
	}
	// Fewer than 2 valid pairs → 0.
	if got := Pearson([]float64{1, Missing}, []float64{1, 1}); got != 0 {
		t.Errorf("Pearson with 1 valid pair = %v, want 0", got)
	}
}

func TestPearsonMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestPearsonProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r := Pearson(x, y)
		if r < -1 || r > 1 {
			t.Fatalf("Pearson out of range: %v", r)
		}
		// Symmetry.
		if !almostEq(r, Pearson(y, x), 1e-12) {
			t.Fatalf("Pearson not symmetric")
		}
		// Invariance under positive affine transform of x.
		xt := make([]float64, n)
		for i := range x {
			xt[i] = 3*x[i] + 7
		}
		if !almostEq(r, Pearson(xt, y), 1e-9) {
			t.Fatalf("Pearson not affine invariant: %v vs %v", r, Pearson(xt, y))
		}
		// Self-correlation is 1 for non-constant vectors.
		if !almostEq(Pearson(x, x), 1, 1e-12) {
			t.Fatalf("self correlation = %v", Pearson(x, x))
		}
	}
}

func TestTrajCorrIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMatrix(rng, 10, 30)
	if got := TrajCorr(a, a); !almostEq(got, 2, 1e-9) {
		t.Errorf("TrajCorr(a,a) = %v, want 2", got)
	}
}

func TestTrajCorrRange(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		a := randMatrix(rng, 5, 20)
		b := randMatrix(rng, 5, 20)
		r := TrajCorr(a, b)
		if r < -2 || r > 2 {
			t.Fatalf("TrajCorr out of [-2,2]: %v", r)
		}
		if !almostEq(r, TrajCorr(b, a), 1e-12) {
			t.Fatalf("TrajCorr not symmetric")
		}
	}
}

func TestTrajCorrIndependentLow(t *testing.T) {
	// Independent random matrices should score near 0, far below the
	// paper's coherency threshold of 1.2.
	rng := rand.New(rand.NewSource(9))
	var sum float64
	const trials = 50
	for i := 0; i < trials; i++ {
		a := randMatrix(rng, 45, 100)
		b := randMatrix(rng, 45, 100)
		sum += TrajCorr(a, b)
	}
	if mean := sum / trials; math.Abs(mean) > 0.1 {
		t.Errorf("mean TrajCorr of independent trajectories = %v, want ~0", mean)
	}
}

func TestTrajCorrEmptyAndRagged(t *testing.T) {
	if got := TrajCorr(nil, nil); got != 0 {
		t.Errorf("TrajCorr(nil,nil) = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on ragged matrix")
		}
	}()
	TrajCorr([][]float64{{1, 2}, {1}}, [][]float64{{1, 2}, {1, 2}})
}

func TestRelativeChange(t *testing.T) {
	x := []float64{3, 4}
	if got := RelativeChange(x, x); got != 0 {
		t.Errorf("RelativeChange(x,x) = %v, want 0", got)
	}
	// ‖x−x′‖ = 5 · (1) where x−x′ = {3,4} scaled... use x′ = {0,0}: diff
	// norm = 5, x norm = 5 → 1.
	if got := RelativeChange(x, []float64{0, 0}); !almostEq(got, 1, 1e-12) {
		t.Errorf("RelativeChange = %v, want 1", got)
	}
	if got := RelativeChange([]float64{0, 0}, x); got != 0 {
		t.Errorf("RelativeChange with zero base = %v, want 0", got)
	}
	// Missing entries skipped.
	got := RelativeChange([]float64{3, Missing, 4}, []float64{0, 9, 0})
	if !almostEq(got, 1, 1e-12) {
		t.Errorf("RelativeChange with missing = %v, want 1", got)
	}
}

func TestRelativeChangeNonNegative(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		// Keep the property about geometry, not float overflow: squash
		// arbitrary inputs into a bounded range (NaN maps to Missing).
		squash := func(v float64) float64 {
			if math.IsNaN(v) {
				return Missing
			}
			return 1000 * math.Tanh(v/1000)
		}
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i], y[i] = squash(xs[i]), squash(ys[i])
		}
		d := RelativeChange(x, y)
		return d >= 0 && !math.IsNaN(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randMatrix(rng *rand.Rand, n, m int) [][]float64 {
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, m)
		for j := range a[i] {
			a[i][j] = rng.NormFloat64()
		}
	}
	return a
}
