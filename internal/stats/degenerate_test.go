package stats

import (
	"math"
	"testing"
)

// These tests pin the documented behaviour of the statistical kernels on
// degenerate inputs — zero-variance windows, all-missing channels,
// single-sample windows — so it is a contract rather than whatever happens
// to fall out of the arithmetic. The naninguard analyzer (cmd/rups-lint)
// assumes exactly these guarantees at every call site.

func allMissing(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = Missing
	}
	return xs
}

func TestPearsonDegenerateWindows(t *testing.T) {
	cases := []struct {
		name string
		x, y []float64
	}{
		{"both empty", nil, nil},
		{"single sample", []float64{3}, []float64{4}},
		{"zero variance x", []float64{5, 5, 5, 5}, []float64{1, 2, 3, 4}},
		{"zero variance y", []float64{1, 2, 3, 4}, []float64{-7, -7, -7, -7}},
		{"zero variance both", []float64{2, 2, 2}, []float64{9, 9, 9}},
		{"all missing x", allMissing(6), []float64{1, 2, 3, 4, 5, 6}},
		{"all missing y", []float64{1, 2, 3, 4, 5, 6}, allMissing(6)},
		{"all missing both", allMissing(4), allMissing(4)},
		{"one valid pair", []float64{1, Missing, Missing}, []float64{2, Missing, Missing}},
		{"disjoint validity", []float64{1, Missing, 3}, []float64{Missing, 2, Missing}},
	}
	for _, c := range cases {
		if r := Pearson(c.x, c.y); r != 0 { //lint:ignore floatcmp the documented degenerate return is exactly 0
			t.Errorf("%s: Pearson = %v, want exactly 0", c.name, r)
		}
	}
}

func TestTrajCorrAllMissingChannels(t *testing.T) {
	// Every GSM channel unscanned over the whole window: each per-channel
	// Pearson is degenerate (0) and the column means are all Missing, so
	// the column term is degenerate too. The documented result is 0 — not
	// NaN, which would poison every downstream score comparison.
	width, m := 5, 20
	a := make([][]float64, width)
	b := make([][]float64, width)
	for ch := 0; ch < width; ch++ {
		a[ch] = allMissing(m)
		b[ch] = allMissing(m)
	}
	if r := TrajCorr(a, b); r != 0 { //lint:ignore floatcmp the documented degenerate return is exactly 0
		t.Fatalf("TrajCorr(all missing) = %v, want exactly 0", r)
	}
}

func TestTrajCorrSingleSampleWindow(t *testing.T) {
	// One-metre windows: every per-channel correlation has a single pair,
	// which is below Pearson's two-pair minimum.
	a := [][]float64{{-80}, {-90}, {-100}}
	b := [][]float64{{-75}, {-95}, {-85}}
	if r := TrajCorr(a, b); r != 0 { //lint:ignore floatcmp the documented degenerate return is exactly 0
		t.Fatalf("TrajCorr(single sample) = %v, want exactly 0", r)
	}
}

func TestTrajCorrNeverNaN(t *testing.T) {
	// Sweep structured degenerate shapes: partial missing channels,
	// constant channels, lone valid cells. The result must always be a
	// finite number in [-2, 2].
	shapes := []func(ch, i int) float64{
		func(ch, i int) float64 { return Missing },
		func(ch, i int) float64 {
			if ch%2 == 0 {
				return Missing
			}
			return -80
		},
		func(ch, i int) float64 {
			if i == 0 {
				return -70
			}
			return Missing
		},
		func(ch, i int) float64 { return float64(-100 + ch) }, // constant rows
		func(ch, i int) float64 {
			if (ch+i)%3 == 0 {
				return Missing
			}
			return float64(-110 + ch*7 + i%5)
		},
	}
	const width, m = 4, 9
	build := func(f func(ch, i int) float64) [][]float64 {
		rows := make([][]float64, width)
		for ch := range rows {
			rows[ch] = make([]float64, m)
			for i := range rows[ch] {
				rows[ch][i] = f(ch, i)
			}
		}
		return rows
	}
	for si, fa := range shapes {
		for sj, fb := range shapes {
			r := TrajCorr(build(fa), build(fb))
			if math.IsNaN(r) || r < -2 || r > 2 {
				t.Errorf("shapes (%d,%d): TrajCorr = %v, want finite in [-2,2]", si, sj, r)
			}
		}
	}
}

func TestMeanOKDistinguishesEmptyFromZero(t *testing.T) {
	if m, ok := MeanOK(nil); ok || m != 0 { //lint:ignore floatcmp documented zero fallback
		t.Errorf("MeanOK(nil) = %v, %v; want 0, false", m, ok)
	}
	if m, ok := MeanOK(allMissing(5)); ok || m != 0 { //lint:ignore floatcmp documented zero fallback
		t.Errorf("MeanOK(all missing) = %v, %v; want 0, false", m, ok)
	}
	// A genuine mean of exactly zero keeps ok=true — the case plain Mean
	// cannot distinguish.
	if m, ok := MeanOK([]float64{-3, 3}); !ok || m != 0 { //lint:ignore floatcmp exact cancellation is the point
		t.Errorf("MeanOK({-3,3}) = %v, %v; want 0, true", m, ok)
	}
	if m, ok := MeanOK([]float64{Missing, 4, Missing}); !ok || !ApproxEqual(m, 4, 1e-12) {
		t.Errorf("MeanOK({Missing,4,Missing}) = %v, %v; want 4, true", m, ok)
	}
}

func TestDescriptiveDegenerates(t *testing.T) {
	if v := Variance([]float64{7}); v != 0 { //lint:ignore floatcmp documented zero fallback
		t.Errorf("Variance(single) = %v, want 0", v)
	}
	if v := Variance(allMissing(3)); v != 0 { //lint:ignore floatcmp documented zero fallback
		t.Errorf("Variance(all missing) = %v, want 0", v)
	}
	if s := StdDev(allMissing(3)); s != 0 { //lint:ignore floatcmp documented zero fallback
		t.Errorf("StdDev(all missing) = %v, want 0", s)
	}
	if m, hw := MeanCI(allMissing(4)); m != 0 || hw != 0 { //lint:ignore floatcmp documented zero fallback
		t.Errorf("MeanCI(all missing) = %v ± %v, want 0 ± 0", m, hw)
	}
	if m, hw := MeanCI([]float64{5}); !ApproxEqual(m, 5, 1e-12) || hw != 0 { //lint:ignore floatcmp documented zero half-width
		t.Errorf("MeanCI(single) = %v ± %v, want 5 ± 0", m, hw)
	}
	if m := SelectiveMean(allMissing(6)); m != 0 { //lint:ignore floatcmp documented zero fallback
		t.Errorf("SelectiveMean(all missing) = %v, want 0", m)
	}
	if r := RelativeChange(allMissing(3), allMissing(3)); r != 0 { //lint:ignore floatcmp documented zero fallback
		t.Errorf("RelativeChange(all missing) = %v, want 0", r)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("values within eps must compare approximately equal")
	}
	if ApproxEqual(1.0, 1.1, 1e-9) {
		t.Error("values beyond eps must not compare approximately equal")
	}
	if ApproxEqual(math.NaN(), math.NaN(), 1) {
		t.Error("NaN must never be approximately equal, even to itself")
	}
	if ApproxEqual(math.Inf(1), math.Inf(1), 1) {
		// Inf - Inf is NaN; infinities are beyond any finite tolerance.
		t.Error("Inf must not be approximately equal under a finite eps")
	}
}
