package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = rng.NormFloat64()*5 + 2
		o.Add(xs[i])
	}
	if !almostEq(o.Mean(), Mean(xs), 1e-9) {
		t.Errorf("online mean %v vs batch %v", o.Mean(), Mean(xs))
	}
	if !almostEq(o.Variance(), Variance(xs), 1e-9) {
		t.Errorf("online var %v vs batch %v", o.Variance(), Variance(xs))
	}
	if o.N() != len(xs) {
		t.Errorf("N = %d", o.N())
	}
}

func TestOnlineMinMax(t *testing.T) {
	var o Online
	for _, x := range []float64{3, -1, 7, 2} {
		o.Add(x)
	}
	if o.Min() != -1 || o.Max() != 7 {
		t.Errorf("min/max = %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineIgnoresMissing(t *testing.T) {
	var o Online
	o.Add(1)
	o.Add(Missing)
	o.Add(3)
	if o.N() != 2 || o.Mean() != 2 {
		t.Errorf("N=%d mean=%v", o.N(), o.Mean())
	}
}

func TestOnlineZeroValue(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.StdDev() != 0 || o.N() != 0 {
		t.Error("zero value not neutral")
	}
}

func TestOnlineMergeEquivalence(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, 100*math.Tanh(v/100))
			}
		}
		var whole Online
		for _, x := range xs {
			whole.Add(x)
		}
		var left, right Online
		half := len(xs) / 2
		for _, x := range xs[:half] {
			left.Add(x)
		}
		for _, x := range xs[half:] {
			right.Add(x)
		}
		left.Merge(&right)
		if left.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		return almostEq(left.Mean(), whole.Mean(), 1e-9) &&
			almostEq(left.Variance(), whole.Variance(), 1e-7) &&
			left.Min() == whole.Min() && left.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOnlineMergeEmptySides(t *testing.T) {
	var a, b Online
	a.Add(1)
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Errorf("merge empty changed state: N=%d mean=%v", a.N(), a.Mean())
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 || b.Min() != 1 || b.Max() != 3 {
		t.Errorf("merge into empty: %+v", b)
	}
}
