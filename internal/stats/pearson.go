// Package stats implements the statistical machinery of the paper — the
// Pearson power-vector correlation (Eq. 1), the trajectory correlation
// coefficient (Eq. 2), the relative-change metric (Eq. 3) — along with the
// descriptive statistics the evaluation harness reports: empirical CDFs,
// quantiles, trimmed/selective means, and confidence intervals.
package stats

import (
	"fmt"
	"math"
)

// Missing marks an absent RSSI measurement (an unscanned channel at a
// location) inside a power vector or trajectory row. IsMissing must be used
// to test for it, since Missing is a NaN.
var Missing = math.NaN()

// IsMissing reports whether v marks a missing measurement.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Pearson returns the Pearson correlation coefficient between x and y
// (paper Eq. 1). Entries where either vector is Missing are skipped.
//
// The coefficient is undefined when fewer than two valid pairs remain or
// when either vector is constant over the valid pairs; Pearson returns 0 in
// those cases, which the SYN search treats as "no evidence of coherence".
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(x), len(y)))
	}
	var n int
	var sx, sy float64
	for i := range x {
		if IsMissing(x[i]) || IsMissing(y[i]) {
			continue
		}
		n++
		sx += x[i]
		sy += y[i]
	}
	if n < 2 {
		return 0
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxy, sxx, syy float64
	for i := range x {
		if IsMissing(x[i]) || IsMissing(y[i]) {
			continue
		}
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	// A non-positive sum of squares means the vector is constant over the
	// valid pairs (the ordered comparison also rejects any rounding or
	// overflow artefact that could turn the ratio into a NaN).
	if sxx <= 0 || syy <= 0 {
		return 0
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Guard against tiny floating point excursions outside [-1, 1].
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r
}

// TrajCorr returns the trajectory correlation coefficient of paper Eq. 2
// between two GSM-aware trajectories given as channel-major matrices:
// a[i][j] is the RSSI of channel i at metre j. Both trajectories must have
// the same width (channel count) and length.
//
// The coefficient is the mean of the per-channel correlations plus the
// correlation of the per-location channel averages; its range is therefore
// [-2, 2]. The second term is what lets the coherency threshold exceed 1
// (the paper uses 1.2).
func TrajCorr(a, b [][]float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: TrajCorr width mismatch %d vs %d", len(a), len(b)))
	}
	n := len(a)
	if n == 0 {
		return 0
	}
	m := len(a[0])
	sum := 0.0
	for i := 0; i < n; i++ {
		if len(a[i]) != m || len(b[i]) != m {
			panic("stats: TrajCorr ragged trajectory matrix")
		}
		sum += Pearson(a[i], b[i])
	}
	return sum/float64(n) + Pearson(columnMeans(a), columnMeans(b))
}

// columnMeans returns, for each location j, the mean RSSI across channels,
// skipping missing entries. A column with no valid entries yields Missing.
func columnMeans(a [][]float64) []float64 {
	m := len(a[0])
	out := make([]float64, m)
	for j := 0; j < m; j++ {
		var s float64
		var c int
		for i := range a {
			if v := a[i][j]; !IsMissing(v) {
				s += v
				c++
			}
		}
		if c == 0 {
			out[j] = Missing
		} else {
			out[j] = s / float64(c)
		}
	}
	return out
}

// RelativeChange returns the relative change d = ‖x−x′‖/‖x‖ of paper Eq. 3
// between two power vectors. Missing entries in either vector are skipped.
// If x has zero norm over the valid entries, RelativeChange returns 0.
func RelativeChange(x, xp []float64) float64 {
	if len(x) != len(xp) {
		panic(fmt.Sprintf("stats: RelativeChange length mismatch %d vs %d", len(x), len(xp)))
	}
	var diff2, norm2 float64
	for i := range x {
		if IsMissing(x[i]) || IsMissing(xp[i]) {
			continue
		}
		d := x[i] - xp[i]
		diff2 += d * d
		norm2 += x[i] * x[i]
	}
	if norm2 <= 0 {
		return 0
	}
	return math.Sqrt(diff2 / norm2)
}
