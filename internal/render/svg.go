// Package render draws the simulated world as SVG: the city's roads
// coloured by class, the GSM towers, and (optionally) vehicle trajectories.
// It exists for documentation and debugging — seeing the world the
// evaluation drives through beats imagining it.
package render

import (
	"fmt"
	"io"
	"strings"

	"rups/internal/city"
	"rups/internal/geo"
	"rups/internal/gsm"
)

// Style maps road classes to stroke colours and widths.
var classStyle = map[city.RoadClass]struct {
	colour string
	width  float64
}{
	city.TwoLaneSuburb:  {"#7cb342", 2},
	city.FourLaneUrban:  {"#1e88e5", 3.5},
	city.EightLaneUrban: {"#8e24aa", 6},
	city.UnderElevated:  {"#546e7a", 6},
}

// Map renders a city and optional extras into an SVG document.
type Map struct {
	City   *city.City
	Towers []gsm.Tower
	// Tracks are additional polylines (vehicle trajectories) with a label
	// and colour.
	Tracks []Track
	// WidthPx is the output image width; height follows the aspect ratio.
	WidthPx float64
}

// Track is one highlighted path.
type Track struct {
	Points []geo.Vec2
	Colour string
	Label  string
}

// WriteSVG emits the document.
func (m *Map) WriteSVG(w io.Writer) error {
	if m.City == nil {
		return fmt.Errorf("render: map needs a city")
	}
	b := m.City.Bounds()
	widthPx := m.WidthPx
	if widthPx <= 0 {
		widthPx = 900
	}
	span := b.MaxX - b.MinX
	scale := widthPx / span
	heightPx := (b.MaxY - b.MinY) * scale

	// World → image: flip y so north is up.
	pt := func(p geo.Vec2) (float64, float64) {
		return (p.X - b.MinX) * scale, (b.MaxY - p.Y) * scale
	}
	path := func(pts []geo.Vec2) string {
		var sb strings.Builder
		for i, p := range pts {
			x, y := pt(p)
			if i == 0 {
				fmt.Fprintf(&sb, "M%.1f %.1f", x, y)
			} else {
				fmt.Fprintf(&sb, " L%.1f %.1f", x, y)
			}
		}
		return sb.String()
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		widthPx, heightPx, widthPx, heightPx)
	sb.WriteString(`<rect width="100%" height="100%" fill="#fafafa"/>` + "\n")

	// Zoning rings.
	cx, cy := pt(geo.Vec2{})
	fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="#e0e0e0" stroke-dasharray="6 4"/>`+"\n",
		cx, cy, m.City.Cfg.DowntownRadiusM*scale)
	fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="#e0e0e0" stroke-dasharray="6 4"/>`+"\n",
		cx, cy, m.City.Cfg.UrbanRadiusM*scale)

	// Roads.
	for _, r := range m.City.Roads {
		st := classStyle[r.Class]
		dash := ""
		if r.Class == city.UnderElevated {
			dash = ` stroke-dasharray="10 5"`
		}
		fmt.Fprintf(&sb, `<path d="%s" fill="none" stroke="%s" stroke-width="%.1f" stroke-linecap="round" opacity="0.8"%s/>`+"\n",
			path(r.Line.Points()), st.colour, st.width, dash)
	}

	// Towers.
	for _, tw := range m.Towers {
		if !m.City.Bounds().Contains(tw.Pos) {
			continue
		}
		x, y := pt(tw.Pos)
		fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="2.2" fill="#ef5350"/>`+"\n", x, y)
	}

	// Tracks.
	for _, tr := range m.Tracks {
		if len(tr.Points) < 2 {
			continue
		}
		colour := tr.Colour
		if colour == "" {
			colour = "#000"
		}
		fmt.Fprintf(&sb, `<path d="%s" fill="none" stroke="%s" stroke-width="2.4"/>`+"\n",
			path(tr.Points), colour)
		if tr.Label != "" {
			x, y := pt(tr.Points[0])
			fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="12" fill="%s">%s</text>`+"\n",
				x+4, y-4, colour, tr.Label)
		}
	}

	// Legend.
	y := 20.0
	for _, class := range []city.RoadClass{city.TwoLaneSuburb, city.FourLaneUrban, city.EightLaneUrban, city.UnderElevated} {
		st := classStyle[class]
		fmt.Fprintf(&sb, `<line x1="12" y1="%.0f" x2="44" y2="%.0f" stroke="%s" stroke-width="%.1f"/>`+"\n",
			y, y, st.colour, st.width)
		fmt.Fprintf(&sb, `<text x="50" y="%.0f" font-size="12" fill="#333">%s</text>`+"\n", y+4, class)
		y += 18
	}
	fmt.Fprintf(&sb, `<circle cx="28" cy="%.0f" r="2.2" fill="#ef5350"/><text x="50" y="%.0f" font-size="12" fill="#333">GSM tower</text>`+"\n", y, y+4)

	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
