package render

import (
	"bytes"
	"strings"
	"testing"

	"rups/internal/city"
	"rups/internal/geo"
	"rups/internal/gsm"
)

func TestWriteSVG(t *testing.T) {
	c := city.Generate(city.DefaultConfig(3))
	m := &Map{
		City:   c,
		Towers: gsm.GenerateTowers(4, c.Bounds(), c),
		Tracks: []Track{{
			Points: []geo.Vec2{{X: 0, Y: 0}, {X: 100, Y: 100}},
			Colour: "#123456",
			Label:  "test-track",
		}},
	}
	var buf bytes.Buffer
	if err := m.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "test-track", "#123456", "GSM tower",
		"2-lane suburb", "under elevated",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One path per road at least.
	if got := strings.Count(out, "<path"); got < len(c.Roads) {
		t.Errorf("only %d paths for %d roads", got, len(c.Roads))
	}
}

func TestWriteSVGNeedsCity(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Map{}).WriteSVG(&buf); err == nil {
		t.Error("expected error without a city")
	}
}

func TestWriteSVGSkipsShortTracks(t *testing.T) {
	c := city.Generate(city.DefaultConfig(5))
	m := &Map{City: c, Tracks: []Track{{Points: []geo.Vec2{{X: 1, Y: 1}}, Label: "solo"}}}
	var buf bytes.Buffer
	if err := m.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "solo") {
		t.Error("single-point track should be skipped")
	}
}
