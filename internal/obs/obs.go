// Package obs is the repo's zero-dependency telemetry layer: a metrics
// registry (atomic counters, gauges, and log-linear-bucket histograms), a
// span recorder tracing the resolution pipeline into a fixed-size ring, and
// a debug HTTP endpoint serving Prometheus text exposition, the span ring,
// and net/http/pprof.
//
// Telemetry is off by default and the disabled state is free: every handle
// type tolerates a nil receiver, Enable/SetRecorder install the package
// defaults atomically, and instrumented packages fetch their handles
// through a View — one atomic load when disabled, one atomic load plus a
// pointer compare when enabled. The hot-path operations (Counter.Add,
// Gauge.Set, Histogram.Observe, Span End into the ring) allocate nothing
// in either state; obs's alloc tests pin that down with
// testing.AllocsPerRun.
package obs

import "sync/atomic"

var (
	defReg atomic.Pointer[Registry]
	defRec atomic.Pointer[Recorder]
)

// Enable installs r as the process-wide default registry. Instrumented
// packages pick it up on their next View.Get. Enable(nil) is Disable.
func Enable(r *Registry) { defReg.Store(r) }

// Disable removes the default registry; instrument sites fall back to the
// nil-registry fast path (no-op handles, no atomics touched).
func Disable() { defReg.Store(nil) }

// Default returns the enabled registry, or nil when telemetry is off. All
// Registry methods accept a nil receiver and return nil handles, so
// obs.Default().Counter(...) is always safe.
func Default() *Registry { return defReg.Load() }

// SetRecorder installs r as the process-wide span recorder (nil disables
// span tracing).
func SetRecorder(r *Recorder) { defRec.Store(r) }

// ActiveRecorder returns the enabled span recorder, or nil. Recorder
// methods accept a nil receiver, and a Span started from a nil recorder is
// an inert value whose End is a no-op.
func ActiveRecorder() *Recorder { return defRec.Load() }

// View caches one package's telemetry handles keyed by the enabled
// registry, so instrument sites pay a map lookup only when the registry
// changes, not per call. Get returns nil while telemetry is disabled — the
// caller's single nil check is the whole disabled-path cost. The build
// function must be idempotent against one registry (Registry handle
// constructors are), because concurrent first Gets may both run it.
type View[T any] struct {
	build func(*Registry) *T
	cur   atomic.Pointer[viewBox[T]]
}

type viewBox[T any] struct {
	reg *Registry
	val *T
}

// NewView declares a lazily-built handle bundle.
func NewView[T any](build func(*Registry) *T) *View[T] {
	return &View[T]{build: build}
}

// Get returns the handles for the currently enabled registry, or nil when
// telemetry is disabled.
func (v *View[T]) Get() *T {
	reg := Default()
	if reg == nil {
		return nil
	}
	if b := v.cur.Load(); b != nil && b.reg == reg {
		return b.val
	}
	b := &viewBox[T]{reg: reg, val: v.build(reg)}
	v.cur.Store(b)
	return b.val
}
