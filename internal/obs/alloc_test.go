package obs

import "testing"

// TestHotPathZeroAlloc pins the tentpole's zero-alloc contract: every
// hot-path telemetry operation — counter/gauge/histogram updates and span
// recording into the ring — allocates nothing, enabled or disabled. The
// searcher-level end-to-end version of this guarantee lives in
// internal/core's telemetry test and the BenchmarkSearcherInstrumented
// record in BENCH_4.json.
func TestHotPathZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("alloc_total", "")
	g := reg.Gauge("alloc_depth", "")
	h := reg.Histogram("alloc_seconds", "", -20, 4)
	rec := NewRecorder(64)
	tr := rec.NewTrace()

	cases := []struct {
		name string
		f    func()
	}{
		{"counter", func() { c.Add(3); c.Inc() }},
		{"gauge", func() { g.Add(1); g.RaiseTo(g.Value()); g.Add(-1) }},
		{"histogram", func() { h.Observe(0.0017); h.Observe(123456) }},
		{"span", func() {
			sp := rec.Start(tr, "stage")
			sp.Arg = 7
			sp.End()
		}},
		{"child span", func() {
			parent := rec.Start(tr, "parent")
			rec.StartChild(tr, parent.ID(), "child").End()
			parent.End()
		}},
		{"nil handles", func() {
			var nc *Counter
			var ng *Gauge
			var nh *Histogram
			var nr *Recorder
			nc.Inc()
			ng.Set(1)
			nh.Observe(2)
			nr.Start(0, "x").End()
			nr.StartChild(0, 0, "x").End()
		}},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, tc.f); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
}

// TestViewGetZeroAlloc: the per-call cost of an instrument site fetching
// its handles must also be alloc-free in both states.
func TestViewGetZeroAlloc(t *testing.T) {
	defer Disable()
	type handles struct{ c *Counter }
	v := NewView(func(r *Registry) *handles {
		return &handles{c: r.Counter("view_alloc_total", "")}
	})
	Disable()
	if n := testing.AllocsPerRun(200, func() {
		if v.Get() != nil {
			t.Fatal("disabled view not nil")
		}
	}); n != 0 {
		t.Errorf("disabled View.Get: %v allocs/op, want 0", n)
	}
	Enable(NewRegistry())
	v.Get() // build once
	if n := testing.AllocsPerRun(200, func() { v.Get().c.Inc() }); n != 0 {
		t.Errorf("enabled View.Get: %v allocs/op, want 0", n)
	}
}
