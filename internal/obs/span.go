package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// TraceID groups the span events of one pipeline pass — one vehicle
// pipeline build, one batch admission, one pair resolution. Since PR 9 a
// trace may also span *processes*: the v2v sync protocol carries the
// sender's TraceID (plus a parent SpanID) in its frame headers, so a
// sender's chunk spans and the receiver's reassemble/admit/resolve spans
// stitch into one cross-vehicle trace. 0 is the disabled/unassigned trace.
type TraceID uint64

// SpanID identifies one span within a recorder, so later spans — possibly
// recorded on the other side of a radio link — can reference it as their
// causal parent. 0 means "no parent" / unassigned.
type SpanID uint64

// TraceRef is a causal hook: the trace to stitch into and the span to hang
// under. It is what the v2v wire format carries (16 bytes) and what the
// engine threads from a pair's sync session into its resolve spans. The
// zero TraceRef means "unstitched" — spans fall back to their own trace.
type TraceRef struct {
	Trace  TraceID
	Parent SpanID
}

// SpanEvent is one completed pipeline stage in the recorder's ring.
type SpanEvent struct {
	Seq    uint64        `json:"seq"`              // recording order, monotonic
	Trace  TraceID       `json:"trace"`            // pipeline pass this stage belongs to
	ID     SpanID        `json:"id,omitempty"`     // this span's identity (see StartChild)
	Parent SpanID        `json:"parent,omitempty"` // causal parent span, 0 = root
	Name   string        `json:"name"`             // stage name (bind, scan_ab, aggregate, ...)
	Arg    int64         `json:"arg,omitempty"`    // stage-specific small argument (segment offset, counts)
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
}

// Recorder keeps the most recent span events in a fixed-size ring. Ends
// overwrite the oldest event once the ring is full; recording takes the
// ring mutex but allocates nothing. The nil recorder is a valid no-op, and
// spans started from it are inert.
type Recorder struct {
	ids atomic.Uint64
	mu  sync.Mutex
	// ring and n are guarded by mu; n counts all events ever recorded.
	ring []SpanEvent
	n    uint64
}

// DefaultRingSize is the span capacity NewRecorder uses for size <= 0 —
// enough for tens of convoy resolution ticks.
const DefaultRingSize = 4096

// NewRecorder returns a recorder keeping the last size events.
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Recorder{ring: make([]SpanEvent, size)}
}

// NewTrace allocates a fresh trace ID (0 from the nil recorder).
func (r *Recorder) NewTrace() TraceID {
	if r == nil {
		return 0
	}
	return TraceID(r.ids.Add(1))
}

// Span is an in-flight pipeline stage. It is a plain value: start it with
// Recorder.Start or StartChild, optionally set Arg, and call End to record
// it. The zero Span (from a nil recorder) does nothing on End.
type Span struct {
	rec    *Recorder
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	// Arg is an optional stage-specific argument recorded with the event —
	// a segment offset, a SYN count, a batch size.
	Arg int64
}

// Start opens a root span on trace. The nil recorder returns an inert span
// without reading the clock.
func (r *Recorder) Start(trace TraceID, name string) Span {
	return r.StartChild(trace, 0, name)
}

// StartChild opens a span on trace hanging under parent — the causal-
// stitching entry point. A parent of 0 is a root span (same as Start). The
// nil recorder returns an inert span without reading the clock or
// consuming an ID.
func (r *Recorder) StartChild(trace TraceID, parent SpanID, name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{rec: r, trace: trace, id: SpanID(r.ids.Add(1)),
		parent: parent, name: name, start: time.Now()}
}

// ID returns the span's identity, for use as a later span's parent —
// including on the far side of a radio link (the v2v frame header carries
// it). 0 for inert spans.
func (s Span) ID() SpanID { return s.id }

// End records the span into the ring. No-op for inert spans.
func (s Span) End() {
	if s.rec == nil {
		return
	}
	ev := SpanEvent{Trace: s.trace, ID: s.id, Parent: s.parent,
		Name: s.name, Arg: s.Arg,
		Start: s.start, Dur: time.Since(s.start)}
	r := s.rec
	r.mu.Lock()
	ev.Seq = r.n
	r.ring[r.n%uint64(len(r.ring))] = ev
	r.n++
	r.mu.Unlock()
}

// Events returns a copy of the ring's events, oldest first (nil from the
// nil recorder).
func (r *Recorder) Events() []SpanEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	size := uint64(len(r.ring))
	kept := r.n
	if kept > size {
		kept = size
	}
	out := make([]SpanEvent, 0, kept)
	for i := r.n - kept; i < r.n; i++ {
		out = append(out, r.ring[i%size])
	}
	return out
}

// Total reports how many events were ever recorded, including overwritten
// ones (0 from the nil recorder).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
