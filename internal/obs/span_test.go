package obs

import (
	"testing"
	"time"
)

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(4)
	tr := r.NewTrace()
	if tr == 0 {
		t.Fatal("NewTrace must hand out nonzero IDs")
	}
	for i := 0; i < 6; i++ {
		sp := r.Start(tr, "stage")
		sp.Arg = int64(i)
		sp.End()
	}
	if r.Total() != 6 {
		t.Fatalf("total %d, want 6", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		wantArg := int64(i + 2) // events 0 and 1 were overwritten
		if ev.Arg != wantArg || ev.Trace != tr || ev.Name != "stage" {
			t.Fatalf("event %d = %+v, want arg %d", i, ev, wantArg)
		}
		if ev.Seq != uint64(i+2) {
			t.Fatalf("event %d seq %d, want %d", i, ev.Seq, i+2)
		}
		if i > 0 && evs[i-1].Seq >= ev.Seq {
			t.Fatal("events must be ordered oldest first")
		}
	}
	if evs[0].Dur < 0 || evs[0].Start.IsZero() {
		t.Fatalf("event has no timing: %+v", evs[0])
	}
}

func TestRecorderPartialRing(t *testing.T) {
	r := NewRecorder(8)
	r.Start(r.NewTrace(), "only").End()
	evs := r.Events()
	if len(evs) != 1 || evs[0].Name != "only" {
		t.Fatalf("partial ring returned %+v", evs)
	}
}

func TestNilRecorderAndInertSpan(t *testing.T) {
	var r *Recorder
	if r.NewTrace() != 0 || r.Total() != 0 || r.Events() != nil {
		t.Fatal("nil recorder must read as empty")
	}
	sp := r.Start(1, "x")
	if !sp.start.IsZero() {
		t.Fatal("inert span must not read the clock")
	}
	sp.End() // must not panic
}

func TestSpanMeasuresDuration(t *testing.T) {
	r := NewRecorder(2)
	sp := r.Start(r.NewTrace(), "sleep")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	evs := r.Events()
	if len(evs) != 1 || evs[0].Dur < time.Millisecond {
		t.Fatalf("span duration %v, want >= 1ms", evs[0].Dur)
	}
}

func TestDefaultRecorderInstall(t *testing.T) {
	defer SetRecorder(nil)
	if ActiveRecorder() != nil {
		t.Fatal("recorder must start disabled")
	}
	r := NewRecorder(0)
	if len(r.ring) != DefaultRingSize {
		t.Fatalf("default ring size %d, want %d", len(r.ring), DefaultRingSize)
	}
	SetRecorder(r)
	if ActiveRecorder() != r {
		t.Fatal("SetRecorder did not install")
	}
	SetRecorder(nil)
	if ActiveRecorder() != nil {
		t.Fatal("SetRecorder(nil) did not disable")
	}
}
