package slo

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rups/internal/obs"
	"rups/internal/obs/flight"
)

func TestDefaultRosterShape(t *testing.T) {
	ros := DefaultRoster()
	if len(ros) != 3 {
		t.Fatalf("roster size %d", len(ros))
	}
	tr := New(ros, nil)
	for _, name := range []string{"resolve_latency", "context_freshness", "pair_availability"} {
		if tr.Index(name) < 0 {
			t.Fatalf("missing objective %s", name)
		}
	}
	if tr.Index("nope") != -1 {
		t.Fatal("unknown objective has an index")
	}
}

func TestLoadRoster(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slo.json")
	content := `{"objectives":[{"name":"availability","target":0.9,"fast_window_sec":10,"slow_window_sec":60}]}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	objs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || objs[0].Name != "availability" || objs[0].Target != 0.9 {
		t.Fatalf("loaded %+v", objs)
	}

	// Bare-array form.
	bare := filepath.Join(dir, "bare.json")
	if err := os.WriteFile(bare, []byte(`[{"name":"x","target":0.5}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if objs, err := Load(bare); err != nil || len(objs) != 1 {
		t.Fatalf("bare load: %v, %v", objs, err)
	}

	// Invalid target rejected.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`[{"name":"x","target":1.5}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("target 1.5 accepted")
	}
}

func TestBurnRatesAndBreach(t *testing.T) {
	reg := obs.NewRegistry()
	objs := []Objective{{Name: "avail", Target: 0.9, FastWindowSec: 10, SlowWindowSec: 30, MaxBurn: 2}}
	tr := New(objs, reg)
	ai := tr.Index("avail")

	// 100% good: burn 0, no breach.
	for s := 0; s < 30; s++ {
		for k := 0; k < 10; k++ {
			tr.Observe(ai, true, float64(s))
		}
	}
	st := tr.Evaluate(30)[0]
	if st.FastBurn != 0 || st.SlowBurn != 0 || st.Breached {
		t.Fatalf("clean run: %+v", st)
	}

	// All-bad stretch long enough to poison both windows: bad fraction 1,
	// budget 0.1 → burn 10 ≥ MaxBurn 2 in both windows.
	for s := 30; s < 62; s++ {
		for k := 0; k < 10; k++ {
			tr.Observe(ai, false, float64(s))
		}
	}
	st = tr.Evaluate(62)[0]
	if !st.Breached || st.Breaches != 1 {
		t.Fatalf("outage not breached: %+v", st)
	}
	if st.FastBurn < 9.9 || st.FastBurn > 10.1 {
		t.Fatalf("fast burn %v, want ~10", st.FastBurn)
	}

	// Still breached on the next evaluation — but the counter must not
	// double-count the same incident.
	st = tr.Evaluate(63)[0]
	if !st.Breached || st.Breaches != 1 {
		t.Fatalf("breach re-counted: %+v", st)
	}

	// Recovery: enough clean seconds that both windows empty of bad.
	for s := 63; s < 100; s++ {
		for k := 0; k < 10; k++ {
			tr.Observe(ai, true, float64(s))
		}
	}
	st = tr.Evaluate(100)[0]
	if st.Breached {
		t.Fatalf("recovered run still breached: %+v", st)
	}

	// Metrics surfaced under rups_slo_*.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, m := range []string{
		"rups_slo_avail_good_total", "rups_slo_avail_bad_total",
		"rups_slo_avail_breaches_total 1", "rups_slo_avail_fast_burn_milli",
	} {
		if !strings.Contains(text, m) {
			t.Fatalf("metrics missing %s in:\n%s", m, text)
		}
	}
}

func TestLatencyObjective(t *testing.T) {
	tr := New([]Objective{{Name: "lat", Target: 0.5, ThresholdSec: 0.05}}, nil)
	li := tr.Index("lat")
	tr.ObserveLatency(li, 0.01, 1) // good
	tr.ObserveLatency(li, 0.30, 1) // bad
	st := tr.Evaluate(1)[0]
	if st.GoodTotal != 1 || st.BadTotal != 1 {
		t.Fatalf("latency classify: %+v", st)
	}
}

func TestBreachEmitsFlightAnomalyCapsule(t *testing.T) {
	dir := t.TempDir()
	ring := flight.NewRing(256, flight.Config{Dir: dir, WindowSec: 1000})
	flight.Enable(ring)
	defer flight.Disable()

	tr := New([]Objective{{Name: "avail", Target: 0.9, FastWindowSec: 5, SlowWindowSec: 10, MaxBurn: 2}}, nil)
	for s := 0; s < 12; s++ {
		tr.Observe(0, false, float64(s))
	}
	tr.Evaluate(12)
	if ring.Dumps() != 1 {
		t.Fatalf("breach dumped %d capsules, want 1", ring.Dumps())
	}
	files, _ := filepath.Glob(filepath.Join(dir, "capsule-*.flight"))
	if len(files) != 1 {
		t.Fatalf("capsule files: %v", files)
	}
	meta, evs, err := flight.ReadCapsule(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(meta.Reason, "slo_breach:") {
		t.Fatalf("capsule reason %q", meta.Reason)
	}
	foundBreach := false
	for _, ev := range evs {
		if ev.Kind == flight.KindSLOBreach {
			foundBreach = true
		}
	}
	if !foundBreach {
		t.Fatal("capsule holds no slo_breach event")
	}
}

func TestNilTrackerNoops(t *testing.T) {
	var tr *Tracker
	tr.Observe(0, true, 1)
	tr.ObserveLatency(0, 1, 1)
	if tr.Evaluate(1) != nil || tr.Statuses() != nil || tr.Objectives() != nil {
		t.Fatal("nil tracker returned state")
	}
	if tr.Index("x") != -1 {
		t.Fatal("nil tracker index")
	}
}

func TestHandlerServesJSON(t *testing.T) {
	tr := New(DefaultRoster(), nil)
	tr.Observe(tr.Index("pair_availability"), true, 3)
	tr.Evaluate(3)
	rr := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	var got struct {
		EvaluatedAt float64  `json:"evaluated_at"`
		Objectives  []Status `json:"objectives"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if got.EvaluatedAt != 3 || len(got.Objectives) != 3 {
		t.Fatalf("handler payload: %+v", got)
	}
}
