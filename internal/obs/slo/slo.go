// Package slo evaluates declarative service-level objectives over the
// resolution pipeline: each objective classifies a stream of events as
// good or bad (a resolve under the latency threshold, a fresh rather than
// stale context, a pair resolved at all) and is judged over two sliding
// windows of simulation time with SRE-style burn rates — how fast the
// error budget (1 − target) is being spent. A breach (both windows
// burning faster than the objective's MaxBurn) increments a counter,
// emits a flight-recorder event, and triggers a black-box capsule dump.
//
// Objectives are data, not code: the roster loads from JSON (Load) or
// falls back to the built-in paper roster (DefaultRoster). Burn state is
// exposed three ways — rups_slo_* metrics in the obs registry, the
// /debug/slo JSON handler, and the Status values cmd/rups-obs renders.
//
// The clock is simulation time supplied by the caller on every Observe
// and Evaluate; the package never reads wall time, so seeded runs produce
// identical burn trajectories.
package slo

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"sync"

	"rups/internal/obs"
	"rups/internal/obs/flight"
)

// Objective is one declarative service-level objective. Target is the
// required good fraction; events older than SlowWindowSec no longer count
// against it.
type Objective struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Target is the objective good-ratio, e.g. 0.99.
	Target float64 `json:"target"`
	// ThresholdSec classifies latency observations: ObserveLatency counts
	// an event good iff it is ≤ ThresholdSec. Ratio objectives leave it 0
	// and feed Observe directly.
	ThresholdSec float64 `json:"threshold_sec,omitempty"`
	// FastWindowSec/SlowWindowSec are the two sliding windows (defaults
	// 30 s and 120 s). The multi-window rule suppresses both flavors of
	// false alarm: a long-quiet SLO with one bad tick (fast window burns,
	// slow does not) and an old incident still polluting the slow window
	// (slow burns, fast does not).
	FastWindowSec float64 `json:"fast_window_sec,omitempty"`
	SlowWindowSec float64 `json:"slow_window_sec,omitempty"`
	// MaxBurn is the burn-rate alert threshold (default 2): breach when
	// both windows spend error budget at ≥ MaxBurn× the sustainable rate.
	MaxBurn float64 `json:"max_burn,omitempty"`
}

func (o Objective) withDefaults() Objective {
	if o.FastWindowSec <= 0 {
		o.FastWindowSec = 30
	}
	if o.SlowWindowSec <= 0 {
		o.SlowWindowSec = 120
	}
	if o.SlowWindowSec < o.FastWindowSec {
		o.SlowWindowSec = o.FastWindowSec
	}
	if o.MaxBurn <= 0 {
		o.MaxBurn = 2
	}
	return o
}

// DefaultRoster is the paper pipeline's built-in objectives: resolve
// latency, context freshness, and pair availability.
func DefaultRoster() []Objective {
	return []Objective{
		{Name: "resolve_latency", Target: 0.99, ThresholdSec: 0.050,
			Description: "pair resolutions completing within the latency threshold"},
		{Name: "context_freshness", Target: 0.95,
			Description: "resolved pairs answered from fresh (not stale) context"},
		{Name: "pair_availability", Target: 0.99,
			Description: "pair queries answered at all (not refused or unresolved)"},
	}
}

// rosterFile is the JSON shape Load accepts: either this wrapper or a
// bare array of objectives.
type rosterFile struct {
	Objectives []Objective `json:"objectives"`
}

// Load reads an objective roster from a JSON file.
func Load(path string) ([]Objective, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rf rosterFile
	if err := json.Unmarshal(b, &rf); err != nil || len(rf.Objectives) == 0 {
		var bare []Objective
		if err2 := json.Unmarshal(b, &bare); err2 == nil && len(bare) > 0 {
			rf.Objectives = bare
		} else if err != nil {
			return nil, fmt.Errorf("slo: %s: %w", path, err)
		}
	}
	if len(rf.Objectives) == 0 {
		return nil, fmt.Errorf("slo: %s: no objectives", path)
	}
	for i, o := range rf.Objectives {
		if o.Name == "" || o.Target <= 0 || o.Target >= 1 {
			return nil, fmt.Errorf("slo: %s: objective %d needs a name and a target in (0, 1)", path, i)
		}
	}
	return rf.Objectives, nil
}

// bucket is one second of good/bad counts; sec identifies which second,
// so a lapped slot is recognized and reset rather than double-counted.
type bucket struct {
	sec       int64
	good, bad uint64
}

// objState is one objective's sliding-window state.
type objState struct {
	buckets  []bucket
	goodTot  uint64
	badTot   uint64
	breached bool
	breaches uint64
	fastBurn float64
	slowBurn float64
}

// objMetrics is one objective's registry handles (all nil when the
// tracker was built without a registry — obs nil handles no-op).
type objMetrics struct {
	good, bad, breaches *obs.Counter
	fastBurn, slowBurn  *obs.Gauge
}

// Status is one objective's externally visible state: the declaration
// plus where its burn stands. Served by Handler and printed by rups-obs.
type Status struct {
	Objective
	GoodTotal uint64  `json:"good_total"`
	BadTotal  uint64  `json:"bad_total"`
	FastBurn  float64 `json:"fast_burn"`
	SlowBurn  float64 `json:"slow_burn"`
	Breached  bool    `json:"breached"`
	Breaches  uint64  `json:"breaches"`
}

// Tracker evaluates a roster of objectives. Observe/Evaluate and the
// HTTP handler are safe for concurrent use (one mutex; the feed is a few
// dozen events per simulation tick, nowhere near contention).
type Tracker struct {
	mu     sync.Mutex
	objs   []Objective
	states []objState
	byName map[string]int
	mets   []objMetrics
	fl     *flight.Ring
	lastT  float64
}

// New builds a tracker for the roster, registering rups_slo_* metrics in
// reg (nil reg: no metrics, everything else still works) and emitting
// breach events to the active flight ring.
func New(objectives []Objective, reg *obs.Registry) *Tracker {
	t := &Tracker{
		objs:   make([]Objective, len(objectives)),
		states: make([]objState, len(objectives)),
		byName: make(map[string]int, len(objectives)),
		mets:   make([]objMetrics, len(objectives)),
		fl:     flight.Active(),
	}
	for i, o := range objectives {
		o = o.withDefaults()
		t.objs[i] = o
		t.byName[o.Name] = i
		// One bucket per second of the slow window, plus one so the
		// in-progress second never evicts the window's oldest.
		t.states[i].buckets = make([]bucket, int(math.Ceil(o.SlowWindowSec))+1)
		for b := range t.states[i].buckets {
			t.states[i].buckets[b].sec = -1
		}
		n := metricName(o.Name)
		t.mets[i] = objMetrics{
			good: reg.Counter("rups_slo_"+n+"_good_total",
				"events meeting the "+o.Name+" objective"),
			bad: reg.Counter("rups_slo_"+n+"_bad_total",
				"events violating the "+o.Name+" objective"),
			breaches: reg.Counter("rups_slo_"+n+"_breaches_total",
				"multi-window burn-rate breaches of the "+o.Name+" objective"),
			fastBurn: reg.Gauge("rups_slo_"+n+"_fast_burn_milli",
				"fast-window burn rate of the "+o.Name+" objective, x1000"),
			slowBurn: reg.Gauge("rups_slo_"+n+"_slow_burn_milli",
				"slow-window burn rate of the "+o.Name+" objective, x1000"),
		}
	}
	return t
}

// metricName coerces an objective name into the Prometheus grammar.
func metricName(name string) string {
	out := []byte(name)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9' && i > 0:
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// Index returns the roster position of the named objective, -1 if absent.
func (t *Tracker) Index(name string) int {
	if t == nil {
		return -1
	}
	if i, ok := t.byName[name]; ok {
		return i
	}
	return -1
}

// Objectives returns the (defaulted) roster.
func (t *Tracker) Objectives() []Objective {
	if t == nil {
		return nil
	}
	out := make([]Objective, len(t.objs))
	copy(out, t.objs)
	return out
}

// Observe feeds one good/bad event to objective i at sim time now.
// Out-of-roster indexes are ignored; the nil tracker no-ops.
func (t *Tracker) Observe(i int, good bool, now float64) {
	if t == nil || i < 0 || i >= len(t.objs) {
		return
	}
	t.mu.Lock()
	st := &t.states[i]
	sec := int64(math.Floor(now))
	b := &st.buckets[((sec%int64(len(st.buckets)))+int64(len(st.buckets)))%int64(len(st.buckets))]
	if b.sec != sec {
		b.sec, b.good, b.bad = sec, 0, 0
	}
	if good {
		b.good++
		st.goodTot++
	} else {
		b.bad++
		st.badTot++
	}
	t.mu.Unlock()
	if good {
		t.mets[i].good.Inc()
	} else {
		t.mets[i].bad.Inc()
	}
}

// ObserveLatency feeds a latency sample to objective i: good iff the
// sample is at or under the objective's ThresholdSec.
func (t *Tracker) ObserveLatency(i int, sec float64, now float64) {
	if t == nil || i < 0 || i >= len(t.objs) {
		return
	}
	t.Observe(i, sec <= t.objs[i].ThresholdSec, now)
}

// window sums the good/bad counts of the trailing win seconds before now.
func (st *objState) window(now, win float64) (good, bad uint64) {
	lo := int64(math.Floor(now - win))
	hi := int64(math.Floor(now))
	for _, b := range st.buckets {
		if b.sec > lo && b.sec <= hi {
			good += b.good
			bad += b.bad
		}
	}
	return good, bad
}

// burn is the error-budget burn rate over a window: observed bad fraction
// divided by the budget (1 − target). 1.0 means budget spent exactly at
// the sustainable rate; an empty window burns 0.
func burn(good, bad uint64, target float64) float64 {
	if good+bad == 0 {
		return 0
	}
	return (float64(bad) / float64(good+bad)) / (1 - target)
}

// Evaluate recomputes every objective's burn rates at sim time now,
// updates the gauges, and edge-detects breaches: entering the breached
// state (both windows ≥ MaxBurn) bumps the breach counter, emits a
// KindSLOBreach flight event, and triggers a capsule dump. Returns the
// roster's statuses. The nil tracker returns nil.
func (t *Tracker) Evaluate(now float64) []Status {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lastT = now
	out := make([]Status, len(t.objs))
	for i := range t.objs {
		o := t.objs[i]
		st := &t.states[i]
		fg, fb := st.window(now, o.FastWindowSec)
		sg, sb := st.window(now, o.SlowWindowSec)
		st.fastBurn = burn(fg, fb, o.Target)
		st.slowBurn = burn(sg, sb, o.Target)
		t.mets[i].fastBurn.Set(int64(st.fastBurn * 1000))
		t.mets[i].slowBurn.Set(int64(st.slowBurn * 1000))
		breached := st.fastBurn >= o.MaxBurn && st.slowBurn >= o.MaxBurn
		if breached && !st.breached {
			st.breaches++
			t.mets[i].breaches.Inc()
			if t.fl != nil {
				// Anomaly emits the trigger event itself, so this is both
				// the breach's flight record and the capsule dump.
				//lint:ignore errflow best-effort black-box dump; the breach is already counted
				_, _ = t.fl.Anomaly("slo_breach:"+o.Name, flight.Event{T: now,
					Kind: flight.KindSLOBreach, A: -1, B: -1,
					V1: int64(st.fastBurn * 1000), V2: int64(i)})
			}
		}
		st.breached = breached
		out[i] = Status{Objective: o,
			GoodTotal: st.goodTot, BadTotal: st.badTot,
			FastBurn: st.fastBurn, SlowBurn: st.slowBurn,
			Breached: st.breached, Breaches: st.breaches}
	}
	return out
}

// Statuses returns the roster state as of the last Evaluate without
// re-evaluating (the HTTP handler's read path).
func (t *Tracker) Statuses() []Status {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Status, len(t.objs))
	for i := range t.objs {
		st := &t.states[i]
		out[i] = Status{Objective: t.objs[i],
			GoodTotal: st.goodTot, BadTotal: st.badTot,
			FastBurn: st.fastBurn, SlowBurn: st.slowBurn,
			Breached: st.breached, Breaches: st.breaches}
	}
	return out
}

// Handler serves the roster state as JSON — the /debug/slo endpoint.
func (t *Tracker) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		t.mu.Lock()
		at := t.lastT
		t.mu.Unlock()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		//lint:ignore errflow an encode failure here means the client hung up; there is no one left to tell
		_ = enc.Encode(struct {
			EvaluatedAt float64  `json:"evaluated_at"`
			Objectives  []Status `json:"objectives"`
		}{EvaluatedAt: at, Objectives: t.Statuses()})
	})
}
