package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_hits_total", "hits").Add(3)
	rec := NewRecorder(16)
	sp := rec.Start(rec.NewTrace(), "bind")
	sp.Arg = 42
	sp.End()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := ServeDebug(ctx, "127.0.0.1:0", reg, rec)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	if code, body := getBody(t, base+"/metrics"); code != 200 ||
		!strings.Contains(body, "test_hits_total 3") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	code, body := getBody(t, base+"/debug/spans")
	if code != 200 {
		t.Fatalf("/debug/spans = %d", code)
	}
	var spans struct {
		Total  uint64      `json:"total"`
		Events []SpanEvent `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("/debug/spans not JSON: %v\n%s", err, body)
	}
	if spans.Total != 1 || len(spans.Events) != 1 ||
		spans.Events[0].Name != "bind" || spans.Events[0].Arg != 42 {
		t.Fatalf("/debug/spans content wrong: %+v", spans)
	}
	if code, body := getBody(t, base+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
	if code, _ := getBody(t, base+"/nope"); code != 404 {
		t.Fatalf("unknown path = %d, want 404", code)
	}
}

func TestSpansFilterAndPagination(t *testing.T) {
	rec := NewRecorder(64)
	t1, t2 := rec.NewTrace(), rec.NewTrace()
	// Interleave two traces: 6 spans on t1, 3 on t2.
	for i := 0; i < 9; i++ {
		tr := t1
		if i%3 == 2 {
			tr = t2
		}
		rec.Start(tr, "stage").End()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := ServeDebug(ctx, "127.0.0.1:0", nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	get := func(query string) spansPage {
		t.Helper()
		code, body := getBody(t, base+"/debug/spans"+query)
		if code != 200 {
			t.Fatalf("/debug/spans%s = %d:\n%s", query, code, body)
		}
		var p spansPage
		if err := json.Unmarshal([]byte(body), &p); err != nil {
			t.Fatalf("not JSON: %v\n%s", err, body)
		}
		return p
	}

	// Trace filter keeps only t1's spans.
	p := get("?trace=" + strconv.FormatUint(uint64(t1), 10))
	if p.Matched != 6 || len(p.Events) != 6 {
		t.Fatalf("trace filter: matched %d, %d events", p.Matched, len(p.Events))
	}
	for _, ev := range p.Events {
		if ev.Trace != t1 {
			t.Fatalf("foreign trace %d leaked into filtered page", ev.Trace)
		}
	}

	// Paginate the filtered set two at a time; pages must tile the full
	// set without overlap.
	var seqs []uint64
	query := "?trace=" + strconv.FormatUint(uint64(t1), 10) + "&limit=2"
	for page, cursor := 0, ""; ; page++ {
		p := get(query + cursor)
		if len(p.Events) > 2 {
			t.Fatalf("page %d over limit: %d events", page, len(p.Events))
		}
		for _, ev := range p.Events {
			seqs = append(seqs, ev.Seq)
		}
		if p.NextAfter == 0 {
			break
		}
		cursor = "&after=" + strconv.FormatUint(p.NextAfter, 10)
		if page > 10 {
			t.Fatal("pagination did not terminate")
		}
	}
	if len(seqs) != 6 {
		t.Fatalf("pages tiled %d events, want 6: %v", len(seqs), seqs)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("page cursor unstable: seqs %v", seqs)
		}
	}

	// Malformed params are rejected, not silently ignored.
	for _, q := range []string{"?trace=xyz", "?after=-1", "?limit=0", "?limit=huge"} {
		if code, _ := getBody(t, base+"/debug/spans"+q); code != 400 {
			t.Fatalf("/debug/spans%s = %d, want 400", q, code)
		}
	}
}

func TestDebugMuxExtraRoutes(t *testing.T) {
	mux := NewDebugMux(nil, nil, Route{
		Pattern: "/debug/slo",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, `{"objectives":[]}`)
		}),
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := ServeDebug(ctx, "127.0.0.1:0", nil, nil, Route{
		Pattern: "/debug/slo",
		Handler: mux,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code, body := getBody(t, "http://"+s.Addr()+"/debug/slo"); code != 200 ||
		!strings.Contains(body, "objectives") {
		t.Fatalf("/debug/slo = %d:\n%s", code, body)
	}
	// The index advertises mounted extras.
	if _, body := getBody(t, "http://"+s.Addr()+"/"); !strings.Contains(body, "/debug/slo") {
		t.Fatalf("index does not list extra route:\n%s", body)
	}
}

func TestDebugServerLoopbackDefault(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := ServeDebug(ctx, ":0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !strings.HasPrefix(s.Addr(), "127.0.0.1:") {
		t.Fatalf("host-less address bound %q, want loopback", s.Addr())
	}
	// Nil registry and recorder still serve valid (empty) documents.
	if code, _ := getBody(t, "http://"+s.Addr()+"/metrics"); code != 200 {
		t.Fatalf("/metrics with nil registry = %d", code)
	}
	if _, body := getBody(t, "http://"+s.Addr()+"/debug/spans"); !strings.Contains(body, `"total": 0`) {
		t.Fatalf("/debug/spans with nil recorder:\n%s", body)
	}
}

func TestDebugServerContextShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := ServeDebug(ctx, "127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case <-s.done:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down on context cancellation")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after context shutdown: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Fatal("server still reachable after shutdown")
	}
}

func TestDebugServerBadAddress(t *testing.T) {
	if _, err := ServeDebug(context.Background(), "no-port-here", nil, nil); err == nil {
		t.Fatal("want error for an address without a port")
	}
}
