package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_hits_total", "hits").Add(3)
	rec := NewRecorder(16)
	sp := rec.Start(rec.NewTrace(), "bind")
	sp.Arg = 42
	sp.End()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := ServeDebug(ctx, "127.0.0.1:0", reg, rec)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	if code, body := getBody(t, base+"/metrics"); code != 200 ||
		!strings.Contains(body, "test_hits_total 3") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	code, body := getBody(t, base+"/debug/spans")
	if code != 200 {
		t.Fatalf("/debug/spans = %d", code)
	}
	var spans struct {
		Total  uint64      `json:"total"`
		Events []SpanEvent `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("/debug/spans not JSON: %v\n%s", err, body)
	}
	if spans.Total != 1 || len(spans.Events) != 1 ||
		spans.Events[0].Name != "bind" || spans.Events[0].Arg != 42 {
		t.Fatalf("/debug/spans content wrong: %+v", spans)
	}
	if code, body := getBody(t, base+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
	if code, _ := getBody(t, base+"/nope"); code != 404 {
		t.Fatalf("unknown path = %d, want 404", code)
	}
}

func TestDebugServerLoopbackDefault(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := ServeDebug(ctx, ":0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !strings.HasPrefix(s.Addr(), "127.0.0.1:") {
		t.Fatalf("host-less address bound %q, want loopback", s.Addr())
	}
	// Nil registry and recorder still serve valid (empty) documents.
	if code, _ := getBody(t, "http://"+s.Addr()+"/metrics"); code != 200 {
		t.Fatalf("/metrics with nil registry = %d", code)
	}
	if _, body := getBody(t, "http://"+s.Addr()+"/debug/spans"); !strings.Contains(body, `"total": 0`) {
		t.Fatalf("/debug/spans with nil recorder:\n%s", body)
	}
}

func TestDebugServerContextShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := ServeDebug(ctx, "127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case <-s.done:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down on context cancellation")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after context shutdown: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Fatal("server still reachable after shutdown")
	}
}

func TestDebugServerBadAddress(t *testing.T) {
	if _, err := ServeDebug(context.Background(), "no-port-here", nil, nil); err == nil {
		t.Fatal("want error for an address without a port")
	}
}
